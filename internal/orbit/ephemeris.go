package orbit

import (
	"math"
	"time"
)

// StateSource supplies satellite ECEF state for pass prediction. Both the
// raw SGP4 Propagator and the precomputed Ephemeris implement it, so a
// PassPredictor can run against either exact propagation or shared samples.
type StateSource interface {
	// PositionECEF returns the satellite's ECEF position (km) and velocity
	// (km/s) at t.
	PositionECEF(t time.Time) (r, v Vec3, err error)
	// Elements returns the element set the source propagates.
	Elements() Elements
}

// EphemerisConfig sizes and bounds an ephemeris grid.
type EphemerisConfig struct {
	// ScanStep is the pass-search coarse step the ephemeris serves
	// (NewEphemerisPredictor adopts it). Defaults to 30 s.
	ScanStep time.Duration

	// SampleStep is the sampling grid step. Zero picks a step
	// automatically: ScanStep in exact mode; in interpolated mode the
	// coarsest of {ScanStep, 3 min} that survives validation against
	// MaxInterpErrorKm (halved until the bound holds).
	SampleStep time.Duration

	// MaxInterpErrorKm bounds the positional error of Hermite
	// interpolation between samples. Construction probes interval
	// midpoints against exact SGP4 and tightens the sample step until the
	// worst probed error is below the bound. Zero defaults to
	// DefaultMaxInterpErrorKm. Ignored in exact mode.
	MaxInterpErrorKm float64

	// Exact disables interpolation: every off-grid query falls back to
	// exact SGP4 propagation, preserving the pre-interpolation behavior
	// bit for bit.
	Exact bool
}

// DefaultMaxInterpErrorKm is the default positional bound for Hermite
// interpolation: 50 m, which at LEO slant ranges (≥ 400 km) keeps the
// derived elevation-angle error under ~0.008°.
const DefaultMaxInterpErrorKm = 0.05

// defaultInterpSampleStep is the coarsest sample step interpolated grids
// try before validation. For near-circular LEO the cubic Hermite error
// grows as (ωh)⁴·r/384, which at h = 3 min is ~30 m — inside the default
// bound with margin; eccentric or very low orbits fail the probe and the
// constructor halves the step until they pass.
const defaultInterpSampleStep = 3 * time.Minute

func (c *EphemerisConfig) setDefaults() {
	if c.ScanStep <= 0 {
		c.ScanStep = 30 * time.Second
	}
	if c.MaxInterpErrorKm <= 0 {
		c.MaxInterpErrorKm = DefaultMaxInterpErrorKm
	}
}

// Ephemeris is a precomputed, immutable sampling of one satellite's ECEF
// trajectory on a fixed time grid. The satellite state at a timestep is
// site-independent, so one Ephemeris serves pass searches for every ground
// site in a campaign: queries that land on the grid are answered from the
// shared samples; any other instant inside the span is answered by cubic
// Hermite interpolation from the bracketing (position, velocity) samples,
// whose positional error is validated at construction to stay below the
// configured MaxInterpErrorKm. Queries outside the span — and every
// off-grid query of an Exact-mode ephemeris — fall back to exact SGP4 on
// an internal clone.
//
// Samples are stored struct-of-arrays: six contiguous []float64 component
// arrays rather than []Vec3, so a whole-constellation EphemerisGrid can
// back thousands of satellites with six allocations total and row views
// share the backing arrays without copying.
//
// An Ephemeris is safe for concurrent use by multiple goroutines once
// constructed: the sample arrays are never written after construction, and
// the internal propagator is only used through its read-only propagation
// path.
type Ephemeris struct {
	els   Elements
	prop  *Propagator
	start time.Time
	step  time.Duration // sampling grid step
	scan  time.Duration // pass-search coarse step this ephemeris serves
	n     int

	// Struct-of-arrays ECEF samples, one entry per grid point.
	px, py, pz []float64
	vx, vy, vz []float64

	// errs is nil while every sample propagated cleanly (the common
	// case); the first propagation error allocates the full slice.
	errs []error

	// exact disables interpolation for this satellite — set by config, or
	// by grid validation when a row's probed error exceeds the bound.
	exact bool

	// maxErrKm is the validated interpolation bound (informational).
	maxErrKm float64
}

// NewEphemeris samples prop's ECEF state covering [start, end] plus one
// scan step of padding (pass scans probe one step past their window end).
// step is the pass-search coarse step the ephemeris serves; a non-positive
// step defaults to the PassPredictor's 30 s. Off-grid queries inside the
// span are answered by validated Hermite interpolation (see
// EphemerisConfig); use NewEphemerisWith with Exact for the
// pre-interpolation exact-fallback behavior.
func NewEphemeris(prop *Propagator, start, end time.Time, step time.Duration) *Ephemeris {
	return NewEphemerisWith(prop, start, end, EphemerisConfig{ScanStep: step})
}

// NewEphemerisWith builds an ephemeris under an explicit configuration.
func NewEphemerisWith(prop *Propagator, start, end time.Time, cfg EphemerisConfig) *Ephemeris {
	cfg.setDefaults()
	sample := cfg.SampleStep
	if sample <= 0 {
		if cfg.Exact {
			sample = cfg.ScanStep
		} else {
			sample = calibrateSampleStep([]*Propagator{prop}, start, end, cfg)
		}
	}
	e := newEphemerisShell(prop.Elements(), prop.Clone(), start, end, sample, cfg)
	buf := make([]float64, 6*e.n)
	e.attach(buf, 0, 1)
	e.propagateRow(gmstColumn(start, sample, e.n))
	if !cfg.Exact {
		e.validateRow(2)
	}
	return e
}

// newEphemerisShell sizes an ephemeris without allocating sample storage;
// the caller attaches backing arrays (its own, or an EphemerisGrid's).
func newEphemerisShell(els Elements, prop *Propagator, start, end time.Time, sample time.Duration, cfg EphemerisConfig) *Ephemeris {
	n := 2
	if end.After(start) {
		// Cover [start, end] plus one scan step of padding at sampling
		// resolution, so the scan's one-past-the-end probe stays in-span.
		n = int(end.Add(cfg.ScanStep).Sub(start)/sample) + 2
	}
	return &Ephemeris{
		els:      els,
		prop:     prop,
		start:    start,
		step:     sample,
		scan:     cfg.ScanStep,
		n:        n,
		exact:    cfg.Exact,
		maxErrKm: cfg.MaxInterpErrorKm,
	}
}

// attach points the ephemeris at row-sized windows of a shared component
// buffer laid out [px | py | pz | vx | vy | vz], each component n*rows
// long, this row starting at offset row*n.
func (e *Ephemeris) attach(buf []float64, row, rows int) {
	stride := rows * e.n
	off := row * e.n
	e.px = buf[off : off+e.n : off+e.n]
	e.py = buf[stride+off : stride+off+e.n : stride+off+e.n]
	e.pz = buf[2*stride+off : 2*stride+off+e.n : 2*stride+off+e.n]
	e.vx = buf[3*stride+off : 3*stride+off+e.n : 3*stride+off+e.n]
	e.vy = buf[4*stride+off : 4*stride+off+e.n : 4*stride+off+e.n]
	e.vz = buf[5*stride+off : 5*stride+off+e.n : 5*stride+off+e.n]
}

// gmstColumn precomputes the Greenwich sidereal angles of the grid, shared
// by every satellite of a constellation: the angle depends only on time, so
// one pass over the steps serves all rows.
func gmstColumn(start time.Time, step time.Duration, n int) []float64 {
	thetas := make([]float64, n)
	for k := 0; k < n; k++ {
		thetas[k] = GMSTAt(start.Add(time.Duration(k) * step))
	}
	return thetas
}

// propagateRow fills the sample arrays by exact SGP4 propagation. The TEME
// state is rotated with the precomputed per-step sidereal angle — the same
// value GMSTAt would return, so samples stay bit-identical to the direct
// PositionECEF path.
func (e *Ephemeris) propagateRow(thetas []float64) {
	for k := 0; k < e.n; k++ {
		t := e.start.Add(time.Duration(k) * e.step)
		s, err := e.prop.PropagateTo(t)
		if err != nil {
			if e.errs == nil {
				e.errs = make([]error, e.n)
			}
			e.errs[k] = err
			continue
		}
		r, v := TEMEToECEFVelGMST(s.Position, s.Velocity, thetas[k])
		e.px[k], e.py[k], e.pz[k] = r.X, r.Y, r.Z
		e.vx[k], e.vy[k], e.vz[k] = v.X, v.Y, v.Z
	}
}

// validateRow probes interval midpoints against exact SGP4 and returns the
// worst positional error (km). A row whose error exceeds the configured
// bound is demoted to exact fallback, so a decaying or eccentric outlier
// degrades to slower-but-correct rather than violating the bound.
func (e *Ephemeris) validateRow(probes int) float64 {
	if e.exact || e.n < 2 {
		return 0
	}
	worst := 0.0
	stride := (e.n - 1) / probes
	if stride < 1 {
		stride = 1
	}
	for k := 0; k < e.n-1 && probes > 0; k += stride {
		if e.errs != nil && (e.errs[k] != nil || e.errs[k+1] != nil) {
			continue
		}
		mid := e.start.Add(time.Duration(k)*e.step + e.step/2)
		exact, _, err := e.prop.PositionECEF(mid)
		if err != nil {
			continue
		}
		interp, _ := e.hermite(k, float64(e.step/2))
		if d := interp.Sub(exact).Norm(); d > worst {
			worst = d
		}
		probes--
	}
	if worst > e.maxErrKm {
		e.exact = true
	}
	return worst
}

// calibrateSampleStep picks the coarsest sampling step whose probed
// midpoint error stays below the configured bound, starting from the
// default interpolation step and halving (down to the scan step, then down
// to one second) until the probes pass. Probing is cheap — a handful of
// exact propagations per candidate — and runs once per grid, not per
// satellite.
func calibrateSampleStep(props []*Propagator, start, end time.Time, cfg EphemerisConfig) time.Duration {
	step := defaultInterpSampleStep
	if cfg.ScanStep > step {
		step = cfg.ScanStep
	}
	span := end.Sub(start)
	if span <= 0 {
		span = step
	}
	// Probe a spread of satellites: the first, middle and last cover the
	// altitude/eccentricity range of typical constellation orderings.
	var sample []*Propagator
	for _, i := range []int{0, len(props) / 2, len(props) - 1} {
		if i >= 0 && i < len(props) {
			sample = append(sample, props[i])
		}
	}
	for ; step > time.Second; step /= 2 {
		worst := 0.0
		for _, p := range sample {
			for probe := 0; probe < 4; probe++ {
				t0 := start.Add(span * time.Duration(probe) / 4)
				if err := probeHermite(p, t0, step, &worst); err != nil {
					continue
				}
			}
		}
		if worst <= cfg.MaxInterpErrorKm {
			break
		}
	}
	return step
}

// probeHermite measures the Hermite midpoint error over one [t0, t0+step]
// interval of prop's trajectory, folding it into worst.
func probeHermite(prop *Propagator, t0 time.Time, step time.Duration, worst *float64) error {
	r0, v0, err := prop.PositionECEF(t0)
	if err != nil {
		return err
	}
	r1, v1, err := prop.PositionECEF(t0.Add(step))
	if err != nil {
		return err
	}
	exact, _, err := prop.PositionECEF(t0.Add(step / 2))
	if err != nil {
		return err
	}
	interp, _ := hermitePoint(r0, v0, r1, v1, 0.5, step.Seconds())
	if d := interp.Sub(exact).Norm(); d > *worst {
		*worst = d
	}
	return nil
}

// Elements returns the element set the ephemeris was sampled from.
func (e *Ephemeris) Elements() Elements { return e.els }

// Step returns the sampling grid step.
func (e *Ephemeris) Step() time.Duration { return e.step }

// ScanStep returns the pass-search coarse step the ephemeris serves.
// Interpolated grids may sample coarser than they scan: scan queries
// between samples are answered by the bounded-error interpolant.
func (e *Ephemeris) ScanStep() time.Duration { return e.scan }

// Exact reports whether off-grid queries fall back to exact SGP4 rather
// than interpolation.
func (e *Ephemeris) Exact() bool { return e.exact }

// MaxInterpErrorKm returns the configured interpolation error bound.
func (e *Ephemeris) MaxInterpErrorKm() float64 { return e.maxErrKm }

// Span returns the first and last sampled instants.
func (e *Ephemeris) Span() (start, end time.Time) {
	return e.start, e.start.Add(time.Duration(e.n-1) * e.step)
}

// queryKind classifies how a state query was answered, for telemetry.
type queryKind uint8

const (
	queryGridHit queryKind = iota
	queryInterp
	queryExact
)

// sample returns grid point k.
func (e *Ephemeris) sample(k int) (r, v Vec3, err error) {
	if e.errs != nil && e.errs[k] != nil {
		return Vec3{}, Vec3{}, e.errs[k]
	}
	return Vec3{e.px[k], e.py[k], e.pz[k]}, Vec3{e.vx[k], e.vy[k], e.vz[k]}, nil
}

// state answers a query without touching telemetry, reporting how it was
// answered so callers (PositionECEF per call, PassPredictor batched per
// scan) can account for it.
//
// Grid hits are detected by index arithmetic — one division yields both
// the bracketing index and the remainder — rather than a separate modulo,
// and the contract is strict: only a remainder of exactly zero is a hit,
// so a query even one nanosecond off-grid is interpolated (or, in exact
// mode, propagated), never snapped to the nearest sample. This holds for
// any step, including ones that do not divide the span.
func (e *Ephemeris) state(t time.Time) (r, v Vec3, err error, kind queryKind) {
	d := t.Sub(e.start)
	if d >= 0 {
		k := int(d / e.step)
		if rem := d - time.Duration(k)*e.step; rem == 0 {
			if k < e.n {
				r, v, err = e.sample(k)
				return r, v, err, queryGridHit
			}
		} else if !e.exact && k+1 < e.n {
			if e.errs == nil || (e.errs[k] == nil && e.errs[k+1] == nil) {
				r, v = e.hermite(k, float64(rem))
				return r, v, nil, queryInterp
			}
		}
	}
	r, v, err = e.prop.PositionECEF(t)
	return r, v, err, queryExact
}

// position is state without the velocity interpolation — the pass scan and
// AOS/LOS bisection compare elevations only, and skipping the velocity
// Hermite halves the interpolation arithmetic on that path.
func (e *Ephemeris) position(t time.Time) (r Vec3, err error, kind queryKind) {
	return e.positionOff(t.Sub(e.start))
}

// positionOff is position addressed by the offset from the ephemeris start.
// The pass scan visits instants of the form start + k·step and maintains
// the offset with integer arithmetic, skipping a time.Time construction
// and subtraction per scanned step.
func (e *Ephemeris) positionOff(d time.Duration) (r Vec3, err error, kind queryKind) {
	if d >= 0 {
		k := int(d / e.step)
		if rem := d - time.Duration(k)*e.step; rem == 0 {
			if k < e.n {
				if e.errs != nil && e.errs[k] != nil {
					return Vec3{}, e.errs[k], queryGridHit
				}
				return Vec3{e.px[k], e.py[k], e.pz[k]}, nil, queryGridHit
			}
		} else if !e.exact && k+1 < e.n {
			if e.errs == nil || (e.errs[k] == nil && e.errs[k+1] == nil) {
				return e.hermitePos(k, float64(rem)), nil, queryInterp
			}
		}
	}
	r, _, err = e.prop.PositionECEF(e.start.Add(d))
	return r, err, queryExact
}

// hermite evaluates the cubic Hermite interpolant on [k, k+1] at remainder
// rem nanoseconds past sample k. With positions in km and velocities in
// km/s the interpolant is free: both endpoint derivatives are already
// stored. ECEF is a rotating frame, but the stored velocities are ECEF
// derivatives of the ECEF positions, so the interpolant is consistent.
func (e *Ephemeris) hermite(k int, remNs float64) (r, v Vec3) {
	h := float64(e.step) / 1e9 // step in seconds
	s := remNs / float64(e.step)
	r0 := Vec3{e.px[k], e.py[k], e.pz[k]}
	v0 := Vec3{e.vx[k], e.vy[k], e.vz[k]}
	r1 := Vec3{e.px[k+1], e.py[k+1], e.pz[k+1]}
	v1 := Vec3{e.vx[k+1], e.vy[k+1], e.vz[k+1]}
	return hermitePoint(r0, v0, r1, v1, s, h)
}

// hermitePos is hermite restricted to position.
func (e *Ephemeris) hermitePos(k int, remNs float64) Vec3 {
	h := float64(e.step) / 1e9
	s := remNs / float64(e.step)
	s2 := s * s
	s3 := s2 * s
	h00 := 2*s3 - 3*s2 + 1
	h10 := (s3 - 2*s2 + s) * h
	h01 := -2*s3 + 3*s2
	h11 := (s3 - s2) * h
	return Vec3{
		h00*e.px[k] + h10*e.vx[k] + h01*e.px[k+1] + h11*e.vx[k+1],
		h00*e.py[k] + h10*e.vy[k] + h01*e.py[k+1] + h11*e.vy[k+1],
		h00*e.pz[k] + h10*e.vz[k] + h01*e.pz[k+1] + h11*e.vz[k+1],
	}
}

// hermitePoint evaluates the cubic Hermite interpolant and its derivative
// at normalized position s ∈ [0, 1] over an interval of h seconds.
func hermitePoint(r0, v0, r1, v1 Vec3, s, h float64) (r, v Vec3) {
	s2 := s * s
	s3 := s2 * s
	h00 := 2*s3 - 3*s2 + 1
	h10 := (s3 - 2*s2 + s) * h
	h01 := -2*s3 + 3*s2
	h11 := (s3 - s2) * h
	r = Vec3{
		h00*r0.X + h10*v0.X + h01*r1.X + h11*v1.X,
		h00*r0.Y + h10*v0.Y + h01*r1.Y + h11*v1.Y,
		h00*r0.Z + h10*v0.Z + h01*r1.Z + h11*v1.Z,
	}
	d00 := (6*s2 - 6*s) / h
	d10 := 3*s2 - 4*s + 1
	d01 := (6*s - 6*s2) / h
	d11 := 3*s2 - 2*s
	v = Vec3{
		d00*r0.X + d10*v0.X + d01*r1.X + d11*v1.X,
		d00*r0.Y + d10*v0.Y + d01*r1.Y + d11*v1.Y,
		d00*r0.Z + d10*v0.Z + d01*r1.Z + d11*v1.Z,
	}
	return r, v
}

// PositionECEF implements StateSource. Queries on the sampling grid are
// served from the shared samples; off-grid instants inside the span are
// answered by bounded-error Hermite interpolation (unless the ephemeris is
// exact, in which case they propagate SGP4); queries outside the span
// always propagate.
func (e *Ephemeris) PositionECEF(t time.Time) (Vec3, Vec3, error) {
	r, v, err, kind := e.state(t)
	if m := metrics.Load(); m != nil {
		switch kind {
		case queryGridHit:
			m.ephHits.Inc()
		case queryInterp:
			m.ephInterps.Inc()
		default:
			m.ephMisses.Inc()
		}
	}
	return r, v, err
}

// Look returns the look angles from site to the satellite at t.
func (e *Ephemeris) Look(site Geodetic, t time.Time) (LookAngles, error) {
	r, v, err := e.PositionECEF(t)
	if err != nil {
		return LookAngles{}, err
	}
	return Look(site, r, v), nil
}

// ValidateInterp probes midpoints of the grid against exact SGP4 and
// returns the worst observed positional error in km (zero for exact-mode
// grids). It demotes the ephemeris to exact fallback when the bound is
// violated.
func (e *Ephemeris) ValidateInterp(probes int) float64 {
	if probes <= 0 {
		probes = 4
	}
	return e.validateRow(probes)
}

// NewEphemerisPredictor builds a PassPredictor whose coarse scan runs at
// the ephemeris scan step: grid-aligned queries are cache hits and
// everything between samples is served by the bounded-error interpolant.
func NewEphemerisPredictor(e *Ephemeris) *PassPredictor {
	pp := NewPassPredictorFrom(e)
	pp.CoarseStep = e.ScanStep()
	return pp
}

// interpErrorBoundElevationRad converts a positional error bound to a
// conservative elevation-angle error at the given slant range: the worst
// case puts the full positional error perpendicular to the line of sight.
func interpErrorBoundElevationRad(errKm, rangeKm float64) float64 {
	if rangeKm <= 0 {
		return math.Pi
	}
	return math.Asin(math.Min(1, errKm/rangeKm))
}
