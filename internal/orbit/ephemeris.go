package orbit

import "time"

// StateSource supplies satellite ECEF state for pass prediction. Both the
// raw SGP4 Propagator and the precomputed Ephemeris implement it, so a
// PassPredictor can run against either exact propagation or shared samples.
type StateSource interface {
	// PositionECEF returns the satellite's ECEF position (km) and velocity
	// (km/s) at t.
	PositionECEF(t time.Time) (r, v Vec3, err error)
	// Elements returns the element set the source propagates.
	Elements() Elements
}

// Ephemeris is a precomputed, immutable sampling of one satellite's ECEF
// trajectory on a fixed time grid. The satellite state at a timestep is
// site-independent, so one Ephemeris serves pass searches for every ground
// site in a campaign: coarse-scan queries that land on the grid are answered
// from the shared samples, and every other instant (AOS/LOS bisection,
// per-beacon geometry) falls back to exact SGP4 on an internal clone. This
// turns campaign-wide pass prediction from O(sats × sites × steps)
// propagations into O(sats × steps), with zero accuracy loss: grid samples
// are produced by the very same PositionECEF code path they replace, and
// off-grid queries never touch the cache.
//
// An Ephemeris is safe for concurrent use by multiple goroutines once
// constructed: the sample slices are never written after NewEphemeris
// returns, and the internal propagator is only used through its read-only
// propagation path.
type Ephemeris struct {
	els   Elements
	prop  *Propagator
	start time.Time
	step  time.Duration
	pos   []Vec3
	vel   []Vec3
	errs  []error
}

// NewEphemeris samples prop's ECEF state on the grid start + k·step covering
// [start, end] plus one step of padding (pass scans probe one step past
// their window end). A non-positive step defaults to the PassPredictor's
// 30 s coarse step.
func NewEphemeris(prop *Propagator, start, end time.Time, step time.Duration) *Ephemeris {
	if step <= 0 {
		step = 30 * time.Second
	}
	n := 2
	if end.After(start) {
		n = int(end.Sub(start)/step) + 3
	}
	e := &Ephemeris{
		els:   prop.Elements(),
		prop:  prop.Clone(),
		start: start,
		step:  step,
		pos:   make([]Vec3, n),
		vel:   make([]Vec3, n),
		errs:  make([]error, n),
	}
	for i := 0; i < n; i++ {
		t := start.Add(time.Duration(i) * step)
		e.pos[i], e.vel[i], e.errs[i] = e.prop.PositionECEF(t)
	}
	return e
}

// Elements returns the element set the ephemeris was sampled from.
func (e *Ephemeris) Elements() Elements { return e.els }

// Step returns the sampling grid step.
func (e *Ephemeris) Step() time.Duration { return e.step }

// Span returns the first and last sampled instants.
func (e *Ephemeris) Span() (start, end time.Time) {
	return e.start, e.start.Add(time.Duration(len(e.pos)-1) * e.step)
}

// PositionECEF implements StateSource. Queries on the sampling grid are
// served from the shared samples; any other instant is answered by exact
// SGP4 propagation, so callers never observe interpolation error.
func (e *Ephemeris) PositionECEF(t time.Time) (Vec3, Vec3, error) {
	if d := t.Sub(e.start); d >= 0 && d%e.step == 0 {
		if i := int(d / e.step); i < len(e.pos) {
			if m := metrics.Load(); m != nil {
				m.ephHits.Inc()
			}
			return e.pos[i], e.vel[i], e.errs[i]
		}
	}
	if m := metrics.Load(); m != nil {
		m.ephMisses.Inc()
	}
	return e.prop.PositionECEF(t)
}

// Look returns the look angles from site to the satellite at t.
func (e *Ephemeris) Look(site Geodetic, t time.Time) (LookAngles, error) {
	r, v, err := e.PositionECEF(t)
	if err != nil {
		return LookAngles{}, err
	}
	return Look(site, r, v), nil
}

// NewEphemerisPredictor builds a PassPredictor whose coarse scan runs on the
// ephemeris sampling grid, so every coarse-step elevation query is a cache
// hit when the search start lies on the grid.
func NewEphemerisPredictor(e *Ephemeris) *PassPredictor {
	pp := NewPassPredictorFrom(e)
	pp.CoarseStep = e.step
	return pp
}
