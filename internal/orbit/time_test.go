package orbit

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestJulianDateKnownValues(t *testing.T) {
	cases := []struct {
		name string
		t    time.Time
		want float64
	}{
		{"J2000 epoch", time.Date(2000, 1, 1, 12, 0, 0, 0, time.UTC), 2451545.0},
		{"Unix epoch", time.Date(1970, 1, 1, 0, 0, 0, 0, time.UTC), 2440587.5},
		{"Vallado example", time.Date(1996, 10, 26, 14, 20, 0, 0, time.UTC), 2450383.09722222},
		{"campaign start", time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC), 2460554.5},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := JulianDate(c.t)
			if math.Abs(got-c.want) > 1e-6 {
				t.Errorf("JulianDate(%v) = %.8f, want %.8f", c.t, got, c.want)
			}
		})
	}
}

func TestTimeFromJulianRoundTrip(t *testing.T) {
	times := []time.Time{
		time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2025, 3, 31, 23, 59, 59, 0, time.UTC),
		time.Date(2000, 2, 29, 12, 30, 45, 0, time.UTC),
	}
	for _, in := range times {
		out := TimeFromJulian(JulianDate(in))
		if d := out.Sub(in); d < -5*time.Millisecond || d > 5*time.Millisecond {
			t.Errorf("round trip %v -> %v, drift %v", in, out, d)
		}
	}
}

func TestGMSTKnownValue(t *testing.T) {
	// Vallado example 3-5: 1992 Aug 20 12:14 UT1 -> GMST 152.578787810°.
	jd := JulianDate(time.Date(1992, 8, 20, 12, 14, 0, 0, time.UTC))
	got := GMST(jd) * rad2Deg
	want := 152.578787810
	if math.Abs(got-want) > 1e-4 {
		t.Errorf("GMST = %.6f°, want %.6f°", got, want)
	}
}

func TestGMSTAdvancesSiderealRate(t *testing.T) {
	// One solar day advances GMST by ~0.9856° (the sidereal lead).
	t0 := time.Date(2024, 10, 1, 0, 0, 0, 0, time.UTC)
	g0 := GMSTAt(t0)
	g1 := GMSTAt(t0.Add(24 * time.Hour))
	delta := wrapTwoPi(g1-g0) * rad2Deg
	if math.Abs(delta-0.98565) > 1e-3 {
		t.Errorf("GMST daily advance = %.5f°, want ~0.98565°", delta)
	}
}

func TestGMSTRange(t *testing.T) {
	check := func(unixSec int64) bool {
		g := GMSTAt(time.Unix(unixSec%4102444800, 0)) // clamp to pre-2100
		return g >= 0 && g < twoPi
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestEpochConversionRoundTrip(t *testing.T) {
	in := time.Date(2024, 11, 15, 6, 30, 0, 0, time.UTC)
	yy, doy := timeToEpoch(in)
	out := epochToTime(yy, doy)
	if d := out.Sub(in); d < -time.Millisecond || d > time.Millisecond {
		t.Errorf("epoch round trip drift %v", d)
	}
}

func TestEpochYearPivot(t *testing.T) {
	if got := epochToTime(57, 1.0).Year(); got != 1957 {
		t.Errorf("epoch year 57 -> %d, want 1957", got)
	}
	if got := epochToTime(56, 1.0).Year(); got != 2056 {
		t.Errorf("epoch year 56 -> %d, want 2056", got)
	}
	if got := epochToTime(0, 1.0).Year(); got != 2000 {
		t.Errorf("epoch year 00 -> %d, want 2000", got)
	}
}

func TestWrapHelpers(t *testing.T) {
	if got := wrapTwoPi(-0.1); math.Abs(got-(twoPi-0.1)) > 1e-12 {
		t.Errorf("wrapTwoPi(-0.1) = %v", got)
	}
	if got := wrapPi(3 * math.Pi / 2); math.Abs(got-(-math.Pi/2)) > 1e-12 {
		t.Errorf("wrapPi(3π/2) = %v", got)
	}
	prop := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
			return true
		}
		w := wrapTwoPi(x)
		p := wrapPi(x)
		return w >= 0 && w < twoPi && p > -math.Pi-1e-9 && p <= math.Pi+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
