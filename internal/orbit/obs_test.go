package orbit

import (
	"testing"
	"time"

	"github.com/sinet-io/sinet/internal/obs"
)

// TestSetMetricsCountsPropagationAndGrid verifies the installed counters
// see SGP4 calls and ephemeris grid hits/misses, and that uninstalling
// stops the flow.
func TestSetMetricsCountsPropagationAndGrid(t *testing.T) {
	prop, err := NewPropagator(leoElements())
	if err != nil {
		t.Fatal(err)
	}
	start := leoElements().Epoch
	// Exact mode keeps the hit/miss semantics: sample step == scan step,
	// off-grid queries propagate.
	eph := NewEphemerisWith(prop, start, start.Add(10*time.Minute), EphemerisConfig{ScanStep: time.Minute, Exact: true})

	r := obs.New()
	SetMetrics(r)
	defer SetMetrics(nil)
	sgp4 := r.Counter("sinet_sgp4_calls_total", "")
	hits := r.Counter("sinet_ephemeris_hits_total", "")
	interps := r.Counter("sinet_ephemeris_interp_total", "")
	misses := r.Counter("sinet_ephemeris_misses_total", "")

	if _, _, err := eph.PositionECEF(start.Add(2 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	if got := hits.Value(); got != 1 {
		t.Errorf("grid query: hits = %d, want 1", got)
	}
	if got := sgp4.Value(); got != 0 {
		t.Errorf("grid query must not propagate: sgp4 = %d", got)
	}

	if _, _, err := eph.PositionECEF(start.Add(90 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if got := misses.Value(); got != 1 {
		t.Errorf("off-grid query: misses = %d, want 1", got)
	}
	if got := sgp4.Value(); got == 0 {
		t.Errorf("off-grid query must fall back to SGP4")
	}

	// An interpolating ephemeris answers off-sample queries from the
	// Hermite interpolant: the interp counter moves, SGP4 does not.
	interpEph := NewEphemeris(prop, start, start.Add(30*time.Minute), time.Minute)
	sgp4Before := sgp4.Value()
	if _, _, err := interpEph.PositionECEF(start.Add(interpEph.Step() + interpEph.Step()/2)); err != nil {
		t.Fatal(err)
	}
	if got := interps.Value(); got != 1 {
		t.Errorf("interpolated query: interps = %d, want 1", got)
	}
	if got := sgp4.Value(); got != sgp4Before {
		t.Errorf("interpolated query must not propagate: sgp4 %d -> %d", sgp4Before, got)
	}

	SetMetrics(nil)
	before := sgp4.Value()
	if _, _, err := eph.PositionECEF(start.Add(30 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if got := sgp4.Value(); got != before {
		t.Errorf("uninstalled telemetry still counting: %d -> %d", before, got)
	}
}

// TestUninstrumentedGridHitAllocatesNothing pins the hot-path contract:
// with no registry installed, on-grid and interpolated ephemeris queries
// perform zero allocations.
func TestUninstrumentedGridHitAllocatesNothing(t *testing.T) {
	prop, err := NewPropagator(leoElements())
	if err != nil {
		t.Fatal(err)
	}
	start := leoElements().Epoch
	eph := NewEphemeris(prop, start, start.Add(30*time.Minute), time.Minute)
	SetMetrics(nil)
	for name, q := range map[string]time.Time{
		"grid-hit": start.Add(eph.Step()),
		"interp":   start.Add(eph.Step() + eph.Step()/2),
	} {
		allocs := testing.AllocsPerRun(100, func() {
			if _, _, err := eph.PositionECEF(q); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("uninstrumented %s query allocates %v times per query", name, allocs)
		}
	}
}

// TestInstrumentedQueryAllocatesNothing pins the instrumented path too:
// the registry pointer is one atomic load and counter increments are
// atomic adds, so installing telemetry must not introduce allocations on
// the query path.
func TestInstrumentedQueryAllocatesNothing(t *testing.T) {
	prop, err := NewPropagator(leoElements())
	if err != nil {
		t.Fatal(err)
	}
	start := leoElements().Epoch
	eph := NewEphemeris(prop, start, start.Add(30*time.Minute), time.Minute)
	SetMetrics(obs.New())
	defer SetMetrics(nil)
	for name, q := range map[string]time.Time{
		"grid-hit": start.Add(eph.Step()),
		"interp":   start.Add(eph.Step() + eph.Step()/2),
	} {
		allocs := testing.AllocsPerRun(100, func() {
			if _, _, err := eph.PositionECEF(q); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("instrumented %s query allocates %v times per query", name, allocs)
		}
	}
}
