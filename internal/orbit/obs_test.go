package orbit

import (
	"testing"
	"time"

	"github.com/sinet-io/sinet/internal/obs"
)

// TestSetMetricsCountsPropagationAndGrid verifies the installed counters
// see SGP4 calls and ephemeris grid hits/misses, and that uninstalling
// stops the flow.
func TestSetMetricsCountsPropagationAndGrid(t *testing.T) {
	prop, err := NewPropagator(leoElements())
	if err != nil {
		t.Fatal(err)
	}
	start := leoElements().Epoch
	eph := NewEphemeris(prop, start, start.Add(10*time.Minute), time.Minute)

	r := obs.New()
	SetMetrics(r)
	defer SetMetrics(nil)
	sgp4 := r.Counter("sinet_sgp4_calls_total", "")
	hits := r.Counter("sinet_ephemeris_hits_total", "")
	misses := r.Counter("sinet_ephemeris_misses_total", "")

	if _, _, err := eph.PositionECEF(start.Add(2 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	if got := hits.Value(); got != 1 {
		t.Errorf("grid query: hits = %d, want 1", got)
	}
	if got := sgp4.Value(); got != 0 {
		t.Errorf("grid query must not propagate: sgp4 = %d", got)
	}

	if _, _, err := eph.PositionECEF(start.Add(90 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if got := misses.Value(); got != 1 {
		t.Errorf("off-grid query: misses = %d, want 1", got)
	}
	if got := sgp4.Value(); got == 0 {
		t.Errorf("off-grid query must fall back to SGP4")
	}

	SetMetrics(nil)
	before := sgp4.Value()
	if _, _, err := eph.PositionECEF(start.Add(30 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if got := sgp4.Value(); got != before {
		t.Errorf("uninstalled telemetry still counting: %d -> %d", before, got)
	}
}

// TestUninstrumentedGridHitAllocatesNothing pins the hot-path contract:
// with no registry installed, an on-grid ephemeris query performs zero
// allocations.
func TestUninstrumentedGridHitAllocatesNothing(t *testing.T) {
	prop, err := NewPropagator(leoElements())
	if err != nil {
		t.Fatal(err)
	}
	start := leoElements().Epoch
	eph := NewEphemeris(prop, start, start.Add(10*time.Minute), time.Minute)
	SetMetrics(nil)
	q := start.Add(3 * time.Minute)
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := eph.PositionECEF(q); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("uninstrumented grid hit allocates %v times per query", allocs)
	}
}
