package orbit

import (
	"math"
	"strings"
	"testing"
)

// validTLE is a well-formed Tianqi-style card for the seed corpus.
const validTLE = `TIANQI-1
1 44027U 24001A   24245.50000000  .00001000  00000+0  10000-3 0  9994
2 44027  97.5000 120.0000 0012000  45.0000 315.0000 14.80000000100003`

// FuzzParseTLE hammers the TLE parser with arbitrary byte soup. The
// contract under test: ParseTLE never panics, and any card it accepts is
// internally sane — finite fields that survive a Format round-trip
// (Format must terminate and re-parse).
func FuzzParseTLE(f *testing.F) {
	f.Add(validTLE)
	f.Add("1 25544U 98067A   24001.50000000  .00016717  00000-0  10270-3 0  9005\n" +
		"2 25544  51.6400 208.9163 0006317  69.9862 254.3157 15.49309239 20002")
	f.Add("")
	f.Add("1 44027U\n2 44027")                      // truncated lines
	f.Add("garbage\nmore garbage\neven more")      // three junk lines
	f.Add(strings.Repeat("1", 70) + "\n" + strings.Repeat("2", 70))
	f.Add("1 44027U 24001A   24245.50000000  .00001000  00000+0  10000-3 0  9994\n" +
		"2 44027  97.5000 120.0000 0012000  45.0000 315.0000 14.80000000100009") // bad checksum
	f.Add("1 44027U 24001A   24245.50000000  NaN         00000+0  10000-3 0  9994\n" +
		"2 44027  97.5000 120.0000 0012000  45.0000 315.0000 14.80000000100003") // NaN smuggling
	f.Add("名前\n1 44027U 24001A   24245.50000000  .00001000  00000+0  10000-3 0  9994\n" +
		"2 44027  97.5000 120.0000 0012000  45.0000 315.0000 14.80000000100003") // non-ASCII name

	f.Fuzz(func(t *testing.T, text string) {
		tle, err := ParseTLE(text)
		if err != nil {
			return
		}
		for name, v := range map[string]float64{
			"ndot": tle.NDot, "nddot": tle.NDDot, "bstar": tle.BStar,
			"inclination": tle.InclinationDeg, "raan": tle.RAANDeg,
			"eccentricity": tle.Eccentricity, "argp": tle.ArgPerigeeDeg,
			"meananomaly": tle.MeanAnomalyDeg, "meanmotion": tle.MeanMotion,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("accepted TLE carries non-finite %s = %v", name, v)
			}
		}
		// Format must terminate and produce a parseable card again.
		if _, err := ParseTLE(tle.Format()); err != nil {
			t.Fatalf("round-trip re-parse failed: %v", err)
		}
	})
}
