package orbit

import (
	"math"
	"sync"
	"time"
)

// EphemerisGrid batch-samples a whole constellation on one shared time
// grid. Sample storage is struct-of-arrays: six contiguous []float64
// component arrays sized sats×steps, so a 10k-satellite grid costs six
// allocations (plus one Ephemeris view per satellite) instead of
// thousands of per-satellite slices, and the Greenwich sidereal angles —
// which depend only on the step, not the satellite — are computed once
// per step and shared by every row.
//
// Construction allocates and calibrates; the rows themselves are filled by
// Propagate, which is safe to fan out across workers as long as each row
// index is propagated exactly once (the campaign worker pools already
// guarantee index-addressed single ownership). PropagateAll fills the grid
// serially for callers without a pool.
//
// Once propagated, a grid and its Sat views are safe for concurrent reads
// from any number of goroutines.
type EphemerisGrid struct {
	start time.Time
	step  time.Duration
	cfg   EphemerisConfig

	views  []Ephemeris
	buf    []float64 // [px | py | pz | vx | vy | vz], each sats×steps
	thetas []float64 // per-step GMST, shared by all rows

	// rowErrKm records each row's worst probed interpolation error, filled
	// by Propagate (distinct indices, so concurrent workers never race).
	rowErrKm []float64
}

// gmstPool recycles the per-step sidereal-angle scratch column across grid
// constructions: campaigns build one grid per constellation with identical
// spans, so the buffer is reused rather than reallocated per grid.
var gmstPool = sync.Pool{New: func() any { return new([]float64) }}

// NewEphemerisGrid allocates a grid covering [start, end] (plus scan-step
// padding) for every propagator. In interpolated mode (the default) the
// sample step is calibrated once against cfg.MaxInterpErrorKm by probing a
// spread of the constellation's satellites, so the grid samples as
// coarsely as the error bound allows.
func NewEphemerisGrid(props []*Propagator, start, end time.Time, cfg EphemerisConfig) *EphemerisGrid {
	cfg.setDefaults()
	sample := cfg.SampleStep
	if sample <= 0 {
		if cfg.Exact || len(props) == 0 {
			sample = cfg.ScanStep
		} else {
			sample = calibrateSampleStep(props, start, end, cfg)
		}
	}
	cfg.SampleStep = sample

	g := &EphemerisGrid{start: start, step: sample, cfg: cfg}
	g.views = make([]Ephemeris, len(props))
	g.rowErrKm = make([]float64, len(props))
	n := 0
	for i, p := range props {
		e := newEphemerisShell(p.Elements(), p.Clone(), start, end, sample, cfg)
		g.views[i] = *e
		n = e.n
	}
	if len(props) == 0 {
		return g
	}
	g.buf = make([]float64, 6*len(props)*n)
	for i := range g.views {
		g.views[i].attach(g.buf, i, len(props))
	}

	scratch := gmstPool.Get().(*[]float64)
	if cap(*scratch) < n {
		*scratch = make([]float64, n)
	}
	g.thetas = (*scratch)[:n]
	for k := 0; k < n; k++ {
		g.thetas[k] = GMSTAt(start.Add(time.Duration(k) * sample))
	}
	return g
}

// Sats returns the number of satellites in the grid.
func (g *EphemerisGrid) Sats() int { return len(g.views) }

// Step returns the calibrated sampling step.
func (g *EphemerisGrid) Step() time.Duration { return g.step }

// ScanStep returns the pass-search coarse step the grid serves.
func (g *EphemerisGrid) ScanStep() time.Duration { return g.cfg.ScanStep }

// Sat returns the shared ephemeris view of satellite i. The view aliases
// the grid's sample arrays — no copy — and is only valid for queries after
// Propagate(i) (or PropagateAll) has run.
func (g *EphemerisGrid) Sat(i int) *Ephemeris { return &g.views[i] }

// Propagate fills row i by exact SGP4 propagation and, in interpolated
// mode, probes the row's midpoint error against exact SGP4, demoting the
// row to exact fallback if it exceeds the configured bound. Safe to call
// concurrently for distinct rows.
func (g *EphemerisGrid) Propagate(i int) {
	e := &g.views[i]
	e.propagateRow(g.thetas)
	if !g.cfg.Exact {
		g.rowErrKm[i] = e.validateRow(2)
	}
}

// PropagateAll fills every row serially and releases construction
// scratch. Campaigns that fan Propagate across a worker pool should call
// Finish afterwards instead.
func (g *EphemerisGrid) PropagateAll() {
	for i := range g.views {
		g.Propagate(i)
	}
	g.Finish()
}

// Finish releases construction scratch once every row has been
// propagated. Further Propagate calls are invalid after Finish.
func (g *EphemerisGrid) Finish() {
	if g.thetas != nil {
		scratch := g.thetas[:0]
		gmstPool.Put(&scratch)
		g.thetas = nil
	}
}

// WorstInterpErrorKm returns the largest probed interpolation error across
// all rows (zero for exact grids).
func (g *EphemerisGrid) WorstInterpErrorKm() float64 {
	worst := 0.0
	for _, e := range g.rowErrKm {
		worst = math.Max(worst, e)
	}
	return worst
}

// ExactRows counts rows that fell back to exact mode — configured, or
// demoted because their probed interpolation error exceeded the bound.
func (g *EphemerisGrid) ExactRows() int {
	n := 0
	for i := range g.views {
		if g.views[i].exact {
			n++
		}
	}
	return n
}
