package orbit

import (
	"math"
	"testing"
	"time"
)

func keplerElements() Elements {
	return Elements{
		NoradID:      90500,
		Name:         "KEPLER-TEST",
		Epoch:        time.Date(2024, 10, 1, 0, 0, 0, 0, time.UTC),
		Inclination:  51.6 * deg2Rad,
		Eccentricity: 0.001,
		ArgPerigee:   0.3,
		MeanAnomaly:  1.1,
		MeanMotion:   MeanMotionFromAltitude(550),
	}
}

func TestKeplerCircularRadius(t *testing.T) {
	e := keplerElements()
	k := NewKeplerPropagator(e)
	if a := k.SemiMajorAxisKm(); math.Abs(a-(gravityRadiusKm+550)) > 1 {
		t.Errorf("semi-major axis %.1f, want ≈%.1f", a, gravityRadiusKm+550)
	}
	// Near-circular orbit: radius stays within a·(1±2e).
	for m := 0; m < 200; m += 13 {
		s := k.PropagateTo(e.Epoch.Add(time.Duration(m) * time.Minute))
		r := s.Position.Norm()
		if math.Abs(r-k.SemiMajorAxisKm()) > k.SemiMajorAxisKm()*0.003 {
			t.Errorf("t=+%dm: radius %.1f deviates from circular", m, r)
		}
	}
}

func TestKeplerPeriodicity(t *testing.T) {
	e := keplerElements()
	k := NewKeplerPropagator(e)
	period := twoPi / e.MeanMotion // minutes
	s0 := k.PropagateTo(e.Epoch)
	s1 := k.PropagateTo(e.Epoch.Add(time.Duration(period * float64(time.Minute))))
	// After one period the position nearly repeats (small J2 drift only).
	if d := s0.Position.Sub(s1.Position).Norm(); d > 30 {
		t.Errorf("position after one period differs by %.1f km", d)
	}
}

func TestKeplerVisViva(t *testing.T) {
	e := keplerElements()
	k := NewKeplerPropagator(e)
	a := k.SemiMajorAxisKm()
	for m := 0; m < 300; m += 17 {
		s := k.PropagateTo(e.Epoch.Add(time.Duration(m) * time.Minute))
		r := s.Position.Norm()
		v2 := s.Velocity.Dot(s.Velocity)
		want := gravityMu * (2/r - 1/a)
		if rel := math.Abs(v2-want) / want; rel > 1e-3 {
			t.Errorf("t=+%dm: vis-viva off by %.4f%%", m, rel*100)
		}
	}
}

func TestKeplerAngularMomentumDirection(t *testing.T) {
	e := keplerElements()
	k := NewKeplerPropagator(e)
	s := k.PropagateTo(e.Epoch.Add(37 * time.Minute))
	h := s.Position.Cross(s.Velocity)
	incl := math.Acos(h.Z / h.Norm())
	if math.Abs(incl-e.Inclination) > 1e-6 {
		t.Errorf("inclination from h = %.6f, want %.6f", incl, e.Inclination)
	}
}

func TestKeplerNodeRegressionSign(t *testing.T) {
	// Prograde orbit (i < 90°): node regresses westward (raanDot < 0).
	k := NewKeplerPropagator(keplerElements())
	if k.raanDot >= 0 {
		t.Errorf("prograde raanDot = %v, want negative", k.raanDot)
	}
	// Retrograde (i > 90°): node advances.
	e := keplerElements()
	e.Inclination = 97.5 * deg2Rad
	k = NewKeplerPropagator(e)
	if k.raanDot <= 0 {
		t.Errorf("retrograde raanDot = %v, want positive", k.raanDot)
	}
}

func TestKeplerEccentricOrbit(t *testing.T) {
	// A mildly eccentric orbit: perigee/apogee radii match a(1∓e).
	e := keplerElements()
	e.Eccentricity = 0.02
	e.MeanAnomaly = 0 // start at perigee
	k := NewKeplerPropagator(e)
	a := k.SemiMajorAxisKm()

	s := k.PropagateTo(e.Epoch)
	if r := s.Position.Norm(); math.Abs(r-a*(1-0.02)) > 2 {
		t.Errorf("perigee radius %.1f, want %.1f", r, a*0.98)
	}
	// Half a period later: apogee.
	half := time.Duration(twoPi / e.MeanMotion / 2 * float64(time.Minute))
	s = k.PropagateTo(e.Epoch.Add(half))
	if r := s.Position.Norm(); math.Abs(r-a*(1+0.02)) > 5 {
		t.Errorf("apogee radius %.1f, want %.1f", r, a*1.02)
	}
}
