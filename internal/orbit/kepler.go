package orbit

import (
	"math"
	"time"
)

// KeplerPropagator is a two-body (unperturbed, apart from secular J2 node
// and perigee drift) propagator. It serves as the paper-style "theoretical"
// baseline and as an independent cross-check on SGP4: over a few orbits the
// two must agree to within the well-known short-period perturbation
// amplitude (tens of km for LEO).
type KeplerPropagator struct {
	els Elements

	a       float64 // semi-major axis, km
	n       float64 // mean motion, rad/s
	raanDot float64 // secular J2 node regression, rad/s
	argpDot float64 // secular J2 perigee drift, rad/s
	mDot    float64 // secular J2 mean-anomaly drift, rad/s (on top of n)
}

// NewKeplerPropagator builds the baseline propagator from the same element
// set SGP4 consumes.
func NewKeplerPropagator(e Elements) *KeplerPropagator {
	n := e.MeanMotion / 60.0 // rad/s
	a := math.Cbrt(gravityMu / (n * n))
	cosi := math.Cos(e.Inclination)
	p := a * (1 - e.Eccentricity*e.Eccentricity)
	factor := 1.5 * j2 * (gravityRadiusKm / p) * (gravityRadiusKm / p) * n
	return &KeplerPropagator{
		els:     e,
		a:       a,
		n:       n,
		raanDot: -factor * cosi,
		argpDot: factor * (2 - 2.5*math.Sin(e.Inclination)*math.Sin(e.Inclination)),
		mDot:    factor * math.Sqrt(1-e.Eccentricity*e.Eccentricity) * (1 - 1.5*math.Sin(e.Inclination)*math.Sin(e.Inclination)),
	}
}

// SemiMajorAxisKm returns the orbit's semi-major axis.
func (k *KeplerPropagator) SemiMajorAxisKm() float64 { return k.a }

// PropagateTo returns the TEME state at time t.
func (k *KeplerPropagator) PropagateTo(t time.Time) State {
	dt := t.Sub(k.els.Epoch).Seconds()
	return k.propagate(dt)
}

// propagate advances dt seconds past epoch.
func (k *KeplerPropagator) propagate(dt float64) State {
	e := k.els.Eccentricity
	m := wrapTwoPi(k.els.MeanAnomaly + (k.n+k.mDot)*dt)
	raan := k.els.RAAN + k.raanDot*dt
	argp := k.els.ArgPerigee + k.argpDot*dt

	// Solve Kepler's equation M = E - e sinE by Newton iteration.
	ea := m
	if e > 0.8 {
		ea = math.Pi
	}
	for i := 0; i < 20; i++ {
		d := (ea - e*math.Sin(ea) - m) / (1 - e*math.Cos(ea))
		ea -= d
		if math.Abs(d) < 1e-12 {
			break
		}
	}
	sinE, cosE := math.Sin(ea), math.Cos(ea)

	// True anomaly and radius.
	nu := math.Atan2(math.Sqrt(1-e*e)*sinE, cosE-e)
	r := k.a * (1 - e*cosE)

	// Perifocal position/velocity.
	pSLR := k.a * (1 - e*e)
	rp := Vec3{r * math.Cos(nu), r * math.Sin(nu), 0}
	vScale := math.Sqrt(gravityMu / pSLR)
	vp := Vec3{-vScale * math.Sin(nu), vScale * (e + math.Cos(nu)), 0}

	// Rotate perifocal → inertial: Rz(-raan) Rx(-i) Rz(-argp).
	rPos := rotZInv(rotXInv(rotZInv(rp, argp), k.els.Inclination), raan)
	vVel := rotZInv(rotXInv(rotZInv(vp, argp), k.els.Inclination), raan)
	return State{Position: rPos, Velocity: vVel}
}

// rotZInv rotates the vector by +theta about Z (inverse frame rotation).
func rotZInv(v Vec3, theta float64) Vec3 {
	c, s := math.Cos(theta), math.Sin(theta)
	return Vec3{c*v.X - s*v.Y, s*v.X + c*v.Y, v.Z}
}

// rotXInv rotates the vector by +theta about X.
func rotXInv(v Vec3, theta float64) Vec3 {
	c, s := math.Cos(theta), math.Sin(theta)
	return Vec3{v.X, c*v.Y - s*v.Z, s*v.Y + c*v.Z}
}
