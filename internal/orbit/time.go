// Package orbit implements the orbital-mechanics substrate of SINet: TLE
// parsing and generation, the SGP4 analytical propagator (near-earth model
// from Spacetrack Report #3 as revised by Vallado et al. 2006), coordinate
// transforms between TEME, ECEF and geodetic frames, observer look angles,
// and satellite pass prediction for ground stations.
//
// All distances are kilometres, velocities km/s, and angles radians unless
// a name says otherwise.
package orbit

import (
	"math"
	"time"
)

const (
	// twoPi is used pervasively for angle normalization.
	twoPi = 2 * math.Pi

	// deg2Rad converts degrees to radians.
	deg2Rad = math.Pi / 180

	// rad2Deg converts radians to degrees.
	rad2Deg = 180 / math.Pi

	// minutesPerDay is the number of minutes in a solar day.
	minutesPerDay = 1440.0

	// j2000 is the Julian date of the J2000.0 epoch.
	j2000 = 2451545.0

	// julianCentury is the number of days in a Julian century.
	julianCentury = 36525.0
)

// JulianDate returns the Julian date of t (UTC). The conversion follows the
// standard algorithm of Vallado, valid for years 1900-2100, which covers
// every epoch a TLE can express.
func JulianDate(t time.Time) float64 {
	t = t.UTC()
	year := t.Year()
	month := int(t.Month())
	day := t.Day()
	hour := t.Hour()
	minute := t.Minute()
	sec := float64(t.Second()) + float64(t.Nanosecond())/1e9

	jd := 367.0*float64(year) -
		math.Floor(7.0*(float64(year)+math.Floor(float64(month+9)/12.0))*0.25) +
		math.Floor(275.0*float64(month)/9.0) +
		float64(day) + 1721013.5
	frac := (sec/60.0+float64(minute))/60.0 + float64(hour)
	return jd + frac/24.0
}

// TimeFromJulian converts a Julian date back to UTC time. It inverts
// JulianDate to sub-millisecond precision, which is far below the fidelity
// of TLE epochs themselves.
func TimeFromJulian(jd float64) time.Time {
	// Days since Go's reference of the Unix epoch: JD 2440587.5.
	const unixEpochJD = 2440587.5
	seconds := (jd - unixEpochJD) * 86400.0
	sec := math.Floor(seconds)
	nsec := (seconds - sec) * 1e9
	return time.Unix(int64(sec), int64(nsec)).UTC()
}

// GMST returns the Greenwich mean sidereal time in radians in [0, 2π) for
// the given Julian date (UT1 ≈ UTC is assumed, an error far below link-budget
// relevance). IAU-82 model.
func GMST(jd float64) float64 {
	tut1 := (jd - j2000) / julianCentury
	sec := 67310.54841 +
		(876600.0*3600.0+8640184.812866)*tut1 +
		0.093104*tut1*tut1 -
		6.2e-6*tut1*tut1*tut1
	// Convert seconds of time to radians (360°/86400s) and normalize.
	theta := math.Mod(sec*deg2Rad/240.0, twoPi)
	if theta < 0 {
		theta += twoPi
	}
	return theta
}

// GMSTAt is a convenience wrapper returning GMST for a wall-clock time.
func GMSTAt(t time.Time) float64 {
	return GMST(JulianDate(t))
}

// wrapTwoPi normalizes an angle to [0, 2π).
func wrapTwoPi(x float64) float64 {
	x = math.Mod(x, twoPi)
	if x < 0 {
		x += twoPi
	}
	return x
}

// wrapPi normalizes an angle to (-π, π].
func wrapPi(x float64) float64 {
	x = wrapTwoPi(x)
	if x > math.Pi {
		x -= twoPi
	}
	return x
}

// epochToTime converts a TLE epoch (two-digit year and fractional day of
// year) to UTC time. Per convention, years 57-99 map to 1957-1999 and 00-56
// map to 2000-2056.
func epochToTime(yy int, doy float64) time.Time {
	year := yy
	if year < 57 {
		year += 2000
	} else {
		year += 1900
	}
	base := time.Date(year, time.January, 1, 0, 0, 0, 0, time.UTC)
	// Day-of-year is 1-based.
	return base.Add(time.Duration((doy - 1.0) * 24 * float64(time.Hour)))
}

// timeToEpoch converts a UTC time to the TLE (two-digit year, fractional
// day-of-year) representation.
func timeToEpoch(t time.Time) (yy int, doy float64) {
	t = t.UTC()
	year := t.Year()
	base := time.Date(year, time.January, 1, 0, 0, 0, 0, time.UTC)
	doy = 1.0 + t.Sub(base).Hours()/24.0
	return year % 100, doy
}
