package orbit

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// issTLE is a historical ISS element set (epoch 2008-09-20), the canonical
// test card used by the reference SGP4 distribution.
const issTLE = `ISS (ZARYA)
1 25544U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  2927
2 25544  51.6416 247.4627 0006703 130.5360 325.0288 15.72125391563537`

func TestParseTLEISS(t *testing.T) {
	tle, err := ParseTLE(issTLE)
	if err != nil {
		t.Fatalf("ParseTLE: %v", err)
	}
	if tle.Name != "ISS (ZARYA)" {
		t.Errorf("Name = %q", tle.Name)
	}
	if tle.NoradID != 25544 {
		t.Errorf("NoradID = %d", tle.NoradID)
	}
	if tle.Class != 'U' {
		t.Errorf("Class = %c", tle.Class)
	}
	if tle.IntlDesig != "98067A" {
		t.Errorf("IntlDesig = %q", tle.IntlDesig)
	}
	if got := tle.Epoch.Year(); got != 2008 {
		t.Errorf("Epoch year = %d", got)
	}
	if math.Abs(tle.InclinationDeg-51.6416) > 1e-9 {
		t.Errorf("Inclination = %v", tle.InclinationDeg)
	}
	if math.Abs(tle.Eccentricity-0.0006703) > 1e-12 {
		t.Errorf("Eccentricity = %v", tle.Eccentricity)
	}
	if math.Abs(tle.MeanMotion-15.72125391) > 1e-8 {
		t.Errorf("MeanMotion = %v", tle.MeanMotion)
	}
	if math.Abs(tle.BStar-(-0.11606e-4)) > 1e-12 {
		t.Errorf("BStar = %v", tle.BStar)
	}
	if math.Abs(tle.NDot-(-0.00002182)) > 1e-12 {
		t.Errorf("NDot = %v", tle.NDot)
	}
	if tle.RevNumber != 56353 {
		t.Errorf("RevNumber = %d", tle.RevNumber)
	}
}

func TestParseTLETwoLines(t *testing.T) {
	lines := strings.SplitN(issTLE, "\n", 2)[1]
	tle, err := ParseTLE(lines)
	if err != nil {
		t.Fatalf("ParseTLE without name: %v", err)
	}
	if tle.Name != "" || tle.NoradID != 25544 {
		t.Errorf("got name=%q id=%d", tle.Name, tle.NoradID)
	}
}

func TestParseTLEChecksumRejected(t *testing.T) {
	bad := strings.Replace(issTLE, "0  2927", "0  2928", 1)
	if _, err := ParseTLE(bad); !errors.Is(err, ErrTLEChecksum) {
		t.Errorf("want ErrTLEChecksum, got %v", err)
	}
}

func TestParseTLEFormatErrors(t *testing.T) {
	cases := []string{
		"",
		"only one line",
		"a\nb\nc\nd",
		"2 25544  51.6416 247.4627 0006703 130.5360 325.0288 15.72125391563537\n" +
			"1 25544U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  2927",
	}
	for _, c := range cases {
		if _, err := ParseTLE(c); err == nil {
			t.Errorf("ParseTLE(%q) succeeded, want error", c)
		}
	}
}

func TestChecksum(t *testing.T) {
	// '-' counts as 1, letters as 0.
	if got := checksum("1 25544U"); got != (1+2+5+5+4+4)%10 {
		t.Errorf("checksum = %d", got)
	}
	if got := checksum("---"); got != 3 {
		t.Errorf("checksum of dashes = %d", got)
	}
}

func TestParseExpField(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{" 00000-0", 0},
		{" 00000+0", 0},
		{"-11606-4", -0.11606e-4},
		{" 34123-4", 0.34123e-4},
		{" 13844-3", 0.13844e-3},
		{"", 0},
	}
	for _, c := range cases {
		got, err := parseExpField(c.in)
		if err != nil {
			t.Errorf("parseExpField(%q): %v", c.in, err)
			continue
		}
		if math.Abs(got-c.want) > 1e-15 {
			t.Errorf("parseExpField(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	orig, err := ParseTLE(issTLE)
	if err != nil {
		t.Fatal(err)
	}
	re, err := ParseTLE(orig.Format())
	if err != nil {
		t.Fatalf("re-parse formatted TLE: %v\n%s", err, orig.Format())
	}
	if re.NoradID != orig.NoradID {
		t.Errorf("NoradID changed: %d -> %d", orig.NoradID, re.NoradID)
	}
	if math.Abs(re.InclinationDeg-orig.InclinationDeg) > 1e-4 {
		t.Errorf("inclination drift: %v -> %v", orig.InclinationDeg, re.InclinationDeg)
	}
	if math.Abs(re.MeanMotion-orig.MeanMotion) > 1e-7 {
		t.Errorf("mean motion drift: %v -> %v", orig.MeanMotion, re.MeanMotion)
	}
	if math.Abs(re.Eccentricity-orig.Eccentricity) > 1e-7 {
		t.Errorf("eccentricity drift: %v -> %v", orig.Eccentricity, re.Eccentricity)
	}
	if math.Abs(re.BStar-orig.BStar) > 1e-9 {
		t.Errorf("bstar drift: %v -> %v", orig.BStar, re.BStar)
	}
	if d := re.Epoch.Sub(orig.Epoch); d < -time.Millisecond || d > time.Millisecond {
		t.Errorf("epoch drift %v", d)
	}
}

func TestElementsRoundTrip(t *testing.T) {
	prop := func(incl, raan, ecc, argp, ma, mm uint16) bool {
		e := Elements{
			NoradID:      90001,
			Epoch:        time.Date(2024, 10, 1, 0, 0, 0, 0, time.UTC),
			Inclination:  float64(incl) / 65535 * math.Pi,
			RAAN:         float64(raan) / 65535 * twoPi,
			Eccentricity: float64(ecc) / 65535 * 0.01,
			ArgPerigee:   float64(argp) / 65535 * twoPi,
			MeanAnomaly:  float64(ma) / 65535 * twoPi,
			MeanMotion:   (14 + 2*float64(mm)/65535) * twoPi / minutesPerDay,
		}
		back := e.TLE().Elements()
		return math.Abs(back.Inclination-e.Inclination) < 1e-4 &&
			math.Abs(back.Eccentricity-e.Eccentricity) < 1e-6 &&
			math.Abs(back.MeanMotion-e.MeanMotion) < 1e-8
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFormatChecksumsValid(t *testing.T) {
	e := Elements{
		NoradID:      90001,
		Name:         "SINET-TEST",
		Epoch:        time.Date(2024, 10, 1, 0, 0, 0, 0, time.UTC),
		Inclination:  97.6 * deg2Rad,
		RAAN:         123.4 * deg2Rad,
		Eccentricity: 0.0012,
		ArgPerigee:   45 * deg2Rad,
		MeanAnomaly:  10 * deg2Rad,
		MeanMotion:   MeanMotionFromAltitude(550),
		BStar:        1.5e-5,
	}
	card := e.TLE().Format()
	if _, err := ParseTLE(card); err != nil {
		t.Fatalf("generated card fails to parse: %v\n%s", err, card)
	}
}

func TestMeanMotionAltitudeInverse(t *testing.T) {
	for _, alt := range []float64{300, 441.9, 550, 815.7, 897.5, 2000} {
		n := MeanMotionFromAltitude(alt)
		back := AltitudeFromMeanMotion(n)
		if math.Abs(back-alt) > 1e-6 {
			t.Errorf("altitude %v -> %v", alt, back)
		}
	}
	// ISS-like altitude should give ~15.5 rev/day.
	revPerDay := MeanMotionFromAltitude(420) * minutesPerDay / twoPi
	if revPerDay < 15.4 || revPerDay > 15.8 {
		t.Errorf("420 km -> %.2f rev/day, want ~15.6", revPerDay)
	}
}

func TestOrbitalPeriod(t *testing.T) {
	e := Elements{MeanMotion: MeanMotionFromAltitude(550)}
	p := e.OrbitalPeriod()
	if p < 90*time.Minute || p > 100*time.Minute {
		t.Errorf("550 km period = %v, want ~95.5 min", p)
	}
}

func TestFormatExpField(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, " 00000+0"},
		{0.34123e-4, " 34123-4"},
		{-0.11606e-4, "-11606-4"},
	}
	for _, c := range cases {
		if got := formatExpField(c.in); got != c.want {
			t.Errorf("formatExpField(%v) = %q, want %q", c.in, got, c.want)
		}
	}
	// Round trip property on the representable range.
	prop := func(m uint16, negExp bool) bool {
		v := (float64(m)/65536 + 1e-6) * 1e-3
		if negExp {
			v = -v
		}
		got, err := parseExpField(formatExpField(v))
		if err != nil {
			return false
		}
		return math.Abs(got-v) <= math.Abs(v)*1e-4+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
