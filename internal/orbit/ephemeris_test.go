package orbit

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestEphemerisMatchesPropagatorBitExact(t *testing.T) {
	p, err := NewPropagator(leoElements())
	if err != nil {
		t.Fatal(err)
	}
	start := leoElements().Epoch
	step := 30 * time.Second
	eph := NewEphemerisWith(p, start, start.Add(2*time.Hour), EphemerisConfig{ScanStep: step, Exact: true})

	// In exact mode, on-grid queries come from the cache and off-grid
	// queries fall back to exact SGP4. Both must be bit-identical to
	// direct propagation — the escape hatch preserves the
	// pre-interpolation golden behavior.
	offsets := []time.Duration{
		0, step, 17 * step, 240 * step,
		13 * time.Second, 31*time.Minute + 7*time.Millisecond,
	}
	for _, off := range offsets {
		at := start.Add(off)
		r1, v1, err1 := p.PositionECEF(at)
		r2, v2, err2 := eph.PositionECEF(at)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("offset %v: error mismatch %v vs %v", off, err1, err2)
		}
		if r1 != r2 || v1 != v2 {
			t.Errorf("offset %v: state differs: %v/%v vs %v/%v", off, r1, v1, r2, v2)
		}
	}
	// Before the grid start the cache cannot answer; it must still agree.
	at := start.Add(-time.Minute)
	r1, _, _ := p.PositionECEF(at)
	r2, _, _ := eph.PositionECEF(at)
	if r1 != r2 {
		t.Errorf("pre-span query differs: %v vs %v", r1, r2)
	}
}

func TestEphemerisPredictorPassesBitIdentical(t *testing.T) {
	p, err := NewPropagator(leoElements())
	if err != nil {
		t.Fatal(err)
	}
	start := leoElements().Epoch
	end := start.Add(24 * time.Hour)
	site := NewGeodeticDeg(22.3, 114.2, 0)

	direct := NewPassPredictor(p).Passes(site, start, end, 0)
	eph := NewEphemerisWith(p, start, end, EphemerisConfig{ScanStep: 30 * time.Second, Exact: true})
	cached := NewEphemerisPredictor(eph).Passes(site, start, end, 0)
	if !reflect.DeepEqual(direct, cached) {
		t.Fatalf("cached passes differ from direct passes:\n%v\nvs\n%v", cached, direct)
	}
}

func TestEphemerisInterpolationStaysWithinBound(t *testing.T) {
	p, err := NewPropagator(leoElements())
	if err != nil {
		t.Fatal(err)
	}
	start := leoElements().Epoch
	end := start.Add(6 * time.Hour)
	eph := NewEphemeris(p, start, end, 30*time.Second)
	if eph.Exact() {
		t.Fatal("default ephemeris should interpolate, not run exact")
	}

	// Interpolated states must stay within the configured positional bound
	// of exact SGP4 at arbitrary off-grid instants, including awkward
	// sub-second offsets.
	offsets := []time.Duration{
		13 * time.Second, 71 * time.Second, 31*time.Minute + 7*time.Millisecond,
		2*time.Hour + 17*time.Second + 500*time.Microsecond,
		5*time.Hour + 59*time.Minute + 59*time.Second,
	}
	for _, off := range offsets {
		at := start.Add(off)
		exact, _, err1 := p.PositionECEF(at)
		interp, _, err2 := eph.PositionECEF(at)
		if err1 != nil || err2 != nil {
			t.Fatalf("offset %v: errors %v / %v", off, err1, err2)
		}
		if d := interp.Sub(exact).Norm(); d > eph.MaxInterpErrorKm() {
			t.Errorf("offset %v: interpolation error %.4f km exceeds bound %.4f km",
				off, d, eph.MaxInterpErrorKm())
		}
	}
}

func TestEphemerisInterpolationNeverSnapsOffGridQueries(t *testing.T) {
	// Regression: grid-hit detection must use a strict zero-remainder
	// contract for any step — including steps that do not divide the span —
	// so a query one nanosecond off-grid is interpolated (or propagated in
	// exact mode), never snapped to the nearest stored sample.
	p, err := NewPropagator(leoElements())
	if err != nil {
		t.Fatal(err)
	}
	start := leoElements().Epoch
	// A step that does not divide the requested span.
	step := 7*time.Second + 300*time.Millisecond
	end := start.Add(31 * time.Minute)

	for _, exact := range []bool{false, true} {
		eph := NewEphemerisWith(p, start, end, EphemerisConfig{ScanStep: step, SampleStep: step, Exact: exact})
		if got := eph.Step(); got != step {
			t.Fatalf("exact=%v: sample step %v, want %v", exact, got, step)
		}
		on := start.Add(4 * step)
		off := on.Add(time.Nanosecond)
		rOn, _, err := eph.PositionECEF(on)
		if err != nil {
			t.Fatal(err)
		}
		rOff, _, err := eph.PositionECEF(off)
		if err != nil {
			t.Fatal(err)
		}
		if rOn == rOff {
			t.Errorf("exact=%v: query 1ns off-grid returned the stored sample verbatim — snapped instead of interpolated/propagated", exact)
		}
		// The 1ns offset must still agree with exact propagation to within
		// the bound (and bit-exactly in exact mode).
		want, _, err := p.PositionECEF(off)
		if err != nil {
			t.Fatal(err)
		}
		if exact {
			if rOff != want {
				t.Errorf("exact mode: off-grid state %v differs from direct propagation %v", rOff, want)
			}
		} else if d := rOff.Sub(want).Norm(); d > eph.MaxInterpErrorKm() {
			t.Errorf("interp mode: off-grid error %.4f km exceeds bound", d)
		}
	}
}

func TestEphemerisCutsPropagationsToSatsTimesSteps(t *testing.T) {
	p, err := NewPropagator(leoElements())
	if err != nil {
		t.Fatal(err)
	}
	start := leoElements().Epoch
	end := start.Add(24 * time.Hour)
	step := 30 * time.Second
	steps := int64(end.Sub(start) / step)
	sites := []Geodetic{
		NewGeodeticDeg(22.3, 114.2, 0),
		NewGeodeticDeg(-33.87, 151.2, 0),
		NewGeodeticDeg(51.5, -0.1, 0),
		NewGeodeticDeg(40.44, -79.99, 0),
		NewGeodeticDeg(0, 0, 0),
		NewGeodeticDeg(25.04, 102.72, 1.9),
	}

	ResetSGP4Calls()
	for _, site := range sites {
		NewPassPredictor(p).Passes(site, start, end, 0)
	}
	serial := SGP4Calls()

	ResetSGP4Calls()
	eph := NewEphemerisWith(p, start, end, EphemerisConfig{ScanStep: step, Exact: true})
	build := SGP4Calls()
	for _, site := range sites {
		NewEphemerisPredictor(eph).Passes(site, start, end, 0)
	}
	shared := SGP4Calls()

	if build < steps || build > steps+8 {
		t.Errorf("ephemeris build used %d propagations, want ~%d (one per step)", build, steps)
	}
	// With the shared cache the per-site marginal cost is AOS/LOS
	// refinement only — far below one propagation per coarse step.
	marginal := (shared - build) / int64(len(sites))
	if marginal > steps/4 {
		t.Errorf("per-site marginal propagations %d, want ≪ %d coarse steps", marginal, steps)
	}
	// And the whole O(sats×steps + sites×refine) total must clearly beat
	// the O(sats×sites×steps) serial count.
	if shared*2 > serial {
		t.Errorf("shared total %d not at least 2× below serial total %d", shared, serial)
	}

	// Interpolated mode samples coarser than it scans and answers scan and
	// bisection queries from the interpolant, so the entire shared sweep —
	// build plus six sites of pass search — must undercut even the
	// exact-mode build cost.
	ResetSGP4Calls()
	interpEph := NewEphemeris(p, start, end, step)
	for _, site := range sites {
		NewEphemerisPredictor(interpEph).Passes(site, start, end, 0)
	}
	interpTotal := SGP4Calls()
	if interpTotal >= build {
		t.Errorf("interpolated sweep used %d propagations, want below exact-mode build count %d", interpTotal, build)
	}
}

func TestConcurrentEphemerisAndCloneUse(t *testing.T) {
	// Regression for the goroutine-safety contract: one shared Ephemeris
	// plus per-goroutine Propagator clones must be race-free (run under
	// -race) and return identical results on every goroutine.
	p, err := NewPropagator(leoElements())
	if err != nil {
		t.Fatal(err)
	}
	start := leoElements().Epoch
	end := start.Add(6 * time.Hour)
	eph := NewEphemeris(p, start, end, 30*time.Second)
	site := NewGeodeticDeg(22.3, 114.2, 0)

	const workers = 8
	passes := make([][]Pass, workers)
	states := make([]Vec3, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			passes[w] = NewEphemerisPredictor(eph).Passes(site, start, end, 0)
			r, _, err := p.Clone().PositionECEF(start.Add(90 * time.Minute))
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			states[w] = r
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if !reflect.DeepEqual(passes[0], passes[w]) {
			t.Errorf("worker %d saw different passes", w)
		}
		if states[0] != states[w] {
			t.Errorf("worker %d clone state differs: %v vs %v", w, states[w], states[0])
		}
	}
}
