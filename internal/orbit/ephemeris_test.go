package orbit

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestEphemerisMatchesPropagatorBitExact(t *testing.T) {
	p, err := NewPropagator(leoElements())
	if err != nil {
		t.Fatal(err)
	}
	start := leoElements().Epoch
	step := 30 * time.Second
	eph := NewEphemeris(p, start, start.Add(2*time.Hour), step)

	// On-grid queries come from the cache; off-grid queries fall back to
	// exact SGP4. Both must be bit-identical to direct propagation.
	offsets := []time.Duration{
		0, step, 17 * step, 240 * step,
		13 * time.Second, 31*time.Minute + 7*time.Millisecond,
	}
	for _, off := range offsets {
		at := start.Add(off)
		r1, v1, err1 := p.PositionECEF(at)
		r2, v2, err2 := eph.PositionECEF(at)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("offset %v: error mismatch %v vs %v", off, err1, err2)
		}
		if r1 != r2 || v1 != v2 {
			t.Errorf("offset %v: state differs: %v/%v vs %v/%v", off, r1, v1, r2, v2)
		}
	}
	// Before the grid start the cache cannot answer; it must still agree.
	at := start.Add(-time.Minute)
	r1, _, _ := p.PositionECEF(at)
	r2, _, _ := eph.PositionECEF(at)
	if r1 != r2 {
		t.Errorf("pre-span query differs: %v vs %v", r1, r2)
	}
}

func TestEphemerisPredictorPassesBitIdentical(t *testing.T) {
	p, err := NewPropagator(leoElements())
	if err != nil {
		t.Fatal(err)
	}
	start := leoElements().Epoch
	end := start.Add(24 * time.Hour)
	site := NewGeodeticDeg(22.3, 114.2, 0)

	direct := NewPassPredictor(p).Passes(site, start, end, 0)
	eph := NewEphemeris(p, start, end, 30*time.Second)
	cached := NewEphemerisPredictor(eph).Passes(site, start, end, 0)
	if !reflect.DeepEqual(direct, cached) {
		t.Fatalf("cached passes differ from direct passes:\n%v\nvs\n%v", cached, direct)
	}
}

func TestEphemerisCutsPropagationsToSatsTimesSteps(t *testing.T) {
	p, err := NewPropagator(leoElements())
	if err != nil {
		t.Fatal(err)
	}
	start := leoElements().Epoch
	end := start.Add(24 * time.Hour)
	step := 30 * time.Second
	steps := int64(end.Sub(start) / step)
	sites := []Geodetic{
		NewGeodeticDeg(22.3, 114.2, 0),
		NewGeodeticDeg(-33.87, 151.2, 0),
		NewGeodeticDeg(51.5, -0.1, 0),
		NewGeodeticDeg(40.44, -79.99, 0),
		NewGeodeticDeg(0, 0, 0),
		NewGeodeticDeg(25.04, 102.72, 1.9),
	}

	ResetSGP4Calls()
	for _, site := range sites {
		NewPassPredictor(p).Passes(site, start, end, 0)
	}
	serial := SGP4Calls()

	ResetSGP4Calls()
	eph := NewEphemeris(p, start, end, step)
	build := SGP4Calls()
	for _, site := range sites {
		NewEphemerisPredictor(eph).Passes(site, start, end, 0)
	}
	shared := SGP4Calls()

	if build < steps || build > steps+8 {
		t.Errorf("ephemeris build used %d propagations, want ~%d (one per step)", build, steps)
	}
	// With the shared cache the per-site marginal cost is AOS/LOS
	// refinement only — far below one propagation per coarse step.
	marginal := (shared - build) / int64(len(sites))
	if marginal > steps/4 {
		t.Errorf("per-site marginal propagations %d, want ≪ %d coarse steps", marginal, steps)
	}
	// And the whole O(sats×steps + sites×refine) total must clearly beat
	// the O(sats×sites×steps) serial count.
	if shared*2 > serial {
		t.Errorf("shared total %d not at least 2× below serial total %d", shared, serial)
	}
}

func TestConcurrentEphemerisAndCloneUse(t *testing.T) {
	// Regression for the goroutine-safety contract: one shared Ephemeris
	// plus per-goroutine Propagator clones must be race-free (run under
	// -race) and return identical results on every goroutine.
	p, err := NewPropagator(leoElements())
	if err != nil {
		t.Fatal(err)
	}
	start := leoElements().Epoch
	end := start.Add(6 * time.Hour)
	eph := NewEphemeris(p, start, end, 30*time.Second)
	site := NewGeodeticDeg(22.3, 114.2, 0)

	const workers = 8
	passes := make([][]Pass, workers)
	states := make([]Vec3, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			passes[w] = NewEphemerisPredictor(eph).Passes(site, start, end, 0)
			r, _, err := p.Clone().PositionECEF(start.Add(90 * time.Minute))
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			states[w] = r
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if !reflect.DeepEqual(passes[0], passes[w]) {
			t.Errorf("worker %d saw different passes", w)
		}
		if states[0] != states[w] {
			t.Errorf("worker %d clone state differs: %v vs %v", w, states[w], states[0])
		}
	}
}
