package orbit

import (
	"sync/atomic"

	"github.com/sinet-io/sinet/internal/obs"
)

// orbitMetrics bundles the package's telemetry so one atomic pointer
// covers install/uninstall: either every counter is live or none is.
type orbitMetrics struct {
	sgp4Calls  *obs.Counter
	ephHits    *obs.Counter
	ephInterps *obs.Counter
	ephMisses  *obs.Counter
}

// metrics is the process-wide installed telemetry (nil = uninstrumented).
// An atomic pointer rather than a plain var so tests can install and
// uninstall registries while campaigns run under -race.
var metrics atomic.Pointer[orbitMetrics]

// SetMetrics installs campaign propagation telemetry into r:
//
//	sinet_sgp4_calls_total        SGP4 propagations performed
//	sinet_ephemeris_hits_total    state queries served from ephemeris grids
//	sinet_ephemeris_interp_total  off-grid queries answered by Hermite interpolation
//	sinet_ephemeris_misses_total  off-grid queries falling back to exact SGP4
//
// The installation is process-wide (propagators are created deep inside
// campaigns, far from any registry owner). A nil r uninstalls, restoring
// the zero-allocation uninstrumented fast path. Telemetry only observes:
// no counter influences propagation, so results are byte-identical with
// and without a registry installed.
func SetMetrics(r *obs.Registry) {
	if r == nil {
		metrics.Store(nil)
		return
	}
	metrics.Store(&orbitMetrics{
		sgp4Calls:  r.Counter("sinet_sgp4_calls_total", "SGP4 propagations performed."),
		ephHits:    r.Counter("sinet_ephemeris_hits_total", "Satellite state queries served from shared ephemeris samples."),
		ephInterps: r.Counter("sinet_ephemeris_interp_total", "Off-grid satellite state queries answered by Hermite interpolation."),
		ephMisses:  r.Counter("sinet_ephemeris_misses_total", "Off-grid satellite state queries answered by exact SGP4 fallback."),
	})
}
