package orbit

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Pass is one contact window between a satellite and a ground site: the
// span during which the satellite is above the site's minimum elevation.
type Pass struct {
	NoradID int
	Name    string

	AOS time.Time // acquisition of signal (rise above MinElevation)
	LOS time.Time // loss of signal
	TCA time.Time // time of closest approach (max elevation)

	MaxElevation float64 // rad at TCA
	AOSAzimuth   float64 // rad
	LOSAzimuth   float64 // rad
	MinRangeKm   float64 // slant range at TCA
}

// Duration returns the length of the pass.
func (p Pass) Duration() time.Duration { return p.LOS.Sub(p.AOS) }

// MaxElevationDeg returns the peak elevation in degrees.
func (p Pass) MaxElevationDeg() float64 { return p.MaxElevation * rad2Deg }

// String implements fmt.Stringer.
func (p Pass) String() string {
	return fmt.Sprintf("%s AOS=%s LOS=%s dur=%s maxEl=%.1f° minRange=%.0fkm",
		p.Name, p.AOS.Format(time.RFC3339), p.LOS.Format(time.RFC3339),
		p.Duration().Round(time.Second), p.MaxElevationDeg(), p.MinRangeKm)
}

// PassPredictor finds contact windows for one satellite over ground sites.
type PassPredictor struct {
	src StateSource
	eph *Ephemeris // non-nil when src is an Ephemeris: fast query path

	// CoarseStep is the scan step used to bracket horizon crossings.
	// The default of 30 s cannot skip a LEO pass, whose above-horizon
	// durations are several minutes even at low peak elevation.
	CoarseStep time.Duration

	// Refine is the bisection tolerance for AOS/LOS times.
	Refine time.Duration
}

// NewPassPredictor wraps an SGP4 propagator with pass-search defaults.
func NewPassPredictor(p *Propagator) *PassPredictor {
	return NewPassPredictorFrom(p)
}

// NewPassPredictorFrom wraps any state source — a raw propagator or a shared
// Ephemeris — with pass-search defaults.
func NewPassPredictorFrom(src StateSource) *PassPredictor {
	pp := &PassPredictor{CoarseStep: 30 * time.Second, Refine: 500 * time.Millisecond}
	pp.SetSource(src)
	return pp
}

// SetSource repoints the predictor at another state source, so one
// predictor can sweep a constellation (one satellite after another)
// without a per-satellite allocation.
func (pp *PassPredictor) SetSource(src StateSource) {
	pp.src = src
	pp.eph, _ = src.(*Ephemeris)
}

// scan bundles the per-search state of one Passes call: the cached
// observer frame, the precomputed mask sines, and — when the source is an
// Ephemeris — the telemetry pointer loaded once for the whole search
// instead of per query, with counts accumulated locally and flushed in one
// batch at the end.
type scan struct {
	pp    *PassPredictor
	frame observerFrame
	minEl float64
	sinEl float64 // sin(minEl)
	sin2  float64 // sin²(minEl)

	// start/step anchor the coarse scan; d0 is the offset of the scan
	// start from the ephemeris start (meaningful when pp.eph != nil), so
	// scan instants are addressed by integer offset arithmetic instead of
	// a time.Time construction per step.
	start time.Time
	step  time.Duration
	d0    time.Duration

	m                     *orbitMetrics
	hits, interps, exacts uint64
}

func (pp *PassPredictor) newScan(site Geodetic, minEl float64) scan {
	s := math.Sin(minEl)
	sc := scan{pp: pp, frame: newObserverFrame(site), minEl: minEl, sinEl: s, sin2: s * s}
	if pp.eph != nil {
		sc.m = metrics.Load()
	}
	return sc
}

// flush publishes the batched ephemeris telemetry.
func (sc *scan) flush() {
	if sc.m == nil {
		return
	}
	if sc.hits > 0 {
		sc.m.ephHits.Add(sc.hits)
	}
	if sc.interps > 0 {
		sc.m.ephInterps.Add(sc.interps)
	}
	if sc.exacts > 0 {
		sc.m.ephMisses.Add(sc.exacts)
	}
	sc.hits, sc.interps, sc.exacts = 0, 0, 0
}

// count records how an ephemeris query was answered.
func (sc *scan) count(kind queryKind) {
	switch kind {
	case queryGridHit:
		sc.hits++
	case queryInterp:
		sc.interps++
	default:
		sc.exacts++
	}
}

// above reports whether the satellite is at or above the mask at t.
// Propagation errors read as below-mask, so a decayed satellite simply
// stops producing passes. On the ephemeris path this touches neither the
// telemetry pointer nor any trigonometry: position is interpolated (or
// read off the grid) and compared against the mask with dot products only.
func (sc *scan) above(t time.Time) bool {
	if e := sc.pp.eph; e != nil {
		r, err, kind := e.position(t)
		sc.count(kind)
		if err != nil {
			return false
		}
		return sc.frame.aboveMask(r, sc.sinEl, sc.sin2)
	}
	r, _, err := sc.pp.src.PositionECEF(t)
	if err != nil {
		return false
	}
	return sc.frame.aboveMask(r, sc.sinEl, sc.sin2)
}

// aboveIdx is above at scan instant start + k·step, addressed by index so
// the ephemeris path runs on integer offsets.
func (sc *scan) aboveIdx(k int64) bool {
	if e := sc.pp.eph; e != nil {
		r, err, kind := e.positionOff(sc.d0 + time.Duration(k)*sc.step)
		sc.count(kind)
		if err != nil {
			return false
		}
		return sc.frame.aboveMask(r, sc.sinEl, sc.sin2)
	}
	return sc.above(sc.start.Add(time.Duration(k) * sc.step))
}

// elRange returns the elevation and slant range at t — the TCA sweep's
// per-sample needs — skipping the azimuth and range-rate arithmetic (and
// the velocity interpolation on the ephemeris path). Bit-identical to the
// corresponding fields of look.
func (sc *scan) elRange(t time.Time) (el, rangeKm float64, err error) {
	var r Vec3
	if e := sc.pp.eph; e != nil {
		var kind queryKind
		r, err, kind = e.position(t)
		sc.count(kind)
	} else {
		r, _, err = sc.pp.src.PositionECEF(t)
	}
	if err != nil {
		return 0, 0, err
	}
	el, rangeKm = sc.frame.elRange(r)
	return el, rangeKm, nil
}

// look returns full look angles at t.
func (sc *scan) look(t time.Time) (LookAngles, error) {
	if e := sc.pp.eph; e != nil {
		r, v, err, kind := e.state(t)
		sc.count(kind)
		if err != nil {
			return LookAngles{}, err
		}
		return sc.frame.look(r, v), nil
	}
	r, v, err := sc.pp.src.PositionECEF(t)
	if err != nil {
		return LookAngles{}, err
	}
	return sc.frame.look(r, v), nil
}

// LookAt returns full look angles from the site at time t.
func (pp *PassPredictor) LookAt(site Geodetic, t time.Time) (LookAngles, error) {
	r, v, err := pp.src.PositionECEF(t)
	if err != nil {
		return LookAngles{}, err
	}
	return newObserverFrame(site).look(r, v), nil
}

// Passes returns every contact window with max elevation above minElevation
// (radians) between start and end, in chronological order.
func (pp *PassPredictor) Passes(site Geodetic, start, end time.Time, minElevation float64) []Pass {
	return pp.PassesAppend(nil, site, start, end, minElevation)
}

// PassesAppend appends every contact window between start and end to dst
// and returns the extended slice, in chronological order per call. Callers
// running many searches (every satellite of a constellation, every site of
// a campaign) pass a reused buffer so that steady-state pass search
// performs zero allocations per search.
//
// The coarse scan visits only instants of the form start + k·step. When
// the predictor runs over an Ephemeris, scan instants are answered from
// the shared samples — directly when they land on the sampling grid
// (located by precomputed index arithmetic, not per-query modulo), by
// bounded-error Hermite interpolation otherwise — and the telemetry
// registry is consulted once per search rather than once per query.
func (pp *PassPredictor) PassesAppend(dst []Pass, site Geodetic, start, end time.Time, minElevation float64) []Pass {
	if !end.After(start) {
		return dst
	}
	step := pp.CoarseStep
	if step <= 0 {
		step = 30 * time.Second
	}
	sc := pp.newScan(site, minElevation)
	sc.start, sc.step = start, step
	if pp.eph != nil {
		sc.d0 = start.Sub(pp.eph.start)
	}
	defer sc.flush()

	base := len(dst)
	// Scan instants are start + k·step for k in [0, kMax] (one step past
	// the window end so a pass in progress at end is still detected); the
	// LOS walk stops at kEnd, the last instant inside the window.
	kMax := int64(end.Add(step).Sub(start) / step)
	kEnd := int64(end.Sub(start) / step)
	prevAbove := sc.aboveIdx(0)
	for k := int64(1); k <= kMax; k++ {
		above := sc.aboveIdx(k)
		if !prevAbove && above {
			// Rising edge bracketed in (prev, k]: refine AOS, then walk
			// forward from the grid point to find LOS.
			t := start.Add(time.Duration(k) * step)
			aos := sc.bisect(t.Add(-step), t, true)
			los, ok := sc.findLOS(k, kEnd, end)
			if !ok {
				// Pass extends beyond the search window; truncate at end.
				los = end
			}
			if pass, ok := sc.buildPass(aos, los); ok {
				dst = append(dst, pass)
			}
			// Resume scanning at the first grid point after LOS, but never
			// move the cursor backwards: a pass shorter than the scan step
			// can refine to an LOS at or before t, and jumping back would
			// re-detect the same rising edge forever.
			if next := int64(los.Sub(start)/step) + 1; next > k {
				k = next
				if k > kMax {
					break
				}
				above = sc.aboveIdx(k)
			}
		}
		prevAbove = above
	}
	// The scan emits passes chronologically; insertion sort (a no-op pass
	// in the common sorted case) keeps the contract without the closure
	// allocation of sort.Slice.
	for i := base + 1; i < len(dst); i++ {
		for j := i; j > base && dst[j].AOS.Before(dst[j-1].AOS); j-- {
			dst[j], dst[j-1] = dst[j-1], dst[j]
		}
	}
	return dst
}

// findLOS walks grid points forward from the rising-edge step fromK until
// elevation drops below the mask, then bisects the falling edge. Returns
// ok=false if the satellite is still up at the last in-window step kEnd.
func (sc *scan) findLOS(fromK, kEnd int64, end time.Time) (time.Time, bool) {
	for k := fromK + 1; ; k++ {
		if k > kEnd {
			return end, false
		}
		if !sc.aboveIdx(k) {
			t := sc.start.Add(time.Duration(k) * sc.step)
			return sc.bisect(t.Add(-sc.step), t, false), true
		}
	}
}

// bisect refines a horizon crossing bracketed by [lo, hi]. rising selects
// the crossing direction.
func (sc *scan) bisect(lo, hi time.Time, rising bool) time.Time {
	tol := sc.pp.Refine
	if tol <= 0 {
		tol = time.Second
	}
	for hi.Sub(lo) > tol {
		mid := lo.Add(hi.Sub(lo) / 2)
		if sc.above(mid) == rising {
			// For a rising edge, "above" means the crossing is earlier.
			hi = mid
		} else {
			lo = mid
		}
	}
	return lo.Add(hi.Sub(lo) / 2)
}

// buildPass fills in TCA, azimuths and peak stats by sampling the window.
// The AOS/LOS look angles double as the first and last samples of the TCA
// scan, so the window endpoints are evaluated exactly once.
func (sc *scan) buildPass(aos, los time.Time) (Pass, bool) {
	if !los.After(aos) {
		return Pass{}, false
	}
	els := sc.pp.src.Elements()
	pass := Pass{
		NoradID:      els.NoradID,
		Name:         els.Name,
		AOS:          aos,
		LOS:          los,
		MaxElevation: -twoPi,
		MinRangeKm:   1e12,
	}
	laAOS, errAOS := sc.look(aos)
	laLOS, errLOS := sc.look(los)
	if errAOS == nil {
		pass.AOSAzimuth = laAOS.Azimuth
	}
	if errLOS == nil {
		pass.LOSAzimuth = laLOS.Azimuth
	}
	// Sample 64 points across the window for TCA; LEO elevation profiles
	// are unimodal, so dense sampling is accurate to dur/64 which is
	// seconds-level for a 10-minute pass. Only elevation and range are
	// compared, so the sweep skips the azimuth/range-rate arithmetic.
	const samples = 64
	dur := los.Sub(aos)
	for i := 0; i <= samples; i++ {
		var el, rangeKm float64
		var err error
		switch i {
		case 0:
			el, rangeKm, err = laAOS.Elevation, laAOS.RangeKm, errAOS
		case samples:
			el, rangeKm, err = laLOS.Elevation, laLOS.RangeKm, errLOS
		default:
			el, rangeKm, err = sc.elRange(aos.Add(dur * time.Duration(i) / samples))
		}
		if err != nil {
			continue
		}
		if el > pass.MaxElevation {
			pass.MaxElevation = el
			pass.TCA = aos.Add(dur * time.Duration(i) / samples)
		}
		if rangeKm < pass.MinRangeKm {
			pass.MinRangeKm = rangeKm
		}
	}
	return pass, pass.MaxElevation >= sc.minEl
}

// passBufPool recycles pass-search scratch for the package's own sweep
// helpers (DailyVisibleDuration and friends), whose pass lists are
// consumed before returning.
var passBufPool = sync.Pool{New: func() any { s := make([]Pass, 0, 32); return &s }}

// DailyVisibleDuration sums the above-mask time for the satellite over the
// site between start and end, returning the mean per-day duration. This is
// the "theoretical presence duration" of Figure 3a.
func (pp *PassPredictor) DailyVisibleDuration(site Geodetic, start, end time.Time, minElevation float64) time.Duration {
	buf := passBufPool.Get().(*[]Pass)
	passes := pp.PassesAppend((*buf)[:0], site, start, end, minElevation)
	var total time.Duration
	for _, p := range passes {
		total += p.Duration()
	}
	*buf = passes[:0]
	passBufPool.Put(buf)
	days := end.Sub(start).Hours() / 24
	if days <= 0 {
		return 0
	}
	return time.Duration(float64(total) / days)
}

// MergeWindows merges overlapping [AOS, LOS] windows from multiple
// satellites into the union coverage intervals of a constellation.
type Window struct {
	Start, End time.Time
}

// Duration returns the window length.
func (w Window) Duration() time.Duration { return w.End.Sub(w.Start) }

// MergeWindows returns the union of the pass windows as a minimal sorted
// set of non-overlapping intervals.
func MergeWindows(passes []Pass) []Window {
	if len(passes) == 0 {
		return nil
	}
	ws := make([]Window, len(passes))
	for i, p := range passes {
		ws[i] = Window{Start: p.AOS, End: p.LOS}
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i].Start.Before(ws[j].Start) })
	merged := ws[:1]
	for _, w := range ws[1:] {
		last := &merged[len(merged)-1]
		if !w.Start.After(last.End) {
			if w.End.After(last.End) {
				last.End = w.End
			}
			continue
		}
		merged = append(merged, w)
	}
	return merged
}

// TotalDuration sums the durations of a set of windows.
func TotalDuration(ws []Window) time.Duration {
	var total time.Duration
	for _, w := range ws {
		total += w.Duration()
	}
	return total
}

// Gaps returns the intervals between consecutive windows — the paper's
// "contact intervals" of Figure 4b.
func Gaps(ws []Window) []time.Duration {
	if len(ws) < 2 {
		return nil
	}
	gaps := make([]time.Duration, 0, len(ws)-1)
	for i := 1; i < len(ws); i++ {
		gaps = append(gaps, ws[i].Start.Sub(ws[i-1].End))
	}
	return gaps
}
