package orbit

import (
	"fmt"
	"sort"
	"time"
)

// Pass is one contact window between a satellite and a ground site: the
// span during which the satellite is above the site's minimum elevation.
type Pass struct {
	NoradID int
	Name    string

	AOS time.Time // acquisition of signal (rise above MinElevation)
	LOS time.Time // loss of signal
	TCA time.Time // time of closest approach (max elevation)

	MaxElevation float64 // rad at TCA
	AOSAzimuth   float64 // rad
	LOSAzimuth   float64 // rad
	MinRangeKm   float64 // slant range at TCA
}

// Duration returns the length of the pass.
func (p Pass) Duration() time.Duration { return p.LOS.Sub(p.AOS) }

// MaxElevationDeg returns the peak elevation in degrees.
func (p Pass) MaxElevationDeg() float64 { return p.MaxElevation * rad2Deg }

// String implements fmt.Stringer.
func (p Pass) String() string {
	return fmt.Sprintf("%s AOS=%s LOS=%s dur=%s maxEl=%.1f° minRange=%.0fkm",
		p.Name, p.AOS.Format(time.RFC3339), p.LOS.Format(time.RFC3339),
		p.Duration().Round(time.Second), p.MaxElevationDeg(), p.MinRangeKm)
}

// PassPredictor finds contact windows for one satellite over ground sites.
type PassPredictor struct {
	src StateSource

	// CoarseStep is the scan step used to bracket horizon crossings.
	// The default of 30 s cannot skip a LEO pass, whose above-horizon
	// durations are several minutes even at low peak elevation.
	CoarseStep time.Duration

	// Refine is the bisection tolerance for AOS/LOS times.
	Refine time.Duration
}

// NewPassPredictor wraps an SGP4 propagator with pass-search defaults.
func NewPassPredictor(p *Propagator) *PassPredictor {
	return NewPassPredictorFrom(p)
}

// NewPassPredictorFrom wraps any state source — a raw propagator or a shared
// Ephemeris — with pass-search defaults.
func NewPassPredictorFrom(src StateSource) *PassPredictor {
	return &PassPredictor{src: src, CoarseStep: 30 * time.Second, Refine: 500 * time.Millisecond}
}

// elevationAt returns the elevation of the satellite above the observer at t.
// Propagation errors surface as a large negative elevation so that a decayed
// satellite simply stops producing passes.
func (pp *PassPredictor) elevationAt(frame observerFrame, t time.Time) float64 {
	r, v, err := pp.src.PositionECEF(t)
	if err != nil {
		return -twoPi
	}
	return frame.look(r, v).Elevation
}

// lookAt returns full look angles from the cached observer frame at time t.
func (pp *PassPredictor) lookAt(frame observerFrame, t time.Time) (LookAngles, error) {
	r, v, err := pp.src.PositionECEF(t)
	if err != nil {
		return LookAngles{}, err
	}
	return frame.look(r, v), nil
}

// LookAt returns full look angles from the site at time t.
func (pp *PassPredictor) LookAt(site Geodetic, t time.Time) (LookAngles, error) {
	return pp.lookAt(newObserverFrame(site), t)
}

// Passes returns every contact window with max elevation above minElevation
// (radians) between start and end, in chronological order.
//
// The coarse scan visits only instants of the form start + k·step, so a
// predictor over an Ephemeris whose grid is aligned with start serves every
// scan query from the shared samples; only the AOS/LOS bisection and the
// TCA sampling inside a detected pass evaluate SGP4 off-grid.
func (pp *PassPredictor) Passes(site Geodetic, start, end time.Time, minElevation float64) []Pass {
	if !end.After(start) {
		return nil
	}
	step := pp.CoarseStep
	if step <= 0 {
		step = 30 * time.Second
	}
	frame := newObserverFrame(site)

	var passes []Pass
	prevT := start
	prevEl := pp.elevationAt(frame, prevT)
	for k := int64(1); ; k++ {
		t := start.Add(time.Duration(k) * step)
		if t.After(end.Add(step)) {
			break
		}
		el := pp.elevationAt(frame, t)
		if prevEl < minElevation && el >= minElevation {
			// Rising edge bracketed in (prevT, t]: refine AOS, then walk
			// forward from the grid point to find LOS.
			aos := pp.bisect(frame, prevT, t, minElevation, true)
			los, ok := pp.findLOS(frame, start, k, end, step, minElevation)
			if !ok {
				// Pass extends beyond the search window; truncate at end.
				los = end
			}
			if pass, ok := pp.buildPass(frame, aos, los, minElevation); ok {
				passes = append(passes, pass)
			}
			// Resume scanning at the first grid point after LOS, but never
			// move the cursor backwards: a pass shorter than the scan step
			// can refine to an LOS at or before t, and jumping back would
			// re-detect the same rising edge forever.
			if next := int64(los.Sub(start)/step) + 1; next > k {
				k = next
				t = start.Add(time.Duration(k) * step)
				if t.After(end.Add(step)) {
					break
				}
				el = pp.elevationAt(frame, t)
			}
		}
		prevT, prevEl = t, el
	}
	sort.Slice(passes, func(i, j int) bool { return passes[i].AOS.Before(passes[j].AOS) })
	return passes
}

// findLOS walks grid points forward from the rising-edge step fromK until
// elevation drops below the mask, then bisects the falling edge. Returns
// ok=false if the satellite is still up at the search end.
func (pp *PassPredictor) findLOS(frame observerFrame, start time.Time, fromK int64, end time.Time, step time.Duration, minEl float64) (time.Time, bool) {
	prevT := start.Add(time.Duration(fromK) * step)
	for k := fromK + 1; ; k++ {
		t := start.Add(time.Duration(k) * step)
		if t.After(end) {
			return end, false
		}
		if pp.elevationAt(frame, t) < minEl {
			return pp.bisect(frame, prevT, t, minEl, false), true
		}
		prevT = t
	}
}

// bisect refines a horizon crossing bracketed by [lo, hi]. rising selects
// the crossing direction.
func (pp *PassPredictor) bisect(frame observerFrame, lo, hi time.Time, minEl float64, rising bool) time.Time {
	tol := pp.Refine
	if tol <= 0 {
		tol = time.Second
	}
	for hi.Sub(lo) > tol {
		mid := lo.Add(hi.Sub(lo) / 2)
		above := pp.elevationAt(frame, mid) >= minEl
		if above == rising {
			// For a rising edge, "above" means the crossing is earlier.
			hi = mid
		} else {
			lo = mid
		}
	}
	return lo.Add(hi.Sub(lo) / 2)
}

// buildPass fills in TCA, azimuths and peak stats by sampling the window.
// The AOS/LOS look angles double as the first and last samples of the TCA
// scan, so the window endpoints are evaluated exactly once.
func (pp *PassPredictor) buildPass(frame observerFrame, aos, los time.Time, minEl float64) (Pass, bool) {
	if !los.After(aos) {
		return Pass{}, false
	}
	els := pp.src.Elements()
	pass := Pass{
		NoradID:      els.NoradID,
		Name:         els.Name,
		AOS:          aos,
		LOS:          los,
		MaxElevation: -twoPi,
		MinRangeKm:   1e12,
	}
	laAOS, errAOS := pp.lookAt(frame, aos)
	laLOS, errLOS := pp.lookAt(frame, los)
	if errAOS == nil {
		pass.AOSAzimuth = laAOS.Azimuth
	}
	if errLOS == nil {
		pass.LOSAzimuth = laLOS.Azimuth
	}
	// Sample 64 points across the window for TCA; LEO elevation profiles
	// are unimodal, so dense sampling is accurate to dur/64 which is
	// seconds-level for a 10-minute pass.
	const samples = 64
	dur := los.Sub(aos)
	for i := 0; i <= samples; i++ {
		var la LookAngles
		var err error
		switch i {
		case 0:
			la, err = laAOS, errAOS
		case samples:
			la, err = laLOS, errLOS
		default:
			la, err = pp.lookAt(frame, aos.Add(dur*time.Duration(i)/samples))
		}
		if err != nil {
			continue
		}
		if la.Elevation > pass.MaxElevation {
			pass.MaxElevation = la.Elevation
			pass.TCA = aos.Add(dur * time.Duration(i) / samples)
		}
		if la.RangeKm < pass.MinRangeKm {
			pass.MinRangeKm = la.RangeKm
		}
	}
	return pass, pass.MaxElevation >= minEl
}

// DailyVisibleDuration sums the above-mask time for the satellite over the
// site between start and end, returning the mean per-day duration. This is
// the "theoretical presence duration" of Figure 3a.
func (pp *PassPredictor) DailyVisibleDuration(site Geodetic, start, end time.Time, minElevation float64) time.Duration {
	passes := pp.Passes(site, start, end, minElevation)
	var total time.Duration
	for _, p := range passes {
		total += p.Duration()
	}
	days := end.Sub(start).Hours() / 24
	if days <= 0 {
		return 0
	}
	return time.Duration(float64(total) / days)
}

// MergeWindows merges overlapping [AOS, LOS] windows from multiple
// satellites into the union coverage intervals of a constellation.
type Window struct {
	Start, End time.Time
}

// Duration returns the window length.
func (w Window) Duration() time.Duration { return w.End.Sub(w.Start) }

// MergeWindows returns the union of the pass windows as a minimal sorted
// set of non-overlapping intervals.
func MergeWindows(passes []Pass) []Window {
	if len(passes) == 0 {
		return nil
	}
	ws := make([]Window, len(passes))
	for i, p := range passes {
		ws[i] = Window{Start: p.AOS, End: p.LOS}
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i].Start.Before(ws[j].Start) })
	merged := ws[:1]
	for _, w := range ws[1:] {
		last := &merged[len(merged)-1]
		if !w.Start.After(last.End) {
			if w.End.After(last.End) {
				last.End = w.End
			}
			continue
		}
		merged = append(merged, w)
	}
	return merged
}

// TotalDuration sums the durations of a set of windows.
func TotalDuration(ws []Window) time.Duration {
	var total time.Duration
	for _, w := range ws {
		total += w.Duration()
	}
	return total
}

// Gaps returns the intervals between consecutive windows — the paper's
// "contact intervals" of Figure 4b.
func Gaps(ws []Window) []time.Duration {
	if len(ws) < 2 {
		return nil
	}
	gaps := make([]time.Duration, 0, len(ws)-1)
	for i := 1; i < len(ws); i++ {
		gaps = append(gaps, ws[i].Start.Sub(ws[i-1].End))
	}
	return gaps
}
