package orbit

import (
	"os"
	"testing"
	"time"
)

// TestGenerateInterpTLEs regenerates testdata/interp_tles.tle, the stress
// catalog for the interpolation property test. Run with
// SINET_GEN_TESTDATA=1 to rewrite the file.
func TestGenerateInterpTLEs(t *testing.T) {
	if os.Getenv("SINET_GEN_TESTDATA") == "" {
		t.Skip("set SINET_GEN_TESTDATA=1 to regenerate testdata")
	}
	epoch := time.Date(2025, 3, 1, 0, 0, 0, 0, time.UTC)
	mk := func(id int, name string, perigeeAltKm, ecc, inclDeg float64) Elements {
		// Semi-major axis putting the perigee at the requested altitude.
		a := (gravityRadiusKm + perigeeAltKm) / (1 - ecc)
		return Elements{
			NoradID:      id,
			Name:         name,
			Epoch:        epoch,
			BStar:        4e-5,
			Inclination:  inclDeg * deg2Rad,
			RAAN:         1.1,
			Eccentricity: ecc,
			ArgPerigee:   0.8,
			MeanAnomaly:  2.3,
			MeanMotion:   MeanMotionFromAltitude(a - gravityRadiusKm),
		}
	}
	els := []Elements{
		mk(70001, "ECC-HEO-LITE", 350, 0.15, 63.4),
		mk(70002, "ECC-GTO-ISH", 400, 0.20, 28.5),
		mk(70003, "VLEO-CIRC", 300, 0.0005, 96.6),
		mk(70004, "ISS-LIKE", 420, 0.0007, 51.6),
		mk(70005, "SSO-550", 550, 0.0010, 97.6),
		mk(70006, "LOW-INC-500", 500, 0.0020, 5.0),
	}
	var out []byte
	for _, e := range els {
		tle := e.TLE()
		card := tle.Format()
		if _, err := ParseTLE(card); err != nil {
			t.Fatalf("%s: generated card does not round-trip: %v", e.Name, err)
		}
		if _, err := NewPropagator(e); err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		out = append(out, card...)
		if card[len(card)-1] != '\n' {
			out = append(out, '\n')
		}
	}
	if err := os.WriteFile("testdata/interp_tles.tle", out, 0o644); err != nil {
		t.Fatal(err)
	}
}
