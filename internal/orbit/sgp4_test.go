package orbit

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func issProp(t *testing.T) *Propagator {
	t.Helper()
	tle, err := ParseTLE(issTLE)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPropagatorFromTLE(tle)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSGP4EpochState(t *testing.T) {
	p := issProp(t)
	s, err := p.PropagateMinutes(0)
	if err != nil {
		t.Fatal(err)
	}
	// Orbit radius must equal ISS altitude band (340-360 km + Earth radius)
	r := s.Position.Norm()
	if r < 6700 || r > 6760 {
		t.Errorf("epoch radius = %.1f km, want ISS band ~6715-6745", r)
	}
	// Orbital speed for a circular LEO is ~7.66 km/s.
	v := s.Velocity.Norm()
	if v < 7.5 || v > 7.8 {
		t.Errorf("epoch speed = %.3f km/s, want ~7.66", v)
	}
	// Velocity is essentially perpendicular to position for e≈0.0007.
	cosAngle := s.Position.Dot(s.Velocity) / (r * v)
	if math.Abs(cosAngle) > 0.01 {
		t.Errorf("r·v alignment = %.4f, want ~0", cosAngle)
	}
}

func TestSGP4PeriodMatchesMeanMotion(t *testing.T) {
	p := issProp(t)
	// After exactly one anomalistic period the radius profile repeats.
	period := twoPi / p.els.MeanMotion // minutes
	s0, err := p.PropagateMinutes(0)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := p.PropagateMinutes(period)
	if err != nil {
		t.Fatal(err)
	}
	// Position won't repeat exactly (node regression) but radius must.
	if d := math.Abs(s0.Position.Norm() - s1.Position.Norm()); d > 5 {
		t.Errorf("radius after one period differs by %.2f km", d)
	}
}

func TestSGP4EnergyConsistency(t *testing.T) {
	// Vis-viva: v² = mu(2/r - 1/a) must hold within the perturbation noise.
	p := issProp(t)
	a := math.Pow(xke/p.noUnkozai, x2o3) * gravityRadiusKm
	for _, tsince := range []float64{0, 10, 45, 90, 360, 1440} {
		s, err := p.PropagateMinutes(tsince)
		if err != nil {
			t.Fatal(err)
		}
		r := s.Position.Norm()
		v2 := s.Velocity.Dot(s.Velocity)
		want := gravityMu * (2/r - 1/a)
		if rel := math.Abs(v2-want) / want; rel > 0.01 {
			t.Errorf("t=%v: vis-viva violated by %.3f%%", tsince, rel*100)
		}
	}
}

func TestSGP4InclinationPreserved(t *testing.T) {
	// The angular momentum vector's tilt must equal the inclination.
	p := issProp(t)
	for _, tsince := range []float64{0, 30, 720} {
		s, err := p.PropagateMinutes(tsince)
		if err != nil {
			t.Fatal(err)
		}
		h := s.Position.Cross(s.Velocity)
		incl := math.Acos(h.Z / h.Norm())
		if math.Abs(incl-p.els.Inclination) > 0.01 {
			t.Errorf("t=%v: inclination %.4f rad, want %.4f", tsince, incl, p.els.Inclination)
		}
	}
}

func TestSGP4NodeRegression(t *testing.T) {
	// For a prograde LEO, J2 makes the node regress westward (~-5°/day for
	// ISS). Check sign and magnitude of nodedot.
	p := issProp(t)
	degPerDay := p.nodedot * minutesPerDay * rad2Deg
	if degPerDay > -4 || degPerDay < -6 {
		t.Errorf("node regression %.2f°/day, want ≈ -5", degPerDay)
	}
}

func TestSGP4KeplerAgreement(t *testing.T) {
	// SGP4 vs two-body must agree to within the short-period J2 amplitude
	// over a single orbit (tens of km for LEO).
	tle, err := ParseTLE(issTLE)
	if err != nil {
		t.Fatal(err)
	}
	els := tle.Elements()
	els.BStar = 0 // compare pure gravity solutions
	sg, err := NewPropagator(els)
	if err != nil {
		t.Fatal(err)
	}
	kp := NewKeplerPropagator(els)
	for _, dt := range []time.Duration{0, 20 * time.Minute, 50 * time.Minute, 92 * time.Minute} {
		at := els.Epoch.Add(dt)
		s1, err := sg.PropagateTo(at)
		if err != nil {
			t.Fatal(err)
		}
		s2 := kp.PropagateTo(at)
		if d := s1.Position.Sub(s2.Position).Norm(); d > 60 {
			t.Errorf("dt=%v: SGP4 vs Kepler diverge by %.1f km", dt, d)
		}
	}
}

func TestSGP4DeepSpaceRejected(t *testing.T) {
	e := Elements{
		Epoch:        time.Date(2024, 10, 1, 0, 0, 0, 0, time.UTC),
		Inclination:  0.1,
		Eccentricity: 0.01,
		MeanMotion:   twoPi / (24 * 60), // geosynchronous-ish, period 1436 min
	}
	if _, err := NewPropagator(e); !errors.Is(err, ErrDeepSpace) {
		t.Errorf("want ErrDeepSpace, got %v", err)
	}
}

func TestSGP4BadElements(t *testing.T) {
	base := Elements{
		Epoch:       time.Date(2024, 10, 1, 0, 0, 0, 0, time.UTC),
		Inclination: 0.9,
		MeanMotion:  MeanMotionFromAltitude(550),
	}
	bad := base
	bad.Eccentricity = 1.2
	if _, err := NewPropagator(bad); !errors.Is(err, ErrBadElements) {
		t.Errorf("ecc>1: want ErrBadElements, got %v", err)
	}
	bad = base
	bad.Eccentricity = -0.1
	if _, err := NewPropagator(bad); !errors.Is(err, ErrBadElements) {
		t.Errorf("ecc<0: want ErrBadElements, got %v", err)
	}
	bad = base
	bad.MeanMotion = 0
	if _, err := NewPropagator(bad); !errors.Is(err, ErrBadElements) {
		t.Errorf("n=0: want ErrBadElements, got %v", err)
	}
	bad = base
	bad.Eccentricity = 0.9 // perigee far below the surface
	if _, err := NewPropagator(bad); !errors.Is(err, ErrBadElements) {
		t.Errorf("sub-surface perigee: want ErrBadElements, got %v", err)
	}
}

func TestSGP4GroundSpeedLEO(t *testing.T) {
	// The paper states LEO satellites at 500 km move at ~7.6 km/s.
	e := Elements{
		NoradID:      90002,
		Epoch:        time.Date(2024, 10, 1, 0, 0, 0, 0, time.UTC),
		Inclination:  97.5 * deg2Rad,
		Eccentricity: 0.0005,
		MeanMotion:   MeanMotionFromAltitude(500),
	}
	p, err := NewPropagator(e)
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.PropagateMinutes(17)
	if err != nil {
		t.Fatal(err)
	}
	if v := s.Velocity.Norm(); math.Abs(v-7.6) > 0.1 {
		t.Errorf("500 km orbital speed = %.3f km/s, want ≈7.6", v)
	}
}

func TestSGP4AltitudeStaysInBand(t *testing.T) {
	// A near-circular synthetic Tianqi-like orbit must stay within a few km
	// of its design band over a week.
	e := Elements{
		NoradID:      90003,
		Epoch:        time.Date(2024, 10, 1, 0, 0, 0, 0, time.UTC),
		Inclination:  49.97 * deg2Rad,
		Eccentricity: 0.001,
		MeanMotion:   MeanMotionFromAltitude(860),
		BStar:        1e-5,
	}
	p, err := NewPropagator(e)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(minOffset uint16) bool {
		tsince := math.Mod(float64(minOffset), 7*24*60)
		s, err := p.PropagateMinutes(tsince)
		if err != nil {
			return false
		}
		alt := s.Position.Norm() - gravityRadiusKm
		return alt > 820 && alt < 900
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSGP4Concurrency(t *testing.T) {
	// Propagate must be safe from multiple goroutines (it's documented so).
	p := issProp(t)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			var err error
			for i := 0; i < 200; i++ {
				_, err = p.PropagateMinutes(float64(g*200 + i))
				if err != nil {
					break
				}
			}
			done <- err
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestSubpointWithinInclination(t *testing.T) {
	// The sub-satellite latitude can never exceed the inclination.
	p := issProp(t)
	epoch := p.Elements().Epoch
	for m := 0; m < 300; m += 7 {
		g, err := p.Subpoint(epoch.Add(time.Duration(m) * time.Minute))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(g.Lat) > p.els.Inclination+0.02 {
			t.Errorf("t=+%dm: |lat| %.4f exceeds inclination %.4f", m, math.Abs(g.Lat), p.els.Inclination)
		}
		if g.Alt < 300 || g.Alt > 400 {
			t.Errorf("t=+%dm: subpoint altitude %.1f outside ISS band", m, g.Alt)
		}
	}
}
