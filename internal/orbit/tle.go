package orbit

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Errors returned by the TLE parser.
var (
	ErrTLEFormat   = errors.New("orbit: malformed TLE")
	ErrTLEChecksum = errors.New("orbit: TLE checksum mismatch")
)

// TLE is a parsed two-line element set. Angles are stored in degrees exactly
// as they appear on the card; Elements() converts to the radian/册minute units
// SGP4 consumes.
type TLE struct {
	Name string // optional line-0 satellite name

	// Line 1 fields.
	NoradID   int       // satellite catalog number
	Class     byte      // classification (U, C, S)
	IntlDesig string    // international designator (launch year/number/piece)
	Epoch     time.Time // element-set epoch, UTC
	NDot      float64   // first derivative of mean motion / 2, rev/day²
	NDDot     float64   // second derivative of mean motion / 6, rev/day³
	BStar     float64   // drag term, 1/earth-radii
	ElsetNum  int       // element set number

	// Line 2 fields.
	InclinationDeg float64 // orbital inclination, degrees
	RAANDeg        float64 // right ascension of ascending node, degrees
	Eccentricity   float64 // dimensionless
	ArgPerigeeDeg  float64 // argument of perigee, degrees
	MeanAnomalyDeg float64 // mean anomaly, degrees
	MeanMotion     float64 // revolutions per day
	RevNumber      int     // revolution number at epoch
}

// ParseTLE parses a two- or three-line element set. When three lines are
// supplied the first is taken as the satellite name. Checksums on both data
// lines are verified.
func ParseTLE(text string) (TLE, error) {
	var tle TLE
	lines := make([]string, 0, 3)
	for _, ln := range strings.Split(text, "\n") {
		ln = strings.TrimRight(ln, "\r ")
		if strings.TrimSpace(ln) != "" {
			lines = append(lines, ln)
		}
	}
	var l1, l2 string
	switch len(lines) {
	case 2:
		l1, l2 = lines[0], lines[1]
	case 3:
		tle.Name = strings.TrimSpace(lines[0])
		l1, l2 = lines[1], lines[2]
	default:
		return tle, fmt.Errorf("%w: expected 2 or 3 lines, got %d", ErrTLEFormat, len(lines))
	}
	if err := parseLine1(&tle, l1); err != nil {
		return tle, err
	}
	if err := parseLine2(&tle, l2); err != nil {
		return tle, err
	}
	return tle, nil
}

func parseLine1(tle *TLE, line string) error {
	if len(line) < 69 || line[0] != '1' {
		return fmt.Errorf("%w: bad line 1 %q", ErrTLEFormat, line)
	}
	if err := verifyChecksum(line); err != nil {
		return err
	}
	var err error
	if tle.NoradID, err = atoiField(line[2:7]); err != nil {
		return fmt.Errorf("%w: catalog number: %v", ErrTLEFormat, err)
	}
	if tle.NoradID < 0 {
		return fmt.Errorf("%w: negative catalog number %d", ErrTLEFormat, tle.NoradID)
	}
	tle.Class = line[7]
	tle.IntlDesig = strings.TrimSpace(line[9:17])

	yy, err := atoiField(line[18:20])
	if err != nil {
		return fmt.Errorf("%w: epoch year: %v", ErrTLEFormat, err)
	}
	if yy < 0 {
		return fmt.Errorf("%w: negative epoch year", ErrTLEFormat)
	}
	doy, err := atofField(line[20:32])
	if err != nil {
		return fmt.Errorf("%w: epoch day: %v", ErrTLEFormat, err)
	}
	if doy <= 0 || doy >= 367 {
		return fmt.Errorf("%w: epoch day %v out of range", ErrTLEFormat, doy)
	}
	tle.Epoch = epochToTime(yy, doy)

	if tle.NDot, err = atofField(line[33:43]); err != nil {
		return fmt.Errorf("%w: ndot: %v", ErrTLEFormat, err)
	}
	// The card field is ".XXXXXXXX" with an implied leading zero, so a
	// legal magnitude is strictly below one (the bound leaves room for
	// Format's 8-decimal rounding).
	if math.Abs(tle.NDot) >= 0.999999995 {
		return fmt.Errorf("%w: ndot %v out of range", ErrTLEFormat, tle.NDot)
	}
	if tle.NDDot, err = parseExpField(line[44:52]); err != nil {
		return fmt.Errorf("%w: nddot: %v", ErrTLEFormat, err)
	}
	if tle.BStar, err = parseExpField(line[53:61]); err != nil {
		return fmt.Errorf("%w: bstar: %v", ErrTLEFormat, err)
	}
	if tle.ElsetNum, err = atoiField(line[64:68]); err != nil {
		return fmt.Errorf("%w: element number: %v", ErrTLEFormat, err)
	}
	if tle.ElsetNum < 0 {
		return fmt.Errorf("%w: negative element number", ErrTLEFormat)
	}
	return nil
}

func parseLine2(tle *TLE, line string) error {
	if len(line) < 69 || line[0] != '2' {
		return fmt.Errorf("%w: bad line 2 %q", ErrTLEFormat, line)
	}
	if err := verifyChecksum(line); err != nil {
		return err
	}
	id, err := atoiField(line[2:7])
	if err != nil {
		return fmt.Errorf("%w: catalog number: %v", ErrTLEFormat, err)
	}
	if id != tle.NoradID {
		return fmt.Errorf("%w: line 1/2 catalog numbers differ (%d vs %d)", ErrTLEFormat, tle.NoradID, id)
	}
	if tle.InclinationDeg, err = atofField(line[8:16]); err != nil {
		return fmt.Errorf("%w: inclination: %v", ErrTLEFormat, err)
	}
	if tle.InclinationDeg < 0 || tle.InclinationDeg > 180 {
		return fmt.Errorf("%w: inclination %v out of range", ErrTLEFormat, tle.InclinationDeg)
	}
	if tle.RAANDeg, err = atofField(line[17:25]); err != nil {
		return fmt.Errorf("%w: raan: %v", ErrTLEFormat, err)
	}
	ecc, err := atofField("0." + strings.TrimSpace(line[26:33]))
	if err != nil {
		return fmt.Errorf("%w: eccentricity: %v", ErrTLEFormat, err)
	}
	// The card field is seven implied-decimal digits, but sloppy inputs
	// can smuggle an exponent ("1e7" reads as 0.1e7).
	if ecc < 0 || ecc >= 0.99999995 {
		return fmt.Errorf("%w: eccentricity %v out of range", ErrTLEFormat, ecc)
	}
	tle.Eccentricity = ecc
	if tle.ArgPerigeeDeg, err = atofField(line[34:42]); err != nil {
		return fmt.Errorf("%w: arg perigee: %v", ErrTLEFormat, err)
	}
	if tle.MeanAnomalyDeg, err = atofField(line[43:51]); err != nil {
		return fmt.Errorf("%w: mean anomaly: %v", ErrTLEFormat, err)
	}
	for _, a := range [...]struct {
		name string
		v    float64
	}{{"raan", tle.RAANDeg}, {"arg perigee", tle.ArgPerigeeDeg}, {"mean anomaly", tle.MeanAnomalyDeg}} {
		if a.v < 0 || a.v > 360 {
			return fmt.Errorf("%w: %s %v out of range", ErrTLEFormat, a.name, a.v)
		}
	}
	if tle.MeanMotion, err = atofField(line[52:63]); err != nil {
		return fmt.Errorf("%w: mean motion: %v", ErrTLEFormat, err)
	}
	// Must be a real orbit (OrbitalPeriod divides by it) and fit the
	// %11.8f card column.
	if tle.MeanMotion <= 0 || tle.MeanMotion >= 99.999999995 {
		return fmt.Errorf("%w: mean motion %v out of range", ErrTLEFormat, tle.MeanMotion)
	}
	if rev := strings.TrimSpace(line[63:68]); rev != "" {
		if tle.RevNumber, err = atoiField(rev); err != nil {
			return fmt.Errorf("%w: rev number: %v", ErrTLEFormat, err)
		}
		if tle.RevNumber < 0 {
			return fmt.Errorf("%w: negative rev number", ErrTLEFormat)
		}
	}
	return nil
}

// verifyChecksum validates the modulo-10 checksum in column 69.
func verifyChecksum(line string) error {
	want := int(line[68] - '0')
	if got := checksum(line[:68]); got != want {
		return fmt.Errorf("%w: computed %d, card says %d", ErrTLEChecksum, got, want)
	}
	return nil
}

// checksum computes the TLE modulo-10 checksum: digits count as their value,
// minus signs count as 1, everything else as 0.
func checksum(s string) int {
	sum := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			sum += int(c - '0')
		case c == '-':
			sum++
		}
	}
	return sum % 10
}

// parseExpField parses the TLE "implied decimal point, implied exponent"
// notation used for B* and nddot, e.g. " 34123-4" meaning 0.34123e-4.
func parseExpField(s string) (float64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	sign := 1.0
	switch s[0] {
	case '-':
		sign = -1
		s = s[1:]
	case '+':
		s = s[1:]
	}
	if s == "" {
		return 0, nil
	}
	// Split off the exponent: the last '+' or '-' in the remaining string.
	expIdx := strings.LastIndexAny(s, "+-")
	var v float64
	if expIdx <= 0 {
		// No exponent; treat as plain implied-decimal mantissa.
		m, err := strconv.ParseFloat("0."+strings.TrimSpace(s), 64)
		if err != nil {
			return 0, err
		}
		v = sign * m
	} else {
		mant, expStr := s[:expIdx], s[expIdx:]
		m, err := strconv.ParseFloat("0."+strings.TrimSpace(mant), 64)
		if err != nil {
			return 0, err
		}
		e, err := strconv.Atoi(strings.TrimPrefix(expStr, "+"))
		if err != nil {
			return 0, err
		}
		// Real cards carry single-digit exponents; an absurd one would
		// overflow to ±Inf and poison every derived element.
		if e < -30 || e > 30 {
			return 0, fmt.Errorf("exponent %d out of range", e)
		}
		v = sign * m * pow10(e)
	}
	// The 8-char card field holds a five-digit mantissa and a one-digit
	// exponent, so any magnitude outside [1e-10, 1e8] cannot be written
	// back without shifting the checksum column.
	if v != 0 && (math.Abs(v) < 1e-10 || math.Abs(v) > 1e8) {
		return 0, fmt.Errorf("value %v out of card range", v)
	}
	return v, nil
}

func pow10(e int) float64 {
	v := 1.0
	if e >= 0 {
		for i := 0; i < e; i++ {
			v *= 10
		}
		return v
	}
	for i := 0; i < -e; i++ {
		v /= 10
	}
	return v
}

func atoiField(s string) (int, error) {
	return strconv.Atoi(strings.TrimSpace(s))
}

func atofField(s string) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, err
	}
	// ParseFloat accepts "NaN" and "Inf" spellings, which no valid TLE
	// carries; letting them through would poison the elements (and Inf
	// never terminates Format's exponent normalization loop).
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("non-finite value %q", s)
	}
	return v, nil
}

// Format renders the TLE back to canonical two-line (or three-line, when a
// name is present) card format with valid checksums.
func (t TLE) Format() string {
	yy, doy := timeToEpoch(t.Epoch)
	l1 := fmt.Sprintf("1 %05d%c %-8s %02d%012.8f %s %s %s 0 %4d",
		t.NoradID, classOrU(t.Class), t.IntlDesig, yy, doy,
		formatNDot(t.NDot), formatExpField(t.NDDot), formatExpField(t.BStar),
		t.ElsetNum%10000)
	l1 += strconv.Itoa(checksum(l1))

	l2 := fmt.Sprintf("2 %05d %8.4f %8.4f %07d %8.4f %8.4f %11.8f%5d",
		t.NoradID, t.InclinationDeg, t.RAANDeg,
		int(t.Eccentricity*1e7+0.5),
		t.ArgPerigeeDeg, t.MeanAnomalyDeg, t.MeanMotion, t.RevNumber%100000)
	l2 += strconv.Itoa(checksum(l2))

	if t.Name != "" {
		return t.Name + "\n" + l1 + "\n" + l2
	}
	return l1 + "\n" + l2
}

func classOrU(c byte) byte {
	if c == 0 {
		return 'U'
	}
	return c
}

func formatNDot(v float64) string {
	s := fmt.Sprintf("%.8f", v)
	neg := strings.HasPrefix(s, "-")
	s = strings.TrimPrefix(s, "-")
	s = strings.TrimPrefix(s, "0") // implied leading zero
	if neg {
		return "-" + s
	}
	return " " + s
}

// formatExpField renders a value in the implied-decimal exponent notation.
func formatExpField(v float64) string {
	if v == 0 {
		return " 00000+0"
	}
	sign := " "
	if v < 0 {
		sign = "-"
		v = -v
	}
	exp := 0
	for v < 0.1 {
		v *= 10
		exp--
	}
	for v >= 1.0 {
		v /= 10
		exp++
	}
	mant := int(v*1e5 + 0.5)
	if mant >= 100000 { // rounding pushed us to 1.0
		mant = 10000
		exp++
	}
	expSign := "+"
	if exp < 0 {
		expSign = "-"
		exp = -exp
	}
	return fmt.Sprintf("%s%05d%s%d", sign, mant, expSign, exp)
}

// Elements converts the card units into the radian / radians-per-minute
// units consumed by the SGP4 initializer.
func (t TLE) Elements() Elements {
	return Elements{
		NoradID:      t.NoradID,
		Name:         t.Name,
		Epoch:        t.Epoch,
		BStar:        t.BStar,
		Inclination:  t.InclinationDeg * deg2Rad,
		RAAN:         t.RAANDeg * deg2Rad,
		Eccentricity: t.Eccentricity,
		ArgPerigee:   t.ArgPerigeeDeg * deg2Rad,
		MeanAnomaly:  t.MeanAnomalyDeg * deg2Rad,
		MeanMotion:   t.MeanMotion * twoPi / minutesPerDay,
	}
}

// Elements are Brouwer mean orbital elements in SGP4's internal units:
// radians and radians per minute.
type Elements struct {
	NoradID      int
	Name         string
	Epoch        time.Time
	BStar        float64 // 1/earth-radii
	Inclination  float64 // rad
	RAAN         float64 // rad
	Eccentricity float64
	ArgPerigee   float64 // rad
	MeanAnomaly  float64 // rad
	MeanMotion   float64 // rad/min (Kozai mean motion)
}

// TLE renders the elements as a TLE card, the inverse of TLE.Elements.
func (e Elements) TLE() TLE {
	return TLE{
		Name:           e.Name,
		NoradID:        e.NoradID,
		Class:          'U',
		IntlDesig:      "24001A",
		Epoch:          e.Epoch,
		BStar:          e.BStar,
		InclinationDeg: e.Inclination * rad2Deg,
		RAANDeg:        wrapTwoPi(e.RAAN) * rad2Deg,
		Eccentricity:   e.Eccentricity,
		ArgPerigeeDeg:  wrapTwoPi(e.ArgPerigee) * rad2Deg,
		MeanAnomalyDeg: wrapTwoPi(e.MeanAnomaly) * rad2Deg,
		MeanMotion:     e.MeanMotion * minutesPerDay / twoPi,
	}
}

// MeanMotionFromAltitude returns the circular-orbit mean motion (rad/min)
// for a satellite at the given altitude above the mean equatorial radius.
func MeanMotionFromAltitude(altKm float64) float64 {
	a := gravityRadiusKm + altKm
	// n = sqrt(mu/a^3) rad/s → rad/min
	return math.Sqrt(gravityMu/(a*a*a)) * 60.0
}

// AltitudeFromMeanMotion inverts MeanMotionFromAltitude.
func AltitudeFromMeanMotion(nRadPerMin float64) float64 {
	n := nRadPerMin / 60.0
	a := math.Cbrt(gravityMu / (n * n))
	return a - gravityRadiusKm
}

// OrbitalPeriod returns the orbital period for elements e.
func (e Elements) OrbitalPeriod() time.Duration {
	return time.Duration(twoPi / e.MeanMotion * float64(time.Minute))
}
