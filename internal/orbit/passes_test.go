package orbit

import (
	"math"
	"testing"
	"time"
)

// leoElements returns a synthetic sun-synchronous-like LEO element set whose
// epoch anchors the pass-search tests.
func leoElements() Elements {
	return Elements{
		NoradID:      90100,
		Name:         "SINET-LEO",
		Epoch:        time.Date(2024, 10, 1, 0, 0, 0, 0, time.UTC),
		Inclination:  97.6 * deg2Rad,
		Eccentricity: 0.0008,
		ArgPerigee:   90 * deg2Rad,
		MeanAnomaly:  0,
		MeanMotion:   MeanMotionFromAltitude(510),
		BStar:        2e-5,
	}
}

func TestPassesFoundOverOneDay(t *testing.T) {
	p, err := NewPropagator(leoElements())
	if err != nil {
		t.Fatal(err)
	}
	pp := NewPassPredictor(p)
	site := NewGeodeticDeg(22.3, 114.2, 0) // Hong Kong
	start := leoElements().Epoch
	passes := pp.Passes(site, start, start.Add(24*time.Hour), 0)

	// A 510 km polar orbit yields 4-6 visible passes per day over a
	// mid-latitude site.
	if len(passes) < 2 || len(passes) > 8 {
		t.Fatalf("got %d passes in a day, want 2-8", len(passes))
	}
	for i, pass := range passes {
		if !pass.LOS.After(pass.AOS) {
			t.Errorf("pass %d: LOS not after AOS", i)
		}
		if d := pass.Duration(); d < time.Minute || d > 20*time.Minute {
			t.Errorf("pass %d: duration %v outside plausible LEO range", i, d)
		}
		if pass.MaxElevation < 0 {
			t.Errorf("pass %d: negative max elevation", i)
		}
		if pass.TCA.Before(pass.AOS) || pass.TCA.After(pass.LOS) {
			t.Errorf("pass %d: TCA outside window", i)
		}
		if pass.MinRangeKm < 500 || pass.MinRangeKm > 3500 {
			t.Errorf("pass %d: min range %.0f km implausible", i, pass.MinRangeKm)
		}
		if i > 0 && pass.AOS.Before(passes[i-1].LOS) {
			t.Errorf("pass %d overlaps previous", i)
		}
	}
}

func TestPassElevationAboveMaskThroughout(t *testing.T) {
	p, err := NewPropagator(leoElements())
	if err != nil {
		t.Fatal(err)
	}
	pp := NewPassPredictor(p)
	site := NewGeodeticDeg(-33.87, 151.2, 0) // Sydney
	start := leoElements().Epoch
	mask := 10 * deg2Rad
	passes := pp.Passes(site, start, start.Add(48*time.Hour), mask)
	if len(passes) == 0 {
		t.Fatal("no passes found over two days with 10° mask")
	}
	for _, pass := range passes {
		// Sample the interior; the edges are exactly at the mask.
		mid := pass.AOS.Add(pass.Duration() / 2)
		la, err := pp.LookAt(site, mid)
		if err != nil {
			t.Fatal(err)
		}
		if la.Elevation < mask-0.02 {
			t.Errorf("mid-pass elevation %.2f° below mask", la.ElevationDeg())
		}
	}
}

func TestHigherMaskShorterPasses(t *testing.T) {
	p, err := NewPropagator(leoElements())
	if err != nil {
		t.Fatal(err)
	}
	pp := NewPassPredictor(p)
	site := NewGeodeticDeg(40.44, -79.99, 0) // Pittsburgh
	start := leoElements().Epoch
	end := start.Add(24 * time.Hour)
	loose := pp.Passes(site, start, end, 0)
	strict := pp.Passes(site, start, end, 25*deg2Rad)
	if len(strict) > len(loose) {
		t.Errorf("stricter mask found more passes: %d > %d", len(strict), len(loose))
	}
	var looseTotal, strictTotal time.Duration
	for _, p := range loose {
		looseTotal += p.Duration()
	}
	for _, p := range strict {
		strictTotal += p.Duration()
	}
	if strictTotal >= looseTotal && looseTotal > 0 {
		t.Errorf("stricter mask yields more total time: %v >= %v", strictTotal, looseTotal)
	}
}

func TestPassesEmptyWindow(t *testing.T) {
	p, err := NewPropagator(leoElements())
	if err != nil {
		t.Fatal(err)
	}
	pp := NewPassPredictor(p)
	site := NewGeodeticDeg(22.3, 114.2, 0)
	start := leoElements().Epoch
	if got := pp.Passes(site, start, start, 0); got != nil {
		t.Errorf("empty window returned %d passes", len(got))
	}
	if got := pp.Passes(site, start, start.Add(-time.Hour), 0); got != nil {
		t.Errorf("inverted window returned %d passes", len(got))
	}
}

func TestDailyVisibleDuration(t *testing.T) {
	p, err := NewPropagator(leoElements())
	if err != nil {
		t.Fatal(err)
	}
	pp := NewPassPredictor(p)
	site := NewGeodeticDeg(22.3, 114.2, 0)
	start := leoElements().Epoch
	daily := pp.DailyVisibleDuration(site, start, start.Add(3*24*time.Hour), 0)
	// One LEO satellite is visible a few tens of minutes per day.
	if daily < 5*time.Minute || daily > 2*time.Hour {
		t.Errorf("daily visibility %v outside plausible band", daily)
	}
}

func TestMergeWindows(t *testing.T) {
	t0 := time.Date(2024, 10, 1, 0, 0, 0, 0, time.UTC)
	mk := func(startMin, endMin int) Pass {
		return Pass{AOS: t0.Add(time.Duration(startMin) * time.Minute), LOS: t0.Add(time.Duration(endMin) * time.Minute)}
	}
	merged := MergeWindows([]Pass{mk(0, 10), mk(5, 15), mk(30, 40), mk(40, 45), mk(60, 61)})
	if len(merged) != 3 {
		t.Fatalf("got %d merged windows, want 3", len(merged))
	}
	if merged[0].Duration() != 15*time.Minute {
		t.Errorf("first merged window = %v, want 15m", merged[0].Duration())
	}
	if merged[1].Duration() != 15*time.Minute {
		t.Errorf("second merged window = %v, want 15m (touching windows merge)", merged[1].Duration())
	}
	if TotalDuration(merged) != 31*time.Minute {
		t.Errorf("total = %v, want 31m", TotalDuration(merged))
	}
	gaps := Gaps(merged)
	if len(gaps) != 2 || gaps[0] != 15*time.Minute || gaps[1] != 15*time.Minute {
		t.Errorf("gaps = %v", gaps)
	}
}

func TestMergeWindowsEdgeCases(t *testing.T) {
	t0 := time.Date(2024, 10, 1, 0, 0, 0, 0, time.UTC)
	mk := func(startMin, endMin int) Pass {
		return Pass{AOS: t0.Add(time.Duration(startMin) * time.Minute), LOS: t0.Add(time.Duration(endMin) * time.Minute)}
	}

	t.Run("fully nested", func(t *testing.T) {
		merged := MergeWindows([]Pass{mk(0, 100), mk(10, 20), mk(40, 90)})
		if len(merged) != 1 {
			t.Fatalf("got %d windows, want 1", len(merged))
		}
		if merged[0].Start != t0 || merged[0].Duration() != 100*time.Minute {
			t.Errorf("nested windows did not collapse into the outer span: %+v", merged[0])
		}
	})

	t.Run("identical AOS", func(t *testing.T) {
		merged := MergeWindows([]Pass{mk(0, 5), mk(0, 12), mk(0, 3)})
		if len(merged) != 1 {
			t.Fatalf("got %d windows, want 1", len(merged))
		}
		if merged[0].Duration() != 12*time.Minute {
			t.Errorf("same-start windows merged to %v, want the longest (12m)", merged[0].Duration())
		}
	})

	t.Run("zero-length windows", func(t *testing.T) {
		// A zero-length window inside or touching a real window vanishes
		// into it; an isolated one survives with zero duration and still
		// bounds gaps on both sides.
		merged := MergeWindows([]Pass{mk(0, 10), mk(5, 5), mk(10, 10), mk(50, 50)})
		if len(merged) != 2 {
			t.Fatalf("got %d windows, want 2: %v", len(merged), merged)
		}
		if merged[0].Duration() != 10*time.Minute || merged[1].Duration() != 0 {
			t.Errorf("durations %v / %v, want 10m / 0", merged[0].Duration(), merged[1].Duration())
		}
		if TotalDuration(merged) != 10*time.Minute {
			t.Errorf("total %v, want 10m", TotalDuration(merged))
		}
		gaps := Gaps(merged)
		if len(gaps) != 1 || gaps[0] != 40*time.Minute {
			t.Errorf("gaps = %v, want [40m]", gaps)
		}
	})

	t.Run("all zero-length", func(t *testing.T) {
		merged := MergeWindows([]Pass{mk(5, 5), mk(5, 5)})
		if len(merged) != 1 || merged[0].Duration() != 0 {
			t.Fatalf("duplicate zero-length windows: %v", merged)
		}
		if got := Gaps(merged); got != nil {
			t.Errorf("single window yielded gaps %v", got)
		}
	})
}

func TestMergeWindowsEmpty(t *testing.T) {
	if MergeWindows(nil) != nil {
		t.Error("MergeWindows(nil) != nil")
	}
	if Gaps(nil) != nil {
		t.Error("Gaps(nil) != nil")
	}
}

func TestPassesSubStepPassTerminates(t *testing.T) {
	// Regression: a pass shorter than the coarse scan step used to refine
	// its LOS to a time at or before the scan cursor, jumping the scan
	// backwards and re-detecting the same rising edge forever. With a
	// high elevation mask the above-mask span of most passes is far
	// shorter than a large coarse step, exercising exactly that geometry.
	p, err := NewPropagator(leoElements())
	if err != nil {
		t.Fatal(err)
	}
	pp := NewPassPredictor(p)
	pp.CoarseStep = 10 * time.Minute
	site := NewGeodeticDeg(22.3, 114.2, 0)
	start := leoElements().Epoch

	done := make(chan []Pass, 1)
	go func() {
		done <- pp.Passes(site, start, start.Add(3*24*time.Hour), 45*deg2Rad)
	}()
	select {
	case passes := <-done:
		for i, pass := range passes {
			if !pass.LOS.After(pass.AOS) {
				t.Errorf("pass %d: inverted window", i)
			}
			if i > 0 && pass.AOS.Before(passes[i-1].AOS) {
				t.Errorf("pass %d out of order", i)
			}
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Passes did not terminate: sub-step pass livelock regression")
	}
}

func TestPassDopplerProfile(t *testing.T) {
	// During a pass, range rate goes from negative (approaching) through
	// zero near TCA to positive (receding) — this drives the Doppler S-curve.
	p, err := NewPropagator(leoElements())
	if err != nil {
		t.Fatal(err)
	}
	pp := NewPassPredictor(p)
	site := NewGeodeticDeg(22.3, 114.2, 0)
	start := leoElements().Epoch
	passes := pp.Passes(site, start, start.Add(24*time.Hour), 5*deg2Rad)
	if len(passes) == 0 {
		t.Skip("no pass above 5° in the first day")
	}
	pass := passes[0]
	early, err := pp.LookAt(site, pass.AOS.Add(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	late, err := pp.LookAt(site, pass.LOS.Add(-10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if early.RangeRate >= 0 {
		t.Errorf("early pass range rate %.3f km/s, want approaching (<0)", early.RangeRate)
	}
	if late.RangeRate <= 0 {
		t.Errorf("late pass range rate %.3f km/s, want receding (>0)", late.RangeRate)
	}
	// Peak |range rate| for LEO is bounded by the orbital speed.
	if math.Abs(early.RangeRate) > 8 || math.Abs(late.RangeRate) > 8 {
		t.Error("range rate exceeds orbital speed")
	}
}
