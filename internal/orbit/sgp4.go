package orbit

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// WGS-72 gravity constants, matching the reference SGP4 implementation
// distributed with "Revisiting Spacetrack Report #3" (Vallado et al., 2006).
const (
	gravityMu       = 398600.8              // km³/s²
	gravityRadiusKm = 6378.135              // km, equatorial radius used by SGP4
	xke             = 0.0743669161331734049 // sqrt-of-gravity constant, (er/min)^(3/2) units
	tumin           = 1.0 / xke
	j2              = 0.001082616
	j3              = -0.00000253881
	j4              = -0.00000165597
	j3oj2           = j3 / j2
	x2o3            = 2.0 / 3.0
	vkmpersec       = gravityRadiusKm * xke / 60.0
)

// Errors returned by the propagator.
var (
	ErrDeepSpace   = errors.New("orbit: deep-space orbit (period >= 225 min) not supported by the near-earth SGP4 model")
	ErrDecayed     = errors.New("orbit: satellite has decayed")
	ErrBadElements = errors.New("orbit: elements produce non-physical orbit")
)

// Propagator is an initialized SGP4 near-earth propagator for one element
// set.
//
// A Propagator is NOT guaranteed goroutine-safe: callers must not share one
// instance across goroutines and should hand each worker its own Clone
// (cheap — initialization is not redone). The propagation methods are
// currently read-only, an invariant this package relies on internally (see
// Ephemeris) and guards with a -race regression test, but external callers
// must not depend on it: the type reserves the right to memoize.
type Propagator struct {
	els Elements

	// Recovered (un-Kozai'd) mean motion and semi-major axis.
	noUnkozai float64
	ao        float64

	isimp bool

	// Secular rate and drag coefficients (names follow the reference code).
	con41, x1mth2, x7thm1      float64
	cc1, cc4, cc5              float64
	d2, d3, d4                 float64
	delmo, eta, sinmao         float64
	argpdot, mdot, nodedot     float64
	omgcof, xmcof, nodecf      float64
	t2cof, t3cof, t4cof, t5cof float64
	xlcof, aycof               float64
}

// NewPropagator initializes SGP4 for the element set. It rejects deep-space
// orbits (none of the paper's constellations come close) and non-physical
// element combinations.
func NewPropagator(e Elements) (*Propagator, error) {
	if e.Eccentricity < 0 || e.Eccentricity >= 1 {
		return nil, fmt.Errorf("%w: eccentricity %v", ErrBadElements, e.Eccentricity)
	}
	if e.MeanMotion <= 0 {
		return nil, fmt.Errorf("%w: mean motion %v", ErrBadElements, e.MeanMotion)
	}

	p := &Propagator{els: e}

	ecco := e.Eccentricity
	inclo := e.Inclination
	noKozai := e.MeanMotion

	cosio := math.Cos(inclo)
	cosio2 := cosio * cosio
	eccsq := ecco * ecco
	omeosq := 1.0 - eccsq
	rteosq := math.Sqrt(omeosq)

	// Un-Kozai the mean motion.
	ak := math.Pow(xke/noKozai, x2o3)
	d1 := 0.75 * j2 * (3.0*cosio2 - 1.0) / (rteosq * omeosq)
	del := d1 / (ak * ak)
	adel := ak * (1.0 - del*del - del*(1.0/3.0+134.0*del*del/81.0))
	del = d1 / (adel * adel)
	p.noUnkozai = noKozai / (1.0 + del)

	p.ao = math.Pow(xke/p.noUnkozai, x2o3)
	sinio := math.Sin(inclo)
	po := p.ao * omeosq
	con42 := 1.0 - 5.0*cosio2
	p.con41 = -con42 - cosio2 - cosio2
	posq := po * po
	rp := p.ao * (1.0 - ecco)

	// Deep-space check: period >= 225 minutes.
	if twoPi/p.noUnkozai >= 225.0 {
		return nil, ErrDeepSpace
	}
	if rp < 1.0 {
		return nil, fmt.Errorf("%w: perigee below the surface", ErrBadElements)
	}

	p.isimp = rp < 220.0/gravityRadiusKm+1.0

	sfour := 78.0/gravityRadiusKm + 1.0
	qzms24 := math.Pow((120.0-78.0)/gravityRadiusKm, 4)
	perige := (rp - 1.0) * gravityRadiusKm
	if perige < 156.0 {
		sfour = perige - 78.0
		if perige < 98.0 {
			sfour = 20.0
		}
		qzms24 = math.Pow((120.0-sfour)/gravityRadiusKm, 4)
		sfour = sfour/gravityRadiusKm + 1.0
	}
	pinvsq := 1.0 / posq

	tsi := 1.0 / (p.ao - sfour)
	p.eta = p.ao * ecco * tsi
	etasq := p.eta * p.eta
	eeta := ecco * p.eta
	psisq := math.Abs(1.0 - etasq)
	coef := qzms24 * math.Pow(tsi, 4)
	coef1 := coef / math.Pow(psisq, 3.5)
	cc2 := coef1 * p.noUnkozai * (p.ao*(1.0+1.5*etasq+eeta*(4.0+etasq)) +
		0.375*j2*tsi/psisq*p.con41*(8.0+3.0*etasq*(8.0+etasq)))
	p.cc1 = e.BStar * cc2
	cc3 := 0.0
	if ecco > 1.0e-4 {
		cc3 = -2.0 * coef * tsi * j3oj2 * p.noUnkozai * sinio / ecco
	}
	p.x1mth2 = 1.0 - cosio2
	p.cc4 = 2.0 * p.noUnkozai * coef1 * p.ao * omeosq *
		(p.eta*(2.0+0.5*etasq) + ecco*(0.5+2.0*etasq) -
			j2*tsi/(p.ao*psisq)*
				(-3.0*p.con41*(1.0-2.0*eeta+etasq*(1.5-0.5*eeta))+
					0.75*p.x1mth2*(2.0*etasq-eeta*(1.0+etasq))*math.Cos(2.0*e.ArgPerigee)))
	p.cc5 = 2.0 * coef1 * p.ao * omeosq * (1.0 + 2.75*(etasq+eeta) + eeta*etasq)

	cosio4 := cosio2 * cosio2
	temp1 := 1.5 * j2 * pinvsq * p.noUnkozai
	temp2 := 0.5 * temp1 * j2 * pinvsq
	temp3 := -0.46875 * j4 * pinvsq * pinvsq * p.noUnkozai
	p.mdot = p.noUnkozai + 0.5*temp1*rteosq*p.con41 +
		0.0625*temp2*rteosq*(13.0-78.0*cosio2+137.0*cosio4)
	p.argpdot = -0.5*temp1*con42 +
		0.0625*temp2*(7.0-114.0*cosio2+395.0*cosio4) +
		temp3*(3.0-36.0*cosio2+49.0*cosio4)
	xhdot1 := -temp1 * cosio
	p.nodedot = xhdot1 + (0.5*temp2*(4.0-19.0*cosio2)+2.0*temp3*(3.0-7.0*cosio2))*cosio
	p.omgcof = e.BStar * cc3 * math.Cos(e.ArgPerigee)
	p.xmcof = 0.0
	if ecco > 1.0e-4 {
		p.xmcof = -x2o3 * coef * e.BStar / eeta
	}
	p.nodecf = 3.5 * omeosq * xhdot1 * p.cc1
	p.t2cof = 1.5 * p.cc1
	// Avoid division by zero for inclination near 180°.
	if math.Abs(cosio+1.0) > 1.5e-12 {
		p.xlcof = -0.25 * j3oj2 * sinio * (3.0 + 5.0*cosio) / (1.0 + cosio)
	} else {
		p.xlcof = -0.25 * j3oj2 * sinio * (3.0 + 5.0*cosio) / 1.5e-12
	}
	p.aycof = -0.5 * j3oj2 * sinio
	p.delmo = math.Pow(1.0+p.eta*math.Cos(e.MeanAnomaly), 3)
	p.sinmao = math.Sin(e.MeanAnomaly)
	p.x7thm1 = 7.0*cosio2 - 1.0

	if !p.isimp {
		cc1sq := p.cc1 * p.cc1
		p.d2 = 4.0 * p.ao * tsi * cc1sq
		temp := p.d2 * tsi * p.cc1 / 3.0
		p.d3 = (17.0*p.ao + sfour) * temp
		p.d4 = 0.5 * temp * p.ao * tsi * (221.0*p.ao + 31.0*sfour) * p.cc1
		p.t3cof = p.d2 + 2.0*cc1sq
		p.t4cof = 0.25 * (3.0*p.d3 + p.cc1*(12.0*p.d2+10.0*cc1sq))
		p.t5cof = 0.2 * (3.0*p.d4 + 12.0*p.cc1*p.d3 + 6.0*p.d2*p.d2 +
			15.0*cc1sq*(2.0*p.d2+cc1sq))
	}
	return p, nil
}

// NewPropagatorFromTLE initializes SGP4 directly from a parsed TLE.
func NewPropagatorFromTLE(t TLE) (*Propagator, error) {
	return NewPropagator(t.Elements())
}

// Elements returns the element set the propagator was built from.
func (p *Propagator) Elements() Elements { return p.els }

// Clone returns an independent copy of the propagator. All initialization
// coefficients are plain values, so a shallow copy yields a propagator that
// shares no mutable state with the receiver; use one Clone per goroutine.
func (p *Propagator) Clone() *Propagator {
	cp := *p
	return &cp
}

// sgp4Calls counts SGP4 propagations process-wide. The campaign-complexity
// tests use it to assert the ephemeris cache turns pass prediction from
// O(sats × sites × steps) propagations into O(sats × steps).
var sgp4Calls atomic.Int64

// SGP4Calls returns the number of SGP4 propagations performed since the last
// ResetSGP4Calls (or process start).
func SGP4Calls() int64 { return sgp4Calls.Load() }

// ResetSGP4Calls zeroes the propagation counter.
func ResetSGP4Calls() { sgp4Calls.Store(0) }

// State is the propagated position/velocity in the TEME frame.
type State struct {
	Position Vec3 // km, TEME
	Velocity Vec3 // km/s, TEME
}

// PropagateMinutes advances the orbit tsince minutes past the element epoch
// and returns the TEME state.
func (p *Propagator) PropagateMinutes(tsince float64) (State, error) {
	sgp4Calls.Add(1)
	if m := metrics.Load(); m != nil {
		m.sgp4Calls.Inc()
	}
	var s State

	// Secular gravity and atmospheric drag.
	xmdf := p.els.MeanAnomaly + p.mdot*tsince
	argpdf := p.els.ArgPerigee + p.argpdot*tsince
	nodedf := p.els.RAAN + p.nodedot*tsince
	argpm := argpdf
	mm := xmdf
	t2 := tsince * tsince
	nodem := nodedf + p.nodecf*t2
	tempa := 1.0 - p.cc1*tsince
	tempe := p.els.BStar * p.cc4 * tsince
	templ := p.t2cof * t2

	if !p.isimp {
		delomg := p.omgcof * tsince
		delmtemp := 1.0 + p.eta*math.Cos(xmdf)
		delm := p.xmcof * (delmtemp*delmtemp*delmtemp - p.delmo)
		temp := delomg + delm
		mm = xmdf + temp
		argpm = argpdf - temp
		t3 := t2 * tsince
		t4 := t3 * tsince
		tempa = tempa - p.d2*t2 - p.d3*t3 - p.d4*t4
		tempe = tempe + p.els.BStar*p.cc5*(math.Sin(mm)-p.sinmao)
		templ = templ + p.t3cof*t3 + t4*(p.t4cof+tsince*p.t5cof)
	}

	nm := p.noUnkozai
	em := p.els.Eccentricity
	inclm := p.els.Inclination

	am := math.Pow(xke/nm, x2o3) * tempa * tempa
	nm = xke / math.Pow(am, 1.5)
	em -= tempe

	if em >= 1.0 || em < -0.001 {
		return s, fmt.Errorf("%w: eccentricity %v at tsince %.1f", ErrBadElements, em, tsince)
	}
	if em < 1.0e-6 {
		em = 1.0e-6
	}
	mm += p.noUnkozai * templ
	xlm := mm + argpm + nodem

	nodem = wrapTwoPi(nodem)
	argpm = wrapTwoPi(argpm)
	xlm = wrapTwoPi(xlm)
	mm = wrapTwoPi(xlm - argpm - nodem)

	sinim := math.Sin(inclm)
	cosim := math.Cos(inclm)

	// No deep-space contributions: near-earth only.
	ep := em
	xincp := inclm
	argpp := argpm
	nodep := nodem
	mp := mm
	sinip := sinim
	cosip := cosim

	// Long-period periodics.
	axnl := ep * math.Cos(argpp)
	temp := 1.0 / (am * (1.0 - ep*ep))
	aynl := ep*math.Sin(argpp) + temp*p.aycof
	xl := mp + argpp + nodep + temp*p.xlcof*axnl

	// Solve Kepler's equation.
	u := wrapTwoPi(xl - nodep)
	eo1 := u
	tem5 := 9999.9
	ktr := 1
	var sineo1, coseo1 float64
	for math.Abs(tem5) >= 1.0e-12 && ktr <= 10 {
		sineo1 = math.Sin(eo1)
		coseo1 = math.Cos(eo1)
		tem5 = 1.0 - coseo1*axnl - sineo1*aynl
		tem5 = (u - aynl*coseo1 + axnl*sineo1 - eo1) / tem5
		if math.Abs(tem5) >= 0.95 {
			if tem5 > 0 {
				tem5 = 0.95
			} else {
				tem5 = -0.95
			}
		}
		eo1 += tem5
		ktr++
	}

	// Short-period preliminary quantities.
	ecose := axnl*coseo1 + aynl*sineo1
	esine := axnl*sineo1 - aynl*coseo1
	el2 := axnl*axnl + aynl*aynl
	pl := am * (1.0 - el2)
	if pl < 0 {
		return s, fmt.Errorf("%w: semi-latus rectum %v", ErrBadElements, pl)
	}

	rl := am * (1.0 - ecose)
	rdotl := math.Sqrt(am) * esine / rl
	rvdotl := math.Sqrt(pl) / rl
	betal := math.Sqrt(1.0 - el2)
	temp = esine / (1.0 + betal)
	sinu := am / rl * (sineo1 - aynl - axnl*temp)
	cosu := am / rl * (coseo1 - axnl + aynl*temp)
	su := math.Atan2(sinu, cosu)
	sin2u := (cosu + cosu) * sinu
	cos2u := 1.0 - 2.0*sinu*sinu
	temp = 1.0 / pl
	temp1 := 0.5 * j2 * temp
	temp2 := temp1 * temp

	// Update for short-period periodics.
	mrt := rl*(1.0-1.5*temp2*betal*p.con41) + 0.5*temp1*p.x1mth2*cos2u
	su -= 0.25 * temp2 * p.x7thm1 * sin2u
	xnode := nodep + 1.5*temp2*cosip*sin2u
	xinc := xincp + 1.5*temp2*cosip*sinip*cos2u
	mvt := rdotl - nm*temp1*p.x1mth2*sin2u/xke
	rvdot := rvdotl + nm*temp1*(p.x1mth2*cos2u+1.5*p.con41)/xke

	// Orientation vectors.
	sinsu := math.Sin(su)
	cossu := math.Cos(su)
	snod := math.Sin(xnode)
	cnod := math.Cos(xnode)
	sini := math.Sin(xinc)
	cosi := math.Cos(xinc)
	xmx := -snod * cosi
	xmy := cnod * cosi
	ux := xmx*sinsu + cnod*cossu
	uy := xmy*sinsu + snod*cossu
	uz := sini * sinsu
	vx := xmx*cossu - cnod*sinsu
	vy := xmy*cossu - snod*sinsu
	vz := sini * cossu

	s.Position = Vec3{mrt * ux, mrt * uy, mrt * uz}.Scale(gravityRadiusKm)
	s.Velocity = Vec3{
		mvt*ux + rvdot*vx,
		mvt*uy + rvdot*vy,
		mvt*uz + rvdot*vz,
	}.Scale(vkmpersec)

	if mrt < 1.0 {
		return s, ErrDecayed
	}
	return s, nil
}

// PropagateTo advances the orbit to the absolute time t.
func (p *Propagator) PropagateTo(t time.Time) (State, error) {
	tsince := t.Sub(p.els.Epoch).Minutes()
	return p.PropagateMinutes(tsince)
}

// PositionECEF propagates to t and returns the satellite's ECEF position
// and velocity.
func (p *Propagator) PositionECEF(t time.Time) (r, v Vec3, err error) {
	s, err := p.PropagateTo(t)
	if err != nil {
		return Vec3{}, Vec3{}, err
	}
	r, v = TEMEToECEFVel(s.Position, s.Velocity, t)
	return r, v, nil
}

// Subpoint propagates to t and returns the sub-satellite geodetic point.
func (p *Propagator) Subpoint(t time.Time) (Geodetic, error) {
	r, _, err := p.PositionECEF(t)
	if err != nil {
		return Geodetic{}, err
	}
	return GeodeticFromECEF(r), nil
}
