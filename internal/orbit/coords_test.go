package orbit

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestVec3Ops(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, 5, 6}
	if got := a.Add(b); got != (Vec3{5, 7, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Vec3{-3, -3, -3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Dot(b); got != 32 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Cross(b); got != (Vec3{-3, 6, -3}) {
		t.Errorf("Cross = %v", got)
	}
	if got := a.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := (Vec3{3, 4, 0}).Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
}

func TestCrossOrthogonality(t *testing.T) {
	prop := func(ax, ay, az, bx, by, bz int8) bool {
		a := Vec3{float64(ax), float64(ay), float64(az)}
		b := Vec3{float64(bx), float64(by), float64(bz)}
		c := a.Cross(b)
		return math.Abs(c.Dot(a)) < 1e-9 && math.Abs(c.Dot(b)) < 1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestGeodeticECEFKnownPoints(t *testing.T) {
	// Equator/prime meridian at sea level: (a, 0, 0).
	g := NewGeodeticDeg(0, 0, 0)
	r := g.ECEF()
	if math.Abs(r.X-EarthRadiusKm) > 1e-6 || math.Abs(r.Y) > 1e-6 || math.Abs(r.Z) > 1e-6 {
		t.Errorf("equator ECEF = %v", r)
	}
	// North pole: z = semi-minor axis b ≈ 6356.752 km.
	g = NewGeodeticDeg(90, 0, 0)
	r = g.ECEF()
	b := EarthRadiusKm * (1 - earthFlattening)
	if math.Abs(r.Z-b) > 1e-6 || math.Hypot(r.X, r.Y) > 1e-6 {
		t.Errorf("pole ECEF = %v, want z=%.6f", r, b)
	}
}

func TestGeodeticECEFRoundTrip(t *testing.T) {
	prop := func(latQ, lonQ, altQ uint16) bool {
		g := Geodetic{
			Lat: (float64(latQ)/65535 - 0.5) * math.Pi * 0.998, // avoid exact poles
			Lon: (float64(lonQ)/65535 - 0.5) * twoPi * 0.999,
			Alt: float64(altQ) / 65535 * 2000,
		}
		back := GeodeticFromECEF(g.ECEF())
		return math.Abs(back.Lat-g.Lat) < 1e-9 &&
			math.Abs(wrapPi(back.Lon-g.Lon)) < 1e-9 &&
			math.Abs(back.Alt-g.Alt) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGeodeticFromECEFPolarDegenerate(t *testing.T) {
	b := EarthRadiusKm * (1 - earthFlattening)
	g := GeodeticFromECEF(Vec3{0, 0, b + 500})
	if math.Abs(g.LatDeg()-90) > 1e-6 || math.Abs(g.Alt-500) > 1e-6 {
		t.Errorf("north polar point = %v", g)
	}
	g = GeodeticFromECEF(Vec3{0, 0, -(b + 500)})
	if math.Abs(g.LatDeg()+90) > 1e-6 {
		t.Errorf("south polar point = %v", g)
	}
}

func TestTEMEToECEFPreservesNorm(t *testing.T) {
	at := time.Date(2024, 10, 1, 12, 0, 0, 0, time.UTC)
	prop := func(x, y, z int16) bool {
		r := Vec3{float64(x), float64(y), float64(z)}
		e := TEMEToECEF(r, at)
		return math.Abs(e.Norm()-r.Norm()) < 1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestTEMEToECEFVelRemovesEarthRotation(t *testing.T) {
	// A satellite in a circular equatorial prograde orbit moving with the
	// Earth's rotation direction has ECEF speed = inertial speed - ω·r.
	at := time.Date(2024, 10, 1, 0, 0, 0, 0, time.UTC)
	r := Vec3{7000, 0, 0}
	v := Vec3{0, 7.5, 0}
	rE, vE := TEMEToECEFVel(r, v, at)
	if math.Abs(rE.Norm()-7000) > 1e-9 {
		t.Errorf("position norm changed: %v", rE.Norm())
	}
	wantSpeed := 7.5 - EarthRotationRate*7000
	if math.Abs(vE.Norm()-wantSpeed) > 1e-6 {
		t.Errorf("ECEF speed = %.6f, want %.6f", vE.Norm(), wantSpeed)
	}
}

func TestLookStraightUp(t *testing.T) {
	site := NewGeodeticDeg(22.3, 114.2, 0) // Hong Kong
	over := Geodetic{Lat: site.Lat, Lon: site.Lon, Alt: 550}
	la := Look(site, over.ECEF(), Vec3{})
	if la.ElevationDeg() < 89.8 {
		t.Errorf("overhead elevation = %.3f°, want ~90", la.ElevationDeg())
	}
	if math.Abs(la.RangeKm-550) > 3 {
		t.Errorf("overhead range = %.1f km, want ~550", la.RangeKm)
	}
}

func TestLookCardinalAzimuths(t *testing.T) {
	site := NewGeodeticDeg(0, 0, 0) // equator, prime meridian
	cases := []struct {
		name   string
		target Geodetic
		wantAz float64 // degrees
	}{
		{"north", NewGeodeticDeg(5, 0, 500), 0},
		{"east", NewGeodeticDeg(0, 5, 500), 90},
		{"south", NewGeodeticDeg(-5, 0, 500), 180},
		{"west", NewGeodeticDeg(0, -5, 500), 270},
	}
	for _, c := range cases {
		la := Look(site, c.target.ECEF(), Vec3{})
		diff := math.Abs(la.AzimuthDeg() - c.wantAz)
		if diff > 180 {
			diff = 360 - diff
		}
		if diff > 1.0 {
			t.Errorf("%s: azimuth = %.2f°, want %.0f°", c.name, la.AzimuthDeg(), c.wantAz)
		}
	}
}

func TestLookBelowHorizon(t *testing.T) {
	site := NewGeodeticDeg(0, 0, 0)
	// A satellite on the opposite side of the Earth is far below the horizon.
	anti := NewGeodeticDeg(0, 180, 550)
	la := Look(site, anti.ECEF(), Vec3{})
	if la.Elevation > -math.Pi/4 {
		t.Errorf("antipodal elevation = %.1f°, want deeply negative", la.ElevationDeg())
	}
}

func TestLookRangeRateSign(t *testing.T) {
	site := NewGeodeticDeg(0, 0, 0)
	sat := NewGeodeticDeg(0, 10, 550).ECEF()
	// Velocity pointing away from the site along +lon -> receding.
	away := Vec3{-sat.Y, sat.X, 0}.Scale(7.5 / sat.Norm()) // eastward
	la := Look(site, sat, away)
	if la.RangeRate <= 0 {
		t.Errorf("receding satellite has range rate %.3f, want > 0", la.RangeRate)
	}
	la = Look(site, sat, away.Scale(-1))
	if la.RangeRate >= 0 {
		t.Errorf("approaching satellite has range rate %.3f, want < 0", la.RangeRate)
	}
}

func TestHaversine(t *testing.T) {
	hk := NewGeodeticDeg(22.3193, 114.1694, 0)
	syd := NewGeodeticDeg(-33.8688, 151.2093, 0)
	d := HaversineKm(hk, syd)
	// Great-circle HK-Sydney is ~7394 km.
	if d < 7300 || d > 7500 {
		t.Errorf("HK-SYD = %.0f km, want ~7394", d)
	}
	if HaversineKm(hk, hk) != 0 {
		t.Error("distance to self nonzero")
	}
	prop := func(a1, o1, a2, o2 uint16) bool {
		p := Geodetic{Lat: (float64(a1)/65535 - 0.5) * math.Pi, Lon: (float64(o1)/65535 - 0.5) * twoPi}
		q := Geodetic{Lat: (float64(a2)/65535 - 0.5) * math.Pi, Lon: (float64(o2)/65535 - 0.5) * twoPi}
		d1, d2 := HaversineKm(p, q), HaversineKm(q, p)
		return math.Abs(d1-d2) < 1e-9 && d1 >= 0 && d1 <= 6371*math.Pi+1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestSlantRangeMatchesLook(t *testing.T) {
	site := NewGeodeticDeg(51.5, -0.12, 0)
	sat := NewGeodeticDeg(50, 10, 600).ECEF()
	la := Look(site, sat, Vec3{})
	if d := math.Abs(SlantRange(site, sat) - la.RangeKm); d > 1e-9 {
		t.Errorf("SlantRange and Look disagree by %v km", d)
	}
}
