package orbit

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

// TestMergeWindowsProperties checks the interval-union invariants with
// generated window sets.
func TestMergeWindowsProperties(t *testing.T) {
	base := time.Date(2024, 10, 1, 0, 0, 0, 0, time.UTC)
	prop := func(starts []uint16, durs []uint8) bool {
		n := len(starts)
		if len(durs) < n {
			n = len(durs)
		}
		if n == 0 {
			return true
		}
		passes := make([]Pass, n)
		var sum time.Duration
		var longest time.Duration
		for i := 0; i < n; i++ {
			s := base.Add(time.Duration(starts[i]) * time.Minute)
			d := time.Duration(durs[i]+1) * time.Minute
			passes[i] = Pass{AOS: s, LOS: s.Add(d)}
			sum += d
			if d > longest {
				longest = d
			}
		}
		merged := MergeWindows(passes)
		total := TotalDuration(merged)
		// Union is bounded by the sum and at least as long as the longest
		// single window.
		if total > sum || total < longest {
			return false
		}
		// Merged windows are sorted, non-overlapping, non-touching.
		for i := 1; i < len(merged); i++ {
			if !merged[i].Start.After(merged[i-1].End) {
				return false
			}
		}
		// Every original window is contained in some merged window.
		for _, p := range passes {
			contained := false
			for _, w := range merged {
				if !p.AOS.Before(w.Start) && !p.LOS.After(w.End) {
					contained = true
					break
				}
			}
			if !contained {
				return false
			}
		}
		// Gaps are all positive and there are len(merged)-1 of them.
		gaps := Gaps(merged)
		if len(merged) > 1 && len(gaps) != len(merged)-1 {
			return false
		}
		for _, g := range gaps {
			if g <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestMergeWindowsIdempotent: merging a merged set changes nothing.
func TestMergeWindowsIdempotent(t *testing.T) {
	base := time.Date(2024, 10, 1, 0, 0, 0, 0, time.UTC)
	prop := func(starts []uint16) bool {
		passes := make([]Pass, len(starts))
		for i, s := range starts {
			a := base.Add(time.Duration(s) * time.Minute)
			passes[i] = Pass{AOS: a, LOS: a.Add(7 * time.Minute)}
		}
		if len(passes) == 0 {
			return true
		}
		once := MergeWindows(passes)
		again := make([]Pass, len(once))
		for i, w := range once {
			again[i] = Pass{AOS: w.Start, LOS: w.End}
		}
		twice := MergeWindows(again)
		if len(once) != len(twice) {
			return false
		}
		for i := range once {
			if !once[i].Start.Equal(twice[i].Start) || !once[i].End.Equal(twice[i].End) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSGP4TimeSymmetry: propagating to t is independent of call history
// (the propagator is stateless), checked with random offsets.
func TestSGP4TimeSymmetry(t *testing.T) {
	p := issProp(t)
	prop := func(aq, bq uint16) bool {
		a := float64(aq) / 10
		b := float64(bq) / 10
		s1, err1 := p.PropagateMinutes(a)
		_, _ = p.PropagateMinutes(b) // interleaved call must not matter
		s2, err2 := p.PropagateMinutes(a)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		return s1.Position == s2.Position && s1.Velocity == s2.Velocity
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestLookRangeTriangle: slant range obeys the triangle bound between
// observer geocentric distance and satellite geocentric distance.
func TestLookRangeTriangle(t *testing.T) {
	p := issProp(t)
	epoch := p.Elements().Epoch
	prop := func(latQ, lonQ uint8, minQ uint16) bool {
		site := Geodetic{
			Lat: (float64(latQ)/255 - 0.5) * math.Pi * 0.96,
			Lon: (float64(lonQ)/255 - 0.5) * twoPi * 0.99,
		}
		at := epoch.Add(time.Duration(minQ) * time.Minute / 4)
		r, v, err := p.PositionECEF(at)
		if err != nil {
			return true
		}
		la := Look(site, r, v)
		rs := r.Norm()
		ro := site.ECEF().Norm()
		lo, hi := math.Abs(rs-ro), rs+ro
		return la.RangeKm >= lo-1e-6 && la.RangeKm <= hi+1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
