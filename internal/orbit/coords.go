package orbit

import (
	"fmt"
	"math"
	"time"
)

// WGS-84 ellipsoid constants used for geodetic conversions. SGP4 itself runs
// on WGS-72 gravity constants (see sgp4.go), matching the reference
// implementation; the small mismatch is standard practice.
const (
	// EarthRadiusKm is the WGS-84 equatorial radius.
	EarthRadiusKm = 6378.137
	// earthFlattening is the WGS-84 flattening factor.
	earthFlattening = 1.0 / 298.257223563
	// earthEcc2 is the square of the first eccentricity of the ellipsoid.
	earthEcc2 = earthFlattening * (2 - earthFlattening)
	// EarthRotationRate is the Earth rotation rate in rad/s (IAU-82).
	EarthRotationRate = 7.292115e-5
)

// Vec3 is a three-dimensional Cartesian vector.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product v·w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v×w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// String implements fmt.Stringer.
func (v Vec3) String() string {
	return fmt.Sprintf("(%.3f, %.3f, %.3f)", v.X, v.Y, v.Z)
}

// Geodetic is a WGS-84 geodetic position. Latitude and longitude are in
// radians, altitude in km above the ellipsoid.
type Geodetic struct {
	Lat float64 // geodetic latitude, rad, positive north
	Lon float64 // longitude, rad, positive east, in (-π, π]
	Alt float64 // height above the ellipsoid, km
}

// NewGeodeticDeg builds a Geodetic from degrees and km, the human-friendly
// form used by site catalogs.
func NewGeodeticDeg(latDeg, lonDeg, altKm float64) Geodetic {
	return Geodetic{Lat: latDeg * deg2Rad, Lon: wrapPi(lonDeg * deg2Rad), Alt: altKm}
}

// LatDeg returns the latitude in degrees.
func (g Geodetic) LatDeg() float64 { return g.Lat * rad2Deg }

// LonDeg returns the longitude in degrees.
func (g Geodetic) LonDeg() float64 { return g.Lon * rad2Deg }

// String implements fmt.Stringer.
func (g Geodetic) String() string {
	return fmt.Sprintf("lat=%.4f° lon=%.4f° alt=%.3fkm", g.LatDeg(), g.LonDeg(), g.Alt)
}

// ECEF converts the geodetic position to Earth-centred Earth-fixed
// Cartesian coordinates (km).
func (g Geodetic) ECEF() Vec3 {
	sinLat := math.Sin(g.Lat)
	cosLat := math.Cos(g.Lat)
	// Radius of curvature in the prime vertical.
	n := EarthRadiusKm / math.Sqrt(1-earthEcc2*sinLat*sinLat)
	return Vec3{
		X: (n + g.Alt) * cosLat * math.Cos(g.Lon),
		Y: (n + g.Alt) * cosLat * math.Sin(g.Lon),
		Z: (n*(1-earthEcc2) + g.Alt) * sinLat,
	}
}

// GeodeticFromECEF converts an ECEF position (km) to geodetic coordinates
// using Bowring's iterative method, which converges in a handful of
// iterations to sub-millimetre precision for any LEO-relevant input.
func GeodeticFromECEF(r Vec3) Geodetic {
	lon := math.Atan2(r.Y, r.X)
	p := math.Hypot(r.X, r.Y)
	// Degenerate polar case.
	if p < 1e-9 {
		lat := math.Pi / 2
		if r.Z < 0 {
			lat = -lat
		}
		b := EarthRadiusKm * (1 - earthFlattening)
		return Geodetic{Lat: lat, Lon: lon, Alt: math.Abs(r.Z) - b}
	}
	lat := math.Atan2(r.Z, p*(1-earthEcc2))
	var n float64
	for i := 0; i < 8; i++ {
		sinLat := math.Sin(lat)
		n = EarthRadiusKm / math.Sqrt(1-earthEcc2*sinLat*sinLat)
		newLat := math.Atan2(r.Z+n*earthEcc2*sinLat, p)
		if math.Abs(newLat-lat) < 1e-12 {
			lat = newLat
			break
		}
		lat = newLat
	}
	alt := p/math.Cos(lat) - n
	return Geodetic{Lat: lat, Lon: wrapPi(lon), Alt: alt}
}

// TEMEToECEF rotates a TEME position vector into the ECEF frame at the given
// time by the Greenwich mean sidereal angle. Polar motion is neglected,
// which is standard for SGP4-class work.
func TEMEToECEF(rTEME Vec3, t time.Time) Vec3 {
	return rotZ(rTEME, GMSTAt(t))
}

// TEMEToECEFVel rotates a TEME velocity into ECEF, accounting for the frame
// rotation (v_ecef = R·v_teme − ω×r_ecef).
func TEMEToECEFVel(rTEME, vTEME Vec3, t time.Time) (rECEF, vECEF Vec3) {
	return TEMEToECEFVelGMST(rTEME, vTEME, GMSTAt(t))
}

// TEMEToECEFVelGMST is TEMEToECEFVel with the sidereal angle supplied by
// the caller. Batch ephemeris construction computes the angle once per
// time step and shares it across every satellite of a constellation; the
// arithmetic is identical to TEMEToECEFVel, so the results are
// bit-identical for the same angle.
func TEMEToECEFVelGMST(rTEME, vTEME Vec3, theta float64) (rECEF, vECEF Vec3) {
	rECEF = rotZ(rTEME, theta)
	vRot := rotZ(vTEME, theta)
	omega := Vec3{0, 0, EarthRotationRate}
	vECEF = vRot.Sub(omega.Cross(rECEF))
	return rECEF, vECEF
}

// rotZ rotates v about the +Z axis by -theta (frame rotation by +theta).
func rotZ(v Vec3, theta float64) Vec3 {
	c, s := math.Cos(theta), math.Sin(theta)
	return Vec3{
		X: c*v.X + s*v.Y,
		Y: -s*v.X + c*v.Y,
		Z: v.Z,
	}
}

// LookAngles describes the geometry between an observer and a satellite.
type LookAngles struct {
	Azimuth   float64 // rad, clockwise from true north
	Elevation float64 // rad above the local horizon
	RangeKm   float64 // slant range, km
	RangeRate float64 // km/s, positive receding (drives Doppler)
}

// AzimuthDeg returns the azimuth in degrees.
func (l LookAngles) AzimuthDeg() float64 { return l.Azimuth * rad2Deg }

// ElevationDeg returns the elevation in degrees.
func (l LookAngles) ElevationDeg() float64 { return l.Elevation * rad2Deg }

// Look computes look angles from an observer to a satellite whose position
// and velocity are given in ECEF km / km/s.
func Look(observer Geodetic, rSatECEF, vSatECEF Vec3) LookAngles {
	return newObserverFrame(observer).look(rSatECEF, vSatECEF)
}

// observerFrame caches the site-dependent terms of Look — the observer's
// ECEF position and the SEZ rotation sines/cosines — so repeated queries
// against one site skip recomputing them. look produces bit-identical
// results to Look because the per-query arithmetic is unchanged.
type observerFrame struct {
	rObs                           Vec3
	sinLat, cosLat, sinLon, cosLon float64
}

func newObserverFrame(observer Geodetic) observerFrame {
	return observerFrame{
		rObs:   observer.ECEF(),
		sinLat: math.Sin(observer.Lat),
		cosLat: math.Cos(observer.Lat),
		sinLon: math.Sin(observer.Lon),
		cosLon: math.Cos(observer.Lon),
	}
}

// look computes look angles from the cached observer frame to a satellite
// whose position and velocity are given in ECEF km / km/s.
func (f observerFrame) look(rSatECEF, vSatECEF Vec3) LookAngles {
	rho := rSatECEF.Sub(f.rObs)

	sinLat, cosLat := f.sinLat, f.cosLat
	sinLon, cosLon := f.sinLon, f.cosLon

	// Rotate the range vector into the local SEZ (south-east-zenith) frame.
	south := sinLat*cosLon*rho.X + sinLat*sinLon*rho.Y - cosLat*rho.Z
	east := -sinLon*rho.X + cosLon*rho.Y
	zenith := cosLat*cosLon*rho.X + cosLat*sinLon*rho.Y + sinLat*rho.Z

	rangeKm := rho.Norm()
	el := math.Asin(zenith / rangeKm)
	az := math.Atan2(east, -south)
	if az < 0 {
		az += twoPi
	}

	// Range rate is the projection of the relative velocity on the line of
	// sight. The observer is fixed in ECEF so its velocity is zero there.
	rate := rho.Dot(vSatECEF) / rangeKm
	return LookAngles{Azimuth: az, Elevation: el, RangeKm: rangeKm, RangeRate: rate}
}

// aboveMask reports whether a satellite at ECEF position rSat sits at or
// above the elevation mask whose sine (and squared sine) the caller
// precomputed. Elevation and mask both lie in [-π/2, π/2] where sine is
// monotone, so el ≥ minEl ⟺ zenith ≥ sin(minEl)·range — a comparison that
// needs only dot products, no sqrt/asin/atan2. This is the pass scan's
// per-step predicate: it visits every (site × satellite × step) and
// dominates mega-constellation searches, so the trigonometry is reserved
// for the handful of instants that build actual passes.
func (f observerFrame) aboveMask(rSat Vec3, sinMinEl, sin2MinEl float64) bool {
	rx := rSat.X - f.rObs.X
	ry := rSat.Y - f.rObs.Y
	rz := rSat.Z - f.rObs.Z
	zenith := f.cosLat*f.cosLon*rx + f.cosLat*f.sinLon*ry + f.sinLat*rz
	range2 := rx*rx + ry*ry + rz*rz
	if sinMinEl >= 0 {
		return zenith >= 0 && zenith*zenith >= sin2MinEl*range2
	}
	return zenith >= 0 || zenith*zenith <= sin2MinEl*range2
}

// elRange returns the elevation and slant range only — the two quantities
// the TCA sweep of a pass needs per sample. The arithmetic is the el/range
// subset of look() in the same order, so results are bit-identical to the
// full computation while skipping the azimuth atan2 and the range-rate
// projection (and, upstream, the velocity interpolation).
func (f observerFrame) elRange(rSat Vec3) (el, rangeKm float64) {
	rho := rSat.Sub(f.rObs)
	zenith := f.cosLat*f.cosLon*rho.X + f.cosLat*f.sinLon*rho.Y + f.sinLat*rho.Z
	rangeKm = rho.Norm()
	el = math.Asin(zenith / rangeKm)
	return el, rangeKm
}

// SlantRange returns the distance (km) from observer to a satellite at the
// given ECEF position without computing the full look-angle set.
func SlantRange(observer Geodetic, rSatECEF Vec3) float64 {
	return rSatECEF.Sub(observer.ECEF()).Norm()
}

// GroundMask is a precomputed elevation-mask visibility test for one ground
// site: the observer frame plus the mask sine, ready for the trig-free
// aboveMask predicate. It exists for callers outside this package (the
// network-graph snapshot builder) that evaluate the same site against many
// satellites per time step and cannot afford per-query trigonometry. A
// GroundMask is immutable and safe for concurrent use.
type GroundMask struct {
	frame               observerFrame
	sinMinEl, sin2MinEl float64
}

// NewGroundMask builds the visibility test for a site with the given
// elevation mask (radians above the local horizon).
func NewGroundMask(site Geodetic, minElevationRad float64) GroundMask {
	s := math.Sin(minElevationRad)
	return GroundMask{frame: newObserverFrame(site), sinMinEl: s, sin2MinEl: s * s}
}

// Above reports whether a satellite at ECEF position rSat sits at or above
// the mask. Same arithmetic as the pass scan's predicate, so the two agree
// bit for bit.
func (m GroundMask) Above(rSat Vec3) bool {
	return m.frame.aboveMask(rSat, m.sinMinEl, m.sin2MinEl)
}

// SiteECEF returns the observer's ECEF position (km).
func (m GroundMask) SiteECEF() Vec3 { return m.frame.rObs }

// HaversineKm returns the great-circle distance between two geodetic points
// on a spherical Earth of mean radius. Used by footprint and coverage
// calculations where ellipsoidal precision is unnecessary.
func HaversineKm(a, b Geodetic) float64 {
	const meanRadius = 6371.0
	dLat := b.Lat - a.Lat
	dLon := b.Lon - a.Lon
	s := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(a.Lat)*math.Cos(b.Lat)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * meanRadius * math.Asin(math.Min(1, math.Sqrt(s)))
}
