package mac

import (
	"testing"
	"testing/quick"
	"time"
)

// TestSurvivorsProperties checks the collision resolver's invariants over
// random transmission batches.
func TestSurvivorsProperties(t *testing.T) {
	base := time.Date(2025, 3, 1, 0, 0, 0, 0, time.UTC)
	m := DefaultCollisionModel()
	prop := func(startsQ []uint8, snrsQ []int8) bool {
		n := len(startsQ)
		if len(snrsQ) < n {
			n = len(snrsQ)
		}
		if n > 12 {
			n = 12
		}
		txs := make([]Transmission, n)
		for i := 0; i < n; i++ {
			s := base.Add(time.Duration(startsQ[i]) * 100 * time.Millisecond)
			txs[i] = Transmission{
				Start: s,
				End:   s.Add(400 * time.Millisecond),
				SNRDB: float64(snrsQ[i]) / 4,
			}
		}
		surv := m.Survivors(txs)

		// Survivors are unique, sorted ascending, in range.
		seen := map[int]bool{}
		prev := -1
		for _, idx := range surv {
			if idx < 0 || idx >= n || seen[idx] || idx <= prev {
				return false
			}
			seen[idx] = true
			prev = idx
		}
		// Any transmission with no overlaps must survive.
		for i, tx := range txs {
			contested := false
			for j, other := range txs {
				if i != j && tx.Overlaps(other) {
					contested = true
					break
				}
			}
			if !contested && !seen[i] {
				return false
			}
		}
		// Determinism.
		again := m.Survivors(txs)
		if len(again) != len(surv) {
			return false
		}
		for i := range surv {
			if surv[i] != again[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestSurvivorsMonotoneInSNR: raising a frame's SNR can only help it.
func TestSurvivorsMonotoneInSNR(t *testing.T) {
	base := time.Date(2025, 3, 1, 0, 0, 0, 0, time.UTC)
	m := DefaultCollisionModel()
	mk := func(snr0 float64) []Transmission {
		return []Transmission{
			{Start: base, End: base.Add(time.Second), SNRDB: snr0},
			{Start: base.Add(500 * time.Millisecond), End: base.Add(1500 * time.Millisecond), SNRDB: -12},
		}
	}
	contains := func(s []int, v int) bool {
		for _, x := range s {
			if x == v {
				return true
			}
		}
		return false
	}
	prop := func(lowQ, bumpQ uint8) bool {
		low := -30 + float64(lowQ)/8
		high := low + float64(bumpQ)/8
		lowSurvives := contains(m.Survivors(mk(low)), 0)
		highSurvives := contains(m.Survivors(mk(high)), 0)
		// If the weaker version survived, the stronger one must too.
		return !lowSurvives || highSurvives
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
