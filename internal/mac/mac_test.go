package mac

import (
	"testing"
	"time"
)

var t0 = time.Date(2025, 3, 1, 0, 0, 0, 0, time.UTC)

func tx(startSec, durSec float64, snr float64) Transmission {
	return Transmission{
		Start: t0.Add(time.Duration(startSec * float64(time.Second))),
		End:   t0.Add(time.Duration((startSec + durSec) * float64(time.Second))),
		SNRDB: snr,
	}
}

func TestFrameTypeString(t *testing.T) {
	if FrameBeacon.String() != "BEACON" || FrameDataUp.String() != "DATA" || FrameAck.String() != "ACK" {
		t.Error("frame labels")
	}
	if FrameType(7).String() != "FrameType(7)" {
		t.Error("unknown frame label")
	}
}

func TestRetxPolicy(t *testing.T) {
	p := DefaultRetxPolicy()
	if p.MaxRetx != 5 || p.MaxAttempts() != 6 {
		t.Errorf("default policy %+v", p)
	}
	if !p.ShouldRetry(0) || !p.ShouldRetry(4) || p.ShouldRetry(5) {
		t.Error("ShouldRetry boundaries wrong")
	}
	n := NoRetxPolicy()
	if n.ShouldRetry(0) || n.MaxAttempts() != 1 {
		t.Error("no-retx policy must allow exactly one attempt")
	}
}

func TestOverlaps(t *testing.T) {
	a := tx(0, 2, 0)
	cases := []struct {
		b    Transmission
		want bool
	}{
		{tx(1, 2, 0), true},    // partial overlap
		{tx(0.5, 1, 0), true},  // contained
		{tx(2, 1, 0), false},   // touching end-to-start
		{tx(3, 1, 0), false},   // disjoint
		{tx(-1, 1, 0), false},  // touching start
		{tx(-1, 1.5, 0), true}, // overlap at start
	}
	for i, c := range cases {
		if got := a.Overlaps(c.b); got != c.want {
			t.Errorf("case %d: Overlaps = %v, want %v", i, got, c.want)
		}
		if got := c.b.Overlaps(a); got != c.want {
			t.Errorf("case %d: Overlaps not symmetric", i)
		}
	}
}

func TestSurvivorsNoOverlap(t *testing.T) {
	m := DefaultCollisionModel()
	got := m.Survivors([]Transmission{tx(0, 1, -10), tx(2, 1, -18), tx(4, 1, -5)})
	if len(got) != 3 {
		t.Errorf("non-overlapping survivors = %v", got)
	}
}

func TestSurvivorsMutualKill(t *testing.T) {
	m := DefaultCollisionModel()
	// Two equal-SNR overlapping frames: both die.
	got := m.Survivors([]Transmission{tx(0, 2, -10), tx(1, 2, -10)})
	if len(got) != 0 {
		t.Errorf("equal-SNR collision survivors = %v", got)
	}
}

func TestSurvivorsCapture(t *testing.T) {
	m := DefaultCollisionModel()
	// One frame 10 dB stronger than its overlap: it captures.
	got := m.Survivors([]Transmission{tx(0, 2, -5), tx(1, 2, -15)})
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("capture survivors = %v, want [0]", got)
	}
	// Just below the 6 dB threshold: nobody survives.
	got = m.Survivors([]Transmission{tx(0, 2, -10), tx(1, 2, -15)})
	if len(got) != 0 {
		t.Errorf("sub-threshold capture survivors = %v", got)
	}
}

func TestSurvivorsCaptureDisabled(t *testing.T) {
	m := CollisionModel{CaptureThresholdDB: 6, CaptureEnabled: false}
	got := m.Survivors([]Transmission{tx(0, 2, 10), tx(1, 2, -40)})
	if len(got) != 0 {
		t.Errorf("capture-disabled survivors = %v", got)
	}
	// Non-overlapping still fine.
	got = m.Survivors([]Transmission{tx(0, 1, 10), tx(5, 1, -40)})
	if len(got) != 2 {
		t.Errorf("capture-disabled non-overlap survivors = %v", got)
	}
}

func TestSurvivorsThreeWay(t *testing.T) {
	m := DefaultCollisionModel()
	// Strongest beats both others by >6 dB.
	got := m.Survivors([]Transmission{tx(0, 3, 0), tx(1, 3, -10), tx(2, 3, -12)})
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("three-way survivors = %v", got)
	}
	// Chain: A overlaps B, B overlaps C, A not C. A and C strong, B weak:
	// A and C capture over B.
	got = m.Survivors([]Transmission{tx(0, 1.5, 0), tx(1, 1.5, -10), tx(2, 1.5, 0)})
	if len(got) != 2 {
		t.Errorf("chain survivors = %v, want A and C", got)
	}
}

func TestSurvivorsEmpty(t *testing.T) {
	m := DefaultCollisionModel()
	if got := m.Survivors(nil); got != nil {
		t.Errorf("empty survivors = %v", got)
	}
}

func TestStatsRecord(t *testing.T) {
	var s Stats
	s.Record(TxOutcome{Attempt: 0, UplinkOK: true, AckOK: true, Completed: true})
	s.Record(TxOutcome{Attempt: 0, UplinkOK: true, AckOK: false, Unnecessary: true})
	s.Record(TxOutcome{Attempt: 1, UplinkOK: false, Collided: true})
	if s.Attempts != 3 || s.UplinkSuccesses != 2 || s.AckLosses != 1 ||
		s.Collisions != 1 || s.UnnecessaryRetx != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}
