// Package mac implements the beacon-gated medium access protocol satellite
// IoT systems use on Direct-to-Satellite links (§F of the paper): the
// satellite gateway periodically broadcasts beacons; a node with pending
// data that successfully receives a beacon may transmit; the satellite
// acknowledges successful uplinks; un-ACKed packets are retransmitted at
// subsequent beacons up to a configurable budget. The package also models
// uplink collisions with an SNR capture effect.
package mac

import (
	"fmt"
	"time"
)

// FrameType labels a DtS frame.
type FrameType int

// Frame types.
const (
	FrameBeacon FrameType = iota
	FrameDataUp
	FrameAck
)

// String implements fmt.Stringer.
func (t FrameType) String() string {
	switch t {
	case FrameBeacon:
		return "BEACON"
	case FrameDataUp:
		return "DATA"
	case FrameAck:
		return "ACK"
	default:
		return fmt.Sprintf("FrameType(%d)", int(t))
	}
}

// Frame is one over-the-air DtS frame.
type Frame struct {
	Type         FrameType
	SatNoradID   int
	NodeID       string
	SeqID        uint64
	PayloadBytes int
	Attempt      int // 0 = first transmission
}

// RetxPolicy is the node-side retransmission policy: transmit, await ACK
// within AckTimeout, and retry at later beacons while attempts remain.
type RetxPolicy struct {
	// MaxRetx is the maximum number of retransmissions after the first
	// attempt. The paper evaluates 0 (disabled) and 5.
	MaxRetx int
	// AckTimeout is how long the node waits for an ACK after its uplink
	// completes before scheduling a retry.
	AckTimeout time.Duration
}

// DefaultRetxPolicy returns the Tianqi configuration the paper enables:
// at most five DtS retransmissions.
func DefaultRetxPolicy() RetxPolicy {
	return RetxPolicy{MaxRetx: 5, AckTimeout: 3 * time.Second}
}

// NoRetxPolicy returns the paper's default-off configuration.
func NoRetxPolicy() RetxPolicy {
	return RetxPolicy{MaxRetx: 0, AckTimeout: 3 * time.Second}
}

// ShouldRetry reports whether a packet on the given attempt (0-based) may
// be transmitted again.
func (p RetxPolicy) ShouldRetry(attempt int) bool {
	return attempt < p.MaxRetx
}

// MaxAttempts returns the total number of transmissions allowed.
func (p RetxPolicy) MaxAttempts() int { return p.MaxRetx + 1 }

// Transmission is an in-flight uplink used by the collision model.
type Transmission struct {
	Frame Frame
	Start time.Time
	End   time.Time
	SNRDB float64
}

// Overlaps reports whether two transmissions overlap in time.
func (a Transmission) Overlaps(b Transmission) bool {
	return a.Start.Before(b.End) && b.Start.Before(a.End)
}

// CollisionModel resolves concurrent uplinks at one satellite receiver.
type CollisionModel struct {
	// CaptureThresholdDB: if one frame's SNR exceeds every overlapping
	// frame's by at least this margin it survives the collision (LoRa's
	// well-documented capture effect, ~6 dB co-SF).
	CaptureThresholdDB float64
	// CaptureEnabled disables capture entirely when false (ablation).
	CaptureEnabled bool
}

// DefaultCollisionModel returns the standard co-SF LoRa capture behaviour.
func DefaultCollisionModel() CollisionModel {
	return CollisionModel{CaptureThresholdDB: 6.0, CaptureEnabled: true}
}

// Survivors returns the indices of transmissions that survive mutual
// interference within the given batch. Non-overlapping transmissions
// always survive; overlapping ones all die unless capture applies.
func (m CollisionModel) Survivors(txs []Transmission) []int {
	if len(txs) == 0 {
		return nil
	}
	survivors := make([]int, 0, len(txs))
	for i, tx := range txs {
		contested := false
		captured := true
		for j, other := range txs {
			if i == j || !tx.Overlaps(other) {
				continue
			}
			contested = true
			if tx.SNRDB < other.SNRDB+m.CaptureThresholdDB {
				captured = false
			}
		}
		if !contested {
			survivors = append(survivors, i)
			continue
		}
		if m.CaptureEnabled && captured {
			survivors = append(survivors, i)
		}
	}
	return survivors
}

// TxOutcome describes what happened to one uplink attempt end-to-end.
type TxOutcome struct {
	Attempt     int
	UplinkOK    bool // satellite decoded the data frame
	AckOK       bool // node decoded the ACK
	Collided    bool
	Completed   bool // node considers the packet delivered (ACK received)
	Unnecessary bool // uplink succeeded but ACK loss triggered a retry
}

// Stats aggregates MAC-level counters across a campaign.
type Stats struct {
	Attempts         int
	UplinkSuccesses  int
	AckLosses        int
	Collisions       int
	UnnecessaryRetx  int
	PacketsDelivered int
	PacketsAbandoned int
}

// Record folds one outcome into the counters.
func (s *Stats) Record(o TxOutcome) {
	s.Attempts++
	if o.UplinkOK {
		s.UplinkSuccesses++
	}
	if o.Collided {
		s.Collisions++
	}
	if o.UplinkOK && !o.AckOK {
		s.AckLosses++
	}
	if o.Unnecessary {
		s.UnnecessaryRetx++
	}
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("attempts=%d uplinkOK=%d ackLoss=%d collisions=%d unnecessaryRetx=%d delivered=%d abandoned=%d",
		s.Attempts, s.UplinkSuccesses, s.AckLosses, s.Collisions, s.UnnecessaryRetx, s.PacketsDelivered, s.PacketsAbandoned)
}
