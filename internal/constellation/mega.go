package constellation

import (
	"fmt"
	"math"
	"time"

	"github.com/sinet-io/sinet/internal/orbit"
)

// ShellSpec describes one Walker-delta shell of a synthetic
// mega-constellation: Count satellites spread over Planes equally spaced
// RAAN planes at a common altitude and inclination.
type ShellSpec struct {
	Name    string
	Count   int
	AltKm   float64
	InclDeg float64
	Planes  int
}

// megaShells are the reference shells of a Starlink-class Gen1 deployment
// (counts and geometry rounded from public filings). Mega scales the
// per-shell counts proportionally to the requested fleet size, so a
// 1k-satellite fleet keeps the same shell mix as a 10k one.
var megaShells = []ShellSpec{
	{Name: "MEGA-A", Count: 1584, AltKm: 550, InclDeg: 53.0, Planes: 72},
	{Name: "MEGA-B", Count: 1584, AltKm: 540, InclDeg: 53.2, Planes: 72},
	{Name: "MEGA-C", Count: 720, AltKm: 570, InclDeg: 70.0, Planes: 36},
	{Name: "MEGA-D", Count: 348, AltKm: 560, InclDeg: 97.6, Planes: 6},
	{Name: "MEGA-E", Count: 172, AltKm: 560, InclDeg: 97.6, Planes: 4},
}

// megaFirstID anchors mega-constellation catalog numbers well clear of the
// Table 3 fleets (91000–94999).
const megaFirstID = 80000

// Mega synthesizes an n-satellite Starlink-class LEO mega-constellation at
// the given epoch: Walker-delta shells at 540–570 km whose per-shell counts
// scale proportionally with n. It exists to exercise the ephemeris and
// pass-search hot paths at 1k–10k satellites — far beyond the paper's
// 39-satellite catalog — while staying deterministic: the same (epoch, n)
// always yields the same element sets.
func Mega(epoch time.Time, n int) Constellation {
	if n < 1 {
		n = 1
	}
	ref := 0
	for _, s := range megaShells {
		ref += s.Count
	}
	sats := make([]orbit.Elements, 0, n)
	firstID := megaFirstID
	remaining := n
	for si, shell := range megaShells {
		count := shell.Count * n / ref
		if si == len(megaShells)-1 {
			count = remaining // last shell absorbs rounding residue
		}
		if count > remaining {
			count = remaining
		}
		if count <= 0 {
			continue
		}
		planes := shell.Planes
		if planes > count {
			planes = count
		}
		sats = append(sats, walkerShell(shell, count, planes, epoch, firstID)...)
		firstID += count
		remaining -= count
	}
	return Constellation{
		Name:               fmt.Sprintf("Mega[%d]", n),
		Operator:           "synthetic",
		Region:             "global",
		FreqMHz:            401.5,
		BeaconInterval:     30 * time.Second,
		BeaconPayloadBytes: 24,
		TxPowerDBm:         24,
		Sats:               sats,
	}
}

// walkerShell synthesizes one Walker-delta shell: count satellites over
// planes equally spaced RAAN planes, slots evenly phased in mean anomaly
// within each plane, with the standard inter-plane phasing offset
// (F=1 relative spacing) so adjacent planes interleave rather than march
// in lockstep.
func walkerShell(s ShellSpec, count, planes int, epoch time.Time, firstID int) []orbit.Elements {
	els := make([]orbit.Elements, 0, count)
	perPlane := (count + planes - 1) / planes
	incl := s.InclDeg * math.Pi / 180
	mm := orbit.MeanMotionFromAltitude(s.AltKm)
	for i := 0; i < count; i++ {
		plane := i / perPlane
		slot := i % perPlane
		raan := 2 * math.Pi * float64(plane) / float64(planes)
		ma := 2*math.Pi*float64(slot)/float64(perPlane) +
			2*math.Pi*float64(plane)/float64(planes*perPlane)
		els = append(els, orbit.Elements{
			NoradID:      firstID + i,
			Name:         fmt.Sprintf("%s-%04d", s.Name, i+1),
			Epoch:        epoch,
			Inclination:  incl,
			RAAN:         math.Mod(raan, 2*math.Pi),
			Eccentricity: 0.0008,
			ArgPerigee:   math.Mod(1.2+raan/3, 2*math.Pi),
			MeanAnomaly:  math.Mod(ma, 2*math.Pi),
			MeanMotion:   mm,
			BStar:        3e-5,
		})
	}
	return els
}
