// Package constellation defines the four LEO IoT constellations the paper
// measures (Table 3) as synthetic element-set catalogs: Tianqi (China),
// FOSSA (EU), PICO (US) and CSTP (Russia). Orbit altitudes, inclinations,
// plane counts and DtS frequencies match the published table; phasing
// follows a Walker-style even distribution, which reproduces the statistics
// of pass arrival (the measurement-relevant property) without the authors'
// exact TLEs.
package constellation

import (
	"fmt"
	"math"
	"time"

	"github.com/sinet-io/sinet/internal/orbit"
)

// Constellation describes one satellite IoT operator's fleet and DtS
// beacon configuration.
type Constellation struct {
	Name     string
	Operator string
	Region   string

	// FreqMHz is the DtS carrier (Table 3).
	FreqMHz float64

	// BeaconInterval is the period between gateway beacons. TinyGS-class
	// satellites beacon every few tens of seconds.
	BeaconInterval time.Duration

	// BeaconPayloadBytes is the beacon frame size.
	BeaconPayloadBytes int

	// TxPowerDBm is the satellite downlink transmit power.
	TxPowerDBm float64

	Sats []orbit.Elements
}

// Size returns the number of satellites.
func (c Constellation) Size() int { return len(c.Sats) }

// String implements fmt.Stringer.
func (c Constellation) String() string {
	return fmt.Sprintf("%s (%d sats, %.2f MHz)", c.Name, c.Size(), c.FreqMHz)
}

// Propagators initializes one SGP4 propagator per satellite.
func (c Constellation) Propagators() ([]*orbit.Propagator, error) {
	props := make([]*orbit.Propagator, 0, len(c.Sats))
	for _, e := range c.Sats {
		p, err := orbit.NewPropagator(e)
		if err != nil {
			return nil, fmt.Errorf("constellation %s sat %s: %w", c.Name, e.Name, err)
		}
		props = append(props, p)
	}
	return props, nil
}

// orbitGroup is one shell of a constellation: n satellites spread between
// altitude bounds at a common inclination.
type orbitGroup struct {
	n           int
	altLoKm     float64
	altHiKm     float64
	inclDeg     float64
	planes      int // number of RAAN planes the group occupies
	raanOffset  float64
	phaseOffset float64
}

// buildGroup synthesizes element sets for one shell. Satellites are spread
// over `planes` equally spaced RAAN planes with in-plane mean-anomaly
// phasing, and altitudes interpolate linearly across the group — matching
// how real fleets from staggered launches appear in the TLE catalog.
func buildGroup(g orbitGroup, epoch time.Time, namePrefix string, firstID int) []orbit.Elements {
	els := make([]orbit.Elements, 0, g.n)
	if g.planes <= 0 {
		g.planes = g.n
	}
	for i := 0; i < g.n; i++ {
		frac := 0.0
		if g.n > 1 {
			frac = float64(i) / float64(g.n-1)
		}
		alt := g.altLoKm + (g.altHiKm-g.altLoKm)*frac
		plane := i % g.planes
		slot := i / g.planes
		raan := g.raanOffset + 2*math.Pi*float64(plane)/float64(g.planes)
		// In-plane phasing plus a small inter-plane stagger.
		ma := g.phaseOffset +
			2*math.Pi*float64(slot)/math.Max(1, float64((g.n+g.planes-1)/g.planes)) +
			2*math.Pi*float64(plane)/float64(g.planes)/3
		els = append(els, orbit.Elements{
			NoradID:      firstID + i,
			Name:         fmt.Sprintf("%s-%02d", namePrefix, i+1),
			Epoch:        epoch,
			Inclination:  g.inclDeg * math.Pi / 180,
			RAAN:         math.Mod(raan, 2*math.Pi),
			Eccentricity: 0.0012,
			ArgPerigee:   math.Mod(0.6+raan/2, 2*math.Pi),
			MeanAnomaly:  math.Mod(ma, 2*math.Pi),
			MeanMotion:   orbit.MeanMotionFromAltitude(alt),
			BStar:        2e-5,
		})
	}
	return els
}

// GroupSpec describes one orbital shell of a constellation as Table 3
// lists it.
type GroupSpec struct {
	Count   int
	AltLoKm float64
	AltHiKm float64
	InclDeg float64
}

// Spec is the published description of one constellation (Table 3).
type Spec struct {
	Name    string
	Region  string
	FreqMHz float64
	Groups  []GroupSpec
}

// Specs returns the Table 3 rows for the four measured constellations.
func Specs() []Spec {
	return []Spec{
		{Name: "Tianqi", Region: "China", FreqMHz: 400.45, Groups: []GroupSpec{
			{Count: 16, AltLoKm: 815.7, AltHiKm: 897.5, InclDeg: 49.97},
			{Count: 4, AltLoKm: 544.0, AltHiKm: 556.9, InclDeg: 35.00},
			{Count: 2, AltLoKm: 441.9, AltHiKm: 493.0, InclDeg: 97.61},
		}},
		{Name: "FOSSA", Region: "EU", FreqMHz: 401.7, Groups: []GroupSpec{
			{Count: 3, AltLoKm: 508.7, AltHiKm: 512.0, InclDeg: 97.36},
		}},
		{Name: "PICO", Region: "US", FreqMHz: 436.26, Groups: []GroupSpec{
			{Count: 9, AltLoKm: 507.9, AltHiKm: 522.1, InclDeg: 97.72},
		}},
		{Name: "CSTP", Region: "Russia", FreqMHz: 437.985, Groups: []GroupSpec{
			{Count: 5, AltLoKm: 468.3, AltHiKm: 523.7, InclDeg: 97.45},
		}},
	}
}

// Tianqi returns the full 22-satellite Tianqi constellation per Table 3:
// 16 satellites at 815.7-897.5 km / 49.97°, 4 at 544.0-556.9 km / 35.00°,
// and 2 at 441.9-493.0 km / 97.61°, all beaconing on 400.45 MHz.
func Tianqi(epoch time.Time) Constellation {
	sats := buildGroup(orbitGroup{n: 16, altLoKm: 815.7, altHiKm: 897.5, inclDeg: 49.97, planes: 8}, epoch, "TIANQI-A", 91000)
	sats = append(sats, buildGroup(orbitGroup{n: 4, altLoKm: 544.0, altHiKm: 556.9, inclDeg: 35.00, planes: 2, raanOffset: 0.7}, epoch, "TIANQI-B", 91100)...)
	sats = append(sats, buildGroup(orbitGroup{n: 2, altLoKm: 441.9, altHiKm: 493.0, inclDeg: 97.61, planes: 2, raanOffset: 1.9}, epoch, "TIANQI-C", 91200)...)
	return Constellation{
		Name:               "Tianqi",
		Operator:           "Guodian Gaoke",
		Region:             "China",
		FreqMHz:            400.45,
		BeaconInterval:     20 * time.Second,
		BeaconPayloadBytes: 24,
		TxPowerDBm:         22,
		Sats:               sats,
	}
}

// TianqiSubset returns the first n satellites of the Tianqi fleet, used for
// the Figure 3a experiment where availability improves from 13.4 h to
// 19.1 h as the active fleet grows from 12 to 22 satellites.
func TianqiSubset(epoch time.Time, n int) Constellation {
	c := Tianqi(epoch)
	if n < 0 {
		n = 0
	}
	if n > len(c.Sats) {
		n = len(c.Sats)
	}
	c.Sats = c.Sats[:n]
	c.Name = fmt.Sprintf("Tianqi[%d]", n)
	return c
}

// FOSSA returns the 3-satellite FOSSA fleet at ~510 km / 97.36° on
// 401.7 MHz.
func FOSSA(epoch time.Time) Constellation {
	return Constellation{
		Name:               "FOSSA",
		Operator:           "FOSSA Systems",
		Region:             "EU",
		FreqMHz:            401.7,
		BeaconInterval:     30 * time.Second,
		BeaconPayloadBytes: 20,
		TxPowerDBm:         21,
		Sats:               buildGroup(orbitGroup{n: 3, altLoKm: 508.7, altHiKm: 512.0, inclDeg: 97.36, planes: 3, raanOffset: 0.3}, epoch, "FOSSASAT", 92000),
	}
}

// PICO returns the 9-satellite PICO fleet at ~515 km / 97.72° on
// 436.26 MHz.
func PICO(epoch time.Time) Constellation {
	return Constellation{
		Name:               "PICO",
		Operator:           "PICO",
		Region:             "US",
		FreqMHz:            436.26,
		BeaconInterval:     25 * time.Second,
		BeaconPayloadBytes: 20,
		TxPowerDBm:         21,
		Sats:               buildGroup(orbitGroup{n: 9, altLoKm: 507.9, altHiKm: 522.1, inclDeg: 97.72, planes: 5, raanOffset: 1.1}, epoch, "PICO", 93000),
	}
}

// CSTP returns the 5-satellite CSTP fleet at ~495 km / 97.45° on
// 437.985 MHz.
func CSTP(epoch time.Time) Constellation {
	return Constellation{
		Name:               "CSTP",
		Operator:           "CSTP",
		Region:             "Russia",
		FreqMHz:            437.985,
		BeaconInterval:     30 * time.Second,
		BeaconPayloadBytes: 18,
		TxPowerDBm:         20,
		Sats:               buildGroup(orbitGroup{n: 5, altLoKm: 468.3, altHiKm: 523.7, inclDeg: 97.45, planes: 5, raanOffset: 2.3}, epoch, "CSTP", 94000),
	}
}

// All returns the four measured constellations in the paper's order.
func All(epoch time.Time) []Constellation {
	return []Constellation{Tianqi(epoch), FOSSA(epoch), PICO(epoch), CSTP(epoch)}
}

// FootprintKm2 returns the instantaneous coverage area of a satellite at
// the given altitude as the spherical cap bounded by the given minimum
// elevation angle: area = 2πR²(1−cos λ) with Earth-central angle
// λ = arccos(R·cos ε/(R+h)) − ε.
//
// Note on Table 3: the paper's footprint column is internally inconsistent
// — the Tianqi high-shell value (3.27×10⁷ km²) matches a 0°-elevation
// horizon cap, while the FOSSA/PICO/CSTP values (≈1.3×10⁷ km²) match a
// ≈5° minimum-elevation cap. The reproduction therefore reports both.
func FootprintKm2(altKm, minElevationRad float64) float64 {
	const r = 6371.0
	if altKm <= 0 {
		return 0
	}
	eps := minElevationRad
	if eps < 0 {
		eps = 0
	}
	lambda := math.Acos(r*math.Cos(eps)/(r+altKm)) - eps
	if lambda <= 0 {
		return 0
	}
	return 2 * math.Pi * r * r * (1 - math.Cos(lambda))
}

// MeanAltitudeKm returns the mean altitude of the constellation's
// satellites derived from their mean motions.
func (c Constellation) MeanAltitudeKm() float64 {
	if len(c.Sats) == 0 {
		return 0
	}
	var sum float64
	for _, s := range c.Sats {
		sum += orbit.AltitudeFromMeanMotion(s.MeanMotion)
	}
	return sum / float64(len(c.Sats))
}
