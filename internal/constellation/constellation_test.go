package constellation

import (
	"math"
	"testing"
	"time"

	"github.com/sinet-io/sinet/internal/orbit"
)

var epoch = time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC)

func TestTable3Shape(t *testing.T) {
	cases := []struct {
		c       Constellation
		size    int
		freqMHz float64
		region  string
	}{
		{Tianqi(epoch), 22, 400.45, "China"},
		{FOSSA(epoch), 3, 401.7, "EU"},
		{PICO(epoch), 9, 436.26, "US"},
		{CSTP(epoch), 5, 437.985, "Russia"},
	}
	for _, c := range cases {
		if c.c.Size() != c.size {
			t.Errorf("%s size = %d, want %d", c.c.Name, c.c.Size(), c.size)
		}
		if c.c.FreqMHz != c.freqMHz {
			t.Errorf("%s freq = %v, want %v", c.c.Name, c.c.FreqMHz, c.freqMHz)
		}
		if c.c.Region != c.region {
			t.Errorf("%s region = %q", c.c.Name, c.c.Region)
		}
		// All DtS frequencies are in the measured 400-450 MHz band.
		if c.c.FreqMHz < 400 || c.c.FreqMHz > 450 {
			t.Errorf("%s freq outside 400-450 MHz", c.c.Name)
		}
	}
}

func TestTianqiOrbitGroups(t *testing.T) {
	c := Tianqi(epoch)
	groupCount := map[string]int{}
	for _, s := range c.Sats {
		alt := orbit.AltitudeFromMeanMotion(s.MeanMotion)
		incl := s.Inclination * 180 / math.Pi
		switch {
		case alt >= 815 && alt <= 898 && math.Abs(incl-49.97) < 0.01:
			groupCount["A"]++
		case alt >= 543 && alt <= 558 && math.Abs(incl-35.0) < 0.01:
			groupCount["B"]++
		case alt >= 441 && alt <= 494 && math.Abs(incl-97.61) < 0.01:
			groupCount["C"]++
		default:
			t.Errorf("sat %s at %.1f km / %.2f° fits no Table 3 group", s.Name, alt, incl)
		}
	}
	if groupCount["A"] != 16 || groupCount["B"] != 4 || groupCount["C"] != 2 {
		t.Errorf("group sizes = %v, want A=16 B=4 C=2", groupCount)
	}
}

func TestAllSatsPropagate(t *testing.T) {
	for _, c := range All(epoch) {
		props, err := c.Propagators()
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if len(props) != c.Size() {
			t.Fatalf("%s: %d propagators for %d sats", c.Name, len(props), c.Size())
		}
		for i, p := range props {
			s, err := p.PropagateMinutes(37)
			if err != nil {
				t.Errorf("%s sat %d: %v", c.Name, i, err)
				continue
			}
			alt := s.Position.Norm() - 6378.135
			if alt < 400 || alt > 950 {
				t.Errorf("%s sat %d altitude %.1f km outside LEO band", c.Name, i, alt)
			}
		}
	}
}

func TestNoradIDsUnique(t *testing.T) {
	seen := map[int]string{}
	for _, c := range All(epoch) {
		for _, s := range c.Sats {
			if prev, dup := seen[s.NoradID]; dup {
				t.Errorf("NORAD %d reused by %s and %s", s.NoradID, prev, s.Name)
			}
			seen[s.NoradID] = s.Name
		}
	}
}

func TestSatellitesPhased(t *testing.T) {
	// Satellites of one group must not be stacked at identical RAAN+MA
	// (they would rise and set together, collapsing coverage).
	c := PICO(epoch)
	type key struct{ raan, ma int }
	seen := map[key]bool{}
	for _, s := range c.Sats {
		k := key{int(s.RAAN * 100), int(s.MeanAnomaly * 100)}
		if seen[k] {
			t.Errorf("two PICO sats share phasing %v", k)
		}
		seen[k] = true
	}
}

func TestTianqiSubset(t *testing.T) {
	c := TianqiSubset(epoch, 12)
	if c.Size() != 12 {
		t.Errorf("subset size = %d", c.Size())
	}
	full := Tianqi(epoch)
	for i := range c.Sats {
		if c.Sats[i].NoradID != full.Sats[i].NoradID {
			t.Error("subset is not a prefix of the full fleet")
		}
	}
	if TianqiSubset(epoch, -3).Size() != 0 {
		t.Error("negative subset not clamped")
	}
	if TianqiSubset(epoch, 99).Size() != 22 {
		t.Error("oversized subset not clamped")
	}
}

func TestFootprintMatchesTable3(t *testing.T) {
	// Table 3's footprint column mixes conventions (see FootprintKm2 doc):
	// the Tianqi high shell matches a 0° horizon cap, the 500 km-class
	// fleets match a ≈5° minimum-elevation cap.
	deg5 := 5 * math.Pi / 180
	cases := []struct {
		altKm  float64
		minEl  float64
		want   float64
		relTol float64
	}{
		{897.5, 0, 3.27e7, 0.06},
		{510.4, deg5, 1.27e7, 0.08},
		{515.0, deg5, 1.31e7, 0.08},
		{496.0, deg5, 1.24e7, 0.08},
	}
	for _, c := range cases {
		got := FootprintKm2(c.altKm, c.minEl)
		if rel := math.Abs(got-c.want) / c.want; rel > c.relTol {
			t.Errorf("footprint(%v km, %.0f°) = %.3g km², want ≈%.3g (off %.1f%%)",
				c.altKm, c.minEl*180/math.Pi, got, c.want, rel*100)
		}
	}
	if FootprintKm2(0, 0) != 0 || FootprintKm2(-10, 0) != 0 {
		t.Error("degenerate altitudes must return 0")
	}
}

func TestFootprintMonotone(t *testing.T) {
	// Increasing altitude grows the footprint; increasing the elevation
	// mask shrinks it.
	prev := 0.0
	for alt := 100.0; alt <= 2000; alt += 100 {
		f := FootprintKm2(alt, 0)
		if f <= prev {
			t.Fatalf("footprint not increasing at %v km", alt)
		}
		prev = f
	}
	for el := 0.0; el < 0.5; el += 0.05 {
		if FootprintKm2(500, el) <= FootprintKm2(500, el+0.05) {
			t.Fatalf("footprint not shrinking with mask at %v rad", el)
		}
	}
}

func TestMeanAltitude(t *testing.T) {
	c := FOSSA(epoch)
	m := c.MeanAltitudeKm()
	if m < 508 || m > 513 {
		t.Errorf("FOSSA mean altitude = %.1f, want ≈510", m)
	}
	if (Constellation{}).MeanAltitudeKm() != 0 {
		t.Error("empty constellation mean altitude must be 0")
	}
}

func TestBeaconConfigsSane(t *testing.T) {
	for _, c := range All(epoch) {
		if c.BeaconInterval < 5*time.Second || c.BeaconInterval > 5*time.Minute {
			t.Errorf("%s beacon interval %v implausible", c.Name, c.BeaconInterval)
		}
		if c.BeaconPayloadBytes <= 0 || c.BeaconPayloadBytes > 255 {
			t.Errorf("%s beacon payload %d", c.Name, c.BeaconPayloadBytes)
		}
		if c.TxPowerDBm < 10 || c.TxPowerDBm > 33 {
			t.Errorf("%s tx power %v dBm implausible for a nano-satellite", c.Name, c.TxPowerDBm)
		}
	}
}
