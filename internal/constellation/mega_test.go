package constellation

import (
	"reflect"
	"testing"
	"time"
)

var megaEpoch = time.Date(2025, 3, 1, 0, 0, 0, 0, time.UTC)

func TestMegaExactSizeAndUniqueIDs(t *testing.T) {
	for _, n := range []int{1, 39, 100, 1000, 4408} {
		c := Mega(megaEpoch, n)
		if c.Size() != n {
			t.Fatalf("Mega(%d) produced %d satellites", n, c.Size())
		}
		seen := make(map[int]bool, n)
		for _, s := range c.Sats {
			if seen[s.NoradID] {
				t.Fatalf("Mega(%d): duplicate NoradID %d", n, s.NoradID)
			}
			if s.NoradID < megaFirstID || s.NoradID >= 91000 {
				t.Fatalf("Mega(%d): NoradID %d collides with the Table 3 catalog range", n, s.NoradID)
			}
			seen[s.NoradID] = true
		}
	}
}

func TestMegaPropagatesAndStaysInShellBand(t *testing.T) {
	c := Mega(megaEpoch, 200)
	props, err := c.Propagators()
	if err != nil {
		t.Fatalf("Propagators: %v", err)
	}
	for i, p := range props {
		gd, err := p.Subpoint(megaEpoch.Add(45 * time.Minute))
		if err != nil {
			t.Fatalf("sat %d: %v", i, err)
		}
		if gd.Alt < 450 || gd.Alt > 650 {
			t.Fatalf("sat %d altitude %.1f km outside the 540-570 km shell band", i, gd.Alt)
		}
	}
	if alt := c.MeanAltitudeKm(); alt < 530 || alt > 580 {
		t.Fatalf("mean altitude %.1f km outside shell band", alt)
	}
}

func TestMegaDeterministic(t *testing.T) {
	a := Mega(megaEpoch, 500)
	b := Mega(megaEpoch, 500)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Mega is not deterministic for identical (epoch, n)")
	}
}
