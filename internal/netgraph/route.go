package netgraph

import (
	"container/heap"
	"math"
	"time"
)

// Router answers shortest-path queries over single snapshots. It keeps the
// last computed shortest-path tree and, when consecutive queries hit
// snapshots with an identical edge set (same fingerprint) and the same
// source, reuses the tree and merely refreshes the delays along it — an
// O(V·deg) walk instead of a full Dijkstra — the incremental-recompute
// idiom of periodic topology updates: routes change only when the
// topology does. A Router is not safe for concurrent use; create one per
// worker.
type Router struct {
	g *Graph

	// cache identity
	haveTree bool
	src      int
	fp       uint64

	dist   []float64 // seconds from src, +Inf unreachable
	parent []int32   // predecessor in the tree, -1 for src/unreachable
	order  []int32   // settle order of the last full Dijkstra

	// scratch
	pq      minHeap
	settled []bool
}

// NewRouter creates a router over g.
func NewRouter(g *Graph) *Router {
	n := g.Nodes()
	return &Router{
		g:       g,
		dist:    make([]float64, n),
		parent:  make([]int32, n),
		order:   make([]int32, 0, n),
		settled: make([]bool, n),
	}
}

// Routes computes single-source shortest delays from src over snapshot k.
// The returned slices are owned by the router and valid until the next
// call: dist[v] is the delay in seconds (+Inf when unreachable), parent[v]
// the predecessor on the shortest path.
func (r *Router) Routes(k, src int) (dist []float64, parent []int32) {
	s := &r.g.snaps[k]
	if r.haveTree && r.src == src && r.fp == s.fp {
		r.refresh(k)
		observeRoute(false)
		return r.dist, r.parent
	}
	r.dijkstra(k, src)
	r.haveTree = true
	r.src = src
	r.fp = s.fp
	observeRoute(true)
	return r.dist, r.parent
}

// dijkstra runs the full computation over snapshot k.
func (r *Router) dijkstra(k, src int) {
	n := r.g.Nodes()
	for i := 0; i < n; i++ {
		r.dist[i] = math.Inf(1)
		r.parent[i] = -1
		r.settled[i] = false
	}
	r.order = r.order[:0]
	r.pq = r.pq[:0]
	r.dist[src] = 0
	heap.Push(&r.pq, heapItem{node: int32(src), cost: 0})
	s := &r.g.snaps[k]
	for r.pq.Len() > 0 {
		it := heap.Pop(&r.pq).(heapItem)
		v := int(it.node)
		if r.settled[v] {
			continue
		}
		r.settled[v] = true
		r.order = append(r.order, it.node)
		for e := s.offsets[v]; e < s.offsets[v+1]; e++ {
			u := int(s.nbr[e])
			if c := it.cost + s.delay[e]; c < r.dist[u] {
				r.dist[u] = c
				r.parent[u] = int32(v)
				heap.Push(&r.pq, heapItem{node: s.nbr[e], cost: c})
			}
		}
	}
}

// refresh recomputes the delays along the cached tree using snapshot k's
// edge weights. The tree stays valid because the edge set is identical;
// only the (slowly drifting) propagation delays moved.
func (r *Router) refresh(k int) {
	s := &r.g.snaps[k]
	for _, vn := range r.order {
		v := int(vn)
		p := r.parent[v]
		if p < 0 {
			continue
		}
		for e := s.offsets[v]; e < s.offsets[v+1]; e++ {
			if s.nbr[e] == p {
				r.dist[v] = r.dist[p] + s.delay[e]
				break
			}
		}
	}
}

// heapItem is one priority-queue entry.
type heapItem struct {
	node int32
	cost float64
}

type minHeap []heapItem

func (h minHeap) Len() int { return len(h) }
func (h minHeap) Less(i, j int) bool {
	if h[i].cost != h[j].cost {
		return h[i].cost < h[j].cost
	}
	return h[i].node < h[j].node // deterministic tie-break
}
func (h minHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *minHeap) Push(x any)   { *h = append(*h, x.(heapItem)) }
func (h *minHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Hop is one edge traversal of a delivered path, tagged with the snapshot
// it was traversed at so validity can be re-checked against that
// snapshot's predicates.
type Hop struct {
	From, To int32
	Snapshot int32
}

// Delivery is the outcome of an earliest-delivery search.
type Delivery struct {
	At      time.Time // arrival at the station, including per-hop delays
	Station int       // station index within the graph's station set
	Path    []Hop     // traversed edges, origin first
}

// Hops returns the number of edges traversed.
func (d Delivery) Hops() int { return len(d.Path) }

// ISLHops returns the number of satellite–satellite edges traversed.
func (d Delivery) ISLHops(g *Graph) int {
	n := 0
	for _, h := range d.Path {
		if !g.IsStation(int(h.From)) && !g.IsStation(int(h.To)) {
			n++
		}
	}
	return n
}

// DeliverySearch runs time-expanded earliest-delivery queries: given a
// packet sitting on a satellite at an origin instant, find the earliest
// time it can reach any ground station, choosing freely at every snapshot
// between storing on board (waiting for the next snapshot) and forwarding
// over any live edge. With no ISLs live this degrades exactly to
// store-and-forward: the packet waits until a direct downlink edge
// appears. Not safe for concurrent use; create one per worker.
type DeliverySearch struct {
	g        *Graph
	arrival  []float64 // seconds since graph start; +Inf unreached
	prevNode []int32
	prevSnap []int32
	pq       minHeap
	settled  []bool
	touched  []int32 // nodes dirtied since Reset, for O(touched) cleanup
}

// NewDeliverySearch creates a search over g.
func NewDeliverySearch(g *Graph) *DeliverySearch {
	n := g.Nodes()
	s := &DeliverySearch{
		g:        g,
		arrival:  make([]float64, n),
		prevNode: make([]int32, n),
		prevSnap: make([]int32, n),
		settled:  make([]bool, n),
	}
	for i := range s.arrival {
		s.arrival[i] = math.Inf(1)
		s.prevNode[i] = -1
		s.prevSnap[i] = -1
	}
	return s
}

// reset clears only the state dirtied by the previous query.
func (s *DeliverySearch) reset() {
	for _, v := range s.touched {
		s.arrival[v] = math.Inf(1)
		s.prevNode[v] = -1
		s.prevSnap[v] = -1
		s.settled[v] = false
	}
	s.touched = s.touched[:0]
}

// Earliest finds the earliest delivery of a packet originating on
// satellite sat at origin. ok is false when no station is reachable
// within the graph's span.
func (s *DeliverySearch) Earliest(sat int, origin time.Time) (Delivery, bool) {
	g := s.g
	s.reset()
	t0 := origin.Sub(g.start).Seconds()
	if t0 < 0 {
		t0 = 0
	}
	s.arrival[sat] = t0
	s.touched = append(s.touched, int32(sat))

	step := g.cfg.SnapshotStep.Seconds()
	best := math.Inf(1)
	bestNode := -1
	firstK := g.SnapshotFor(origin)
	for k := firstK; k < len(g.snaps); k++ {
		snap := &g.snaps[k]
		tk := float64(k) * step
		tkNext := tk + step
		// A station arrival no later than this snapshot's start cannot be
		// beaten by any later departure.
		if best <= tk {
			break
		}
		// Seed a Dijkstra over this snapshot's live edges with every node
		// the packet can occupy before the snapshot expires; departures
		// wait on board until the snapshot opens.
		s.pq = s.pq[:0]
		for _, v := range s.touched {
			s.settled[v] = false
			if a := s.arrival[v]; a < tkNext {
				dep := a
				if dep < tk {
					dep = tk
				}
				heap.Push(&s.pq, heapItem{node: v, cost: dep})
			}
		}
		if s.pq.Len() > 0 {
			observeRoute(true)
		}
		for s.pq.Len() > 0 {
			it := heap.Pop(&s.pq).(heapItem)
			v := int(it.node)
			if s.settled[v] {
				continue
			}
			s.settled[v] = true
			if g.IsStation(v) {
				if it.cost < best {
					best = it.cost
					bestNode = v
				}
				continue // stations terminate the packet
			}
			for e := snap.offsets[v]; e < snap.offsets[v+1]; e++ {
				u := int(snap.nbr[e])
				c := it.cost + snap.delay[e]
				if c < s.arrival[u] {
					if math.IsInf(s.arrival[u], 1) {
						s.touched = append(s.touched, int32(u))
					}
					s.arrival[u] = c
					s.prevNode[u] = int32(v)
					s.prevSnap[u] = int32(k)
					heap.Push(&s.pq, heapItem{node: snap.nbr[e], cost: c})
				}
			}
		}
	}
	if bestNode < 0 {
		return Delivery{}, false
	}
	d := Delivery{
		At:      g.start.Add(time.Duration(best * float64(time.Second))),
		Station: g.Station(bestNode),
	}
	for v := int32(bestNode); s.prevNode[v] >= 0; v = s.prevNode[v] {
		d.Path = append(d.Path, Hop{From: s.prevNode[v], To: v, Snapshot: s.prevSnap[v]})
	}
	// Reverse into origin-first order.
	for i, j := 0, len(d.Path)-1; i < j; i, j = i+1, j-1 {
		d.Path[i], d.Path[j] = d.Path[j], d.Path[i]
	}
	return d, true
}
