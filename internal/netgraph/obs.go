package netgraph

import (
	"sync/atomic"

	"github.com/sinet-io/sinet/internal/obs"
)

// graphMetrics bundles the topology/routing telemetry so one atomic
// pointer covers install/uninstall: either every instrument is live or
// none is.
type graphMetrics struct {
	builds     *obs.Counter
	edgesLive  *obs.Counter
	edgesDrop  *obs.Counter
	routes     *obs.CounterVec
	deliveries *obs.CounterVec
}

// metrics is the process-wide installed telemetry (nil = uninstrumented).
var metrics atomic.Pointer[graphMetrics]

// SetMetrics installs network-graph telemetry into r:
//
//	sinet_topology_builds_total       snapshots built
//	sinet_isl_edges_live_total        candidate ISLs live at build time
//	sinet_isl_edges_dropped_total     candidate ISLs failing a predicate
//	sinet_route_computations_total    router runs, by mode (full|incremental)
//	sinet_deliveries_total            campaign deliveries, by policy (relay|store)
//
// The installation is process-wide, matching orbit.SetMetrics and
// sim.SetMetrics; a nil r uninstalls. Counters are bumped after the work
// they describe (batched per snapshot build), so instrumented and
// uninstrumented runs produce byte-identical graphs and routes.
func SetMetrics(r *obs.Registry) {
	if r == nil {
		metrics.Store(nil)
		return
	}
	m := &graphMetrics{
		builds:     r.Counter("sinet_topology_builds_total", "Network-graph snapshots built."),
		edgesLive:  r.Counter("sinet_isl_edges_live_total", "Candidate inter-satellite links live at snapshot build."),
		edgesDrop:  r.Counter("sinet_isl_edges_dropped_total", "Candidate inter-satellite links dropped by a connectivity predicate or churn."),
		routes:     r.CounterVec("sinet_route_computations_total", "Shortest-path computations, by mode.", "mode"),
		deliveries: r.CounterVec("sinet_deliveries_total", "Routing-campaign packet deliveries, by policy.", "policy"),
	}
	for _, mode := range []string{"full", "incremental"} {
		m.routes.With(mode)
	}
	for _, policy := range []string{"relay", "store"} {
		m.deliveries.With(policy)
	}
	metrics.Store(m)
}

// observeSnapshot accounts one snapshot build with its edge census.
func observeSnapshot(live, dropped int) {
	m := metrics.Load()
	if m == nil {
		return
	}
	m.builds.Inc()
	m.edgesLive.Add(uint64(live))
	m.edgesDrop.Add(uint64(dropped))
}

// observeRoute accounts one router run.
func observeRoute(full bool) {
	m := metrics.Load()
	if m == nil {
		return
	}
	if full {
		m.routes.With("full").Inc()
	} else {
		m.routes.With("incremental").Inc()
	}
}

// ObserveDelivery accounts one campaign delivery under the given policy
// ("relay" or "store"). Exported for the core routing campaign, which
// counts deliveries as it merges worker results.
func ObserveDelivery(policy string, n int) {
	m := metrics.Load()
	if m == nil || n <= 0 {
		return
	}
	m.deliveries.With(policy).Add(uint64(n))
}
