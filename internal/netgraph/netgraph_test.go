package netgraph

import (
	"math"
	"reflect"
	"runtime"
	"testing"
	"time"

	"github.com/sinet-io/sinet/internal/constellation"
	"github.com/sinet-io/sinet/internal/orbit"
)

var testEpoch = time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC)

// testStations is a small global ground segment for routing tests.
func testStations() []orbit.Geodetic {
	return []orbit.Geodetic{
		orbit.NewGeodeticDeg(40.07, 116.60, 0.05),
		orbit.NewGeodeticDeg(-33.87, 151.21, 0.02),
		orbit.NewGeodeticDeg(51.51, -0.13, 0.01),
	}
}

// buildTestGraph propagates a Mega shell over span and builds every
// snapshot.
func buildTestGraph(t *testing.T, sats int, span time.Duration, cfg Config) *Graph {
	t.Helper()
	cons := constellation.Mega(testEpoch, sats)
	props, err := cons.Propagators()
	if err != nil {
		t.Fatal(err)
	}
	end := testEpoch.Add(span)
	grid := orbit.NewEphemerisGrid(props, testEpoch, end, orbit.EphemerisConfig{ScanStep: time.Minute})
	grid.PropagateAll()
	g, err := New(grid, testStations(), testEpoch, end, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.BuildAll(nil); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestWalkerNeighborsRingAndCrossPlane(t *testing.T) {
	// Two planes of four satellites in one shell: a 2×4 Walker grid.
	els := make([]orbit.Elements, 0, 8)
	for p := 0; p < 2; p++ {
		for s := 0; s < 4; s++ {
			els = append(els, orbit.Elements{
				NoradID:     100 + p*4 + s,
				Inclination: 53 * math.Pi / 180,
				RAAN:        float64(p) * math.Pi, // two planes, far apart
				MeanAnomaly: 2 * math.Pi * float64(s) / 4,
				MeanMotion:  0.065,
			})
		}
	}
	cand := walkerNeighbors(els)

	has := func(a, b int) bool {
		if a > b {
			a, b = b, a
		}
		for _, c := range cand {
			if int(c[0]) == a && int(c[1]) == b {
				return true
			}
		}
		return false
	}
	// +grid: each plane is a ring of 4.
	for p := 0; p < 2; p++ {
		base := p * 4
		for s := 0; s < 4; s++ {
			if !has(base+s, base+(s+1)%4) {
				t.Errorf("missing intra-plane ring edge %d-%d", base+s, base+(s+1)%4)
			}
		}
	}
	// +cross-plane: every satellite links to its same-anomaly twin in the
	// other plane (the nearest-anomaly neighbor in this symmetric grid).
	for s := 0; s < 4; s++ {
		if !has(s, 4+s) {
			t.Errorf("missing cross-plane edge %d-%d", s, 4+s)
		}
	}
	// No intra-plane chords or diagonal cross links.
	if has(0, 2) || has(1, 3) {
		t.Error("unexpected intra-plane chord in candidate set")
	}
	// Deterministic: repeated derivation is identical.
	if again := walkerNeighbors(els); !reflect.DeepEqual(cand, again) {
		t.Error("walkerNeighbors is not deterministic")
	}
	// Sorted, a < b, unique.
	seen := map[[2]int32]bool{}
	for i, c := range cand {
		if c[0] >= c[1] {
			t.Fatalf("edge %v not in a<b order", c)
		}
		if seen[c] {
			t.Fatalf("duplicate edge %v", c)
		}
		seen[c] = true
		if i > 0 && (cand[i-1][0] > c[0] || (cand[i-1][0] == c[0] && cand[i-1][1] >= c[1])) {
			t.Fatalf("candidate list not sorted at %d", i)
		}
	}
}

func TestSinglePlaneHasNoCrossLinks(t *testing.T) {
	els := make([]orbit.Elements, 5)
	for s := range els {
		els[s] = orbit.Elements{
			NoradID:     200 + s,
			Inclination: 97.6 * math.Pi / 180,
			RAAN:        1.0,
			MeanAnomaly: 2 * math.Pi * float64(s) / 5,
			MeanMotion:  0.065,
		}
	}
	cand := walkerNeighbors(els)
	if len(cand) != 5 { // ring of 5, nothing else
		t.Fatalf("single plane of 5 yields %d candidate edges, want 5", len(cand))
	}
}

func TestOccluded(t *testing.T) {
	limb := orbit.EarthRadiusKm + DefaultOcclusionAltKm
	a := orbit.Vec3{X: 7000, Y: 0, Z: 0}
	cases := []struct {
		name string
		b    orbit.Vec3
		want bool
	}{
		{"antipodal through Earth", orbit.Vec3{X: -7000, Y: 0, Z: 0}, true},
		{"same position", a, false},
		{"nearby same orbit", orbit.Vec3{X: 6900, Y: 1000, Z: 0}, false},
		// 90° apart at 7000 km radius the chord's midpoint sits at
		// 7000/√2 ≈ 4950 km — inside the Earth.
		{"quarter orbit apart", orbit.Vec3{X: 0, Y: 7000, Z: 0}, true},
		{"short chord above limb", orbit.Vec3{X: 6800, Y: 2000, Z: 0}, false},
		{"grazing below limb", orbit.Vec3{X: -7000, Y: 2 * 6400, Z: 0}, true},
	}
	for _, tc := range cases {
		if got := occluded(a, tc.b, limb); got != tc.want {
			t.Errorf("occluded(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestBuildEdgesRespectPredicates(t *testing.T) {
	g := buildTestGraph(t, 40, 2*time.Hour, Config{})
	limb := orbit.EarthRadiusKm + g.OcclusionAltKm()
	checkedISL, checkedDown := 0, 0
	for k := 0; k < g.Snapshots(); k++ {
		s := &g.snaps[k]
		for v := 0; v < g.Nodes(); v++ {
			g.Neighbors(k, v, func(to int, delaySec, distKm float64) {
				if wantDelay := distKm/SpeedOfLightKmPerSec + g.cfg.HopProcessing.Seconds(); math.Abs(delaySec-wantDelay) > 1e-12 {
					t.Fatalf("snapshot %d edge %d-%d delay %v, want %v", k, v, to, delaySec, wantDelay)
				}
				if g.IsStation(v) || g.IsStation(to) {
					checkedDown++
					sat, st := v, to
					if g.IsStation(sat) {
						sat, st = to, v
					}
					if !g.masks[g.Station(st)].Above(s.pos[sat]) {
						t.Fatalf("snapshot %d: station edge %d-%d below the elevation mask", k, v, to)
					}
					return
				}
				checkedISL++
				if distKm > g.MaxISLRangeKm() {
					t.Fatalf("snapshot %d: ISL %d-%d length %.1f km exceeds budget", k, v, to, distKm)
				}
				if occluded(s.pos[v], s.pos[to], limb) {
					t.Fatalf("snapshot %d: ISL %d-%d crosses the Earth limb", k, v, to)
				}
			})
		}
	}
	if checkedISL == 0 || checkedDown == 0 {
		t.Fatalf("vacuous: %d ISL and %d downlink edges checked", checkedISL, checkedDown)
	}
}

func TestParallelBuildBitIdenticalToSerial(t *testing.T) {
	cons := constellation.Mega(testEpoch, 40)
	props, err := cons.Propagators()
	if err != nil {
		t.Fatal(err)
	}
	end := testEpoch.Add(2 * time.Hour)
	grid := orbit.NewEphemerisGrid(props, testEpoch, end, orbit.EphemerisConfig{ScanStep: time.Minute})
	grid.PropagateAll()

	build := func(procs int) *Graph {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		g, err := New(grid, testStations(), testEpoch, end, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if !g.ParallelBuildSafe() {
			t.Fatal("interpolated grid should allow parallel builds")
		}
		if err := g.BuildAll(nil); err != nil {
			t.Fatal(err)
		}
		return g
	}
	serial, parallel := build(1), build(4)
	for k := 0; k < serial.Snapshots(); k++ {
		a, b := &serial.snaps[k], &parallel.snaps[k]
		if a.fp != b.fp || !reflect.DeepEqual(a.offsets, b.offsets) || !reflect.DeepEqual(a.nbr, b.nbr) ||
			!reflect.DeepEqual(a.delay, b.delay) || !reflect.DeepEqual(a.distKm, b.distKm) {
			t.Fatalf("snapshot %d differs between serial and parallel build", k)
		}
	}
}

func TestRouterIncrementalMatchesFull(t *testing.T) {
	g := buildTestGraph(t, 40, time.Hour, Config{})
	r := NewRouter(g)
	dist1, parent1 := r.Routes(0, 0)
	d1 := append([]float64(nil), dist1...)
	p1 := append([]int32(nil), parent1...)
	// Same snapshot, same source: the fingerprint matches, so the second
	// query refreshes the cached tree — and must reproduce the same answer
	// because the delays are also identical.
	dist2, parent2 := r.Routes(0, 0)
	if !reflect.DeepEqual(d1, dist2) || !reflect.DeepEqual(p1, parent2) {
		t.Fatal("incremental refresh over an identical snapshot changed the answer")
	}
	// Tree invariant after any refresh: dist[v] = dist[parent[v]] + delay.
	for k := 1; k < g.Snapshots(); k++ {
		dist, parent := r.Routes(k, 0)
		s := &g.snaps[k]
		for v := range parent {
			p := parent[v]
			if p < 0 {
				continue
			}
			var edge float64
			found := false
			for e := s.offsets[v]; e < s.offsets[v+1]; e++ {
				if s.nbr[e] == p {
					edge, found = s.delay[e], true
					break
				}
			}
			if !found {
				t.Fatalf("snapshot %d: tree edge %d-%d not live", k, p, v)
			}
			if math.Abs(dist[v]-(dist[p]+edge)) > 1e-9 {
				t.Fatalf("snapshot %d: dist[%d] inconsistent with its tree edge", k, v)
			}
		}
	}
}

// TestDeliveryPathsRespectSnapshots is the path-validity property test:
// every hop of every delivery must traverse an edge that is live in the
// snapshot it is tagged with, within the ISL range budget and clear of
// the Earth limb, and hop snapshots must be non-decreasing.
func TestDeliveryPathsRespectSnapshots(t *testing.T) {
	g := buildTestGraph(t, 60, 3*time.Hour, Config{})
	limb := orbit.EarthRadiusKm + g.OcclusionAltKm()
	search := NewDeliverySearch(g)
	delivered, hops := 0, 0
	for sat := 0; sat < g.SatCount(); sat++ {
		for _, offset := range []time.Duration{0, 47 * time.Minute, 2 * time.Hour} {
			origin := testEpoch.Add(offset)
			d, ok := search.Earliest(sat, origin)
			if !ok {
				continue
			}
			delivered++
			if d.At.Before(origin) {
				t.Fatalf("sat %d: delivery %v precedes origin %v", sat, d.At, origin)
			}
			if len(d.Path) == 0 {
				t.Fatalf("sat %d: delivered with an empty path", sat)
			}
			if int(d.Path[0].From) != sat {
				t.Fatalf("sat %d: path starts at node %d", sat, d.Path[0].From)
			}
			last := d.Path[len(d.Path)-1]
			if !g.IsStation(int(last.To)) || g.Station(int(last.To)) != d.Station {
				t.Fatalf("sat %d: path ends at node %d, station %d", sat, last.To, d.Station)
			}
			prevSnap := int32(g.SnapshotFor(origin))
			for _, h := range d.Path {
				hops++
				k := int(h.Snapshot)
				if k < g.SnapshotFor(origin) || k >= g.Snapshots() {
					t.Fatalf("sat %d: hop snapshot %d out of range", sat, k)
				}
				if h.Snapshot < prevSnap {
					t.Fatalf("sat %d: hop snapshots decrease (%d after %d)", sat, h.Snapshot, prevSnap)
				}
				prevSnap = h.Snapshot
				distKm, live := g.EdgeLive(k, int(h.From), int(h.To))
				if !live {
					t.Fatalf("sat %d: hop %d-%d not live in snapshot %d", sat, h.From, h.To, k)
				}
				if !g.IsStation(int(h.From)) && !g.IsStation(int(h.To)) {
					if distKm > g.MaxISLRangeKm() {
						t.Fatalf("sat %d: hop %d-%d exceeds ISL range in snapshot %d", sat, h.From, h.To, k)
					}
					a, aok := g.SatPosition(k, int(h.From))
					b, bok := g.SatPosition(k, int(h.To))
					if !aok || !bok || occluded(a, b, limb) {
						t.Fatalf("sat %d: hop %d-%d occluded in snapshot %d", sat, h.From, h.To, k)
					}
				}
			}
		}
	}
	if delivered == 0 {
		t.Fatal("no deliveries — vacuous property test")
	}
	t.Logf("validated %d hops over %d deliveries", hops, delivered)
}

// TestDeliverySearchReusable guards the scratch-state reset: interleaved
// queries on one search object must match fresh-object answers.
func TestDeliverySearchReusable(t *testing.T) {
	g := buildTestGraph(t, 40, 2*time.Hour, Config{})
	shared := NewDeliverySearch(g)
	for sat := 0; sat < g.SatCount(); sat += 7 {
		for _, offset := range []time.Duration{90 * time.Minute, 5 * time.Minute} { // deliberately out of order
			origin := testEpoch.Add(offset)
			got, okG := shared.Earliest(sat, origin)
			want, okW := NewDeliverySearch(g).Earliest(sat, origin)
			if okG != okW || !reflect.DeepEqual(got, want) {
				t.Fatalf("sat %d offset %v: reused search differs from fresh search", sat, offset)
			}
		}
	}
}

// TestNoISLsDegradesToStoreAndForward: with every ISL churned out the
// earliest delivery uses zero ISL hops — pure store-and-forward — and is
// never earlier than the ISL-enabled delivery.
func TestNoISLsDegradesToStoreAndForward(t *testing.T) {
	with := buildTestGraph(t, 40, 3*time.Hour, Config{})
	without := buildTestGraph(t, 40, 3*time.Hour, Config{
		ISLUp: func(a, b int, at time.Time) bool { return false },
	})
	for k := 0; k < without.Snapshots(); k++ {
		if without.LiveISLs(k) != 0 {
			t.Fatalf("snapshot %d still has %d live ISLs under always-down churn", k, without.LiveISLs(k))
		}
	}
	sWith, sWithout := NewDeliverySearch(with), NewDeliverySearch(without)
	compared := 0
	for sat := 0; sat < with.SatCount(); sat++ {
		origin := testEpoch.Add(11 * time.Minute)
		dw, okw := sWith.Earliest(sat, origin)
		do, oko := sWithout.Earliest(sat, origin)
		if oko {
			if do.ISLHops(without) != 0 {
				t.Fatalf("sat %d: ISL hop on a graph with no live ISLs", sat)
			}
			if len(do.Path) != 1 {
				t.Fatalf("sat %d: store-and-forward path has %d hops, want 1", sat, len(do.Path))
			}
		}
		if okw && oko {
			compared++
			if dw.At.After(do.At) {
				t.Fatalf("sat %d: ISL-enabled delivery %v later than store-and-forward %v", sat, dw.At, do.At)
			}
		}
		if !okw && oko {
			t.Fatalf("sat %d: store-and-forward delivered but relay with ISLs did not", sat)
		}
	}
	if compared == 0 {
		t.Fatal("no satellite delivered under both graphs — vacuous comparison")
	}
}

func TestSnapshotForClamps(t *testing.T) {
	g := buildTestGraph(t, 10, time.Hour, Config{})
	if k := g.SnapshotFor(testEpoch.Add(-time.Hour)); k != 0 {
		t.Errorf("before span: snapshot %d, want 0", k)
	}
	if k := g.SnapshotFor(testEpoch.Add(30 * time.Minute)); k != 30 {
		t.Errorf("mid span: snapshot %d, want 30", k)
	}
	if k := g.SnapshotFor(testEpoch.Add(48 * time.Hour)); k != g.Snapshots()-1 {
		t.Errorf("after span: snapshot %d, want %d", k, g.Snapshots()-1)
	}
}
