// Package netgraph builds the time-varying satellite network graph the
// routing campaign walks: satellites (rows of a shared orbit.EphemerisGrid)
// and ground stations are nodes, inter-satellite links and downlink
// opportunities are edges, and connectivity is decided per time step by
// geometric predicates — slant range against the ISL terminal budget,
// Earth-limb occlusion for satellite pairs, the elevation mask for
// satellite→station links — composed with fault-injected link churn.
//
// The graph is time-expanded: the campaign span is cut into fixed-cadence
// snapshots, each holding a compact CSR adjacency whose edge weights are
// propagation plus per-hop processing delay. Snapshots depend only on the
// shared (immutable once propagated) ephemeris samples and write only
// their own slot, so they build in parallel with bit-identical results to
// a serial build. On top of the snapshots, route.go answers per-snapshot
// shortest-path queries and time-expanded earliest-delivery searches.
package netgraph

import (
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/sinet-io/sinet/internal/orbit"
	"github.com/sinet-io/sinet/internal/sim"
)

// SpeedOfLightKmPerSec is c in the units the delay weights use.
const SpeedOfLightKmPerSec = 299792.458

// Defaults for Config's zero values.
const (
	DefaultSnapshotStep   = time.Minute
	DefaultMaxISLRangeKm  = 5000.0
	DefaultOcclusionAltKm = 80.0
	DefaultHopProcessing  = 10 * time.Millisecond
	defaultMinElevation   = 5 * math.Pi / 180
)

// Config parameterizes graph construction. The zero value is usable: every
// field defaults as documented.
type Config struct {
	// SnapshotStep is the topology cadence: one snapshot every step.
	// Defaults to one minute — coarser than the ephemeris ScanStep used by
	// the pass search, because link-level connectivity changes on the
	// minutes scale while pass boundaries need sub-minute precision.
	SnapshotStep time.Duration

	// MaxISLRangeKm is the ISL terminal range budget: candidate links
	// longer than this are down regardless of visibility. Defaults to
	// 5000 km, a typical optical crosslink figure.
	MaxISLRangeKm float64

	// OcclusionAltKm is the grazing altitude of the Earth-limb occlusion
	// test: an ISL whose line of sight dips below EarthRadiusKm +
	// OcclusionAltKm is blocked. The default 80 km keeps links out of the
	// bulk atmosphere.
	OcclusionAltKm float64

	// HopProcessing is the per-hop switching/processing delay added to
	// every edge's propagation delay. Defaults to 10 ms.
	HopProcessing time.Duration

	// MinElevationRad is the satellite→station elevation mask. Defaults
	// to 5°, the operator teleport figure.
	MinElevationRad float64

	// ISLUp, when non-nil, gates each candidate ISL by fault state: the
	// link between NORAD IDs a and b exists at time t only when
	// ISLUp(a, b, t) is true. This is where fault.Config.LinkSchedule
	// churn plugs in.
	ISLUp func(noradA, noradB int, at time.Time) bool

	// StationUp, when non-nil, gates each ground station by fault state
	// (fault.Config.DrainSchedule for the operator teleports).
	StationUp func(station int, at time.Time) bool
}

func (c *Config) setDefaults() {
	if c.SnapshotStep <= 0 {
		c.SnapshotStep = DefaultSnapshotStep
	}
	if c.MaxISLRangeKm <= 0 {
		c.MaxISLRangeKm = DefaultMaxISLRangeKm
	}
	if c.OcclusionAltKm == 0 {
		c.OcclusionAltKm = DefaultOcclusionAltKm
	}
	if c.HopProcessing <= 0 {
		c.HopProcessing = DefaultHopProcessing
	}
	if c.MinElevationRad == 0 {
		c.MinElevationRad = defaultMinElevation
	}
}

// Snapshot is the network at one instant: a CSR adjacency over the graph's
// nodes (satellites first, then stations). Edges are stored in both
// directions. A built snapshot is immutable.
type Snapshot struct {
	At time.Time

	// pos[i] is satellite i's ECEF position at At; ok[i] is false when
	// propagation failed (a decayed satellite contributes no edges).
	pos []orbit.Vec3
	ok  []bool

	offsets []int32   // len nodes+1
	nbr     []int32   // neighbor node index
	delay   []float64 // edge delay, seconds (propagation + processing)
	distKm  []float64 // edge length, km (for predicates re-checks and tests)

	liveISL int    // live candidate ISLs in this snapshot
	fp      uint64 // FNV-1a fingerprint of the edge set (offsets+nbr)
	built   bool
}

// Graph is the time-expanded network over one campaign span.
type Graph struct {
	cfg      Config
	grid     *orbit.EphemerisGrid
	stations []orbit.Geodetic
	stECEF   []orbit.Vec3
	masks    []orbit.GroundMask
	norad    []int // per satellite row

	start time.Time
	snaps []Snapshot

	// cand is the candidate ISL edge list from the Walker neighbor
	// policy: +grid (intra-plane ring) and +cross-plane (nearest-anomaly
	// neighbor in the adjacent plane), as satellite index pairs a<b.
	cand [][2]int32
}

// New builds the graph skeleton over [start, end): candidate ISL edges from
// the Walker neighbor policy and one empty snapshot per SnapshotStep.
// Snapshots are filled by Build/BuildAll after the grid rows have been
// propagated. The grid must cover the span.
func New(grid *orbit.EphemerisGrid, stations []orbit.Geodetic, start, end time.Time, cfg Config) (*Graph, error) {
	cfg.setDefaults()
	if !end.After(start) {
		return nil, fmt.Errorf("netgraph: empty span %v..%v", start, end)
	}
	n := int(end.Sub(start)/cfg.SnapshotStep) + 1
	g := &Graph{
		cfg:      cfg,
		grid:     grid,
		stations: stations,
		start:    start,
		snaps:    make([]Snapshot, n),
	}
	els := make([]orbit.Elements, grid.Sats())
	g.norad = make([]int, grid.Sats())
	for i := range els {
		els[i] = grid.Sat(i).Elements()
		g.norad[i] = els[i].NoradID
	}
	g.cand = walkerNeighbors(els)
	g.stECEF = make([]orbit.Vec3, len(stations))
	g.masks = make([]orbit.GroundMask, len(stations))
	for i, st := range stations {
		g.masks[i] = orbit.NewGroundMask(st, cfg.MinElevationRad)
		g.stECEF[i] = g.masks[i].SiteECEF()
	}
	for k := range g.snaps {
		g.snaps[k].At = start.Add(time.Duration(k) * cfg.SnapshotStep)
	}
	return g, nil
}

// Snapshots returns the snapshot count.
func (g *Graph) Snapshots() int { return len(g.snaps) }

// SnapshotStep returns the topology cadence.
func (g *Graph) SnapshotStep() time.Duration { return g.cfg.SnapshotStep }

// At returns snapshot k's instant.
func (g *Graph) At(k int) time.Time { return g.snaps[k].At }

// SatCount returns the number of satellite nodes.
func (g *Graph) SatCount() int { return g.grid.Sats() }

// StationCount returns the number of ground-station nodes.
func (g *Graph) StationCount() int { return len(g.stations) }

// Nodes returns the total node count; node ids are satellites
// 0..SatCount-1 followed by stations SatCount..Nodes-1.
func (g *Graph) Nodes() int { return g.grid.Sats() + len(g.stations) }

// IsStation reports whether node is a ground station.
func (g *Graph) IsStation(node int) bool { return node >= g.grid.Sats() }

// Station returns the station index of a station node.
func (g *Graph) Station(node int) int { return node - g.grid.Sats() }

// NoradID returns the NORAD catalog number of a satellite node.
func (g *Graph) NoradID(sat int) int { return g.norad[sat] }

// CandidateISLs returns the Walker neighbor policy's candidate edge count.
func (g *Graph) CandidateISLs() int { return len(g.cand) }

// Candidates returns the candidate ISL list as satellite index pairs
// (a < b), for callers attaching per-link state such as churn schedules.
// The slice is owned by the graph; do not modify it.
func (g *Graph) Candidates() [][2]int32 { return g.cand }

// LiveISLs returns the number of live candidate ISLs in built snapshot k.
func (g *Graph) LiveISLs(k int) int { return g.snaps[k].liveISL }

// SnapshotFor returns the index of the snapshot governing instant t: the
// last snapshot at or before t, clamped to the span.
func (g *Graph) SnapshotFor(t time.Time) int {
	k := int(t.Sub(g.start) / g.cfg.SnapshotStep)
	if k < 0 {
		k = 0
	}
	if k >= len(g.snaps) {
		k = len(g.snaps) - 1
	}
	return k
}

// ParallelBuildSafe reports whether snapshots may be built concurrently.
// Snapshot builders for different instants query the same ephemeris rows,
// which is race-free only on the pure-read grid-hit/interpolation paths;
// a row in exact mode (configured or demoted at validation) answers
// off-grid queries through its mutable propagator, so such grids must
// build serially. Call after the grid rows are propagated.
func (g *Graph) ParallelBuildSafe() bool {
	if g.grid.Sats() == 0 {
		return true
	}
	return !g.grid.Sat(0).Exact() && g.grid.ExactRows() == 0
}

// BuildAll fills every snapshot, fanning out across workers when the
// ephemeris allows it (see ParallelBuildSafe) and building serially
// otherwise. Each snapshot writes only its own slot and reads only shared
// immutable samples, so the parallel build is bit-identical to the serial
// one. onDone (may be nil) observes completion counts, serialized and
// strictly increasing.
func (g *Graph) BuildAll(onDone func(completed, total int)) error {
	n := len(g.snaps)
	if g.ParallelBuildSafe() {
		return sim.ForEachPhase("topology", n, func(k int) error {
			g.Build(k)
			return nil
		}, onDone)
	}
	for k := 0; k < n; k++ {
		g.Build(k)
		if onDone != nil {
			onDone(k+1, n)
		}
	}
	return nil
}

// Build fills snapshot k: evaluates every candidate ISL and every
// satellite×station pair against the connectivity predicates at the
// snapshot instant. Safe to call concurrently for distinct k when
// ParallelBuildSafe holds. Idempotent: rebuilding yields the same snapshot.
func (g *Graph) Build(k int) {
	snap := &g.snaps[k]
	t := snap.At
	sats := g.grid.Sats()
	nodes := g.Nodes()

	snap.pos = make([]orbit.Vec3, sats)
	snap.ok = make([]bool, sats)
	for i := 0; i < sats; i++ {
		r, _, err := g.grid.Sat(i).PositionECEF(t)
		if err == nil {
			snap.pos[i] = r
			snap.ok[i] = true
		}
	}

	stUp := make([]bool, len(g.stations))
	for j := range g.stations {
		stUp[j] = g.cfg.StationUp == nil || g.cfg.StationUp(j, t)
	}

	// First pass: decide liveness, count degrees. Second pass: fill CSR.
	type liveEdge struct {
		a, b   int32
		distKm float64
	}
	var edges []liveEdge
	limb := orbit.EarthRadiusKm + g.cfg.OcclusionAltKm
	liveISL, dropped := 0, 0
	for _, c := range g.cand {
		a, b := int(c[0]), int(c[1])
		if !snap.ok[a] || !snap.ok[b] {
			dropped++
			continue
		}
		if g.cfg.ISLUp != nil && !g.cfg.ISLUp(g.norad[a], g.norad[b], t) {
			dropped++
			continue
		}
		d := snap.pos[a].Sub(snap.pos[b]).Norm()
		if d > g.cfg.MaxISLRangeKm || occluded(snap.pos[a], snap.pos[b], limb) {
			dropped++
			continue
		}
		edges = append(edges, liveEdge{a: c[0], b: c[1], distKm: d})
		liveISL++
	}
	for i := 0; i < sats; i++ {
		if !snap.ok[i] {
			continue
		}
		for j := range g.stations {
			if !stUp[j] || !g.masks[j].Above(snap.pos[i]) {
				continue
			}
			d := snap.pos[i].Sub(g.stECEF[j]).Norm()
			edges = append(edges, liveEdge{a: int32(i), b: int32(sats + j), distKm: d})
		}
	}
	snap.liveISL = liveISL

	deg := make([]int32, nodes)
	for _, e := range edges {
		deg[e.a]++
		deg[e.b]++
	}
	offsets := make([]int32, nodes+1)
	for i := 0; i < nodes; i++ {
		offsets[i+1] = offsets[i] + deg[i]
	}
	nbr := make([]int32, offsets[nodes])
	delay := make([]float64, offsets[nodes])
	distKm := make([]float64, offsets[nodes])
	fill := make([]int32, nodes)
	copy(fill, offsets[:nodes])
	hop := g.cfg.HopProcessing.Seconds()
	for _, e := range edges {
		w := e.distKm/SpeedOfLightKmPerSec + hop
		nbr[fill[e.a]] = e.b
		delay[fill[e.a]] = w
		distKm[fill[e.a]] = e.distKm
		fill[e.a]++
		nbr[fill[e.b]] = e.a
		delay[fill[e.b]] = w
		distKm[fill[e.b]] = e.distKm
		fill[e.b]++
	}
	snap.offsets = offsets
	snap.nbr = nbr
	snap.delay = delay
	snap.distKm = distKm
	snap.fp = fingerprint(offsets, nbr)
	snap.built = true
	observeSnapshot(liveISL, dropped)
}

// Degree returns node's edge count in snapshot k.
func (g *Graph) Degree(k, node int) int {
	s := &g.snaps[k]
	return int(s.offsets[node+1] - s.offsets[node])
}

// Neighbors calls fn for every edge of node in snapshot k with the
// neighbor id, the edge delay (seconds) and the edge length (km).
func (g *Graph) Neighbors(k, node int, fn func(to int, delaySec, distKm float64)) {
	s := &g.snaps[k]
	for e := s.offsets[node]; e < s.offsets[node+1]; e++ {
		fn(int(s.nbr[e]), s.delay[e], s.distKm[e])
	}
}

// EdgeLive reports whether the undirected edge a–b is live in snapshot k,
// and its length when it is. Used by the path-validity property tests.
func (g *Graph) EdgeLive(k, a, b int) (distKm float64, live bool) {
	s := &g.snaps[k]
	for e := s.offsets[a]; e < s.offsets[a+1]; e++ {
		if int(s.nbr[e]) == b {
			return s.distKm[e], true
		}
	}
	return 0, false
}

// SatPosition returns satellite i's ECEF position in snapshot k and
// whether it propagated.
func (g *Graph) SatPosition(k, i int) (orbit.Vec3, bool) {
	s := &g.snaps[k]
	return s.pos[i], s.ok[i]
}

// MaxISLRangeKm returns the configured ISL range budget.
func (g *Graph) MaxISLRangeKm() float64 { return g.cfg.MaxISLRangeKm }

// OcclusionAltKm returns the configured limb-grazing altitude.
func (g *Graph) OcclusionAltKm() float64 { return g.cfg.OcclusionAltKm }

// occluded reports whether the segment a–b dips inside the sphere of
// radius limit (km, centered on Earth's center): the closest point of the
// segment to the origin is below the grazing shell.
func occluded(a, b orbit.Vec3, limit float64) bool {
	d := b.Sub(a)
	dd := d.Dot(d)
	if dd == 0 {
		return a.Norm() < limit
	}
	t := -a.Dot(d) / dd
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	p := a.Add(d.Scale(t))
	return p.Norm() < limit
}

// fingerprint hashes the edge-set structure (offsets + neighbor ids) with
// FNV-1a so the router can detect "topology unchanged between snapshots"
// and reuse its shortest-path tree instead of re-running Dijkstra.
func fingerprint(offsets, nbr []int32) uint64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	mix := func(v int32) {
		u := uint32(v)
		for s := 0; s < 32; s += 8 {
			h ^= uint64(byte(u >> s))
			h *= fnvPrime
		}
	}
	for _, v := range offsets {
		mix(v)
	}
	for _, v := range nbr {
		mix(v)
	}
	return h
}

// walkerNeighbors derives the candidate ISL edge list from the element
// sets using the Walker-grid neighbor policy: satellites are clustered
// into shells (inclination × mean motion) and planes (RAAN), each plane
// is ordered by mean anomaly, and every satellite links to its two
// intra-plane ring neighbors (+grid) and its nearest-anomaly neighbor in
// the next plane of the shell (+cross-plane). Deterministic: ties break
// on NORAD ID, output is sorted.
func walkerNeighbors(els []orbit.Elements) [][2]int32 {
	type shellKey struct{ incl, mm int }
	shells := map[shellKey][]int{}
	for i, e := range els {
		k := shellKey{
			incl: int(math.Round(e.Inclination * 180 / math.Pi * 2)), // half-degree buckets
			mm:   int(math.Round(e.MeanMotion * 1e3)),                // rad/min, ~0.1% buckets
		}
		shells[k] = append(shells[k], i)
	}
	keys := make([]shellKey, 0, len(shells))
	for k := range shells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].incl != keys[j].incl {
			return keys[i].incl < keys[j].incl
		}
		return keys[i].mm < keys[j].mm
	})

	seen := map[[2]int32]bool{}
	var out [][2]int32
	add := func(a, b int) {
		if a == b {
			return
		}
		e := [2]int32{int32(a), int32(b)}
		if a > b {
			e = [2]int32{int32(b), int32(a)}
		}
		if !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}

	for _, k := range keys {
		planes := clusterPlanes(els, shells[k])
		// +grid: ring neighbors within each plane.
		for _, plane := range planes {
			n := len(plane)
			if n < 2 {
				continue
			}
			for i := 0; i < n; i++ {
				add(plane[i], plane[(i+1)%n])
			}
		}
		// +cross-plane: nearest-anomaly neighbor in the next plane.
		if len(planes) < 2 {
			continue
		}
		for p := 0; p < len(planes); p++ {
			next := planes[(p+1)%len(planes)]
			if len(next) == 0 {
				continue
			}
			for _, i := range planes[p] {
				best, bestD := next[0], math.Inf(1)
				for _, j := range next {
					d := circDist(els[i].MeanAnomaly, els[j].MeanAnomaly)
					if d < bestD || (d == bestD && els[j].NoradID < els[best].NoradID) {
						best, bestD = j, d
					}
				}
				add(i, best)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// clusterPlanes groups a shell's satellites into orbital planes by RAAN
// proximity (gap threshold 0.04 rad, merging the wrap-around cluster) and
// orders each plane by mean anomaly. Planes are returned in ascending
// RAAN order.
func clusterPlanes(els []orbit.Elements, idx []int) [][]int {
	if len(idx) == 0 {
		return nil
	}
	sorted := append([]int(nil), idx...)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := els[sorted[i]], els[sorted[j]]
		ra, rb := wrapTwoPi(a.RAAN), wrapTwoPi(b.RAAN)
		if ra != rb {
			return ra < rb
		}
		return a.NoradID < b.NoradID
	})
	const gap = 0.04 // rad; 72 planes are 0.087 rad apart
	var planes [][]int
	cur := []int{sorted[0]}
	for _, i := range sorted[1:] {
		if wrapTwoPi(els[i].RAAN)-wrapTwoPi(els[cur[len(cur)-1]].RAAN) > gap {
			planes = append(planes, cur)
			cur = nil
		}
		cur = append(cur, i)
	}
	planes = append(planes, cur)
	// Wrap-around: the first and last clusters may be one plane split at 0.
	if len(planes) > 1 {
		first, last := planes[0], planes[len(planes)-1]
		if wrapTwoPi(els[first[0]].RAAN)+2*math.Pi-wrapTwoPi(els[last[len(last)-1]].RAAN) <= gap {
			planes[0] = append(last, first...)
			planes = planes[:len(planes)-1]
		}
	}
	for _, plane := range planes {
		sort.Slice(plane, func(i, j int) bool {
			a, b := els[plane[i]], els[plane[j]]
			ma, mb := wrapTwoPi(a.MeanAnomaly), wrapTwoPi(b.MeanAnomaly)
			if ma != mb {
				return ma < mb
			}
			return a.NoradID < b.NoradID
		})
	}
	return planes
}

// circDist returns the circular distance between two angles in [0, π].
func circDist(a, b float64) float64 {
	d := math.Abs(wrapTwoPi(a) - wrapTwoPi(b))
	if d > math.Pi {
		d = 2*math.Pi - d
	}
	return d
}

func wrapTwoPi(a float64) float64 {
	a = math.Mod(a, 2*math.Pi)
	if a < 0 {
		a += 2 * math.Pi
	}
	return a
}
