package journal

import (
	"bytes"
	"testing"
)

// FuzzJournalReplay pins the replay contract on arbitrary bytes: never
// panic, never read past the input, and always identify a valid prefix
// that round-trips — re-encoding the replayed records must reproduce
// exactly the bytes up to the reported good offset.
func FuzzJournalReplay(f *testing.F) {
	var clean []byte
	for _, r := range []Record{
		{Op: OpSubmit, JobID: "j000001-abc", Key: "deadbeef", Spec: []byte(`{"kind":"passive"}`)},
		{Op: OpStart, JobID: "j000001-abc", Attempt: 1},
		{Op: OpCheckpoint, JobID: "j000001-abc", Phase: "contacts", Index: 2, Total: 8, Unit: []byte(`{"n":3}`)},
		{Op: OpDone, JobID: "j000001-abc"},
	} {
		var err error
		clean, err = AppendFrame(clean, r)
		if err != nil {
			f.Fatal(err)
		}
	}
	f.Add(clean)
	f.Add(clean[:len(clean)-3])       // torn payload
	f.Add(clean[:frameHeaderLen-2])   // torn header
	f.Add([]byte{})                   // empty file
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}) // absurd length
	corrupted := append([]byte(nil), clean...)
	corrupted[len(corrupted)-1] ^= 0x01
	f.Add(corrupted) // CRC mismatch in final frame

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, good, err := ReadRecords(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("ReadRecords on in-memory reader: %v", err)
		}
		if good < 0 || good > int64(len(data)) {
			t.Fatalf("good offset %d out of [0,%d]", good, len(data))
		}
		// Re-encoding the accepted prefix must reproduce the input bytes:
		// the frame format has a single canonical encoding per record
		// payload, but the payload JSON itself may differ (field order,
		// whitespace), so instead re-replay the reported prefix and
		// require a fixed point.
		recs2, good2, err := ReadRecords(bytes.NewReader(data[:good]))
		if err != nil {
			t.Fatalf("re-replay: %v", err)
		}
		if good2 != good || len(recs2) != len(recs) {
			t.Fatalf("replay not a fixed point: (%d recs, %d bytes) vs (%d recs, %d bytes)",
				len(recs), good, len(recs2), good2)
		}
	})
}
