// Package journal is the durable append-only job log behind sinetd's
// crash safety. The serving tier logs every job lifecycle transition —
// submit, start, checkpoint, retry, done, fail, cancel — as one framed
// record, fsynced in batches, so a daemon killed mid-campaign can replay
// the log on restart, re-admit every incomplete job, and resume each one
// from its last checkpoint.
//
// The on-disk format is a sequence of frames:
//
//	[4-byte LE payload length][4-byte LE CRC-32 (IEEE) of payload][payload]
//
// where the payload is the record's canonical JSON. A crash can tear at
// most the final frame (appends are sequential), so replay accepts the
// longest valid prefix and truncates the rest: a short header, a short
// payload, a CRC mismatch, an oversized length, or undecodable JSON all
// end the replay at the last good frame boundary. Truncation-on-open
// restores the invariant that the file is a clean sequence of frames, so
// the journal can keep appending after any crash.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// Op is a job lifecycle transition type.
type Op string

// Journal record operations.
const (
	// OpSubmit admits a job: it carries the job ID, content key and the
	// normalized spec JSON needed to re-run the job after a crash.
	OpSubmit Op = "submit"
	// OpStart marks a worker picking the job up (one per attempt).
	OpStart Op = "start"
	// OpCheckpoint persists one completed work unit's snapshot: the
	// campaign phase, the unit's index within it, and its serialized
	// output. Replay folds these into a resume checkpoint.
	OpCheckpoint Op = "checkpoint"
	// OpRetry records a failed attempt that will be re-queued: the job
	// stays incomplete on replay.
	OpRetry Op = "retry"
	// OpDone, OpFail and OpCancel are terminal: replay drops the job.
	OpDone   Op = "done"
	OpFail   Op = "fail"
	OpCancel Op = "cancel"
)

// Terminal reports whether the op ends a job's lifecycle.
func (o Op) Terminal() bool { return o == OpDone || o == OpFail || o == OpCancel }

// Record is one journal entry. Fields irrelevant to an op stay zero and
// are omitted from the encoding.
type Record struct {
	Op    Op     `json:"op"`
	JobID string `json:"job"`
	// Key is the job's content address (submit records).
	Key string `json:"key,omitempty"`
	// Spec is the normalized JobSpec JSON (submit records).
	Spec json.RawMessage `json:"spec,omitempty"`
	// Attempt numbers the execution attempt (start/retry records).
	Attempt int `json:"attempt,omitempty"`
	// Phase, Index, Total and Unit carry one checkpoint snapshot.
	Phase string `json:"phase,omitempty"`
	Index int    `json:"index,omitempty"`
	Total int    `json:"total,omitempty"`
	Unit  []byte `json:"unit,omitempty"`
	// Err is the failure message (retry/fail records).
	Err string `json:"err,omitempty"`
	// Trace is the job's W3C traceparent (submit records, when tracing is
	// on), so a replayed job rejoins the trace it was born under and the
	// resumed attempts land on the same distributed timeline.
	Trace string `json:"trace,omitempty"`
}

// Hook observes and may veto journal I/O; the chaos harness injects write
// errors and slow-I/O stalls through it. It is called with "write" before
// each frame write and "sync" before each fsync; a non-nil return aborts
// that operation with the hook's error. A nil Hook is a no-op.
type Hook func(op string) error

// maxPayload bounds one record's payload so a corrupt length field cannot
// make replay attempt a multi-gigabyte allocation. Checkpoint units are
// work-unit-sized (well under this), not campaign-sized.
const maxPayload = 64 << 20

const frameHeaderLen = 8

// ErrClosed is returned by Append after Close.
var ErrClosed = errors.New("journal: closed")

// Journal is an open, appendable job log. Append is safe for concurrent
// use; writers share batched fsyncs (group commit): every Append returns
// only after its record is synced, but concurrent appenders coalesce into
// a single Sync call.
type Journal struct {
	hook Hook

	mu     sync.Mutex
	cond   *sync.Cond
	f      *os.File
	closed bool

	writeSeq uint64 // frames written
	syncSeq  uint64 // frames known durable
	syncing  bool   // an fsync is in flight
}

// Options parameterize Open.
type Options struct {
	// Hook, when non-nil, intercepts writes and syncs (chaos injection).
	Hook Hook
}

// Open opens (creating if needed) the journal at path, replays its
// records, truncates any torn tail, and returns the journal positioned
// for appending plus the replayed records. The returned records are the
// longest valid prefix of the file; anything after the first damaged
// frame is discarded both from the result and from the file itself.
func Open(path string, opts Options) (*Journal, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: open %s: %w", path, err)
	}
	recs, good, err := ReadRecords(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: replay %s: %w", path, err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: stat %s: %w", path, err)
	}
	if info.Size() > good {
		// Torn or corrupt tail: drop it so the next append starts at a
		// clean frame boundary.
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: truncate torn tail of %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: sync after truncate %s: %w", path, err)
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: seek %s: %w", path, err)
	}
	j := &Journal{hook: opts.Hook, f: f}
	j.cond = sync.NewCond(&j.mu)
	return j, recs, nil
}

// ReadRecords decodes the longest valid frame prefix of r, returning the
// records, the byte offset where the valid prefix ends, and any error
// reading the underlying stream (decode failures are not errors: they end
// the prefix). It never panics on arbitrary input — the FuzzJournalReplay
// contract.
func ReadRecords(r io.Reader) ([]Record, int64, error) {
	var recs []Record
	var good int64
	header := make([]byte, frameHeaderLen)
	for {
		if _, err := io.ReadFull(r, header); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return recs, good, nil // clean end or torn header
			}
			return recs, good, err
		}
		n := binary.LittleEndian.Uint32(header[:4])
		crc := binary.LittleEndian.Uint32(header[4:])
		if n == 0 || n > maxPayload {
			return recs, good, nil // corrupt length: end of valid prefix
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return recs, good, nil // torn payload
			}
			return recs, good, err
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return recs, good, nil // torn or bit-rotted frame
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return recs, good, nil // valid frame, undecodable record
		}
		recs = append(recs, rec)
		good += int64(frameHeaderLen) + int64(n)
	}
}

// AppendFrame encodes rec into the journal's frame format, for building
// test fixtures and fuzz corpora with the same encoder Append uses.
func AppendFrame(dst []byte, rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return dst, fmt.Errorf("journal: encode record: %w", err)
	}
	var header [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(header[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(header[4:], crc32.ChecksumIEEE(payload))
	dst = append(dst, header[:]...)
	return append(dst, payload...), nil
}

// Append writes one record and returns once it is durable. Concurrent
// appenders share fsyncs: the caller whose record is already covered by
// an in-flight or completed sync never issues its own.
func (j *Journal) Append(rec Record) error {
	frame, err := AppendFrame(nil, rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return ErrClosed
	}
	if j.hook != nil {
		if err := j.hook("write"); err != nil {
			j.mu.Unlock()
			return fmt.Errorf("journal: write: %w", err)
		}
	}
	if _, err := j.f.Write(frame); err != nil {
		j.mu.Unlock()
		return fmt.Errorf("journal: write: %w", err)
	}
	j.writeSeq++
	seq := j.writeSeq
	j.mu.Unlock()
	return j.syncTo(seq)
}

// syncTo blocks until frames up to seq are durable, performing (or
// waiting out) the group-commit fsync that covers them.
func (j *Journal) syncTo(seq uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	for j.syncSeq < seq {
		if j.closed {
			return ErrClosed
		}
		if j.syncing {
			// Another appender's fsync is in flight; it may already cover
			// seq. Wait for it and re-check.
			j.cond.Wait()
			continue
		}
		j.syncing = true
		target := j.writeSeq
		var err error
		if j.hook != nil {
			err = j.hook("sync")
		}
		if err == nil {
			j.mu.Unlock()
			err = j.f.Sync()
			j.mu.Lock()
		}
		j.syncing = false
		if err == nil {
			j.syncSeq = target
		}
		j.cond.Broadcast()
		if err != nil {
			return fmt.Errorf("journal: sync: %w", err)
		}
	}
	return nil
}

// Close syncs and closes the journal. It is idempotent: second and later
// calls return nil without touching the file.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	f := j.f
	j.cond.Broadcast()
	j.mu.Unlock()
	syncErr := f.Sync()
	closeErr := f.Close()
	if syncErr != nil {
		return fmt.Errorf("journal: close sync: %w", syncErr)
	}
	return closeErr
}
