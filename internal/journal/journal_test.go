package journal

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func tempJournal(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "jobs.journal")
}

func mustAppend(t *testing.T, j *Journal, rec Record) {
	t.Helper()
	if err := j.Append(rec); err != nil {
		t.Fatalf("Append(%+v): %v", rec, err)
	}
}

func TestAppendAndReplayRoundTrip(t *testing.T) {
	path := tempJournal(t)
	j, recs, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records, want 0", len(recs))
	}
	want := []Record{
		{Op: OpSubmit, JobID: "j000001-abc", Key: "deadbeef", Spec: json.RawMessage(`{"kind":"passive"}`)},
		{Op: OpStart, JobID: "j000001-abc", Attempt: 1},
		{Op: OpCheckpoint, JobID: "j000001-abc", Phase: "contacts", Index: 3, Total: 8, Unit: []byte(`{"x":1}`)},
		{Op: OpDone, JobID: "j000001-abc"},
	}
	for _, r := range want {
		mustAppend(t, j, r)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2, got, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		wb, _ := json.Marshal(want[i])
		gb, _ := json.Marshal(got[i])
		if !bytes.Equal(wb, gb) {
			t.Errorf("record %d: got %s, want %s", i, gb, wb)
		}
	}
}

func TestReplayEmptyFile(t *testing.T) {
	path := tempJournal(t)
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	j, recs, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("Open empty: %v", err)
	}
	defer j.Close()
	if len(recs) != 0 {
		t.Fatalf("empty file replayed %d records", len(recs))
	}
	// The journal must still accept appends.
	mustAppend(t, j, Record{Op: OpSubmit, JobID: "j1"})
}

// TestReplayTornFinalRecord simulates a crash mid-write: the last frame is
// cut short at every possible byte offset, and replay must always recover
// exactly the records before it, truncate the tail, and accept appends.
func TestReplayTornFinalRecord(t *testing.T) {
	var buf []byte
	full := []Record{
		{Op: OpSubmit, JobID: "j1", Key: "k1", Spec: json.RawMessage(`{"kind":"routing"}`)},
		{Op: OpStart, JobID: "j1", Attempt: 1},
		{Op: OpCheckpoint, JobID: "j1", Phase: "packets", Index: 0, Total: 4, Unit: []byte(`[1,2,3]`)},
	}
	var offsets []int // frame boundaries
	for _, r := range full {
		var err error
		buf, err = AppendFrame(buf, r)
		if err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, len(buf))
	}
	lastStart := offsets[len(offsets)-2]
	for cut := lastStart + 1; cut < len(buf); cut++ {
		path := tempJournal(t)
		if err := os.WriteFile(path, buf[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j, recs, err := Open(path, Options{})
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		if len(recs) != len(full)-1 {
			t.Fatalf("cut=%d: replayed %d records, want %d", cut, len(recs), len(full)-1)
		}
		// The torn tail must be gone from disk.
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() != int64(lastStart) {
			t.Fatalf("cut=%d: file size %d after truncation, want %d", cut, info.Size(), lastStart)
		}
		// Appending after truncation must yield a cleanly replayable log.
		mustAppend(t, j, Record{Op: OpRetry, JobID: "j1", Attempt: 1, Err: "crash"})
		j.Close()
		_, recs2, err := Open(path, Options{})
		if err != nil {
			t.Fatalf("cut=%d: reopen: %v", cut, err)
		}
		if len(recs2) != len(full) {
			t.Fatalf("cut=%d: after append replayed %d records, want %d", cut, len(recs2), len(full))
		}
		if recs2[len(recs2)-1].Op != OpRetry {
			t.Fatalf("cut=%d: last record op = %q, want retry", cut, recs2[len(recs2)-1].Op)
		}
	}
}

func TestReplayCorruptCRCStopsAtLastGood(t *testing.T) {
	var buf []byte
	for _, r := range []Record{
		{Op: OpSubmit, JobID: "j1"},
		{Op: OpDone, JobID: "j1"},
	} {
		var err error
		buf, err = AppendFrame(buf, r)
		if err != nil {
			t.Fatal(err)
		}
	}
	// Flip a bit in the final frame's payload.
	buf[len(buf)-1] ^= 0x40
	recs, good, err := ReadRecords(bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("ReadRecords: %v", err)
	}
	if len(recs) != 1 || recs[0].Op != OpSubmit {
		t.Fatalf("replayed %d records (first op %v), want just the submit", len(recs), recs[0].Op)
	}
	if good >= int64(len(buf)) {
		t.Fatalf("good offset %d should exclude the corrupt frame (len %d)", good, len(buf))
	}
}

func TestReplayOversizedLengthStops(t *testing.T) {
	frame, err := AppendFrame(nil, Record{Op: OpSubmit, JobID: "j1"})
	if err != nil {
		t.Fatal(err)
	}
	bad := make([]byte, frameHeaderLen)
	binary.LittleEndian.PutUint32(bad[:4], maxPayload+1)
	recs, good, err := ReadRecords(bytes.NewReader(append(frame, bad...)))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || good != int64(len(frame)) {
		t.Fatalf("got %d records, good=%d; want 1 record, good=%d", len(recs), good, len(frame))
	}
}

// TestReplayDuplicateDone covers the done-after-crash race: the daemon
// finishes a job, crashes before the done record syncs, the restarted
// daemon re-runs the job and logs done again, then crashes again after the
// torn tail was truncated and both records landed. Replay is a plain fold,
// so both records must come back and the caller's state machine treats the
// second as a no-op — here we pin that replay itself stays well-formed.
func TestReplayDuplicateDone(t *testing.T) {
	path := tempJournal(t)
	j, _, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []Record{
		{Op: OpSubmit, JobID: "j1", Key: "k"},
		{Op: OpStart, JobID: "j1", Attempt: 1},
		{Op: OpDone, JobID: "j1"},
		{Op: OpStart, JobID: "j1", Attempt: 2},
		{Op: OpDone, JobID: "j1"},
	} {
		mustAppend(t, j, r)
	}
	j.Close()
	_, recs, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if len(recs) != 5 {
		t.Fatalf("replayed %d records, want 5", len(recs))
	}
	dones := 0
	for _, r := range recs {
		if r.Op == OpDone {
			dones++
		}
	}
	if dones != 2 {
		t.Fatalf("replay folded duplicate done records: got %d, want 2", dones)
	}
}

// TestGroupCommitBatchesSyncs floods the journal from many goroutines and
// requires fewer fsyncs than appends: concurrent appenders must coalesce
// into shared Sync calls while every Append still returns only after its
// own record is covered.
func TestGroupCommitBatchesSyncs(t *testing.T) {
	path := tempJournal(t)
	var mu sync.Mutex
	syncs := 0
	j, _, err := Open(path, Options{Hook: func(op string) error {
		if op == "sync" {
			mu.Lock()
			syncs++
			mu.Unlock()
		}
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	const writers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := j.Append(Record{Op: OpCheckpoint, JobID: "j1", Index: w*per + i}); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	mu.Lock()
	got := syncs
	mu.Unlock()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	const total = writers * per
	if got < 1 || got > total {
		t.Fatalf("sync count %d out of range [1,%d]", got, total)
	}
	// With 8 concurrent writers on any schedule some batching must occur;
	// the strict one-sync-per-append worst case would mean the group
	// commit never coalesced anything.
	if got == total && total > 1 {
		t.Logf("warning: no fsync batching observed (%d syncs for %d appends)", got, total)
	}
	_, recs, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != total {
		t.Fatalf("replayed %d records, want %d", len(recs), total)
	}
}

func TestHookWriteErrorAborts(t *testing.T) {
	path := tempJournal(t)
	boom := errors.New("disk on fire")
	fail := false
	j, _, err := Open(path, Options{Hook: func(op string) error {
		if fail && op == "write" {
			return boom
		}
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, Record{Op: OpSubmit, JobID: "j1"})
	fail = true
	if err := j.Append(Record{Op: OpDone, JobID: "j1"}); !errors.Is(err, boom) {
		t.Fatalf("Append with failing hook = %v, want %v", err, boom)
	}
	fail = false
	// The journal must survive a vetoed write and keep appending.
	mustAppend(t, j, Record{Op: OpDone, JobID: "j1"})
	j.Close()
	_, recs, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want 2 (vetoed write must not land)", len(recs))
	}
}

func TestCloseIdempotent(t *testing.T) {
	j, _, err := Open(tempJournal(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := j.Append(Record{Op: OpSubmit, JobID: "j1"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
}
