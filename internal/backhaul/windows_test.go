package backhaul

import (
	"testing"
	"time"

	"github.com/sinet-io/sinet/internal/constellation"
	"github.com/sinet-io/sinet/internal/orbit"
)

func tianqiProp(t *testing.T) *orbit.Propagator {
	t.Helper()
	c := constellation.Tianqi(epoch)
	p, err := orbit.NewPropagator(c.Sats[0])
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDownlinkWindowsStructure(t *testing.T) {
	g := TianqiGroundSegment()
	prop := tianqiProp(t)
	end := epoch.Add(24 * time.Hour)
	windows := g.DownlinkWindows(prop, epoch, end, time.Minute)
	if len(windows) == 0 {
		t.Fatal("a 49.97° Tianqi satellite must overfly China within a day")
	}
	for i, w := range windows {
		if !w.End.After(w.Start) {
			t.Errorf("window %d inverted", i)
		}
		if w.Start.Before(epoch) || w.End.After(end) {
			t.Errorf("window %d outside query range", i)
		}
		if i > 0 && !w.Start.After(windows[i-1].End) {
			t.Errorf("window %d overlaps previous", i)
		}
		// A pass over a continental ground segment lasts minutes to tens
		// of minutes, far below a full orbit.
		if w.Duration() > 45*time.Minute {
			t.Errorf("window %d lasts %v — implausibly long", i, w.Duration())
		}
	}
}

func TestDownlinkWindowsAgreeWithPassPredictor(t *testing.T) {
	// The cheap subpoint-stepping method must find downlink capability at
	// times when the precise pass predictor sees the satellite above the
	// mask over a station.
	g := TianqiGroundSegment()
	prop := tianqiProp(t)
	end := epoch.Add(12 * time.Hour)
	windows := g.DownlinkWindows(prop, epoch, end, time.Minute)
	if len(windows) == 0 {
		t.Skip("no windows in half a day")
	}
	pp := orbit.NewPassPredictor(prop)
	mid := windows[0].Start.Add(windows[0].Duration() / 2)
	// At the middle of a claimed window, at least one station must see
	// the satellite above (or near) the mask. The ground-distance proxy
	// is conservative within a degree or two.
	best := -1.0
	for _, st := range g.Stations {
		la, err := pp.LookAt(st, mid)
		if err != nil {
			continue
		}
		if la.ElevationDeg() > best {
			best = la.ElevationDeg()
		}
	}
	if best < 2 {
		t.Errorf("mid-window best elevation %.1f°, want near/above the 5° mask", best)
	}
}

func TestDownlinkWindowsDegenerate(t *testing.T) {
	g := TianqiGroundSegment()
	prop := tianqiProp(t)
	if w := g.DownlinkWindows(prop, epoch, epoch, time.Minute); w != nil {
		t.Error("empty range produced windows")
	}
	empty := GroundSegment{}
	if w := empty.DownlinkWindows(prop, epoch, epoch.Add(time.Hour), time.Minute); w != nil {
		t.Error("station-less segment produced windows")
	}
	// Zero step falls back to a minute.
	if w := g.DownlinkWindows(prop, epoch, epoch.Add(2*time.Hour), 0); w == nil {
		_ = w // may legitimately be empty in two hours; only must not hang
	}
}

func TestMaxGroundDistance(t *testing.T) {
	g := TianqiGroundSegment()
	if d := g.maxGroundDistanceKm(0); d != 0 {
		t.Errorf("zero altitude distance = %v", d)
	}
	d500 := g.maxGroundDistanceKm(500)
	d900 := g.maxGroundDistanceKm(900)
	if d500 <= 0 || d900 <= d500 {
		t.Errorf("ground distance not increasing: %v, %v", d500, d900)
	}
	// 5° mask at 860 km: λ ≈ 24°, ground distance ≈ 2700 km.
	d860 := g.maxGroundDistanceKm(860)
	if d860 < 2400 || d860 > 3000 {
		t.Errorf("860 km ground distance = %.0f km, want ≈2700", d860)
	}
}

func TestScheduleDrains(t *testing.T) {
	mk := func(startMin, durMin int) orbit.Window {
		return orbit.Window{
			Start: epoch.Add(time.Duration(startMin) * time.Minute),
			End:   epoch.Add(time.Duration(startMin+durMin) * time.Minute),
		}
	}
	windows := []orbit.Window{mk(0, 10), mk(30, 10), mk(200, 10), mk(230, 10)}
	drains := ScheduleDrains(windows, 90*time.Minute)
	// Drain at end of w0 (t=10); w1 end (t=40) is within 90 min → skipped;
	// w2 end (t=210) booked; w3 end (t=240) within 90 of 210 → skipped.
	if len(drains) != 2 {
		t.Fatalf("drains = %d, want 2 (%v)", len(drains), drains)
	}
	if !drains[0].Equal(epoch.Add(10 * time.Minute)) {
		t.Errorf("first drain at %v", drains[0])
	}
	if !drains[1].Equal(epoch.Add(210 * time.Minute)) {
		t.Errorf("second drain at %v", drains[1])
	}
	if got := ScheduleDrains(nil, time.Hour); got != nil {
		t.Error("empty windows produced drains")
	}
	// Zero gap books every window end.
	if got := ScheduleDrains(windows, 0); len(got) != len(windows) {
		t.Errorf("zero-gap drains = %d", len(got))
	}
}
