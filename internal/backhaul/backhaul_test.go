package backhaul

import (
	"testing"
	"time"

	"github.com/sinet-io/sinet/internal/constellation"
	"github.com/sinet-io/sinet/internal/orbit"
	"github.com/sinet-io/sinet/internal/sim"
)

var epoch = time.Date(2024, 10, 1, 0, 0, 0, 0, time.UTC)

func TestTianqiGroundSegmentShape(t *testing.T) {
	g := TianqiGroundSegment()
	if len(g.Stations) != 12 {
		t.Fatalf("stations = %d, want 12 (§2.3)", len(g.Stations))
	}
	// All stations are in China (rough bounding box).
	for i, st := range g.Stations {
		lat, lon := st.LatDeg(), st.LonDeg()
		if lat < 18 || lat > 54 || lon < 73 || lon > 135 {
			t.Errorf("station %d at (%.1f, %.1f) outside China", i, lat, lon)
		}
	}
	if g.DrainDuration <= 0 {
		t.Error("drain duration not positive")
	}
}

func TestNextDownlinkFound(t *testing.T) {
	g := TianqiGroundSegment()
	c := constellation.Tianqi(epoch)
	prop, err := orbit.NewPropagator(c.Sats[0])
	if err != nil {
		t.Fatal(err)
	}
	// A 49.97°-inclination satellite overflies China many times per day:
	// the next downlink must be within a few hours.
	at, ok, err := g.NextDownlink(prop, epoch, epoch.Add(24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("no downlink opportunity within a day")
	}
	if at.Before(epoch) {
		t.Error("downlink before the query time")
	}
	if at.Sub(epoch) > 6*time.Hour {
		t.Errorf("first downlink %v after query — too sparse for 12 stations", at.Sub(epoch))
	}
}

func TestNextDownlinkHorizonRespected(t *testing.T) {
	g := TianqiGroundSegment()
	c := constellation.Tianqi(epoch)
	prop, err := orbit.NewPropagator(c.Sats[0])
	if err != nil {
		t.Fatal(err)
	}
	// A one-minute horizon almost surely contains no pass start.
	if _, ok, err := g.NextDownlink(prop, epoch, epoch.Add(time.Minute)); err != nil {
		t.Fatal(err)
	} else if ok {
		t.Skip("rare alignment: a pass started in the first minute")
	}
}

func TestNextDownlinkUpSkipsDownedStations(t *testing.T) {
	g := TianqiGroundSegment()
	c := constellation.Tianqi(epoch)
	prop, err := orbit.NewPropagator(c.Sats[0])
	if err != nil {
		t.Fatal(err)
	}
	horizon := epoch.Add(24 * time.Hour)
	base, ok, err := g.NextDownlink(prop, epoch, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("no baseline downlink within a day")
	}
	// Every station down: no opportunity at all.
	if _, ok, err := g.NextDownlinkUp(prop, epoch, horizon, func(int, time.Time) bool { return false }); err != nil {
		t.Fatal(err)
	} else if ok {
		t.Fatal("downlink found with the whole ground segment down")
	}
	// Stations down until after the baseline pass: the next opportunity
	// must slip strictly past it.
	cutoff := base.Add(time.Minute)
	at, ok, err := g.NextDownlinkUp(prop, epoch, horizon, func(_ int, t time.Time) bool { return t.After(cutoff) })
	if err != nil {
		t.Fatal(err)
	}
	if ok && !at.After(cutoff) {
		t.Fatalf("downlink %v not after outage cutoff %v", at, cutoff)
	}
	if ok && !at.After(base) {
		t.Fatalf("outage did not delay the downlink: %v vs baseline %v", at, base)
	}
}

func TestDownlinkWindowsUpThinsWindows(t *testing.T) {
	g := TianqiGroundSegment()
	c := constellation.Tianqi(epoch)
	prop, err := orbit.NewPropagator(c.Sats[0])
	if err != nil {
		t.Fatal(err)
	}
	end := epoch.Add(24 * time.Hour)
	eph := orbit.NewEphemeris(prop, epoch, end, time.Minute)
	base := g.DownlinkWindows(eph, epoch, end, time.Minute)
	if len(base) == 0 {
		t.Fatal("no baseline downlink windows over a day")
	}
	var baseTotal time.Duration
	for _, w := range base {
		baseTotal += w.End.Sub(w.Start)
	}
	// All stations down: no windows.
	if got := g.DownlinkWindowsUp(eph, epoch, end, time.Minute, func(int, time.Time) bool { return false }); len(got) != 0 {
		t.Fatalf("windows survived a full ground-segment outage: %v", got)
	}
	// Half the stations down: coverage can only shrink.
	thinned := g.DownlinkWindowsUp(eph, epoch, end, time.Minute, func(i int, _ time.Time) bool { return i%2 == 0 })
	var thinTotal time.Duration
	for _, w := range thinned {
		thinTotal += w.End.Sub(w.Start)
	}
	if thinTotal > baseTotal {
		t.Fatalf("outages grew downlink coverage: %v > %v", thinTotal, baseTotal)
	}
	// Nil predicate is identical to the unrestricted call.
	same := g.DownlinkWindowsUp(eph, epoch, end, time.Minute, nil)
	if len(same) != len(base) {
		t.Fatalf("nil predicate changed the windows: %d vs %d", len(same), len(base))
	}
}

func TestDeliveryModel(t *testing.T) {
	m := NewDeliveryModel(sim.NewRNG(1, "deliver"))
	down := epoch.Add(2 * time.Hour)
	var total time.Duration
	const n = 2000
	for i := 0; i < n; i++ {
		at := m.DeliverAt(down)
		if !at.After(down) {
			t.Fatal("delivery not after downlink")
		}
		total += at.Sub(down)
	}
	mean := total / n
	// Exponential with 4-minute mean plus the internet hop.
	if mean < 3*time.Minute || mean > 5*time.Minute {
		t.Errorf("mean delivery latency = %v, want ≈4m12s", mean)
	}
}

func TestLTEBackhaulLatency(t *testing.T) {
	b := NewLTEBackhaul(sim.NewRNG(2, "lte"))
	rx := epoch
	var total time.Duration
	const n = 2000
	for i := 0; i < n; i++ {
		at := b.DeliverAt(rx)
		d := at.Sub(rx)
		if d < time.Millisecond {
			t.Fatal("LTE latency below clamp")
		}
		total += d
	}
	mean := total / n
	// LTE hop (~120 ms) plus the network/application-server processing
	// (mean 8 s) yields the paper's "0.2 minute" terrestrial latency.
	if mean < 4*time.Second || mean > 20*time.Second {
		t.Errorf("mean LTE+server latency = %v, want ≈8s (paper: 0.2 min)", mean)
	}
	// With server processing disabled the pure radio+LTE path is ms-scale.
	b.ServerProcessing = 0
	var radioOnly time.Duration
	for i := 0; i < n; i++ {
		radioOnly += b.DeliverAt(rx).Sub(rx)
	}
	if mean := radioOnly / n; mean < 80*time.Millisecond || mean > 200*time.Millisecond {
		t.Errorf("pure LTE latency = %v, want ≈120ms", mean)
	}
}

func TestLatencyScalesVsSatellite(t *testing.T) {
	// The structural reason for the paper's 643× latency gap: terrestrial
	// delivery is sub-second while satellite delivery waits for a ground
	// segment pass plus minutes of processing.
	lte := NewLTEBackhaul(sim.NewRNG(3, "lte"))
	dm := NewDeliveryModel(sim.NewRNG(3, "dc"))
	const n = 500
	var terr, sat time.Duration
	for i := 0; i < n; i++ {
		terr += lte.DeliverAt(epoch).Sub(epoch)
		sat += dm.DeliverAt(epoch).Sub(epoch)
	}
	if sat < 10*terr {
		t.Errorf("satellite delivery %v not ≫ terrestrial %v (means over %d)", sat/n, terr/n, n)
	}
}
