package backhaul

import (
	"testing"
	"time"

	"github.com/sinet-io/sinet/internal/constellation"
	"github.com/sinet-io/sinet/internal/orbit"
	"github.com/sinet-io/sinet/internal/sim"
)

var epoch = time.Date(2024, 10, 1, 0, 0, 0, 0, time.UTC)

func TestTianqiGroundSegmentShape(t *testing.T) {
	g := TianqiGroundSegment()
	if len(g.Stations) != 12 {
		t.Fatalf("stations = %d, want 12 (§2.3)", len(g.Stations))
	}
	// All stations are in China (rough bounding box).
	for i, st := range g.Stations {
		lat, lon := st.LatDeg(), st.LonDeg()
		if lat < 18 || lat > 54 || lon < 73 || lon > 135 {
			t.Errorf("station %d at (%.1f, %.1f) outside China", i, lat, lon)
		}
	}
	if g.DrainDuration <= 0 {
		t.Error("drain duration not positive")
	}
}

func TestNextDownlinkFound(t *testing.T) {
	g := TianqiGroundSegment()
	c := constellation.Tianqi(epoch)
	prop, err := orbit.NewPropagator(c.Sats[0])
	if err != nil {
		t.Fatal(err)
	}
	// A 49.97°-inclination satellite overflies China many times per day:
	// the next downlink must be within a few hours.
	at, ok := g.NextDownlink(prop, epoch, epoch.Add(24*time.Hour))
	if !ok {
		t.Fatal("no downlink opportunity within a day")
	}
	if at.Before(epoch) {
		t.Error("downlink before the query time")
	}
	if at.Sub(epoch) > 6*time.Hour {
		t.Errorf("first downlink %v after query — too sparse for 12 stations", at.Sub(epoch))
	}
}

func TestNextDownlinkHorizonRespected(t *testing.T) {
	g := TianqiGroundSegment()
	c := constellation.Tianqi(epoch)
	prop, err := orbit.NewPropagator(c.Sats[0])
	if err != nil {
		t.Fatal(err)
	}
	// A one-minute horizon almost surely contains no pass start.
	if _, ok := g.NextDownlink(prop, epoch, epoch.Add(time.Minute)); ok {
		t.Skip("rare alignment: a pass started in the first minute")
	}
}

func TestDeliveryModel(t *testing.T) {
	m := NewDeliveryModel(sim.NewRNG(1, "deliver"))
	down := epoch.Add(2 * time.Hour)
	var total time.Duration
	const n = 2000
	for i := 0; i < n; i++ {
		at := m.DeliverAt(down)
		if !at.After(down) {
			t.Fatal("delivery not after downlink")
		}
		total += at.Sub(down)
	}
	mean := total / n
	// Exponential with 4-minute mean plus the internet hop.
	if mean < 3*time.Minute || mean > 5*time.Minute {
		t.Errorf("mean delivery latency = %v, want ≈4m12s", mean)
	}
}

func TestLTEBackhaulLatency(t *testing.T) {
	b := NewLTEBackhaul(sim.NewRNG(2, "lte"))
	rx := epoch
	var total time.Duration
	const n = 2000
	for i := 0; i < n; i++ {
		at := b.DeliverAt(rx)
		d := at.Sub(rx)
		if d < time.Millisecond {
			t.Fatal("LTE latency below clamp")
		}
		total += d
	}
	mean := total / n
	// LTE hop (~120 ms) plus the network/application-server processing
	// (mean 8 s) yields the paper's "0.2 minute" terrestrial latency.
	if mean < 4*time.Second || mean > 20*time.Second {
		t.Errorf("mean LTE+server latency = %v, want ≈8s (paper: 0.2 min)", mean)
	}
	// With server processing disabled the pure radio+LTE path is ms-scale.
	b.ServerProcessing = 0
	var radioOnly time.Duration
	for i := 0; i < n; i++ {
		radioOnly += b.DeliverAt(rx).Sub(rx)
	}
	if mean := radioOnly / n; mean < 80*time.Millisecond || mean > 200*time.Millisecond {
		t.Errorf("pure LTE latency = %v, want ≈120ms", mean)
	}
}

func TestLatencyScalesVsSatellite(t *testing.T) {
	// The structural reason for the paper's 643× latency gap: terrestrial
	// delivery is sub-second while satellite delivery waits for a ground
	// segment pass plus minutes of processing.
	lte := NewLTEBackhaul(sim.NewRNG(3, "lte"))
	dm := NewDeliveryModel(sim.NewRNG(3, "dc"))
	const n = 500
	var terr, sat time.Duration
	for i := 0; i < n; i++ {
		terr += lte.DeliverAt(epoch).Sub(epoch)
		sat += dm.DeliverAt(epoch).Sub(epoch)
	}
	if sat < 10*terr {
		t.Errorf("satellite delivery %v not ≫ terrestrial %v (means over %d)", sat/n, terr/n, n)
	}
}
