// Package backhaul models the delivery segments behind the radio links:
// the operator's ground segment (Tianqi's 12 ground stations in China)
// that drains satellite store-and-forward buffers, the data-center
// forwarding hop to subscriber servers, and the LTE backhaul of the
// terrestrial baseline.
package backhaul

import (
	"math"
	"time"

	"github.com/sinet-io/sinet/internal/orbit"
	"github.com/sinet-io/sinet/internal/sim"
)

// GroundSegment is an operator's set of downlink ground stations.
type GroundSegment struct {
	Name     string
	Stations []orbit.Geodetic
	// MinElevationRad is the downlink dish mask (large dishes track well
	// above the horizon; 5° is typical).
	MinElevationRad float64
	// DrainDuration is how long a satellite needs over a station to flush
	// its buffer (session setup + downlink).
	DrainDuration time.Duration
}

// TianqiGroundSegment returns the 12-station Chinese ground segment (§2.3).
// Exact coordinates are not published; the stations are placed across
// China's typical teleport locations, which preserves the delivery-delay
// statistics (what matters is that downlink opportunities exist only over
// Chinese territory every fraction of an orbit).
func TianqiGroundSegment() GroundSegment {
	return GroundSegment{
		Name:            "Tianqi ground segment",
		MinElevationRad: 5 * 3.14159265358979 / 180,
		DrainDuration:   30 * time.Second,
		Stations: []orbit.Geodetic{
			orbit.NewGeodeticDeg(40.07, 116.60, 0.05), // Beijing
			orbit.NewGeodeticDeg(31.10, 121.20, 0.01), // Shanghai
			orbit.NewGeodeticDeg(23.16, 113.23, 0.02), // Guangzhou
			orbit.NewGeodeticDeg(30.67, 104.06, 0.5),  // Chengdu
			orbit.NewGeodeticDeg(43.83, 87.62, 0.9),   // Urumqi
			orbit.NewGeodeticDeg(38.49, 106.23, 1.1),  // Yinchuan
			orbit.NewGeodeticDeg(45.75, 126.65, 0.15), // Harbin
			orbit.NewGeodeticDeg(29.66, 91.13, 3.65),  // Lhasa
			orbit.NewGeodeticDeg(20.02, 110.35, 0.02), // Haikou
			orbit.NewGeodeticDeg(34.34, 108.94, 0.4),  // Xi'an
			orbit.NewGeodeticDeg(25.04, 102.72, 1.9),  // Kunming
			orbit.NewGeodeticDeg(36.06, 103.83, 1.5),  // Lanzhou
		},
	}
}

// NextDownlink returns the first time at or after `after` when the
// satellite rises above the segment's mask over any station, searching up
// to `horizon`. ok=false when no opportunity exists in the horizon. The
// per-station pass searches are independent, so they fan out across
// workers (each on its own propagator clone) and merge by scanning the
// station-indexed slots in order, which keeps the result deterministic.
// A worker failure (a panic in the propagator surfaces as an attributed
// error) is reported instead of crashing the fan-out.
func (g GroundSegment) NextDownlink(prop *orbit.Propagator, after, horizon time.Time) (time.Time, bool, error) {
	return g.NextDownlinkUp(prop, after, horizon, nil)
}

// NextDownlinkUp is NextDownlink restricted to stations that are up: a
// pass over station i counts only when up(i, AOS) is true at acquisition.
// A nil predicate treats every station as always up. This is how fault
// injection makes a downed drain station invisible to the operator's
// booking search.
func (g GroundSegment) NextDownlinkUp(prop *orbit.Propagator, after, horizon time.Time, up func(station int, at time.Time) bool) (time.Time, bool, error) {
	firsts := make([]time.Time, len(g.Stations))
	if err := sim.ForEach(len(g.Stations), func(i int) {
		pp := orbit.NewPassPredictor(prop.Clone())
		for _, pass := range pp.Passes(g.Stations[i], after, horizon, g.MinElevationRad) {
			if up != nil && !up(i, pass.AOS) {
				continue
			}
			firsts[i] = pass.AOS
			break
		}
	}); err != nil {
		return time.Time{}, false, err
	}
	best := time.Time{}
	found := false
	for _, t := range firsts {
		if t.IsZero() {
			continue
		}
		if !found || t.Before(best) {
			best = t
			found = true
		}
	}
	return best, found, nil
}

// DownlinkWindows returns the merged time windows within [start, end)
// during which the satellite can reach any station of the segment, using
// sub-satellite-point stepping (much cheaper than per-station pass
// prediction: one propagation per step instead of one per station). A
// window is a span where the ground distance to the nearest station is
// below the mask-limited horizon distance for the satellite's altitude.
//
// src may be a raw propagator or a shared Ephemeris; the stepping visits
// only instants of the form start + k·step, so an aligned ephemeris serves
// the whole sweep from its samples.
func (g GroundSegment) DownlinkWindows(src orbit.StateSource, start, end time.Time, step time.Duration) []orbit.Window {
	return g.DownlinkWindowsUp(src, start, end, step, nil)
}

// DownlinkWindowsUp is DownlinkWindows restricted to stations that are up:
// a station contributes reachability at instant t only when up(i, t) is
// true, so outages of the operator's teleports thin the downlink windows.
// A nil predicate treats every station as always up.
func (g GroundSegment) DownlinkWindowsUp(src orbit.StateSource, start, end time.Time, step time.Duration, up func(station int, at time.Time) bool) []orbit.Window {
	if !end.After(start) || len(g.Stations) == 0 {
		return nil
	}
	if step <= 0 {
		step = time.Minute
	}
	var windows []orbit.Window
	var open bool
	var winStart time.Time
	prev := start
	for t := start; t.Before(end); t = t.Add(step) {
		rECEF, _, err := src.PositionECEF(t)
		in := false
		if err == nil {
			sub := orbit.GeodeticFromECEF(rECEF)
			maxGround := g.maxGroundDistanceKm(sub.Alt)
			for i, st := range g.Stations {
				if up != nil && !up(i, t) {
					continue
				}
				if orbit.HaversineKm(sub, st) <= maxGround {
					in = true
					break
				}
			}
		}
		switch {
		case in && !open:
			open = true
			winStart = t
		case !in && open:
			open = false
			windows = append(windows, orbit.Window{Start: winStart, End: prev})
		}
		prev = t
	}
	if open {
		windows = append(windows, orbit.Window{Start: winStart, End: end})
	}
	return windows
}

// maxGroundDistanceKm returns the ground-track distance at which a
// satellite at altKm sits exactly at the segment's elevation mask.
func (g GroundSegment) maxGroundDistanceKm(altKm float64) float64 {
	const r = 6371.0
	if altKm <= 0 {
		return 0
	}
	eps := g.MinElevationRad
	lambda := math.Acos(r*math.Cos(eps)/(r+altKm)) - eps
	if lambda < 0 {
		return 0
	}
	return r * lambda
}

// ScheduleDrains selects the actual drain sessions from the available
// windows: a session is booked at the END of a contact window (the
// satellite dumps its store as it finishes the overflight), and operators
// space bookings at least minGap apart. Returns the drain times.
func ScheduleDrains(windows []orbit.Window, minGap time.Duration) []time.Time {
	var out []time.Time
	var last time.Time
	for _, w := range windows {
		at := w.End
		if !last.IsZero() && at.Before(last.Add(minGap)) {
			continue
		}
		out = append(out, at)
		last = at
	}
	return out
}

// DeliveryModel turns a downlink contact into subscriber arrival times.
type DeliveryModel struct {
	// ProcessingMean is the operator data-center ingestion/processing
	// latency before forwarding to subscribers. Commercial satellite IoT
	// backends batch; the paper measures ~minutes-scale delivery tails
	// beyond pure orbital waiting.
	ProcessingMean time.Duration
	// InternetLatency is the final hop to the subscriber server.
	InternetLatency time.Duration

	rng *sim.RNG
}

// NewDeliveryModel builds a model with the operator defaults.
func NewDeliveryModel(rng *sim.RNG) *DeliveryModel {
	return &DeliveryModel{
		ProcessingMean:  4 * time.Minute,
		InternetLatency: 200 * time.Millisecond,
		rng:             rng,
	}
}

// DeliverAt returns the subscriber arrival time for a packet drained at
// downlinkAt: drain + exponential processing + internet hop.
func (m *DeliveryModel) DeliverAt(downlinkAt time.Time) time.Time {
	proc := time.Duration(m.rng.Exponential(float64(m.ProcessingMean)))
	return downlinkAt.Add(proc).Add(m.InternetLatency)
}

// LTEBackhaul models the terrestrial gateway's LTE uplink to the Internet
// plus the LoRaWAN network/application-server processing behind it.
type LTEBackhaul struct {
	// BaseLatency is the typical LTE round-trip contribution.
	BaseLatency time.Duration
	// JitterSigma spreads individual deliveries.
	JitterSigma time.Duration
	// ServerProcessing is the mean network/application-server ingestion
	// delay (deduplication window, MQTT fan-out, application polling) —
	// what makes the paper's measured terrestrial latency "0.2 minutes"
	// rather than the bare millisecond-scale radio+LTE path.
	ServerProcessing time.Duration

	rng *sim.RNG
}

// NewLTEBackhaul builds the terrestrial backhaul model.
func NewLTEBackhaul(rng *sim.RNG) *LTEBackhaul {
	return &LTEBackhaul{
		BaseLatency:      120 * time.Millisecond,
		JitterSigma:      40 * time.Millisecond,
		ServerProcessing: 8 * time.Second,
		rng:              rng,
	}
}

// DeliverAt returns the server arrival time for a packet the gateway
// received at rxAt.
func (b *LTEBackhaul) DeliverAt(rxAt time.Time) time.Time {
	jitter := time.Duration(b.rng.Normal(0, float64(b.JitterSigma)))
	lat := b.BaseLatency + jitter
	if lat < time.Millisecond {
		lat = time.Millisecond
	}
	lat += time.Duration(b.rng.Exponential(float64(b.ServerProcessing)))
	return rxAt.Add(lat)
}
