// Package node models a battery-powered satellite IoT end device (the
// paper's "Tianqi node"): a sensor generating periodic readings into a
// local store-and-forward buffer, a beacon-gated uplink state machine with
// ACK-driven retransmissions, and an energy meter tracking the sleep/rx/tx
// duty cycle that Figure 6 measures.
package node

import (
	"fmt"
	"time"

	"github.com/sinet-io/sinet/internal/channel"
	"github.com/sinet-io/sinet/internal/energy"
	"github.com/sinet-io/sinet/internal/mac"
	"github.com/sinet-io/sinet/internal/orbit"
)

// Reading is one sensor sample waiting for uplink.
type Reading struct {
	SeqID        uint64
	PayloadBytes int
	GeneratedAt  time.Time
	// Attempts counts transmissions performed so far.
	Attempts int
	// UplinkedAt is when the satellite first decoded this reading (zero
	// until then). Retransmissions after this point are "unnecessary" in
	// the paper's Fig. 5b sense.
	UplinkedAt time.Time
	// AckedAt is when the node received an ACK (zero until then).
	AckedAt time.Time
}

// Node is one deployed satellite IoT end device.
type Node struct {
	ID       string
	Location orbit.Geodetic
	Antenna  channel.Antenna
	Policy   mac.RetxPolicy
	Meter    *energy.Meter

	// TxPowerDBm is the uplink transmit power (DtS requires maximum
	// output; the Tianqi node drives ~22 dBm into the whip).
	TxPowerDBm float64

	// queue holds readings not yet acknowledged or abandoned, FIFO.
	queue []*Reading

	// Counters.
	Generated int
	Delivered int // ACK received
	Abandoned int // retransmission budget exhausted
	nextSeq   uint64
}

// New creates a node at the given location.
func New(id string, loc orbit.Geodetic, ant channel.Antenna, policy mac.RetxPolicy, meter *energy.Meter) *Node {
	return &Node{
		ID:         id,
		Location:   loc,
		Antenna:    ant,
		Policy:     policy,
		Meter:      meter,
		TxPowerDBm: 22,
	}
}

// String implements fmt.Stringer.
func (n *Node) String() string {
	return fmt.Sprintf("node %s (queue %d, delivered %d/%d)", n.ID, len(n.queue), n.Delivered, n.Generated)
}

// Sense generates a new reading of payloadBytes at time at and queues it.
func (n *Node) Sense(at time.Time, payloadBytes int) *Reading {
	r := &Reading{
		SeqID:        n.nextSeq,
		PayloadBytes: payloadBytes,
		GeneratedAt:  at,
	}
	n.nextSeq++
	n.Generated++
	n.queue = append(n.queue, r)
	return r
}

// Pending reports whether any reading awaits uplink.
func (n *Node) Pending() bool { return len(n.queue) > 0 }

// QueueLen returns the number of buffered readings.
func (n *Node) QueueLen() int { return len(n.queue) }

// Head returns the oldest un-acknowledged reading, or nil.
func (n *Node) Head() *Reading {
	if len(n.queue) == 0 {
		return nil
	}
	return n.queue[0]
}

// CompleteHead resolves the head reading after an attempt cycle: acked
// marks delivery; otherwise the retransmission policy decides between
// retry (reading stays queued) and abandonment. It returns the action
// taken.
type Completion int

// Completion outcomes.
const (
	// KeepRetrying leaves the reading queued for the next beacon.
	KeepRetrying Completion = iota
	// DeliveredAck removes the reading: the ACK arrived.
	DeliveredAck
	// Abandon removes the reading: the retx budget is exhausted.
	Abandon
)

// String implements fmt.Stringer.
func (c Completion) String() string {
	switch c {
	case KeepRetrying:
		return "retry"
	case DeliveredAck:
		return "delivered"
	case Abandon:
		return "abandon"
	default:
		return fmt.Sprintf("Completion(%d)", int(c))
	}
}

// ResolveHead applies the outcome of the head reading's latest attempt.
func (n *Node) ResolveHead(acked bool, at time.Time) Completion {
	r := n.Head()
	if r == nil {
		return KeepRetrying
	}
	if acked {
		r.AckedAt = at
		n.queue = n.queue[1:]
		n.Delivered++
		return DeliveredAck
	}
	if !n.Policy.ShouldRetry(r.Attempts - 1) {
		n.queue = n.queue[1:]
		n.Abandoned++
		return Abandon
	}
	return KeepRetrying
}

// DropHead force-removes the head reading (used when a contact window
// closes with the budget exhausted elsewhere).
func (n *Node) DropHead() {
	if len(n.queue) > 0 {
		n.queue = n.queue[1:]
		n.Abandoned++
	}
}

// Queue returns the pending readings (oldest first). The slice is the
// node's own; callers must not mutate it.
func (n *Node) Queue() []*Reading { return n.queue }
