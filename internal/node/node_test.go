package node

import (
	"testing"
	"time"

	"github.com/sinet-io/sinet/internal/channel"
	"github.com/sinet-io/sinet/internal/energy"
	"github.com/sinet-io/sinet/internal/mac"
	"github.com/sinet-io/sinet/internal/orbit"
)

var t0 = time.Date(2025, 3, 1, 0, 0, 0, 0, time.UTC)

func testNode(policy mac.RetxPolicy) *Node {
	loc := orbit.NewGeodeticDeg(22.0, 101.0, 1.2)
	meter := energy.NewMeter(energy.TianqiProfile(), t0)
	return New("tq-1", loc, channel.FiveEighthsWave, policy, meter)
}

func TestSenseQueues(t *testing.T) {
	n := testNode(mac.DefaultRetxPolicy())
	if n.Pending() {
		t.Error("fresh node has pending data")
	}
	r1 := n.Sense(t0, 20)
	r2 := n.Sense(t0.Add(30*time.Minute), 20)
	if r1.SeqID == r2.SeqID {
		t.Error("sequence IDs not unique")
	}
	if n.QueueLen() != 2 || n.Generated != 2 {
		t.Errorf("queue=%d generated=%d", n.QueueLen(), n.Generated)
	}
	if n.Head() != r1 {
		t.Error("head is not the oldest reading")
	}
}

func TestResolveHeadAcked(t *testing.T) {
	n := testNode(mac.DefaultRetxPolicy())
	r := n.Sense(t0, 20)
	r.Attempts = 1
	got := n.ResolveHead(true, t0.Add(time.Minute))
	if got != DeliveredAck {
		t.Errorf("completion = %v", got)
	}
	if r.AckedAt.IsZero() {
		t.Error("AckedAt not set")
	}
	if n.Delivered != 1 || n.QueueLen() != 0 {
		t.Errorf("delivered=%d queue=%d", n.Delivered, n.QueueLen())
	}
}

func TestResolveHeadRetryThenAbandon(t *testing.T) {
	policy := mac.RetxPolicy{MaxRetx: 2, AckTimeout: time.Second}
	n := testNode(policy)
	r := n.Sense(t0, 20)

	// Attempts 1 and 2 fail: reading stays queued.
	for attempt := 1; attempt <= 2; attempt++ {
		r.Attempts = attempt
		if got := n.ResolveHead(false, t0.Add(time.Duration(attempt)*time.Minute)); got != KeepRetrying {
			t.Fatalf("attempt %d: completion = %v, want retry", attempt, got)
		}
		if n.QueueLen() != 1 {
			t.Fatalf("attempt %d: queue emptied prematurely", attempt)
		}
	}
	// Attempt 3 (the last allowed) fails: abandoned.
	r.Attempts = 3
	if got := n.ResolveHead(false, t0.Add(3*time.Minute)); got != Abandon {
		t.Fatalf("final completion = %v, want abandon", got)
	}
	if n.Abandoned != 1 || n.QueueLen() != 0 {
		t.Errorf("abandoned=%d queue=%d", n.Abandoned, n.QueueLen())
	}
}

func TestNoRetxAbandonsImmediately(t *testing.T) {
	n := testNode(mac.NoRetxPolicy())
	r := n.Sense(t0, 20)
	r.Attempts = 1
	if got := n.ResolveHead(false, t0.Add(time.Second)); got != Abandon {
		t.Errorf("no-retx completion = %v, want abandon", got)
	}
}

func TestResolveHeadEmptyQueue(t *testing.T) {
	n := testNode(mac.DefaultRetxPolicy())
	if got := n.ResolveHead(true, t0); got != KeepRetrying {
		t.Errorf("empty-queue resolve = %v", got)
	}
}

func TestDropHead(t *testing.T) {
	n := testNode(mac.DefaultRetxPolicy())
	n.Sense(t0, 20)
	n.Sense(t0.Add(time.Minute), 20)
	n.DropHead()
	if n.Abandoned != 1 || n.QueueLen() != 1 {
		t.Errorf("abandoned=%d queue=%d", n.Abandoned, n.QueueLen())
	}
	n.DropHead()
	n.DropHead() // empty: no-op
	if n.Abandoned != 2 {
		t.Errorf("abandoned=%d after draining", n.Abandoned)
	}
}

func TestFIFOOrderPreserved(t *testing.T) {
	n := testNode(mac.DefaultRetxPolicy())
	for i := 0; i < 5; i++ {
		n.Sense(t0.Add(time.Duration(i)*time.Minute), 20)
	}
	q := n.Queue()
	for i := 1; i < len(q); i++ {
		if q[i].SeqID <= q[i-1].SeqID {
			t.Fatal("queue not in generation order")
		}
	}
}

func TestCompletionString(t *testing.T) {
	if KeepRetrying.String() != "retry" || DeliveredAck.String() != "delivered" || Abandon.String() != "abandon" {
		t.Error("completion labels")
	}
	if Completion(9).String() != "Completion(9)" {
		t.Error("unknown completion label")
	}
	if testNode(mac.DefaultRetxPolicy()).String() == "" {
		t.Error("node String empty")
	}
}
