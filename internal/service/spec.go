// Package service is the campaign-serving layer behind cmd/sinetd: it
// turns the one-shot simulation library into long-lived infrastructure.
// Campaign requests arrive as JSON JobSpecs, are canonicalized and hashed
// into content-addressed ConfigKeys, executed on a bounded worker pool with
// admission control, and their results cached so identical submissions —
// concurrent or later — cost one simulation.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/sinet-io/sinet/internal/backhaul"
	"github.com/sinet-io/sinet/internal/channel"
	"github.com/sinet-io/sinet/internal/constellation"
	"github.com/sinet-io/sinet/internal/core"
	"github.com/sinet-io/sinet/internal/fault"
	"github.com/sinet-io/sinet/internal/groundstation"
	"github.com/sinet-io/sinet/internal/netgraph"
	"github.com/sinet-io/sinet/internal/orbit"
	"github.com/sinet-io/sinet/internal/sim"
)

// ErrBadSpec is the sentinel wrapped by every spec validation failure, so
// the HTTP layer can map the whole family to 400 with errors.Is.
var ErrBadSpec = errors.New("service: invalid job spec")

func specErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadSpec, fmt.Sprintf(format, args...))
}

// Job kinds accepted by the API.
const (
	KindPassive  = "passive"
	KindActive   = "active"
	KindCoverage = "coverage"
	KindBackhaul = "backhaul"
	KindRouting  = "routing"
)

// supportedKinds is the one list every kind-related error enumerates, so a
// newly added kind cannot be served but missing from the 400 message.
var supportedKinds = []string{KindPassive, KindActive, KindCoverage, KindBackhaul, KindRouting}

// Serving-side admission bounds: a daemon serving many clients must bound
// the work one request can demand. These are generous for every workload
// in EXPERIMENTS.md; campaigns beyond them belong in the offline CLIs.
const (
	maxDays      = 370
	maxLatitudes = 181
	maxNodes     = 256
	maxSweepLen  = 64
)

// Duration is a time.Duration that marshals as a Go duration string
// ("72h30m") and unmarshals from either that form or raw nanoseconds, so
// hand-written curl bodies and round-tripped JSON both parse.
type Duration time.Duration

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("service: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(data, &ns); err != nil {
		return fmt.Errorf("service: duration must be a string like \"30m\" or integer nanoseconds")
	}
	*d = Duration(ns)
	return nil
}

// JobSpec is one campaign request: a kind plus exactly the matching
// parameter section. The zero values of every section field mean "use the
// library default"; Normalize makes those defaults explicit so equal
// requests — however sparsely written — canonicalize to equal ConfigKeys.
type JobSpec struct {
	Kind     string        `json:"kind"`
	Passive  *PassiveSpec  `json:"passive,omitempty"`
	Active   *ActiveSpec   `json:"active,omitempty"`
	Coverage *CoverageSpec `json:"coverage,omitempty"`
	Backhaul *BackhaulSpec `json:"backhaul,omitempty"`
	Routing  *RoutingSpec  `json:"routing,omitempty"`
	// Shard, when set, marks this spec as one shard of its parent
	// campaign: Run computes only the shard's unit window and returns a
	// ShardResult of unit snapshots instead of the campaign result. The
	// clause participates in content addressing (the derived key is
	// "parent/shard/i-of-n") because a shard fragment must never alias
	// the full result. Normally authored by SplitSpec, not by clients.
	Shard *ShardSpec `json:"shard,omitempty"`
}

// WindowSpec is one maintenance window.
type WindowSpec struct {
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
}

// FaultSpec mirrors fault.Config in API form.
type FaultSpec struct {
	StationMTBF Duration     `json:"station_mtbf,omitempty"`
	StationMTTR Duration     `json:"station_mttr,omitempty"`
	DrainMTBF   Duration     `json:"drain_mtbf,omitempty"`
	DrainMTTR   Duration     `json:"drain_mttr,omitempty"`
	SatMTBF     Duration     `json:"sat_mtbf,omitempty"`
	SatMTTR     Duration     `json:"sat_mttr,omitempty"`
	LinkMTBF    Duration     `json:"link_mtbf,omitempty"`
	LinkMTTR    Duration     `json:"link_mttr,omitempty"`
	Maintenance []WindowSpec `json:"maintenance,omitempty"`
}

func (f *FaultSpec) config() *fault.Config {
	if f == nil {
		return nil
	}
	cfg := &fault.Config{
		StationMTBF: time.Duration(f.StationMTBF),
		StationMTTR: time.Duration(f.StationMTTR),
		DrainMTBF:   time.Duration(f.DrainMTBF),
		DrainMTTR:   time.Duration(f.DrainMTTR),
		SatMTBF:     time.Duration(f.SatMTBF),
		SatMTTR:     time.Duration(f.SatMTTR),
		LinkMTBF:    time.Duration(f.LinkMTBF),
		LinkMTTR:    time.Duration(f.LinkMTTR),
	}
	for _, w := range f.Maintenance {
		cfg.Maintenance = append(cfg.Maintenance, orbit.Window{Start: w.Start, End: w.End})
	}
	return cfg
}

// PassiveSpec parameterizes a §3.1 passive campaign.
type PassiveSpec struct {
	Seed            int64      `json:"seed"`
	Start           time.Time  `json:"start,omitempty"`
	Days            int        `json:"days,omitempty"`
	Sites           []string   `json:"sites,omitempty"`
	Constellations  []string   `json:"constellations,omitempty"`
	Scheduler       string     `json:"scheduler,omitempty"`
	MinElevationDeg float64    `json:"min_elevation_deg,omitempty"`
	CoarseStep      Duration   `json:"coarse_step,omitempty"`
	HonorSiteStart  bool       `json:"honor_site_start,omitempty"`
	Weather         string     `json:"weather,omitempty"`
	Faults          *FaultSpec `json:"faults,omitempty"`
}

// ActiveSpec parameterizes a §3.2 active campaign.
type ActiveSpec struct {
	Seed                         int64      `json:"seed"`
	Start                        time.Time  `json:"start,omitempty"`
	Days                         int        `json:"days,omitempty"`
	Nodes                        int        `json:"nodes,omitempty"`
	PayloadBytes                 int        `json:"payload_bytes,omitempty"`
	SensePeriod                  Duration   `json:"sense_period,omitempty"`
	MaxRetx                      int        `json:"max_retx,omitempty"`
	AckTimeout                   Duration   `json:"ack_timeout,omitempty"`
	AlignedPhases                bool       `json:"aligned_phases,omitempty"`
	SleepWhenIdle                bool       `json:"sleep_when_idle,omitempty"`
	ScheduleAwareMinElevationDeg float64    `json:"schedule_aware_min_elevation_deg,omitempty"`
	TxGateMarginDB               float64    `json:"tx_gate_margin_db,omitempty"`
	Antenna                      string     `json:"antenna,omitempty"`
	Constellation                string     `json:"constellation,omitempty"`
	Weather                      string     `json:"weather,omitempty"`
	Faults                       *FaultSpec `json:"faults,omitempty"`
}

// CoverageSpec parameterizes a theoretical coverage/revisit sweep.
type CoverageSpec struct {
	Constellation string    `json:"constellation,omitempty"`
	LatitudesDeg  []float64 `json:"latitudes_deg,omitempty"`
	Start         time.Time `json:"start,omitempty"`
	Days          int       `json:"days,omitempty"`
}

// RoutingSpec parameterizes a store-and-forward-vs-ISL-relay routing
// campaign over the time-varying network graph.
type RoutingSpec struct {
	Seed           int64      `json:"seed"`
	Start          time.Time  `json:"start,omitempty"`
	Days           int        `json:"days,omitempty"`
	Constellation  string     `json:"constellation,omitempty"`
	SnapshotStep   Duration   `json:"snapshot_step,omitempty"`
	MaxISLRangeKm  float64    `json:"max_isl_range_km,omitempty"`
	HopProcessing  Duration   `json:"hop_processing,omitempty"`
	PacketInterval Duration   `json:"packet_interval,omitempty"`
	Policy         string     `json:"policy,omitempty"`
	Faults         *FaultSpec `json:"faults,omitempty"`
}

// BackhaulSpec parameterizes a downlink-opportunity sweep over the
// operator's ground segment.
type BackhaulSpec struct {
	Constellation string    `json:"constellation,omitempty"`
	Start         time.Time `json:"start,omitempty"`
	Days          int       `json:"days,omitempty"`
	Step          Duration  `json:"step,omitempty"`
	MinDrainGap   Duration  `json:"min_drain_gap,omitempty"`
}

// BackhaulResult is a completed backhaul sweep: per satellite, the drain
// opportunities the ground segment offers over the span.
type BackhaulResult struct {
	Constellation string        `json:"constellation"`
	Start         time.Time     `json:"start"`
	Days          int           `json:"days"`
	Satellites    []SatBackhaul `json:"satellites"`
}

// SatBackhaul summarizes one satellite's downlink opportunities.
type SatBackhaul struct {
	NoradID      int           `json:"norad_id"`
	Name         string        `json:"name"`
	Windows      int           `json:"windows"`
	WindowTime   time.Duration `json:"window_time"`
	Drains       int           `json:"drains"`
	MeanDrainGap time.Duration `json:"mean_drain_gap"`
}

var constellationNames = []string{"Tianqi", "FOSSA", "PICO", "CSTP"}

func constellationByName(name string, epoch time.Time) (constellation.Constellation, error) {
	switch strings.ToLower(name) {
	case "tianqi":
		return constellation.Tianqi(epoch), nil
	case "fossa":
		return constellation.FOSSA(epoch), nil
	case "pico":
		return constellation.PICO(epoch), nil
	case "cstp":
		return constellation.CSTP(epoch), nil
	}
	return constellation.Constellation{}, specErr("unknown constellation %q (one of %s)", name, strings.Join(constellationNames, ", "))
}

func weatherProvider(name string) (core.WeatherProvider, error) {
	switch strings.ToLower(name) {
	case "":
		return nil, nil
	case "sunny":
		return core.ConstantWeather{State: channel.Sunny}, nil
	case "cloudy":
		return core.ConstantWeather{State: channel.Cloudy}, nil
	case "rainy":
		return core.ConstantWeather{State: channel.Rainy}, nil
	case "stormy":
		return core.ConstantWeather{State: channel.Stormy}, nil
	}
	return nil, specErr("unknown weather %q (sunny, cloudy, rainy, stormy, or empty for stochastic)", name)
}

// Normalize validates the spec and rewrites every defaulted field to its
// explicit value, the canonical form ConfigKey hashes. It is idempotent.
func (s *JobSpec) Normalize() error {
	sections := 0
	for _, present := range []bool{s.Passive != nil, s.Active != nil, s.Coverage != nil, s.Backhaul != nil, s.Routing != nil} {
		if present {
			sections++
		}
	}
	if sections > 1 {
		return specErr("exactly one parameter section may be set, got %d", sections)
	}
	var err error
	switch s.Kind {
	case KindPassive:
		if s.Passive == nil {
			s.Passive = &PassiveSpec{}
		}
		err = s.Passive.normalize()
	case KindActive:
		if s.Active == nil {
			s.Active = &ActiveSpec{}
		}
		err = s.Active.normalize()
	case KindCoverage:
		if s.Coverage == nil {
			s.Coverage = &CoverageSpec{}
		}
		err = s.Coverage.normalize()
	case KindBackhaul:
		if s.Backhaul == nil {
			s.Backhaul = &BackhaulSpec{}
		}
		err = s.Backhaul.normalize()
	case KindRouting:
		if s.Routing == nil {
			s.Routing = &RoutingSpec{}
		}
		err = s.Routing.normalize()
	case "":
		return specErr("kind is required (%s)", strings.Join(supportedKinds, ", "))
	default:
		return specErr("unknown kind %q (%s)", s.Kind, strings.Join(supportedKinds, ", "))
	}
	if err != nil {
		return err
	}
	return s.validateShard()
}

func checkDays(days int) error {
	if days < 0 {
		return specErr("days must be non-negative, got %d", days)
	}
	if days > maxDays {
		return specErr("days %d exceeds the serving limit %d", days, maxDays)
	}
	return nil
}

func (p *PassiveSpec) normalize() error {
	if err := checkDays(p.Days); err != nil {
		return err
	}
	if p.Days == 0 {
		p.Days = 1
	}
	if p.Start.IsZero() {
		p.Start = time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC)
	}
	p.Start = p.Start.UTC()
	if len(p.Sites) == 0 {
		p.Sites = []string{"HK", "SYD", "LDN", "PGH"}
	}
	for i, code := range p.Sites {
		code = strings.ToUpper(strings.TrimSpace(code))
		if _, ok := core.SiteByCode(code); !ok {
			return specErr("unknown site %q", p.Sites[i])
		}
		p.Sites[i] = code
	}
	if len(p.Constellations) == 0 {
		p.Constellations = append([]string(nil), constellationNames...)
	}
	for i, name := range p.Constellations {
		cons, err := constellationByName(name, p.Start)
		if err != nil {
			return err
		}
		p.Constellations[i] = cons.Name
	}
	switch strings.ToLower(p.Scheduler) {
	case "", "tracking":
		p.Scheduler = "tracking"
	case "roundrobin":
		p.Scheduler = "roundrobin"
	default:
		return specErr("unknown scheduler %q (tracking, roundrobin)", p.Scheduler)
	}
	if p.CoarseStep < 0 {
		return specErr("coarse_step must be non-negative, got %v", time.Duration(p.CoarseStep))
	}
	if p.CoarseStep == 0 {
		p.CoarseStep = Duration(60 * time.Second)
	}
	p.Weather = strings.ToLower(p.Weather)
	if _, err := weatherProvider(p.Weather); err != nil {
		return err
	}
	cfg, err := p.config()
	if err != nil {
		return err
	}
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	return nil
}

// config builds the core campaign config the spec denotes. Only Normalize-d
// specs build configs the campaign accepts.
func (p *PassiveSpec) config() (core.PassiveConfig, error) {
	cfg := core.PassiveConfig{
		Seed:            p.Seed,
		Start:           p.Start,
		Days:            p.Days,
		MinElevationRad: p.MinElevationDeg * deg2Rad,
		CoarseStep:      time.Duration(p.CoarseStep),
		HonorSiteStart:  p.HonorSiteStart,
		Faults:          p.Faults.config(),
	}
	for _, code := range p.Sites {
		site, ok := core.SiteByCode(code)
		if !ok {
			return cfg, specErr("unknown site %q", code)
		}
		cfg.Sites = append(cfg.Sites, site)
	}
	for _, name := range p.Constellations {
		cons, err := constellationByName(name, p.Start)
		if err != nil {
			return cfg, err
		}
		cfg.Constellations = append(cfg.Constellations, cons)
	}
	if p.Scheduler == "roundrobin" {
		var catalog []int
		for _, c := range cfg.Constellations {
			for _, sat := range c.Sats {
				catalog = append(catalog, sat.NoradID)
			}
		}
		cfg.Scheduler = groundstation.RoundRobinScheduler{Catalog: catalog, Slot: 10 * time.Minute}
	}
	w, err := weatherProvider(p.Weather)
	if err != nil {
		return cfg, err
	}
	cfg.Weather = w
	return cfg, nil
}

func (a *ActiveSpec) normalize() error {
	if err := checkDays(a.Days); err != nil {
		return err
	}
	if a.Days == 0 {
		a.Days = 1
	}
	if a.Start.IsZero() {
		a.Start = time.Date(2025, 3, 1, 0, 0, 0, 0, time.UTC)
	}
	a.Start = a.Start.UTC()
	if a.Nodes < 0 {
		return specErr("nodes must be non-negative, got %d", a.Nodes)
	}
	if a.Nodes > maxNodes {
		return specErr("nodes %d exceeds the serving limit %d", a.Nodes, maxNodes)
	}
	if a.Nodes == 0 {
		a.Nodes = 3
	}
	if a.PayloadBytes == 0 {
		a.PayloadBytes = 20
	}
	if a.SensePeriod == 0 {
		a.SensePeriod = Duration(30 * time.Minute)
	}
	if a.MaxRetx < 0 {
		return specErr("max_retx must be non-negative, got %d", a.MaxRetx)
	}
	if a.AckTimeout == 0 {
		a.AckTimeout = Duration(3 * time.Second)
	}
	switch strings.ToLower(a.Antenna) {
	case "", "fiveeighths", "5/8":
		a.Antenna = "fiveeighths"
	case "quarter", "1/4":
		a.Antenna = "quarter"
	default:
		return specErr("unknown antenna %q (quarter, fiveeighths)", a.Antenna)
	}
	if a.Constellation == "" {
		a.Constellation = "Tianqi"
	}
	cons, err := constellationByName(a.Constellation, a.Start)
	if err != nil {
		return err
	}
	a.Constellation = cons.Name
	a.Weather = strings.ToLower(a.Weather)
	if _, err := weatherProvider(a.Weather); err != nil {
		return err
	}
	cfg, err := a.config()
	if err != nil {
		return err
	}
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	return nil
}

func (a *ActiveSpec) config() (core.ActiveConfig, error) {
	cfg := core.ActiveConfig{
		Seed:                         a.Seed,
		Start:                        a.Start,
		Days:                         a.Days,
		Nodes:                        a.Nodes,
		PayloadBytes:                 a.PayloadBytes,
		SensePeriod:                  time.Duration(a.SensePeriod),
		AlignedPhases:                a.AlignedPhases,
		SleepWhenIdle:                a.SleepWhenIdle,
		ScheduleAwareMinElevationRad: a.ScheduleAwareMinElevationDeg * deg2Rad,
		TxGateMarginDB:               a.TxGateMarginDB,
		Faults:                       a.Faults.config(),
	}
	cfg.Policy.MaxRetx = a.MaxRetx
	cfg.Policy.AckTimeout = time.Duration(a.AckTimeout)
	if a.Antenna == "quarter" {
		cfg.NodeAntenna = channel.QuarterWave
	} else {
		cfg.NodeAntenna = channel.FiveEighthsWave
	}
	if !strings.EqualFold(a.Constellation, "Tianqi") {
		cons, err := constellationByName(a.Constellation, a.Start)
		if err != nil {
			return cfg, err
		}
		cfg.Constellation = &cons
	}
	w, err := weatherProvider(a.Weather)
	if err != nil {
		return cfg, err
	}
	cfg.Weather = w
	return cfg, nil
}

func (c *CoverageSpec) normalize() error {
	if err := checkDays(c.Days); err != nil {
		return err
	}
	if c.Days == 0 {
		c.Days = 1
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC)
	}
	c.Start = c.Start.UTC()
	if c.Constellation == "" {
		c.Constellation = "Tianqi"
	}
	cons, err := constellationByName(c.Constellation, c.Start)
	if err != nil {
		return err
	}
	c.Constellation = cons.Name
	if len(c.LatitudesDeg) == 0 {
		c.LatitudesDeg = []float64{-60, -45, -30, -15, 0, 15, 30, 45, 60}
	}
	if len(c.LatitudesDeg) > maxLatitudes {
		return specErr("latitudes_deg length %d exceeds the serving limit %d", len(c.LatitudesDeg), maxLatitudes)
	}
	for _, lat := range c.LatitudesDeg {
		if lat < -90 || lat > 90 || lat != lat {
			return specErr("latitude %v out of [-90, 90]", lat)
		}
	}
	return nil
}

func (r *RoutingSpec) normalize() error {
	if err := checkDays(r.Days); err != nil {
		return err
	}
	if r.Days == 0 {
		r.Days = 1
	}
	if r.Start.IsZero() {
		r.Start = time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC)
	}
	r.Start = r.Start.UTC()
	if r.Constellation == "" {
		r.Constellation = "Tianqi"
	}
	cons, err := constellationByName(r.Constellation, r.Start)
	if err != nil {
		return err
	}
	r.Constellation = cons.Name
	if r.SnapshotStep < 0 || r.HopProcessing < 0 || r.PacketInterval < 0 {
		return specErr("snapshot_step, hop_processing and packet_interval must be non-negative")
	}
	if r.SnapshotStep == 0 {
		r.SnapshotStep = Duration(netgraph.DefaultSnapshotStep)
	}
	if r.MaxISLRangeKm < 0 || r.MaxISLRangeKm != r.MaxISLRangeKm {
		return specErr("max_isl_range_km must be non-negative, got %v", r.MaxISLRangeKm)
	}
	if r.MaxISLRangeKm == 0 {
		r.MaxISLRangeKm = netgraph.DefaultMaxISLRangeKm
	}
	if r.HopProcessing == 0 {
		r.HopProcessing = Duration(netgraph.DefaultHopProcessing)
	}
	if r.PacketInterval == 0 {
		r.PacketInterval = Duration(30 * time.Minute)
	}
	switch strings.ToLower(r.Policy) {
	case "", core.PolicyCompare:
		r.Policy = core.PolicyCompare
	case core.PolicyStore:
		r.Policy = core.PolicyStore
	case core.PolicyRelay:
		r.Policy = core.PolicyRelay
	default:
		return specErr("unknown policy %q (%s, %s, %s)", r.Policy, core.PolicyStore, core.PolicyRelay, core.PolicyCompare)
	}
	cfg, err := r.config()
	if err != nil {
		return err
	}
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	return nil
}

func (r *RoutingSpec) config() (core.RoutingConfig, error) {
	cfg := core.RoutingConfig{
		Seed:           r.Seed,
		Start:          r.Start,
		Days:           r.Days,
		SnapshotStep:   time.Duration(r.SnapshotStep),
		MaxISLRangeKm:  r.MaxISLRangeKm,
		HopProcessing:  time.Duration(r.HopProcessing),
		PacketInterval: time.Duration(r.PacketInterval),
		Policy:         r.Policy,
		Faults:         r.Faults.config(),
	}
	if !strings.EqualFold(r.Constellation, "Tianqi") {
		cons, err := constellationByName(r.Constellation, r.Start)
		if err != nil {
			return cfg, err
		}
		cfg.Constellation = &cons
	}
	return cfg, nil
}

func (b *BackhaulSpec) normalize() error {
	if err := checkDays(b.Days); err != nil {
		return err
	}
	if b.Days == 0 {
		b.Days = 1
	}
	if b.Start.IsZero() {
		b.Start = time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC)
	}
	b.Start = b.Start.UTC()
	if b.Constellation == "" {
		b.Constellation = "Tianqi"
	}
	cons, err := constellationByName(b.Constellation, b.Start)
	if err != nil {
		return err
	}
	b.Constellation = cons.Name
	if b.Step < 0 || b.MinDrainGap < 0 {
		return specErr("step and min_drain_gap must be non-negative")
	}
	if b.Step == 0 {
		b.Step = Duration(time.Minute)
	}
	if b.MinDrainGap == 0 {
		b.MinDrainGap = Duration(150 * time.Minute)
	}
	return nil
}

const deg2Rad = 3.14159265358979323846 / 180

// Run executes the spec and returns its result struct — the value the
// serving layer marshals with MarshalResult. The spec must be Normalize-d.
// The RunContext hooks (all optional) observe the campaign's phases and
// thread checkpoint capture/resume through it; a cancelled context aborts
// the run with ctx.Err(). A shard sub-spec returns a *ShardResult of its
// window's unit snapshots instead of a campaign result.
func Run(ctx context.Context, spec *JobSpec, rc RunContext) (any, error) {
	if spec.Shard != nil {
		return runShard(ctx, spec, rc)
	}
	return runKind(ctx, spec, rc, nil)
}

// runKind dispatches a normalized spec to its campaign with the
// RunContext hooks — and, for a shard run, the unit window — threaded
// into the kind's config.
func runKind(ctx context.Context, spec *JobSpec, rc RunContext, shard *core.ShardWindow) (any, error) {
	switch spec.Kind {
	case KindPassive:
		cfg, err := spec.Passive.config()
		if err != nil {
			return nil, err
		}
		cfg.Progress = rc.Progress
		cfg.Checkpoint = rc.Checkpoint
		cfg.Resume = rc.Resume
		cfg.Shard = shard
		return core.RunPassiveCtx(ctx, cfg)
	case KindActive:
		cfg, err := spec.Active.config()
		if err != nil {
			return nil, err
		}
		cfg.Progress = rc.Progress
		cfg.Checkpoint = rc.Checkpoint
		cfg.Resume = rc.Resume
		cfg.Shard = shard
		return core.RunActiveCtx(ctx, cfg)
	case KindCoverage:
		c := spec.Coverage
		cons, err := constellationByName(c.Constellation, c.Start)
		if err != nil {
			return nil, err
		}
		return core.RevisitAnalysisOpts(ctx, cons, c.LatitudesDeg, c.Start, c.Days, core.CoverageOptions{
			Progress:   rc.Progress,
			Checkpoint: rc.Checkpoint,
			Resume:     rc.Resume,
			Shard:      shard,
		})
	case KindBackhaul:
		return runBackhaul(ctx, spec.Backhaul, rc, shard)
	case KindRouting:
		cfg, err := spec.Routing.config()
		if err != nil {
			return nil, err
		}
		cfg.Progress = rc.Progress
		cfg.Checkpoint = rc.Checkpoint
		cfg.Resume = rc.Resume
		cfg.Shard = shard
		return core.RunRoutingCtx(ctx, cfg)
	}
	return nil, specErr("unknown kind %q (%s)", spec.Kind, strings.Join(supportedKinds, ", "))
}

// runBackhaul sweeps the operator ground segment for each satellite's
// downlink opportunities: the serving-layer view of the store-and-forward
// drain capacity PR 1 fans out inside the active campaign. The per-sat
// results checkpoint under the "satellites" phase; the shared ephemeris
// grid always rebuilds (its samples are inputs, not outputs).
func runBackhaul(ctx context.Context, b *BackhaulSpec, rc RunContext, shard *core.ShardWindow) (*BackhaulResult, error) {
	cons, err := constellationByName(b.Constellation, b.Start)
	if err != nil {
		return nil, err
	}
	props, err := cons.Propagators()
	if err != nil {
		return nil, err
	}
	segment := backhaul.TianqiGroundSegment()
	end := b.Start.Add(time.Duration(b.Days) * 24 * time.Hour)

	res := &BackhaulResult{Constellation: cons.Name, Start: b.Start, Days: b.Days}
	res.Satellites = make([]SatBackhaul, len(props))
	// One shared struct-of-arrays grid: workers fill their own rows (no
	// races) and the 12-station window sweep reads the shared samples. The
	// propagation runs as its own phase so a resumed campaign still has
	// every row a restored satellite's neighbors would have filled.
	grid := orbit.NewEphemerisGrid(props, b.Start, end, orbit.EphemerisConfig{ScanStep: time.Duration(b.Step)})
	if err := sim.ForEachPhaseCtx(ctx, "ephemeris", len(props), func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		grid.Propagate(i)
		return nil
	}, rc.Progress.Phase("ephemeris")); err != nil {
		return nil, err
	}
	grid.Finish()
	if err := core.ForEachCheckpointed(ctx, "satellites", res.Satellites, shard, rc.Resume, rc.Checkpoint, rc.Progress, func(i int) (SatBackhaul, error) {
		if err := ctx.Err(); err != nil {
			return SatBackhaul{}, err
		}
		windows := segment.DownlinkWindows(grid.Sat(i), b.Start, end, time.Duration(b.Step))
		drains := backhaul.ScheduleDrains(windows, time.Duration(b.MinDrainGap))
		sat := SatBackhaul{
			NoradID: props[i].Elements().NoradID,
			Name:    props[i].Elements().Name,
			Windows: len(windows),
			Drains:  len(drains),
		}
		for _, w := range windows {
			sat.WindowTime += w.Duration()
		}
		if len(drains) > 1 {
			sat.MeanDrainGap = drains[len(drains)-1].Sub(drains[0]) / time.Duration(len(drains)-1)
		}
		return sat, nil
	}); err != nil {
		return nil, err
	}
	if shard != nil {
		// Shard run: the windowed units are with rc.Checkpoint; only the
		// merge node, holding every satellite, sorts and assembles.
		return res, nil
	}
	sort.Slice(res.Satellites, func(i, j int) bool { return res.Satellites[i].NoradID < res.Satellites[j].NoradID })
	return res, nil
}

// MarshalResult is the canonical result serialization: every path that
// produces result bytes — fresh run, cache fill, smoke-test golden — uses
// it, which is what makes "cached vs fresh" and "served vs direct library
// call" byte-identical comparisons meaningful.
func MarshalResult(v any) ([]byte, error) {
	return json.Marshal(v)
}
