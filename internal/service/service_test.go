package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// coverageSpec builds a distinct valid spec per variant; variants only
// change the content key, never the (fake) work performed.
func coverageSpec(days int) string {
	return fmt.Sprintf(`{"kind":"coverage","coverage":{"latitudes_deg":[0],"days":%d}}`, days)
}

// testEnv is one daemon under test: a Server with an injected runner behind
// a real HTTP listener.
type testEnv struct {
	svc *Server
	ts  *httptest.Server
}

func newTestEnv(t *testing.T, cfg Config) *testEnv {
	t.Helper()
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = svc.Shutdown(ctx)
	})
	return &testEnv{svc: svc, ts: ts}
}

func (e *testEnv) submit(t *testing.T, body string) (SubmitResponse, int) {
	t.Helper()
	resp, err := http.Post(e.ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out SubmitResponse
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("decode submit response %s: %v", data, err)
		}
	}
	return out, resp.StatusCode
}

func (e *testEnv) view(t *testing.T, id string) JobView {
	t.Helper()
	resp, err := http.Get(e.ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func (e *testEnv) result(t *testing.T, id string) ([]byte, int) {
	t.Helper()
	resp, err := http.Get(e.ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return data, resp.StatusCode
}

func (e *testEnv) awaitState(t *testing.T, id string, want State) JobView {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		v := e.view(t, id)
		if v.State == want {
			return v
		}
		if v.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("job %s is %s (err %q), want %s", id, v.State, v.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// gatedRunner blocks every execution until released, recording how many
// executions began. It lets tests hold jobs in the running state.
type gatedRunner struct {
	mu      sync.Mutex
	began   int
	release chan struct{}
	result  any
}

func newGatedRunner(result any) *gatedRunner {
	return &gatedRunner{release: make(chan struct{}), result: result}
}

func (g *gatedRunner) run(ctx context.Context, _ *JobSpec, _ RunContext) (any, error) {
	g.mu.Lock()
	g.began++
	g.mu.Unlock()
	select {
	case <-g.release:
		return g.result, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (g *gatedRunner) startedRuns() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.began
}

func TestConcurrentIdenticalSubmissionsRunOneSimulation(t *testing.T) {
	gate := newGatedRunner(map[string]int{"passes": 42})
	env := newTestEnv(t, Config{Workers: 2, QueueDepth: 8, CacheBytes: 1 << 20, Runner: gate.run})

	const clients = 4
	responses := make([]SubmitResponse, clients)
	var wg sync.WaitGroup
	wg.Add(clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			defer wg.Done()
			r, status := env.submit(t, coverageSpec(1))
			if status != http.StatusAccepted {
				t.Errorf("client %d: status %d", i, status)
			}
			responses[i] = r
		}(i)
	}
	wg.Wait()

	// Singleflight: every client shares one job ID, exactly one non-deduped.
	nonDeduped := 0
	for _, r := range responses {
		if r.ID != responses[0].ID {
			t.Fatalf("clients got different job IDs: %s vs %s", r.ID, responses[0].ID)
		}
		if !r.Deduped {
			nonDeduped++
		}
	}
	if nonDeduped != 1 {
		t.Fatalf("%d submissions created jobs, want exactly 1", nonDeduped)
	}

	close(gate.release)
	env.awaitState(t, responses[0].ID, StateDone)
	if got := gate.startedRuns(); got != 1 {
		t.Fatalf("runner executed %d times for %d identical clients, want 1", got, clients)
	}
	if sims := env.svc.Stats().Simulations; sims != 1 {
		t.Fatalf("stats report %d simulations, want 1", sims)
	}

	// Every client fetches the result; all byte-identical.
	first, status := env.result(t, responses[0].ID)
	if status != http.StatusOK {
		t.Fatalf("result status %d: %s", status, first)
	}
	for i := 1; i < clients; i++ {
		data, _ := env.result(t, responses[i].ID)
		if !bytes.Equal(first, data) {
			t.Fatalf("client %d result differs:\n%s\nvs\n%s", i, data, first)
		}
	}
}

func TestCacheHitServesIdenticalBytesWithoutRerun(t *testing.T) {
	gate := newGatedRunner([]string{"deterministic", "result"})
	env := newTestEnv(t, Config{Workers: 1, QueueDepth: 4, CacheBytes: 1 << 20, Runner: gate.run})
	close(gate.release) // run immediately

	r1, _ := env.submit(t, coverageSpec(2))
	env.awaitState(t, r1.ID, StateDone)
	fresh, _ := env.result(t, r1.ID)

	r2, status := env.submit(t, coverageSpec(2))
	if status != http.StatusAccepted {
		t.Fatalf("resubmit status %d", status)
	}
	if r2.ID == r1.ID {
		t.Fatal("cache hit should mint a new job, not resurrect the old one")
	}
	v := env.view(t, r2.ID)
	if v.State != StateDone || !v.Cached {
		t.Fatalf("cache-hit job is %s cached=%v, want done cached=true", v.State, v.Cached)
	}
	cached, _ := env.result(t, r2.ID)
	if !bytes.Equal(fresh, cached) {
		t.Fatalf("cached result differs from fresh:\n%s\nvs\n%s", cached, fresh)
	}
	if got := gate.startedRuns(); got != 1 {
		t.Fatalf("runner executed %d times, want 1 (second submission must be a cache hit)", got)
	}
}

func TestCancelMidRunFreesTheWorker(t *testing.T) {
	gate := newGatedRunner(nil)
	env := newTestEnv(t, Config{Workers: 1, QueueDepth: 4, Runner: gate.run})

	r1, _ := env.submit(t, coverageSpec(1))
	env.awaitState(t, r1.ID, StateRunning)

	req, _ := http.NewRequest(http.MethodDelete, env.ts.URL+"/v1/jobs/"+r1.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
	v := env.awaitState(t, r1.ID, StateCanceled)
	if v.Error != context.Canceled.Error() {
		t.Fatalf("canceled job error = %q", v.Error)
	}
	if _, status := env.result(t, r1.ID); status != http.StatusConflict {
		t.Fatalf("result of canceled job returned %d, want 409", status)
	}

	// The sole worker must be free again: an identical resubmission gets a
	// fresh execution (the canceled job was dropped from the dedup index)...
	r2, status := env.submit(t, coverageSpec(1))
	if status != http.StatusAccepted {
		t.Fatalf("resubmit after cancel: status %d", status)
	}
	if r2.Deduped {
		t.Fatal("resubmission attached to the canceled job")
	}
	// ...and it reaches running on that worker, then completes once the
	// gate opens — proving the worker survived the cancel.
	env.awaitState(t, r2.ID, StateRunning)
	close(gate.release)
	env.awaitState(t, r2.ID, StateDone)
}

func TestCancelQueuedJobNeverRuns(t *testing.T) {
	gate := newGatedRunner(nil)
	env := newTestEnv(t, Config{Workers: 1, QueueDepth: 4, Runner: gate.run})

	blocker, _ := env.submit(t, coverageSpec(1))
	env.awaitState(t, blocker.ID, StateRunning)
	queued, _ := env.submit(t, coverageSpec(2))
	if got := env.view(t, queued.ID).State; got != StateQueued {
		t.Fatalf("second job is %s, want queued behind the single worker", got)
	}

	if _, ok := env.svc.Cancel(queued.ID); !ok {
		t.Fatal("cancel of queued job failed")
	}
	env.awaitState(t, queued.ID, StateCanceled)

	close(gate.release)
	env.awaitState(t, blocker.ID, StateDone)
	if got := gate.startedRuns(); got != 1 {
		t.Fatalf("runner began %d executions; the canceled queued job must never run", got)
	}
}

func TestFullQueueBackpressureKeepsHealthz200(t *testing.T) {
	gate := newGatedRunner(nil)
	defer close(gate.release)
	env := newTestEnv(t, Config{Workers: 1, QueueDepth: 1, Runner: gate.run})

	running, _ := env.submit(t, coverageSpec(1))
	env.awaitState(t, running.ID, StateRunning)
	if _, status := env.submit(t, coverageSpec(2)); status != http.StatusAccepted {
		t.Fatalf("queueing submission: status %d", status)
	}

	// Queue is now full: worker busy + one queued. The next distinct spec
	// must be refused with 429 and a Retry-After hint.
	resp, err := http.Post(env.ts.URL+"/v1/jobs", "application/json", strings.NewReader(coverageSpec(3)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue returned %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After header")
	}

	// Backpressure is not unhealthiness: liveness stays 200.
	hz, err := http.Get(env.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz under backpressure returned %d, want 200", hz.StatusCode)
	}

	// A submission identical to an in-flight job still dedups — no queue
	// slot needed, so it succeeds even while the queue is full.
	dup, status := env.submit(t, coverageSpec(1))
	if status != http.StatusAccepted || !dup.Deduped {
		t.Fatalf("identical submission under backpressure: status %d deduped %v", status, dup.Deduped)
	}
}

func TestGracefulShutdownDrainsAndRefusesNewWork(t *testing.T) {
	gate := newGatedRunner(nil)
	env := newTestEnv(t, Config{Workers: 1, QueueDepth: 4, Runner: gate.run})

	running, _ := env.submit(t, coverageSpec(1))
	env.awaitState(t, running.ID, StateRunning)
	queued, _ := env.submit(t, coverageSpec(2))

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := env.svc.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// The running campaign observed context cancellation (the gated runner
	// returns ctx.Err()) and unwound to canceled; the queued one never ran.
	if got := env.view(t, running.ID).State; got != StateCanceled {
		t.Fatalf("running job ended %s, want canceled", got)
	}
	if got := env.view(t, queued.ID).State; got != StateCanceled {
		t.Fatalf("queued job ended %s, want canceled", got)
	}
	if got := gate.startedRuns(); got != 1 {
		t.Fatalf("runner began %d executions, want 1", got)
	}

	// New work is refused with 503 while existing state stays queryable.
	resp, err := http.Post(env.ts.URL+"/v1/jobs", "application/json", strings.NewReader(coverageSpec(3)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining returned %d, want 503", resp.StatusCode)
	}
	hz, err := http.Get(env.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]string
	_ = json.NewDecoder(hz.Body).Decode(&health)
	hz.Body.Close()
	if health["status"] != "draining" {
		t.Fatalf("healthz status %q during drain", health["status"])
	}
}

func TestBadSubmissionsAreRejected(t *testing.T) {
	env := newTestEnv(t, Config{Workers: 1, QueueDepth: 1, Runner: newGatedRunner(nil).run})
	cases := []struct {
		name, body string
		want       int
	}{
		{"malformed JSON", "{", http.StatusBadRequest},
		{"unknown field", `{"kind":"coverage","coverage":{"altitude":7}}`, http.StatusBadRequest},
		{"unknown kind", `{"kind":"teleport"}`, http.StatusBadRequest},
		{"bad site", `{"kind":"passive","passive":{"sites":["ATLANTIS"]}}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if _, status := env.submit(t, tc.body); status != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, status, tc.want)
		}
	}
	if _, status := env.result(t, "j999999-nope"); status != http.StatusNotFound {
		t.Errorf("unknown job result: status %d, want 404", status)
	}
}

// progressRunner emits a fixed progress sequence once allowed to, then
// returns. It coordinates with the SSE test so no event can be dropped.
func TestSSEStreamsProgressAndTerminalState(t *testing.T) {
	proceed := make(chan struct{})
	runner := func(ctx context.Context, _ *JobSpec, rc RunContext) (any, error) {
		<-proceed
		for i := 1; i <= 3; i++ {
			rc.Progress("contacts", i, 3)
		}
		return "done-result", nil
	}
	env := newTestEnv(t, Config{Workers: 1, QueueDepth: 4, Runner: runner})

	r, _ := env.submit(t, coverageSpec(1))
	resp, err := http.Get(env.ts.URL + "/v1/jobs/" + r.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	var events []Event
	scanner := bufio.NewScanner(resp.Body)
	readEvent := func() Event {
		t.Helper()
		for scanner.Scan() {
			line := scanner.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var ev Event
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatalf("bad SSE payload %q: %v", line, err)
			}
			events = append(events, ev)
			return ev
		}
		t.Fatalf("SSE stream ended early after %d events (%v)", len(events), scanner.Err())
		return Event{}
	}

	// First frame is the snapshot; only then release the runner, so the
	// subscriber is guaranteed to be attached for every progress event.
	first := readEvent()
	if first.State != StateQueued && first.State != StateRunning {
		t.Fatalf("first event state %s", first.State)
	}
	close(proceed)

	for {
		ev := readEvent()
		if ev.State.Terminal() {
			break
		}
	}
	last := events[len(events)-1]
	if last.State != StateDone {
		t.Fatalf("terminal event state %s (error %q), want done", last.State, last.Error)
	}
	sawProgress := false
	lastCompleted := 0
	for _, ev := range events {
		if ev.Phase == "contacts" {
			sawProgress = true
			if ev.Completed <= lastCompleted {
				t.Fatalf("progress not increasing: %+v", events)
			}
			lastCompleted = ev.Completed
			if ev.Total != 3 {
				t.Fatalf("progress total %d, want 3", ev.Total)
			}
		}
	}
	if !sawProgress {
		t.Fatalf("no progress events in stream: %+v", events)
	}
}

func TestSSEOnTerminalJobSendsSingleSnapshot(t *testing.T) {
	gate := newGatedRunner("x")
	close(gate.release)
	env := newTestEnv(t, Config{Workers: 1, QueueDepth: 4, Runner: gate.run})
	r, _ := env.submit(t, coverageSpec(1))
	env.awaitState(t, r.ID, StateDone)

	resp, err := http.Get(env.ts.URL + "/v1/jobs/" + r.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body) // handler returns after the snapshot
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(data), "data: "); got != 1 {
		t.Fatalf("terminal-job SSE sent %d events, want exactly 1:\n%s", got, data)
	}
	if !strings.Contains(string(data), `"state":"done"`) {
		t.Fatalf("snapshot not terminal: %s", data)
	}
}

func TestStatsEndpoint(t *testing.T) {
	gate := newGatedRunner("x")
	close(gate.release)
	env := newTestEnv(t, Config{Workers: 2, QueueDepth: 4, CacheBytes: 1 << 20, Runner: gate.run})
	r, _ := env.submit(t, coverageSpec(1))
	env.awaitState(t, r.ID, StateDone)
	env.submit(t, coverageSpec(1)) // cache hit

	resp, err := http.Get(env.ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var s Stats
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.Workers != 2 || s.QueueCapacity != 4 {
		t.Fatalf("stats shape wrong: %+v", s)
	}
	if s.Simulations != 1 {
		t.Fatalf("simulations = %d, want 1 (second submission was a cache hit)", s.Simulations)
	}
	if s.Cache.Hits != 1 {
		t.Fatalf("cache hits = %d, want 1", s.Cache.Hits)
	}
	if s.JobsByState[StateDone] != 2 {
		t.Fatalf("jobs by state: %+v, want 2 done", s.JobsByState)
	}
}

// TestServeRealCoverageCampaign exercises the default runner end to end:
// a real (tiny) revisit sweep through the HTTP API.
func TestServeRealCoverageCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("propagates real orbits")
	}
	env := newTestEnv(t, Config{Workers: 1, QueueDepth: 4, CacheBytes: 1 << 20})
	r, status := env.submit(t, `{"kind":"coverage","coverage":{"constellation":"FOSSA","latitudes_deg":[0,45],"days":1}}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d", status)
	}
	env.awaitState(t, r.ID, StateDone)
	data, status := env.result(t, r.ID)
	if status != http.StatusOK {
		t.Fatalf("result status %d: %s", status, data)
	}
	var stats []map[string]any
	if err := json.Unmarshal(data, &stats); err != nil {
		t.Fatalf("result not a revisit-stats list: %v\n%s", err, data)
	}
	if len(stats) != 2 {
		t.Fatalf("got %d latitude rows, want 2", len(stats))
	}
}

// TestUnknownKindResponseEnumeratesKinds verifies the 400 body a client
// gets for an unsupported kind names every kind the daemon can serve —
// including routing — so the error is self-documenting.
func TestUnknownKindResponseEnumeratesKinds(t *testing.T) {
	env := newTestEnv(t, Config{Workers: 1, QueueDepth: 1, Runner: newGatedRunner(nil).run})
	resp, err := http.Post(env.ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"kind":"teleport"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	for _, kind := range supportedKinds {
		if !bytes.Contains(body, []byte(kind)) {
			t.Errorf("400 body %q does not list kind %q", body, kind)
		}
	}

	// A routing spec with a bad policy is rejected the same way.
	if _, status := env.submit(t, `{"kind":"routing","routing":{"policy":"teleport"}}`); status != http.StatusBadRequest {
		t.Errorf("bad routing policy: status %d, want 400", status)
	}
}

// TestServeRealRoutingCampaign runs a routing job through the daemon and
// checks the served bytes are identical to calling the library directly —
// the serving layer adds no serialization drift.
func TestServeRealRoutingCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("propagates real orbits")
	}
	env := newTestEnv(t, Config{Workers: 1, QueueDepth: 4, CacheBytes: 1 << 20})
	const body = `{"kind":"routing","routing":{"seed":9,"days":1,"policy":"compare"}}`
	r, status := env.submit(t, body)
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d", status)
	}
	env.awaitState(t, r.ID, StateDone)
	served, status := env.result(t, r.ID)
	if status != http.StatusOK {
		t.Fatalf("result status %d: %s", status, served)
	}

	var spec JobSpec
	if err := json.Unmarshal([]byte(body), &spec); err != nil {
		t.Fatal(err)
	}
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	direct, err := Run(context.Background(), &spec, RunContext{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := MarshalResult(direct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, want) {
		t.Fatalf("served routing bytes differ from the direct library call:\nserved %d bytes\ndirect %d bytes", len(served), len(want))
	}
}
