package service

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// shardGoldenSpecs is one small campaign per job kind, each large enough
// to split three ways.
var shardGoldenSpecs = map[string]string{
	"passive":  `{"kind":"passive","passive":{"seed":11,"sites":["HK","SYD","LDN"],"constellations":["Tianqi"]}}`,
	"active":   `{"kind":"active","active":{"seed":5,"nodes":2}}`,
	"coverage": `{"kind":"coverage","coverage":{"latitudes_deg":[-30,0,30,60]}}`,
	"backhaul": `{"kind":"backhaul"}`,
	"routing":  `{"kind":"routing","routing":{"seed":3,"packet_interval":"2h"}}`,
}

// TestShardedMergeByteIdentical is the golden pin for deterministic
// campaign splitting: for every job kind, splitting the spec into three
// shards, running each shard independently, folding their unit snapshots
// and re-running the parent with the fold as Resume must produce bytes
// identical to a plain unsharded run.
func TestShardedMergeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs ten full campaigns")
	}
	ctx := context.Background()
	for kind, body := range shardGoldenSpecs {
		kind, body := kind, body
		t.Run(kind, func(t *testing.T) {
			t.Parallel()
			var parent JobSpec
			if err := json.Unmarshal([]byte(body), &parent); err != nil {
				t.Fatal(err)
			}
			if err := parent.Normalize(); err != nil {
				t.Fatal(err)
			}
			direct, err := Run(ctx, &parent, RunContext{})
			if err != nil {
				t.Fatal(err)
			}
			golden, err := MarshalResult(direct)
			if err != nil {
				t.Fatal(err)
			}

			const n = 3
			shards, err := SplitSpec(&parent, n)
			if err != nil {
				t.Fatal(err)
			}
			blobs := make([][]byte, n)
			for i, sub := range shards {
				res, err := Run(ctx, sub, RunContext{})
				if err != nil {
					t.Fatalf("shard %d: %v", i, err)
				}
				sr, ok := res.(*ShardResult)
				if !ok {
					t.Fatalf("shard %d returned %T, want *ShardResult", i, res)
				}
				if sr.Units.Len() == 0 {
					t.Fatalf("shard %d captured no units", i)
				}
				if blobs[i], err = MarshalResult(res); err != nil {
					t.Fatal(err)
				}
			}
			folded, err := FoldShards(blobs)
			if err != nil {
				t.Fatal(err)
			}

			// The merge run must restore every unit: a compute on the merge
			// node means a shard window leaked a unit.
			merged, err := Run(ctx, &parent, RunContext{
				Resume: folded,
				Checkpoint: func(phase string, index, total int, unit []byte) {
					t.Errorf("merge run recomputed %s unit %d/%d", phase, index, total)
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			mergedBytes, err := MarshalResult(merged)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(mergedBytes, golden) {
				t.Fatalf("merged bytes (%d) differ from unsharded run (%d)", len(mergedBytes), len(golden))
			}
		})
	}
}

// TestShardRunsAreDeterministic pins that a shard run itself serializes
// reproducibly — shard results are content-addressable cache entries, so
// equal sub-specs must yield equal bytes.
func TestShardRunsAreDeterministic(t *testing.T) {
	ctx := context.Background()
	var parent JobSpec
	if err := json.Unmarshal([]byte(shardGoldenSpecs["coverage"]), &parent); err != nil {
		t.Fatal(err)
	}
	if err := parent.Normalize(); err != nil {
		t.Fatal(err)
	}
	shards, err := SplitSpec(&parent, 2)
	if err != nil {
		t.Fatal(err)
	}
	var runs [][]byte
	for i := 0; i < 2; i++ {
		res, err := Run(ctx, shards[1], RunContext{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := MarshalResult(res)
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, b)
	}
	if !bytes.Equal(runs[0], runs[1]) {
		t.Fatal("equal shard sub-specs produced different bytes")
	}
}

// TestShardResumeSeedsResult pins the crash path: units already in the
// job journal (rc.Resume) reappear in the shard result without being
// recomputed.
func TestShardResumeSeedsResult(t *testing.T) {
	ctx := context.Background()
	var parent JobSpec
	if err := json.Unmarshal([]byte(shardGoldenSpecs["coverage"]), &parent); err != nil {
		t.Fatal(err)
	}
	if err := parent.Normalize(); err != nil {
		t.Fatal(err)
	}
	shards, err := SplitSpec(&parent, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Full run of shard 0 captures its window's units.
	res, err := Run(ctx, shards[0], RunContext{})
	if err != nil {
		t.Fatal(err)
	}
	full := res.(*ShardResult)
	fullBytes, err := MarshalResult(full)
	if err != nil {
		t.Fatal(err)
	}
	// Resumed run: every unit restores, none recompute, same bytes.
	res2, err := Run(ctx, shards[0], RunContext{
		Resume: full.Units,
		Checkpoint: func(phase string, index, total int, unit []byte) {
			t.Errorf("resumed shard recomputed %s unit %d/%d", phase, index, total)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	resumedBytes, err := MarshalResult(res2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resumedBytes, fullBytes) {
		t.Fatal("resumed shard bytes differ from uninterrupted shard run")
	}
}

// TestShardKeys pins the derived-key contract: shards key under their
// parent's hash with a "/shard/i-of-n" suffix, stay distinct from the
// parent and each other, and abbreviate to a URL-path-safe Short form.
func TestShardKeys(t *testing.T) {
	var parent JobSpec
	if err := json.Unmarshal([]byte(shardGoldenSpecs["passive"]), &parent); err != nil {
		t.Fatal(err)
	}
	parentKey, err := ConfigKey(&parent)
	if err != nil {
		t.Fatal(err)
	}
	shards, err := SplitSpec(&parent, 3)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[Key]bool{parentKey: true}
	for i, sub := range shards {
		k, err := ConfigKey(sub)
		if err != nil {
			t.Fatal(err)
		}
		want := Key(string(parentKey) + "/shard/" + string(rune('0'+i)) + "-of-3")
		if k != want {
			t.Fatalf("shard %d key %q, want %q", i, k, want)
		}
		if seen[k] {
			t.Fatalf("shard %d key collides", i)
		}
		seen[k] = true
		if k.Parent() != parentKey {
			t.Fatalf("Parent() = %q, want %q", k.Parent(), parentKey)
		}
		short := k.Short()
		if strings.ContainsAny(short, "/ ?#%") {
			t.Fatalf("shard Short %q is not URL-path-safe", short)
		}
		if want := parentKey.Short() + "-s" + string(rune('0'+i)) + "x3"; short != want {
			t.Fatalf("shard Short %q, want %q", short, want)
		}
	}
	if parentKey.Parent() != parentKey {
		t.Fatal("unsharded key's Parent() should be itself")
	}
}

// TestShardSpecValidation exercises the shard clause's Normalize rules.
func TestShardSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		body string
		ok   bool
	}{
		{"count 1", `{"kind":"coverage","coverage":{"latitudes_deg":[0,30]},"shard":{"index":0,"count":1}}`, false},
		{"negative index", `{"kind":"coverage","coverage":{"latitudes_deg":[0,30]},"shard":{"index":-1,"count":2}}`, false},
		{"index beyond count", `{"kind":"coverage","coverage":{"latitudes_deg":[0,30]},"shard":{"index":2,"count":2}}`, false},
		{"count beyond units", `{"kind":"coverage","coverage":{"latitudes_deg":[0,30]},"shard":{"index":0,"count":3}}`, false},
		{"valid", `{"kind":"coverage","coverage":{"latitudes_deg":[0,30]},"shard":{"index":1,"count":2}}`, true},
	}
	for _, tc := range cases {
		var spec JobSpec
		if err := json.Unmarshal([]byte(tc.body), &spec); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		err := spec.Normalize()
		if tc.ok && err != nil {
			t.Fatalf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Fatalf("%s: expected a validation error", tc.name)
		}
	}
}

// TestShardCountPolicy pins the split-decision heuristic.
func TestShardCountPolicy(t *testing.T) {
	big := &JobSpec{Kind: KindBackhaul} // Tianqi: 22 satellite units
	if err := big.Normalize(); err != nil {
		t.Fatal(err)
	}
	if n := ShardCount(big, 8, 16); n != 3 {
		t.Fatalf("22 units at threshold 8 should split 3 ways, got %d", n)
	}
	if n := ShardCount(big, 8, 2); n != 2 {
		t.Fatalf("maxShards should cap the split, got %d", n)
	}
	if n := ShardCount(big, 22, 16); n != 0 {
		t.Fatalf("at-threshold specs should not split, got %d", n)
	}
	if n := ShardCount(big, 0, 16); n != 0 {
		t.Fatalf("threshold 0 disables splitting, got %d", n)
	}
	sub, err := SplitSpec(big, 2)
	if err != nil {
		t.Fatal(err)
	}
	if n := ShardCount(sub[0], 1, 16); n != 0 {
		t.Fatalf("a shard must never re-split, got %d", n)
	}
}
