package service

import (
	"strconv"

	"github.com/sinet-io/sinet/internal/obs"
)

// serverMetrics is the serving layer's telemetry, created once in New
// when a registry is configured. A nil *serverMetrics (no registry) makes
// every observe method a no-op, keeping the job path allocation-free.
type serverMetrics struct {
	admission   *obs.CounterVec   // HTTP submissions by response code
	dedup       *obs.Counter      // singleflight attachments
	simulations *obs.Counter      // campaigns handed to the runner
	finished    *obs.CounterVec   // terminal jobs by state
	campaign    *obs.HistogramVec // campaign wall time by kind
	sse         *obs.Gauge        // live event-stream subscribers
	replayed    *obs.Counter      // jobs re-admitted from the journal
	retries     *obs.Counter      // retry attempts scheduled
	journalErrs *obs.Counter      // failed journal appends
	stale       *obs.Counter      // attempts shot down by the watchdog
	peerFills   *obs.Counter      // jobs finished with peer-cache bytes
}

// newServerMetrics registers the serving metrics into r and samples the
// server's authoritative state (jobs map, queue channel, cache) through
// GaugeFuncs, so gauges can never drift from the structures they report
// on. Known label values are pre-created so a scrape taken before any
// traffic already exposes every series a dashboard will want.
func newServerMetrics(r *obs.Registry, s *Server) *serverMetrics {
	if r == nil {
		return nil
	}
	m := &serverMetrics{
		admission:   r.CounterVec("sinet_admission_total", "Job submissions over HTTP by response code.", "code"),
		dedup:       r.Counter("sinet_dedup_total", "Submissions attached to an identical in-flight job (singleflight)."),
		simulations: r.Counter("sinet_simulations_total", "Campaigns handed to the simulation runner."),
		finished:    r.CounterVec("sinet_jobs_finished_total", "Jobs reaching a terminal state, by state.", "state"),
		campaign:    r.HistogramVec("sinet_campaign_seconds", "Campaign wall time from worker pickup to terminal state, by kind.", "kind", obs.DurationBuckets),
		sse:         r.Gauge("sinet_sse_subscribers", "Open SSE progress streams."),
		replayed:    r.Counter("sinet_journal_replayed_jobs_total", "Incomplete jobs re-admitted from the journal at startup."),
		retries:     r.Counter("sinet_job_retries_total", "Job retry attempts scheduled after retryable failures."),
		journalErrs: r.Counter("sinet_journal_errors_total", "Journal appends that failed (durability degraded, job unaffected)."),
		stale:       r.Counter("sinet_job_heartbeat_stale_total", "Running attempts cancelled by the heartbeat watchdog."),
		peerFills:   r.Counter("sinet_peer_cache_fills_total", "Jobs finished with result bytes fetched from a peer's cache."),
	}
	for _, code := range []int{202, 400, 429, 500, 503} {
		m.admission.With(strconv.Itoa(code))
	}
	for _, state := range []State{StateDone, StateFailed, StateCanceled} {
		m.finished.With(string(state))
	}
	for _, kind := range supportedKinds {
		m.campaign.With(kind)
	}

	r.GaugeFunc("sinet_jobs_queued", "Jobs waiting for a worker.", func() float64 {
		return float64(s.countJobs(StateQueued))
	})
	r.GaugeFunc("sinet_jobs_running", "Jobs executing on a worker.", func() float64 {
		return float64(s.countJobs(StateRunning))
	})
	r.GaugeFunc("sinet_queue_depth", "Occupied slots in the admission queue.", func() float64 {
		return float64(len(s.queue))
	})
	r.GaugeFunc("sinet_queue_capacity", "Configured admission queue bound.", func() float64 {
		return float64(cap(s.queue))
	})
	s.cache.instrument(r)
	return m
}

// observeAdmission counts one HTTP submission outcome.
func (m *serverMetrics) observeAdmission(code int) {
	if m != nil {
		m.admission.With(strconv.Itoa(code)).Inc()
	}
}

// observeDedup counts one singleflight attachment.
func (m *serverMetrics) observeDedup() {
	if m != nil {
		m.dedup.Inc()
	}
}

// observeRun counts one campaign handed to the runner.
func (m *serverMetrics) observeRun() {
	if m != nil {
		m.simulations.Inc()
	}
}

// observeFinished counts one terminal job and, for worker-executed jobs
// (seconds > 0), its wall time under the campaign-kind histogram.
func (m *serverMetrics) observeFinished(kind string, state State, seconds float64) {
	if m == nil {
		return
	}
	m.finished.With(string(state)).Inc()
	if seconds > 0 {
		m.campaign.With(kind).Observe(seconds)
	}
}

// observeReplayed counts one job re-admitted from the journal.
func (m *serverMetrics) observeReplayed() {
	if m != nil {
		m.replayed.Inc()
	}
}

// observeRetry counts one scheduled retry attempt.
func (m *serverMetrics) observeRetry() {
	if m != nil {
		m.retries.Inc()
	}
}

// observeJournalError counts one failed journal append.
func (m *serverMetrics) observeJournalError() {
	if m != nil {
		m.journalErrs.Inc()
	}
}

// observeStale counts one watchdog-cancelled attempt.
func (m *serverMetrics) observeStale() {
	if m != nil {
		m.stale.Inc()
	}
}

// observePeerFill counts one job answered with peer-cache bytes instead
// of a local simulation.
func (m *serverMetrics) observePeerFill() {
	if m != nil {
		m.peerFills.Inc()
	}
}

// sseConnect tracks one subscriber for the duration of its stream; the
// returned func must be deferred.
func (m *serverMetrics) sseConnect() func() {
	if m == nil {
		return func() {}
	}
	m.sse.Inc()
	return m.sse.Dec
}
