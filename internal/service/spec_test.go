package service

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/sinet-io/sinet/internal/netgraph"
)

func TestNormalizeAppliesPassiveDefaults(t *testing.T) {
	spec := &JobSpec{Kind: KindPassive}
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	p := spec.Passive
	if p == nil {
		t.Fatal("Normalize did not create the passive section")
	}
	if p.Days != 1 {
		t.Errorf("Days = %d, want 1", p.Days)
	}
	if want := time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC); !p.Start.Equal(want) {
		t.Errorf("Start = %v, want %v", p.Start, want)
	}
	if len(p.Sites) != 4 || p.Sites[0] != "HK" {
		t.Errorf("Sites = %v, want the four continental sites", p.Sites)
	}
	if len(p.Constellations) != 4 {
		t.Errorf("Constellations = %v, want all four", p.Constellations)
	}
	if p.Scheduler != "tracking" {
		t.Errorf("Scheduler = %q, want tracking", p.Scheduler)
	}
	if time.Duration(p.CoarseStep) != 60*time.Second {
		t.Errorf("CoarseStep = %v, want 60s", time.Duration(p.CoarseStep))
	}
}

func TestNormalizeAppliesActiveDefaults(t *testing.T) {
	spec := &JobSpec{Kind: KindActive}
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	a := spec.Active
	if a.Nodes != 3 || a.PayloadBytes != 20 || a.Constellation != "Tianqi" || a.Antenna != "fiveeighths" {
		t.Errorf("active defaults wrong: %+v", a)
	}
	if time.Duration(a.SensePeriod) != 30*time.Minute || time.Duration(a.AckTimeout) != 3*time.Second {
		t.Errorf("active timing defaults wrong: %+v", a)
	}
}

func TestNormalizeAppliesCoverageAndBackhaulDefaults(t *testing.T) {
	cov := &JobSpec{Kind: KindCoverage}
	if err := cov.Normalize(); err != nil {
		t.Fatal(err)
	}
	if len(cov.Coverage.LatitudesDeg) != 9 || cov.Coverage.Constellation != "Tianqi" {
		t.Errorf("coverage defaults wrong: %+v", cov.Coverage)
	}
	bh := &JobSpec{Kind: KindBackhaul}
	if err := bh.Normalize(); err != nil {
		t.Fatal(err)
	}
	if time.Duration(bh.Backhaul.Step) != time.Minute || time.Duration(bh.Backhaul.MinDrainGap) != 150*time.Minute {
		t.Errorf("backhaul defaults wrong: %+v", bh.Backhaul)
	}
}

func TestNormalizeRejections(t *testing.T) {
	cases := []struct {
		name string
		spec *JobSpec
		want string
	}{
		{"missing kind", &JobSpec{}, "kind is required"},
		{"unknown kind", &JobSpec{Kind: "teleport"}, "unknown kind"},
		{"two sections", &JobSpec{Kind: KindPassive, Passive: &PassiveSpec{}, Coverage: &CoverageSpec{}}, "exactly one parameter section"},
		{"negative days", &JobSpec{Kind: KindPassive, Passive: &PassiveSpec{Days: -1}}, "days must be non-negative"},
		{"days over limit", &JobSpec{Kind: KindCoverage, Coverage: &CoverageSpec{Days: maxDays + 1}}, "exceeds the serving limit"},
		{"unknown site", &JobSpec{Kind: KindPassive, Passive: &PassiveSpec{Sites: []string{"ATLANTIS"}}}, "unknown site"},
		{"unknown constellation", &JobSpec{Kind: KindPassive, Passive: &PassiveSpec{Constellations: []string{"Starlink9000"}}}, "unknown constellation"},
		{"unknown scheduler", &JobSpec{Kind: KindPassive, Passive: &PassiveSpec{Scheduler: "psychic"}}, "unknown scheduler"},
		{"unknown weather", &JobSpec{Kind: KindPassive, Passive: &PassiveSpec{Weather: "hail"}}, "unknown weather"},
		{"negative coarse step", &JobSpec{Kind: KindPassive, Passive: &PassiveSpec{CoarseStep: Duration(-time.Second)}}, "coarse_step must be non-negative"},
		{"nodes over limit", &JobSpec{Kind: KindActive, Active: &ActiveSpec{Nodes: maxNodes + 1}}, "exceeds the serving limit"},
		{"negative retx", &JobSpec{Kind: KindActive, Active: &ActiveSpec{MaxRetx: -1}}, "max_retx must be non-negative"},
		{"unknown antenna", &JobSpec{Kind: KindActive, Active: &ActiveSpec{Antenna: "dish"}}, "unknown antenna"},
		{"latitude out of range", &JobSpec{Kind: KindCoverage, Coverage: &CoverageSpec{LatitudesDeg: []float64{91}}}, "out of [-90, 90]"},
		{"too many latitudes", &JobSpec{Kind: KindCoverage, Coverage: &CoverageSpec{LatitudesDeg: make([]float64, maxLatitudes+1)}}, "exceeds the serving limit"},
		{"negative backhaul step", &JobSpec{Kind: KindBackhaul, Backhaul: &BackhaulSpec{Step: Duration(-1)}}, "must be non-negative"},
	}
	for _, tc := range cases {
		err := tc.spec.Normalize()
		if err == nil {
			t.Errorf("%s: expected error", tc.name)
			continue
		}
		if !errors.Is(err, ErrBadSpec) {
			t.Errorf("%s: error %v does not wrap ErrBadSpec", tc.name, err)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestDurationJSONForms(t *testing.T) {
	var d Duration
	if err := json.Unmarshal([]byte(`"90m"`), &d); err != nil || time.Duration(d) != 90*time.Minute {
		t.Fatalf(`"90m" -> %v, %v`, time.Duration(d), err)
	}
	if err := json.Unmarshal([]byte(`5000000000`), &d); err != nil || time.Duration(d) != 5*time.Second {
		t.Fatalf(`5000000000 -> %v, %v`, time.Duration(d), err)
	}
	if err := json.Unmarshal([]byte(`"eleventy"`), &d); err == nil {
		t.Fatal("bad duration string accepted")
	}
	out, err := json.Marshal(Duration(90 * time.Minute))
	if err != nil || string(out) != `"1h30m0s"` {
		t.Fatalf("marshal = %s, %v", out, err)
	}
}

func TestSpecJSONRoundTripKeepsKey(t *testing.T) {
	spec := &JobSpec{Kind: KindPassive, Passive: &PassiveSpec{
		Seed:       42,
		Sites:      []string{"HK", "SYD"},
		CoarseStep: Duration(30 * time.Second),
		Faults:     &FaultSpec{StationMTBF: Duration(48 * time.Hour), StationMTTR: Duration(6 * time.Hour)},
	}}
	k1, err := ConfigKey(spec)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back JobSpec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	k2, err := ConfigKey(&back)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("JSON round-trip moved the key: %s -> %s", k1, k2)
	}
}

func TestNormalizeAppliesRoutingDefaults(t *testing.T) {
	spec := &JobSpec{Kind: KindRouting}
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	r := spec.Routing
	if r == nil {
		t.Fatal("Normalize did not create the routing section")
	}
	if r.Days != 1 || r.Constellation != "Tianqi" || r.Policy != "compare" {
		t.Errorf("routing defaults wrong: %+v", r)
	}
	if time.Duration(r.SnapshotStep) != netgraph.DefaultSnapshotStep {
		t.Errorf("SnapshotStep = %v", time.Duration(r.SnapshotStep))
	}
	if r.MaxISLRangeKm != netgraph.DefaultMaxISLRangeKm {
		t.Errorf("MaxISLRangeKm = %v", r.MaxISLRangeKm)
	}
	if time.Duration(r.HopProcessing) != netgraph.DefaultHopProcessing {
		t.Errorf("HopProcessing = %v", time.Duration(r.HopProcessing))
	}
	if time.Duration(r.PacketInterval) != 30*time.Minute {
		t.Errorf("PacketInterval = %v", time.Duration(r.PacketInterval))
	}

	// Normalize is idempotent: a second pass changes nothing, so sparse
	// and explicit-default routing specs share one content key.
	before := *r
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	if *spec.Routing != before {
		t.Errorf("second Normalize moved the spec: %+v -> %+v", before, *spec.Routing)
	}
	k1, err := ConfigKey(&JobSpec{Kind: KindRouting})
	if err != nil {
		t.Fatal(err)
	}
	k2, err := ConfigKey(&JobSpec{Kind: KindRouting, Routing: &RoutingSpec{Days: 1, Policy: "COMPARE"}})
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("sparse and explicit-default routing specs have different keys: %s vs %s", k1, k2)
	}
}

func TestNormalizeRoutingRejections(t *testing.T) {
	cases := []struct {
		name string
		spec *JobSpec
		want string
	}{
		{"unknown policy", &JobSpec{Kind: KindRouting, Routing: &RoutingSpec{Policy: "teleport"}}, "unknown policy"},
		{"days over limit", &JobSpec{Kind: KindRouting, Routing: &RoutingSpec{Days: maxDays + 1}}, "exceeds the serving limit"},
		{"negative snapshot step", &JobSpec{Kind: KindRouting, Routing: &RoutingSpec{SnapshotStep: Duration(-1)}}, "must be non-negative"},
		{"unknown constellation", &JobSpec{Kind: KindRouting, Routing: &RoutingSpec{Constellation: "Starlink9000"}}, "unknown constellation"},
		{"link pair half set", &JobSpec{Kind: KindRouting, Routing: &RoutingSpec{Faults: &FaultSpec{LinkMTBF: Duration(time.Hour)}}}, "link MTBF and MTTR"},
	}
	for _, tc := range cases {
		err := tc.spec.Normalize()
		if err == nil {
			t.Errorf("%s: expected error", tc.name)
			continue
		}
		if !errors.Is(err, ErrBadSpec) {
			t.Errorf("%s: error %v does not wrap ErrBadSpec", tc.name, err)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestUnknownKindErrorEnumeratesKinds(t *testing.T) {
	err := (&JobSpec{Kind: "teleport"}).Normalize()
	if err == nil {
		t.Fatal("unknown kind accepted")
	}
	for _, kind := range supportedKinds {
		if !strings.Contains(err.Error(), kind) {
			t.Errorf("unknown-kind error %q does not list %q", err, kind)
		}
	}
	if !strings.Contains(err.Error(), KindRouting) {
		t.Errorf("unknown-kind error %q does not list routing", err)
	}
}
