package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/sinet-io/sinet/internal/core"
	"github.com/sinet-io/sinet/internal/fault"
	"github.com/sinet-io/sinet/internal/journal"
	"github.com/sinet-io/sinet/internal/obs"
	"github.com/sinet-io/sinet/internal/orbit"
	"github.com/sinet-io/sinet/internal/sim"
)

// flakyRunner fails its first `failures` attempts with err, then returns
// result. It records every attempt.
type flakyRunner struct {
	mu       sync.Mutex
	calls    int
	failures int
	err      error
	result   any
}

func (f *flakyRunner) run(context.Context, *JobSpec, RunContext) (any, error) {
	f.mu.Lock()
	f.calls++
	n := f.calls
	f.mu.Unlock()
	if n <= f.failures {
		return nil, f.err
	}
	return f.result, nil
}

func (f *flakyRunner) attempts() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

func TestRetrySucceedsAfterTransientFailure(t *testing.T) {
	fr := &flakyRunner{failures: 1, err: errors.New("transient fault"), result: "ok"}
	env := newTestEnv(t, Config{
		Workers: 1, QueueDepth: 4,
		MaxRetries: 2, RetryBackoff: time.Millisecond,
		Runner: fr.run,
	})
	r, code := env.submit(t, coverageSpec(1))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	v := env.awaitState(t, r.ID, StateDone)
	if v.Error != "" {
		t.Fatalf("done job carries error %q", v.Error)
	}
	if got := fr.attempts(); got != 2 {
		t.Fatalf("runner ran %d times, want 2 (one failure, one success)", got)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	reg := obs.New()
	t.Cleanup(func() { orbit.SetMetrics(nil); sim.SetMetrics(nil) })
	fr := &flakyRunner{failures: 100, err: errors.New("persistent fault")}
	env := newTestEnv(t, Config{
		Workers: 1, QueueDepth: 4,
		MaxRetries: 2, RetryBackoff: time.Millisecond,
		Runner: fr.run, Metrics: reg,
	})
	r, _ := env.submit(t, coverageSpec(1))
	v := env.awaitState(t, r.ID, StateFailed)
	if !strings.Contains(v.Error, "retry budget of 2 exhausted") {
		t.Fatalf("error %q does not mention the exhausted budget", v.Error)
	}
	if got := fr.attempts(); got != 3 {
		t.Fatalf("runner ran %d times, want 3 (budget 2 = 3 attempts)", got)
	}
	if scrape := env.scrape(t); !strings.Contains(scrape, "sinet_job_retries_total 2") {
		t.Fatalf("scrape missing sinet_job_retries_total 2:\n%s", grepMetric(scrape, "sinet_job_retries"))
	}
}

func TestBadSpecErrorNotRetried(t *testing.T) {
	fr := &flakyRunner{failures: 100, err: fmt.Errorf("kind rejected: %w", ErrBadSpec)}
	env := newTestEnv(t, Config{
		Workers: 1, QueueDepth: 4,
		MaxRetries: 3, RetryBackoff: time.Millisecond,
		Runner: fr.run,
	})
	r, _ := env.submit(t, coverageSpec(1))
	v := env.awaitState(t, r.ID, StateFailed)
	if strings.Contains(v.Error, "retry budget") {
		t.Fatalf("non-retryable failure reported as budget exhaustion: %q", v.Error)
	}
	if got := fr.attempts(); got != 1 {
		t.Fatalf("non-retryable error ran %d times, want 1", got)
	}
}

func TestJobDeadlineBoundsAttempts(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	runner := func(ctx context.Context, _ *JobSpec, _ RunContext) (any, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		<-ctx.Done() // never heartbeats, never finishes: only the deadline ends it
		return nil, ctx.Err()
	}
	env := newTestEnv(t, Config{
		Workers: 1, QueueDepth: 4,
		JobDeadline: 30 * time.Millisecond,
		MaxRetries:  1, RetryBackoff: time.Millisecond,
		Runner: runner,
	})
	r, _ := env.submit(t, coverageSpec(1))
	v := env.awaitState(t, r.ID, StateFailed)
	if !strings.Contains(v.Error, "job deadline") {
		t.Fatalf("error %q does not mention the job deadline", v.Error)
	}
	mu.Lock()
	got := calls
	mu.Unlock()
	if got != 2 {
		t.Fatalf("deadline-bound job ran %d attempts, want 2", got)
	}
}

func TestWatchdogRetriesStalledAttempt(t *testing.T) {
	reg := obs.New()
	t.Cleanup(func() { orbit.SetMetrics(nil); sim.SetMetrics(nil) })
	var mu sync.Mutex
	calls := 0
	runner := func(ctx context.Context, _ *JobSpec, _ RunContext) (any, error) {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		if n == 1 {
			<-ctx.Done() // silent: no progress, no checkpoints — the watchdog must shoot it
			return nil, ctx.Err()
		}
		return "recovered", nil
	}
	env := newTestEnv(t, Config{
		Workers: 1, QueueDepth: 4,
		HeartbeatTimeout: 40 * time.Millisecond,
		MaxRetries:       2, RetryBackoff: time.Millisecond,
		Runner: runner, Metrics: reg,
	})
	r, _ := env.submit(t, coverageSpec(1))
	env.awaitState(t, r.ID, StateDone)
	mu.Lock()
	got := calls
	mu.Unlock()
	if got != 2 {
		t.Fatalf("stalled job ran %d attempts, want 2", got)
	}
	if scrape := env.scrape(t); !strings.Contains(scrape, "sinet_job_heartbeat_stale_total 1") {
		t.Fatalf("scrape missing sinet_job_heartbeat_stale_total 1:\n%s", grepMetric(scrape, "heartbeat_stale"))
	}
}

// TestPanicIsolatedAndRetried wires the chaos harness's panic injector
// into a campaign runner: the first attempt panics mid-"campaign", the
// worker survives, and the retry completes the job.
func TestPanicIsolatedAndRetried(t *testing.T) {
	boom := fault.PanicNth(1)
	var mu sync.Mutex
	calls := 0
	runner := func(context.Context, *JobSpec, RunContext) (any, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		boom()
		return "survived", nil
	}
	env := newTestEnv(t, Config{
		Workers: 1, QueueDepth: 4,
		MaxRetries: 1, RetryBackoff: time.Millisecond,
		Runner: runner,
	})
	r, _ := env.submit(t, coverageSpec(1))
	v := env.awaitState(t, r.ID, StateDone)
	if v.Error != "" {
		t.Fatalf("recovered job carries error %q", v.Error)
	}
	mu.Lock()
	got := calls
	mu.Unlock()
	if got != 2 {
		t.Fatalf("panicking job ran %d attempts, want 2", got)
	}
}

func TestPanicExhaustsBudgetWithoutKillingWorkers(t *testing.T) {
	runner := func(context.Context, *JobSpec, RunContext) (any, error) {
		panic("always")
	}
	env := newTestEnv(t, Config{
		Workers: 1, QueueDepth: 4,
		MaxRetries: 1, RetryBackoff: time.Millisecond,
		Runner: runner,
	})
	r, _ := env.submit(t, coverageSpec(1))
	v := env.awaitState(t, r.ID, StateFailed)
	if !strings.Contains(v.Error, "panicked") {
		t.Fatalf("error %q does not surface the panic", v.Error)
	}
	// The lone worker must still be alive to serve the next job.
	fr := &flakyRunner{result: "next"}
	env.svc.runner = fr.run
	r2, code := env.submit(t, coverageSpec(2))
	if code != http.StatusAccepted {
		t.Fatalf("post-panic submit: %d", code)
	}
	env.awaitState(t, r2.ID, StateDone)
}

func TestCancelWhileWaitingOutBackoff(t *testing.T) {
	fr := &flakyRunner{failures: 100, err: errors.New("always failing")}
	env := newTestEnv(t, Config{
		Workers: 1, QueueDepth: 4,
		MaxRetries: 10, RetryBackoff: 30 * time.Second, // parked in backoff long enough to cancel
		Runner: fr.run,
	})
	r, _ := env.submit(t, coverageSpec(1))
	j, ok := env.svc.Job(r.ID)
	if !ok {
		t.Fatal("job not registered")
	}
	// Wait until the first attempt failed and the job is parked in backoff.
	deadline := time.Now().Add(5 * time.Second)
	for j.Attempts() < 1 || j.State() != StateQueued {
		if time.Now().After(deadline) {
			t.Fatalf("job never parked in backoff (state %s, attempts %d)", j.State(), j.Attempts())
		}
		time.Sleep(2 * time.Millisecond)
	}
	req, _ := http.NewRequest(http.MethodDelete, env.ts.URL+"/v1/jobs/"+r.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	env.awaitState(t, r.ID, StateCanceled)
}

func TestShutdownIdempotent(t *testing.T) {
	gate := newGatedRunner("held")
	svc, err := New(Config{
		Workers: 1, QueueDepth: 4,
		JournalPath: filepath.Join(t.TempDir(), "jobs.journal"),
		Runner:      gate.run,
	})
	if err != nil {
		t.Fatal(err)
	}
	var spec JobSpec
	if err := json.Unmarshal([]byte(coverageSpec(1)), &spec); err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.Submit(&spec); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("first shutdown: %v", err)
	}
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
	if _, _, err := svc.Submit(&spec); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after shutdown: %v, want ErrDraining", err)
	}
}

// TestJournalRecoveryReadmitsIncompleteJobs hand-writes a journal the way
// a crashed daemon would have left it — one job mid-campaign with a saved
// checkpoint, one job already done — and verifies New replays it: the
// incomplete job restarts under its original ID with its checkpoint as the
// resume point, the finished one stays dead, and the ID sequence continues
// past every journaled job.
func TestJournalRecoveryReadmitsIncompleteJobs(t *testing.T) {
	reg := obs.New()
	t.Cleanup(func() { orbit.SetMetrics(nil); sim.SetMetrics(nil) })
	path := filepath.Join(t.TempDir(), "jobs.journal")

	mkSpec := func(days int) (*JobSpec, Key, []byte) {
		var spec JobSpec
		if err := json.Unmarshal([]byte(coverageSpec(days)), &spec); err != nil {
			t.Fatal(err)
		}
		key, err := ConfigKey(&spec)
		if err != nil {
			t.Fatal(err)
		}
		canonical, err := json.Marshal(&spec)
		if err != nil {
			t.Fatal(err)
		}
		return &spec, key, canonical
	}
	_, key1, spec1 := mkSpec(1)
	_, key2, spec2 := mkSpec(2)
	id1 := fmt.Sprintf("j%06d-%s", 7, key1.Short())
	id2 := fmt.Sprintf("j%06d-%s", 9, key2.Short())
	unit := []byte(`{"LatitudeDeg":0,"Passes":3}`)

	jnl, recs, err := journal.Open(path, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	for _, rec := range []journal.Record{
		{Op: journal.OpSubmit, JobID: id1, Key: string(key1), Spec: spec1},
		{Op: journal.OpStart, JobID: id1, Attempt: 1},
		{Op: journal.OpCheckpoint, JobID: id1, Phase: "latitudes", Index: 0, Total: 1, Unit: unit},
		{Op: journal.OpSubmit, JobID: id2, Key: string(key2), Spec: spec2},
		{Op: journal.OpStart, JobID: id2, Attempt: 1},
		{Op: journal.OpDone, JobID: id2, Attempt: 1},
	} {
		if err := jnl.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := jnl.Close(); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var resumed *core.Checkpoint
	runner := func(_ context.Context, _ *JobSpec, rc RunContext) (any, error) {
		mu.Lock()
		resumed = rc.Resume
		mu.Unlock()
		return "recovered result", nil
	}
	env := newTestEnv(t, Config{
		Workers: 1, QueueDepth: 4,
		JournalPath: path, Runner: runner, Metrics: reg,
	})

	// The replayed job completes under its pre-crash ID.
	env.awaitState(t, id1, StateDone)
	j, ok := env.svc.Job(id1)
	if !ok {
		t.Fatalf("replayed job %s not registered", id1)
	}
	if got := j.Attempts(); got != 2 {
		t.Fatalf("replayed job attempts = %d, want 2 (1 journaled + 1 live)", got)
	}
	mu.Lock()
	cp := resumed
	mu.Unlock()
	if cp == nil || cp.Len() != 1 {
		t.Fatalf("runner saw resume checkpoint %v, want the 1 journaled unit", cp)
	}
	if ps := cp.Phases["latitudes"]; ps == nil || string(ps.Units[0]) != string(unit) {
		t.Fatalf("resume checkpoint lost the journaled unit: %+v", cp.Phases)
	}
	// The terminal job stays dead.
	if _, ok := env.svc.Job(id2); ok {
		t.Fatalf("terminal job %s was re-admitted", id2)
	}
	// New IDs continue past every journaled sequence number.
	r, code := env.submit(t, coverageSpec(3))
	if code != http.StatusAccepted {
		t.Fatalf("post-recovery submit: %d", code)
	}
	if !strings.HasPrefix(r.ID, "j000010-") {
		t.Fatalf("post-recovery job ID %s, want sequence to resume at 10", r.ID)
	}
	if scrape := env.scrape(t); !strings.Contains(scrape, "sinet_journal_replayed_jobs_total 1") {
		t.Fatalf("scrape missing sinet_journal_replayed_jobs_total 1:\n%s", grepMetric(scrape, "replayed"))
	}
}

// TestJournalWriteErrorsDegradeDurabilityNotAvailability injects chaos
// into every journal write and sync: jobs must still run to completion,
// with the failures counted on /metrics.
func TestJournalWriteErrorsDegradeDurabilityNotAvailability(t *testing.T) {
	reg := obs.New()
	t.Cleanup(func() { orbit.SetMetrics(nil); sim.SetMetrics(nil) })
	fr := &flakyRunner{result: "fine"}
	env := newTestEnv(t, Config{
		Workers: 1, QueueDepth: 4,
		JournalPath: filepath.Join(t.TempDir(), "jobs.journal"),
		JournalHook: fault.JournalChaos(1, "svc", 1), // every journal op fails
		Runner:      fr.run, Metrics: reg,
	})
	r, code := env.submit(t, coverageSpec(1))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	v := env.awaitState(t, r.ID, StateDone)
	if v.Error != "" {
		t.Fatalf("job failed under journal chaos: %q", v.Error)
	}
	scrape := env.scrape(t)
	if strings.Contains(scrape, "sinet_journal_errors_total 0") || !strings.Contains(scrape, "sinet_journal_errors_total") {
		t.Fatalf("journal chaos left sinet_journal_errors_total at zero:\n%s", grepMetric(scrape, "journal_errors"))
	}
}

// TestRetryDelayDeterministicAndBounded pins the backoff schedule: same
// key and attempt always produce the same delay, delays stay within
// [base/2 · 2^(n-1), base · 2^(n-1)] and saturate at the cap.
func TestRetryDelayDeterministicAndBounded(t *testing.T) {
	key := Key(strings.Repeat("ab", 32))
	base := 100 * time.Millisecond
	for attempt := 1; attempt <= 12; attempt++ {
		d1 := retryDelay(key, attempt, base)
		d2 := retryDelay(key, attempt, base)
		if d1 != d2 {
			t.Fatalf("attempt %d: delay not deterministic (%v vs %v)", attempt, d1, d2)
		}
		want := base << (attempt - 1)
		if want > maxRetryBackoff || want <= 0 {
			want = maxRetryBackoff
		}
		if d1 < want/2 || d1 >= want {
			t.Fatalf("attempt %d: delay %v outside [%v, %v)", attempt, d1, want/2, want)
		}
	}
	if d := retryDelay(key, 1, 0); d < 500*time.Millisecond || d >= time.Second {
		t.Fatalf("zero base did not default to 1s: %v", d)
	}
}

// grepMetric filters a scrape to lines mentioning a substring, keeping
// failure output readable.
func grepMetric(scrape, substr string) string {
	var out []string
	for _, line := range strings.Split(scrape, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
