package service

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/sinet-io/sinet/internal/netgraph"
	"github.com/sinet-io/sinet/internal/obs"
	"github.com/sinet-io/sinet/internal/orbit"
	"github.com/sinet-io/sinet/internal/sim"
	"github.com/sinet-io/sinet/internal/tracing"
)

func (e *testEnv) scrape(t *testing.T) string {
	t.Helper()
	resp, err := http.Get(e.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestMetricsEndpoint drives one job through submit → run → cache hit and
// verifies the /metrics scrape exposes the serving telemetry: job
// lifecycle counters, admission outcomes, cache hits and the
// campaign-kind duration histogram — including the acceptance-named
// series sinet_jobs_queued, sinet_cache_hits_total and
// sinet_sgp4_calls_total.
func TestMetricsEndpoint(t *testing.T) {
	reg := obs.New()
	defer orbit.SetMetrics(nil)
	defer sim.SetMetrics(nil)
	gate := newGatedRunner(map[string]int{"ok": 1})
	env := newTestEnv(t, Config{Workers: 1, QueueDepth: 4, CacheBytes: 1 << 20, Runner: gate.run, Metrics: reg})

	// Before any traffic every required family is already registered.
	first := env.scrape(t)
	for _, want := range []string{
		"sinet_jobs_queued 0",
		"sinet_jobs_running 0",
		"sinet_cache_hits_total 0",
		"sinet_sgp4_calls_total 0",
		"# TYPE sinet_campaign_seconds histogram",
		`sinet_admission_total{code="202"} 0`,
		"sinet_queue_capacity 4",
	} {
		if !strings.Contains(first, want) {
			t.Errorf("pre-traffic scrape missing %q:\n%s", want, first)
		}
	}

	sub, code := env.submit(t, coverageSpec(1))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	close(gate.release)
	env.awaitState(t, sub.ID, StateDone)
	// Same spec again: a content-addressed cache hit.
	if sub2, code := env.submit(t, coverageSpec(1)); code != http.StatusAccepted || !sub2.Cached {
		t.Fatalf("second submit should be a cache hit (code=%d cached=%v)", code, sub2.Cached)
	}

	out := env.scrape(t)
	for _, want := range []string{
		"sinet_simulations_total 1",
		"sinet_cache_hits_total 1",
		"sinet_cache_misses_total 1",
		`sinet_jobs_finished_total{state="done"} 2`,
		`sinet_admission_total{code="202"} 2`,
		`sinet_campaign_seconds_count{kind="coverage"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("post-traffic scrape missing %q:\n%s", want, out)
		}
	}
}

// TestMetricsCountCanceledJobs verifies both cancellation paths land in
// sinet_jobs_finished_total{state="canceled"}: canceled while queued
// (never runs) and canceled mid-run (worker unwinds).
func TestMetricsCountCanceledJobs(t *testing.T) {
	reg := obs.New()
	defer orbit.SetMetrics(nil)
	defer sim.SetMetrics(nil)
	gate := newGatedRunner(nil)
	env := newTestEnv(t, Config{Workers: 1, QueueDepth: 4, Runner: gate.run, Metrics: reg})

	running, _ := env.submit(t, coverageSpec(1))
	queued, _ := env.submit(t, coverageSpec(2))
	env.awaitState(t, running.ID, StateRunning)

	if _, ok := env.svc.Cancel(queued.ID); !ok {
		t.Fatal("cancel queued")
	}
	if _, ok := env.svc.Cancel(running.ID); !ok {
		t.Fatal("cancel running")
	}
	env.awaitState(t, running.ID, StateCanceled)

	out := env.scrape(t)
	if !strings.Contains(out, `sinet_jobs_finished_total{state="canceled"} 2`) {
		t.Errorf("want 2 canceled jobs in scrape:\n%s", out)
	}
}

// TestRequestLoggingEmitsStructuredLines verifies the request middleware
// logs method/path/status with a request ID, and that job lifecycle
// events appear with job IDs.
func TestRequestLoggingEmitsStructuredLines(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	gate := newGatedRunner(map[string]int{"ok": 1})
	env := newTestEnv(t, Config{Workers: 1, QueueDepth: 4, Runner: gate.run, Logger: logger})

	sub, code := env.submit(t, coverageSpec(1))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	close(gate.release)
	env.awaitState(t, sub.ID, StateDone)

	logs := buf.String()
	for _, want := range []string{
		`"msg":"request"`,
		`"req":"r000001"`,
		`"method":"POST"`,
		`"path":"/v1/jobs"`,
		`"msg":"job queued"`,
		`"msg":"job running"`,
		`"msg":"job finished"`,
		`"job":"` + sub.ID + `"`,
	} {
		if !strings.Contains(logs, want) {
			t.Errorf("logs missing %q:\n%s", want, logs)
		}
	}
}

// TestTelemetryDoesNotPerturbResults is the determinism acceptance test:
// an identical passive campaign must produce byte-identical serialized
// results with and without a registry installed, while the registry
// observes real work (SGP4 calls, sim tasks, phase timings).
func TestTelemetryDoesNotPerturbResults(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real one-day campaign twice")
	}
	spec := &JobSpec{Kind: KindPassive, Passive: &PassiveSpec{
		Days:  1,
		Sites: []string{"HK"},
	}}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	baseline, err := Run(ctx, spec, RunContext{})
	if err != nil {
		t.Fatal(err)
	}
	baseBytes, err := MarshalResult(baseline)
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.New()
	orbit.SetMetrics(reg)
	sim.SetMetrics(reg)
	defer orbit.SetMetrics(nil)
	defer sim.SetMetrics(nil)

	instrumented, err := Run(ctx, spec, RunContext{})
	if err != nil {
		t.Fatal(err)
	}
	instBytes, err := MarshalResult(instrumented)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(baseBytes, instBytes) {
		t.Fatalf("telemetry perturbed the campaign: %d vs %d bytes", len(baseBytes), len(instBytes))
	}

	if got := reg.Counter("sinet_sgp4_calls_total", "").Value(); got == 0 {
		t.Error("registry observed no SGP4 calls during a real campaign")
	}
	if got := reg.Counter("sinet_sim_tasks_total", "").Value(); got == 0 {
		t.Error("registry observed no sim tasks during a real campaign")
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `sinet_sim_phase_seconds_count{phase="contacts"} 1`) {
		t.Errorf("phase histogram missing contacts observation:\n%s", sb.String())
	}

	// Distributed tracing must hold the same contract: a run under a live
	// tracer produces byte-identical results, while the tracer observes
	// real campaign phases.
	tracer := tracing.New("test", 0)
	root := tracer.StartRoot("job")
	tctx := tracing.NewContext(ctx, tracer, root.Context())
	traced, err := Run(tctx, spec, RunContext{})
	if err != nil {
		t.Fatal(err)
	}
	tracedBytes, err := MarshalResult(traced)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(baseBytes, tracedBytes) {
		t.Fatalf("tracing perturbed the campaign: %d vs %d bytes", len(baseBytes), len(tracedBytes))
	}
	root.End()
	spans := tracer.Trace(root.Context().TraceID)
	phases := map[string]bool{}
	for _, sp := range spans {
		phases[sp.Name] = true
	}
	for _, want := range []string{"phase:ephemeris", "phase:contacts"} {
		if !phases[want] {
			t.Errorf("traced run recorded no %q span; got %v", want, phases)
		}
	}
}

// TestMetricsExposeRoutingCounters serves a real routing campaign and
// verifies the network-graph telemetry families land in the scrape:
// topology builds, the ISL edge census, route computations and
// per-policy deliveries.
func TestMetricsExposeRoutingCounters(t *testing.T) {
	if testing.Short() {
		t.Skip("propagates real orbits")
	}
	reg := obs.New()
	defer orbit.SetMetrics(nil)
	defer sim.SetMetrics(nil)
	defer netgraph.SetMetrics(nil)
	env := newTestEnv(t, Config{Workers: 1, QueueDepth: 2, Metrics: reg})

	// All five families are pre-registered before any routing traffic.
	first := env.scrape(t)
	for _, want := range []string{
		"sinet_topology_builds_total 0",
		"sinet_isl_edges_live_total 0",
		"sinet_isl_edges_dropped_total 0",
		`sinet_route_computations_total{mode="full"} 0`,
		`sinet_deliveries_total{policy="relay"} 0`,
		`sinet_campaign_seconds_count{kind="routing"} 0`,
	} {
		if !strings.Contains(first, want) {
			t.Errorf("pre-traffic scrape missing %q", want)
		}
	}

	sub, code := env.submit(t, `{"kind":"routing","routing":{"days":1}}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	env.awaitState(t, sub.ID, StateDone)

	out := env.scrape(t)
	for _, family := range []string{
		"sinet_topology_builds_total",
		"sinet_isl_edges_live_total",
		`sinet_route_computations_total{mode="full"}`,
		`sinet_deliveries_total{policy="relay"}`,
		`sinet_deliveries_total{policy="store"}`,
		`sinet_campaign_seconds_count{kind="routing"}`,
	} {
		if !scrapeCounterPositive(out, family) {
			t.Errorf("scrape counter %q did not move:\n%s", family, out)
		}
	}
}

// scrapeCounterPositive reports whether the exposition line for the given
// series name carries a value greater than zero.
func scrapeCounterPositive(scrape, series string) bool {
	for _, line := range strings.Split(scrape, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			return err == nil && v > 0
		}
	}
	return false
}
