package service

import (
	"context"
	"sync"
	"time"
)

// State is a job's lifecycle position. The machine is
// queued → running → done|failed|canceled, with queued → canceled allowed
// (cancel before a worker picks the job up) and done reachable directly at
// submission for cache hits.
type State string

// Job states.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Event is one progress/state notification streamed over SSE.
type Event struct {
	JobID     string `json:"id"`
	State     State  `json:"state"`
	Phase     string `json:"phase,omitempty"`
	Completed int    `json:"completed,omitempty"`
	Total     int    `json:"total,omitempty"`
	Error     string `json:"error,omitempty"`
	Cached    bool   `json:"cached,omitempty"`
}

// JobView is the API representation of a job.
type JobView struct {
	ID          string     `json:"id"`
	Key         string     `json:"key"`
	Kind        string     `json:"kind"`
	State       State      `json:"state"`
	Cached      bool       `json:"cached"`
	Error       string     `json:"error,omitempty"`
	Phase       string     `json:"phase,omitempty"`
	Completed   int        `json:"completed,omitempty"`
	Total       int        `json:"total,omitempty"`
	CreatedAt   time.Time  `json:"created_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	ResultBytes int        `json:"result_bytes"`
}

// Job is one submitted campaign. All mutable state is guarded by mu; the
// result bytes are immutable once the job is terminal.
type Job struct {
	ID   string
	Key  Key
	Spec *JobSpec

	mu        sync.Mutex
	state     State
	err       string
	cached    bool
	result    []byte
	phase     string
	completed int
	total     int

	created  time.Time
	started  time.Time
	finished time.Time

	cancelRequested bool
	cancel          context.CancelFunc

	doneCh chan struct{}
	subs   map[chan Event]struct{}
}

func newJob(id string, key Key, spec *JobSpec) *Job {
	return &Job{
		ID:      id,
		Key:     key,
		Spec:    spec,
		state:   StateQueued,
		created: time.Now().UTC(),
		doneCh:  make(chan struct{}),
		subs:    map[chan Event]struct{}{},
	}
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.doneCh }

// State returns the current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// runtime returns the wall time from worker pickup to terminal state
// (zero while running, and for jobs that never ran: cache hits,
// canceled-while-queued).
func (j *Job) runtime() time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.started.IsZero() || j.finished.IsZero() {
		return 0
	}
	return j.finished.Sub(j.started)
}

// ErrorText returns the terminal error message ("" when none).
func (j *Job) ErrorText() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Result returns the serialized result and whether the job is done.
func (j *Job) Result() ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.state == StateDone
}

// View snapshots the job for the API.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:          j.ID,
		Key:         string(j.Key),
		Kind:        j.Spec.Kind,
		State:       j.state,
		Cached:      j.cached,
		Error:       j.err,
		Phase:       j.phase,
		Completed:   j.completed,
		Total:       j.total,
		CreatedAt:   j.created,
		ResultBytes: len(j.result),
	}
	if !j.started.IsZero() {
		t := j.started
		v.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.FinishedAt = &t
	}
	return v
}

// event builds the notification for the current state; callers hold mu.
func (j *Job) eventLocked() Event {
	return Event{
		JobID:     j.ID,
		State:     j.state,
		Phase:     j.phase,
		Completed: j.completed,
		Total:     j.total,
		Error:     j.err,
		Cached:    j.cached,
	}
}

// publishLocked fans the current state out to subscribers without
// blocking: a subscriber that cannot keep up loses intermediate progress
// events but never the terminal one — SSE streams watch Done() as well.
func (j *Job) publishLocked() {
	ev := j.eventLocked()
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// Subscribe registers for state/progress events. The returned cancel must
// be called to release the subscription.
func (j *Job) Subscribe() (<-chan Event, func()) {
	ch := make(chan Event, 16)
	j.mu.Lock()
	j.subs[ch] = struct{}{}
	j.mu.Unlock()
	return ch, func() {
		j.mu.Lock()
		delete(j.subs, ch)
		j.mu.Unlock()
	}
}

// setProgress records phase progress and notifies subscribers.
func (j *Job) setProgress(phase string, completed, total int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateRunning {
		return
	}
	j.phase = phase
	j.completed = completed
	j.total = total
	j.publishLocked()
}

// begin moves the job to running and derives its cancellable context from
// base. It returns false when the job is no longer runnable (canceled
// while queued), leaving the worker free for the next job.
func (j *Job) begin(base context.Context) (context.Context, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return nil, false
	}
	ctx, cancel := context.WithCancel(base)
	j.state = StateRunning
	j.started = time.Now().UTC()
	j.cancel = cancel
	if j.cancelRequested {
		// Cancel raced the pickup: run with an already-cancelled context so
		// the campaign aborts on its first check.
		cancel()
	}
	j.publishLocked()
	return ctx, true
}

// requestCancel asks the job to stop. A queued job cancels immediately; a
// running one has its context cancelled and reaches the canceled state
// when the campaign unwinds. Terminal jobs are unaffected. It reports
// whether this call itself finished the job (queued → canceled), so the
// caller can account for the terminal transition — running jobs reach
// their terminal state on the worker instead.
func (j *Job) requestCancel() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case j.state == StateQueued:
		j.finishLocked(StateCanceled, nil, context.Canceled.Error(), false)
		return true
	case j.state == StateRunning:
		j.cancelRequested = true
		if j.cancel != nil {
			j.cancel()
		}
	}
	return false
}

// CancelRequested reports whether a cancel was asked for while running.
func (j *Job) CancelRequested() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancelRequested
}

// finish moves the job to a terminal state.
func (j *Job) finish(state State, result []byte, errText string, cached bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finishLocked(state, result, errText, cached)
}

func (j *Job) finishLocked(state State, result []byte, errText string, cached bool) {
	if j.state.Terminal() {
		return
	}
	if j.cancel != nil {
		// Release the context even on success/failure paths.
		j.cancel()
	}
	j.state = state
	j.result = result
	j.err = errText
	j.cached = cached
	j.finished = time.Now().UTC()
	j.phase = ""
	j.publishLocked()
	close(j.doneCh)
}
