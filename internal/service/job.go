package service

import (
	"context"
	"errors"
	"sync"
	"time"

	"github.com/sinet-io/sinet/internal/core"
	"github.com/sinet-io/sinet/internal/tracing"
)

// State is a job's lifecycle position. The machine is
// queued → running → done|failed|canceled, with queued → canceled allowed
// (cancel before a worker picks the job up) and done reachable directly at
// submission for cache hits.
type State string

// Job states.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Event is one progress/state notification streamed over SSE.
type Event struct {
	JobID     string `json:"id"`
	State     State  `json:"state"`
	Phase     string `json:"phase,omitempty"`
	Completed int    `json:"completed,omitempty"`
	Total     int    `json:"total,omitempty"`
	Error     string `json:"error,omitempty"`
	Cached    bool   `json:"cached,omitempty"`
}

// JobView is the API representation of a job.
type JobView struct {
	ID          string     `json:"id"`
	Key         string     `json:"key"`
	Kind        string     `json:"kind"`
	State       State      `json:"state"`
	Cached      bool       `json:"cached"`
	Error       string     `json:"error,omitempty"`
	Phase       string     `json:"phase,omitempty"`
	Completed   int        `json:"completed,omitempty"`
	Total       int        `json:"total,omitempty"`
	CreatedAt   time.Time  `json:"created_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	ResultBytes int        `json:"result_bytes"`
}

// Job is one submitted campaign. All mutable state is guarded by mu; the
// result bytes are immutable once the job is terminal.
type Job struct {
	ID   string
	Key  Key
	Spec *JobSpec

	mu        sync.Mutex
	state     State
	err       string
	cached    bool
	result    []byte
	phase     string
	completed int
	total     int

	created  time.Time
	started  time.Time
	finished time.Time

	cancelRequested bool
	cancel          context.CancelFunc

	// attempt counts begun executions, including attempts journaled by a
	// previous process when the job was re-admitted after a crash.
	attempt int
	// stuck marks an attempt shot down by the heartbeat watchdog, so the
	// worker can tell watchdog cancellation from a user cancel.
	stuck    bool
	lastBeat time.Time
	// checkpoint accumulates the completed work units of every attempt;
	// the next attempt (or the next process, via journal replay) resumes
	// from it instead of recomputing.
	checkpoint *core.Checkpoint

	// trace is the job's distributed-trace identity: the root "job" span's
	// context, under which every attempt, phase and retry span nests.
	// rootSpan is the live root, ended at the terminal transition; it is
	// nil for replayed jobs (the original root died with the old process;
	// the restored trace keeps their resumed attempts on the original
	// timeline) and when tracing is off.
	trace    tracing.SpanContext
	rootSpan *tracing.Span
	// enqueued timestamps the latest queue entry (submit or retry requeue)
	// so worker pickup can record the queue.wait span retrospectively.
	enqueued time.Time
	// retryStart/retryAttempt/retryCause describe the pending retry
	// backoff, recorded as a retry.backoff span when the job requeues.
	retryStart   time.Time
	retryAttempt int
	retryCause   string

	doneCh chan struct{}
	subs   map[chan Event]struct{}
}

func newJob(id string, key Key, spec *JobSpec) *Job {
	now := time.Now().UTC()
	return &Job{
		ID:       id,
		Key:      key,
		Spec:     spec,
		state:    StateQueued,
		created:  now,
		enqueued: now,
		doneCh:   make(chan struct{}),
		subs:     map[chan Event]struct{}{},
	}
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.doneCh }

// State returns the current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// runtime returns the wall time from worker pickup to terminal state
// (zero while running, and for jobs that never ran: cache hits,
// canceled-while-queued).
func (j *Job) runtime() time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.started.IsZero() || j.finished.IsZero() {
		return 0
	}
	return j.finished.Sub(j.started)
}

// ErrorText returns the terminal error message ("" when none).
func (j *Job) ErrorText() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Result returns the serialized result and whether the job is done.
func (j *Job) Result() ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.state == StateDone
}

// View snapshots the job for the API.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:          j.ID,
		Key:         string(j.Key),
		Kind:        j.Spec.Kind,
		State:       j.state,
		Cached:      j.cached,
		Error:       j.err,
		Phase:       j.phase,
		Completed:   j.completed,
		Total:       j.total,
		CreatedAt:   j.created,
		ResultBytes: len(j.result),
	}
	if !j.started.IsZero() {
		t := j.started
		v.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.FinishedAt = &t
	}
	return v
}

// event builds the notification for the current state; callers hold mu.
func (j *Job) eventLocked() Event {
	return Event{
		JobID:     j.ID,
		State:     j.state,
		Phase:     j.phase,
		Completed: j.completed,
		Total:     j.total,
		Error:     j.err,
		Cached:    j.cached,
	}
}

// publishLocked fans the current state out to subscribers without
// blocking: a subscriber that cannot keep up loses intermediate progress
// events but never the terminal one — SSE streams watch Done() as well.
func (j *Job) publishLocked() {
	ev := j.eventLocked()
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// Subscribe registers for state/progress events. The returned cancel must
// be called to release the subscription.
func (j *Job) Subscribe() (<-chan Event, func()) {
	ch := make(chan Event, 16)
	j.mu.Lock()
	j.subs[ch] = struct{}{}
	j.mu.Unlock()
	return ch, func() {
		j.mu.Lock()
		delete(j.subs, ch)
		j.mu.Unlock()
	}
}

// setProgress records phase progress and notifies subscribers.
func (j *Job) setProgress(phase string, completed, total int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateRunning {
		return
	}
	j.phase = phase
	j.completed = completed
	j.total = total
	j.publishLocked()
}

// begin moves the job to running and derives its cancellable context from
// base, returning the 1-based attempt number. It returns false when the
// job is no longer runnable (canceled while queued), leaving the worker
// free for the next job.
func (j *Job) begin(base context.Context) (context.Context, int, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return nil, 0, false
	}
	ctx, cancel := context.WithCancel(base)
	j.state = StateRunning
	j.started = time.Now().UTC()
	j.lastBeat = j.started
	j.stuck = false
	j.attempt++
	j.cancel = cancel
	if j.cancelRequested {
		// Cancel raced the pickup: run with an already-cancelled context so
		// the campaign aborts on its first check.
		cancel()
	}
	j.publishLocked()
	return ctx, j.attempt, true
}

// setTrace installs the job's trace identity (and, for locally born
// jobs, the live root span).
func (j *Job) setTrace(sc tracing.SpanContext, root *tracing.Span) {
	j.mu.Lock()
	j.trace = sc
	j.rootSpan = root
	j.mu.Unlock()
}

// TraceContext returns the job's root span context (zero when untraced).
func (j *Job) TraceContext() tracing.SpanContext {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.trace
}

// enqueuedAt returns the latest queue-entry time.
func (j *Job) enqueuedAt() time.Time {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.enqueued
}

// noteRetry stashes the pending backoff's shape for the retry.backoff
// span recorded at requeue time.
func (j *Job) noteRetry(attempt int, cause string) {
	j.mu.Lock()
	j.retryStart = time.Now().UTC()
	j.retryAttempt = attempt
	j.retryCause = cause
	j.mu.Unlock()
}

// takeRetry consumes the pending backoff note, if any.
func (j *Job) takeRetry() (start time.Time, attempt int, cause string, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.retryStart.IsZero() {
		return time.Time{}, 0, "", false
	}
	start, attempt, cause = j.retryStart, j.retryAttempt, j.retryCause
	j.retryStart, j.retryAttempt, j.retryCause = time.Time{}, 0, ""
	return start, attempt, cause, true
}

// Attempts reports how many executions the job has begun, including
// attempts journaled before a restart.
func (j *Job) Attempts() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.attempt
}

// beat refreshes the heartbeat the watchdog checks. Progress reports and
// checkpoint saves both count as signs of life.
func (j *Job) beat() {
	j.mu.Lock()
	j.lastBeat = time.Now().UTC()
	j.mu.Unlock()
}

// markStale cancels the current attempt of a running job whose heartbeat
// is older than timeout, reporting whether this call shot it down. The
// worker observes the cancellation, sees stuck set, and retries the
// attempt under the normal budget.
func (j *Job) markStale(timeout time.Duration) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateRunning || j.stuck || time.Since(j.lastBeat) < timeout {
		return false
	}
	j.stuck = true
	if j.cancel != nil {
		j.cancel()
	}
	return true
}

// staleAttempt reports whether the watchdog shot down the current attempt.
func (j *Job) staleAttempt() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stuck
}

// requeue returns a running job to the queued state for a retry attempt.
// It reports false when the job is no longer running (a cancel won the
// race and finished it).
func (j *Job) requeue() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateRunning {
		return false
	}
	if j.cancel != nil {
		j.cancel()
		j.cancel = nil
	}
	j.state = StateQueued
	j.started = time.Time{}
	j.enqueued = time.Now().UTC()
	j.phase, j.completed, j.total = "", 0, 0
	j.publishLocked()
	return true
}

// addUnit accumulates one checkpointed work unit for the next attempt's
// resume point. CheckpointFunc calls are serialized by contract and
// restore happens before any save of the same phase, so the underlying
// map is never accessed concurrently.
func (j *Job) addUnit(phase string, index, total int, unit []byte) {
	j.mu.Lock()
	if j.checkpoint == nil {
		j.checkpoint = core.NewCheckpoint()
	}
	cp := j.checkpoint
	j.mu.Unlock()
	cp.Add(phase, index, total, unit)
}

// resumePoint returns the accumulated checkpoint (nil when none).
func (j *Job) resumePoint() *core.Checkpoint {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.checkpoint
}

// requestCancel asks the job to stop. A queued job cancels immediately; a
// running one has its context cancelled and reaches the canceled state
// when the campaign unwinds. Terminal jobs are unaffected. It reports
// whether this call itself finished the job (queued → canceled), so the
// caller can account for the terminal transition — running jobs reach
// their terminal state on the worker instead.
func (j *Job) requestCancel() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case j.state == StateQueued:
		j.finishLocked(StateCanceled, nil, context.Canceled.Error(), false)
		return true
	case j.state == StateRunning:
		j.cancelRequested = true
		if j.cancel != nil {
			j.cancel()
		}
	}
	return false
}

// CancelRequested reports whether a cancel was asked for while running.
func (j *Job) CancelRequested() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancelRequested
}

// finish moves the job to a terminal state.
func (j *Job) finish(state State, result []byte, errText string, cached bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finishLocked(state, result, errText, cached)
}

func (j *Job) finishLocked(state State, result []byte, errText string, cached bool) {
	if j.state.Terminal() {
		return
	}
	if j.cancel != nil {
		// Release the context even on success/failure paths.
		j.cancel()
	}
	j.state = state
	j.result = result
	j.err = errText
	j.cached = cached
	j.finished = time.Now().UTC()
	j.phase = ""
	if j.rootSpan != nil {
		// The root span closes with the terminal transition. Recording
		// takes only the tracer's ring lock, never job or server locks, so
		// ending it under j.mu cannot deadlock.
		j.rootSpan.SetAttr(tracing.String("state", string(state)), tracing.Bool("cached", cached))
		if errText != "" {
			j.rootSpan.SetError(errors.New(errText))
		}
		j.rootSpan.End()
		j.rootSpan = nil
	}
	j.publishLocked()
	close(j.doneCh)
}
