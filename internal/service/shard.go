package service

import (
	"context"
	"encoding/json"
	"fmt"

	"github.com/sinet-io/sinet/internal/core"
)

// ShardSpec marks a JobSpec as shard Index of Count of its parent
// campaign: the run computes only the parent's checkpointable-phase
// units falling in the shard's window and returns them as a ShardResult
// instead of a full campaign result. Shards are how the cluster
// coordinator splits one big campaign across workers; the shard clause
// participates in content addressing through the derived
// "parent/shard/i-of-n" ConfigKey.
type ShardSpec struct {
	Index int `json:"index"`
	Count int `json:"count"`
}

// ShardResult is a shard run's output: the snapshots of every unit in
// the shard's window, in the exact form the campaign's CheckpointFunc
// emitted them. Folding all shards' units into one core.Checkpoint and
// re-running the parent spec with it as Resume restores every unit and
// recomputes none, so the merged bytes equal an unsharded run's by the
// resume contract (see core.Checkpoint). JSON maps marshal with sorted
// keys, so equal shard runs serialize to equal bytes and shard results
// are themselves content-addressable.
type ShardResult struct {
	Index int              `json:"index"`
	Count int              `json:"count"`
	Units *core.Checkpoint `json:"units"`
}

// shardUnitCount reports how many units the spec's checkpointable phase
// fans out — the quantity shard windows partition. The spec must be
// normalized.
func shardUnitCount(s *JobSpec) (int, error) {
	switch s.Kind {
	case KindPassive:
		return len(s.Passive.Sites) * len(s.Passive.Constellations), nil
	case KindActive:
		cons, err := constellationByName(s.Active.Constellation, s.Active.Start)
		if err != nil {
			return 0, err
		}
		return len(cons.Sats), nil
	case KindCoverage:
		return len(s.Coverage.LatitudesDeg), nil
	case KindBackhaul:
		cons, err := constellationByName(s.Backhaul.Constellation, s.Backhaul.Start)
		if err != nil {
			return 0, err
		}
		return len(cons.Sats), nil
	case KindRouting:
		cons, err := constellationByName(s.Routing.Constellation, s.Routing.Start)
		if err != nil {
			return 0, err
		}
		return len(cons.Sats), nil
	}
	return 0, specErr("unknown kind %q", s.Kind)
}

// shardWindow is the contiguous unit range [lo, hi) shard i of n covers
// when u units split as evenly as possible: every unit belongs to
// exactly one shard and shard sizes differ by at most one.
func shardWindow(u, i, n int) (lo, hi int) {
	return i * u / n, (i + 1) * u / n
}

// validateShard checks the shard clause against the normalized spec.
func (s *JobSpec) validateShard() error {
	sh := s.Shard
	if sh == nil {
		return nil
	}
	if sh.Count < 2 {
		return specErr("shard count must be at least 2, got %d", sh.Count)
	}
	if sh.Index < 0 || sh.Index >= sh.Count {
		return specErr("shard index %d out of [0, %d)", sh.Index, sh.Count)
	}
	u, err := shardUnitCount(s)
	if err != nil {
		return err
	}
	if sh.Count > u {
		return specErr("shard count %d exceeds the campaign's %d units", sh.Count, u)
	}
	return nil
}

// ShardCount picks how many shards a spec should split into: enough
// that each shard stays at or under threshold units, capped at maxShards
// and at the unit count itself. 0 means the spec is not worth sharding
// (at or under threshold, already a shard, or threshold disabled).
func ShardCount(spec *JobSpec, threshold, maxShards int) int {
	if threshold <= 0 || maxShards < 2 || spec.Shard != nil {
		return 0
	}
	u, err := shardUnitCount(spec)
	if err != nil || u <= threshold {
		return 0
	}
	n := (u + threshold - 1) / threshold
	if n > maxShards {
		n = maxShards
	}
	if n > u {
		n = u
	}
	if n < 2 {
		return 0
	}
	return n
}

// SplitSpec derives the n shard sub-specs of a normalized parent spec:
// deep copies (via the spec's own JSON form, which round-trips exactly)
// with shard clauses i-of-n attached. Each sub-spec content-addresses as
// "parent/shard/i-of-n".
func SplitSpec(spec *JobSpec, n int) ([]*JobSpec, error) {
	if spec.Shard != nil {
		return nil, specErr("cannot split a spec that is already a shard")
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("service: marshal spec for split: %w", err)
	}
	shards := make([]*JobSpec, n)
	for i := range shards {
		sub := &JobSpec{}
		if err := json.Unmarshal(raw, sub); err != nil {
			return nil, fmt.Errorf("service: copy spec for split: %w", err)
		}
		sub.Shard = &ShardSpec{Index: i, Count: n}
		if err := sub.Normalize(); err != nil {
			return nil, err
		}
		shards[i] = sub
	}
	return shards, nil
}

// FoldShards merges shard result bytes (each a MarshalResult-serialized
// ShardResult) into one resume point holding every shard's units.
// Running the parent spec with it as Resume restores all units and
// recomputes none — the merge step of a sharded campaign.
func FoldShards(blobs [][]byte) (*core.Checkpoint, error) {
	cp := core.NewCheckpoint()
	for bi, b := range blobs {
		var sr ShardResult
		if err := json.Unmarshal(b, &sr); err != nil {
			return nil, fmt.Errorf("service: decode shard result %d: %w", bi, err)
		}
		if sr.Units == nil {
			continue
		}
		for phase, ps := range sr.Units.Phases {
			for idx, raw := range ps.Units {
				cp.Add(phase, idx, ps.Total, raw)
			}
		}
	}
	return cp, nil
}

// runShard executes a shard sub-spec: the parent campaign restricted to
// the shard's unit window, with every in-window unit captured into the
// returned ShardResult. Units already present in rc.Resume (a worker
// crash mid-shard replays its journal like any other job) seed the
// result and are restored, not recomputed; rc.Checkpoint still observes
// newly computed units so the shard journals durably.
func runShard(ctx context.Context, spec *JobSpec, rc RunContext) (*ShardResult, error) {
	u, err := shardUnitCount(spec)
	if err != nil {
		return nil, err
	}
	lo, hi := shardWindow(u, spec.Shard.Index, spec.Shard.Count)
	cp := core.NewCheckpoint()
	if rc.Resume != nil {
		// Restored units never re-enter the CheckpointFunc, so carry the
		// journaled in-window units into the shard result up front; a
		// recomputed unit (corrupt or stale snapshot) overwrites its seed.
		for phase, ps := range rc.Resume.Phases {
			for idx, raw := range ps.Units {
				if idx >= lo && idx < hi {
					cp.Add(phase, idx, ps.Total, raw)
				}
			}
		}
	}
	inner := rc
	inner.Checkpoint = func(phase string, index, total int, unit []byte) {
		cp.Add(phase, index, total, unit)
		if rc.Checkpoint != nil {
			rc.Checkpoint(phase, index, total, unit)
		}
	}
	if _, err := runKind(ctx, spec, inner, &core.ShardWindow{Lo: lo, Hi: hi}); err != nil {
		return nil, err
	}
	return &ShardResult{Index: spec.Shard.Index, Count: spec.Shard.Count, Units: cp}, nil
}
