package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"github.com/sinet-io/sinet/internal/tracing"
)

// traceTestEnv is a daemon with tracing on and a fake runner that
// records one nested phase span, like a campaign would.
func traceTestEnv(t *testing.T) (*testEnv, *tracing.Tracer) {
	t.Helper()
	tracer := tracing.New("worker:test", 0)
	env := newTestEnv(t, Config{
		Workers:    2,
		QueueDepth: 8,
		Tracer:     tracer,
		Runner: func(ctx context.Context, _ *JobSpec, _ RunContext) (any, error) {
			_, sp := tracing.Start(ctx, "phase:contacts", tracing.Int("units", 3))
			sp.End()
			return map[string]int{"ok": 1}, nil
		},
	})
	return env, tracer
}

// TestJobTraceEndpoint runs a job to completion and checks the
// assembled timeline: every lifecycle span present, one shared trace
// ID, parents resolving inside the trace, and the JSON field order that
// is part of the export contract.
func TestJobTraceEndpoint(t *testing.T) {
	env, _ := traceTestEnv(t)
	sub, code := env.submit(t, coverageSpec(1))
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	env.awaitState(t, sub.ID, StateDone)

	resp, err := http.Get(env.ts.URL + "/v1/jobs/" + sub.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace endpoint: status %d: %s", resp.StatusCode, raw)
	}

	var jt JobTrace
	if err := json.Unmarshal(raw, &jt); err != nil {
		t.Fatalf("decode %s: %v", raw, err)
	}
	if jt.JobID != sub.ID {
		t.Errorf("job_id = %q, want %q", jt.JobID, sub.ID)
	}
	if jt.TraceID == "" || len(jt.TraceID) != 32 {
		t.Errorf("trace_id = %q, want 32-hex", jt.TraceID)
	}
	names := map[string]bool{}
	ids := map[string]bool{}
	for _, sp := range jt.Spans {
		names[sp.Name] = true
		ids[sp.SpanID] = true
		if sp.TraceID != jt.TraceID {
			t.Errorf("span %s has trace %s, want %s", sp.Name, sp.TraceID, jt.TraceID)
		}
	}
	for _, want := range []string{"job", "admission", "queue.wait", "attempt", "phase:contacts"} {
		if !names[want] {
			t.Errorf("timeline missing %q span; got %v", want, names)
		}
	}
	for _, sp := range jt.Spans {
		if sp.ParentID != "" && !ids[sp.ParentID] && sp.Name != "job" {
			t.Errorf("span %s parent %s not in trace", sp.Name, sp.ParentID)
		}
	}

	// The raw JSON field order is a contract (tracing.SpanJSON): golden
	// tools parse it positionally. Pin the prefix of the first span.
	spansAt := strings.Index(string(raw), `"spans":[{`)
	if spansAt < 0 {
		t.Fatalf("no spans array in %s", raw)
	}
	first := string(raw[spansAt+len(`"spans":[`):])
	last := -1
	for _, key := range []string{`"trace_id"`, `"span_id"`, `"name"`, `"service"`, `"start"`, `"duration_ms"`} {
		at := strings.Index(first, key)
		if at < 0 {
			t.Fatalf("first span missing %s: %s", key, first[:min(len(first), 200)])
		}
		if at < last {
			t.Errorf("field %s out of order in span JSON: %s", key, first[:min(len(first), 200)])
		}
		last = at
	}

	// Unknown jobs 404.
	resp404, err := http.Get(env.ts.URL + "/v1/jobs/nope/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp404.Body.Close()
	if resp404.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job trace: status %d, want 404", resp404.StatusCode)
	}
}

// TestDebugTracesEndpoint checks the recent-roots listing, the
// ?trace=<id> single-trace form the coordinator stitches with, and the
// malformed-parameter rejections.
func TestDebugTracesEndpoint(t *testing.T) {
	env, _ := traceTestEnv(t)
	sub, _ := env.submit(t, coverageSpec(2))
	env.awaitState(t, sub.ID, StateDone)

	resp, err := http.Get(env.ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces: status %d", resp.StatusCode)
	}
	var dt DebugTraces
	if err := json.Unmarshal(raw, &dt); err != nil {
		t.Fatal(err)
	}
	if dt.Service != "worker:test" {
		t.Errorf("service = %q", dt.Service)
	}
	if len(dt.Roots) == 0 {
		t.Fatal("no roots after a completed job")
	}
	if !strings.HasPrefix(string(raw), `{"service":`) {
		t.Errorf("debug payload field order changed: %s", raw[:min(len(raw), 80)])
	}

	// The job root must be among the recent roots; fetch its full trace.
	var traceID string
	for _, r := range dt.Roots {
		if r.Name == "job" {
			traceID = r.TraceID
		}
	}
	if traceID == "" {
		t.Fatalf("no job root in %s", raw)
	}
	respT, err := http.Get(env.ts.URL + "/debug/traces?trace=" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	rawT, _ := io.ReadAll(respT.Body)
	respT.Body.Close()
	var tj tracing.TraceJSON
	if err := json.Unmarshal(rawT, &tj); err != nil {
		t.Fatal(err)
	}
	if tj.TraceID != traceID || len(tj.Spans) < 4 {
		t.Errorf("trace fetch returned %d spans for %q", len(tj.Spans), tj.TraceID)
	}

	for _, bad := range []string{"?trace=xyz", "?limit=0", "?limit=nope"} {
		r, err := http.Get(env.ts.URL + "/debug/traces" + bad)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", bad, r.StatusCode)
		}
	}
}

// TestTraceparentPropagation submits with a client traceparent and
// expects the job's whole timeline to join the client's trace.
func TestTraceparentPropagation(t *testing.T) {
	env, _ := traceTestEnv(t)
	const clientTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	req, err := http.NewRequest(http.MethodPost, env.ts.URL+"/v1/jobs", strings.NewReader(coverageSpec(3)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(tracing.Header, "00-"+clientTrace+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var sub SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	env.awaitState(t, sub.ID, StateDone)

	jt, ok := env.svc.JobTraceByID(sub.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	if jt.TraceID != clientTrace {
		t.Fatalf("job joined trace %q, want client trace %q", jt.TraceID, clientTrace)
	}
}

// TestRequestIDEcho checks the X-Request-Id satellite: a client-supplied
// ID is echoed back, and the server mints one when the client sent none.
func TestRequestIDEcho(t *testing.T) {
	env, _ := traceTestEnv(t)

	req, err := http.NewRequest(http.MethodGet, env.ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "client-abc-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "client-abc-123" {
		t.Errorf("client request ID not echoed: got %q", got)
	}

	resp2, err := http.Get(env.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-Id"); got == "" {
		t.Error("server minted no X-Request-Id for a bare request")
	}
}

// TestConcurrentJobsRecordSpans hammers the tracer from many concurrent
// jobs while readers poll the export endpoints — the -race companion to
// the package-level tracing tests, at the service layer.
func TestConcurrentJobsRecordSpans(t *testing.T) {
	env, tracer := traceTestEnv(t)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			resp, err := http.Get(env.ts.URL + "/debug/traces")
			if err == nil {
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}()
	ids := make([]string, 0, 8)
	for i := 0; i < 8; i++ {
		sub, code := env.submit(t, coverageSpec(10+i))
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, code)
		}
		ids = append(ids, sub.ID)
	}
	for _, id := range ids {
		env.awaitState(t, id, StateDone)
	}
	<-done
	if got := tracer.Recorded(); got < 8*4 {
		t.Errorf("recorded %d spans across 8 jobs, want >= %d", got, 8*4)
	}
}
