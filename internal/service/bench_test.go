package service

import (
	"bytes"
	"fmt"
	"testing"
)

// BenchmarkConfigKey measures the full admission-path canonicalization:
// normalize a sparse spec, validate it, and hash the canonical form. This
// runs once per submission, cache hit or not, so it bounds submit latency.
func BenchmarkConfigKey(b *testing.B) {
	for i := 0; i < b.N; i++ {
		spec := &JobSpec{Kind: KindPassive, Passive: &PassiveSpec{Seed: 7}}
		if _, err := ConfigKey(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConfigKeyNormalized measures re-keying an already-canonical
// spec — the marginal cost when the caller retains the normalized form.
func BenchmarkConfigKeyNormalized(b *testing.B) {
	spec := &JobSpec{Kind: KindPassive, Passive: &PassiveSpec{Seed: 7}}
	if _, err := ConfigKey(spec); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ConfigKey(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheHit measures a warm lookup on a populated cache — the cost
// a repeated submission pays instead of a simulation.
func BenchmarkCacheHit(b *testing.B) {
	c := NewCache(64 << 20)
	data := bytes.Repeat([]byte("r"), 24<<10) // ~a passive-result payload
	var keys []Key
	for i := 0; i < 256; i++ {
		k := Key(fmt.Sprintf("%064d", i))
		keys = append(keys, k)
		c.Put(k, data)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(keys[i%len(keys)]); !ok {
			b.Fatal("unexpected miss")
		}
	}
}
