package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sinet-io/sinet/internal/core"
)

// Admission errors mapped to HTTP statuses by the handler layer.
var (
	// ErrDraining rejects new work during graceful shutdown (503).
	ErrDraining = errors.New("service: draining, not accepting new jobs")
	// ErrQueueFull is the backpressure signal for a saturated queue (429).
	ErrQueueFull = errors.New("service: job queue full")
)

// RunnerFunc executes a normalized spec. The default is Run; tests inject
// controllable fakes to exercise queueing, cancellation and shutdown
// without simulating orbits.
type RunnerFunc func(ctx context.Context, spec *JobSpec, progress core.ProgressFunc) (any, error)

// Config parameterizes a Server.
type Config struct {
	// Workers is the simulation worker-pool size (default GOMAXPROCS).
	// Each worker runs one campaign at a time; the campaign itself fans
	// out internally via sim.ForEach.
	Workers int
	// QueueDepth bounds the number of jobs waiting for a worker
	// (default 64). A full queue rejects submissions with ErrQueueFull.
	QueueDepth int
	// CacheBytes is the result cache budget; <= 0 disables caching
	// entirely (every submission recomputes), the mode the golden smoke
	// comparison runs in.
	CacheBytes int64
	// Runner overrides the campaign executor (nil = Run).
	Runner RunnerFunc
}

// Server is the campaign-serving engine: registry, bounded queue, worker
// pool, result cache and the HTTP API over them.
type Server struct {
	cfg    Config
	cache  *Cache
	runner RunnerFunc

	mu       sync.Mutex
	jobs     map[string]*Job
	inflight map[Key]*Job // queued or running, by content key
	draining bool
	seq      uint64

	queue      chan *Job
	baseCtx    context.Context
	cancelBase context.CancelFunc
	wg         sync.WaitGroup

	simulations atomic.Uint64
	started     time.Time
}

// New builds and starts a server: its workers are consuming the queue when
// New returns. Stop it with Shutdown.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Runner == nil {
		cfg.Runner = Run
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		cache:      NewCache(cfg.CacheBytes),
		runner:     cfg.Runner,
		jobs:       map[string]*Job{},
		inflight:   map[Key]*Job{},
		queue:      make(chan *Job, cfg.QueueDepth),
		baseCtx:    ctx,
		cancelBase: cancel,
		started:    time.Now().UTC(),
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Submit admits one spec: it is normalized, keyed, deduped against
// in-flight identical jobs, answered from the cache when possible, and
// otherwise queued. deduped reports whether an existing in-flight job was
// returned instead of a new one.
func (s *Server) Submit(spec *JobSpec) (job *Job, deduped bool, err error) {
	key, err := ConfigKey(spec)
	if err != nil {
		return nil, false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, false, ErrDraining
	}
	// Singleflight: identical submissions while one is queued or running
	// attach to that execution — N clients, one simulation.
	if existing, ok := s.inflight[key]; ok {
		return existing, true, nil
	}
	s.seq++
	id := fmt.Sprintf("j%06d-%s", s.seq, key.Short())
	j := newJob(id, key, spec)
	if data, ok := s.cache.Get(key); ok {
		// Content-addressed hit: the job is born terminal with the cached
		// bytes; no queue slot, no worker, no simulation.
		j.finish(StateDone, data, "", true)
		s.jobs[id] = j
		return j, false, nil
	}
	select {
	case s.queue <- j:
	default:
		return nil, false, ErrQueueFull
	}
	s.jobs[id] = j
	s.inflight[key] = j
	return j, false, nil
}

// Job looks up a job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel requests cancellation of a job by ID.
func (s *Server) Cancel(id string) (*Job, bool) {
	j, ok := s.Job(id)
	if !ok {
		return nil, false
	}
	j.requestCancel()
	s.forgetInflight(j)
	return j, true
}

// forgetInflight drops the job from the dedup index once it can no longer
// satisfy new submissions (terminal, or cancel requested — attaching new
// clients to a dying job would hand them a canceled result they never
// asked to share).
func (s *Server) forgetInflight(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.inflight[j.Key]; ok && cur == j {
		delete(s.inflight, j.Key)
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case j, ok := <-s.queue:
			if !ok {
				return
			}
			s.execute(j)
		}
	}
}

func (s *Server) execute(j *Job) {
	defer s.forgetInflight(j)
	ctx, ok := j.begin(s.baseCtx)
	if !ok {
		return
	}
	s.simulations.Add(1)
	res, err := s.runner(ctx, j.Spec, j.setProgress)
	if err != nil {
		if errors.Is(err, context.Canceled) && (j.CancelRequested() || s.baseCtx.Err() != nil) {
			j.finish(StateCanceled, nil, context.Canceled.Error(), false)
		} else {
			j.finish(StateFailed, nil, err.Error(), false)
		}
		return
	}
	data, err := MarshalResult(res)
	if err != nil {
		j.finish(StateFailed, nil, fmt.Sprintf("serialize result: %v", err), false)
		return
	}
	s.cache.Put(j.Key, data)
	j.finish(StateDone, data, "", false)
}

// Shutdown drains the server gracefully: new submissions are refused with
// ErrDraining (503), every queued job is canceled, running campaigns have
// their contexts cancelled so they unwind with context.Canceled, and the
// workers are awaited up to ctx's deadline.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.cancelBase()
	// Drain whatever is still queued; workers racing this loop mark the
	// same jobs canceled through the already-dead base context, so both
	// paths converge on the canceled terminal state.
	for {
		select {
		case j := <-s.queue:
			j.requestCancel()
			s.forgetInflight(j)
			continue
		default:
		}
		break
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Stats is the /v1/stats payload.
type Stats struct {
	Uptime        string        `json:"uptime"`
	Workers       int           `json:"workers"`
	QueueDepth    int           `json:"queue_depth"`
	QueueCapacity int           `json:"queue_capacity"`
	Draining      bool          `json:"draining"`
	Simulations   uint64        `json:"simulations"`
	JobsByState   map[State]int `json:"jobs_by_state"`
	Cache         CacheStats    `json:"cache"`
}

// Stats snapshots serving health: queue depth, jobs by state, cache hit
// rate, simulations executed.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	byState := make(map[State]int, 5)
	for _, j := range s.jobs {
		byState[j.State()]++
	}
	draining := s.draining
	s.mu.Unlock()
	return Stats{
		Uptime:        time.Since(s.started).Round(time.Millisecond).String(),
		Workers:       s.cfg.Workers,
		QueueDepth:    len(s.queue),
		QueueCapacity: cap(s.queue),
		Draining:      draining,
		Simulations:   s.simulations.Load(),
		JobsByState:   byState,
		Cache:         s.cache.Stats(),
	}
}

// --- HTTP layer ---------------------------------------------------------

// Handler returns the daemon's HTTP API:
//
//	POST   /v1/jobs             submit a JobSpec        → 202 JobView (+deduped)
//	GET    /v1/jobs/{id}        job status              → 200 JobView
//	GET    /v1/jobs/{id}/result terminal result bytes   → 200 raw JSON
//	DELETE /v1/jobs/{id}        cancel                  → 202 JobView
//	GET    /v1/jobs/{id}/events SSE progress stream     → text/event-stream
//	GET    /v1/stats            serving health          → 200 Stats
//	GET    /healthz             liveness                → 200 always
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// SubmitResponse is the POST /v1/jobs payload: the job plus whether the
// submission attached to an existing in-flight execution.
type SubmitResponse struct {
	JobView
	Deduped bool `json:"deduped"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode spec: %w", err))
		return
	}
	job, deduped, err := s.Submit(&spec)
	switch {
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrBadSpec):
		writeError(w, http.StatusBadRequest, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusAccepted, SubmitResponse{JobView: job.View(), Deduped: deduped})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	writeJSON(w, http.StatusOK, job.View())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	data, done := job.Result()
	if !done {
		view := job.View()
		writeJSON(w, http.StatusConflict, map[string]any{
			"error": "job has no result", "state": view.State, "job_error": view.Error,
		})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	writeJSON(w, http.StatusAccepted, job.View())
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	writeEvent := func(ev Event) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}

	ch, unsubscribe := job.Subscribe()
	defer unsubscribe()
	// Initial snapshot so late subscribers see where the job stands.
	snapshot := func() Event {
		v := job.View()
		return Event{JobID: v.ID, State: v.State, Phase: v.Phase, Completed: v.Completed, Total: v.Total, Error: v.Error, Cached: v.Cached}
	}
	first := snapshot()
	if !writeEvent(first) || first.State.Terminal() {
		return
	}
	for {
		select {
		case ev := <-ch:
			if !writeEvent(ev) {
				return
			}
			if ev.State.Terminal() {
				return
			}
		case <-job.Done():
			// Drain any buffered events, then emit the terminal snapshot:
			// dropped intermediate events never cost the client the ending.
			for {
				select {
				case ev := <-ch:
					if !writeEvent(ev) {
						return
					}
					if ev.State.Terminal() {
						return
					}
					continue
				default:
				}
				break
			}
			writeEvent(snapshot())
			return
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// handleHealthz is liveness, deliberately decoupled from backpressure: a
// saturated queue is a healthy server saying "not now", so /healthz stays
// 200 under load (and during drain, where it reports the phase).
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	if s.Draining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": status})
}
