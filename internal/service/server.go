package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sinet-io/sinet/internal/core"
	"github.com/sinet-io/sinet/internal/journal"
	"github.com/sinet-io/sinet/internal/netgraph"
	"github.com/sinet-io/sinet/internal/obs"
	"github.com/sinet-io/sinet/internal/orbit"
	"github.com/sinet-io/sinet/internal/sim"
	"github.com/sinet-io/sinet/internal/tracing"
)

// Admission errors mapped to HTTP statuses by the handler layer.
var (
	// ErrDraining rejects new work during graceful shutdown (503).
	ErrDraining = errors.New("service: draining, not accepting new jobs")
	// ErrQueueFull is the backpressure signal for a saturated queue (429).
	ErrQueueFull = errors.New("service: job queue full")
)

// RunContext carries the observe-only execution hooks of one job attempt:
// progress reporting, checkpoint capture (each completed work unit is
// appended to the job journal) and the resume point restored from an
// earlier attempt or an earlier process. The zero value runs the campaign
// plain; none of the hooks parameterize results.
type RunContext struct {
	Progress   core.ProgressFunc
	Checkpoint core.CheckpointFunc
	Resume     *core.Checkpoint
}

// RunnerFunc executes a normalized spec. The default is Run; tests inject
// controllable fakes to exercise queueing, cancellation, retry and
// shutdown without simulating orbits.
type RunnerFunc func(ctx context.Context, spec *JobSpec, rc RunContext) (any, error)

// Config parameterizes a Server.
type Config struct {
	// Workers is the simulation worker-pool size (default GOMAXPROCS).
	// Each worker runs one campaign at a time; the campaign itself fans
	// out internally via sim.ForEach.
	Workers int
	// QueueDepth bounds the number of jobs waiting for a worker
	// (default 64). A full queue rejects submissions with ErrQueueFull.
	QueueDepth int
	// CacheBytes is the result cache budget; <= 0 disables caching
	// entirely (every submission recomputes), the mode the golden smoke
	// comparison runs in.
	CacheBytes int64
	// Runner overrides the campaign executor (nil = Run).
	Runner RunnerFunc
	// Metrics, when non-nil, receives the serving telemetry (jobs,
	// queue, admission, cache, campaign durations) and is served at
	// GET /metrics. New also installs the orbit and sim instruments
	// into it — those hooks are process-global, so the registry of the
	// most recently created server observes propagation counters.
	// Nil runs fully uninstrumented: zero allocations on job paths.
	Metrics *obs.Registry
	// Logger, when non-nil, receives structured request and
	// job-lifecycle logs. Nil logs nothing.
	Logger *slog.Logger
	// Tracer, when non-nil, records the distributed-tracing timeline of
	// every job — admission, queue wait, attempts, campaign phases,
	// retries, replay — into its bounded ring buffer and exposes it at
	// GET /debug/traces and GET /v1/jobs/{id}/trace. Like Metrics it is
	// strictly observe-only: the acceptance test pins served bytes
	// identical with tracing on and off. Nil disables tracing.
	Tracer *tracing.Tracer
	// JournalPath, when non-empty, enables the durable job journal: every
	// submit/start/checkpoint/retry/terminal transition is appended and
	// fsynced, and New replays the file to re-admit jobs a crashed process
	// left incomplete — under their original IDs, resuming from their last
	// checkpoint. Empty disables durability entirely.
	JournalPath string
	// JournalHook, when non-nil, is called before every journal write and
	// sync — the chaos-injection point (see internal/fault). A returned
	// error fails that append (counted, logged, never fatal to the job).
	JournalHook journal.Hook
	// JobDeadline bounds the wall time of one attempt; an attempt
	// exceeding it is cancelled and retried under the budget. 0 disables.
	JobDeadline time.Duration
	// MaxRetries is the retry budget for retryable attempt failures
	// (deadline, watchdog, panic, transient errors). 0 means an attempt
	// failure is final.
	MaxRetries int
	// RetryBackoff is the base of the exponential retry backoff
	// (default 1s, capped at 1 minute, deterministically jittered).
	RetryBackoff time.Duration
	// HeartbeatTimeout arms the staleness watchdog: a running attempt
	// reporting no progress or checkpoint for this long is shot down and
	// retried. 0 disables the watchdog.
	HeartbeatTimeout time.Duration
	// RetryAfter is the pushback hint stamped on 429 (queue full) and 503
	// (draining) responses as the Retry-After header, rounded up to whole
	// seconds (default 1s). A cluster coordinator propagates the owning
	// worker's value instead of inventing its own.
	RetryAfter time.Duration
	// CacheFill, when non-nil, is consulted on a local cache miss before a
	// worker computes: it may return the result bytes for the key from
	// elsewhere (the cluster wires it to the key's ring owner). A hit
	// finishes the job with those bytes — content addressing makes them
	// identical to what the local run would have produced. Lookup-only
	// fills must never trigger remote computation, or two peers could
	// ping-pong a key forever.
	CacheFill func(ctx context.Context, key Key) ([]byte, bool)
}

// Server is the campaign-serving engine: registry, bounded queue, worker
// pool, result cache and the HTTP API over them.
type Server struct {
	cfg     Config
	cache   *Cache
	runner  RunnerFunc
	metrics *serverMetrics
	logger  *slog.Logger
	tracer  *tracing.Tracer
	reqSeq  atomic.Uint64

	mu       sync.Mutex
	jobs     map[string]*Job
	inflight map[Key]*Job           // queued or running, by content key
	timers   map[string]*time.Timer // retry backoff timers by job ID
	draining bool
	seq      uint64

	queue      chan *Job
	baseCtx    context.Context
	cancelBase context.CancelFunc
	wg         sync.WaitGroup

	journal      *journal.Journal
	closeJournal sync.Once

	simulations atomic.Uint64
	started     time.Time
}

// New builds and starts a server: its workers are consuming the queue when
// New returns. With a JournalPath configured it first replays the journal,
// truncating any torn tail, and re-admits every job the previous process
// left incomplete — so a restart after a crash picks campaigns back up
// from their last checkpoint. Stop it with Shutdown.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Runner == nil {
		cfg.Runner = Run
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		cache:      NewCache(cfg.CacheBytes),
		runner:     cfg.Runner,
		logger:     cfg.Logger,
		tracer:     cfg.Tracer,
		jobs:       map[string]*Job{},
		inflight:   map[Key]*Job{},
		timers:     map[string]*time.Timer{},
		queue:      make(chan *Job, cfg.QueueDepth),
		baseCtx:    ctx,
		cancelBase: cancel,
		started:    time.Now().UTC(),
	}
	// Telemetry wires up before the workers start so no job can race the
	// registration; the orbit/sim hooks are process-global (see
	// Config.Metrics) and only observe, never perturb, simulations.
	s.metrics = newServerMetrics(cfg.Metrics, s)
	if cfg.Metrics != nil {
		orbit.SetMetrics(cfg.Metrics)
		sim.SetMetrics(cfg.Metrics)
		netgraph.SetMetrics(cfg.Metrics)
	}
	// Recovery runs before the workers start, so every re-admitted job is
	// queued (and the sequence counter restored) before any new traffic.
	if cfg.JournalPath != "" {
		jnl, recs, err := journal.Open(cfg.JournalPath, journal.Options{Hook: cfg.JournalHook})
		if err != nil {
			cancel()
			return nil, fmt.Errorf("service: open job journal: %w", err)
		}
		s.journal = jnl
		s.replay(recs)
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	if cfg.HeartbeatTimeout > 0 {
		s.wg.Add(1)
		go s.watchdog()
	}
	return s, nil
}

// jobSeq parses the numeric sequence out of a "j%06d-<key>" job ID.
func jobSeq(id string) (uint64, bool) {
	if !strings.HasPrefix(id, "j") {
		return 0, false
	}
	dash := strings.IndexByte(id, '-')
	if dash < 0 {
		return 0, false
	}
	n, err := strconv.ParseUint(id[1:dash], 10, 64)
	return n, err == nil
}

// replay folds the journal's surviving records and re-admits every job
// that never reached a terminal state: same ID (clients polling across
// the restart keep working), the accumulated checkpoint as the resume
// point, and the attempt counter continuing where the dead process left
// off. Undecodable records are skipped — one corrupt entry must not take
// down recovery of the rest — and the ID sequence is restored past every
// journaled job so new IDs can never collide with replayed ones.
func (s *Server) replay(recs []journal.Record) {
	var replayStart time.Time
	if s.tracer != nil {
		replayStart = time.Now()
	}
	type pending struct {
		submit   journal.Record
		attempts int
		cp       *core.Checkpoint
		terminal bool
	}
	byID := map[string]*pending{}
	var order []string
	readmitted := 0
	for _, rec := range recs {
		if n, ok := jobSeq(rec.JobID); ok && n > s.seq {
			s.seq = n
		}
		p := byID[rec.JobID]
		if p == nil {
			if rec.Op != journal.OpSubmit {
				continue // orphan record (e.g. duplicate done after a crash): nothing to resume
			}
			byID[rec.JobID] = &pending{submit: rec}
			order = append(order, rec.JobID)
			continue
		}
		switch rec.Op {
		case journal.OpStart:
			if rec.Attempt > p.attempts {
				p.attempts = rec.Attempt
			}
		case journal.OpCheckpoint:
			if p.cp == nil {
				p.cp = core.NewCheckpoint()
			}
			p.cp.Add(rec.Phase, rec.Index, rec.Total, rec.Unit)
		case journal.OpDone, journal.OpFail, journal.OpCancel:
			p.terminal = true
		}
	}
	for _, id := range order {
		p := byID[id]
		if p.terminal {
			continue
		}
		spec := new(JobSpec)
		if err := json.Unmarshal(p.submit.Spec, spec); err != nil {
			s.logReplaySkip(id, err)
			continue
		}
		if err := spec.Normalize(); err != nil {
			s.logReplaySkip(id, err)
			continue
		}
		j := newJob(id, Key(p.submit.Key), spec)
		j.attempt = p.attempts
		j.checkpoint = p.cp
		// Rejoin the trace the job was born under: the original root span
		// died unrecorded with the old process, but restoring its context
		// parents every resumed attempt onto the same distributed timeline
		// (the export layer treats spans with absent parents as roots).
		if sc, ok := tracing.ParseTraceparent(p.submit.Trace); ok {
			j.setTrace(sc, nil)
		}
		select {
		case s.queue <- j:
		default:
			s.logReplaySkip(id, ErrQueueFull)
			continue
		}
		s.jobs[id] = j
		s.inflight[j.Key] = j
		readmitted++
		s.metrics.observeReplayed()
		s.logJob(j, "job re-admitted from journal",
			slog.Int("attempts", p.attempts),
			slog.Int("checkpointed_units", p.cp.Len()))
		if s.tracer != nil {
			if sc := j.TraceContext(); sc.Valid() {
				now := time.Now()
				s.tracer.Record(sc, "job.resume", replayStart, now,
					tracing.Int("attempts", p.attempts),
					tracing.Int("checkpointed_units", p.cp.Len()))
			}
		}
	}
	if s.tracer != nil {
		s.tracer.Record(tracing.SpanContext{}, "journal.replay", replayStart, time.Now(),
			tracing.Int("records", len(recs)),
			tracing.Int("readmitted", readmitted))
	}
}

func (s *Server) logReplaySkip(id string, err error) {
	if s.logger != nil {
		s.logger.Warn("journal replay: skipping job", slog.String("job", id), slog.String("error", err.Error()))
	}
}

// journalAppend persists one record when the journal is enabled. Append
// errors degrade durability, never availability: they are counted and
// logged, and the job proceeds.
func (s *Server) journalAppend(rec journal.Record) {
	if s.journal == nil {
		return
	}
	if err := s.journal.Append(rec); err != nil {
		if errors.Is(err, journal.ErrClosed) {
			return // shutdown race: the drain already closed the file
		}
		s.metrics.observeJournalError()
		if s.logger != nil {
			s.logger.Warn("journal append failed",
				slog.String("op", string(rec.Op)),
				slog.String("job", rec.JobID),
				slog.String("error", err.Error()))
		}
	}
}

// watchdog periodically shoots down running attempts whose heartbeat
// (progress or checkpoint activity) has gone stale: the attempt's context
// is cancelled, the worker unwinds, and the attempt retries under the
// normal budget.
func (s *Server) watchdog() {
	defer s.wg.Done()
	interval := s.cfg.HeartbeatTimeout / 4
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-tick.C:
			s.mu.Lock()
			jobs := make([]*Job, 0, len(s.jobs))
			for _, j := range s.jobs {
				jobs = append(jobs, j)
			}
			s.mu.Unlock()
			for _, j := range jobs {
				if j.markStale(s.cfg.HeartbeatTimeout) {
					s.metrics.observeStale()
					s.logJob(j, "job heartbeat stale, cancelling attempt")
				}
			}
		}
	}
}

// Submit admits one spec: it is normalized, keyed, deduped against
// in-flight identical jobs, answered from the cache when possible, and
// otherwise queued. deduped reports whether an existing in-flight job was
// returned instead of a new one.
func (s *Server) Submit(spec *JobSpec) (job *Job, deduped bool, err error) {
	return s.SubmitTraced(spec, tracing.SpanContext{})
}

// SubmitTraced is Submit with an optional caller span context (parsed
// from an incoming traceparent header): with tracing on, a newly created
// job's root "job" span becomes a child of the caller's span — on a
// cluster this is what stitches the coordinator's proxy/shard spans and
// the worker's execution spans into one trace — and every admission
// outcome (queued, cache hit, dedup, draining, queue full, bad spec) is
// recorded as an "admission" span.
func (s *Server) SubmitTraced(spec *JobSpec, parent tracing.SpanContext) (job *Job, deduped bool, err error) {
	var admitStart time.Time
	if s.tracer != nil {
		admitStart = time.Now()
	}
	admit := func(under tracing.SpanContext, outcome string) {
		if s.tracer != nil {
			s.tracer.Record(under, "admission", admitStart, time.Now(),
				tracing.String("outcome", outcome))
		}
	}
	key, err := ConfigKey(spec)
	if err != nil {
		admit(parent, "bad_spec")
		return nil, false, err
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		admit(parent, "draining")
		return nil, false, ErrDraining
	}
	// Singleflight: identical submissions while one is queued or running
	// attach to that execution — N clients, one simulation.
	if existing, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		s.metrics.observeDedup()
		admit(existing.TraceContext(), "deduped")
		s.logJob(existing, "job deduped")
		return existing, true, nil
	}
	s.seq++
	id := fmt.Sprintf("j%06d-%s", s.seq, key.Short())
	j := newJob(id, key, spec)
	root := s.tracer.StartChild(parent, "job",
		tracing.String("job", id),
		tracing.String("kind", spec.Kind),
		tracing.String("key", key.Short()))
	j.setTrace(root.Context(), root)
	if data, ok := s.cache.Get(key); ok {
		// Content-addressed hit: the job is born terminal with the cached
		// bytes; no queue slot, no worker, no simulation — and no journal
		// record, since there is nothing to resume.
		admit(root.Context(), "cache_hit")
		j.finish(StateDone, data, "", true)
		s.jobs[id] = j
		s.mu.Unlock()
		s.metrics.observeFinished(spec.Kind, StateDone, 0)
		s.logJob(j, "job served from cache", slog.Int("bytes", len(data)))
		return j, false, nil
	}
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		// The never-ended root span is simply dropped — only the admission
		// outcome records the rejection.
		admit(parent, "queue_full")
		return nil, false, ErrQueueFull
	}
	s.jobs[id] = j
	s.inflight[key] = j
	s.mu.Unlock()
	admit(root.Context(), "queued")
	// The submit record carries the canonical spec, so a restarted daemon
	// can rebuild and re-run the exact campaign. Appended outside the
	// server lock: the fsync must not stall unrelated lookups.
	if s.journal != nil {
		if canonical, err := json.Marshal(spec); err == nil {
			s.journalAppend(journal.Record{Op: journal.OpSubmit, JobID: id, Key: string(key), Spec: canonical,
				Trace: root.Context().Traceparent()})
		}
	}
	s.logJob(j, "job queued")
	return j, false, nil
}

// logJob emits one job-lifecycle log line when logging is configured.
func (s *Server) logJob(j *Job, msg string, attrs ...slog.Attr) {
	if s.logger == nil {
		return
	}
	base := []slog.Attr{
		slog.String("job", j.ID),
		slog.String("kind", j.Spec.Kind),
		slog.String("key", j.Key.Short()),
	}
	if sc := j.TraceContext(); sc.Valid() {
		base = append(base, slog.String("trace", sc.TraceID.String()))
	}
	s.logger.LogAttrs(context.Background(), slog.LevelInfo, msg, append(base, attrs...)...)
}

// countJobs counts registered jobs in one state; the jobs-by-state
// gauges sample it at scrape time.
func (s *Server) countJobs(state State) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, j := range s.jobs {
		if j.State() == state {
			n++
		}
	}
	return n
}

// Job looks up a job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel requests cancellation of a job by ID.
func (s *Server) Cancel(id string) (*Job, bool) {
	j, ok := s.Job(id)
	if !ok {
		return nil, false
	}
	if j.requestCancel() {
		// Canceled straight out of the queue: no worker will ever see
		// this job, so account for its terminal transition here.
		s.journalAppend(journal.Record{Op: journal.OpCancel, JobID: j.ID})
		s.metrics.observeFinished(j.Spec.Kind, StateCanceled, 0)
	}
	s.logJob(j, "job cancel requested")
	s.forgetInflight(j)
	return j, true
}

// forgetInflight drops the job from the dedup index once it can no longer
// satisfy new submissions (terminal, or cancel requested — attaching new
// clients to a dying job would hand them a canceled result they never
// asked to share).
func (s *Server) forgetInflight(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.inflight[j.Key]; ok && cur == j {
		delete(s.inflight, j.Key)
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case j, ok := <-s.queue:
			if !ok {
				return
			}
			s.execute(j)
		}
	}
}

func (s *Server) execute(j *Job) {
	ctx, attempt, ok := j.begin(s.baseCtx)
	if !ok {
		s.forgetInflight(j)
		return
	}
	// Trace the attempt: a retrospective queue.wait span covering queue
	// entry to this pickup, then a live "attempt" span injected into ctx
	// so campaign phases (sim.ForEachPhaseCtx, core checkpointed fan-outs)
	// nest under it.
	if s.tracer != nil {
		if sc := j.TraceContext(); sc.Valid() {
			s.tracer.Record(sc, "queue.wait", j.enqueuedAt(), time.Now(),
				tracing.Int("attempt", attempt))
			ctx = tracing.NewContext(ctx, s.tracer, sc)
		}
	}
	ctx, att := tracing.Start(ctx, "attempt", tracing.Int("attempt", attempt))
	cancelAttempt := func() {}
	if s.cfg.JobDeadline > 0 {
		ctx, cancelAttempt = context.WithTimeout(ctx, s.cfg.JobDeadline)
	}
	// Peer fill: before paying for a simulation, ask the configured
	// remote cache (the key's ring owner in a cluster). A hit finishes
	// the job with the peer's bytes — equal keys mean equal bytes, so
	// this is indistinguishable from computing locally, minus the work.
	if s.cfg.CacheFill != nil {
		var fillStart time.Time
		if att != nil {
			fillStart = time.Now()
		}
		data, hit := s.cfg.CacheFill(ctx, j.Key)
		if att != nil {
			s.tracer.Record(att.Context(), "cache.peer_fill", fillStart, time.Now(),
				tracing.Bool("hit", hit), tracing.Int("bytes", len(data)))
		}
		if hit {
			cancelAttempt()
			att.SetAttr(tracing.String("outcome", "peer_fill"))
			att.End()
			s.cache.Put(j.Key, data)
			s.journalAppend(journal.Record{Op: journal.OpDone, JobID: j.ID, Attempt: attempt})
			j.finish(StateDone, data, "", true)
			s.metrics.observePeerFill()
			s.logJob(j, "job filled from peer cache", slog.Int("bytes", len(data)))
			s.settle(j)
			return
		}
	}
	s.simulations.Add(1)
	s.metrics.observeRun()
	s.journalAppend(journal.Record{Op: journal.OpStart, JobID: j.ID, Attempt: attempt})
	s.logJob(j, "job running", slog.Int("attempt", attempt))

	res, err := s.runAttempt(ctx, j)
	cancelAttempt()
	if err == nil {
		data, merr := MarshalResult(res)
		if merr != nil {
			msg := fmt.Sprintf("serialize result: %v", merr)
			att.SetError(merr)
			att.SetAttr(tracing.String("outcome", "failed"))
			att.End()
			s.journalAppend(journal.Record{Op: journal.OpFail, JobID: j.ID, Attempt: attempt, Err: msg})
			j.finish(StateFailed, nil, msg, false)
			s.settle(j)
			return
		}
		att.SetAttr(tracing.String("outcome", "done"), tracing.Int("bytes", len(data)))
		att.End()
		s.cache.Put(j.Key, data)
		s.journalAppend(journal.Record{Op: journal.OpDone, JobID: j.ID, Attempt: attempt})
		j.finish(StateDone, data, "", false)
		s.settle(j)
		return
	}

	switch {
	case errors.Is(err, context.Canceled) && (j.CancelRequested() || s.baseCtx.Err() != nil):
		// A user cancel or the drain: terminal, never retried.
		att.SetAttr(tracing.String("outcome", "canceled"))
		att.End()
		s.journalAppend(journal.Record{Op: journal.OpCancel, JobID: j.ID, Attempt: attempt})
		j.finish(StateCanceled, nil, context.Canceled.Error(), false)
		s.settle(j)
		return
	case j.staleAttempt():
		att.SetAttr(tracing.Bool("heartbeat_stale", true))
		err = fmt.Errorf("service: attempt %d heartbeat stale for %v: %w", attempt, s.cfg.HeartbeatTimeout, err)
	case errors.Is(err, context.DeadlineExceeded):
		att.SetAttr(tracing.Bool("deadline_exceeded", true))
		err = fmt.Errorf("service: attempt %d exceeded the %v job deadline: %w", attempt, s.cfg.JobDeadline, err)
	}
	att.SetError(err)
	if !retryable(err) || attempt > s.cfg.MaxRetries {
		msg := err.Error()
		if retryable(err) && s.cfg.MaxRetries > 0 {
			msg = fmt.Sprintf("%s (retry budget of %d exhausted)", msg, s.cfg.MaxRetries)
		}
		att.SetAttr(tracing.String("outcome", "failed"))
		att.End()
		s.journalAppend(journal.Record{Op: journal.OpFail, JobID: j.ID, Attempt: attempt, Err: msg})
		j.finish(StateFailed, nil, msg, false)
		s.settle(j)
		return
	}
	att.SetAttr(tracing.String("outcome", "retry"))
	att.End()
	s.scheduleRetry(j, attempt, err)
}

// runAttempt executes one attempt with panic isolation: a panicking
// campaign must not take down the worker goroutine (and with it the
// daemon); the panic becomes a retryable attempt error instead.
func (s *Server) runAttempt(ctx context.Context, j *Job) (res any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("service: runner panicked: %v", r)
		}
	}()
	rc := RunContext{
		Progress: func(phase string, completed, total int) {
			j.beat()
			j.setProgress(phase, completed, total)
		},
		Checkpoint: func(phase string, index, total int, unit []byte) {
			j.beat()
			j.addUnit(phase, index, total, unit)
			s.journalAppend(journal.Record{Op: journal.OpCheckpoint, JobID: j.ID, Phase: phase, Index: index, Total: total, Unit: unit})
		},
		Resume: j.resumePoint(),
	}
	return s.runner(ctx, j.Spec, rc)
}

// retryable classifies an attempt error: spec and config validation
// failures can never succeed on a retry; everything else — deadline,
// watchdog shot, panic, transient runner faults — is worth the budget.
func retryable(err error) bool {
	return !errors.Is(err, ErrBadSpec) && !errors.Is(err, core.ErrInvalidConfig)
}

// maxRetryBackoff caps the exponential retry backoff.
const maxRetryBackoff = time.Minute

// retryDelay computes the deterministic backoff before retry `attempt+1`:
// base·2^(attempt−1), capped, then jittered into [d/2, d) by the named
// stream "retry/<key>/<attempt>" — so a restarted daemon schedules the
// identical delay and adding other RNG consumers never perturbs it.
func retryDelay(key Key, attempt int, base time.Duration) time.Duration {
	if base <= 0 {
		base = time.Second
	}
	d := base
	for i := 1; i < attempt && d < maxRetryBackoff; i++ {
		d *= 2
	}
	if d > maxRetryBackoff {
		d = maxRetryBackoff
	}
	rng := sim.NewRNG(0, fmt.Sprintf("retry/%s/%d", key.Short(), attempt))
	half := d / 2
	return half + time.Duration(rng.Float64()*float64(d-half))
}

// scheduleRetry re-queues a job after a retryable attempt failure, holding
// it out of the queue for the backoff.
func (s *Server) scheduleRetry(j *Job, attempt int, cause error) {
	if !j.requeue() {
		// A cancel won the race and finished the job.
		s.settle(j)
		return
	}
	s.metrics.observeRetry()
	s.journalAppend(journal.Record{Op: journal.OpRetry, JobID: j.ID, Attempt: attempt, Err: cause.Error()})
	if s.tracer != nil {
		j.noteRetry(attempt, cause.Error())
	}
	delay := retryDelay(j.Key, attempt, s.cfg.RetryBackoff)
	s.logJob(j, "job retry scheduled",
		slog.Int("attempt", attempt),
		slog.Duration("backoff", delay),
		slog.String("cause", cause.Error()))
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.cancelAbandoned(j)
		return
	}
	s.timers[j.ID] = time.AfterFunc(delay, func() { s.enqueueRetry(j) })
	s.mu.Unlock()
}

// enqueueRetry moves a backoff-expired job back onto the queue.
func (s *Server) enqueueRetry(j *Job) {
	s.mu.Lock()
	delete(s.timers, j.ID)
	draining := s.draining
	s.mu.Unlock()
	if draining {
		s.cancelAbandoned(j)
		return
	}
	if j.State() != StateQueued {
		return // canceled while waiting out the backoff
	}
	select {
	case s.queue <- j:
		if s.tracer != nil {
			if start, attempt, cause, ok := j.takeRetry(); ok {
				if sc := j.TraceContext(); sc.Valid() {
					s.tracer.Record(sc, "retry.backoff", start, time.Now(),
						tracing.Int("attempt", attempt),
						tracing.String("cause", cause))
				}
			}
		}
		s.logJob(j, "job requeued for retry")
	default:
		msg := "service: queue full on retry"
		s.journalAppend(journal.Record{Op: journal.OpFail, JobID: j.ID, Err: msg})
		j.finish(StateFailed, nil, msg, false)
		s.settle(j)
	}
}

// cancelAbandoned finishes a job the drain left without a worker.
func (s *Server) cancelAbandoned(j *Job) {
	if j.requestCancel() {
		s.journalAppend(journal.Record{Op: journal.OpCancel, JobID: j.ID})
		s.metrics.observeFinished(j.Spec.Kind, StateCanceled, 0)
	}
	s.forgetInflight(j)
}

// settle does the one-time terminal bookkeeping for a worker-owned job:
// dedup-index removal, metrics and logging. The recorded duration spans
// the final attempt's worker pickup to its terminal state.
func (s *Server) settle(j *Job) {
	s.forgetInflight(j)
	s.metrics.observeFinished(j.Spec.Kind, j.State(), j.runtime().Seconds())
	s.logJob(j, "job finished",
		slog.String("state", string(j.State())),
		slog.Duration("took", j.runtime()),
		slog.String("error", j.ErrorText()))
}

// Shutdown drains the server gracefully: new submissions are refused with
// ErrDraining (503), every queued job (including jobs waiting out a retry
// backoff) is canceled, running campaigns have their contexts cancelled so
// they unwind with context.Canceled, and the workers are awaited up to
// ctx's deadline. On a clean drain the journal is synced and closed.
// Shutdown is idempotent: a second call re-waits for the workers and
// returns cleanly.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	first := !s.draining
	s.draining = true
	// Steal the backoff timers under the lock so no new ones can be armed
	// (scheduleRetry checks draining) and each waiting job is settled
	// exactly once.
	waiting := make([]*Job, 0, len(s.timers))
	timers := make([]*time.Timer, 0, len(s.timers))
	for id, t := range s.timers {
		timers = append(timers, t)
		if j, ok := s.jobs[id]; ok {
			waiting = append(waiting, j)
		}
		delete(s.timers, id)
	}
	s.mu.Unlock()
	if first && s.logger != nil {
		s.logger.Info("draining", slog.Int("queued", len(s.queue)))
	}
	s.cancelBase()
	for _, t := range timers {
		t.Stop()
	}
	for _, j := range waiting {
		s.cancelAbandoned(j)
	}
	// Drain whatever is still queued; workers racing this loop mark the
	// same jobs canceled through the already-dead base context, so both
	// paths converge on the canceled terminal state.
	for {
		select {
		case j := <-s.queue:
			s.cancelAbandoned(j)
			continue
		default:
		}
		break
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		if s.journal != nil {
			s.closeJournal.Do(func() {
				if err := s.journal.Close(); err != nil && s.logger != nil {
					s.logger.Warn("journal close failed", slog.String("error", err.Error()))
				}
			})
		}
		if first && s.logger != nil {
			s.logger.Info("drained")
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Stats is the /v1/stats payload.
type Stats struct {
	Uptime        string        `json:"uptime"`
	Workers       int           `json:"workers"`
	QueueDepth    int           `json:"queue_depth"`
	QueueCapacity int           `json:"queue_capacity"`
	Draining      bool          `json:"draining"`
	Simulations   uint64        `json:"simulations"`
	JobsByState   map[State]int `json:"jobs_by_state"`
	Cache         CacheStats    `json:"cache"`
}

// Stats snapshots serving health: queue depth, jobs by state, cache hit
// rate, simulations executed.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	byState := make(map[State]int, 5)
	for _, j := range s.jobs {
		byState[j.State()]++
	}
	draining := s.draining
	s.mu.Unlock()
	return Stats{
		Uptime:        time.Since(s.started).Round(time.Millisecond).String(),
		Workers:       s.cfg.Workers,
		QueueDepth:    len(s.queue),
		QueueCapacity: cap(s.queue),
		Draining:      draining,
		Simulations:   s.simulations.Load(),
		JobsByState:   byState,
		Cache:         s.cache.Stats(),
	}
}

// --- HTTP layer ---------------------------------------------------------

// Handler returns the daemon's HTTP API:
//
//	POST   /v1/jobs             submit a JobSpec        → 202 JobView (+deduped)
//	GET    /v1/jobs/{id}        job status              → 200 JobView
//	GET    /v1/jobs/{id}/result terminal result bytes   → 200 raw JSON
//	DELETE /v1/jobs/{id}        cancel                  → 202 JobView
//	GET    /v1/jobs/{id}/events SSE progress stream     → text/event-stream
//	GET    /v1/stats            serving health          → 200 Stats
//	GET    /v1/cache            peer cache lookup       → 200 raw JSON | 404
//	GET    /healthz             liveness                → 200 always
//	GET    /readyz              readiness               → 200 | 503 draining
//	GET    /metrics             Prometheus scrape       → (when Config.Metrics is set)
//	GET    /v1/jobs/{id}/trace  assembled job timeline  → (when Config.Tracer is set)
//	GET    /debug/traces        recent root spans       → (when Config.Tracer is set)
//
// Every request carries an X-Request-Id: the client's own, when it sent
// one, else a generated process-unique ID — echoed on the response so
// client-visible IDs match the request log lines. With Config.Logger
// set, every request is logged with that ID, method, path, status,
// duration, and the incoming traceparent's trace ID when present.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/cache", s.handleCacheLookup)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	if s.cfg.Metrics != nil {
		mux.Handle("GET /metrics", s.cfg.Metrics.Handler())
	}
	if s.tracer != nil {
		mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
		mux.HandleFunc("GET /debug/traces", s.handleDebugTraces)
	}
	return s.instrument(mux)
}

// statusWriter captures the response status for the request log while
// passing Flush through so SSE streaming keeps working behind it.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps next with request correlation and logging. Every
// request gets an X-Request-Id — the client's own when it sent one, a
// process-unique "r%06d" otherwise — echoed on the response header, so
// the ID a client sees matches the journal and log lines (and a cluster
// coordinator's generated ID survives the hop to the owning worker).
// With logging configured each request is also logged; scrape and
// liveness polls log at Debug so an Info-level daemon isn't drowned by
// its own monitoring.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = fmt.Sprintf("r%06d", s.reqSeq.Add(1))
		}
		w.Header().Set("X-Request-Id", id)
		if s.logger == nil {
			next.ServeHTTP(w, r)
			return
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r)
		level := slog.LevelInfo
		if r.URL.Path == "/healthz" || r.URL.Path == "/readyz" || r.URL.Path == "/metrics" {
			level = slog.LevelDebug
		}
		attrs := []slog.Attr{
			slog.String("req", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Duration("took", time.Since(start)),
		}
		if sc := tracing.FromRequest(r); sc.Valid() {
			attrs = append(attrs, slog.String("trace", sc.TraceID.String()))
		}
		s.logger.LogAttrs(r.Context(), level, "request", attrs...)
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// SubmitResponse is the POST /v1/jobs payload: the job plus whether the
// submission attached to an existing in-flight execution.
type SubmitResponse struct {
	JobView
	Deduped bool `json:"deduped"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		s.metrics.observeAdmission(http.StatusBadRequest)
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode spec: %w", err))
		return
	}
	job, deduped, err := s.SubmitTraced(&spec, tracing.FromRequest(r))
	switch {
	case errors.Is(err, ErrDraining):
		s.metrics.observeAdmission(http.StatusServiceUnavailable)
		w.Header().Set("Retry-After", s.retryAfterValue())
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, ErrQueueFull):
		s.metrics.observeAdmission(http.StatusTooManyRequests)
		w.Header().Set("Retry-After", s.retryAfterValue())
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrBadSpec):
		s.metrics.observeAdmission(http.StatusBadRequest)
		writeError(w, http.StatusBadRequest, err)
		return
	case err != nil:
		s.metrics.observeAdmission(http.StatusInternalServerError)
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.metrics.observeAdmission(http.StatusAccepted)
	writeJSON(w, http.StatusAccepted, SubmitResponse{JobView: job.View(), Deduped: deduped})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	writeJSON(w, http.StatusOK, job.View())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	data, done := job.Result()
	if !done {
		view := job.View()
		writeJSON(w, http.StatusConflict, map[string]any{
			"error": "job has no result", "state": view.State, "job_error": view.Error,
		})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	writeJSON(w, http.StatusAccepted, job.View())
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	writeEvent := func(ev Event) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}

	ch, unsubscribe := job.Subscribe()
	defer unsubscribe()
	defer s.metrics.sseConnect()()
	// Initial snapshot so late subscribers see where the job stands.
	snapshot := func() Event {
		v := job.View()
		return Event{JobID: v.ID, State: v.State, Phase: v.Phase, Completed: v.Completed, Total: v.Total, Error: v.Error, Cached: v.Cached}
	}
	first := snapshot()
	if !writeEvent(first) || first.State.Terminal() {
		return
	}
	for {
		select {
		case ev := <-ch:
			if !writeEvent(ev) {
				return
			}
			if ev.State.Terminal() {
				return
			}
		case <-job.Done():
			// Drain any buffered events, then emit the terminal snapshot:
			// dropped intermediate events never cost the client the ending.
			for {
				select {
				case ev := <-ch:
					if !writeEvent(ev) {
						return
					}
					if ev.State.Terminal() {
						return
					}
					continue
				default:
				}
				break
			}
			writeEvent(snapshot())
			return
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// handleHealthz is liveness, deliberately decoupled from backpressure: a
// saturated queue is a healthy server saying "not now", so /healthz stays
// 200 under load (and during drain, where it reports the phase).
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	if s.Draining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": status})
}

// handleReadyz is readiness: unlike liveness it goes 503 the moment the
// drain begins, so coordinators and load balancers stop routing new work
// to a worker that is shutting down while its in-flight jobs finish.
// (A daemon still replaying its journal isn't serving this handler yet —
// cmd/sinetd answers 503 from a boot handler during replay.)
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.Draining() {
		w.Header().Set("Retry-After", s.retryAfterValue())
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// handleCacheLookup answers peer cache probes: the raw cached result
// bytes for a content key, or 404. Strictly lookup-only — a miss never
// triggers computation, which is what keeps cluster peer fills
// (Config.CacheFill → this endpoint on the ring owner) cycle-free. The
// key travels as a query parameter because shard keys contain slashes.
func (s *Server) handleCacheLookup(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing key parameter"))
		return
	}
	data, ok := s.cache.Get(Key(key))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("not cached"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// retryAfterValue renders Config.RetryAfter as a whole-seconds header
// value, rounding up so the hint never undershoots the configured wait.
func (s *Server) retryAfterValue() string {
	d := s.cfg.RetryAfter
	if d <= 0 {
		d = time.Second
	}
	secs := int64((d + time.Second - 1) / time.Second)
	return strconv.FormatInt(secs, 10)
}
