package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sinet-io/sinet/internal/core"
	"github.com/sinet-io/sinet/internal/netgraph"
	"github.com/sinet-io/sinet/internal/obs"
	"github.com/sinet-io/sinet/internal/orbit"
	"github.com/sinet-io/sinet/internal/sim"
)

// Admission errors mapped to HTTP statuses by the handler layer.
var (
	// ErrDraining rejects new work during graceful shutdown (503).
	ErrDraining = errors.New("service: draining, not accepting new jobs")
	// ErrQueueFull is the backpressure signal for a saturated queue (429).
	ErrQueueFull = errors.New("service: job queue full")
)

// RunnerFunc executes a normalized spec. The default is Run; tests inject
// controllable fakes to exercise queueing, cancellation and shutdown
// without simulating orbits.
type RunnerFunc func(ctx context.Context, spec *JobSpec, progress core.ProgressFunc) (any, error)

// Config parameterizes a Server.
type Config struct {
	// Workers is the simulation worker-pool size (default GOMAXPROCS).
	// Each worker runs one campaign at a time; the campaign itself fans
	// out internally via sim.ForEach.
	Workers int
	// QueueDepth bounds the number of jobs waiting for a worker
	// (default 64). A full queue rejects submissions with ErrQueueFull.
	QueueDepth int
	// CacheBytes is the result cache budget; <= 0 disables caching
	// entirely (every submission recomputes), the mode the golden smoke
	// comparison runs in.
	CacheBytes int64
	// Runner overrides the campaign executor (nil = Run).
	Runner RunnerFunc
	// Metrics, when non-nil, receives the serving telemetry (jobs,
	// queue, admission, cache, campaign durations) and is served at
	// GET /metrics. New also installs the orbit and sim instruments
	// into it — those hooks are process-global, so the registry of the
	// most recently created server observes propagation counters.
	// Nil runs fully uninstrumented: zero allocations on job paths.
	Metrics *obs.Registry
	// Logger, when non-nil, receives structured request and
	// job-lifecycle logs. Nil logs nothing.
	Logger *slog.Logger
}

// Server is the campaign-serving engine: registry, bounded queue, worker
// pool, result cache and the HTTP API over them.
type Server struct {
	cfg     Config
	cache   *Cache
	runner  RunnerFunc
	metrics *serverMetrics
	logger  *slog.Logger
	reqSeq  atomic.Uint64

	mu       sync.Mutex
	jobs     map[string]*Job
	inflight map[Key]*Job // queued or running, by content key
	draining bool
	seq      uint64

	queue      chan *Job
	baseCtx    context.Context
	cancelBase context.CancelFunc
	wg         sync.WaitGroup

	simulations atomic.Uint64
	started     time.Time
}

// New builds and starts a server: its workers are consuming the queue when
// New returns. Stop it with Shutdown.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Runner == nil {
		cfg.Runner = Run
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		cache:      NewCache(cfg.CacheBytes),
		runner:     cfg.Runner,
		logger:     cfg.Logger,
		jobs:       map[string]*Job{},
		inflight:   map[Key]*Job{},
		queue:      make(chan *Job, cfg.QueueDepth),
		baseCtx:    ctx,
		cancelBase: cancel,
		started:    time.Now().UTC(),
	}
	// Telemetry wires up before the workers start so no job can race the
	// registration; the orbit/sim hooks are process-global (see
	// Config.Metrics) and only observe, never perturb, simulations.
	s.metrics = newServerMetrics(cfg.Metrics, s)
	if cfg.Metrics != nil {
		orbit.SetMetrics(cfg.Metrics)
		sim.SetMetrics(cfg.Metrics)
		netgraph.SetMetrics(cfg.Metrics)
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Submit admits one spec: it is normalized, keyed, deduped against
// in-flight identical jobs, answered from the cache when possible, and
// otherwise queued. deduped reports whether an existing in-flight job was
// returned instead of a new one.
func (s *Server) Submit(spec *JobSpec) (job *Job, deduped bool, err error) {
	key, err := ConfigKey(spec)
	if err != nil {
		return nil, false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, false, ErrDraining
	}
	// Singleflight: identical submissions while one is queued or running
	// attach to that execution — N clients, one simulation.
	if existing, ok := s.inflight[key]; ok {
		s.metrics.observeDedup()
		s.logJob(existing, "job deduped")
		return existing, true, nil
	}
	s.seq++
	id := fmt.Sprintf("j%06d-%s", s.seq, key.Short())
	j := newJob(id, key, spec)
	if data, ok := s.cache.Get(key); ok {
		// Content-addressed hit: the job is born terminal with the cached
		// bytes; no queue slot, no worker, no simulation.
		j.finish(StateDone, data, "", true)
		s.jobs[id] = j
		s.metrics.observeFinished(spec.Kind, StateDone, 0)
		s.logJob(j, "job served from cache", slog.Int("bytes", len(data)))
		return j, false, nil
	}
	select {
	case s.queue <- j:
	default:
		return nil, false, ErrQueueFull
	}
	s.jobs[id] = j
	s.inflight[key] = j
	s.logJob(j, "job queued")
	return j, false, nil
}

// logJob emits one job-lifecycle log line when logging is configured.
func (s *Server) logJob(j *Job, msg string, attrs ...slog.Attr) {
	if s.logger == nil {
		return
	}
	base := []slog.Attr{
		slog.String("job", j.ID),
		slog.String("kind", j.Spec.Kind),
		slog.String("key", j.Key.Short()),
	}
	s.logger.LogAttrs(context.Background(), slog.LevelInfo, msg, append(base, attrs...)...)
}

// countJobs counts registered jobs in one state; the jobs-by-state
// gauges sample it at scrape time.
func (s *Server) countJobs(state State) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, j := range s.jobs {
		if j.State() == state {
			n++
		}
	}
	return n
}

// Job looks up a job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel requests cancellation of a job by ID.
func (s *Server) Cancel(id string) (*Job, bool) {
	j, ok := s.Job(id)
	if !ok {
		return nil, false
	}
	if j.requestCancel() {
		// Canceled straight out of the queue: no worker will ever see
		// this job, so account for its terminal transition here.
		s.metrics.observeFinished(j.Spec.Kind, StateCanceled, 0)
	}
	s.logJob(j, "job cancel requested")
	s.forgetInflight(j)
	return j, true
}

// forgetInflight drops the job from the dedup index once it can no longer
// satisfy new submissions (terminal, or cancel requested — attaching new
// clients to a dying job would hand them a canceled result they never
// asked to share).
func (s *Server) forgetInflight(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.inflight[j.Key]; ok && cur == j {
		delete(s.inflight, j.Key)
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case j, ok := <-s.queue:
			if !ok {
				return
			}
			s.execute(j)
		}
	}
}

func (s *Server) execute(j *Job) {
	defer s.forgetInflight(j)
	ctx, ok := j.begin(s.baseCtx)
	if !ok {
		return
	}
	s.simulations.Add(1)
	s.metrics.observeRun()
	s.logJob(j, "job running")
	defer func() {
		// Observation happens after the terminal transition so the
		// recorded duration spans worker pickup to terminal state.
		s.metrics.observeFinished(j.Spec.Kind, j.State(), j.runtime().Seconds())
		s.logJob(j, "job finished",
			slog.String("state", string(j.State())),
			slog.Duration("took", j.runtime()),
			slog.String("error", j.ErrorText()))
	}()
	res, err := s.runner(ctx, j.Spec, j.setProgress)
	if err != nil {
		if errors.Is(err, context.Canceled) && (j.CancelRequested() || s.baseCtx.Err() != nil) {
			j.finish(StateCanceled, nil, context.Canceled.Error(), false)
		} else {
			j.finish(StateFailed, nil, err.Error(), false)
		}
		return
	}
	data, err := MarshalResult(res)
	if err != nil {
		j.finish(StateFailed, nil, fmt.Sprintf("serialize result: %v", err), false)
		return
	}
	s.cache.Put(j.Key, data)
	j.finish(StateDone, data, "", false)
}

// Shutdown drains the server gracefully: new submissions are refused with
// ErrDraining (503), every queued job is canceled, running campaigns have
// their contexts cancelled so they unwind with context.Canceled, and the
// workers are awaited up to ctx's deadline.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	if s.logger != nil {
		s.logger.Info("draining", slog.Int("queued", len(s.queue)))
	}
	s.cancelBase()
	// Drain whatever is still queued; workers racing this loop mark the
	// same jobs canceled through the already-dead base context, so both
	// paths converge on the canceled terminal state.
	for {
		select {
		case j := <-s.queue:
			if j.requestCancel() {
				s.metrics.observeFinished(j.Spec.Kind, StateCanceled, 0)
			}
			s.forgetInflight(j)
			continue
		default:
		}
		break
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		if s.logger != nil {
			s.logger.Info("drained")
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Stats is the /v1/stats payload.
type Stats struct {
	Uptime        string        `json:"uptime"`
	Workers       int           `json:"workers"`
	QueueDepth    int           `json:"queue_depth"`
	QueueCapacity int           `json:"queue_capacity"`
	Draining      bool          `json:"draining"`
	Simulations   uint64        `json:"simulations"`
	JobsByState   map[State]int `json:"jobs_by_state"`
	Cache         CacheStats    `json:"cache"`
}

// Stats snapshots serving health: queue depth, jobs by state, cache hit
// rate, simulations executed.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	byState := make(map[State]int, 5)
	for _, j := range s.jobs {
		byState[j.State()]++
	}
	draining := s.draining
	s.mu.Unlock()
	return Stats{
		Uptime:        time.Since(s.started).Round(time.Millisecond).String(),
		Workers:       s.cfg.Workers,
		QueueDepth:    len(s.queue),
		QueueCapacity: cap(s.queue),
		Draining:      draining,
		Simulations:   s.simulations.Load(),
		JobsByState:   byState,
		Cache:         s.cache.Stats(),
	}
}

// --- HTTP layer ---------------------------------------------------------

// Handler returns the daemon's HTTP API:
//
//	POST   /v1/jobs             submit a JobSpec        → 202 JobView (+deduped)
//	GET    /v1/jobs/{id}        job status              → 200 JobView
//	GET    /v1/jobs/{id}/result terminal result bytes   → 200 raw JSON
//	DELETE /v1/jobs/{id}        cancel                  → 202 JobView
//	GET    /v1/jobs/{id}/events SSE progress stream     → text/event-stream
//	GET    /v1/stats            serving health          → 200 Stats
//	GET    /healthz             liveness                → 200 always
//	GET    /metrics             Prometheus scrape       → (when Config.Metrics is set)
//
// With Config.Logger set, every request is logged with a process-unique
// request ID, method, path, status and duration.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	if s.cfg.Metrics != nil {
		mux.Handle("GET /metrics", s.cfg.Metrics.Handler())
	}
	if s.logger == nil {
		return mux
	}
	return s.logRequests(mux)
}

// statusWriter captures the response status for the request log while
// passing Flush through so SSE streaming keeps working behind it.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// logRequests wraps next with structured request logging. Each request
// gets a process-unique ID; scrape and liveness polls log at Debug so an
// Info-level daemon isn't drowned by its own monitoring.
func (s *Server) logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		id := fmt.Sprintf("r%06d", s.reqSeq.Add(1))
		start := time.Now()
		next.ServeHTTP(sw, r)
		level := slog.LevelInfo
		if r.URL.Path == "/healthz" || r.URL.Path == "/metrics" {
			level = slog.LevelDebug
		}
		s.logger.LogAttrs(r.Context(), level, "request",
			slog.String("req", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Duration("took", time.Since(start)))
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// SubmitResponse is the POST /v1/jobs payload: the job plus whether the
// submission attached to an existing in-flight execution.
type SubmitResponse struct {
	JobView
	Deduped bool `json:"deduped"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		s.metrics.observeAdmission(http.StatusBadRequest)
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode spec: %w", err))
		return
	}
	job, deduped, err := s.Submit(&spec)
	switch {
	case errors.Is(err, ErrDraining):
		s.metrics.observeAdmission(http.StatusServiceUnavailable)
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, ErrQueueFull):
		s.metrics.observeAdmission(http.StatusTooManyRequests)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrBadSpec):
		s.metrics.observeAdmission(http.StatusBadRequest)
		writeError(w, http.StatusBadRequest, err)
		return
	case err != nil:
		s.metrics.observeAdmission(http.StatusInternalServerError)
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.metrics.observeAdmission(http.StatusAccepted)
	writeJSON(w, http.StatusAccepted, SubmitResponse{JobView: job.View(), Deduped: deduped})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	writeJSON(w, http.StatusOK, job.View())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	data, done := job.Result()
	if !done {
		view := job.View()
		writeJSON(w, http.StatusConflict, map[string]any{
			"error": "job has no result", "state": view.State, "job_error": view.Error,
		})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	writeJSON(w, http.StatusAccepted, job.View())
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	writeEvent := func(ev Event) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}

	ch, unsubscribe := job.Subscribe()
	defer unsubscribe()
	defer s.metrics.sseConnect()()
	// Initial snapshot so late subscribers see where the job stands.
	snapshot := func() Event {
		v := job.View()
		return Event{JobID: v.ID, State: v.State, Phase: v.Phase, Completed: v.Completed, Total: v.Total, Error: v.Error, Cached: v.Cached}
	}
	first := snapshot()
	if !writeEvent(first) || first.State.Terminal() {
		return
	}
	for {
		select {
		case ev := <-ch:
			if !writeEvent(ev) {
				return
			}
			if ev.State.Terminal() {
				return
			}
		case <-job.Done():
			// Drain any buffered events, then emit the terminal snapshot:
			// dropped intermediate events never cost the client the ending.
			for {
				select {
				case ev := <-ch:
					if !writeEvent(ev) {
						return
					}
					if ev.State.Terminal() {
						return
					}
					continue
				default:
				}
				break
			}
			writeEvent(snapshot())
			return
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// handleHealthz is liveness, deliberately decoupled from backpressure: a
// saturated queue is a healthy server saying "not now", so /healthz stays
// 200 under load (and during drain, where it reports the phase).
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	if s.Draining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": status})
}
