package service

import (
	"bytes"
	"fmt"
	"testing"
)

func TestCacheGetPut(t *testing.T) {
	c := NewCache(1 << 10)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put("a", []byte("result-a"))
	got, ok := c.Get("a")
	if !ok || !bytes.Equal(got, []byte("result-a")) {
		t.Fatalf("Get(a) = %q, %v", got, ok)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 || s.Bytes != 8 {
		t.Fatalf("stats after one miss + one hit: %+v", s)
	}
}

func TestCacheEvictsLeastRecentlyUsed(t *testing.T) {
	// Budget fits exactly two 4-byte entries.
	c := NewCache(8)
	c.Put("a", []byte("aaaa"))
	c.Put("b", []byte("bbbb"))
	// Touch a so b is the LRU entry when c arrives.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	c.Put("c", []byte("cccc"))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived but was least recently used")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted despite being recently used")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("newest entry c missing")
	}
	if s := c.Stats(); s.Evictions != 1 || s.Bytes != 8 {
		t.Fatalf("stats after eviction: %+v", s)
	}
}

func TestCacheRejectsOversizedEntry(t *testing.T) {
	c := NewCache(4)
	c.Put("big", []byte("too large to store"))
	if _, ok := c.Get("big"); ok {
		t.Fatal("entry larger than the whole budget was stored")
	}
	if s := c.Stats(); s.Entries != 0 || s.Bytes != 0 {
		t.Fatalf("oversized put changed accounting: %+v", s)
	}
}

func TestCacheRePutRefreshesRecencyOnly(t *testing.T) {
	c := NewCache(8)
	c.Put("a", []byte("aaaa"))
	c.Put("b", []byte("bbbb"))
	// Re-put a: same content address, so only recency moves.
	c.Put("a", []byte("aaaa"))
	c.Put("c", []byte("cccc"))
	if _, ok := c.Get("a"); !ok {
		t.Fatal("re-put entry evicted")
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been the eviction victim")
	}
	if s := c.Stats(); s.Bytes != 8 {
		t.Fatalf("re-put changed the byte accounting: %+v", s)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(0)
	c.Put("a", []byte("x"))
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache stored an entry")
	}
}

func TestCacheStatsHitRateNeverNaN(t *testing.T) {
	s := NewCache(16).Stats()
	if s.HitRate != s.HitRate || s.HitRate != 0 {
		t.Fatalf("fresh cache HitRate = %v, want 0", s.HitRate)
	}
}

func TestCacheManyEntriesStayWithinBudget(t *testing.T) {
	c := NewCache(100)
	for i := 0; i < 50; i++ {
		c.Put(Key(fmt.Sprintf("k%02d", i)), bytes.Repeat([]byte{byte(i)}, 10))
	}
	s := c.Stats()
	if s.Bytes > 100 {
		t.Fatalf("cache holds %d bytes over the 100-byte budget", s.Bytes)
	}
	if s.Entries != 10 {
		t.Fatalf("expected exactly 10 resident entries, got %d", s.Entries)
	}
}
