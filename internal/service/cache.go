package service

import (
	"container/list"
	"sync"

	"github.com/sinet-io/sinet/internal/obs"
)

// Cache is the content-addressed result cache: serialized campaign results
// keyed by ConfigKey, evicted least-recently-used against a byte budget.
// Entries are immutable once stored (callers must not mutate returned
// slices), so hits are zero-copy. Safe for concurrent use.
type Cache struct {
	mu     sync.Mutex
	budget int64
	size   int64
	ll     *list.List // front = most recently used
	items  map[Key]*list.Element

	hits, misses, evictions uint64

	// Optional telemetry mirrors of the counters above, nil until
	// instrument installs them. Nil-safe obs methods keep Get/Put
	// branch-free and allocation-free when telemetry is off.
	mHits, mMisses, mEvictions *obs.Counter
}

type cacheEntry struct {
	key  Key
	data []byte
}

// NewCache creates a cache bounded to budget bytes of stored results.
// A budget <= 0 yields a disabled cache: every Get misses, every Put is
// dropped — the configuration the golden smoke test runs under.
func NewCache(budget int64) *Cache {
	return &Cache{budget: budget, ll: list.New(), items: map[Key]*list.Element{}}
}

// Get returns the cached result bytes for key, marking it recently used.
func (c *Cache) Get(key Key) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		c.mMisses.Inc()
		return nil, false
	}
	c.hits++
	c.mHits.Inc()
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).data, true
}

// Put stores the result bytes under key, evicting least-recently-used
// entries until the byte budget holds. An entry larger than the whole
// budget is not stored at all (it would evict everything for one tenant),
// and re-putting an existing key refreshes its recency without resizing.
func (c *Cache) Put(key Key, data []byte) {
	if int64(len(data)) > c.budget {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		// Same key means same content (the key is a content address), so
		// only the recency changes.
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, data: data})
	c.size += int64(len(data))
	for c.size > c.budget {
		back := c.ll.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.items, ent.key)
		c.size -= int64(len(ent.data))
		c.evictions++
		c.mEvictions.Inc()
	}
}

// instrument registers the cache's telemetry into r: hit/miss/eviction
// counters plus size gauges sampled from the authoritative fields at
// scrape time. Call before the cache sees traffic (New does); the
// internal uint64 counters stay the source of truth for Stats.
func (c *Cache) instrument(r *obs.Registry) {
	if r == nil {
		return
	}
	c.mu.Lock()
	c.mHits = r.Counter("sinet_cache_hits_total", "Result-cache lookups answered from memory.")
	c.mMisses = r.Counter("sinet_cache_misses_total", "Result-cache lookups that required a simulation.")
	c.mEvictions = r.Counter("sinet_cache_evictions_total", "Result-cache entries evicted against the byte budget.")
	c.mu.Unlock()
	r.GaugeFunc("sinet_cache_bytes", "Bytes of cached campaign results.", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(c.size)
	})
	r.GaugeFunc("sinet_cache_entries", "Cached campaign results.", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(len(c.items))
	})
}

// CacheStats is a point-in-time cache health snapshot.
type CacheStats struct {
	Entries     int     `json:"entries"`
	Bytes       int64   `json:"bytes"`
	BudgetBytes int64   `json:"budget_bytes"`
	Hits        uint64  `json:"hits"`
	Misses      uint64  `json:"misses"`
	Evictions   uint64  `json:"evictions"`
	HitRate     float64 `json:"hit_rate"`
}

// Stats returns current counters. HitRate is 0 (not NaN) before the first
// lookup, so the stats endpoint always serializes cleanly.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := CacheStats{
		Entries:     len(c.items),
		Bytes:       c.size,
		BudgetBytes: c.budget,
		Hits:        c.hits,
		Misses:      c.misses,
		Evictions:   c.evictions,
	}
	if total := c.hits + c.misses; total > 0 {
		s.HitRate = float64(c.hits) / float64(total)
	}
	return s
}
