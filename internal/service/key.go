package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
)

// keyVersion salts every ConfigKey so cache entries from incompatible
// serialization or simulation revisions can never alias.
const keyVersion = "sinetd/v1"

// Key is a content address for a campaign: the hash of the canonical
// (normalized) JobSpec, including the seed. Equal keys mean equal
// simulations — equal results bytes — which is what makes in-flight
// dedup and the result cache sound.
//
// A shard sub-spec (JobSpec.Shard set) keys as "parent/shard/i-of-n":
// the parent hash is computed over the spec with the shard clause
// removed, so every shard of a campaign shares the parent prefix while
// remaining a distinct cache entry — a shard fragment must never alias
// the full result, and the derivation makes the relationship auditable
// in logs and journals.
type Key string

// shardSep separates a parent hash from its shard suffix inside a Key.
const shardSep = "/shard/"

// ConfigKey canonicalizes and hashes the spec. The spec is normalized in
// place (defaults made explicit) so sparse and fully-written requests for
// the same campaign collide, then hashed over its canonical JSON: struct
// field order is fixed, so the encoding — and the key — is deterministic.
// Shard sub-specs derive "parent/shard/i-of-n" keys from the unsharded
// parent's hash.
func ConfigKey(spec *JobSpec) (Key, error) {
	if err := spec.Normalize(); err != nil {
		return "", err
	}
	shard := spec.Shard
	spec.Shard = nil
	canonical, err := json.Marshal(spec)
	spec.Shard = shard
	if err != nil {
		return "", fmt.Errorf("service: canonicalize spec: %w", err)
	}
	h := sha256.New()
	h.Write([]byte(keyVersion))
	h.Write([]byte{0})
	h.Write(canonical)
	parent := hex.EncodeToString(h.Sum(nil))
	if shard != nil {
		return Key(fmt.Sprintf("%s%s%d-of-%d", parent, shardSep, shard.Index, shard.Count)), nil
	}
	return Key(parent), nil
}

// Parent returns the unsharded campaign's key for a shard key, or the
// key itself when it carries no shard suffix.
func (k Key) Parent() Key {
	if i := strings.Index(string(k), shardSep); i >= 0 {
		return k[:i]
	}
	return k
}

// Short returns an abbreviated key for IDs and logs. Job IDs embed it in
// URL paths, so the form must stay path-safe: a shard key's "/shard/"
// suffix abbreviates to "-s<i>x<n>" ("ab12cd34ef56-s2x8").
func (k Key) Short() string {
	s := string(k)
	if i := strings.Index(s, shardSep); i >= 0 {
		parent, suffix := s[:i], s[i+len(shardSep):]
		if len(parent) > 12 {
			parent = parent[:12]
		}
		return parent + "-s" + strings.ReplaceAll(suffix, "-of-", "x")
	}
	if len(s) <= 12 {
		return s
	}
	return s[:12]
}
