package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// keyVersion salts every ConfigKey so cache entries from incompatible
// serialization or simulation revisions can never alias.
const keyVersion = "sinetd/v1"

// Key is a content address for a campaign: the hash of the canonical
// (normalized) JobSpec, including the seed. Equal keys mean equal
// simulations — equal results bytes — which is what makes in-flight
// dedup and the result cache sound.
type Key string

// ConfigKey canonicalizes and hashes the spec. The spec is normalized in
// place (defaults made explicit) so sparse and fully-written requests for
// the same campaign collide, then hashed over its canonical JSON: struct
// field order is fixed, so the encoding — and the key — is deterministic.
func ConfigKey(spec *JobSpec) (Key, error) {
	if err := spec.Normalize(); err != nil {
		return "", err
	}
	canonical, err := json.Marshal(spec)
	if err != nil {
		return "", fmt.Errorf("service: canonicalize spec: %w", err)
	}
	h := sha256.New()
	h.Write([]byte(keyVersion))
	h.Write([]byte{0})
	h.Write(canonical)
	return Key(hex.EncodeToString(h.Sum(nil))), nil
}

// Short returns an abbreviated key for IDs and logs.
func (k Key) Short() string {
	if len(k) <= 12 {
		return string(k)
	}
	return string(k[:12])
}
