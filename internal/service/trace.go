package service

import (
	"errors"
	"net/http"
	"strconv"

	"github.com/sinet-io/sinet/internal/tracing"
)

// JobTrace is the GET /v1/jobs/{id}/trace payload: one job's assembled
// distributed timeline. On a worker the spans are whatever this process
// recorded for the job's trace; on a cluster coordinator the endpoint
// stitches in the owning peers' spans as well (see internal/cluster).
type JobTrace struct {
	JobID   string             `json:"job_id"`
	TraceID string             `json:"trace_id,omitempty"`
	Spans   []tracing.SpanJSON `json:"spans"`
}

// Tracer exposes the server's tracer (nil when tracing is off) so a
// cluster coordinator can merge its own spans into stitched timelines.
func (s *Server) Tracer() *tracing.Tracer { return s.tracer }

// JobTraceByID assembles the local trace of one job. ok is false when
// the job ID is unknown. A known job without a trace (tracing enabled
// after it was journaled, for instance) yields an empty span list.
func (s *Server) JobTraceByID(id string) (JobTrace, bool) {
	j, ok := s.Job(id)
	if !ok {
		return JobTrace{}, false
	}
	jt := JobTrace{JobID: j.ID, Spans: []tracing.SpanJSON{}}
	if sc := j.TraceContext(); sc.Valid() {
		jt.TraceID = sc.TraceID.String()
		if spans := s.tracer.Trace(sc.TraceID); spans != nil {
			jt.Spans = spans
		}
	}
	return jt, true
}

func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	jt, ok := s.JobTraceByID(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	writeJSON(w, http.StatusOK, jt)
}

// DebugTraces is the GET /debug/traces payload: recent root spans,
// newest first. Pass ?trace=<32-hex> to fetch one full trace instead
// (the cluster coordinator uses that form to stitch peers' spans).
type DebugTraces struct {
	Service string             `json:"service"`
	Roots   []tracing.SpanJSON `json:"roots"`
}

func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	if q := r.URL.Query().Get("trace"); q != "" {
		id, ok := tracing.ParseTraceID(q)
		if !ok {
			writeError(w, http.StatusBadRequest, errors.New("malformed trace id"))
			return
		}
		spans := s.tracer.Trace(id)
		if spans == nil {
			spans = []tracing.SpanJSON{}
		}
		writeJSON(w, http.StatusOK, tracing.TraceJSON{TraceID: q, Spans: spans})
		return
	}
	limit := 64
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, errors.New("malformed limit parameter"))
			return
		}
		limit = n
	}
	roots := s.tracer.Roots(limit)
	if roots == nil {
		roots = []tracing.SpanJSON{}
	}
	writeJSON(w, http.StatusOK, DebugTraces{Service: s.tracer.Service(), Roots: roots})
}
