package service

import (
	"errors"
	"testing"
	"time"
)

func TestConfigKeySparseAndExplicitDefaultsCollide(t *testing.T) {
	// The canonicalization contract: a sparse spec and one spelling out the
	// library defaults are the same request and must content-address alike.
	sparse := &JobSpec{Kind: KindPassive, Passive: &PassiveSpec{Seed: 7}}
	explicit := &JobSpec{Kind: KindPassive, Passive: &PassiveSpec{
		Seed:           7,
		Start:          time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC),
		Days:           1,
		Sites:          []string{"hk", "syd", "ldn", "pgh"}, // case-insensitive
		Constellations: []string{"tianqi", "fossa", "pico", "cstp"},
		Scheduler:      "TRACKING",
		CoarseStep:     Duration(60 * time.Second),
	}}
	k1, err := ConfigKey(sparse)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := ConfigKey(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("sparse key %s != explicit-defaults key %s", k1, k2)
	}
}

func TestConfigKeySeparatesDistinctSpecs(t *testing.T) {
	base := func() *JobSpec { return &JobSpec{Kind: KindPassive, Passive: &PassiveSpec{Seed: 7}} }
	k0, err := ConfigKey(base())
	if err != nil {
		t.Fatal(err)
	}
	mutations := map[string]*JobSpec{
		"seed":  {Kind: KindPassive, Passive: &PassiveSpec{Seed: 8}},
		"days":  {Kind: KindPassive, Passive: &PassiveSpec{Seed: 7, Days: 2}},
		"sites": {Kind: KindPassive, Passive: &PassiveSpec{Seed: 7, Sites: []string{"HK"}}},
		"kind":  {Kind: KindCoverage},
	}
	for name, spec := range mutations {
		k, err := ConfigKey(spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if k == k0 {
			t.Errorf("%s: distinct spec collided with the base key", name)
		}
	}
}

func TestConfigKeyIsIdempotent(t *testing.T) {
	spec := &JobSpec{Kind: KindActive, Active: &ActiveSpec{Seed: 3}}
	k1, err := ConfigKey(spec)
	if err != nil {
		t.Fatal(err)
	}
	// The first call normalized spec in place; hashing the now-explicit spec
	// must not move the key.
	k2, err := ConfigKey(spec)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("re-keying a normalized spec moved the key: %s -> %s", k1, k2)
	}
}

func TestConfigKeyRejectsBadSpecs(t *testing.T) {
	bad := []*JobSpec{
		{},
		{Kind: "warp"},
		{Kind: KindPassive, Passive: &PassiveSpec{Sites: []string{"ATLANTIS"}}},
		{Kind: KindPassive, Passive: &PassiveSpec{Days: maxDays + 1}},
		{Kind: KindPassive, Passive: &PassiveSpec{}, Active: &ActiveSpec{}},
	}
	for i, spec := range bad {
		if _, err := ConfigKey(spec); !errors.Is(err, ErrBadSpec) {
			t.Errorf("spec %d: error %v does not wrap ErrBadSpec", i, err)
		}
	}
}

func TestKeyShort(t *testing.T) {
	k, err := ConfigKey(&JobSpec{Kind: KindCoverage})
	if err != nil {
		t.Fatal(err)
	}
	if len(k.Short()) != 12 {
		t.Fatalf("Short() = %q, want 12 hex chars", k.Short())
	}
}
