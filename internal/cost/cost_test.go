package cost

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTianqiMonthlyMatchesPaper(t *testing.T) {
	// §3.2: 48 packets/day -> 23.76 USD per month per sensor.
	plan := DefaultSatellitePlan()
	got := plan.MonthlyCost(48)
	if math.Abs(float64(got)-23.76) > 1e-9 {
		t.Errorf("monthly cost = %v, want $23.76", got)
	}
}

func TestPacketsForPayload(t *testing.T) {
	plan := DefaultSatellitePlan()
	cases := []struct{ bytes, want int }{
		{0, 1}, {-3, 1}, {1, 1}, {120, 1}, {121, 2}, {240, 2}, {241, 3},
	}
	for _, c := range cases {
		if got := plan.PacketsForPayload(c.bytes); got != c.want {
			t.Errorf("PacketsForPayload(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
	degenerate := SatellitePlan{PerThousandPackets: 1, MaxPacketBytes: 0}
	if degenerate.PacketsForPayload(500) != 1 {
		t.Error("zero MaxPacketBytes must not divide by zero")
	}
}

func TestPacketsForPayloadMonotone(t *testing.T) {
	plan := DefaultSatellitePlan()
	prop := func(a, b uint8) bool {
		if a > b {
			a, b = b, a
		}
		return plan.PacketsForPayload(int(a)) <= plan.PacketsForPayload(int(b))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestTable2Deployments(t *testing.T) {
	sat := PaperAgricultureSatellite()
	terr := PaperAgricultureTerrestrial()

	// Device costs per Table 2.
	if sat.CapitalCost() != 3*220 {
		t.Errorf("satellite capital = %v", sat.CapitalCost())
	}
	if terr.CapitalCost() != 3*35+3*219 {
		t.Errorf("terrestrial capital = %v", terr.CapitalCost())
	}

	// Per-node monthly: satellite $23.76 vs terrestrial $4.9 per plan.
	if got := sat.MonthlyPerNode(); math.Abs(float64(got)-23.76) > 1e-9 {
		t.Errorf("satellite per-node monthly = %v", got)
	}
	if got := terr.MonthlyOperationalCost(); math.Abs(float64(got)-3*4.9) > 1e-9 {
		t.Errorf("terrestrial monthly = %v", got)
	}

	// Shape: satellite saves capex on gateways but pays more opex.
	if sat.CapitalCost() <= 0 || terr.CapitalCost() <= sat.CapitalCost()-1 {
		// Terrestrial deploys gateways, so its capital exceeds satellite's
		// in this small deployment only when gateway count is high; at 3
		// nodes + 3 gateways terrestrial is comparable. The robust claim
		// is about infrastructure: satellite needs none.
		if sat.Gateways != 0 {
			t.Error("satellite deployment must need no gateways")
		}
	}
	if sat.MonthlyPerNode() <= terr.MonthlyPerNode() {
		t.Error("satellite opex per node must exceed terrestrial")
	}
}

func TestTotalCostOfOwnership(t *testing.T) {
	sat := PaperAgricultureSatellite()
	if got := sat.TotalCostOfOwnership(0); got != sat.CapitalCost() {
		t.Errorf("TCO(0) = %v", got)
	}
	tco12 := sat.TotalCostOfOwnership(12)
	want := float64(sat.CapitalCost()) + 12*float64(sat.MonthlyOperationalCost())
	if math.Abs(float64(tco12)-want) > 1e-9 {
		t.Errorf("TCO(12) = %v, want %v", tco12, want)
	}
}

func TestBreakEven(t *testing.T) {
	sat := PaperAgricultureSatellite()
	terr := PaperAgricultureTerrestrial()
	// Satellite is cheaper up-front (660 vs 762) but pricier monthly
	// (71.28 vs 14.7): terrestrial overtakes after ceil(102/56.58) = 2 months.
	m, ok := BreakEvenMonths(sat, terr)
	if !ok {
		t.Fatal("break-even not found")
	}
	if m != 2 {
		t.Errorf("break-even = %d months, want 2", m)
	}
	// Verify the crossover numerically.
	if sat.TotalCostOfOwnership(m) < terr.TotalCostOfOwnership(m) {
		t.Error("satellite still cheaper at reported break-even")
	}
	if sat.TotalCostOfOwnership(0) > terr.TotalCostOfOwnership(0) {
		t.Error("satellite not cheaper at month 0")
	}
}

func TestBreakEvenDegenerate(t *testing.T) {
	a := PaperAgricultureSatellite()
	if _, ok := BreakEvenMonths(a, a); ok {
		t.Error("identical deployments cannot cross")
	}
	// A dominates B everywhere: no crossover.
	cheap := Deployment{Name: "cheap", Nodes: 1, NodeUnitCost: 1}
	dear := Deployment{Name: "dear", Nodes: 1, NodeUnitCost: 100, TerrPlan: &TerrestrialPlan{MonthlyPerGateway: 10, Gateways: 1}}
	if _, ok := BreakEvenMonths(dear, cheap); ok {
		t.Error("dominated pair reported a crossover")
	}
}

func TestUSDString(t *testing.T) {
	if USD(23.76).String() != "$23.76" {
		t.Errorf("got %q", USD(23.76).String())
	}
}

func TestMonthlyPerNodeZeroNodes(t *testing.T) {
	d := Deployment{}
	if d.MonthlyPerNode() != 0 {
		t.Error("zero-node deployment per-node cost must be 0")
	}
}
