// Package cost implements the expenditure model of Table 2: device and
// infrastructure capital costs plus the two operators' very different
// billing schemes — Tianqi's per-packet tariff versus a flat-rate LTE
// backhaul plan for terrestrial IoT.
package cost

import (
	"fmt"
	"math"
)

// USD is a monetary amount in US dollars. A plain float64 is adequate for
// a cost model (no ledger arithmetic happens here).
type USD float64

// String implements fmt.Stringer.
func (u USD) String() string { return fmt.Sprintf("$%.2f", float64(u)) }

// Published price points from Table 2 and §3.2.
const (
	// TianqiNodeUSD is the per-unit cost of a Tianqi satellite IoT node.
	TianqiNodeUSD USD = 220
	// TerrestrialNodeUSD is the per-unit cost of a terrestrial end node.
	TerrestrialNodeUSD USD = 35
	// TerrestrialGatewayUSD is the per-unit cost of a LoRaWAN gateway.
	TerrestrialGatewayUSD USD = 219
	// TinyGSStationUSD is the cost of the paper's tiny ground station
	// (§2.2: "approximately 30 US dollars").
	TinyGSStationUSD USD = 30

	// TianqiPerThousandPacketsUSD is Tianqi's tariff: 16.5 USD per 1000
	// packets, each carrying up to TianqiMaxPacketBytes.
	TianqiPerThousandPacketsUSD USD = 16.5
	// TianqiMaxPacketBytes is the billing unit's maximum payload.
	TianqiMaxPacketBytes = 120

	// LTEMonthlyUSD is the China Mobile flat LTE plan backhauling one
	// terrestrial gateway (42 Mbps).
	LTEMonthlyUSD USD = 4.9
)

// SatellitePlan bills per packet, Tianqi-style.
type SatellitePlan struct {
	PerThousandPackets USD
	MaxPacketBytes     int
}

// DefaultSatellitePlan returns Tianqi's published tariff.
func DefaultSatellitePlan() SatellitePlan {
	return SatellitePlan{PerThousandPackets: TianqiPerThousandPacketsUSD, MaxPacketBytes: TianqiMaxPacketBytes}
}

// PacketsForPayload returns how many billable packets a payload of n bytes
// consumes (ceil division; zero-byte payloads still bill one packet).
func (p SatellitePlan) PacketsForPayload(n int) int {
	if n <= 0 {
		return 1
	}
	if p.MaxPacketBytes <= 0 {
		return 1
	}
	return (n + p.MaxPacketBytes - 1) / p.MaxPacketBytes
}

// MonthlyCost returns the data charge for packetsPerDay billable packets
// over a 30-day month.
func (p SatellitePlan) MonthlyCost(packetsPerDay int) USD {
	packets := float64(packetsPerDay) * 30
	return p.PerThousandPackets * USD(packets/1000)
}

// TerrestrialPlan bills a flat monthly rate per gateway backhaul.
type TerrestrialPlan struct {
	MonthlyPerGateway USD
	Gateways          int
}

// DefaultTerrestrialPlan returns the paper's deployment: the monthly LTE
// plan. The paper's Table 2 reports the single-plan price; a deployment
// with several gateways multiplies it.
func DefaultTerrestrialPlan(gateways int) TerrestrialPlan {
	return TerrestrialPlan{MonthlyPerGateway: LTEMonthlyUSD, Gateways: gateways}
}

// MonthlyCost returns the flat monthly operational cost.
func (p TerrestrialPlan) MonthlyCost() USD {
	return p.MonthlyPerGateway * USD(p.Gateways)
}

// Deployment describes one IoT system's bill of materials and traffic.
type Deployment struct {
	Name          string
	Nodes         int
	NodeUnitCost  USD
	Gateways      int
	GatewayCost   USD
	PacketsPerDay int // per node, billable packets
	SatPlan       *SatellitePlan
	TerrPlan      *TerrestrialPlan
}

// CapitalCost returns the up-front construction cost.
func (d Deployment) CapitalCost() USD {
	return d.NodeUnitCost*USD(d.Nodes) + d.GatewayCost*USD(d.Gateways)
}

// MonthlyOperationalCost returns the recurring monthly cost across the
// deployment.
func (d Deployment) MonthlyOperationalCost() USD {
	var total USD
	if d.SatPlan != nil {
		total += d.SatPlan.MonthlyCost(d.PacketsPerDay * d.Nodes)
	}
	if d.TerrPlan != nil {
		total += d.TerrPlan.MonthlyCost()
	}
	return total
}

// MonthlyPerNode returns the recurring monthly cost per node.
func (d Deployment) MonthlyPerNode() USD {
	if d.Nodes == 0 {
		return 0
	}
	return d.MonthlyOperationalCost() / USD(d.Nodes)
}

// TotalCostOfOwnership returns capital plus months of operation.
func (d Deployment) TotalCostOfOwnership(months int) USD {
	return d.CapitalCost() + d.MonthlyOperationalCost()*USD(months)
}

// BreakEvenMonths returns after how many months the cheaper-capex
// deployment a overtakes b in total cost (or vice versa): the crossover
// month, and ok=false if the lines never cross (one dominates).
func BreakEvenMonths(a, b Deployment) (int, bool) {
	capA, capB := a.CapitalCost(), b.CapitalCost()
	opA, opB := a.MonthlyOperationalCost(), b.MonthlyOperationalCost()
	dCap := float64(capB - capA)
	dOp := float64(opA - opB)
	if dOp == 0 {
		return 0, false
	}
	m := dCap / dOp
	if m < 0 || math.IsInf(m, 0) || math.IsNaN(m) {
		return 0, false
	}
	return int(math.Ceil(m)), true
}

// PaperAgricultureSatellite returns the paper's satellite-side deployment:
// three Tianqi nodes, 48 packets/day each, no gateway infrastructure.
func PaperAgricultureSatellite() Deployment {
	plan := DefaultSatellitePlan()
	return Deployment{
		Name:          "Satellite IoT (Tianqi)",
		Nodes:         3,
		NodeUnitCost:  TianqiNodeUSD,
		PacketsPerDay: 48,
		SatPlan:       &plan,
	}
}

// PaperAgricultureTerrestrial returns the paper's terrestrial baseline:
// three end nodes behind three RAKwireless gateways with one LTE plan each.
func PaperAgricultureTerrestrial() Deployment {
	plan := DefaultTerrestrialPlan(3)
	return Deployment{
		Name:         "Terrestrial IoT (LoRaWAN+LTE)",
		Nodes:        3,
		NodeUnitCost: TerrestrialNodeUSD,
		Gateways:     3,
		GatewayCost:  TerrestrialGatewayUSD,
		TerrPlan:     &plan,
	}
}
