package core

import (
	"time"

	"github.com/sinet-io/sinet/internal/energy"
	"github.com/sinet-io/sinet/internal/stats"
)

// Reliability returns the end-to-end delivery fraction (Fig. 5a): packets
// that reached the server over packets generated.
func (r *ActiveResult) Reliability() float64 {
	if len(r.Packets) == 0 {
		return 0
	}
	ok := 0
	for _, p := range r.Packets {
		if p.Delivered() {
			ok++
		}
	}
	return float64(ok) / float64(len(r.Packets))
}

// Reliability returns the terrestrial end-to-end delivery fraction.
func (r *TerrestrialResult) Reliability() float64 {
	if len(r.Packets) == 0 {
		return 0
	}
	ok := 0
	for _, p := range r.Packets {
		if p.Delivered() {
			ok++
		}
	}
	return float64(ok) / float64(len(r.Packets))
}

// LatencyBreakdown is Fig. 5d: the three delay segments of the satellite
// path, averaged over delivered packets.
type LatencyBreakdown struct {
	Wait     time.Duration // waiting for a satellite pass
	DtS      time.Duration // DtS (re)transmissions
	Delivery time.Duration // satellite→GS + backhaul
	Total    time.Duration
	N        int
}

// Latency computes mean end-to-end latency and its decomposition over
// delivered packets.
func (r *ActiveResult) Latency() LatencyBreakdown {
	var out LatencyBreakdown
	var wait, dts, del, total time.Duration
	for _, p := range r.Packets {
		t, ok := p.TotalLatency()
		if !ok {
			continue
		}
		w, _ := p.WaitLatency()
		d, _ := p.DtSLatency()
		v, _ := p.DeliveryLatency()
		wait += w
		dts += d
		del += v
		total += t
		out.N++
	}
	if out.N == 0 {
		return out
	}
	n := time.Duration(out.N)
	out.Wait = wait / n
	out.DtS = dts / n
	out.Delivery = del / n
	out.Total = total / n
	return out
}

// MeanLatency returns the terrestrial mean end-to-end latency.
func (r *TerrestrialResult) MeanLatency() (time.Duration, int) {
	var total time.Duration
	n := 0
	for _, p := range r.Packets {
		if l, ok := p.Latency(); ok {
			total += l
			n++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return total / time.Duration(n), n
}

// RetxDistribution returns, for delivered packets, the distribution of the
// number of DtS retransmissions (attempts beyond the first) — Fig. 5b.
func (r *ActiveResult) RetxDistribution() *stats.Histogram {
	h, _ := stats.NewHistogram(0, 7, 7)
	for _, p := range r.Packets {
		if p.Attempts == 0 {
			continue
		}
		h.Add(float64(p.Attempts - 1))
	}
	return h
}

// MeanRetx returns the mean retransmission count over attempted packets.
func (r *ActiveResult) MeanRetx() float64 {
	sum, n := 0, 0
	for _, p := range r.Packets {
		if p.Attempts == 0 {
			continue
		}
		sum += p.Attempts - 1
		n++
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// ZeroRetxFraction is the share of attempted packets needing no DtS
// retransmission (paper: ~50%).
func (r *ActiveResult) ZeroRetxFraction() float64 {
	zero, n := 0, 0
	for _, p := range r.Packets {
		if p.Attempts == 0 {
			continue
		}
		n++
		if p.Attempts == 1 {
			zero++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(zero) / float64(n)
}

// EnergyComparison is Fig. 6: the two systems' emergent energy behaviour.
type EnergyComparison struct {
	SatAvgPowerMW    float64
	TerrAvgPowerMW   float64
	PowerRatio       float64
	SatLifetimeDays  float64
	TerrLifetimeDays float64
	SatBreakdown     []energy.Breakdown
	TerrBreakdown    []energy.Breakdown
	Battery          energy.Battery
}

// CompareEnergy derives Fig. 6's comparison from the two campaigns' meters
// (averaging across nodes).
func CompareEnergy(sat *ActiveResult, terr *TerrestrialResult, battery energy.Battery) EnergyComparison {
	out := EnergyComparison{Battery: battery}
	out.SatAvgPowerMW, out.SatBreakdown = averageMeters(sat.Meters)
	out.TerrAvgPowerMW, out.TerrBreakdown = averageMeters(terr.Meters)
	if out.TerrAvgPowerMW > 0 {
		out.PowerRatio = out.SatAvgPowerMW / out.TerrAvgPowerMW
	}
	out.SatLifetimeDays = battery.LifetimeDays(out.SatAvgPowerMW)
	out.TerrLifetimeDays = battery.LifetimeDays(out.TerrAvgPowerMW)
	return out
}

// AverageMeters returns the mean average power across node meters and a
// representative per-mode breakdown, for report rendering.
func AverageMeters(meters map[string]*energy.Meter) (float64, []energy.Breakdown) {
	return averageMeters(meters)
}

// averageMeters returns the mean average power over the meters and the
// breakdown of the first meter (nodes are symmetric; one is
// representative).
func averageMeters(meters map[string]*energy.Meter) (float64, []energy.Breakdown) {
	if len(meters) == 0 {
		return 0, nil
	}
	var sum float64
	var anyBreakdown []energy.Breakdown
	for _, m := range meters {
		sum += m.AveragePowerMW()
		if anyBreakdown == nil {
			anyBreakdown = m.Breakdown()
		}
	}
	return sum / float64(len(meters)), anyBreakdown
}

// PerGroupReliability buckets packets by (node, day) and returns each
// bucket's delivery fraction — the unit behind Fig. 12a's "fraction of
// transmissions reaching 90% reliability".
func (r *ActiveResult) PerGroupReliability() []float64 {
	type key struct {
		node string
		day  int
	}
	okCount := map[key]int{}
	total := map[key]int{}
	for _, p := range r.Packets {
		k := key{p.Node, int(p.GeneratedAt.Sub(r.Config.Start).Hours() / 24)}
		total[k]++
		if p.Delivered() {
			okCount[k]++
		}
	}
	out := make([]float64, 0, len(total))
	for k, n := range total {
		out = append(out, float64(okCount[k])/float64(n))
	}
	return out
}

// FractionReaching returns the share of groups with reliability ≥
// threshold.
func FractionReaching(groups []float64, threshold float64) float64 {
	if len(groups) == 0 {
		return 0
	}
	ok := 0
	for _, g := range groups {
		if g >= threshold {
			ok++
		}
	}
	return float64(ok) / float64(len(groups))
}

// ReliabilityByConcurrency groups packets by the peak number of
// simultaneous transmissions they experienced — Fig. 12b.
func (r *ActiveResult) ReliabilityByConcurrency() map[int]float64 {
	total := map[int]int{}
	ok := map[int]int{}
	for _, p := range r.Packets {
		c := p.MaxConcurrency
		if c == 0 {
			continue // never transmitted
		}
		total[c]++
		if p.Delivered() {
			ok[c]++
		}
	}
	out := make(map[int]float64, len(total))
	for c, n := range total {
		out[c] = float64(ok[c]) / float64(n)
	}
	return out
}
