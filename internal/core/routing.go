package core

import (
	"context"
	"time"

	"github.com/sinet-io/sinet/internal/backhaul"
	"github.com/sinet-io/sinet/internal/constellation"
	"github.com/sinet-io/sinet/internal/fault"
	"github.com/sinet-io/sinet/internal/netgraph"
	"github.com/sinet-io/sinet/internal/orbit"
	"github.com/sinet-io/sinet/internal/sim"
	"github.com/sinet-io/sinet/internal/stats"
	"github.com/sinet-io/sinet/internal/tracing"
)

// Delivery policies of the routing campaign.
const (
	// PolicyStore delivers every packet store-and-forward: the satellite
	// holds it until its next fault-aware downlink window over the
	// operator ground segment (the paper's §2.3 baseline).
	PolicyStore = "store"
	// PolicyRelay delivers every packet over the time-varying network
	// graph: at each topology snapshot it may hop live inter-satellite
	// links toward any satellite in view of an up ground station.
	PolicyRelay = "relay"
	// PolicyCompare runs both policies on identical packets.
	PolicyCompare = "compare"
)

// RoutingConfig configures a backhaul-relay routing campaign: the
// store-and-forward-vs-ISL-relay comparison the paper could not measure
// on Tianqi's linkless constellation.
type RoutingConfig struct {
	// Seed drives every random stream (fault schedules).
	Seed int64
	// Start and Days bound the campaign window. Packets originate inside
	// the window; deliveries may drain during a 4 h grace period after it.
	Start time.Time
	Days  int
	// Constellation to route over; nil uses Tianqi.
	Constellation *constellation.Constellation
	// SnapshotStep is the topology cadence of the network graph
	// (default one minute).
	SnapshotStep time.Duration
	// MaxISLRangeKm is the ISL terminal range budget (default 5000 km).
	MaxISLRangeKm float64
	// HopProcessing is the per-hop switching delay (default 10 ms).
	HopProcessing time.Duration
	// PacketInterval is each satellite's packet cadence (default 30 min);
	// origins are staggered across satellites to avoid synchronized
	// bursts.
	PacketInterval time.Duration
	// Policy selects store, relay, or compare (the default).
	Policy string
	// ExactEphemeris and MaxInterpErrorKm mirror PassiveConfig: exact
	// SGP4 fallback vs bounded Hermite interpolation for the shared grid.
	ExactEphemeris   bool
	MaxInterpErrorKm float64
	// Faults injects drain-station churn (DrainMTBF/MTTR) and ISL link
	// churn (LinkMTBF/MTTR); nil simulates perfect infrastructure.
	Faults *fault.Config
	// Progress observes the campaign's phases ("ephemeris", "topology",
	// "packets"); nil observes nothing. Excluded from serialization.
	Progress ProgressFunc `json:"-"`
	// Checkpoint receives each completed "packets" unit (one satellite's
	// routed packets) for durable snapshotting; Resume restores such a
	// snapshot. Both are observe-only, excluded from serialization and
	// config keys; a resumed run is byte-identical to an uninterrupted
	// one (see core.Checkpoint). The "ephemeris" and "topology" phases
	// rebuild on resume — their outputs are the shared in-memory
	// structures every packet unit reads.
	Checkpoint CheckpointFunc `json:"-"`
	Resume     *Checkpoint    `json:"-"`
	// Shard restricts the "packets" fan-out to a window of its
	// per-satellite units and returns right after that phase with the
	// delivery summaries left empty (see core.ShardWindow). A shard
	// parameterizes the run, so derived content keys must include it.
	Shard *ShardWindow `json:"-"`
}

func (c *RoutingConfig) setDefaults() {
	if c.Days <= 0 {
		c.Days = 1
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.SnapshotStep <= 0 {
		c.SnapshotStep = netgraph.DefaultSnapshotStep
	}
	if c.MaxISLRangeKm <= 0 {
		c.MaxISLRangeKm = netgraph.DefaultMaxISLRangeKm
	}
	if c.HopProcessing <= 0 {
		c.HopProcessing = netgraph.DefaultHopProcessing
	}
	if c.PacketInterval <= 0 {
		c.PacketInterval = 30 * time.Minute
	}
	if c.Policy == "" {
		c.Policy = PolicyCompare
	}
}

// RoutedPacket is one sensor packet's delivery record under both policies.
type RoutedPacket struct {
	NoradID int       `json:"norad_id"`
	Origin  time.Time `json:"origin"`

	// Store-and-forward outcome: delivered at the end of the first
	// fault-aware downlink window at or after the origin.
	StoreDelivered bool      `json:"store_delivered"`
	StoreAt        time.Time `json:"store_at"`

	// Relay outcome over the time-varying graph.
	RelayDelivered bool      `json:"relay_delivered"`
	RelayAt        time.Time `json:"relay_at"`
	RelayHops      int       `json:"relay_hops,omitempty"`     // edges traversed, downlink included
	RelayISLHops   int       `json:"relay_isl_hops,omitempty"` // satellite-to-satellite edges only
	RelayStation   int       `json:"relay_station"`            // draining station index, -1 if undelivered
	// RelayPath is the satellite chain the packet traversed, origin
	// first, as NORAD IDs; the final hop down to RelayStation is implied.
	RelayPath []int `json:"relay_path,omitempty"`
}

// DeliverySummary aggregates one policy's delivery-latency distribution.
// Latency quantiles are in seconds and zero when nothing was delivered.
type DeliverySummary struct {
	Policy    string  `json:"policy"`
	Generated int     `json:"generated"`
	Delivered int     `json:"delivered"`
	MeanSec   float64 `json:"mean_sec"`
	P10Sec    float64 `json:"p10_sec"`
	P50Sec    float64 `json:"p50_sec"`
	P90Sec    float64 `json:"p90_sec"`
	P99Sec    float64 `json:"p99_sec"`
	MeanHops  float64 `json:"mean_hops,omitempty"`
	MaxHops   int     `json:"max_hops,omitempty"`
}

// RoutingResult is a completed routing campaign.
type RoutingResult struct {
	Config        RoutingConfig   `json:"config"`
	Constellation string          `json:"constellation"`
	Snapshots     int             `json:"snapshots"`
	CandidateISLs int             `json:"candidate_isls"`
	MeanLiveISLs  float64         `json:"mean_live_isls"`
	Packets       []RoutedPacket  `json:"packets"`
	Store         DeliverySummary `json:"store"`
	Relay         DeliverySummary `json:"relay"`
}

// StoreLatenciesSec returns the store-and-forward delivery latencies in
// seconds, one per delivered packet.
func (r *RoutingResult) StoreLatenciesSec() []float64 {
	var out []float64
	for _, p := range r.Packets {
		if p.StoreDelivered {
			out = append(out, p.StoreAt.Sub(p.Origin).Seconds())
		}
	}
	return out
}

// RelayLatenciesSec returns the relay delivery latencies in seconds.
func (r *RoutingResult) RelayLatenciesSec() []float64 {
	var out []float64
	for _, p := range r.Packets {
		if p.RelayDelivered {
			out = append(out, p.RelayAt.Sub(p.Origin).Seconds())
		}
	}
	return out
}

// RunRouting executes a routing campaign.
func RunRouting(cfg RoutingConfig) (*RoutingResult, error) {
	return RunRoutingCtx(context.Background(), cfg)
}

// RunRoutingCtx is RunRouting with cooperative cancellation: a cancelled
// context aborts between work units with ctx.Err().
func RunRoutingCtx(ctx context.Context, cfg RoutingConfig) (*RoutingResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.setDefaults()
	cons := cfg.Constellation
	if cons == nil {
		c := constellation.Tianqi(cfg.Start)
		cons = &c
	}
	props, err := cons.Propagators()
	if err != nil {
		return nil, err
	}
	progress := cfg.Progress
	segment := backhaul.TianqiGroundSegment()
	end := cfg.Start.Add(time.Duration(cfg.Days) * 24 * time.Hour)
	horizon := end.Add(graceAfterEnd)

	grid := orbit.NewEphemerisGrid(props, cfg.Start, horizon, orbit.EphemerisConfig{
		ScanStep:         cfg.SnapshotStep,
		Exact:            cfg.ExactEphemeris,
		MaxInterpErrorKm: cfg.MaxInterpErrorKm,
	})

	// Fault schedules are derived up front on named streams, so the same
	// seed and config always churn the same links and stations no matter
	// how the snapshot build is scheduled.
	var drainScheds []fault.Schedule
	drainUp := func(station int, at time.Time) bool { return true }
	if cfg.Faults != nil && cfg.Faults.DrainMTBF > 0 {
		drainScheds = make([]fault.Schedule, len(segment.Stations))
		for i := range segment.Stations {
			drainScheds[i] = cfg.Faults.DrainSchedule(cfg.Seed, i, cfg.Start, horizon)
		}
		drainUp = func(station int, at time.Time) bool { return !drainScheds[station].Down(at) }
	}

	gcfg := netgraph.Config{
		SnapshotStep:    cfg.SnapshotStep,
		MaxISLRangeKm:   cfg.MaxISLRangeKm,
		HopProcessing:   cfg.HopProcessing,
		MinElevationRad: segment.MinElevationRad,
	}
	if drainScheds != nil {
		gcfg.StationUp = drainUp
	}
	graph, err := netgraph.New(grid, segment.Stations, cfg.Start, horizon, gcfg)
	if err != nil {
		return nil, err
	}
	if cfg.Faults != nil && cfg.Faults.LinkMTBF > 0 {
		linkScheds := make(map[[2]int]fault.Schedule, graph.CandidateISLs())
		for _, c := range graph.Candidates() {
			a, b := graph.NoradID(int(c[0])), graph.NoradID(int(c[1]))
			if b < a {
				a, b = b, a
			}
			linkScheds[[2]int{a, b}] = cfg.Faults.LinkSchedule(cfg.Seed, fault.LinkID(a, b), cfg.Start, horizon)
		}
		gcfg.ISLUp = func(noradA, noradB int, at time.Time) bool {
			if noradB < noradA {
				noradA, noradB = noradB, noradA
			}
			s, ok := linkScheds[[2]int{noradA, noradB}]
			return !ok || !s.Down(at)
		}
		// Rebuild the graph with the churn predicate attached; the
		// skeleton is cheap and snapshots are not built yet.
		graph, err = netgraph.New(grid, segment.Stations, cfg.Start, horizon, gcfg)
		if err != nil {
			return nil, err
		}
	}

	// Phase 1: propagate the shared ephemeris rows.
	if err := sim.ForEachPhaseCtx(ctx, "ephemeris", len(props), func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		grid.Propagate(i)
		return nil
	}, progress.phase("ephemeris")); err != nil {
		return nil, err
	}
	grid.Finish()

	// Phase 2: build the topology snapshots (parallel when the ephemeris
	// is pure-read; see netgraph.Graph.ParallelBuildSafe). netgraph has no
	// context plumbing, so the span is recorded here rather than inside.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tr, parentSC := tracing.FromContext(ctx)
	var topoStart time.Time
	if tr != nil {
		topoStart = time.Now()
	}
	if err := graph.BuildAll(progress.phase("topology")); err != nil {
		return nil, err
	}
	if tr != nil {
		tr.Record(parentSC, "phase:topology", topoStart, time.Now(),
			tracing.Int("snapshots", graph.Snapshots()))
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	res := &RoutingResult{
		Config:        cfg,
		Constellation: cons.Name,
		Snapshots:     graph.Snapshots(),
		CandidateISLs: graph.CandidateISLs(),
	}
	liveSum := 0
	for k := 0; k < graph.Snapshots(); k++ {
		liveSum += graph.LiveISLs(k)
	}
	if graph.Snapshots() > 0 {
		res.MeanLiveISLs = float64(liveSum) / float64(graph.Snapshots())
	}

	// Phase 3: route every satellite's packets. Worker i touches only
	// ephemeris row i and its own slot, so the fan-out is race-free and
	// the serial-order merge keeps results independent of scheduling.
	wantStore := cfg.Policy == PolicyStore || cfg.Policy == PolicyCompare
	wantRelay := cfg.Policy == PolicyRelay || cfg.Policy == PolicyCompare
	perSat := make([][]RoutedPacket, len(props))
	nSats := len(props)
	if err := forEachCheckpointed(ctx, "packets", perSat, cfg.Shard, cfg.Resume, cfg.Checkpoint, progress, func(i int) ([]RoutedPacket, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		norad := props[i].Elements().NoradID
		var windows []orbit.Window
		if wantStore {
			windows = segment.DownlinkWindowsUp(grid.Sat(i), cfg.Start, horizon, cfg.SnapshotStep, drainUp)
		}
		var search *netgraph.DeliverySearch
		if wantRelay {
			search = netgraph.NewDeliverySearch(graph)
		}
		offset := cfg.PacketInterval * time.Duration(i) / time.Duration(nSats)
		var pkts []RoutedPacket
		for origin := cfg.Start.Add(offset); origin.Before(end); origin = origin.Add(cfg.PacketInterval) {
			p := RoutedPacket{NoradID: norad, Origin: origin, RelayStation: -1}
			if wantStore {
				for _, w := range windows {
					if !w.End.Before(origin) {
						p.StoreDelivered = true
						p.StoreAt = w.End
						break
					}
				}
			}
			if wantRelay {
				if d, ok := search.Earliest(i, origin); ok {
					p.RelayDelivered = true
					p.RelayAt = d.At
					p.RelayHops = d.Hops()
					p.RelayISLHops = d.ISLHops(graph)
					p.RelayStation = d.Station
					p.RelayPath = []int{norad}
					for _, h := range d.Path {
						if !graph.IsStation(int(h.To)) {
							p.RelayPath = append(p.RelayPath, graph.NoradID(int(h.To)))
						}
					}
				}
			}
			pkts = append(pkts, p)
		}
		return pkts, nil
	}); err != nil {
		return nil, err
	}
	if cfg.Shard != nil {
		// Shard run: the windowed packet units have been handed to
		// cfg.Checkpoint; skip assembly and the delivery summaries.
		return res, nil
	}

	for _, pkts := range perSat {
		res.Packets = append(res.Packets, pkts...)
	}
	res.Store = summarizeDeliveries(PolicyStore, res.Packets, wantStore)
	res.Relay = summarizeDeliveries(PolicyRelay, res.Packets, wantRelay)
	netgraph.ObserveDelivery("store", res.Store.Delivered)
	netgraph.ObserveDelivery("relay", res.Relay.Delivered)
	return res, nil
}

// summarizeDeliveries builds one policy's latency summary through the
// shared stats quantile helper.
func summarizeDeliveries(policy string, pkts []RoutedPacket, ran bool) DeliverySummary {
	s := DeliverySummary{Policy: policy}
	if !ran {
		return s
	}
	var lat []float64
	hops := 0
	for _, p := range pkts {
		s.Generated++
		switch policy {
		case PolicyStore:
			if p.StoreDelivered {
				lat = append(lat, p.StoreAt.Sub(p.Origin).Seconds())
			}
		case PolicyRelay:
			if p.RelayDelivered {
				lat = append(lat, p.RelayAt.Sub(p.Origin).Seconds())
				hops += p.RelayHops
				if p.RelayHops > s.MaxHops {
					s.MaxHops = p.RelayHops
				}
			}
		}
	}
	s.Delivered = len(lat)
	if len(lat) == 0 {
		return s
	}
	s.MeanSec = stats.Mean(lat)
	qs := stats.Quantiles(lat, 0.10, 0.50, 0.90, 0.99)
	s.P10Sec, s.P50Sec, s.P90Sec, s.P99Sec = qs[0], qs[1], qs[2], qs[3]
	if policy == PolicyRelay {
		s.MeanHops = float64(hops) / float64(len(lat))
	}
	return s
}
