package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"github.com/sinet-io/sinet/internal/backhaul"
	"github.com/sinet-io/sinet/internal/channel"
	"github.com/sinet-io/sinet/internal/constellation"
	"github.com/sinet-io/sinet/internal/energy"
	"github.com/sinet-io/sinet/internal/fault"
	"github.com/sinet-io/sinet/internal/lora"
	"github.com/sinet-io/sinet/internal/mac"
	"github.com/sinet-io/sinet/internal/node"
	"github.com/sinet-io/sinet/internal/orbit"
	"github.com/sinet-io/sinet/internal/radio"
	"github.com/sinet-io/sinet/internal/satellite"
	"github.com/sinet-io/sinet/internal/sim"
)

// ActiveConfig configures a §3.2-style active measurement campaign: a
// handful of Tianqi nodes at the Yunnan plantation uploading periodic
// sensor data through the constellation.
type ActiveConfig struct {
	Seed  int64
	Start time.Time
	Days  int

	// Nodes is the deployment size (paper: 3).
	Nodes int
	// PayloadBytes per reading (paper default: 20; Fig. 12a sweeps it).
	PayloadBytes int
	// SensePeriod between readings (paper: 30 min).
	SensePeriod time.Duration
	// Policy is the DtS retransmission policy (paper: 0 or 5 retx).
	Policy mac.RetxPolicy
	// NodeAntenna is the whip profile (Fig. 5b: 1/4λ vs 5/8λ).
	NodeAntenna channel.Antenna
	// Weather pins the sky for controlled runs; nil uses the Yunnan
	// weather process. Excluded from JSON: providers are behaviour, not
	// data, and cannot round-trip through an interface.
	Weather WeatherProvider `json:"-"`
	// AlignedPhases makes all nodes sense simultaneously, forcing the
	// concurrent transmissions of Fig. 12b.
	AlignedPhases bool
	// Collisions resolves concurrent uplinks.
	Collisions mac.CollisionModel
	// SatBufferCapacity bounds the on-board store-and-forward queue
	// (0 = unbounded).
	SatBufferCapacity int
	// TxGateMarginDB: the node transmits only when the gating beacon was
	// received with at least this margin above the demodulation floor —
	// the device-side link-quality check that makes beacon-gated access
	// effective (§F). Negative disables the gate.
	TxGateMarginDB float64
	// SleepWhenIdle lets the node sleep when its queue is empty instead
	// of hanging on in Rx. The paper's Tianqi nodes do NOT do this (§3.2:
	// the radio stays on waiting for passes — the main battery drain);
	// enabling it is the energy optimization the paper calls for.
	SleepWhenIdle bool
	// ScheduleAwareMinElevationRad enables pass-schedule-aware sleeping,
	// the deeper optimization: the node propagates the constellation's
	// TLEs itself and keeps its radio off except during predicted passes
	// whose peak elevation exceeds this mask (where DtS links actually
	// close). Zero disables; ~0.35 rad (20°) is a good operating point.
	ScheduleAwareMinElevationRad float64
	// Constellation override (defaults to Tianqi at Start).
	Constellation *constellation.Constellation
	// Radio overrides the node-side LoRa data parameters; nil uses the
	// DtS defaults. Validated up front.
	Radio *lora.Params
	// Faults injects deterministic disruption (satellite beacon blackouts,
	// drain-station outages); nil — the default — reproduces pre-fault
	// results byte-identically.
	Faults *fault.Config
	// ExactEphemeris disables Hermite interpolation for off-grid satellite
	// state queries, answering them with exact SGP4 instead — bit-identical
	// to sampling the propagator directly, at the cost of the propagation
	// savings (see orbit.EphemerisConfig.Exact).
	ExactEphemeris bool
	// MaxInterpErrorKm bounds the interpolation position error when
	// ExactEphemeris is false (0 = orbit.DefaultMaxInterpErrorKm).
	MaxInterpErrorKm float64
	// Progress observes the campaign's phases ("ephemeris" as the shared
	// grid samples, "plan" as per-satellite schedules build, then
	// "simulate" per elapsed campaign day); nil observes nothing. It
	// never influences results and is excluded from serialization.
	Progress ProgressFunc `json:"-"`
	// Checkpoint receives each completed "plan" unit (one satellite's
	// beacon/wake/drain schedule) for durable snapshotting; Resume
	// restores such a snapshot, skipping the pass and downlink-window
	// searches it covers. The ephemeris grid and the serial event-driven
	// "simulate" phase always rebuild — their state is not a pure
	// per-unit value. Both fields are observe-only, excluded from
	// serialization and config keys; a resumed run is byte-identical to
	// an uninterrupted one (see core.Checkpoint).
	Checkpoint CheckpointFunc `json:"-"`
	Resume     *Checkpoint    `json:"-"`
	// Shard restricts the "plan" fan-out to a window of its per-satellite
	// units and returns right after that phase — the serial "simulate"
	// phase never runs; only the merge node, resuming from every shard's
	// folded plan units, simulates (see core.ShardWindow). A shard
	// parameterizes the run, so derived content keys must include it.
	Shard *ShardWindow `json:"-"`
}

func (c *ActiveConfig) setDefaults() {
	if c.Start.IsZero() {
		c.Start = time.Date(2025, 3, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.Days <= 0 {
		c.Days = 1
	}
	if c.Nodes <= 0 {
		c.Nodes = 3
	}
	if c.PayloadBytes <= 0 {
		c.PayloadBytes = 20
	}
	if c.SensePeriod <= 0 {
		c.SensePeriod = 30 * time.Minute
	}
	if c.Policy.AckTimeout <= 0 {
		c.Policy.AckTimeout = 3 * time.Second
	}
	if c.NodeAntenna.Name == "" {
		c.NodeAntenna = channel.FiveEighthsWave
	}
	if c.Collisions.CaptureThresholdDB == 0 {
		c.Collisions = mac.DefaultCollisionModel()
	}
	if c.SatBufferCapacity == 0 {
		c.SatBufferCapacity = 4096
	}
	// TxGateMarginDB keeps its zero default: the stock Tianqi node
	// transmits on any decoded beacon (beacons are modulated more
	// robustly than data, see beaconParams), so the gate is an
	// optimization knob rather than baseline behaviour.
}

// PacketOutcome traces one sensor reading end-to-end.
type PacketOutcome struct {
	Node        string
	SeqID       uint64
	GeneratedAt time.Time

	// FirstAttemptAt is the first uplink transmission (zero if the node
	// never heard a beacon for it).
	FirstAttemptAt time.Time
	// UplinkedAt is when a satellite first decoded the packet.
	UplinkedAt time.Time
	// AckedAt is when the node received the ACK.
	AckedAt time.Time
	// ServerAt is the subscriber-server arrival (zero = lost).
	ServerAt time.Time

	Attempts        int
	UnnecessaryRetx int
	Collisions      int
	// MaxConcurrency is the largest number of simultaneous node
	// transmissions in any of this packet's beacon rounds.
	MaxConcurrency int
}

// Delivered reports end-to-end success (arrived at the server).
func (p PacketOutcome) Delivered() bool { return !p.ServerAt.IsZero() }

// WaitLatency is segment (1) of Fig. 5d: generation → first transmission.
func (p PacketOutcome) WaitLatency() (time.Duration, bool) {
	if p.FirstAttemptAt.IsZero() {
		return 0, false
	}
	return p.FirstAttemptAt.Sub(p.GeneratedAt), true
}

// DtSLatency is segment (2): the DtS (re)transmission phase — first
// transmission until the node resolves the packet (ACK received), or
// until the satellite decode when no ACK ever arrived. ACK losses extend
// this phase across beacons and passes exactly as the paper observes.
func (p PacketOutcome) DtSLatency() (time.Duration, bool) {
	if p.FirstAttemptAt.IsZero() {
		return 0, false
	}
	end := p.AckedAt
	if end.IsZero() {
		end = p.UplinkedAt
	}
	if end.IsZero() {
		return 0, false
	}
	return end.Sub(p.FirstAttemptAt), true
}

// DeliveryLatency is segment (3): satellite decode → server arrival.
func (p PacketOutcome) DeliveryLatency() (time.Duration, bool) {
	if p.UplinkedAt.IsZero() || p.ServerAt.IsZero() {
		return 0, false
	}
	return p.ServerAt.Sub(p.UplinkedAt), true
}

// TotalLatency is generation → server arrival.
func (p PacketOutcome) TotalLatency() (time.Duration, bool) {
	if p.ServerAt.IsZero() {
		return 0, false
	}
	return p.ServerAt.Sub(p.GeneratedAt), true
}

// ActiveResult is a completed active campaign.
type ActiveResult struct {
	Config   ActiveConfig
	Packets  []*PacketOutcome
	MacStats mac.Stats
	// Meters are the per-node energy meters, keyed by node ID.
	Meters map[string]*energy.Meter
	// BufferDrops counts packets lost to satellite buffer pressure.
	BufferDrops int
}

// satPlan is one satellite's precomputed schedule: the "plan" phase's
// work unit. It holds only pure serializable values so completed units
// checkpoint and restore byte-exactly; the gateway and fault schedule
// objects that accompany it at simulation time are rebuilt after the
// fan-out.
type satPlan struct {
	// Beacons holds the satellite's beacon instants, one slice per
	// plantation pass.
	Beacons [][]time.Time `json:"beacons,omitempty"`
	// Wake are the merged pass windows a schedule-aware node wakes for.
	Wake []orbit.Window `json:"wake,omitempty"`
	// Drains are the booked downlink drain sessions.
	Drains []time.Time `json:"drains,omitempty"`
}

// activeRunner holds the mutable state of one active campaign execution.
type activeRunner struct {
	cfg     ActiveConfig
	engine  *sim.Engine
	end     time.Time
	weather WeatherProvider

	nodes    []*node.Node
	outcomes map[string]map[uint64]*PacketOutcome

	gateways map[int]*satellite.Gateway
	// drains maps satellite → sorted scheduled drain times.
	drains map[int][]time.Time
	// downLink / upLink / ackLink per node index keyed by node.
	beaconLinks map[string]*radio.Link
	upLinks     map[string]*radio.Link
	ackLinks    map[string]*radio.Link

	delivery      *backhaul.DeliveryModel
	jitter        *sim.RNG
	beaconPayload int
	drainDuration time.Duration
	// satOutages holds each satellite's beacon-blackout schedule under
	// fault injection (empty map when faults are off).
	satOutages map[int]fault.Schedule
	// wakeWindows are the predicted pass windows the schedule-aware node
	// wakes for (empty when the optimization is off).
	wakeWindows []orbit.Window

	res *ActiveResult
}

// RunActive executes the satellite-side active campaign.
func RunActive(cfg ActiveConfig) (*ActiveResult, error) {
	return RunActiveCtx(context.Background(), cfg)
}

// RunActiveCtx is RunActive with config validation up front and
// cooperative cancellation: the context is checked per satellite while
// schedules build and before every simulation event, so a cancelled
// campaign aborts promptly and returns ctx.Err().
func RunActiveCtx(ctx context.Context, cfg ActiveConfig) (*ActiveResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.setDefaults()
	cons := constellation.Tianqi(cfg.Start)
	if cfg.Constellation != nil {
		cons = *cfg.Constellation
	}
	site := YunnanPlantation()
	end := cfg.Start.Add(time.Duration(cfg.Days) * 24 * time.Hour)

	r := &activeRunner{
		cfg:         cfg,
		engine:      sim.NewEngine(cfg.Start),
		end:         end,
		outcomes:    map[string]map[uint64]*PacketOutcome{},
		gateways:    map[int]*satellite.Gateway{},
		drains:      map[int][]time.Time{},
		beaconLinks: map[string]*radio.Link{},
		upLinks:     map[string]*radio.Link{},
		ackLinks:    map[string]*radio.Link{},
		delivery:    backhaul.NewDeliveryModel(sim.NewRNG(cfg.Seed, "active/delivery")),
		jitter:      sim.NewRNG(cfg.Seed, "active/jitter"),
		satOutages:  map[int]fault.Schedule{},
		res:         &ActiveResult{Config: cfg, Meters: map[string]*energy.Meter{}},
	}
	if cfg.Weather != nil {
		r.weather = cfg.Weather
	} else {
		yunnan := Site{Code: "YN", City: "Yunnan", Location: site, RainProbability: 0.30}
		r.weather = NewWeatherProcess(sim.NewRNG(cfg.Seed, "active/weather"), yunnan, cfg.Start, cfg.Days)
	}

	// Deploy the nodes with their radio chains. Beacons are modulated one
	// spreading-factor step more robustly than data frames (gateways
	// must be discoverable across the whole footprint), so a node can
	// hear a beacon in conditions where its own data frame would not
	// survive — the origin of DtS data losses and retransmissions.
	dtsParams := lora.DefaultDtSParams()
	if cfg.Radio != nil {
		dtsParams = *cfg.Radio
	}
	beaconParams := dtsParams
	for i := 0; i < cfg.Nodes; i++ {
		id := fmt.Sprintf("tq-%d", i+1)
		loc := orbit.NewGeodeticDeg(site.LatDeg()+0.002*float64(i), site.LonDeg()+0.002*float64(i), site.Alt)
		meter := energy.NewMeter(energy.TianqiProfile(), cfg.Start)
		if !cfg.SleepWhenIdle && cfg.ScheduleAwareMinElevationRad <= 0 {
			// Paper behaviour: the radio hangs on in Rx from power-up,
			// monitoring for satellites (§3.2).
			meter.Transition(energy.Rx, cfg.Start)
		}
		n := node.New(id, loc, cfg.NodeAntenna, cfg.Policy, meter)
		r.nodes = append(r.nodes, n)
		r.outcomes[id] = map[uint64]*PacketOutcome{}
		r.res.Meters[id] = meter

		// One shared channel realization per node: beacon, uplink and ACK
		// all traverse the same physical path within seconds of each
		// other, so they must see the same (slowly varying) shadowing
		// state — this is what makes the beacon-gated protocol effective
		// (§F of the paper).
		model := channel.NewModel(sim.NewRNG(cfg.Seed, "active/chan/"+id))
		model.ShadowSigmaDB = 1.8
		// The plantation has a clear sky view: fast fading is mild and
		// link quality is shadow-dominated, which is what lets a decoded
		// beacon predict uplink success a second later.
		model.RicianK = 25
		r.beaconLinks[id] = radio.NewLink(beaconParams, DtSBeaconToNodeBudget(cons.TxPowerDBm, cfg.NodeAntenna),
			model, cons.FreqMHz, sim.NewRNG(cfg.Seed, "active/rx-beacon/"+id))
		r.upLinks[id] = radio.NewLink(dtsParams, DtSUplinkBudget(n.TxPowerDBm, cfg.NodeAntenna),
			model, cons.FreqMHz, sim.NewRNG(cfg.Seed, "active/rx-up/"+id))
		r.ackLinks[id] = radio.NewLink(dtsParams, DtSAckBudget(cons.TxPowerDBm, cfg.NodeAntenna),
			model, cons.FreqMHz, sim.NewRNG(cfg.Seed, "active/rx-ack/"+id))
	}

	// Build gateways, predict passes over the plantation and downlink
	// drain schedules over the operator's ground segment.
	props, err := cons.Propagators()
	if err != nil {
		return nil, err
	}
	segment := backhaul.TianqiGroundSegment()
	r.beaconPayload = cons.BeaconPayloadBytes
	r.drainDuration = segment.DrainDuration

	// Fault schedules: drain-station outages thin the downlink windows the
	// operator can book (stretching store-and-forward delivery tails), and
	// per-satellite blackouts mute beacons at fire time. Both derive from
	// dedicated named RNG streams, so enabling them never perturbs the
	// campaign's other stochastic draws.
	horizon := end.Add(graceAfterEnd)
	faultsOn := cfg.Faults != nil && cfg.Faults.Enabled()
	drainFaults := faultsOn && cfg.Faults.DrainMTBF > 0
	satFaults := faultsOn && cfg.Faults.SatMTBF > 0
	var drainScheds []fault.Schedule
	if drainFaults {
		drainScheds = make([]fault.Schedule, len(segment.Stations))
		for i := range segment.Stations {
			drainScheds[i] = cfg.Faults.DrainSchedule(cfg.Seed, i, cfg.Start, horizon)
		}
	}

	// Per-satellite prediction (passes, beacon times, downlink drains) is
	// independent, SGP4-dominated work, so it fans out across workers into
	// index-addressed slots. The shared struct-of-arrays ephemeris grid
	// samples first in its own phase — each worker owns its row index, so
	// the fan-out never races — and the plantation pass search, the
	// 12-station downlink search, and the event-time gateway geometry all
	// read the same trajectory samples. The engine scheduling below
	// replays the slots serially in catalog order, so the event queue —
	// and therefore the whole campaign — is identical to a serial build.
	grid := orbit.NewEphemerisGrid(props, cfg.Start, horizon, orbit.EphemerisConfig{
		ScanStep:         time.Minute,
		Exact:            cfg.ExactEphemeris,
		MaxInterpErrorKm: cfg.MaxInterpErrorKm,
	})
	if err := sim.ForEachPhaseCtx(ctx, "ephemeris", len(props), func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		grid.Propagate(i)
		return nil
	}, cfg.Progress.phase("ephemeris")); err != nil {
		return nil, err
	}
	grid.Finish()

	// The plan phase's units are pure serializable schedules, so they
	// checkpoint: a resumed campaign restores completed satellites'
	// beacon/wake/drain times and recomputes only the rest. Gateways and
	// fault schedules rebuild serially below — both are cheap and
	// deterministic (named RNG streams), only the searches are expensive.
	plans := make([]satPlan, len(props))
	if err := forEachCheckpointed(ctx, "plan", plans, cfg.Shard, cfg.Resume, cfg.Checkpoint, cfg.Progress, func(i int) (satPlan, error) {
		if err := ctx.Err(); err != nil {
			return satPlan{}, err
		}
		var plan satPlan
		eph := grid.Sat(i)
		gw := satellite.NewGateway(eph, cons.BeaconInterval, cfg.SatBufferCapacity)

		pp := orbit.NewEphemerisPredictor(eph)
		passes := pp.Passes(site, cfg.Start, end, 0)
		if cfg.ScheduleAwareMinElevationRad > 0 {
			// Schedule-aware sleeping: the node only wakes for passes
			// worth waking for.
			kept := passes[:0]
			for _, pass := range passes {
				if pass.MaxElevation >= cfg.ScheduleAwareMinElevationRad {
					kept = append(kept, pass)
				}
			}
			passes = kept
			plan.Wake = orbit.MergeWindows(passes)
		}
		for _, pass := range passes {
			plan.Beacons = append(plan.Beacons, gw.BeaconTimes(pass.AOS, pass.LOS))
		}
		var windows []orbit.Window
		if drainFaults {
			windows = segment.DownlinkWindowsUp(eph, cfg.Start, horizon, time.Minute, func(station int, at time.Time) bool {
				return !drainScheds[station].Down(at)
			})
		} else {
			windows = segment.DownlinkWindows(eph, cfg.Start, horizon, time.Minute)
		}
		// Operators book roughly two drain sessions per revolution when
		// geometry allows; the emergent mean store-and-forward delay is
		// what Fig. 5d's delivery segment measures.
		plan.Drains = backhaul.ScheduleDrains(windows, 150*time.Minute)
		return plan, nil
	}); err != nil {
		return nil, err
	}
	if cfg.Shard != nil {
		// Shard run: the windowed plan units have been handed to
		// cfg.Checkpoint; skip engine scheduling and the serial simulate
		// phase — only the merge node, holding every shard's plans,
		// simulates.
		return r.res, nil
	}
	for i := range plans {
		gw := satellite.NewGateway(grid.Sat(i), cons.BeaconInterval, cfg.SatBufferCapacity)
		r.gateways[gw.NoradID] = gw
		if satFaults {
			r.satOutages[gw.NoradID] = cfg.Faults.SatSchedule(cfg.Seed, gw.NoradID, cfg.Start, end)
		}
		r.wakeWindows = append(r.wakeWindows, plans[i].Wake...)
		for _, bts := range plans[i].Beacons {
			for _, bt := range bts {
				bt := bt
				gwID := gw.NoradID
				if err := r.engine.Schedule(bt, func(*sim.Engine) { r.onBeacon(gwID, bt) }); err != nil {
					return nil, err
				}
			}
		}
		r.drains[gw.NoradID] = plans[i].Drains
		for _, dt := range plans[i].Drains {
			dt := dt
			gwID := gw.NoradID
			if err := r.engine.Schedule(dt, func(*sim.Engine) { r.onDrain(gwID, dt) }); err != nil {
				return nil, err
			}
		}
	}

	// Merge and sort wake windows across satellites.
	if len(r.wakeWindows) > 0 {
		passes := make([]orbit.Pass, len(r.wakeWindows))
		for i, w := range r.wakeWindows {
			passes[i] = orbit.Pass{AOS: w.Start, LOS: w.End}
		}
		r.wakeWindows = orbit.MergeWindows(passes)
		// Put schedule-aware nodes back to sleep at each window end.
		for _, w := range r.wakeWindows {
			wEnd := w.End
			if err := r.engine.Schedule(wEnd, func(*sim.Engine) {
				for _, n := range r.nodes {
					if n.Meter.Mode() == energy.Rx {
						n.Meter.Transition(energy.Sleep, wEnd)
					}
				}
			}); err != nil {
				return nil, err
			}
		}
	}

	// Sensor schedules.
	for i, n := range r.nodes {
		offset := time.Duration(0)
		if !cfg.AlignedPhases {
			offset = time.Duration(i) * cfg.SensePeriod / time.Duration(cfg.Nodes)
		}
		n := n
		var sense func(*sim.Engine)
		sense = func(e *sim.Engine) {
			r.onSense(n, e.Now())
			next := e.Now().Add(cfg.SensePeriod)
			if next.Before(r.end) {
				_ = e.Schedule(next, sense)
			}
		}
		if err := r.engine.Schedule(cfg.Start.Add(offset), sense); err != nil {
			return nil, err
		}
	}

	// Day markers let observers follow the event-driven phase. They touch
	// no simulation state, so enabling progress never perturbs results.
	if cfg.Progress != nil {
		for d := 1; d <= cfg.Days; d++ {
			d := d
			if err := r.engine.Schedule(cfg.Start.Add(time.Duration(d)*24*time.Hour), func(*sim.Engine) {
				cfg.Progress.report("simulate", d, cfg.Days)
			}); err != nil {
				return nil, err
			}
		}
	}

	// Run past the nominal end so packets already on board get their
	// final drain opportunity (sensing and beacons stop at end).
	if err := r.engine.RunCtx(ctx, horizon); err != nil {
		return nil, err
	}

	// Close books: drain remaining buffers at end-of-campaign drains that
	// fell beyond the horizon are lost (undelivered), meters finish.
	for _, n := range r.nodes {
		n.Meter.Finish(end)
	}
	for _, gw := range r.gateways {
		r.res.BufferDrops += gw.Buffer.Dropped
	}
	sort.Slice(r.res.Packets, func(i, j int) bool {
		a, b := r.res.Packets[i], r.res.Packets[j]
		if a.GeneratedAt.Equal(b.GeneratedAt) {
			return a.Node < b.Node
		}
		return a.GeneratedAt.Before(b.GeneratedAt)
	})
	return r.res, nil
}

// onSense handles a sensor reading.
func (r *activeRunner) onSense(n *node.Node, at time.Time) {
	reading := n.Sense(at, r.cfg.PayloadBytes)
	out := &PacketOutcome{Node: n.ID, SeqID: reading.SeqID, GeneratedAt: at}
	r.outcomes[n.ID][reading.SeqID] = out
	r.res.Packets = append(r.res.Packets, out)
	// Pending data: the node (re-)enters Rx awaiting a beacon (§3.2's
	// energy-drain mechanism). Under the default policy it is already
	// listening; a schedule-aware node stays asleep until a worthwhile
	// pass (its wake-up is handled at beacon time).
	if r.cfg.ScheduleAwareMinElevationRad > 0 && !r.inWakeWindow(at) {
		return
	}
	if n.Meter.Mode() != energy.Rx {
		n.Meter.Transition(energy.Rx, at)
	}
}

// onBeacon handles one satellite beacon instant.
func (r *activeRunner) onBeacon(gwID int, at time.Time) {
	if sched, ok := r.satOutages[gwID]; ok && sched.Down(at) {
		// Blacked-out satellite: no beacon goes out, so no node is granted
		// the channel and the retransmission policy just keeps the packet
		// queued for the next audible beacon.
		return
	}
	gw := r.gateways[gwID]
	w := r.weather.At(at)

	type attempt struct {
		n       *node.Node
		reading *node.Reading
		out     *PacketOutcome
		tx      mac.Transmission
		decoded bool
	}
	var attempts []attempt

	scheduleAware := r.cfg.ScheduleAwareMinElevationRad > 0
	for _, n := range r.nodes {
		if !n.Pending() {
			continue
		}
		if scheduleAware && n.Meter.Mode() != energy.Rx && r.inWakeWindow(at) {
			// Wake for the predicted pass.
			n.Meter.Transition(energy.Rx, at)
		}
		if n.Meter.Mode() != energy.Rx {
			continue
		}
		la, err := gw.GeometryAt(n.Location, at)
		if err != nil || la.Elevation <= 0 {
			continue
		}
		geom := radio.Geometry{At: at, DistanceKm: la.RangeKm, ElevationRad: la.Elevation, RangeRateKmS: la.RangeRate}
		// The node must decode the beacon to be allowed to transmit. An
		// optional SNR gate (an optimization, off by default) additionally
		// demands margin above the DATA frame's demodulation floor.
		beacon := r.beaconLinks[n.ID].Transmit(geom, w, r.beaconPayload)
		if !beacon.Decoded {
			continue
		}
		if r.cfg.TxGateMarginDB > 0 {
			if floor := r.upLinks[n.ID].Params.SF.DemodFloorDB(); beacon.SNRDB < floor+r.cfg.TxGateMarginDB {
				continue
			}
		}
		reading := n.Head()
		out := r.outcomes[n.ID][reading.SeqID]
		if out.FirstAttemptAt.IsZero() {
			out.FirstAttemptAt = at
		}

		// Slotted uplink offset after the beacon: nodes draw a random
		// slot within the beacon period to desynchronize, mirroring the
		// multi-channel/slotted access commercial DtS systems use.
		start := at.Add(time.Duration(r.jitter.Float64() * 8 * float64(time.Second)))
		airtime := r.upLinks[n.ID].Params.Airtime(reading.PayloadBytes)
		upGeom := geom
		upGeom.At = start
		up := r.upLinks[n.ID].Transmit(upGeom, w, reading.PayloadBytes)
		reading.Attempts++
		out.Attempts++
		if !reading.UplinkedAt.IsZero() {
			out.UnnecessaryRetx++
			r.res.MacStats.UnnecessaryRetx++
		}
		attempts = append(attempts, attempt{
			n: n, reading: reading, out: out,
			tx: mac.Transmission{
				Frame: mac.Frame{Type: mac.FrameDataUp, SatNoradID: gwID, NodeID: n.ID, SeqID: reading.SeqID, PayloadBytes: reading.PayloadBytes, Attempt: reading.Attempts - 1},
				Start: start, End: start.Add(airtime), SNRDB: up.SNRDB,
			},
			decoded: up.Decoded,
		})
		// Energy: Tx burst then back to Rx for the ACK.
		n.Meter.Transition(energy.Tx, start)
		n.Meter.Transition(energy.Rx, start.Add(airtime))
	}
	if len(attempts) == 0 {
		return
	}

	// Collision resolution across this beacon round.
	txs := make([]mac.Transmission, len(attempts))
	for i, a := range attempts {
		txs[i] = a.tx
	}
	surviving := map[int]bool{}
	for _, idx := range r.cfg.Collisions.Survivors(txs) {
		surviving[idx] = true
	}

	for i := range attempts {
		a := &attempts[i]
		a.out.MaxConcurrency = maxInt(a.out.MaxConcurrency, len(attempts))
		collided := !surviving[i] && len(attempts) > 1
		uplinkOK := a.decoded && surviving[i]
		if collided {
			a.out.Collisions++
		}

		ackOK := false
		if uplinkOK {
			if a.reading.UplinkedAt.IsZero() {
				a.reading.UplinkedAt = a.tx.End
				a.out.UplinkedAt = a.tx.End
				// Store on board and schedule delivery at the next drain.
				stored := gw.Buffer.Push(satellite.StoredPacket{
					NodeID: a.n.ID, SeqID: a.reading.SeqID,
					PayloadBytes: a.reading.PayloadBytes,
					SentAt:       a.reading.GeneratedAt, ReceivedAt: a.tx.End,
					Attempt: a.reading.Attempts - 1,
				})
				if !stored {
					// Buffer pressure: the data is acked yet lost on board.
					a.out.UplinkedAt = a.tx.End
				}
			}
			// ACK comes back over the downlink channel.
			la, err := gw.GeometryAt(a.n.Location, a.tx.End)
			if err == nil {
				geom := radio.Geometry{At: a.tx.End, DistanceKm: la.RangeKm, ElevationRad: la.Elevation, RangeRateKmS: la.RangeRate}
				ackOK = r.ackLinks[a.n.ID].Transmit(geom, r.weather.At(a.tx.End), 12).Decoded
			}
		}

		r.res.MacStats.Record(mac.TxOutcome{
			Attempt:  a.tx.Frame.Attempt,
			UplinkOK: uplinkOK,
			AckOK:    ackOK,
			Collided: collided,
		})

		resolveAt := a.tx.End.Add(r.cfg.Policy.AckTimeout)
		switch a.n.ResolveHead(ackOK, resolveAt) {
		case node.DeliveredAck:
			a.out.AckedAt = resolveAt
			r.res.MacStats.PacketsDelivered++
		case node.Abandon:
			r.res.MacStats.PacketsAbandoned++
		}
		// Queue drained: sleep only when an optimization allows it; the
		// stock Tianqi node keeps listening (§3.2).
		if (r.cfg.SleepWhenIdle || r.cfg.ScheduleAwareMinElevationRad > 0) && !a.n.Pending() {
			a.n.Meter.Transition(energy.Sleep, resolveAt)
		}
	}
}

// onDrain flushes a satellite's buffer at a scheduled downlink session.
func (r *activeRunner) onDrain(gwID int, at time.Time) {
	gw := r.gateways[gwID]
	for _, p := range gw.Buffer.Flush() {
		out := r.outcomes[p.NodeID][p.SeqID]
		if out == nil || !out.ServerAt.IsZero() {
			continue
		}
		out.ServerAt = r.delivery.DeliverAt(at.Add(r.drainDuration))
	}
}

// inWakeWindow reports whether t falls inside a schedule-aware wake
// window (binary search over the merged, sorted windows).
func (r *activeRunner) inWakeWindow(t time.Time) bool {
	lo, hi := 0, len(r.wakeWindows)
	for lo < hi {
		mid := (lo + hi) / 2
		w := r.wakeWindows[mid]
		switch {
		case t.Before(w.Start):
			hi = mid
		case !t.Before(w.End):
			lo = mid + 1
		default:
			return true
		}
	}
	return false
}

// graceAfterEnd lets in-flight store-and-forward packets drain after the
// last reading so tail packets are not artificially counted as lost.
const graceAfterEnd = 4 * time.Hour

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
