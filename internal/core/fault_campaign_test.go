package core

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"github.com/sinet-io/sinet/internal/constellation"
	"github.com/sinet-io/sinet/internal/fault"
	"github.com/sinet-io/sinet/internal/groundstation"
	"github.com/sinet-io/sinet/internal/lora"
	"github.com/sinet-io/sinet/internal/mac"
	"github.com/sinet-io/sinet/internal/orbit"
	"github.com/sinet-io/sinet/internal/sim"
)

func faultPassiveConfig(t *testing.T, faults *fault.Config) PassiveConfig {
	t.Helper()
	hk, ok := SiteByCode("HK")
	if !ok {
		t.Fatal("HK site missing")
	}
	return PassiveConfig{
		Seed:  42,
		Start: campaignStart,
		Days:  2,
		Sites: []Site{hk},
		Constellations: []constellation.Constellation{
			constellation.Tianqi(campaignStart),
			constellation.PICO(campaignStart),
		},
		Faults: faults,
	}
}

func TestPassiveNoFaultsHasNoAvailability(t *testing.T) {
	res := smallPassive(t)
	if res.Availability != nil {
		t.Fatalf("faults disabled but Availability populated: %v", res.Availability)
	}
}

func TestPassiveStationChurnReducesTraffic(t *testing.T) {
	base, err := RunPassive(faultPassiveConfig(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	churned, err := RunPassive(faultPassiveConfig(t, &fault.Config{
		StationMTBF: 6 * time.Hour,
		StationMTTR: 6 * time.Hour,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if base.Dataset.Len() == 0 {
		t.Fatal("baseline campaign produced no traffic — vacuous comparison")
	}
	if churned.Dataset.Len() >= base.Dataset.Len() {
		t.Fatalf("heavy churn did not reduce traffic: %d vs baseline %d",
			churned.Dataset.Len(), base.Dataset.Len())
	}
	if len(churned.Availability) == 0 {
		t.Fatal("churned campaign reports no availability rows")
	}
	mean := 0.0
	for i, a := range churned.Availability {
		if a.Uptime < 0 || a.Uptime > 1 {
			t.Fatalf("station %s uptime %v outside [0,1]", a.Station, a.Uptime)
		}
		if a.Station == "" || a.Site == "" {
			t.Fatalf("availability row %d missing identity: %+v", i, a)
		}
		mean += a.Uptime
	}
	mean /= float64(len(churned.Availability))
	// MTBF == MTTR targets ~50% duty cycle; anything near 1.0 means the
	// churn never actually bit.
	if mean > 0.9 {
		t.Fatalf("fleet mean uptime %.3f — churn barely injected", mean)
	}
}

func TestPassiveFaultScheduleDeterministic(t *testing.T) {
	cfg := func() PassiveConfig {
		return faultPassiveConfig(t, &fault.Config{
			StationMTBF: 24 * time.Hour,
			StationMTTR: 4 * time.Hour,
		})
	}
	a, err := RunPassive(cfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPassive(cfg())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Availability, b.Availability) {
		t.Fatal("same seed and fault config produced different availability")
	}
	if !reflect.DeepEqual(a.Dataset.Records, b.Dataset.Records) {
		t.Fatal("same seed and fault config produced different datasets")
	}
	if !reflect.DeepEqual(a.Contacts, b.Contacts) {
		t.Fatal("same seed and fault config produced different contacts")
	}
}

// panicScheduler is a deliberately crashing scheduler used to prove worker
// panics surface as attributed errors instead of killing the process.
type panicScheduler struct{}

func (panicScheduler) Name() string { return "panic" }
func (panicScheduler) Plan([]groundstation.Station, []orbit.Pass, time.Time, time.Time) []groundstation.Assignment {
	panic("scheduler exploded")
}

func TestPassiveWorkerPanicBecomesError(t *testing.T) {
	cfg := faultPassiveConfig(t, nil)
	cfg.Scheduler = panicScheduler{}
	_, err := RunPassive(cfg)
	if err == nil {
		t.Fatal("panicking scheduler did not surface as an error")
	}
	var pe *sim.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v (%T), want *sim.PanicError", err, err)
	}
	if pe.Value != "scheduler exploded" {
		t.Fatalf("panic value %v, want the scheduler's", pe.Value)
	}
}

func TestRunPassiveCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunPassiveCtx(ctx, faultPassiveConfig(t, nil))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestRunActiveCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunActiveCtx(ctx, ActiveConfig{
		Seed: 42, Start: campaignStart, Days: 1, Policy: mac.DefaultRetxPolicy(),
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestActiveSatBlackoutReducesDelivery(t *testing.T) {
	run := func(faults *fault.Config) *ActiveResult {
		t.Helper()
		res, err := RunActive(ActiveConfig{
			Seed: 42, Start: campaignStart, Days: 2,
			Policy: mac.DefaultRetxPolicy(),
			Faults: faults,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	delivered := func(r *ActiveResult) int {
		n := 0
		for _, p := range r.Packets {
			if p.Delivered() {
				n++
			}
		}
		return n
	}
	base := run(nil)
	if delivered(base) == 0 {
		t.Fatal("baseline delivered nothing — vacuous comparison")
	}
	// Satellites dark half the time: beacons vanish, so nodes find fewer
	// uplink opportunities.
	dark := run(&fault.Config{SatMTBF: 3 * time.Hour, SatMTTR: 3 * time.Hour})
	if d, b := delivered(dark), delivered(base); d >= b {
		t.Fatalf("sat blackouts did not reduce delivery: %d vs baseline %d", d, b)
	}
}

func TestActiveDrainChurnStretchesDelay(t *testing.T) {
	run := func(faults *fault.Config) *ActiveResult {
		t.Helper()
		res, err := RunActive(ActiveConfig{
			Seed: 42, Start: campaignStart, Days: 2,
			Policy: mac.DefaultRetxPolicy(),
			Faults: faults,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	meanDelay := func(r *ActiveResult) time.Duration {
		var total time.Duration
		n := 0
		for _, p := range r.Packets {
			if p.Delivered() {
				total += p.ServerAt.Sub(p.GeneratedAt)
				n++
			}
		}
		if n == 0 {
			t.Fatal("no delivered packets to measure delay on")
		}
		return total / time.Duration(n)
	}
	base := run(nil)
	// Drain teleports down two-thirds of the time: store-and-forward
	// holds data longer before it can be dumped.
	churned := run(&fault.Config{DrainMTBF: 4 * time.Hour, DrainMTTR: 8 * time.Hour})
	if mc, mb := meanDelay(churned), meanDelay(base); mc <= mb {
		t.Fatalf("drain churn did not stretch delivery delay: %v vs baseline %v", mc, mb)
	}
}

func TestActiveFaultDeterministic(t *testing.T) {
	cfg := func() ActiveConfig {
		return ActiveConfig{
			Seed: 42, Start: campaignStart, Days: 2,
			Policy: mac.DefaultRetxPolicy(),
			Faults: &fault.Config{
				SatMTBF: 12 * time.Hour, SatMTTR: 2 * time.Hour,
				DrainMTBF: 24 * time.Hour, DrainMTTR: 4 * time.Hour,
			},
		}
	}
	a, err := RunActive(cfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunActive(cfg())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Packets, b.Packets) {
		t.Fatal("same seed and fault config produced different packet outcomes")
	}
	if !reflect.DeepEqual(a.MacStats, b.MacStats) {
		t.Fatal("same seed and fault config produced different MAC stats")
	}
}

func TestConfigValidation(t *testing.T) {
	badRadio := lora.DefaultDtSParams()
	badRadio.SF = 99

	cases := []struct {
		name string
		run  func() error
		want []error
	}{
		{
			"passive negative days",
			func() error { _, err := RunPassive(PassiveConfig{Seed: 1, Start: campaignStart, Days: -1}); return err },
			[]error{ErrInvalidConfig},
		},
		{
			"passive bad radio",
			func() error {
				cfg := PassiveConfig{Seed: 1, Start: campaignStart, Days: 1, Radio: &badRadio}
				_, err := RunPassive(cfg)
				return err
			},
			[]error{ErrInvalidConfig, lora.ErrBadSF},
		},
		{
			"passive mismatched fault pair",
			func() error {
				cfg := faultPassiveConfig(t, &fault.Config{StationMTBF: time.Hour})
				_, err := RunPassive(cfg)
				return err
			},
			[]error{ErrInvalidConfig, fault.ErrBadConfig},
		},
		{
			"active negative nodes",
			func() error {
				_, err := RunActive(ActiveConfig{Seed: 1, Start: campaignStart, Days: 1, Nodes: -5})
				return err
			},
			[]error{ErrInvalidConfig},
		},
		{
			"active bad radio",
			func() error {
				_, err := RunActive(ActiveConfig{Seed: 1, Start: campaignStart, Days: 1, Radio: &badRadio})
				return err
			},
			[]error{ErrInvalidConfig, lora.ErrBadSF},
		},
		{
			"terrestrial negative gateways",
			func() error {
				_, err := RunTerrestrial(TerrestrialConfig{Seed: 1, Start: campaignStart, Days: 1, Gateways: -1})
				return err
			},
			[]error{ErrInvalidConfig},
		},
	}
	for _, tc := range cases {
		err := tc.run()
		if err == nil {
			t.Errorf("%s: expected error", tc.name)
			continue
		}
		for _, want := range tc.want {
			if !errors.Is(err, want) {
				t.Errorf("%s: error %v does not wrap %v", tc.name, err, want)
			}
		}
	}
}
