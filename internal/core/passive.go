package core

import (
	"fmt"
	"time"

	"github.com/sinet-io/sinet/internal/channel"
	"github.com/sinet-io/sinet/internal/constellation"
	"github.com/sinet-io/sinet/internal/groundstation"
	"github.com/sinet-io/sinet/internal/lora"
	"github.com/sinet-io/sinet/internal/orbit"
	"github.com/sinet-io/sinet/internal/radio"
	"github.com/sinet-io/sinet/internal/satellite"
	"github.com/sinet-io/sinet/internal/sim"
	"github.com/sinet-io/sinet/internal/trace"
)

// PassiveConfig configures a §3.1-style passive measurement campaign.
type PassiveConfig struct {
	// Seed drives every random stream in the campaign.
	Seed int64
	// Start and Days bound the campaign window.
	Start time.Time
	Days  int
	// Sites to deploy at (defaults to the four continent sites).
	Sites []Site
	// Constellations to measure (defaults to all four).
	Constellations []constellation.Constellation
	// Scheduler decides station-satellite tuning (defaults to the paper's
	// customized tracking scheduler).
	Scheduler groundstation.Scheduler
	// MinElevationRad is the theoretical-visibility mask (default 0°,
	// matching TLE-based presence computations).
	MinElevationRad float64
	// CoarseStep is the pass-search scan step (default 60 s).
	CoarseStep time.Duration
	// HonorSiteStart delays each site to its Table 1 start month when the
	// campaign window begins earlier.
	HonorSiteStart bool
	// Weather pins the sky state for controlled experiments; nil uses
	// each site's stochastic weather process.
	Weather WeatherProvider
}

func (c *PassiveConfig) setDefaults() {
	if c.Days <= 0 {
		c.Days = 1
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC)
	}
	if len(c.Sites) == 0 {
		c.Sites = ContinentSites()
	}
	if len(c.Constellations) == 0 {
		c.Constellations = constellation.All(c.Start)
	}
	if c.Scheduler == nil {
		c.Scheduler = groundstation.TrackingScheduler{}
	}
	if c.CoarseStep <= 0 {
		c.CoarseStep = 60 * time.Second
	}
}

// ContactStat summarizes one theoretical contact window and what the
// ground segment actually received during it.
type ContactStat struct {
	Site          string
	Constellation string
	SatName       string
	NoradID       int

	Pass orbit.Pass

	// Covered reports whether the scheduler had any station tuned to the
	// satellite during the pass.
	Covered bool

	BeaconsSent     int
	BeaconsReceived int
	FirstRx, LastRx time.Time

	// RxPositions are the window-relative positions (0..1) of received
	// beacons, feeding the Fig. 9 histogram.
	RxPositions []float64

	// WeatherAtTCA is the sky state at closest approach.
	WeatherAtTCA channel.Weather
}

// TheoreticalDuration is the TLE-predicted visibility span.
func (c ContactStat) TheoreticalDuration() time.Duration { return c.Pass.Duration() }

// EffectiveDuration is the span between first and last received beacons
// (zero when fewer than one beacon was received).
func (c ContactStat) EffectiveDuration() time.Duration {
	if c.FirstRx.IsZero() || c.LastRx.Before(c.FirstRx) {
		return 0
	}
	return c.LastRx.Sub(c.FirstRx)
}

// ReceptionRatio is received/sent beacons for the contact.
func (c ContactStat) ReceptionRatio() float64 {
	if c.BeaconsSent == 0 {
		return 0
	}
	return float64(c.BeaconsReceived) / float64(c.BeaconsSent)
}

// PassiveResult is a completed passive campaign.
type PassiveResult struct {
	Config   PassiveConfig
	Dataset  *trace.Dataset
	Contacts []ContactStat
}

// RunPassive executes the campaign and returns its dataset and per-contact
// statistics. The work is deterministic for a given config.
func RunPassive(cfg PassiveConfig) (*PassiveResult, error) {
	cfg.setDefaults()
	res := &PassiveResult{Config: cfg, Dataset: &trace.Dataset{}}
	end := cfg.Start.Add(time.Duration(cfg.Days) * 24 * time.Hour)

	for _, site := range cfg.Sites {
		start := cfg.Start
		if cfg.HonorSiteStart && site.StartMonth.After(start) {
			start = site.StartMonth
		}
		if !end.After(start) {
			continue
		}
		var weather WeatherProvider
		if cfg.Weather != nil {
			weather = cfg.Weather
		} else {
			weather = NewWeatherProcess(sim.NewRNG(cfg.Seed, "weather/"+site.Code), site, start, cfg.Days)
		}
		stations := site.BuildStations()

		for _, cons := range cfg.Constellations {
			if err := runPassiveSiteConstellation(cfg, res, site, stations, cons, weather, start, end); err != nil {
				return nil, err
			}
		}
	}
	res.Dataset.SortByTime()
	return res, nil
}

// runPassiveSiteConstellation simulates one (site, constellation) pair.
func runPassiveSiteConstellation(cfg PassiveConfig, res *PassiveResult, site Site, stations []groundstation.Station, cons constellation.Constellation, weather WeatherProvider, start, end time.Time) error {
	props, err := cons.Propagators()
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}

	// Predict all passes of the constellation over the site.
	var passes []orbit.Pass
	gateways := make(map[int]*satellite.Gateway, len(props))
	for _, p := range props {
		pp := orbit.NewPassPredictor(p)
		pp.CoarseStep = cfg.CoarseStep
		passes = append(passes, pp.Passes(site.Location, start, end, cfg.MinElevationRad)...)
		gateways[p.Elements().NoradID] = satellite.NewGateway(p, cons.BeaconInterval, 0)
	}

	plan := cfg.Scheduler.Plan(stations, passes, start, end)

	// Station-side receive chains: one channel realization per station.
	links := make(map[string]*radio.Link, len(stations))
	stationByID := make(map[string]groundstation.Station, len(stations))
	for _, st := range stations {
		model := channel.NewModel(sim.NewRNG(cfg.Seed, "chan/"+st.ID+"/"+cons.Name))
		model.ShadowSigmaDB = 1.8
		links[st.ID] = radio.NewLink(lora.DefaultDtSParams(), DtSDownlinkBudget(cons.TxPowerDBm), model, cons.FreqMHz, sim.NewRNG(cfg.Seed, "rx/"+st.ID+"/"+cons.Name))
		stationByID[st.ID] = st
	}

	for _, pass := range passes {
		gw := gateways[pass.NoradID]
		stat := ContactStat{
			Site:          site.Code,
			Constellation: cons.Name,
			SatName:       pass.Name,
			NoradID:       pass.NoradID,
			Pass:          pass,
			WeatherAtTCA:  weather.At(pass.TCA),
		}
		for _, bt := range gw.BeaconTimes(pass.AOS, pass.LOS) {
			// Which station is tuned to this satellite now?
			var covering *groundstation.Station
			for i := range plan {
				if plan[i].Covers(pass.NoradID, bt) {
					st := stationByID[plan[i].StationID]
					covering = &st
					break
				}
			}
			if covering == nil {
				continue
			}
			stat.Covered = true
			stat.BeaconsSent++

			la, err := gw.GeometryAt(covering.Location, bt)
			if err != nil {
				continue
			}
			if la.Elevation < covering.MinElevationRad {
				continue
			}
			w := weather.At(bt)
			rc := links[covering.ID].Transmit(radio.Geometry{
				At:           bt,
				DistanceKm:   la.RangeKm,
				ElevationRad: la.Elevation,
				RangeRateKmS: la.RangeRate,
			}, w, cons.BeaconPayloadBytes)
			if !rc.Decoded {
				continue
			}

			stat.BeaconsReceived++
			if stat.FirstRx.IsZero() {
				stat.FirstRx = bt
			}
			stat.LastRx = bt
			if d := pass.Duration(); d > 0 {
				stat.RxPositions = append(stat.RxPositions, float64(bt.Sub(pass.AOS))/float64(d))
			}

			alt, _ := gw.AltitudeAt(bt)
			res.Dataset.Add(trace.Record{
				At:            bt,
				Kind:          trace.KindBeacon,
				Station:       covering.ID,
				Site:          site.Code,
				Constellation: cons.Name,
				SatName:       pass.Name,
				NoradID:       pass.NoradID,
				FreqMHz:       cons.FreqMHz,
				RSSIDBm:       rc.RSSIDBm,
				SNRDB:         rc.SNRDB,
				ElevationDeg:  la.ElevationDeg(),
				AzimuthDeg:    la.AzimuthDeg(),
				RangeKm:       la.RangeKm,
				SatAltKm:      alt,
				DopplerHz:     rc.DopplerHz,
				PayloadBytes:  cons.BeaconPayloadBytes,
				Weather:       w.String(),
			})
		}
		res.Contacts = append(res.Contacts, stat)
	}
	return nil
}
