package core

import (
	"context"
	"fmt"
	"time"

	"github.com/sinet-io/sinet/internal/channel"
	"github.com/sinet-io/sinet/internal/constellation"
	"github.com/sinet-io/sinet/internal/fault"
	"github.com/sinet-io/sinet/internal/groundstation"
	"github.com/sinet-io/sinet/internal/lora"
	"github.com/sinet-io/sinet/internal/orbit"
	"github.com/sinet-io/sinet/internal/radio"
	"github.com/sinet-io/sinet/internal/satellite"
	"github.com/sinet-io/sinet/internal/sim"
	"github.com/sinet-io/sinet/internal/trace"
)

// PassiveConfig configures a §3.1-style passive measurement campaign.
type PassiveConfig struct {
	// Seed drives every random stream in the campaign.
	Seed int64
	// Start and Days bound the campaign window.
	Start time.Time
	Days  int
	// Sites to deploy at (defaults to the four continent sites).
	Sites []Site
	// Constellations to measure (defaults to all four).
	Constellations []constellation.Constellation
	// Scheduler decides station-satellite tuning (defaults to the paper's
	// customized tracking scheduler). Excluded from JSON: scheduler choice
	// is behaviour, not data, and cannot round-trip through an interface.
	Scheduler groundstation.Scheduler `json:"-"`
	// MinElevationRad is the theoretical-visibility mask (default 0°,
	// matching TLE-based presence computations).
	MinElevationRad float64
	// CoarseStep is the pass-search scan step (default 60 s).
	CoarseStep time.Duration
	// ExactEphemeris disables Hermite interpolation in the shared
	// ephemeris grids: every off-grid query falls back to exact SGP4,
	// reproducing pre-interpolation campaign outputs byte-identically at
	// a large propagation cost.
	ExactEphemeris bool
	// MaxInterpErrorKm bounds the positional error of interpolated
	// ephemeris queries (default orbit.DefaultMaxInterpErrorKm; ignored
	// when ExactEphemeris is set).
	MaxInterpErrorKm float64
	// HonorSiteStart delays each site to its Table 1 start month when the
	// campaign window begins earlier.
	HonorSiteStart bool
	// Weather pins the sky state for controlled experiments; nil uses
	// each site's stochastic weather process. A non-nil provider is shared
	// by concurrent site workers and must be safe for concurrent reads
	// (the built-in providers are: their state is precomputed). Excluded
	// from JSON for the same reason as Scheduler.
	Weather WeatherProvider `json:"-"`
	// Radio overrides the station-side LoRa parameters; nil uses the DtS
	// defaults. Validated up front so illegal SF/BW combinations are
	// rejected before the campaign runs.
	Radio *lora.Params
	// Faults injects deterministic infrastructure disruption (station
	// churn, maintenance windows); nil — the default — simulates perfectly
	// available infrastructure and reproduces pre-fault results
	// byte-identically.
	Faults *fault.Config
	// Progress observes the campaign's phases ("ephemeris", then
	// "contacts") as their fan-outs complete; nil observes nothing. It
	// never influences results and is excluded from serialization.
	Progress ProgressFunc `json:"-"`
	// Checkpoint receives each completed "contacts" unit for durable
	// snapshotting; Resume restores such a snapshot, skipping the units
	// it holds. Both observe-only fields are excluded from serialization
	// and config keys, and a resumed run is byte-identical to an
	// uninterrupted one (see core.Checkpoint).
	Checkpoint CheckpointFunc `json:"-"`
	Resume     *Checkpoint    `json:"-"`
	// Shard restricts the "contacts" fan-out to a window of its
	// (site × constellation) units and returns right after that phase
	// with only the windowed units filled — the result is a shard
	// fragment, not a full campaign (see core.ShardWindow). Unlike the
	// observe-only fields above, a shard DOES parameterize the run, so
	// callers must fold shard identity into any derived content key.
	Shard *ShardWindow `json:"-"`
}

func (c *PassiveConfig) setDefaults() {
	if c.Days <= 0 {
		c.Days = 1
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC)
	}
	if len(c.Sites) == 0 {
		c.Sites = ContinentSites()
	}
	if len(c.Constellations) == 0 {
		c.Constellations = constellation.All(c.Start)
	}
	if c.Scheduler == nil {
		c.Scheduler = groundstation.TrackingScheduler{}
	}
	if c.CoarseStep <= 0 {
		c.CoarseStep = 60 * time.Second
	}
}

// ContactStat summarizes one theoretical contact window and what the
// ground segment actually received during it.
type ContactStat struct {
	Site          string
	Constellation string
	SatName       string
	NoradID       int

	Pass orbit.Pass

	// Covered reports whether the scheduler had any station tuned to the
	// satellite during the pass.
	Covered bool

	BeaconsSent     int
	BeaconsReceived int
	FirstRx, LastRx time.Time

	// RxPositions are the window-relative positions (0..1) of received
	// beacons, feeding the Fig. 9 histogram.
	RxPositions []float64

	// WeatherAtTCA is the sky state at closest approach.
	WeatherAtTCA channel.Weather
}

// TheoreticalDuration is the TLE-predicted visibility span.
func (c ContactStat) TheoreticalDuration() time.Duration { return c.Pass.Duration() }

// EffectiveDuration is the span between first and last received beacons
// (zero when fewer than one beacon was received).
func (c ContactStat) EffectiveDuration() time.Duration {
	if c.FirstRx.IsZero() || c.LastRx.Before(c.FirstRx) {
		return 0
	}
	return c.LastRx.Sub(c.FirstRx)
}

// ReceptionRatio is received/sent beacons for the contact.
func (c ContactStat) ReceptionRatio() float64 {
	if c.BeaconsSent == 0 {
		return 0
	}
	return float64(c.BeaconsReceived) / float64(c.BeaconsSent)
}

// StationAvailability summarizes one station's injected churn over its
// campaign span: the availability-under-churn report row.
type StationAvailability struct {
	Station  string
	Site     string
	Uptime   float64
	Outages  int
	Downtime time.Duration
}

// PassiveResult is a completed passive campaign.
type PassiveResult struct {
	Config   PassiveConfig
	Dataset  *trace.Dataset
	Contacts []ContactStat
	// Availability holds one row per station when fault injection is on
	// (nil otherwise), in deterministic site/station order.
	Availability []StationAvailability
}

// RunPassive executes the campaign and returns its dataset and per-contact
// statistics. The work is deterministic for a given config: the
// (site × constellation) pairs run on a worker pool, but every stochastic
// draw comes from a named per-site/per-link RNG stream and each worker
// writes into an index-addressed slot that is merged in the serial order,
// so the output is bit-identical to a single-worker run.
func RunPassive(cfg PassiveConfig) (*PassiveResult, error) {
	return RunPassiveCtx(context.Background(), cfg)
}

// RunPassiveCtx is RunPassive with config validation up front and
// cooperative cancellation: the context is checked per satellite while
// ephemerides build and per pass while contacts simulate, so a cancelled
// campaign aborts within roughly one coarse step of work and returns
// ctx.Err().
func RunPassiveCtx(ctx context.Context, cfg PassiveConfig) (*PassiveResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.setDefaults()
	res := &PassiveResult{Config: cfg, Dataset: &trace.Dataset{}}
	end := cfg.Start.Add(time.Duration(cfg.Days) * 24 * time.Hour)
	faultsOn := cfg.Faults != nil && cfg.Faults.Enabled()

	// Per-site context: stations, one weather realization, and (under
	// fault injection) the per-station outage schedules shared by every
	// constellation (and worker) at the site.
	type siteCtx struct {
		site     Site
		start    time.Time
		stations []groundstation.Station
		weather  WeatherProvider
		outages  map[string][]orbit.Window
	}
	siteCtxs := make([]siteCtx, 0, len(cfg.Sites))
	for _, site := range cfg.Sites {
		start := cfg.Start
		if cfg.HonorSiteStart && site.StartMonth.After(start) {
			start = site.StartMonth
		}
		if !end.After(start) {
			continue
		}
		weather := cfg.Weather
		if weather == nil {
			weather = NewWeatherProcess(sim.NewRNG(cfg.Seed, "weather/"+site.Code), site, start, cfg.Days)
		}
		sc := siteCtx{site: site, start: start, stations: site.BuildStations(), weather: weather}
		if faultsOn {
			sc.outages = make(map[string][]orbit.Window, len(sc.stations))
			for _, st := range sc.stations {
				sched := cfg.Faults.StationSchedule(cfg.Seed, st.ID, start, end)
				if ws := sched.Windows(); len(ws) > 0 {
					sc.outages[st.ID] = ws
				}
				res.Availability = append(res.Availability, StationAvailability{
					Station:  st.ID,
					Site:     site.Code,
					Uptime:   sched.Availability(start, end),
					Outages:  sched.OutageCount(start, end),
					Downtime: sched.DownTime(start, end),
				})
			}
		}
		siteCtxs = append(siteCtxs, sc)
	}

	// One ephemeris grid per constellation, shared by every site: the
	// satellite state at a timestep is site-independent, so sampling it
	// once turns O(sats × sites × steps) propagations into
	// O(sats × steps) — and the grid's struct-of-arrays storage samples
	// the whole constellation into six contiguous arrays instead of
	// per-satellite slices. Grids anchor at cfg.Start; a site whose scan
	// starts a whole number of steps later (the Table 1 month boundaries
	// always do) still hits the samples, and any misaligned query is
	// answered by the bounded-error interpolant (or exact SGP4 under
	// ExactEphemeris).
	ephCfg := orbit.EphemerisConfig{
		ScanStep:         cfg.CoarseStep,
		Exact:            cfg.ExactEphemeris,
		MaxInterpErrorKm: cfg.MaxInterpErrorKm,
	}
	consCtxs := make([]consCtx, len(cfg.Constellations))
	for ci, cons := range cfg.Constellations {
		props, err := cons.Propagators()
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		grid := orbit.NewEphemerisGrid(props, cfg.Start, end, ephCfg)
		gateways := make(map[int]*satellite.Gateway, len(props))
		for i, p := range props {
			gateways[p.Elements().NoradID] = satellite.NewGateway(grid.Sat(i), cons.BeaconInterval, 0)
		}
		consCtxs[ci] = consCtx{cons: cons, props: props, grid: grid, gateways: gateways}
	}
	type satRef struct{ ci, si int }
	nSats := 0
	for ci := range consCtxs {
		nSats += len(consCtxs[ci].props)
	}
	sats := make([]satRef, 0, nSats)
	for ci := range consCtxs {
		for si := range consCtxs[ci].props {
			sats = append(sats, satRef{ci, si})
		}
	}
	if err := sim.ForEachPhaseCtx(ctx, "ephemeris", len(sats), func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		ref := sats[i]
		consCtxs[ref.ci].grid.Propagate(ref.si)
		return nil
	}, cfg.Progress.phase("ephemeris")); err != nil {
		return nil, err
	}
	for ci := range consCtxs {
		consCtxs[ci].grid.Finish()
	}

	// Fan the (site × constellation) pairs across workers.
	type pairRef struct {
		s *siteCtx
		c *consCtx
	}
	pairs := make([]pairRef, 0, len(siteCtxs)*len(consCtxs))
	for si := range siteCtxs {
		for ci := range consCtxs {
			pairs = append(pairs, pairRef{&siteCtxs[si], &consCtxs[ci]})
		}
	}
	units := make([]passiveUnit, len(pairs))
	if err := forEachCheckpointed(ctx, "contacts", units, cfg.Shard, cfg.Resume, cfg.Checkpoint, cfg.Progress, func(i int) (passiveUnit, error) {
		p := pairs[i]
		return runPassiveSiteConstellation(ctx, cfg, p.s.site, p.s.stations, p.c, p.s.weather, p.s.start, end, p.s.outages)
	}); err != nil {
		return nil, err
	}
	if cfg.Shard != nil {
		// Shard run: the windowed units have been handed to cfg.Checkpoint;
		// skip assembly — the merge node restores every unit and assembles.
		return res, nil
	}
	var nContacts, nRecords int
	for i := range units {
		nContacts += len(units[i].Contacts)
		nRecords += len(units[i].Records)
	}
	res.Contacts = make([]ContactStat, 0, nContacts)
	res.Dataset.Records = make([]trace.Record, 0, nRecords)
	for i := range units {
		res.Contacts = append(res.Contacts, units[i].Contacts...)
		res.Dataset.Records = append(res.Dataset.Records, units[i].Records...)
	}
	res.Dataset.SortByTime()
	return res, nil
}

// consCtx bundles one constellation with its shared propagators, its
// batch-sampled ephemeris grid and its gateways, built once per campaign
// and read by every (site, constellation) worker. The gateways are backed
// by the grid's shared ephemeris views and used read-only (beacon grids
// and geometry queries), so sharing them across site workers is safe.
type consCtx struct {
	cons     constellation.Constellation
	props    []*orbit.Propagator
	grid     *orbit.EphemerisGrid
	gateways map[int]*satellite.Gateway
}

// passiveUnit is the output of one (site, constellation) worker, merged
// into the campaign result in serial order. Its fields are exported so a
// unit snapshot serializes completely for checkpoint/resume.
type passiveUnit struct {
	Contacts []ContactStat  `json:"contacts,omitempty"`
	Records  []trace.Record `json:"records,omitempty"`
}

// runPassiveSiteConstellation simulates one (site, constellation) pair. It
// reads the constellation's shared ephemeris grid and gateways — both safe
// for concurrent read-only use — so concurrent invocations never share
// mutable state. Under fault injection the tuning plan is clipped against
// the per-station outage windows before indexing, so a downed station
// simply isn't tuned — the effective contact shortfall emerges from churn
// rather than being modelled directly.
func runPassiveSiteConstellation(ctx context.Context, cfg PassiveConfig, site Site, stations []groundstation.Station, cc *consCtx, weather WeatherProvider, start, end time.Time, outages map[string][]orbit.Window) (passiveUnit, error) {
	cons := cc.cons

	// Predict all passes of the constellation over the site from the
	// shared grid, sweeping one reused predictor across the satellites.
	passes := make([]orbit.Pass, 0, 256)
	pp := orbit.NewEphemerisPredictor(cc.grid.Sat(0))
	pp.CoarseStep = cfg.CoarseStep
	for i := range cc.props {
		if err := ctx.Err(); err != nil {
			return passiveUnit{}, err
		}
		pp.SetSource(cc.grid.Sat(i))
		passes = pp.PassesAppend(passes, site.Location, start, end, cfg.MinElevationRad)
	}
	gateways := cc.gateways

	plan := cfg.Scheduler.Plan(stations, passes, start, end)
	plan = groundstation.ClipAssignments(plan, outages)
	planIdx := groundstation.NewPlanIndex(plan)

	// Station-side receive chains: one channel realization per station.
	rxParams := lora.DefaultDtSParams()
	if cfg.Radio != nil {
		rxParams = *cfg.Radio
	}
	// A site has a handful of stations, so the per-station state is two
	// parallel slices with a linear ID lookup — cheaper to build and to
	// query than string-keyed maps.
	links := make([]*radio.Link, len(stations))
	for si, st := range stations {
		model := channel.NewModel(sim.NewRNG(cfg.Seed, "chan/"+st.ID+"/"+cons.Name))
		model.ShadowSigmaDB = 1.8
		links[si] = radio.NewLink(rxParams, DtSDownlinkBudget(cons.TxPowerDBm), model, cons.FreqMHz, sim.NewRNG(cfg.Seed, "rx/"+st.ID+"/"+cons.Name))
	}
	stationIdx := func(id string) int {
		for si := range stations {
			if stations[si].ID == id {
				return si
			}
		}
		return -1
	}

	unit := passiveUnit{
		Contacts: make([]ContactStat, 0, len(passes)),
		Records:  make([]trace.Record, 0, 256),
	}
	beaconBuf := make([]time.Time, 0, 128)
	// posArena backs every contact's RxPositions for this unit: each
	// contact's positions are appended contiguously and published as a
	// capacity-capped subslice, so the unit performs a few arena growths
	// instead of one allocation per covered contact. Growth reallocations
	// are safe: already-published subslices keep their old backing array.
	posArena := make([]float64, 0, 256)
	for _, pass := range passes {
		if err := ctx.Err(); err != nil {
			return unit, err
		}
		gw := gateways[pass.NoradID]
		stat := ContactStat{
			Site:          site.Code,
			Constellation: cons.Name,
			SatName:       pass.Name,
			NoradID:       pass.NoradID,
			Pass:          pass,
			WeatherAtTCA:  weather.At(pass.TCA),
		}
		beaconBuf = gw.AppendBeaconTimes(beaconBuf[:0], pass.AOS, pass.LOS)
		posStart := len(posArena)
		for _, bt := range beaconBuf {
			// Which station is tuned to this satellite now?
			a, ok := planIdx.Covering(pass.NoradID, bt)
			if !ok {
				continue
			}
			si := stationIdx(a.StationID)
			if si < 0 {
				continue
			}
			covering := &stations[si]
			stat.Covered = true
			stat.BeaconsSent++

			la, err := gw.GeometryAt(covering.Location, bt)
			if err != nil {
				continue
			}
			if la.Elevation < covering.MinElevationRad {
				continue
			}
			w := weather.At(bt)
			rc := links[si].Transmit(radio.Geometry{
				At:           bt,
				DistanceKm:   la.RangeKm,
				ElevationRad: la.Elevation,
				RangeRateKmS: la.RangeRate,
			}, w, cons.BeaconPayloadBytes)
			if !rc.Decoded {
				continue
			}

			stat.BeaconsReceived++
			if stat.FirstRx.IsZero() {
				stat.FirstRx = bt
			}
			stat.LastRx = bt
			if d := pass.Duration(); d > 0 {
				posArena = append(posArena, float64(bt.Sub(pass.AOS))/float64(d))
			}

			alt, _ := gw.AltitudeAt(bt)
			unit.Records = append(unit.Records, trace.Record{
				At:            bt,
				Kind:          trace.KindBeacon,
				Station:       covering.ID,
				Site:          site.Code,
				Constellation: cons.Name,
				SatName:       pass.Name,
				NoradID:       pass.NoradID,
				FreqMHz:       cons.FreqMHz,
				RSSIDBm:       rc.RSSIDBm,
				SNRDB:         rc.SNRDB,
				ElevationDeg:  la.ElevationDeg(),
				AzimuthDeg:    la.AzimuthDeg(),
				RangeKm:       la.RangeKm,
				SatAltKm:      alt,
				DopplerHz:     rc.DopplerHz,
				PayloadBytes:  cons.BeaconPayloadBytes,
				Weather:       w.String(),
			})
		}
		if len(posArena) > posStart {
			stat.RxPositions = posArena[posStart:len(posArena):len(posArena)]
		}
		unit.Contacts = append(unit.Contacts, stat)
	}
	return unit, nil
}
