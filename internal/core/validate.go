package core

import (
	"errors"
	"fmt"
	"math"

	"github.com/sinet-io/sinet/internal/lora"
)

// ErrInvalidConfig is the sentinel wrapped by every campaign config
// validation failure, so callers can errors.Is the whole family.
var ErrInvalidConfig = errors.New("core: invalid config")

// ConfigError names the offending field and why it was rejected. It wraps
// ErrInvalidConfig (and, for nested validations like the radio params or
// the fault model, the underlying cause too).
type ConfigError struct {
	Field  string
	Reason string
	Cause  error
}

// Error implements the error interface.
func (e *ConfigError) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("core: invalid config: %s: %s: %v", e.Field, e.Reason, e.Cause)
	}
	return fmt.Sprintf("core: invalid config: %s: %s", e.Field, e.Reason)
}

// Unwrap lets errors.Is match both ErrInvalidConfig and any nested cause.
func (e *ConfigError) Unwrap() []error {
	if e.Cause != nil {
		return []error{ErrInvalidConfig, e.Cause}
	}
	return []error{ErrInvalidConfig}
}

func configErr(field, reason string) error {
	return &ConfigError{Field: field, Reason: reason}
}

func configErrCause(field, reason string, cause error) error {
	return &ConfigError{Field: field, Reason: reason, Cause: cause}
}

// validateRadio checks an optional radio-parameter override; nil means
// "use the campaign default", which is validated too so a broken default
// can never slip through silently.
func validateRadio(field string, override *lora.Params, fallback lora.Params) error {
	p := fallback
	if override != nil {
		p = *override
	}
	if err := p.Validate(); err != nil {
		return configErrCause(field, "illegal LoRa parameters", err)
	}
	return nil
}

// Validate rejects clearly-invalid passive campaign configs with typed
// errors wrapping ErrInvalidConfig. Zero values still mean "use the
// default" — only actively wrong values (negatives, NaNs, broken radio or
// fault parameters) are errors, so setDefaults behaviour is unchanged.
func (c PassiveConfig) Validate() error {
	if c.Days < 0 {
		return configErr("Days", fmt.Sprintf("must be non-negative, got %d", c.Days))
	}
	if c.CoarseStep < 0 {
		return configErr("CoarseStep", fmt.Sprintf("must be non-negative, got %v", c.CoarseStep))
	}
	if math.IsNaN(c.MinElevationRad) || c.MinElevationRad < 0 || c.MinElevationRad >= math.Pi/2 {
		return configErr("MinElevationRad", fmt.Sprintf("must be in [0, π/2), got %v", c.MinElevationRad))
	}
	if err := validateRadio("Radio", c.Radio, lora.DefaultDtSParams()); err != nil {
		return err
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return configErrCause("Faults", "bad fault model", err)
		}
	}
	return nil
}

// Validate rejects clearly-invalid active campaign configs with typed
// errors wrapping ErrInvalidConfig.
func (c ActiveConfig) Validate() error {
	if c.Days < 0 {
		return configErr("Days", fmt.Sprintf("must be non-negative, got %d", c.Days))
	}
	if c.Nodes < 0 {
		return configErr("Nodes", fmt.Sprintf("must be non-negative, got %d", c.Nodes))
	}
	if c.PayloadBytes < 0 {
		return configErr("PayloadBytes", fmt.Sprintf("must be non-negative, got %d", c.PayloadBytes))
	}
	if c.SensePeriod < 0 {
		return configErr("SensePeriod", fmt.Sprintf("must be non-negative, got %v", c.SensePeriod))
	}
	if c.SatBufferCapacity < 0 {
		return configErr("SatBufferCapacity", fmt.Sprintf("must be non-negative, got %d", c.SatBufferCapacity))
	}
	if math.IsNaN(c.TxGateMarginDB) {
		return configErr("TxGateMarginDB", "must not be NaN")
	}
	if math.IsNaN(c.ScheduleAwareMinElevationRad) || c.ScheduleAwareMinElevationRad < 0 || c.ScheduleAwareMinElevationRad >= math.Pi/2 {
		return configErr("ScheduleAwareMinElevationRad", fmt.Sprintf("must be in [0, π/2), got %v", c.ScheduleAwareMinElevationRad))
	}
	if err := validateRadio("Radio", c.Radio, lora.DefaultDtSParams()); err != nil {
		return err
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return configErrCause("Faults", "bad fault model", err)
		}
	}
	return nil
}

// Validate rejects clearly-invalid routing campaign configs with typed
// errors wrapping ErrInvalidConfig. Zero values still mean "use the
// default"; only actively wrong values are rejected.
func (c RoutingConfig) Validate() error {
	if c.Days < 0 {
		return configErr("Days", fmt.Sprintf("must be non-negative, got %d", c.Days))
	}
	if c.SnapshotStep < 0 {
		return configErr("SnapshotStep", fmt.Sprintf("must be non-negative, got %v", c.SnapshotStep))
	}
	if math.IsNaN(c.MaxISLRangeKm) || c.MaxISLRangeKm < 0 {
		return configErr("MaxISLRangeKm", fmt.Sprintf("must be non-negative, got %v", c.MaxISLRangeKm))
	}
	if c.HopProcessing < 0 {
		return configErr("HopProcessing", fmt.Sprintf("must be non-negative, got %v", c.HopProcessing))
	}
	if c.PacketInterval < 0 {
		return configErr("PacketInterval", fmt.Sprintf("must be non-negative, got %v", c.PacketInterval))
	}
	switch c.Policy {
	case "", PolicyStore, PolicyRelay, PolicyCompare:
	default:
		return configErr("Policy", fmt.Sprintf("must be %q, %q or %q, got %q", PolicyStore, PolicyRelay, PolicyCompare, c.Policy))
	}
	if math.IsNaN(c.MaxInterpErrorKm) || c.MaxInterpErrorKm < 0 {
		return configErr("MaxInterpErrorKm", fmt.Sprintf("must be non-negative, got %v", c.MaxInterpErrorKm))
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return configErrCause("Faults", "bad fault model", err)
		}
	}
	return nil
}

// Validate rejects clearly-invalid terrestrial campaign configs with typed
// errors wrapping ErrInvalidConfig.
func (c TerrestrialConfig) Validate() error {
	if c.Days < 0 {
		return configErr("Days", fmt.Sprintf("must be non-negative, got %d", c.Days))
	}
	if c.Nodes < 0 {
		return configErr("Nodes", fmt.Sprintf("must be non-negative, got %d", c.Nodes))
	}
	if c.PayloadBytes < 0 {
		return configErr("PayloadBytes", fmt.Sprintf("must be non-negative, got %d", c.PayloadBytes))
	}
	if c.SensePeriod < 0 {
		return configErr("SensePeriod", fmt.Sprintf("must be non-negative, got %v", c.SensePeriod))
	}
	if c.Gateways < 0 {
		return configErr("Gateways", fmt.Sprintf("must be non-negative, got %d", c.Gateways))
	}
	return validateRadio("Radio", nil, lora.DefaultTerrestrialParams())
}
