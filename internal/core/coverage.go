package core

import (
	"context"
	"fmt"
	"time"

	"github.com/sinet-io/sinet/internal/constellation"
	"github.com/sinet-io/sinet/internal/orbit"
	"github.com/sinet-io/sinet/internal/sim"
)

// RevisitStats answers the §3.1 question "can a constellation offer IoT
// connectivity anytime, anywhere?" quantitatively for one latitude: how
// long a ground device waits between theoretical contact opportunities.
type RevisitStats struct {
	LatitudeDeg float64
	// DailyCoverage is the mean per-day union visibility duration.
	DailyCoverage time.Duration
	// MeanGap / MaxGap are the waits between consecutive contact windows.
	MeanGap time.Duration
	MaxGap  time.Duration
	Passes  int
}

// String implements fmt.Stringer.
func (r RevisitStats) String() string {
	return fmt.Sprintf("lat %+5.1f°: %v/day coverage, gaps mean %v max %v (%d passes)",
		r.LatitudeDeg, r.DailyCoverage.Round(time.Minute),
		r.MeanGap.Round(time.Minute), r.MaxGap.Round(time.Minute), r.Passes)
}

// RevisitAnalysis sweeps test sites across latitudes (at longitude 0) and
// computes the constellation's theoretical coverage and revisit gaps over
// the given number of days. It is purely geometric — the optimistic bound
// that §3.1 then shows collapsing once real link budgets apply.
func RevisitAnalysis(cons constellation.Constellation, latitudesDeg []float64, start time.Time, days int) ([]RevisitStats, error) {
	return RevisitAnalysisCtx(context.Background(), cons, latitudesDeg, start, days, nil)
}

// RevisitAnalysisCtx is RevisitAnalysis with cooperative cancellation (the
// context is checked per satellite while ephemerides build and per latitude
// while gaps compute) and optional progress reporting over the "ephemeris"
// and "latitudes" phases.
func RevisitAnalysisCtx(ctx context.Context, cons constellation.Constellation, latitudesDeg []float64, start time.Time, days int, progress ProgressFunc) ([]RevisitStats, error) {
	return RevisitAnalysisOpts(ctx, cons, latitudesDeg, start, days, CoverageOptions{Progress: progress})
}

// CoverageOptions carries the observe-only execution hooks of a revisit
// analysis: progress reporting plus checkpoint capture/resume for the
// "latitudes" phase (each RevisitStats is a pure serializable value).
// The shared ephemeris grid always rebuilds on resume.
type CoverageOptions struct {
	Progress   ProgressFunc
	Checkpoint CheckpointFunc
	Resume     *Checkpoint
	// Shard restricts the "latitudes" fan-out to a window of its units;
	// out-of-window slots stay zero and the returned slice is a shard
	// fragment (see core.ShardWindow). A shard parameterizes the run, so
	// derived content keys must include it.
	Shard *ShardWindow
}

// RevisitAnalysisOpts is RevisitAnalysisCtx with checkpoint/resume
// threading; a resumed analysis restores completed latitudes and is
// byte-identical to an uninterrupted one.
func RevisitAnalysisOpts(ctx context.Context, cons constellation.Constellation, latitudesDeg []float64, start time.Time, days int, opts CoverageOptions) ([]RevisitStats, error) {
	progress := opts.Progress
	props, err := cons.Propagators()
	if err != nil {
		return nil, err
	}
	end := start.Add(time.Duration(days) * 24 * time.Hour)

	// Sample the whole constellation once into a shared struct-of-arrays
	// grid; every latitude's pass search then reads the grid instead of
	// re-propagating. Workers each fill their own row index, so the
	// fan-out never races.
	grid := orbit.NewEphemerisGrid(props, start, end, orbit.EphemerisConfig{ScanStep: time.Minute})
	if err := sim.ForEachPhaseCtx(ctx, "ephemeris", grid.Sats(), func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		grid.Propagate(i)
		return nil
	}, progress.phase("ephemeris")); err != nil {
		return nil, err
	}
	grid.Finish()

	out := make([]RevisitStats, len(latitudesDeg))
	if err := forEachCheckpointed(ctx, "latitudes", out, opts.Shard, opts.Resume, opts.Checkpoint, progress, func(li int) (RevisitStats, error) {
		if err := ctx.Err(); err != nil {
			return RevisitStats{}, err
		}
		site := orbit.NewGeodeticDeg(latitudesDeg[li], 0, 0)
		passes := make([]orbit.Pass, 0, 256)
		if grid.Sats() > 0 {
			pp := orbit.NewEphemerisPredictor(grid.Sat(0))
			for i := 0; i < grid.Sats(); i++ {
				pp.SetSource(grid.Sat(i))
				passes = pp.PassesAppend(passes, site, start, end, 0)
			}
		}
		windows := orbit.MergeWindows(passes)
		gaps := orbit.Gaps(windows)

		stats := RevisitStats{LatitudeDeg: latitudesDeg[li], Passes: len(passes)}
		if days > 0 {
			stats.DailyCoverage = orbit.TotalDuration(windows) / time.Duration(days)
		}
		var sum time.Duration
		for _, g := range gaps {
			sum += g
			if g > stats.MaxGap {
				stats.MaxGap = g
			}
		}
		if len(gaps) > 0 {
			stats.MeanGap = sum / time.Duration(len(gaps))
		}
		return stats, nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}
