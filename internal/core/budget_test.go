package core

import (
	"testing"

	"github.com/sinet-io/sinet/internal/channel"
)

func TestDtSBudgetsComposition(t *testing.T) {
	down := DtSDownlinkBudget(22)
	if down.TxPowerDBm != 22 {
		t.Error("downlink tx power not threaded")
	}
	if down.ImplLossDB != DtSSystemLossDB {
		t.Error("downlink must carry the DtS system loss")
	}

	up := DtSUplinkBudget(22, channel.FiveEighthsWave)
	if up.TxAntenna.GainDB != channel.FiveEighthsWave.GainDB {
		t.Error("uplink must use the node's whip on the TX side")
	}
	if up.ImplLossDB != DtSSystemLossDB {
		t.Error("uplink system loss")
	}

	ack := DtSAckBudget(22, channel.FiveEighthsWave)
	if ack.ImplLossDB != DtSSystemLossDB+AckPenaltyDB {
		t.Error("ACK path must carry the extra penalty")
	}
	beacon := DtSBeaconToNodeBudget(22, channel.FiveEighthsWave)
	if beacon.ImplLossDB != DtSSystemLossDB {
		t.Error("beacon path must not carry the ACK penalty")
	}
}

func TestNodeRxAntennaNeutralized(t *testing.T) {
	// External-noise-limited reception: antenna gain must not appear on
	// the node's receive side, for any whip.
	for _, ant := range []channel.Antenna{channel.QuarterWave, channel.FiveEighthsWave} {
		b := DtSBeaconToNodeBudget(22, ant)
		if b.RxAntenna.GainDB != 0 {
			t.Errorf("%s: RX gain %v, want 0 (ext-noise-limited)", ant.Name, b.RxAntenna.GainDB)
		}
		a := DtSAckBudget(22, ant)
		if a.RxAntenna.GainDB != 0 {
			t.Errorf("%s: ACK RX gain %v", ant.Name, a.RxAntenna.GainDB)
		}
	}
	// But the TX side keeps the difference (Fig. 5b's mechanism).
	upQ := DtSUplinkBudget(22, channel.QuarterWave)
	up5 := DtSUplinkBudget(22, channel.FiveEighthsWave)
	if up5.TxAntenna.GainDB-upQ.TxAntenna.GainDB != 3 {
		t.Error("uplink antenna delta must be 3 dB")
	}
}

func TestBeaconGatedSelectionSymmetry(t *testing.T) {
	// A beacon-decoded moment must predict uplink viability: at identical
	// geometry, the mean downlink and uplink budgets differ only by the
	// antenna gains (system losses are shared).
	down := DtSDownlinkBudget(22)
	up := DtSUplinkBudget(22, channel.FiveEighthsWave)
	dRSSI := down.MeanRSSI(1200, 400.45, 0.5, channel.Sunny)
	uRSSI := up.MeanRSSI(1200, 400.45, 0.5, channel.Sunny)
	delta := uRSSI - dRSSI
	// up: +3 whip TX, +2 sat dipole RX; down: +2 dipole TX, +2 TinyGS RX
	// → expected delta = (3+2) − (2+2) = 1 dB.
	if delta < 0.5 || delta > 1.5 {
		t.Errorf("uplink-downlink mean RSSI delta = %.2f dB, want ≈1", delta)
	}
}
