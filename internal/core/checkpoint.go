package core

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"github.com/sinet-io/sinet/internal/sim"
	"github.com/sinet-io/sinet/internal/tracing"
)

// ShardWindow restricts a campaign's checkpointable phase to the
// contiguous unit-index range [Lo, Hi). Units outside the window are
// neither computed nor restored — their output slots stay zero — and the
// campaign returns right after the sharded phase instead of assembling a
// full result. A shard run therefore only produces unit snapshots (via
// the config's CheckpointFunc); folding every shard's snapshots into one
// Checkpoint and re-running the campaign with it as Resume reassembles
// the exact bytes an unsharded run would have produced, because restored
// units are byte-exact by the resume contract above. This is the
// primitive the serving cluster's deterministic campaign splitting is
// built on.
//
// Unlike Progress/Checkpoint/Resume, a ShardWindow DOES parameterize the
// run (it bounds which units exist), so shard identity must be part of
// any content key derived from a sharded config — the service layer
// derives "parent/shard/i-of-n" keys for exactly this reason.
type ShardWindow struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// validate checks the window against a phase of n units.
func (w *ShardWindow) validate(n int) error {
	if w == nil {
		return nil
	}
	if w.Lo < 0 || w.Hi > n || w.Lo >= w.Hi {
		return fmt.Errorf("%w: shard window [%d,%d) out of range for %d units", ErrInvalidConfig, w.Lo, w.Hi, n)
	}
	return nil
}

// contains reports whether unit index i falls inside the window; a nil
// window contains every index.
func (w *ShardWindow) contains(i int) bool {
	return w == nil || (i >= w.Lo && i < w.Hi)
}

// CheckpointFunc receives one completed work unit's snapshot: the campaign
// phase it belongs to, its index and the phase's unit count, and the
// unit's serialized output. Calls arrive serialized (never concurrently),
// in completion order — NOT index order; the snapshot is index-addressed
// precisely so order does not matter. Implementations persist the unit
// (sinetd appends it to the job journal) and must not mutate the byte
// slice. Like ProgressFunc it observes execution without parameterizing
// it: the field is excluded from JSON serialization and config keys, and
// attaching one never changes campaign results.
//
// Only phases whose units are pure serializable values checkpoint:
// "contacts" (passive), "plan" (active), "latitudes" (coverage),
// "packets" (routing) and the service's "satellites" (backhaul). Shared
// setup phases ("ephemeris", "topology") rebuild from the config on
// resume — their outputs are large in-memory structures that every
// resumed unit reads anyway.
type CheckpointFunc func(phase string, index, total int, unit []byte)

// Checkpoint is a campaign resume point: for each checkpointable phase,
// the serialized outputs of the work units completed so far. Passing one
// as a config's Resume restores those units instead of recomputing them.
//
// Resumption is byte-exact by construction: the worker pool writes each
// unit into an index-addressed slot merged in serial order, units are
// pure values of their inputs (every stochastic draw comes from a named
// per-unit RNG stream), and the snapshot JSON round-trips exactly (Go
// time.Time and float64 encode/decode losslessly) — so a slot restored
// from a snapshot holds the same value the recomputation would have
// produced, and the merged result is bit-identical to an uninterrupted
// run. The kill-and-resume golden tests pin this.
type Checkpoint struct {
	Phases map[string]*PhaseSnapshot `json:"phases"`
}

// PhaseSnapshot is one phase's completed units, keyed by unit index.
type PhaseSnapshot struct {
	// Total is the phase's unit count when the snapshot was taken. A
	// snapshot only restores into a phase of the same size: a config
	// change that alters the unit count invalidates it.
	Total int `json:"total"`
	// Units maps unit index to the unit's serialized output.
	Units map[int]json.RawMessage `json:"units"`
}

// NewCheckpoint returns an empty checkpoint ready for Add.
func NewCheckpoint() *Checkpoint {
	return &Checkpoint{Phases: map[string]*PhaseSnapshot{}}
}

// Add records one completed unit. It is not safe for concurrent use; the
// CheckpointFunc serialization contract means callers feeding a
// checkpoint from a running campaign need no extra locking, but callers
// folding journal records must do so from one goroutine.
func (c *Checkpoint) Add(phase string, index, total int, unit []byte) {
	if c.Phases == nil {
		c.Phases = map[string]*PhaseSnapshot{}
	}
	ps := c.Phases[phase]
	if ps == nil || ps.Total != total {
		// First unit of the phase — or a unit count mismatch, meaning the
		// snapshot predates a config change: start the phase over.
		ps = &PhaseSnapshot{Total: total, Units: map[int]json.RawMessage{}}
		c.Phases[phase] = ps
	}
	ps.Units[index] = append(json.RawMessage(nil), unit...)
}

// Len reports the total number of snapshotted units across phases.
func (c *Checkpoint) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for _, ps := range c.Phases {
		n += len(ps.Units)
	}
	return n
}

// snapshot returns the named phase's snapshot if it matches the phase's
// current unit count, else nil. Nil-receiver safe.
func (c *Checkpoint) snapshot(phase string, total int) *PhaseSnapshot {
	if c == nil || c.Phases == nil {
		return nil
	}
	ps := c.Phases[phase]
	if ps == nil || ps.Total != total {
		return nil
	}
	return ps
}

// forEachCheckpointed fans one checkpointable phase across the worker
// pool: out's length is the unit count, fn(i) computes unit i. Units
// present in resume are restored by JSON decode instead of recomputed;
// newly computed units are serialized and handed to save. Progress spans
// the whole phase (restored units count as already complete), preserving
// the strictly-increasing contract. A non-nil shard narrows the phase to
// its window: only in-window units restore or compute (save still
// reports the full phase size, so shard snapshots fold directly into a
// full-phase resume point), and progress totals cover the window.
//
// When ctx carries a tracer the phase is additionally recorded as a
// "phase:<name>" span annotated with restored/computed unit counts (and
// the shard window, when sharded) — richer than the plain span
// sim.ForEachPhaseCtx would emit, so this wrapper records the span
// itself and leaves the inner fan-out histogram-only. The clock is only
// read when a tracer is present, and the span is recorded after the
// fan-out completes: tracing never parameterizes the run.
func forEachCheckpointed[T any](ctx context.Context, phase string, out []T, shard *ShardWindow, resume *Checkpoint, save CheckpointFunc, progress ProgressFunc, fn func(i int) (T, error)) error {
	n := len(out)
	if err := shard.validate(n); err != nil {
		return err
	}
	span := n
	if shard != nil {
		span = shard.Hi - shard.Lo
	}
	restored := make([]bool, n)
	nRestored := 0
	if ps := resume.snapshot(phase, n); ps != nil {
		for idx, raw := range ps.Units {
			if idx < 0 || idx >= n || !shard.contains(idx) {
				continue
			}
			var v T
			if err := json.Unmarshal(raw, &v); err != nil {
				continue // corrupt unit: recompute it
			}
			out[idx] = v
			restored[idx] = true
			nRestored++
		}
	}
	pending := make([]int, 0, span-nRestored)
	for i := 0; i < n; i++ {
		if !restored[i] && shard.contains(i) {
			pending = append(pending, i)
		}
	}
	if nRestored > 0 {
		progress.report(phase, nRestored, span)
	}
	var onDone func(completed, total int)
	if progress != nil {
		onDone = func(completed, total int) { progress(phase, nRestored+completed, span) }
	}
	var mu sync.Mutex
	tr, parent := tracing.FromContext(ctx)
	var start time.Time
	if tr != nil {
		start = time.Now()
	}
	err := sim.ForEachPhase(phase, len(pending), func(k int) error {
		i := pending[k]
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		if save != nil {
			if raw, err := json.Marshal(v); err == nil {
				mu.Lock()
				save(phase, i, n, raw)
				mu.Unlock()
			}
		}
		return nil
	}, onDone)
	if tr != nil {
		attrs := []tracing.Attr{
			tracing.Int("units", span),
			tracing.Int("restored", nRestored),
			tracing.Int("computed", len(pending)),
		}
		if shard != nil {
			attrs = append(attrs, tracing.Int("shard_lo", shard.Lo), tracing.Int("shard_hi", shard.Hi))
		}
		if err != nil {
			attrs = append(attrs, tracing.String("error", err.Error()))
		}
		tr.Record(parent, "phase:"+phase, start, time.Now(), attrs...)
	}
	return err
}

// ForEachCheckpointed is the exported fan-out for callers outside core
// (the service's backhaul campaign) that thread checkpointing through
// their own phases with the same restore/compute/save/shard contract.
func ForEachCheckpointed[T any](ctx context.Context, phase string, out []T, shard *ShardWindow, resume *Checkpoint, save CheckpointFunc, progress ProgressFunc, fn func(i int) (T, error)) error {
	return forEachCheckpointed(ctx, phase, out, shard, resume, save, progress, fn)
}
