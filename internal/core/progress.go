package core

// ProgressFunc observes a campaign's execution phases: it is called with a
// short phase name and the completed/total unit counts of that phase.
// Callbacks arrive serialized (never concurrently) with completed strictly
// increasing within a phase, so implementations need no locking of their
// own; they must not block, since they run on the campaign's worker pool.
//
// Attach one to PassiveConfig.Progress / ActiveConfig.Progress. The field
// is excluded from JSON serialization and from any config-derived cache
// keys: it observes execution, it does not parameterize it.
type ProgressFunc func(phase string, completed, total int)

// phaseProgress adapts a ProgressFunc to the sim.ForEachErrProgress
// callback shape for one named phase; a nil ProgressFunc yields a nil
// callback, keeping the fan-out's fast path free of indirection.
func (p ProgressFunc) phase(name string) func(completed, total int) {
	if p == nil {
		return nil
	}
	return func(completed, total int) { p(name, completed, total) }
}

// Phase is the exported phaseProgress adapter, for callers outside core
// (the service's backhaul campaign) that drive sim.ForEachPhase with the
// same nil-preserving contract.
func (p ProgressFunc) Phase(name string) func(completed, total int) {
	return p.phase(name)
}

// report invokes p when non-nil, for one-shot phase notifications outside
// a fan-out (e.g. marking a simulation phase started or finished).
func (p ProgressFunc) report(phase string, completed, total int) {
	if p != nil {
		p(phase, completed, total)
	}
}
