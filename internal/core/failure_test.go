package core

import (
	"testing"
	"time"

	"github.com/sinet-io/sinet/internal/constellation"
	"github.com/sinet-io/sinet/internal/mac"
)

// TestSatBufferPressure injects on-board buffer exhaustion — the paper's
// "satellite resource constraints" loss cause — and checks that drops are
// accounted and reliability suffers relative to an unconstrained buffer.
func TestSatBufferPressure(t *testing.T) {
	run := func(capacity int) (*ActiveResult, error) {
		return RunActive(ActiveConfig{
			Seed: 33, Days: 2,
			Policy:            mac.DefaultRetxPolicy(),
			SatBufferCapacity: capacity,
		})
	}
	tight, err := run(1)
	if err != nil {
		t.Fatal(err)
	}
	roomy, err := run(4096)
	if err != nil {
		t.Fatal(err)
	}
	if roomy.BufferDrops != 0 {
		t.Errorf("roomy buffer dropped %d packets", roomy.BufferDrops)
	}
	if tight.BufferDrops == 0 {
		t.Error("capacity-1 buffer never dropped despite 3 nodes per drain cycle")
	}
	if tight.Reliability() >= roomy.Reliability() {
		t.Errorf("buffer pressure did not hurt reliability: %.3f vs %.3f",
			tight.Reliability(), roomy.Reliability())
	}
}

// TestCaptureDisabledHurtsConcurrency verifies the collision-model
// ablation end to end: without capture, simultaneous transmissions are
// all lost, so aligned nodes deliver less.
func TestCaptureDisabledHurtsConcurrency(t *testing.T) {
	run := func(capture bool) (*ActiveResult, error) {
		return RunActive(ActiveConfig{
			Seed: 17, Days: 3, Nodes: 3,
			Policy: mac.NoRetxPolicy(), AlignedPhases: true,
			Collisions: mac.CollisionModel{CaptureThresholdDB: 6, CaptureEnabled: capture},
		})
	}
	with, err := run(true)
	if err != nil {
		t.Fatal(err)
	}
	without, err := run(false)
	if err != nil {
		t.Fatal(err)
	}
	if without.MacStats.Collisions < with.MacStats.Collisions {
		t.Errorf("capture-off collisions %d below capture-on %d",
			without.MacStats.Collisions, with.MacStats.Collisions)
	}
	if without.Reliability() > with.Reliability() {
		t.Errorf("disabling capture improved reliability: %.3f vs %.3f",
			without.Reliability(), with.Reliability())
	}
}

// TestActiveEmptyConstellation degenerates gracefully: a constellation
// with zero satellites yields zero deliveries, not a crash.
func TestActiveEmptyConstellation(t *testing.T) {
	empty := constellation.TianqiSubset(time.Date(2025, 3, 1, 0, 0, 0, 0, time.UTC), 0)
	res, err := RunActive(ActiveConfig{
		Seed: 1, Days: 1, Policy: mac.DefaultRetxPolicy(),
		Constellation: &empty,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reliability() != 0 {
		t.Errorf("deliveries with zero satellites: %.3f", res.Reliability())
	}
	// Readings were still generated, just never uplinked.
	if len(res.Packets) == 0 {
		t.Error("no packets generated")
	}
	for _, p := range res.Packets {
		if !p.FirstAttemptAt.IsZero() {
			t.Error("attempt without satellites")
		}
	}
}

// TestActiveSingleNodeNoCollisions: one node can never collide.
func TestActiveSingleNodeNoCollisions(t *testing.T) {
	res, err := RunActive(ActiveConfig{
		Seed: 2, Days: 2, Nodes: 1, Policy: mac.DefaultRetxPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MacStats.Collisions != 0 {
		t.Errorf("single node recorded %d collisions", res.MacStats.Collisions)
	}
	for _, p := range res.Packets {
		if p.MaxConcurrency > 1 {
			t.Error("concurrency above 1 with one node")
		}
	}
}

// TestPassiveZeroStationSite: a site with no stations yields no coverage.
func TestPassiveZeroStationSite(t *testing.T) {
	ghost := Site{Code: "GHOST", City: "Nowhere", Location: YunnanPlantation(), Stations: 0}
	res, err := RunPassive(PassiveConfig{
		Seed: 3, Start: campaignStart, Days: 1,
		Sites:          []Site{ghost},
		Constellations: []constellation.Constellation{constellation.FOSSA(campaignStart)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dataset.Len() != 0 {
		t.Errorf("station-less site captured %d traces", res.Dataset.Len())
	}
	for _, c := range res.Contacts {
		if c.Covered {
			t.Error("contact marked covered with zero stations")
		}
	}
}
