package core

import (
	"sort"
	"time"

	"github.com/sinet-io/sinet/internal/channel"
	"github.com/sinet-io/sinet/internal/orbit"
	"github.com/sinet-io/sinet/internal/stats"
	"github.com/sinet-io/sinet/internal/trace"
)

// contactsOf selects the contacts of one (constellation, site) pair;
// empty selectors match everything.
func (r *PassiveResult) contactsOf(cons, site string) []ContactStat {
	var out []ContactStat
	for _, c := range r.Contacts {
		if (cons == "" || c.Constellation == cons) && (site == "" || c.Site == site) {
			out = append(out, c)
		}
	}
	return out
}

// TheoreticalDailyDuration returns the mean per-day union duration of the
// constellation's visibility windows over a site — Fig. 3a's presence
// duration.
func (r *PassiveResult) TheoreticalDailyDuration(cons, site string) time.Duration {
	contacts := r.contactsOf(cons, site)
	if len(contacts) == 0 {
		return 0
	}
	passes := make([]orbit.Pass, len(contacts))
	for i, c := range contacts {
		passes[i] = c.Pass
	}
	union := orbit.MergeWindows(passes)
	total := orbit.TotalDuration(union)
	days := r.daysSpanned(contacts)
	if days <= 0 {
		return 0
	}
	return time.Duration(float64(total) / days)
}

// EffectiveDailyDuration returns the mean per-day union duration of the
// effective windows (first..last received beacon per contact) — the
// "effective service time" of §3.1.
func (r *PassiveResult) EffectiveDailyDuration(cons, site string) time.Duration {
	contacts := r.contactsOf(cons, site)
	if len(contacts) == 0 {
		return 0
	}
	var passes []orbit.Pass
	for _, c := range contacts {
		if c.EffectiveDuration() <= 0 {
			continue
		}
		passes = append(passes, orbit.Pass{NoradID: c.NoradID, AOS: c.FirstRx, LOS: c.LastRx})
	}
	if len(passes) == 0 {
		return 0
	}
	union := orbit.MergeWindows(passes)
	days := r.daysSpanned(contacts)
	if days <= 0 {
		return 0
	}
	return time.Duration(float64(orbit.TotalDuration(union)) / days)
}

// daysSpanned returns the campaign span in days for the given contacts.
func (r *PassiveResult) daysSpanned(contacts []ContactStat) float64 {
	if len(contacts) == 0 {
		return 0
	}
	first, last := contacts[0].Pass.AOS, contacts[0].Pass.LOS
	for _, c := range contacts[1:] {
		if c.Pass.AOS.Before(first) {
			first = c.Pass.AOS
		}
		if c.Pass.LOS.After(last) {
			last = c.Pass.LOS
		}
	}
	days := last.Sub(first).Hours() / 24
	if days < 1 {
		days = 1
	}
	return days
}

// WindowShrinkage compares theoretical and effective contact durations —
// Fig. 4a. Fractions are means over contacts that were covered by a
// station.
type WindowShrinkage struct {
	Constellation   string
	Contacts        int
	MeanTheoretical time.Duration
	MeanEffective   time.Duration
	// ShrinkFraction is 1 − effective/theoretical (the paper's
	// 73.7%-89.2%).
	ShrinkFraction float64
}

// Shrinkage computes Fig. 4a's comparison for one constellation across
// the given site ("" = all sites).
func (r *PassiveResult) Shrinkage(cons, site string) WindowShrinkage {
	contacts := r.contactsOf(cons, site)
	out := WindowShrinkage{Constellation: cons}
	var sumT, sumE time.Duration
	for _, c := range contacts {
		if !c.Covered {
			continue
		}
		out.Contacts++
		sumT += c.TheoreticalDuration()
		sumE += c.EffectiveDuration()
	}
	if out.Contacts == 0 || sumT == 0 {
		return out
	}
	out.MeanTheoretical = sumT / time.Duration(out.Contacts)
	out.MeanEffective = sumE / time.Duration(out.Contacts)
	out.ShrinkFraction = 1 - float64(sumE)/float64(sumT)
	return out
}

// IntervalStretch compares contact intervals: the gaps between theoretical
// windows versus the gaps between effective windows — Fig. 4b.
type IntervalStretch struct {
	Constellation   string
	MeanTheoretical time.Duration
	MeanEffective   time.Duration
	// Stretch is effective/theoretical (the paper's 6.1-44.9×).
	Stretch float64
}

// Intervals computes Fig. 4b for one constellation over one site.
func (r *PassiveResult) Intervals(cons, site string) IntervalStretch {
	contacts := r.contactsOf(cons, site)
	out := IntervalStretch{Constellation: cons}
	var theoretical, effective []orbit.Pass
	for _, c := range contacts {
		theoretical = append(theoretical, c.Pass)
		if c.EffectiveDuration() > 0 {
			effective = append(effective, orbit.Pass{NoradID: c.NoradID, AOS: c.FirstRx, LOS: c.LastRx})
		}
	}
	tGaps := orbit.Gaps(orbit.MergeWindows(theoretical))
	eGaps := orbit.Gaps(orbit.MergeWindows(effective))
	out.MeanTheoretical = meanDuration(tGaps)
	out.MeanEffective = meanDuration(eGaps)
	if out.MeanTheoretical > 0 {
		out.Stretch = float64(out.MeanEffective) / float64(out.MeanTheoretical)
	}
	return out
}

func meanDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

// WindowPositionStats is the Fig. 9 analysis: where within a contact
// window receptions land.
type WindowPositionStats struct {
	Histogram *stats.Histogram // 10 bins over [0,1)
	// MiddleFraction is the fraction of receptions in the middle 30%-70%
	// of the window (the paper reports 70.4%).
	MiddleFraction float64
	Total          int
}

// WindowPositions aggregates reception positions across contacts.
func (r *PassiveResult) WindowPositions(cons string) WindowPositionStats {
	h, _ := stats.NewHistogram(0, 1, 10)
	middle, total := 0, 0
	for _, c := range r.Contacts {
		if cons != "" && c.Constellation != cons {
			continue
		}
		for _, p := range c.RxPositions {
			h.Add(p)
			total++
			if p >= 0.3 && p <= 0.7 {
				middle++
			}
		}
	}
	out := WindowPositionStats{Histogram: h, Total: total}
	if total > 0 {
		out.MiddleFraction = float64(middle) / float64(total)
	}
	return out
}

// ReceptionByWeather groups per-contact beacon reception ratios by sky
// state — Fig. 3d.
func (r *PassiveResult) ReceptionByWeather(cons string) map[channel.Weather]stats.Summary {
	groups := map[channel.Weather][]float64{}
	for _, c := range r.Contacts {
		if cons != "" && c.Constellation != cons {
			continue
		}
		if !c.Covered || c.BeaconsSent == 0 {
			continue
		}
		groups[c.WeatherAtTCA] = append(groups[c.WeatherAtTCA], c.ReceptionRatio())
	}
	out := make(map[channel.Weather]stats.Summary, len(groups))
	for w, ratios := range groups {
		out[w] = stats.Summarize(ratios)
	}
	return out
}

// RSSISummary summarizes received signal strength for a constellation —
// Fig. 3b.
func (r *PassiveResult) RSSISummary(cons string) stats.Summary {
	ds := r.Dataset
	if cons != "" {
		ds = ds.ByConstellation(cons)
	}
	return stats.Summarize(ds.RSSIs())
}

// RSSIVsDistance bins RSSI by slant range — Fig. 3c. Returns bin centres
// (km) and mean RSSI per bin; empty bins are skipped.
func (r *PassiveResult) RSSIVsDistance(cons string, binKm float64, maxKm float64) []stats.Point {
	ds := r.Dataset
	if cons != "" {
		ds = ds.ByConstellation(cons)
	}
	if binKm <= 0 || maxKm <= 0 {
		return nil
	}
	nBins := int(maxKm / binKm)
	sums := make([]float64, nBins)
	counts := make([]int, nBins)
	for _, rec := range ds.Records {
		idx := int(rec.RangeKm / binKm)
		if idx < 0 || idx >= nBins {
			continue
		}
		sums[idx] += rec.RSSIDBm
		counts[idx]++
	}
	var out []stats.Point
	for i := range sums {
		if counts[i] == 0 {
			continue
		}
		out = append(out, stats.Point{
			X: (float64(i) + 0.5) * binKm,
			Y: sums[i] / float64(counts[i]),
		})
	}
	return out
}

// DistanceCDF returns the CDF of DtS communication distances — Fig. 8.
func (r *PassiveResult) DistanceCDF(cons string) (*stats.CDF, error) {
	ds := r.Dataset
	if cons != "" {
		ds = ds.ByConstellation(cons)
	}
	return stats.NewCDF(ds.Ranges())
}

// DopplerStats summarizes the Doppler shifts observed on received beacons
// — Appendix C's loss cause (2). For a 500 km orbit at 400-450 MHz the
// worst-case shift is ≈ ±10 kHz, well inside LoRa's static tolerance,
// which is why Doppler is a contributor rather than the dominant killer.
type DopplerStats struct {
	Summary  stats.Summary // of |shift| in Hz
	MaxAbsHz float64
	// ToleranceHz is the SF10/125 kHz static Doppler tolerance for
	// comparison.
	ToleranceHz float64
}

// Doppler aggregates |Doppler| over the received beacons of one
// constellation ("" = all).
func (r *PassiveResult) Doppler(cons string) DopplerStats {
	ds := r.Dataset
	if cons != "" {
		ds = ds.ByConstellation(cons)
	}
	abs := ds.Values(func(rec trace.Record) float64 {
		if rec.DopplerHz < 0 {
			return -rec.DopplerHz
		}
		return rec.DopplerHz
	})
	out := DopplerStats{
		Summary:     stats.Summarize(abs),
		MaxAbsHz:    stats.Max(abs),
		ToleranceHz: 0.25 * 125e3,
	}
	return out
}

// OverallBeaconLoss returns the fraction of beacons lost during covered
// contacts of the constellation (Fig. 3d's ">50% dropped" headline).
func (r *PassiveResult) OverallBeaconLoss(cons string) float64 {
	sent, rx := 0, 0
	for _, c := range r.Contacts {
		if cons != "" && c.Constellation != cons {
			continue
		}
		sent += c.BeaconsSent
		rx += c.BeaconsReceived
	}
	if sent == 0 {
		return 0
	}
	return 1 - float64(rx)/float64(sent)
}

// SiteTraceCounts returns Table 1's trace counts in stable site order.
func (r *PassiveResult) SiteTraceCounts() []SiteCount {
	counts := r.Dataset.CountBySite()
	var out []SiteCount
	for _, s := range r.Config.Sites {
		out = append(out, SiteCount{Site: s, Traces: counts[s.Code]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site.Code < out[j].Site.Code })
	return out
}

// SiteCount pairs a site with its trace count.
type SiteCount struct {
	Site   Site
	Traces int
}
