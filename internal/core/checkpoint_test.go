package core

import (
	"context"
	"encoding/json"
	"testing"

	"github.com/sinet-io/sinet/internal/constellation"
	"github.com/sinet-io/sinet/internal/mac"
)

// captureCheckpoint returns a CheckpointFunc accumulating into cp, plus
// the checkpoint. The serialization contract of CheckpointFunc (calls
// never arrive concurrently) makes the plain Add safe.
func captureCheckpoint() (*Checkpoint, CheckpointFunc) {
	cp := NewCheckpoint()
	return cp, func(phase string, index, total int, unit []byte) {
		cp.Add(phase, index, total, unit)
	}
}

// killAfter cancels ctx once n units have checkpointed, simulating a
// crash mid-campaign; saved units keep accumulating into the returned
// checkpoint exactly as journal records would survive a real kill.
func killAfter(n int, cancel context.CancelFunc) (*Checkpoint, CheckpointFunc) {
	cp := NewCheckpoint()
	saved := 0
	return cp, func(phase string, index, total int, unit []byte) {
		cp.Add(phase, index, total, unit)
		saved++
		if saved == n {
			cancel()
		}
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

// partial keeps only every other unit of each phase, exercising resumes
// that restore an arbitrary subset.
func partial(cp *Checkpoint) *Checkpoint {
	out := NewCheckpoint()
	for phase, ps := range cp.Phases {
		for idx, raw := range ps.Units {
			if idx%2 == 0 {
				out.Add(phase, idx, ps.Total, raw)
			}
		}
	}
	return out
}

func TestPassiveKillAndResumeByteIdentical(t *testing.T) {
	hk, _ := SiteByCode("HK")
	cfg := PassiveConfig{
		Seed: 42, Start: campaignStart, Days: 1,
		Sites: []Site{hk},
		Constellations: []constellation.Constellation{
			constellation.Tianqi(campaignStart),
			constellation.PICO(campaignStart),
		},
	}
	baseline, err := RunPassive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := mustJSON(t, baseline)

	// Crash after the first checkpointed unit.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	killed := cfg
	cp, save := killAfter(1, cancel)
	killed.Checkpoint = save
	if _, err := RunPassiveCtx(ctx, killed); err == nil {
		t.Fatal("killed run unexpectedly completed")
	}
	if cp.Len() == 0 {
		t.Fatal("kill produced no checkpointed units")
	}

	// Resume from whatever survived the crash.
	resumed := cfg
	resumed.Resume = cp
	res, err := RunPassive(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustJSON(t, res); string(got) != string(want) {
		t.Fatalf("resumed passive result differs from uninterrupted run (%d vs %d bytes)", len(got), len(want))
	}
}

func TestPassiveResumeFromFullAndPartialCheckpoints(t *testing.T) {
	hk, _ := SiteByCode("HK")
	cfg := PassiveConfig{
		Seed: 7, Start: campaignStart, Days: 1,
		Sites:          []Site{hk},
		Constellations: []constellation.Constellation{constellation.Tianqi(campaignStart)},
	}
	cp, save := captureCheckpoint()
	full := cfg
	full.Checkpoint = save
	baseline, err := RunPassive(full)
	if err != nil {
		t.Fatal(err)
	}
	want := mustJSON(t, baseline)
	if cp.Len() == 0 {
		t.Fatal("no units checkpointed")
	}
	for name, resume := range map[string]*Checkpoint{"full": cp, "partial": partial(cp)} {
		resumed := cfg
		resumed.Resume = resume
		res, err := RunPassive(resumed)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := mustJSON(t, res); string(got) != string(want) {
			t.Fatalf("%s resume differs from uninterrupted run", name)
		}
	}
}

func TestActiveKillAndResumeByteIdentical(t *testing.T) {
	cfg := ActiveConfig{Seed: 42, Start: campaignStart, Days: 1, Policy: mac.DefaultRetxPolicy()}
	baseline, err := RunActive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := mustJSON(t, baseline)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	killed := cfg
	cp, save := killAfter(2, cancel)
	killed.Checkpoint = save
	if _, err := RunActiveCtx(ctx, killed); err == nil {
		t.Fatal("killed run unexpectedly completed")
	}
	if cp.Len() == 0 {
		t.Fatal("kill produced no checkpointed units")
	}

	resumed := cfg
	resumed.Resume = cp
	res, err := RunActive(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustJSON(t, res); string(got) != string(want) {
		t.Fatalf("resumed active result differs from uninterrupted run (%d vs %d bytes)", len(got), len(want))
	}
}

func TestRoutingKillAndResumeByteIdentical(t *testing.T) {
	cfg := RoutingConfig{Seed: 42, Start: campaignStart, Days: 1}
	baseline, err := RunRouting(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := mustJSON(t, baseline)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	killed := cfg
	cp, save := killAfter(1, cancel)
	killed.Checkpoint = save
	if _, err := RunRoutingCtx(ctx, killed); err == nil {
		t.Fatal("killed run unexpectedly completed")
	}
	if cp.Len() == 0 {
		t.Fatal("kill produced no checkpointed units")
	}

	resumed := cfg
	resumed.Resume = cp
	res, err := RunRouting(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustJSON(t, res); string(got) != string(want) {
		t.Fatalf("resumed routing result differs from uninterrupted run (%d vs %d bytes)", len(got), len(want))
	}
}

func TestCoverageResumeByteIdentical(t *testing.T) {
	cons := constellation.Tianqi(campaignStart)
	lats := []float64{-50, 0, 25, 50}
	baseline, err := RevisitAnalysis(cons, lats, campaignStart, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := mustJSON(t, baseline)

	cp, save := captureCheckpoint()
	if _, err := RevisitAnalysisOpts(context.Background(), cons, lats, campaignStart, 1, CoverageOptions{Checkpoint: save}); err != nil {
		t.Fatal(err)
	}
	if got := cp.Len(); got != len(lats) {
		t.Fatalf("checkpointed %d units, want %d", got, len(lats))
	}
	res, err := RevisitAnalysisOpts(context.Background(), cons, lats, campaignStart, 1, CoverageOptions{Resume: partial(cp)})
	if err != nil {
		t.Fatal(err)
	}
	if got := mustJSON(t, res); string(got) != string(want) {
		t.Fatalf("resumed coverage result differs from uninterrupted run")
	}
}

// TestCheckpointStaleSnapshotIgnored pins the Total guard: a snapshot
// taken under a different unit count (config change between crash and
// resume) must be ignored, not restored into the wrong slots.
func TestCheckpointStaleSnapshotIgnored(t *testing.T) {
	cons := constellation.Tianqi(campaignStart)
	lats := []float64{0, 25, 50}
	want, err := RevisitAnalysis(cons, lats, campaignStart, 1)
	if err != nil {
		t.Fatal(err)
	}

	stale := NewCheckpoint()
	// A bogus unit recorded against a 2-unit phase must not restore into
	// the 3-latitude run.
	stale.Add("latitudes", 0, 2, []byte(`{"LatitudeDeg":-999}`))
	res, err := RevisitAnalysisOpts(context.Background(), cons, lats, campaignStart, 1, CoverageOptions{Resume: stale})
	if err != nil {
		t.Fatal(err)
	}
	if string(mustJSON(t, res)) != string(mustJSON(t, want)) {
		t.Fatal("stale snapshot leaked into resumed results")
	}
}

// TestCheckpointCorruptUnitRecomputed: a unit that fails to decode is
// recomputed rather than trusted or fatal.
func TestCheckpointCorruptUnitRecomputed(t *testing.T) {
	cons := constellation.Tianqi(campaignStart)
	lats := []float64{0, 50}
	want, err := RevisitAnalysis(cons, lats, campaignStart, 1)
	if err != nil {
		t.Fatal(err)
	}
	cp := NewCheckpoint()
	cp.Add("latitudes", 0, len(lats), []byte(`{"LatitudeDeg": not json`))
	res, err := RevisitAnalysisOpts(context.Background(), cons, lats, campaignStart, 1, CoverageOptions{Resume: cp})
	if err != nil {
		t.Fatal(err)
	}
	if string(mustJSON(t, res)) != string(mustJSON(t, want)) {
		t.Fatal("corrupt unit perturbed resumed results")
	}
}

// TestCheckpointProgressSpansWholePhase: resuming from a partial snapshot
// still reports progress over the full unit count, starting at the
// restored offset, strictly increasing.
func TestCheckpointProgressSpansWholePhase(t *testing.T) {
	cons := constellation.Tianqi(campaignStart)
	lats := []float64{-25, 0, 25, 50}
	cp, save := captureCheckpoint()
	if _, err := RevisitAnalysisOpts(context.Background(), cons, lats, campaignStart, 1, CoverageOptions{Checkpoint: save}); err != nil {
		t.Fatal(err)
	}
	half := partial(cp)
	restored := half.Len()
	if restored == 0 || restored == len(lats) {
		t.Fatalf("partial checkpoint has %d units, want strictly between 0 and %d", restored, len(lats))
	}
	var reports []int
	progress := func(phase string, completed, total int) {
		if phase != "latitudes" {
			return
		}
		if total != len(lats) {
			t.Errorf("progress total %d, want %d", total, len(lats))
		}
		reports = append(reports, completed)
	}
	if _, err := RevisitAnalysisOpts(context.Background(), cons, lats, campaignStart, 1, CoverageOptions{Progress: progress, Resume: half}); err != nil {
		t.Fatal(err)
	}
	if len(reports) == 0 || reports[0] != restored {
		t.Fatalf("first progress report %v, want restored offset %d", reports, restored)
	}
	for i := 1; i < len(reports); i++ {
		if reports[i] <= reports[i-1] {
			t.Fatalf("progress not strictly increasing: %v", reports)
		}
	}
	if last := reports[len(reports)-1]; last != len(lats) {
		t.Fatalf("final progress %d, want %d", last, len(lats))
	}
}

