package core

import (
	"testing"

	"github.com/sinet-io/sinet/internal/mac"
)

// TestScheduleAwareSleeping verifies the deeper energy optimization: a
// node that propagates the constellation itself and wakes only for high
// passes slashes Rx time at a bounded reliability/latency cost.
func TestScheduleAwareSleeping(t *testing.T) {
	stock, err := RunActive(ActiveConfig{Seed: 9, Days: 2, Policy: mac.DefaultRetxPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	aware, err := RunActive(ActiveConfig{
		Seed: 9, Days: 2, Policy: mac.DefaultRetxPolicy(),
		ScheduleAwareMinElevationRad: 0.35, // ≈20°
	})
	if err != nil {
		t.Fatal(err)
	}
	stockP, _ := AverageMeters(stock.Meters)
	awareP, _ := AverageMeters(aware.Meters)
	if awareP >= stockP/2 {
		t.Errorf("schedule-aware power %.1f mW, want well below half of stock %.1f mW", awareP, stockP)
	}
	if aware.Reliability() < stock.Reliability()-0.15 {
		t.Errorf("schedule-aware reliability %.3f collapsed vs stock %.3f",
			aware.Reliability(), stock.Reliability())
	}
	if aware.Reliability() < 0.7 {
		t.Errorf("schedule-aware reliability %.3f too low to be a viable optimization", aware.Reliability())
	}
}
