package core

import (
	"math"
	"testing"
	"time"

	"github.com/sinet-io/sinet/internal/constellation"
)

func TestRevisitAnalysisTianqi(t *testing.T) {
	cons := constellation.Tianqi(campaignStart)
	stats, err := RevisitAnalysis(cons, []float64{0, 25, 50, 75}, campaignStart, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 4 {
		t.Fatalf("rows = %d", len(stats))
	}
	for _, s := range stats {
		if s.DailyCoverage < 0 || s.DailyCoverage > 24*time.Hour {
			t.Errorf("lat %.0f: daily coverage %v out of range", s.LatitudeDeg, s.DailyCoverage)
		}
		if s.MaxGap < s.MeanGap {
			t.Errorf("lat %.0f: max gap below mean gap", s.LatitudeDeg)
		}
		if s.String() == "" {
			t.Error("empty String()")
		}
	}

	// Tianqi's main shell inclines at 49.97°: coverage near 50° latitude
	// must beat the equator (orbital geometry concentrates ground tracks
	// near the inclination latitude).
	byLat := map[float64]RevisitStats{}
	for _, s := range stats {
		byLat[s.LatitudeDeg] = s
	}
	if byLat[50].DailyCoverage <= byLat[0].DailyCoverage {
		t.Errorf("coverage at 50° (%v) not above equator (%v)",
			byLat[50].DailyCoverage, byLat[0].DailyCoverage)
	}
	// At 75° only the two SSO satellites reach: coverage collapses
	// relative to 50°.
	if byLat[75].DailyCoverage >= byLat[50].DailyCoverage {
		t.Errorf("coverage at 75° (%v) not below 50° (%v)",
			byLat[75].DailyCoverage, byLat[50].DailyCoverage)
	}
}

func TestRevisitAnalysisPolarFleet(t *testing.T) {
	// A sun-synchronous fleet (97.7°) covers the poles better than the
	// equator — the opposite profile to Tianqi's mid-inclination shell.
	cons := constellation.PICO(campaignStart)
	stats, err := RevisitAnalysis(cons, []float64{0, 80}, campaignStart, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats[1].DailyCoverage <= stats[0].DailyCoverage {
		t.Errorf("polar coverage %v not above equatorial %v for an SSO fleet",
			stats[1].DailyCoverage, stats[0].DailyCoverage)
	}
}

func TestRevisitAnalysisEmpty(t *testing.T) {
	cons := constellation.TianqiSubset(campaignStart, 0)
	stats, err := RevisitAnalysis(cons, []float64{10}, campaignStart, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].Passes != 0 || stats[0].DailyCoverage != 0 {
		t.Errorf("empty fleet produced coverage: %+v", stats[0])
	}
	if math.IsNaN(float64(stats[0].MeanGap)) {
		t.Error("NaN gap")
	}
}
