package core

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"github.com/sinet-io/sinet/internal/mac"
)

// The parallel campaign engine must be bit-identical to a serial run: the
// named RNG streams isolate every stochastic draw from execution order, and
// workers merge index-addressed slots in the serial order. These golden
// tests run the QuickScale campaign shape once with a single worker and
// once with several, and compare the complete results with DeepEqual (which
// compares float64 fields bit-for-bit).

func withGOMAXPROCS(n int, f func()) {
	old := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(old)
	f()
}

func TestPassiveParallelBitIdenticalToSerial(t *testing.T) {
	cfg := PassiveConfig{Seed: 42, Start: time.Date(2024, 10, 1, 0, 0, 0, 0, time.UTC), Days: 1}

	var serial, parallel *PassiveResult
	var errS, errP error
	withGOMAXPROCS(1, func() { serial, errS = RunPassive(cfg) })
	withGOMAXPROCS(4, func() { parallel, errP = RunPassive(cfg) })
	if errS != nil || errP != nil {
		t.Fatal(errS, errP)
	}
	if len(serial.Dataset.Records) == 0 {
		t.Fatal("serial run produced no records — vacuous comparison")
	}
	if !reflect.DeepEqual(serial.Contacts, parallel.Contacts) {
		t.Error("parallel contacts differ from serial run")
	}
	if !reflect.DeepEqual(serial.Dataset.Records, parallel.Dataset.Records) {
		t.Error("parallel dataset differs from serial run")
	}
}

func TestActiveParallelBitIdenticalToSerial(t *testing.T) {
	cfg := ActiveConfig{Seed: 42, Start: time.Date(2024, 10, 1, 0, 0, 0, 0, time.UTC), Days: 2, Policy: mac.DefaultRetxPolicy()}

	var serial, parallel *ActiveResult
	var errS, errP error
	withGOMAXPROCS(1, func() { serial, errS = RunActive(cfg) })
	withGOMAXPROCS(4, func() { parallel, errP = RunActive(cfg) })
	if errS != nil || errP != nil {
		t.Fatal(errS, errP)
	}
	if len(serial.Packets) == 0 {
		t.Fatal("serial run produced no packets — vacuous comparison")
	}
	if !reflect.DeepEqual(serial.Packets, parallel.Packets) {
		t.Error("parallel packet outcomes differ from serial run")
	}
	if !reflect.DeepEqual(serial.MacStats, parallel.MacStats) {
		t.Error("parallel MAC stats differ from serial run")
	}
	if serial.BufferDrops != parallel.BufferDrops {
		t.Errorf("buffer drops differ: %d vs %d", serial.BufferDrops, parallel.BufferDrops)
	}
}
