// Package core implements the paper's primary contribution: the passive
// and active measurement campaigns and the analyses that produce every
// table and figure of the evaluation. The passive campaign reproduces §3.1
// (availability, contact windows, beacon losses) across the eight global
// sites; the active campaign reproduces §3.2 (reliability, latency,
// energy, cost) for the Yunnan agriculture deployment.
package core

import (
	"time"

	"github.com/sinet-io/sinet/internal/groundstation"
	"github.com/sinet-io/sinet/internal/orbit"
)

// Site is one measurement city from Table 1 / Figure 2.
type Site struct {
	Code     string
	City     string
	Location orbit.Geodetic
	// Stations is the number of ground stations deployed there (Table 1).
	Stations int
	// StartMonth is when that site's deployment came online.
	StartMonth time.Time
	// RainProbability parameterizes the site's weather process (fraction
	// of six-hour periods that are wet), reflecting Table 1's "diverse
	// climate conditions".
	RainProbability float64
}

// PaperSites returns the eight deployments of Table 1: 27 ground stations
// across four continents.
func PaperSites() []Site {
	month := func(y int, m time.Month) time.Time {
		return time.Date(y, m, 1, 0, 0, 0, 0, time.UTC)
	}
	return []Site{
		{Code: "PGH", City: "Pittsburgh", Location: orbit.NewGeodeticDeg(40.44, -79.99, 0.3), Stations: 3, StartMonth: month(2025, 2), RainProbability: 0.35},
		{Code: "LDN", City: "London", Location: orbit.NewGeodeticDeg(51.51, -0.13, 0.03), Stations: 5, StartMonth: month(2025, 2), RainProbability: 0.40},
		{Code: "SH", City: "Shanghai", Location: orbit.NewGeodeticDeg(31.23, 121.47, 0.01), Stations: 2, StartMonth: month(2024, 10), RainProbability: 0.33},
		{Code: "GZ", City: "Guangzhou", Location: orbit.NewGeodeticDeg(23.13, 113.26, 0.02), Stations: 2, StartMonth: month(2024, 9), RainProbability: 0.38},
		{Code: "SYD", City: "Sydney", Location: orbit.NewGeodeticDeg(-33.87, 151.21, 0.02), Stations: 4, StartMonth: month(2025, 1), RainProbability: 0.28},
		{Code: "HK", City: "Hong Kong", Location: orbit.NewGeodeticDeg(22.32, 114.17, 0.05), Stations: 6, StartMonth: month(2024, 9), RainProbability: 0.37},
		{Code: "NC", City: "Nanchang", Location: orbit.NewGeodeticDeg(28.68, 115.86, 0.03), Stations: 1, StartMonth: month(2024, 11), RainProbability: 0.36},
		{Code: "YC", City: "Yinchuan", Location: orbit.NewGeodeticDeg(38.49, 106.23, 1.1), Stations: 4, StartMonth: month(2024, 9), RainProbability: 0.12},
	}
}

// SiteByCode returns the Table 1 site with the given code, or ok=false.
func SiteByCode(code string) (Site, bool) {
	for _, s := range PaperSites() {
		if s.Code == code {
			return s, true
		}
	}
	return Site{}, false
}

// ContinentSites returns the four sites §3.1 analyses in depth: Hong Kong
// (Asia), Sydney (Australia), London (Europe), Pittsburgh (North America).
func ContinentSites() []Site {
	var out []Site
	for _, code := range []string{"HK", "SYD", "LDN", "PGH"} {
		s, _ := SiteByCode(code)
		out = append(out, s)
	}
	return out
}

// YunnanPlantation is the coffee-plantation deployment of the active
// measurements (Appendix B: Yunnan province near the border of China).
func YunnanPlantation() orbit.Geodetic {
	return orbit.NewGeodeticDeg(22.0, 100.8, 1.3)
}

// BuildStations instantiates the site's ground stations with small spatial
// offsets (stations at one site are deployed on different rooftops).
func (s Site) BuildStations() []groundstation.Station {
	out := make([]groundstation.Station, 0, s.Stations)
	for i := 0; i < s.Stations; i++ {
		loc := orbit.NewGeodeticDeg(
			s.Location.LatDeg()+0.01*float64(i%3),
			s.Location.LonDeg()+0.008*float64(i/3),
			s.Location.Alt)
		out = append(out, groundstation.Station{
			ID:       s.Code + "-" + string(rune('1'+i)),
			Site:     s.Code,
			Location: loc,
		})
	}
	return out
}
