package core

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"github.com/sinet-io/sinet/internal/constellation"
	"github.com/sinet-io/sinet/internal/fault"
)

// smallPassiveResult runs the cheapest real passive campaign: the JSON
// round-trip tests exercise actual populated results, not hand-built stubs,
// so every nested type (trace records, contact stats, availability rows)
// proves serializable.
func smallPassiveResult(t *testing.T) *PassiveResult {
	t.Helper()
	start := time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC)
	site, _ := SiteByCode("HK")
	res, err := RunPassive(PassiveConfig{
		Seed:           7,
		Start:          start,
		Days:           1,
		Sites:          []Site{site},
		Constellations: []constellation.Constellation{constellation.FOSSA(start)},
		Faults: &fault.Config{
			StationMTBF: 12 * time.Hour,
			StationMTTR: 2 * time.Hour,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPassiveResultJSONRoundTrip(t *testing.T) {
	res := smallPassiveResult(t)
	if len(res.Dataset.Records) == 0 || len(res.Contacts) == 0 || len(res.Availability) == 0 {
		t.Fatalf("campaign too empty to prove a round-trip: %d records, %d contacts, %d availability rows",
			len(res.Dataset.Records), len(res.Contacts), len(res.Availability))
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back PassiveResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	// Scheduler, Weather and Progress are json:"-" (interfaces and funcs
	// cannot round-trip); null them out on the original before comparing.
	res.Config.Scheduler = nil
	res.Config.Weather = nil
	res.Config.Progress = nil
	if !reflect.DeepEqual(res, &back) {
		t.Fatal("passive result changed across marshal/unmarshal")
	}
	// Marshalling must be deterministic: the content-addressed cache in
	// internal/service depends on equal results producing equal bytes.
	again, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(again) {
		t.Fatal("re-marshalling the round-tripped result moved bytes")
	}
}

func TestActiveResultJSONRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a one-day active campaign")
	}
	res, err := RunActive(ActiveConfig{Seed: 11, Days: 1, Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Packets) == 0 || len(res.Meters) == 0 {
		t.Fatalf("campaign too empty to prove a round-trip: %d packets, %d meters", len(res.Packets), len(res.Meters))
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back ActiveResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	res.Config.Weather = nil
	res.Config.Progress = nil
	if !reflect.DeepEqual(res, &back) {
		t.Fatal("active result changed across marshal/unmarshal")
	}
	// The energy meters carry unexported state behind an explicit codec;
	// prove the accounting survived, not just the struct shape.
	for id, m := range res.Meters {
		got, ok := back.Meters[id]
		if !ok {
			t.Fatalf("meter %s lost in round-trip", id)
		}
		if got.TotalEnergyMJ() != m.TotalEnergyMJ() {
			t.Fatalf("meter %s energy %v != %v after round-trip", id, got.TotalEnergyMJ(), m.TotalEnergyMJ())
		}
	}
	again, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(again) {
		t.Fatal("re-marshalling the round-tripped result moved bytes")
	}
}
