package core

import (
	"time"

	"github.com/sinet-io/sinet/internal/channel"
	"github.com/sinet-io/sinet/internal/sim"
)

// WeatherProcess generates a persistent per-site weather sequence: the sky
// state is redrawn every period (six hours) from a two-state wet/dry
// Markov chain whose stationary wet fraction equals the site's
// RainProbability, with wet periods split between rainy and stormy.
type WeatherProcess struct {
	period time.Duration
	start  time.Time
	states []channel.Weather
}

// NewWeatherProcess precomputes the weather sequence covering [start,
// start+days). Deterministic given the RNG stream.
func NewWeatherProcess(rng *sim.RNG, site Site, start time.Time, days int) *WeatherProcess {
	const period = 6 * time.Hour
	n := days*4 + 1
	if n < 1 {
		n = 1
	}
	states := make([]channel.Weather, n)

	// Two-state Markov chain with persistence: P(stay) = 0.7. Solve the
	// wet->wet / dry->wet transition probabilities so the stationary wet
	// fraction matches the site.
	pWet := site.RainProbability
	const stay = 0.7
	// dry->wet chosen so stationary distribution is pWet given wet->wet=stay.
	// π_wet = pDW / (pDW + (1-stay)) ⇒ pDW = π_wet (1-stay) / (1-π_wet).
	pDW := 0.0
	if pWet < 1 {
		pDW = pWet * (1 - stay) / (1 - pWet)
	}
	wet := rng.Bool(pWet)
	for i := range states {
		if wet {
			// Most wet periods are rain; a fraction escalate to storm.
			if rng.Bool(0.15) {
				states[i] = channel.Stormy
			} else {
				states[i] = channel.Rainy
			}
		} else {
			if rng.Bool(0.3) {
				states[i] = channel.Cloudy
			} else {
				states[i] = channel.Sunny
			}
		}
		if wet {
			wet = rng.Bool(stay)
		} else {
			wet = rng.Bool(pDW)
		}
	}
	return &WeatherProcess{period: period, start: start, states: states}
}

// At returns the sky state at time t (clamped to the precomputed range).
func (w *WeatherProcess) At(t time.Time) channel.Weather {
	if len(w.states) == 0 {
		return channel.Sunny
	}
	idx := int(t.Sub(w.start) / w.period)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(w.states) {
		idx = len(w.states) - 1
	}
	return w.states[idx]
}

// WetFraction returns the fraction of periods that are rainy or stormy.
func (w *WeatherProcess) WetFraction() float64 {
	if len(w.states) == 0 {
		return 0
	}
	wet := 0
	for _, s := range w.states {
		if s == channel.Rainy || s == channel.Stormy {
			wet++
		}
	}
	return float64(wet) / float64(len(w.states))
}

// ConstantWeather is a WeatherProvider pinning the sky to one state, used
// by controlled experiments (Fig. 3d, Fig. 5b).
type ConstantWeather struct{ State channel.Weather }

// At implements WeatherProvider.
func (c ConstantWeather) At(time.Time) channel.Weather { return c.State }

// WeatherProvider yields the sky state at a time.
type WeatherProvider interface {
	At(time.Time) channel.Weather
}
