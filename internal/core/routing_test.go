package core

import (
	"encoding/json"
	"errors"
	"math"
	"reflect"
	"testing"
	"time"

	"github.com/sinet-io/sinet/internal/fault"
)

func TestRoutingParallelBitIdenticalToSerial(t *testing.T) {
	cfg := RoutingConfig{Seed: 42, Start: time.Date(2024, 10, 1, 0, 0, 0, 0, time.UTC), Days: 1}

	var serial, parallel *RoutingResult
	var errS, errP error
	withGOMAXPROCS(1, func() { serial, errS = RunRouting(cfg) })
	withGOMAXPROCS(4, func() { parallel, errP = RunRouting(cfg) })
	if errS != nil || errP != nil {
		t.Fatal(errS, errP)
	}
	if len(serial.Packets) == 0 {
		t.Fatal("serial run produced no packets — vacuous comparison")
	}
	if !reflect.DeepEqual(serial.Packets, parallel.Packets) {
		t.Error("parallel packet outcomes differ from serial run")
	}
	if !reflect.DeepEqual(serial.Store, parallel.Store) || !reflect.DeepEqual(serial.Relay, parallel.Relay) {
		t.Error("parallel summaries differ from serial run")
	}
	if serial.MeanLiveISLs != parallel.MeanLiveISLs {
		t.Errorf("mean live ISLs differ: %v vs %v", serial.MeanLiveISLs, parallel.MeanLiveISLs)
	}
}

// TestRelayDominatesStore: with every ISL up, relay delivery is never
// later than store-and-forward for any packet delivered by both policies,
// and strictly earlier in aggregate — the paper's motivating gap between
// linkless store-and-forward constellations and ISL meshes. The store
// baseline delivers at window end with no per-hop processing, so the
// per-packet comparison carries a one-second tolerance for the hop delays
// only the relay model charges (a packet born at the last instant of a
// pass "drains free" under the window model but pays ~20 ms of switching
// under relay).
func TestRelayDominatesStore(t *testing.T) {
	res, err := RunRouting(RoutingConfig{Seed: 7, Days: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Store.Delivered == 0 || res.Relay.Delivered == 0 {
		t.Fatalf("vacuous: store %d / relay %d delivered", res.Store.Delivered, res.Relay.Delivered)
	}
	both := 0
	for _, p := range res.Packets {
		if p.StoreDelivered && !p.RelayDelivered {
			t.Fatalf("packet %d@%v delivered by store but not relay", p.NoradID, p.Origin)
		}
		if p.StoreDelivered && p.RelayDelivered {
			both++
			if p.RelayAt.After(p.StoreAt.Add(time.Second)) {
				t.Fatalf("packet %d@%v: relay %v later than store %v", p.NoradID, p.Origin, p.RelayAt, p.StoreAt)
			}
		}
	}
	if both == 0 {
		t.Fatal("no packet delivered by both policies")
	}
	if res.Relay.MeanSec >= res.Store.MeanSec {
		t.Errorf("relay mean %.0fs not better than store mean %.0fs", res.Relay.MeanSec, res.Store.MeanSec)
	}
	if res.Relay.P50Sec >= res.Store.P50Sec {
		t.Errorf("relay p50 %.0fs not better than store p50 %.0fs", res.Relay.P50Sec, res.Store.P50Sec)
	}
}

// TestRoutingDegradesUnderLinkChurn: with ISLs churned out essentially
// from t=0 (1 ns MTBF, campaign-length MTTR) and drain stations flapping,
// relay routing degrades to store-and-forward — zero ISL hops — while
// still delivering no later than the store policy, which shares the same
// fault-thinned downlink windows. The seeded Gilbert schedules make the
// extreme parameters deterministic, not flaky.
func TestRoutingDegradesUnderLinkChurn(t *testing.T) {
	cfg := RoutingConfig{
		Seed: 11,
		Days: 1,
		Faults: &fault.Config{
			LinkMTBF:  time.Nanosecond,
			LinkMTTR:  10000 * time.Hour,
			DrainMTBF: 6 * time.Hour,
			DrainMTTR: 2 * time.Hour,
		},
	}
	res, err := RunRouting(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relay.Delivered == 0 {
		t.Fatal("nothing delivered under churn — vacuous")
	}
	for _, p := range res.Packets {
		// Gilbert processes start up, so links are up for ~1 ns at the
		// campaign start; only the snapshot-0 instant can see them.
		if !p.Origin.After(cfg.Start) {
			continue
		}
		if p.RelayDelivered && p.RelayISLHops != 0 {
			t.Fatalf("packet %d@%v used %d ISL hops with all links churned out", p.NoradID, p.Origin, p.RelayISLHops)
		}
		// Same one-second hop-delay tolerance as TestRelayDominatesStore.
		if p.StoreDelivered && p.RelayDelivered && p.RelayAt.After(p.StoreAt.Add(time.Second)) {
			t.Fatalf("packet %d@%v: degraded relay %v later than store %v", p.NoradID, p.Origin, p.RelayAt, p.StoreAt)
		}
	}

	// ISLs buy latency: the same campaign without link churn has a
	// strictly better relay mean (drain faults kept identical).
	healthy, err := RunRouting(RoutingConfig{
		Seed: 11,
		Days: 1,
		Faults: &fault.Config{
			DrainMTBF: 6 * time.Hour,
			DrainMTTR: 2 * time.Hour,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if healthy.Relay.MeanSec >= res.Relay.MeanSec {
		t.Errorf("relay with ISLs (mean %.0fs) not better than churned-out relay (mean %.0fs)",
			healthy.Relay.MeanSec, res.Relay.MeanSec)
	}
}

func TestRoutingPolicySelection(t *testing.T) {
	store, err := RunRouting(RoutingConfig{Seed: 3, Days: 1, Policy: PolicyStore})
	if err != nil {
		t.Fatal(err)
	}
	if store.Store.Generated == 0 || store.Relay.Generated != 0 {
		t.Errorf("store policy ran store=%d relay=%d packets", store.Store.Generated, store.Relay.Generated)
	}
	for _, p := range store.Packets {
		if p.RelayDelivered {
			t.Fatal("store-only campaign produced a relay delivery")
		}
	}
	relay, err := RunRouting(RoutingConfig{Seed: 3, Days: 1, Policy: PolicyRelay})
	if err != nil {
		t.Fatal(err)
	}
	if relay.Relay.Generated == 0 || relay.Store.Generated != 0 {
		t.Errorf("relay policy ran store=%d relay=%d packets", relay.Store.Generated, relay.Relay.Generated)
	}
}

func TestRoutingConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  RoutingConfig
	}{
		{"negative days", RoutingConfig{Days: -1}},
		{"negative snapshot step", RoutingConfig{SnapshotStep: -time.Second}},
		{"NaN ISL range", RoutingConfig{MaxISLRangeKm: math.NaN()}},
		{"negative hop processing", RoutingConfig{HopProcessing: -time.Millisecond}},
		{"negative packet interval", RoutingConfig{PacketInterval: -time.Minute}},
		{"unknown policy", RoutingConfig{Policy: "teleport"}},
		{"bad faults", RoutingConfig{Faults: &fault.Config{LinkMTBF: time.Hour}}},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if err == nil {
			t.Errorf("%s: validated", tc.name)
			continue
		}
		if !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("%s: error %v does not wrap ErrInvalidConfig", tc.name, err)
		}
	}
	if err := (RoutingConfig{}).Validate(); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
	if _, err := RunRouting(RoutingConfig{Days: -1}); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("RunRouting accepted an invalid config: %v", err)
	}
}

func TestRoutingResultJSONRoundTrip(t *testing.T) {
	res, err := RunRouting(RoutingConfig{Seed: 5, Days: 1})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back RoutingResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Store != res.Store || back.Relay != res.Relay {
		t.Error("summaries did not round-trip")
	}
	if len(back.Packets) != len(res.Packets) {
		t.Fatalf("packet count %d, want %d", len(back.Packets), len(res.Packets))
	}
	if !reflect.DeepEqual(back.Packets[0], res.Packets[0]) {
		t.Error("packets did not round-trip")
	}
}
