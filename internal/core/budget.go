package core

import "github.com/sinet-io/sinet/internal/channel"

// DtSSystemLossDB bundles the systematic losses of a nano-satellite DtS
// link that a free-space budget alone misses: polarization mismatch
// between the satellite's linear dipole and the ground whip (~3 dB),
// pointing loss from an uncontrolled tumbling attitude (~4 dB), and
// feedline/matching losses (~2 dB). These losses are what pull real
// received powers into the paper's −140…−110 dBm band and confine reliable
// decoding to the high-elevation middle of a contact window (Appendix C).
const DtSSystemLossDB = 10.0

// DtSDownlinkBudget is the satellite→ground budget used for beacons
// received by TinyGS stations.
func DtSDownlinkBudget(txPowerDBm float64) channel.Budget {
	return channel.Budget{
		TxPowerDBm:   txPowerDBm,
		TxAntenna:    channel.SatelliteDipole,
		RxAntenna:    channel.TinyGSGroundAntenna,
		RxNoiseFigDB: 6,
		ImplLossDB:   DtSSystemLossDB,
	}
}

// DtSUplinkBudget is the node→satellite budget for IoT data frames. The
// node drives txPowerDBm into its whip (antenna choice is the Fig. 5b
// variable); the satellite receiver shares the same system losses.
func DtSUplinkBudget(txPowerDBm float64, nodeAntenna channel.Antenna) channel.Budget {
	return channel.Budget{
		TxPowerDBm:   txPowerDBm,
		TxAntenna:    nodeAntenna,
		RxAntenna:    channel.SatelliteDipole,
		RxNoiseFigDB: 6,
		ImplLossDB:   DtSSystemLossDB,
	}
}

// AckPenaltyDB is the extra loss on the ACK reception path relative to
// ordinary beacon reception: the node's front end is still recovering
// from its own maximum-power transmission (AGC desense) and the ACK
// occupies a narrow reply slot that tolerates no retry. It is why ACK
// loss dominates unnecessary retransmissions (§3.2: ~50% of packets
// retransmit although end-to-end reliability without retransmission
// already exceeds 90%).
const AckPenaltyDB = 2.0

// nodeRxAntenna neutralizes the whip's gain on the receive side: at
// 400 MHz reception is external-noise-limited, so antenna gain raises the
// ambient noise floor together with the signal and cancels out of the RX
// SNR. Only the transmit direction benefits from a better whip — which is
// why Fig. 5b's antenna effect shows up in uplink retransmissions.
func nodeRxAntenna(a channel.Antenna) channel.Antenna {
	return channel.Antenna{Name: a.Name + " (ext-noise-limited rx)", GainDB: 0}
}

// DtSBeaconToNodeBudget is the satellite→node budget for beacon frames
// the node uses to detect an overhead satellite.
func DtSBeaconToNodeBudget(txPowerDBm float64, nodeAntenna channel.Antenna) channel.Budget {
	return channel.Budget{
		TxPowerDBm:   txPowerDBm,
		TxAntenna:    channel.SatelliteDipole,
		RxAntenna:    nodeRxAntenna(nodeAntenna),
		RxNoiseFigDB: 6,
		ImplLossDB:   DtSSystemLossDB,
	}
}

// DtSAckBudget is the satellite→node budget for ACK frames.
func DtSAckBudget(txPowerDBm float64, nodeAntenna channel.Antenna) channel.Budget {
	return channel.Budget{
		TxPowerDBm:   txPowerDBm,
		TxAntenna:    channel.SatelliteDipole,
		RxAntenna:    nodeRxAntenna(nodeAntenna),
		RxNoiseFigDB: 6,
		ImplLossDB:   DtSSystemLossDB + AckPenaltyDB,
	}
}
