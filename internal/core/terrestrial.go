package core

import (
	"fmt"
	"time"

	"github.com/sinet-io/sinet/internal/energy"
	"github.com/sinet-io/sinet/internal/orbit"
	"github.com/sinet-io/sinet/internal/sim"
	"github.com/sinet-io/sinet/internal/terrestrial"
)

// TerrestrialConfig configures the §3.2 comparison baseline: the same
// sensors served by a local LoRaWAN + LTE deployment.
type TerrestrialConfig struct {
	Seed  int64
	Start time.Time
	Days  int

	Nodes        int
	PayloadBytes int
	SensePeriod  time.Duration
	Gateways     int
	// Weather pins the sky; nil uses the Yunnan process.
	Weather WeatherProvider
}

func (c *TerrestrialConfig) setDefaults() {
	if c.Start.IsZero() {
		c.Start = time.Date(2025, 3, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.Days <= 0 {
		c.Days = 1
	}
	if c.Nodes <= 0 {
		c.Nodes = 3
	}
	if c.PayloadBytes <= 0 {
		c.PayloadBytes = 20
	}
	if c.SensePeriod <= 0 {
		c.SensePeriod = 30 * time.Minute
	}
	if c.Gateways <= 0 {
		c.Gateways = 3
	}
}

// TerrestrialPacket traces one reading through the terrestrial system.
type TerrestrialPacket struct {
	Node        string
	SeqID       uint64
	GeneratedAt time.Time
	ServerAt    time.Time // zero = lost
}

// Delivered reports end-to-end success.
func (p TerrestrialPacket) Delivered() bool { return !p.ServerAt.IsZero() }

// Latency returns generation→server, valid only when delivered.
func (p TerrestrialPacket) Latency() (time.Duration, bool) {
	if p.ServerAt.IsZero() {
		return 0, false
	}
	return p.ServerAt.Sub(p.GeneratedAt), true
}

// TerrestrialResult is a completed terrestrial campaign.
type TerrestrialResult struct {
	Config  TerrestrialConfig
	Packets []TerrestrialPacket
	Meters  map[string]*energy.Meter
}

// RunTerrestrial executes the baseline campaign. Terrestrial links need no
// discrete-event machinery: every reading transmits immediately to the
// nearest gateway.
func RunTerrestrial(cfg TerrestrialConfig) (*TerrestrialResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.setDefaults()
	site := YunnanPlantation()
	end := cfg.Start.Add(time.Duration(cfg.Days) * 24 * time.Hour)

	var weather WeatherProvider
	if cfg.Weather != nil {
		weather = cfg.Weather
	} else {
		yunnan := Site{Code: "YN", City: "Yunnan", Location: site, RainProbability: 0.30}
		weather = NewWeatherProcess(sim.NewRNG(cfg.Seed, "terr/weather"), yunnan, cfg.Start, cfg.Days)
	}

	deployment := terrestrial.NewDeployment(cfg.Gateways, site, cfg.Seed)
	res := &TerrestrialResult{Config: cfg, Meters: map[string]*energy.Meter{}}

	for i := 0; i < cfg.Nodes; i++ {
		id := fmt.Sprintf("terr-%d", i+1)
		loc := orbit.NewGeodeticDeg(site.LatDeg()+0.003*float64(i), site.LonDeg()-0.002*float64(i), site.Alt)
		meter := energy.NewMeter(energy.TerrestrialProfile(), cfg.Start)
		res.Meters[id] = meter
		gw, dist := deployment.Nearest(loc)
		if gw == nil {
			continue
		}

		offset := time.Duration(i) * cfg.SensePeriod / time.Duration(cfg.Nodes)
		seq := uint64(0)
		for at := cfg.Start.Add(offset); at.Before(end); at = at.Add(cfg.SensePeriod) {
			pkt := TerrestrialPacket{Node: id, SeqID: seq, GeneratedAt: at}
			seq++

			// Duty cycle: wake to standby, transmit, open the two
			// LoRaWAN receive windows, sleep.
			airtime := gw.Link.Params.Airtime(cfg.PayloadBytes)
			meter.Transition(energy.Standby, at)
			txStart := at.Add(200 * time.Millisecond)
			meter.Transition(energy.Tx, txStart)
			meter.Transition(energy.Rx, txStart.Add(airtime))
			meter.Transition(energy.Sleep, txStart.Add(airtime).Add(2*time.Second))

			up := gw.Receive(txStart, dist, weather.At(at), cfg.PayloadBytes)
			if up.Received {
				pkt.ServerAt = up.ServerAt
			}
			res.Packets = append(res.Packets, pkt)
		}
		meter.Finish(end)
	}
	return res, nil
}
