package core

import (
	"testing"
	"time"

	"github.com/sinet-io/sinet/internal/channel"
	"github.com/sinet-io/sinet/internal/energy"
	"github.com/sinet-io/sinet/internal/mac"
)

// cachedActive memoizes a 3-day default active run shared across tests.
var cachedActive *ActiveResult

func smallActive(t *testing.T) *ActiveResult {
	t.Helper()
	if cachedActive != nil {
		return cachedActive
	}
	res, err := RunActive(ActiveConfig{Seed: 42, Days: 3, Policy: mac.DefaultRetxPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	cachedActive = res
	return res
}

func TestActivePacketAccounting(t *testing.T) {
	res := smallActive(t)
	// 3 nodes × 48 packets/day × 3 days.
	if want := 3 * 48 * 3; len(res.Packets) != want {
		t.Fatalf("packets = %d, want %d", len(res.Packets), want)
	}
	seen := map[string]map[uint64]bool{}
	for _, p := range res.Packets {
		if seen[p.Node] == nil {
			seen[p.Node] = map[uint64]bool{}
		}
		if seen[p.Node][p.SeqID] {
			t.Fatalf("duplicate packet %s/%d", p.Node, p.SeqID)
		}
		seen[p.Node][p.SeqID] = true
	}
	if len(seen) != 3 {
		t.Errorf("nodes = %d", len(seen))
	}
}

func TestActiveCausalOrdering(t *testing.T) {
	res := smallActive(t)
	for _, p := range res.Packets {
		if !p.FirstAttemptAt.IsZero() && p.FirstAttemptAt.Before(p.GeneratedAt) {
			t.Fatalf("%s/%d attempted before generated", p.Node, p.SeqID)
		}
		if !p.UplinkedAt.IsZero() {
			if p.FirstAttemptAt.IsZero() {
				t.Fatalf("%s/%d uplinked without attempt", p.Node, p.SeqID)
			}
			if p.UplinkedAt.Before(p.FirstAttemptAt) {
				t.Fatalf("%s/%d uplinked before first attempt", p.Node, p.SeqID)
			}
		}
		if !p.ServerAt.IsZero() {
			if p.UplinkedAt.IsZero() {
				t.Fatalf("%s/%d delivered without uplink", p.Node, p.SeqID)
			}
			if p.ServerAt.Before(p.UplinkedAt) {
				t.Fatalf("%s/%d delivered before uplink", p.Node, p.SeqID)
			}
		}
		if p.Attempts > res.Config.Policy.MaxAttempts() {
			t.Fatalf("%s/%d used %d attempts, budget %d", p.Node, p.SeqID, p.Attempts, res.Config.Policy.MaxAttempts())
		}
	}
}

func TestActiveReliabilityBand(t *testing.T) {
	// Fig. 5a: with 5 retransmissions Tianqi reaches ~96%.
	res := smallActive(t)
	rel := res.Reliability()
	if rel < 0.90 || rel > 1.0 {
		t.Errorf("reliability with retx = %.3f, want ≥0.90 (paper: 0.96)", rel)
	}
}

func TestRetxImprovesReliability(t *testing.T) {
	// Fig. 5a: enabling retransmissions improves end-to-end reliability.
	noRetx, err := RunActive(ActiveConfig{Seed: 42, Days: 2, Policy: mac.NoRetxPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	withRetx, err := RunActive(ActiveConfig{Seed: 42, Days: 2, Policy: mac.DefaultRetxPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	if withRetx.Reliability() <= noRetx.Reliability() {
		t.Errorf("retx did not help: %.3f vs %.3f", withRetx.Reliability(), noRetx.Reliability())
	}
	// Both regimes beat 75% (paper: 91% and 96%).
	if noRetx.Reliability() < 0.75 {
		t.Errorf("no-retx reliability %.3f too low", noRetx.Reliability())
	}
}

func TestActiveLatencyShape(t *testing.T) {
	// Fig. 5c/5d: hour-scale total latency decomposed into wait / DtS /
	// delivery, dominated by wait + delivery.
	res := smallActive(t)
	lb := res.Latency()
	if lb.N == 0 {
		t.Fatal("no delivered packets")
	}
	if lb.Total < 30*time.Minute || lb.Total > 6*time.Hour {
		t.Errorf("total latency %v outside the paper's hour-scale regime", lb.Total)
	}
	if lb.Wait <= 0 || lb.Delivery <= 0 {
		t.Error("wait/delivery segments must be positive")
	}
	if lb.DtS >= lb.Wait && lb.DtS >= lb.Delivery {
		t.Errorf("DtS segment %v should be the smallest (wait %v, delivery %v)", lb.DtS, lb.Wait, lb.Delivery)
	}
}

func TestSatelliteVsTerrestrialLatencyGap(t *testing.T) {
	// Fig. 5c: 643.6× latency gap. Assert ≥ two orders of magnitude.
	sat := smallActive(t)
	terr, err := RunTerrestrial(TerrestrialConfig{Seed: 42, Days: 3})
	if err != nil {
		t.Fatal(err)
	}
	satLat := sat.Latency().Total
	terrLat, n := terr.MeanLatency()
	if n == 0 {
		t.Fatal("no terrestrial deliveries")
	}
	ratio := float64(satLat) / float64(terrLat)
	if ratio < 100 {
		t.Errorf("latency ratio = %.0f×, want ≥100× (paper: 643.6×)", ratio)
	}
	if terr.Reliability() < 0.99 {
		t.Errorf("terrestrial reliability %.3f, want ≈1.0", terr.Reliability())
	}
}

func TestAckLossCausesUnnecessaryRetx(t *testing.T) {
	// §3.2's contradiction: ~50% of packets retransmit even though no-retx
	// reliability exceeds 90% — ACK losses force spurious retries.
	res := smallActive(t)
	if res.MacStats.AckLosses == 0 {
		t.Fatal("no ACK losses simulated")
	}
	if res.MacStats.UnnecessaryRetx == 0 {
		t.Fatal("ACK losses produced no unnecessary retransmissions")
	}
	zero := res.ZeroRetxFraction()
	if zero < 0.3 || zero > 0.85 {
		t.Errorf("zero-retx fraction = %.2f, want around the paper's ~0.5", zero)
	}
}

func TestWorseAntennaMoreRetx(t *testing.T) {
	// Fig. 5b: 1/4λ under rain needs more retransmissions than 5/8λ sunny.
	best, err := RunActive(ActiveConfig{
		Seed: 7, Days: 2, Policy: mac.DefaultRetxPolicy(),
		NodeAntenna: channel.FiveEighthsWave,
		Weather:     ConstantWeather{State: channel.Sunny},
	})
	if err != nil {
		t.Fatal(err)
	}
	worst, err := RunActive(ActiveConfig{
		Seed: 7, Days: 2, Policy: mac.DefaultRetxPolicy(),
		NodeAntenna: channel.QuarterWave,
		Weather:     ConstantWeather{State: channel.Rainy},
	})
	if err != nil {
		t.Fatal(err)
	}
	if worst.MeanRetx() <= best.MeanRetx() {
		t.Errorf("1/4λ rainy retx %.2f not above 5/8λ sunny %.2f", worst.MeanRetx(), best.MeanRetx())
	}
}

func TestEnergyComparisonShape(t *testing.T) {
	// Fig. 6: satellite node drains an order of magnitude faster; Rx
	// hang-on dominates its energy.
	sat := smallActive(t)
	terr, err := RunTerrestrial(TerrestrialConfig{Seed: 42, Days: 3})
	if err != nil {
		t.Fatal(err)
	}
	ec := CompareEnergy(sat, terr, energy.DefaultBattery())
	if ec.PowerRatio < 8 || ec.PowerRatio > 25 {
		t.Errorf("power ratio = %.1f×, want order ~15× (paper: 14.9×)", ec.PowerRatio)
	}
	if ec.SatLifetimeDays >= ec.TerrLifetimeDays {
		t.Error("satellite node must not outlive terrestrial node")
	}
	// The satellite node's energy is Rx-dominated; the terrestrial node's
	// time is sleep-dominated.
	if ec.SatBreakdown[energy.Rx].EnergyFrac < 0.5 {
		t.Errorf("satellite Rx energy fraction = %.2f", ec.SatBreakdown[energy.Rx].EnergyFrac)
	}
	if ec.TerrBreakdown[energy.Sleep].TimeFrac < 0.9 {
		t.Errorf("terrestrial sleep time fraction = %.2f", ec.TerrBreakdown[energy.Sleep].TimeFrac)
	}
}

func TestSleepWhenIdleSavesEnergy(t *testing.T) {
	// The paper's called-for optimization: sleeping between bursts.
	stock, err := RunActive(ActiveConfig{Seed: 9, Days: 1, Policy: mac.DefaultRetxPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	optimized, err := RunActive(ActiveConfig{Seed: 9, Days: 1, Policy: mac.DefaultRetxPolicy(), SleepWhenIdle: true})
	if err != nil {
		t.Fatal(err)
	}
	stockP, _ := averageMeters(stock.Meters)
	optP, _ := averageMeters(optimized.Meters)
	if optP >= stockP {
		t.Errorf("sleep-when-idle power %.1f mW not below stock %.1f mW", optP, stockP)
	}
}

func TestPayloadSizeReducesReliability(t *testing.T) {
	// Fig. 12a: larger payloads are less reliable.
	run := func(payload int) float64 {
		res, err := RunActive(ActiveConfig{Seed: 11, Days: 2, Policy: mac.NoRetxPolicy(), PayloadBytes: payload})
		if err != nil {
			t.Fatal(err)
		}
		return res.Reliability()
	}
	r10, r120 := run(10), run(120)
	if r120 >= r10 {
		t.Errorf("120B reliability %.3f not below 10B %.3f", r120, r10)
	}
}

func TestConcurrencyReducesReliability(t *testing.T) {
	// Fig. 12b: aligned simultaneous transmissions lower reliability, but
	// it stays high (capture + retx), per the paper's 94/92/89%. The
	// 3-concurrent group collects only ~7 packets/day, so the campaign
	// needs several weeks before the directional comparison rises above
	// binomial noise.
	res, err := RunActive(ActiveConfig{
		Seed: 13, Days: 24, Nodes: 3,
		Policy: mac.NoRetxPolicy(), AlignedPhases: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	byConc := res.ReliabilityByConcurrency()
	r1, ok1 := byConc[1]
	r3, ok3 := byConc[3]
	if !ok1 || !ok3 {
		t.Fatalf("missing concurrency groups: %v", byConc)
	}
	if r3 > r1+0.03 {
		t.Errorf("3-way simultaneous reliability %.3f above single %.3f", r3, r1)
	}
	if r3 < 0.55 {
		t.Errorf("3-way reliability %.3f collapsed (paper: 0.89)", r3)
	}
}

func TestActiveDeterministic(t *testing.T) {
	cfg := ActiveConfig{Seed: 21, Days: 1, Policy: mac.DefaultRetxPolicy()}
	a, err := RunActive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunActive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Packets) != len(b.Packets) {
		t.Fatalf("packet counts differ: %d vs %d", len(a.Packets), len(b.Packets))
	}
	for i := range a.Packets {
		if *a.Packets[i] != *b.Packets[i] {
			t.Fatalf("packet %d differs:\n%+v\n%+v", i, a.Packets[i], b.Packets[i])
		}
	}
	if a.MacStats != b.MacStats {
		t.Error("mac stats differ")
	}
}

func TestPerGroupReliability(t *testing.T) {
	res := smallActive(t)
	groups := res.PerGroupReliability()
	// 3 nodes × 3 days.
	if len(groups) != 9 {
		t.Errorf("groups = %d, want 9", len(groups))
	}
	for _, g := range groups {
		if g < 0 || g > 1 {
			t.Errorf("group reliability %v out of range", g)
		}
	}
	if f := FractionReaching(groups, 0.0); f != 1 {
		t.Errorf("FractionReaching(0) = %v", f)
	}
	if f := FractionReaching(nil, 0.9); f != 0 {
		t.Errorf("FractionReaching(empty) = %v", f)
	}
}

func TestTerrestrialDeterministic(t *testing.T) {
	cfg := TerrestrialConfig{Seed: 5, Days: 1}
	a, err := RunTerrestrial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTerrestrial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Packets) != len(b.Packets) {
		t.Fatal("terrestrial packet counts differ")
	}
	for i := range a.Packets {
		if a.Packets[i] != b.Packets[i] {
			t.Fatalf("terrestrial packet %d differs", i)
		}
	}
}
