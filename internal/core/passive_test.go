package core

import (
	"testing"
	"time"

	"github.com/sinet-io/sinet/internal/channel"
	"github.com/sinet-io/sinet/internal/constellation"
	"github.com/sinet-io/sinet/internal/groundstation"
	"github.com/sinet-io/sinet/internal/sim"
)

// simRNG is shorthand for sim.NewRNG in tests.
func simRNG(seed int64, name string) *sim.RNG { return sim.NewRNG(seed, name) }

var campaignStart = time.Date(2024, 10, 1, 0, 0, 0, 0, time.UTC)

// smallPassive runs a 2-day single-site campaign over Tianqi and PICO used
// by several tests; cached across the package's tests.
var cachedPassive *PassiveResult

func smallPassive(t *testing.T) *PassiveResult {
	t.Helper()
	if cachedPassive != nil {
		return cachedPassive
	}
	hk, ok := SiteByCode("HK")
	if !ok {
		t.Fatal("HK site missing")
	}
	res, err := RunPassive(PassiveConfig{
		Seed:  42,
		Start: campaignStart,
		Days:  2,
		Sites: []Site{hk},
		Constellations: []constellation.Constellation{
			constellation.Tianqi(campaignStart),
			constellation.PICO(campaignStart),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cachedPassive = res
	return res
}

func TestPaperSitesTable1(t *testing.T) {
	sites := PaperSites()
	if len(sites) != 8 {
		t.Fatalf("sites = %d, want 8", len(sites))
	}
	total := 0
	for _, s := range sites {
		total += s.Stations
		if s.RainProbability < 0 || s.RainProbability > 1 {
			t.Errorf("%s rain probability %v", s.Code, s.RainProbability)
		}
		if built := s.BuildStations(); len(built) != s.Stations {
			t.Errorf("%s built %d stations, want %d", s.Code, len(built), s.Stations)
		}
	}
	if total != 27 {
		t.Errorf("total stations = %d, want 27 (Table 1)", total)
	}
	if _, ok := SiteByCode("HK"); !ok {
		t.Error("HK lookup failed")
	}
	if _, ok := SiteByCode("XX"); ok {
		t.Error("bogus site code found")
	}
	if got := len(ContinentSites()); got != 4 {
		t.Errorf("continent sites = %d", got)
	}
}

func TestStationIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range PaperSites() {
		for _, st := range s.BuildStations() {
			if seen[st.ID] {
				t.Errorf("duplicate station ID %s", st.ID)
			}
			seen[st.ID] = true
			if st.Site != s.Code {
				t.Errorf("station %s has site %s", st.ID, st.Site)
			}
		}
	}
}

func TestWeatherProcess(t *testing.T) {
	hk, _ := SiteByCode("HK")
	w := NewWeatherProcess(simRNG(7, "weather-test"), hk, campaignStart, 60)
	// Stationary wet fraction near the site's rain probability.
	if frac := w.WetFraction(); frac < hk.RainProbability-0.12 || frac > hk.RainProbability+0.12 {
		t.Errorf("wet fraction = %.2f, want ≈%.2f", frac, hk.RainProbability)
	}
	// Deterministic per seed.
	w2 := NewWeatherProcess(simRNG(7, "weather-test"), hk, campaignStart, 60)
	for d := 0; d < 60*4; d++ {
		at := campaignStart.Add(time.Duration(d) * 6 * time.Hour)
		if w.At(at) != w2.At(at) {
			t.Fatal("weather process not deterministic")
		}
	}
	// Clamped outside range.
	_ = w.At(campaignStart.Add(-time.Hour))
	_ = w.At(campaignStart.Add(1000 * 24 * time.Hour))
}

func TestRunPassiveProducesContacts(t *testing.T) {
	res := smallPassive(t)
	if len(res.Contacts) == 0 {
		t.Fatal("no contacts")
	}
	if res.Dataset.Len() == 0 {
		t.Fatal("no trace records")
	}
	for i, c := range res.Contacts {
		if c.BeaconsReceived > c.BeaconsSent {
			t.Errorf("contact %d received more than sent", i)
		}
		if c.EffectiveDuration() > c.TheoreticalDuration()+time.Second {
			t.Errorf("contact %d effective exceeds theoretical", i)
		}
		if c.BeaconsReceived > 0 && (c.FirstRx.Before(c.Pass.AOS) || c.LastRx.After(c.Pass.LOS)) {
			t.Errorf("contact %d receptions outside window", i)
		}
		for _, p := range c.RxPositions {
			if p < 0 || p > 1 {
				t.Errorf("contact %d position %v outside [0,1]", i, p)
			}
		}
	}
}

func TestRunPassiveDeterministic(t *testing.T) {
	hk, _ := SiteByCode("HK")
	cfg := PassiveConfig{
		Seed: 7, Start: campaignStart, Days: 1,
		Sites:          []Site{hk},
		Constellations: []constellation.Constellation{constellation.FOSSA(campaignStart)},
	}
	a, err := RunPassive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPassive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Dataset.Len() != b.Dataset.Len() || len(a.Contacts) != len(b.Contacts) {
		t.Fatalf("same seed differs: %d/%d records, %d/%d contacts",
			a.Dataset.Len(), b.Dataset.Len(), len(a.Contacts), len(b.Contacts))
	}
	for i := range a.Dataset.Records {
		if a.Dataset.Records[i] != b.Dataset.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestEffectiveWindowsShrink(t *testing.T) {
	// The headline §3.1 finding: effective durations collapse versus
	// theoretical ones, in the paper by 73.7%-89.2%. Allow a generous
	// band around it.
	res := smallPassive(t)
	for _, cons := range []string{"Tianqi", "PICO"} {
		sh := res.Shrinkage(cons, "HK")
		if sh.Contacts == 0 {
			t.Fatalf("%s: no covered contacts", cons)
		}
		if sh.ShrinkFraction < 0.6 || sh.ShrinkFraction > 0.97 {
			t.Errorf("%s shrink = %.1f%%, want in the paper's regime (60-97%%)", cons, sh.ShrinkFraction*100)
		}
		if sh.MeanEffective >= sh.MeanTheoretical {
			t.Errorf("%s effective >= theoretical", cons)
		}
	}
}

func TestIntervalsStretch(t *testing.T) {
	res := smallPassive(t)
	iv := res.Intervals("Tianqi", "HK")
	if iv.Stretch <= 1.2 {
		t.Errorf("interval stretch = %.2f, want meaningfully > 1 (paper: 6.1-44.9)", iv.Stretch)
	}
	if iv.MeanEffective <= iv.MeanTheoretical {
		t.Error("effective intervals not longer than theoretical")
	}
}

func TestBeaconLossesHigh(t *testing.T) {
	// Fig. 3d headline: >50% of beacons dropped.
	res := smallPassive(t)
	if loss := res.OverallBeaconLoss("Tianqi"); loss < 0.5 || loss >= 1 {
		t.Errorf("Tianqi beacon loss = %.2f, want > 0.5", loss)
	}
}

func TestReceptionsConcentrateMidWindow(t *testing.T) {
	// Fig. 9: ~70% of receptions within the middle 30-70% of the window.
	res := smallPassive(t)
	wp := res.WindowPositions("")
	if wp.Total == 0 {
		t.Fatal("no positions recorded")
	}
	if wp.MiddleFraction < 0.55 {
		t.Errorf("middle fraction = %.2f, want > 0.55 (paper: 0.704)", wp.MiddleFraction)
	}
	if wp.Histogram.Total() != wp.Total {
		t.Error("histogram total mismatch")
	}
}

func TestRSSIInPaperBand(t *testing.T) {
	// Fig. 3b: LEO IoT signals arrive at roughly -140..-110 dBm.
	res := smallPassive(t)
	s := res.RSSISummary("")
	if s.N == 0 {
		t.Fatal("no RSSI samples")
	}
	if s.Mean < -140 || s.Mean > -110 {
		t.Errorf("mean RSSI = %.1f dBm, want in [-140, -110]", s.Mean)
	}
	if s.Min < -145 {
		t.Errorf("min RSSI = %.1f below plausible decode floor", s.Min)
	}
}

func TestRSSIDecreasesWithDistance(t *testing.T) {
	// Fig. 3c: signal strength falls with slant range.
	res := smallPassive(t)
	pts := res.RSSIVsDistance("Tianqi", 300, 3000)
	if len(pts) < 3 {
		t.Fatalf("too few distance bins: %d", len(pts))
	}
	if first, last := pts[0], pts[len(pts)-1]; last.Y >= first.Y {
		t.Errorf("RSSI at %v km (%.1f) not below RSSI at %v km (%.1f)",
			last.X, last.Y, first.X, first.Y)
	}
	if res.RSSIVsDistance("Tianqi", 0, 3000) != nil {
		t.Error("zero bin width accepted")
	}
}

func TestTianqiDistancesLongerThan500kmClass(t *testing.T) {
	// Fig. 8: Tianqi's higher orbit yields longer DtS distances than the
	// ~500 km constellations.
	res := smallPassive(t)
	tq, err := res.DistanceCDF("Tianqi")
	if err != nil {
		t.Fatal(err)
	}
	pico, err := res.DistanceCDF("PICO")
	if err != nil {
		t.Fatal(err)
	}
	if tq.Quantile(0.5) <= pico.Quantile(0.5) {
		t.Errorf("Tianqi median distance %.0f not above PICO %.0f",
			tq.Quantile(0.5), pico.Quantile(0.5))
	}
}

func TestLargerFleetMoreAvailability(t *testing.T) {
	// Fig. 3a: availability grows with constellation size (Tianqi 12 vs 22).
	hk, _ := SiteByCode("HK")
	run := func(n int) time.Duration {
		res, err := RunPassive(PassiveConfig{
			Seed: 5, Start: campaignStart, Days: 1,
			Sites:          []Site{hk},
			Constellations: []constellation.Constellation{constellation.TianqiSubset(campaignStart, n)},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.TheoreticalDailyDuration(constellation.TianqiSubset(campaignStart, n).Name, "HK")
	}
	small, full := run(12), run(22)
	if full <= small {
		t.Errorf("22-sat availability %v not above 12-sat %v", full, small)
	}
}

func TestWeatherReducesReception(t *testing.T) {
	// Fig. 3d: rainy contacts receive fewer beacons than sunny ones.
	hk, _ := SiteByCode("HK")
	run := func(w channel.Weather) float64 {
		res, err := RunPassive(PassiveConfig{
			Seed: 11, Start: campaignStart, Days: 2,
			Sites:          []Site{hk},
			Constellations: []constellation.Constellation{constellation.Tianqi(campaignStart)},
			Weather:        ConstantWeather{State: w},
		})
		if err != nil {
			t.Fatal(err)
		}
		return 1 - res.OverallBeaconLoss("Tianqi")
	}
	sunny, rainy := run(channel.Sunny), run(channel.Rainy)
	if rainy >= sunny {
		t.Errorf("rainy reception %.3f not below sunny %.3f", rainy, sunny)
	}
}

func TestVanillaSchedulerCapturesLess(t *testing.T) {
	// The §2.2 motivation for replacing TinyGS's scheduler: the vanilla
	// round-robin policy misses most of each pass.
	hk, _ := SiteByCode("HK")
	cons := constellation.PICO(campaignStart)
	var catalog []int
	for _, s := range cons.Sats {
		catalog = append(catalog, s.NoradID)
	}
	base := PassiveConfig{
		Seed: 3, Start: campaignStart, Days: 1,
		Sites:          []Site{hk},
		Constellations: []constellation.Constellation{cons},
	}
	tracked, err := RunPassive(base)
	if err != nil {
		t.Fatal(err)
	}
	vanillaCfg := base
	vanillaCfg.Scheduler = groundstation.RoundRobinScheduler{Catalog: catalog, Slot: 10 * time.Minute}
	vanilla, err := RunPassive(vanillaCfg)
	if err != nil {
		t.Fatal(err)
	}
	if vanilla.Dataset.Len() >= tracked.Dataset.Len() {
		t.Errorf("vanilla scheduler captured %d traces, tracking %d — want fewer",
			vanilla.Dataset.Len(), tracked.Dataset.Len())
	}
}

func TestHonorSiteStart(t *testing.T) {
	// A site that comes online after the campaign start contributes no
	// contacts before its start month.
	pgh, _ := SiteByCode("PGH") // starts 2025-02
	res, err := RunPassive(PassiveConfig{
		Seed: 9, Start: campaignStart, Days: 2, // Oct 2024 — before PGH online
		Sites:          []Site{pgh},
		Constellations: []constellation.Constellation{constellation.FOSSA(campaignStart)},
		HonorSiteStart: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Contacts) != 0 || res.Dataset.Len() != 0 {
		t.Errorf("PGH produced %d contacts before coming online", len(res.Contacts))
	}
}

func TestDopplerWithinLoRaTolerance(t *testing.T) {
	// Appendix C: LEO Doppler at 400-450 MHz peaks around ±10 kHz —
	// within LoRa's static tolerance, so shifts on received beacons must
	// be bounded by physics and below the demodulation wall.
	res := smallPassive(t)
	d := res.Doppler("")
	if d.Summary.N == 0 {
		t.Fatal("no Doppler samples")
	}
	if d.MaxAbsHz > 12000 {
		t.Errorf("max |Doppler| = %.0f Hz exceeds the physical ceiling", d.MaxAbsHz)
	}
	if d.MaxAbsHz < 1000 {
		t.Errorf("max |Doppler| = %.0f Hz implausibly small for LEO", d.MaxAbsHz)
	}
	if d.MaxAbsHz >= d.ToleranceHz {
		t.Errorf("Doppler %.0f Hz at or above the %.0f Hz tolerance", d.MaxAbsHz, d.ToleranceHz)
	}
}

func TestSiteTraceCounts(t *testing.T) {
	res := smallPassive(t)
	counts := res.SiteTraceCounts()
	if len(counts) != 1 || counts[0].Site.Code != "HK" {
		t.Fatalf("counts = %+v", counts)
	}
	if counts[0].Traces != res.Dataset.Len() {
		t.Errorf("HK count %d != dataset %d", counts[0].Traces, res.Dataset.Len())
	}
}
