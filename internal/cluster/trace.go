package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"time"

	"github.com/sinet-io/sinet/internal/service"
	"github.com/sinet-io/sinet/internal/tracing"
)

// handleJobTrace serves GET /v1/jobs/{id}/trace with the job's stitched
// distributed timeline. Two shapes of job exist:
//
//   - Proxied jobs ran on one worker: the coordinator fetches that
//     worker's assembled trace and merges in its own spans of the same
//     trace (the proxy.submit hop). A dead worker degrades gracefully to
//     the coordinator-side spans alone — the hop that failed over is
//     often exactly what the caller wants to see.
//
//   - Coordinator-owned jobs (sharded campaigns, or runs with no ready
//     fleet) live in the embedded server; their trace ID is fanned out
//     to every peer as GET /debug/traces?trace=<id> so worker-side shard
//     spans join the timeline. Unreachable peers are skipped: a span
//     recorded on a worker that later died is gone, which is the
//     tracer's documented crash contract (journal durable, tracer not).
func (c *Coordinator) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	c.mu.Lock()
	ent, proxied := c.route[id]
	c.mu.Unlock()
	if !proxied {
		jt, ok := c.local.JobTraceByID(id)
		if !ok {
			writeError(w, http.StatusNotFound, errors.New("unknown job"))
			return
		}
		if jt.TraceID != "" {
			jt.Spans = c.stitchPeers(r.Context(), jt.TraceID, jt.Spans)
		}
		writeJSON(w, http.StatusOK, jt)
		return
	}
	jt, err := c.fetchJobTrace(r.Context(), ent.peer, id)
	if err != nil {
		jt = service.JobTrace{JobID: id, Spans: []tracing.SpanJSON{}}
	}
	if jt.TraceID == "" && !ent.trace.IsZero() {
		jt.TraceID = ent.trace.String()
	}
	if tid, ok := tracing.ParseTraceID(jt.TraceID); ok {
		jt.Spans = append(jt.Spans, c.local.Tracer().Trace(tid)...)
		tracing.SortSpans(jt.Spans)
	}
	writeJSON(w, http.StatusOK, jt)
}

// stitchPeers merges every reachable peer's spans of the trace into
// spans and returns the result sorted on the shared timeline. Peers are
// queried concurrently; fetch errors skip the peer.
func (c *Coordinator) stitchPeers(ctx context.Context, traceID string, spans []tracing.SpanJSON) []tracing.SpanJSON {
	if _, ok := tracing.ParseTraceID(traceID); !ok {
		return spans
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, peer := range c.cfg.Peers {
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			remote, err := c.fetchTrace(ctx, peer, traceID)
			if err != nil || len(remote) == 0 {
				return
			}
			mu.Lock()
			spans = append(spans, remote...)
			mu.Unlock()
		}(peer)
	}
	wg.Wait()
	tracing.SortSpans(spans)
	return spans
}

// fetchJobTrace retrieves one worker's assembled trace for a job it owns.
func (c *Coordinator) fetchJobTrace(ctx context.Context, peer, id string) (service.JobTrace, error) {
	var jt service.JobTrace
	err := c.getJSON(ctx, peer+"/v1/jobs/"+url.PathEscape(id)+"/trace", &jt)
	return jt, err
}

// fetchTrace retrieves one peer's spans for a trace ID.
func (c *Coordinator) fetchTrace(ctx context.Context, peer, traceID string) ([]tracing.SpanJSON, error) {
	var tj tracing.TraceJSON
	err := c.getJSON(ctx, peer+"/debug/traces?trace="+url.QueryEscape(traceID), &tj)
	return tj.Spans, err
}

func (c *Coordinator) getJSON(ctx context.Context, u string, v any) error {
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: %s: status %d", u, resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}
