package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"github.com/sinet-io/sinet/internal/service"
	"github.com/sinet-io/sinet/internal/sim"
	"github.com/sinet-io/sinet/internal/tracing"
)

// injectTrace stamps the request with ctx's current span context as a
// W3C traceparent header, so worker-side spans nest under the
// coordinator span that issued the hop. Untraced contexts add nothing.
func injectTrace(ctx context.Context, req *http.Request) {
	if _, sc := tracing.FromContext(ctx); sc.Valid() {
		tracing.Inject(req, sc)
	}
}

// errPermanent marks remote failures no other worker can fix — a bad
// spec, or a campaign that genuinely failed after the worker's own retry
// budget. runRemote stops failing over when it sees one.
var errPermanent = errors.New("permanent remote failure")

// backpressureError is a worker's 429/503 with its Retry-After hint: the
// shard should wait that long and retry the same worker, not stampede
// the next one.
type backpressureError struct {
	status     int
	retryAfter time.Duration
}

func (e *backpressureError) Error() string {
	return fmt.Sprintf("worker pushed back with %d (retry after %s)", e.status, e.retryAfter)
}

// newJitterRNG derives a deterministic jitter stream (the retryDelay
// pattern from the service layer: master seed 0, purpose-named stream).
func newJitterRNG(name string) *sim.RNG { return sim.NewRNG(0, name) }

// remoteMaxRounds bounds how many full passes over the failover sequence
// one shard makes before giving up; within a pass every peer is tried
// once. Combined with the local server's job retry budget this tolerates
// a worker dying mid-shard without ever wedging a campaign.
const remoteMaxRounds = 3

// remotePollInterval paces the status poll of an in-flight remote shard.
const remotePollInterval = 50 * time.Millisecond

// runRemote executes one (usually shard) spec on the fleet and returns
// its result bytes. The key's ring sequence is the failover order: a
// dead or erroring peer costs a jittered backoff and a hop to the next;
// backpressure (429/503) waits out the worker's own Retry-After hint
// before the next attempt. Only permanent failures — bad specs,
// campaigns that failed on-worker — abort early.
func (c *Coordinator) runRemote(ctx context.Context, spec *service.JobSpec, key service.Key) ([]byte, error) {
	canonical, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	attempt := 0
	var lastErr error
	for round := 0; round < remoteMaxRounds; round++ {
		for _, peer := range c.candidates(key) {
			if attempt > 0 {
				c.metrics.observeFailover()
				if err := c.waitRetry(ctx, key, attempt, lastErr); err != nil {
					return nil, err
				}
			}
			attempt++
			// Every attempt — including the resubmission after a worker
			// death — is a "shard.attempt" span, so a killed worker shows
			// up on the stitched timeline as the same shard reappearing on
			// another peer with attempt >= 2.
			actx, att := tracing.Start(ctx, "shard.attempt",
				tracing.String("peer", peer), tracing.Int("attempt", attempt))
			data, err := c.runOn(actx, peer, canonical)
			if err == nil {
				att.SetAttr(tracing.Int("bytes", len(data)))
				att.End()
				return data, nil
			}
			att.SetError(err)
			att.End()
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			if errors.Is(err, errPermanent) {
				return nil, err
			}
			lastErr = err
			if c.logger != nil {
				c.logger.Warn("remote run failed, failing over",
					slog.String("key", key.Short()),
					slog.String("peer", peer),
					slog.String("error", err.Error()))
			}
		}
	}
	return nil, fmt.Errorf("cluster: %s failed on every peer after %d attempts: %w", key.Short(), attempt, lastErr)
}

// waitRetry sleeps out the backoff before a failover attempt: a worker's
// explicit Retry-After hint when the failure was backpressure, otherwise
// a deterministically jittered beat from a key-and-attempt-named stream
// (so concurrent shards of one campaign never thundering-herd one peer).
func (c *Coordinator) waitRetry(ctx context.Context, key service.Key, attempt int, lastErr error) error {
	delay := 100 * time.Millisecond
	var bp *backpressureError
	if errors.As(lastErr, &bp) && bp.retryAfter > 0 {
		delay = bp.retryAfter
	} else {
		rng := newJitterRNG(fmt.Sprintf("cluster/retry/%s/%d", key.Short(), attempt))
		delay += time.Duration(rng.Float64() * float64(delay))
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(delay):
		return nil
	}
}

// runOn submits the spec to one worker, polls it to a terminal state and
// fetches the result bytes. Transport errors mid-poll mean the worker
// died — the returned (retryable) error sends the caller to the next
// ring peer, whose run of the same content-addressed spec yields the
// same bytes. On context cancellation the remote job gets a best-effort
// DELETE so the fleet stops computing for nobody.
func (c *Coordinator) runOn(ctx context.Context, peer string, canonical []byte) ([]byte, error) {
	c.addLoad(peer, 1)
	defer c.addLoad(peer, -1)

	id, err := c.submitOn(ctx, peer, canonical)
	if err != nil {
		return nil, err
	}
	_, sc := tracing.FromContext(ctx)
	defer func() {
		if ctx.Err() != nil {
			c.cancelOn(peer, id, sc)
		}
	}()

	const maxPollFailures = 5
	failures := 0
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(remotePollInterval):
		}
		view, err := c.statusOn(ctx, peer, id)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			if failures++; failures >= maxPollFailures {
				return nil, fmt.Errorf("worker %s stopped answering for job %s: %w", peer, id, err)
			}
			continue
		}
		failures = 0
		switch view.State {
		case service.StateDone:
			return c.resultOn(ctx, peer, id)
		case service.StateFailed:
			return nil, fmt.Errorf("%w: job %s failed on %s: %s", errPermanent, id, peer, view.Error)
		case service.StateCanceled:
			return nil, fmt.Errorf("%w: job %s canceled on %s", errPermanent, id, peer)
		}
	}
}

// submitOn posts the spec to one worker and returns the accepted job ID.
func (c *Coordinator) submitOn(ctx context.Context, peer string, canonical []byte) (string, error) {
	ctx, cancel := context.WithTimeout(ctx, 15*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+"/v1/jobs", bytes.NewReader(canonical))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", fmt.Sprintf("c%06d", c.reqSeq.Add(1)))
	injectTrace(ctx, req)
	resp, err := c.client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return "", err
	}
	switch resp.StatusCode {
	case http.StatusAccepted:
		var accepted struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(body, &accepted); err != nil || accepted.ID == "" {
			return "", fmt.Errorf("worker %s returned an unreadable accept payload", peer)
		}
		return accepted.ID, nil
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		after := time.Second
		if secs, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && secs > 0 {
			after = time.Duration(secs) * time.Second
		}
		return "", &backpressureError{status: resp.StatusCode, retryAfter: after}
	case http.StatusBadRequest:
		return "", fmt.Errorf("%w: worker %s rejected the spec: %s", errPermanent, peer, body)
	default:
		return "", fmt.Errorf("worker %s answered submit with %d", peer, resp.StatusCode)
	}
}

// statusOn fetches one remote job's view.
func (c *Coordinator) statusOn(ctx context.Context, peer, id string) (*service.JobView, error) {
	ctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	injectTrace(ctx, req)
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("worker %s answered status with %d", peer, resp.StatusCode)
	}
	var view service.JobView
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&view); err != nil {
		return nil, err
	}
	return &view, nil
}

// resultOn fetches a finished remote job's raw result bytes.
func (c *Coordinator) resultOn(ctx context.Context, peer, id string) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, time.Minute)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, err
	}
	injectTrace(ctx, req)
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("worker %s answered result with %d", peer, resp.StatusCode)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 256<<20))
}

// cancelOn best-effort-cancels a remote job after the coordinator's own
// context died; it runs on a fresh short-lived context by design, so the
// span context of the dead attempt is carried explicitly.
func (c *Coordinator) cancelOn(peer, id string, sc tracing.SpanContext) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, peer+"/v1/jobs/"+id, nil)
	if err != nil {
		return
	}
	if sc.Valid() {
		tracing.Inject(req, sc)
	}
	if resp, err := c.client.Do(req); err == nil {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
	}
}
