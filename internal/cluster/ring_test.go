package cluster

import (
	"fmt"
	"testing"
)

func testPeers(n int) []string {
	peers := make([]string, n)
	for i := range peers {
		peers[i] = fmt.Sprintf("http://worker-%02d:8080", i)
	}
	return peers
}

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("a1b2c3d4%056d", i) // shaped like ConfigKey hex
	}
	return keys
}

// TestRingBalance pins key-distribution evenness for every fleet size the
// design targets (3–16 workers): with DefaultVNodes virtual nodes, the
// chi-square-style statistic sum((observed-mean)^2/mean) over 10k keys
// must stay small, and no single worker may carry more than twice its
// fair share.
func TestRingBalance(t *testing.T) {
	keys := testKeys(10000)
	for workers := 3; workers <= 16; workers++ {
		peers := testPeers(workers)
		ring := NewRing(peers, 0)
		counts := map[string]int{}
		for _, k := range keys {
			counts[ring.Owner(k)]++
		}
		if len(counts) != workers {
			t.Fatalf("%d workers: only %d received keys", workers, len(counts))
		}
		mean := float64(len(keys)) / float64(workers)
		chi2 := 0.0
		for _, p := range peers {
			d := float64(counts[p]) - mean
			chi2 += d * d / mean
			if float64(counts[p]) > 2*mean {
				t.Errorf("%d workers: %s owns %d keys, more than 2x the fair share %.0f", workers, p, counts[p], mean)
			}
		}
		// For an even ring the statistic is chi-square distributed with
		// workers-1 degrees of freedom, so values should sit near the
		// worker count; nKeys/20 = 500 leaves room for hash variance
		// while still failing badly skewed rings (a ring with one vnode
		// per peer scores in the thousands).
		if limit := float64(len(keys)) / 20; chi2 > limit {
			t.Errorf("%d workers: chi2 statistic %.1f exceeds %.1f (distribution too skewed)", workers, chi2, limit)
		}
	}
}

// TestRingMinimalMovementOnJoinLeave pins the consistent-hashing
// property the peer caches rely on: adding or removing one of k workers
// remaps only about 1/k of the key space.
func TestRingMinimalMovementOnJoinLeave(t *testing.T) {
	keys := testKeys(10000)
	for workers := 3; workers <= 16; workers++ {
		small := NewRing(testPeers(workers), 0)
		big := NewRing(testPeers(workers+1), 0) // join of worker-<workers>
		moved := 0
		for _, k := range keys {
			if small.Owner(k) != big.Owner(k) {
				moved++
			}
		}
		frac := float64(moved) / float64(len(keys))
		ideal := 1 / float64(workers+1)
		if frac > 2*ideal+0.05 {
			t.Errorf("join at %d workers moved %.3f of keys, ideal %.3f", workers, frac, ideal)
		}
		if moved == 0 {
			t.Errorf("join at %d workers moved no keys; new worker owns nothing", workers)
		}
		// Leave is the same comparison read in the other direction, and
		// every moved key must land on the joining worker (nothing
		// shuffles between survivors).
		joined := big.Peers()[workers]
		for _, k := range keys {
			if a, b := small.Owner(k), big.Owner(k); a != b && b != joined {
				t.Fatalf("key %s moved %s -> %s, not to the joining worker %s", k[:12], a, b, joined)
			}
		}
	}
}

// TestRingSequence pins the failover order contract: owner first, every
// peer exactly once, deterministic, order-insensitive to peer listing.
func TestRingSequence(t *testing.T) {
	peers := testPeers(5)
	ring := NewRing(peers, 0)
	for _, k := range testKeys(100) {
		seq := ring.Sequence(k)
		if len(seq) != len(peers) {
			t.Fatalf("sequence has %d peers, want %d", len(seq), len(peers))
		}
		if seq[0] != ring.Owner(k) {
			t.Fatalf("sequence starts at %s, owner is %s", seq[0], ring.Owner(k))
		}
		seen := map[string]bool{}
		for _, p := range seq {
			if seen[p] {
				t.Fatalf("peer %s appears twice in sequence", p)
			}
			seen[p] = true
		}
	}
	// Identical membership in a different listing order must agree.
	reversed := make([]string, len(peers))
	for i, p := range peers {
		reversed[len(peers)-1-i] = p
	}
	other := NewRing(reversed, 0)
	for _, k := range testKeys(100) {
		if ring.Owner(k) != other.Owner(k) {
			t.Fatalf("owner depends on peer listing order for key %s", k[:12])
		}
	}
}

// TestOwnerBounded pins the bounded-load policy: an overloaded owner is
// skipped, an all-overloaded ring falls back to the true owner, and a
// factor <= 1 disables the bound.
func TestOwnerBounded(t *testing.T) {
	peers := testPeers(4)
	ring := NewRing(peers, 0)
	key := testKeys(1)[0]
	owner := ring.Owner(key)
	next := ring.Sequence(key)[1]

	uniform := func(string) int { return 1 }
	if got := ring.OwnerBounded(key, uniform, 1.25); got != owner {
		t.Fatalf("uniform load moved the key to %s, owner is %s", got, owner)
	}
	hot := func(p string) int {
		if p == owner {
			return 100
		}
		return 0
	}
	if got := ring.OwnerBounded(key, hot, 1.25); got != next {
		t.Fatalf("overloaded owner: key went to %s, want next-in-sequence %s", got, next)
	}
	all := func(string) int { return 1000 }
	if got := ring.OwnerBounded(key, all, 1.25); got != owner {
		t.Fatalf("fully loaded ring must fall back to the owner, got %s", got)
	}
	if got := ring.OwnerBounded(key, hot, 1.0); got != owner {
		t.Fatalf("factor 1.0 must disable the bound, got %s", got)
	}
	if got := ring.OwnerBounded(key, nil, 1.25); got != owner {
		t.Fatalf("nil loadOf must disable the bound, got %s", got)
	}
}

// TestRingEmpty pins the degenerate cases.
func TestRingEmpty(t *testing.T) {
	ring := NewRing(nil, 0)
	if got := ring.Owner("k"); got != "" {
		t.Fatalf("empty ring owner = %q, want empty", got)
	}
	if seq := ring.Sequence("k"); len(seq) != 0 {
		t.Fatalf("empty ring sequence has %d peers", len(seq))
	}
	one := NewRing([]string{"http://only:1"}, 0)
	if got := one.Owner("k"); got != "http://only:1" {
		t.Fatalf("single-peer ring owner = %q", got)
	}
}
