package cluster

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// scrapeTTL bounds how often the coordinator re-scrapes the fleet: an
// aggregated /metrics render younger than this is served as-is, so a
// scrape storm against the coordinator costs one fan-out, not many.
// A variable so tests can shrink the window.
var scrapeTTL = 2 * time.Second

// aggSample is one aggregated series: a renamed metric plus its label
// pair. perWorker marks runtime-health series that carry a worker label
// and are never summed.
type aggSample struct {
	name      string // renamed family, e.g. sinet_cluster_admission_total
	labels    string // "{code=\"202\"}" or ""
	value     float64
	perWorker bool
}

// perWorkerFamily reports whether a worker metric family is process
// runtime health (obs.RegisterRuntimeMetrics): goroutines, heap, GC
// pauses, fds. Summing those across the fleet would hide exactly what
// they exist to show — WHICH worker is sick — so the aggregator
// re-exports them per worker under a worker="<peer>" label instead.
func perWorkerFamily(name string) bool {
	return strings.HasPrefix(name, "sinet_go_") || strings.HasPrefix(name, "sinet_process_")
}

// workerLabel injects worker="<peer>" into an existing label set ("" or
// "{k=\"v\",...}"), keeping the result valid exposition syntax.
func workerLabel(labels, peer string) string {
	esc := strings.NewReplacer("\\", "\\\\", "\"", "\\\"").Replace(peer)
	pair := `worker="` + esc + `"`
	if labels == "" {
		return "{" + pair + "}"
	}
	return "{" + pair + "," + labels[1:]
}

// parseSamples folds one worker's text-format scrape into sums: counter
// and gauge series are summed by (name, labels) across the fleet —
// counters because cluster totals are what dashboards want, gauges
// because the fleet's queue depth is the sum of the workers'. Histogram
// and untyped families are skipped: their bucket series cannot be
// re-rendered in bound order without reimplementing the client, and the
// per-worker scrape remains available for them. Worker families are
// renamed "sinet_X" → "sinet_cluster_X" so the coordinator's own serving
// metrics (it runs a service.Server too) can never collide with the
// fleet aggregate.
func parseSamples(r io.Reader, worker string, types map[string]string, sums map[string]*aggSample) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) == 4 {
				types[fields[2]] = fields[3]
			}
			continue
		}
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			continue
		}
		series, valText := line[:sp], line[sp+1:]
		value, err := strconv.ParseFloat(valText, 64)
		if err != nil {
			continue
		}
		name, labels := series, ""
		if b := strings.IndexByte(series, '{'); b >= 0 {
			name, labels = series[:b], series[b:]
		}
		switch types[name] {
		case "counter", "gauge":
		default:
			continue // histogram pieces, gauge funcs of unknown shape, untyped
		}
		renamed := "sinet_cluster_" + strings.TrimPrefix(name, "sinet_")
		if perWorkerFamily(name) {
			wl := workerLabel(labels, worker)
			sums[renamed+wl] = &aggSample{name: renamed, labels: wl, value: value, perWorker: true}
			continue
		}
		key := renamed + labels
		if s, ok := sums[key]; ok {
			s.value += value
		} else {
			sums[key] = &aggSample{name: renamed, labels: labels, value: value}
		}
	}
	return sc.Err()
}

// renderAgg writes the summed series in text exposition format, families
// sorted by name and series by label, with the worker-declared TYPE
// carried over.
func renderAgg(w io.Writer, types map[string]string, sums map[string]*aggSample) {
	keys := make([]string, 0, len(sums))
	for k := range sums {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	lastFamily := ""
	for _, k := range keys {
		s := sums[k]
		if s.name != lastFamily {
			orig := "sinet_" + strings.TrimPrefix(s.name, "sinet_cluster_")
			if s.perWorker {
				fmt.Fprintf(w, "# HELP %s Per-worker value of %s (not summed).\n", s.name, orig)
			} else {
				fmt.Fprintf(w, "# HELP %s Cluster-wide sum of %s across workers.\n", s.name, orig)
			}
			fmt.Fprintf(w, "# TYPE %s %s\n", s.name, types[orig])
			lastFamily = s.name
		}
		fmt.Fprintf(w, "%s%s %s\n", s.name, s.labels, strconv.FormatFloat(s.value, 'g', -1, 64))
	}
}

// scrapeCache memoizes the fleet aggregation for scrapeTTL.
type scrapeCache struct {
	mu       sync.Mutex
	rendered []byte
	at       time.Time
}

// aggregateMetrics scrapes every worker's /metrics concurrently and
// renders the summed, renamed series. Down workers are skipped — their
// absence shows on sinet_cluster_peer_up, and a partial sum beats no
// scrape at all.
func (c *Coordinator) aggregateMetrics() []byte {
	c.scrape.mu.Lock()
	defer c.scrape.mu.Unlock()
	if c.scrape.rendered != nil && time.Since(c.scrape.at) < scrapeTTL {
		return c.scrape.rendered
	}
	type result struct {
		body []byte
		ok   bool
	}
	results := make([]result, len(c.cfg.Peers))
	var wg sync.WaitGroup
	for i, peer := range c.cfg.Peers {
		wg.Add(1)
		go func(i int, peer string) {
			defer wg.Done()
			req, err := http.NewRequest(http.MethodGet, peer+"/metrics", nil)
			if err != nil {
				return
			}
			resp, err := c.client.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return
			}
			body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
			if err != nil {
				return
			}
			results[i] = result{body: body, ok: true}
		}(i, peer)
	}
	wg.Wait()
	types := map[string]string{}
	sums := map[string]*aggSample{}
	for i, res := range results {
		if res.ok {
			_ = parseSamples(strings.NewReader(string(res.body)), c.cfg.Peers[i], types, sums)
		}
	}
	var buf strings.Builder
	renderAgg(&buf, types, sums)
	c.scrape.rendered = []byte(buf.String())
	c.scrape.at = time.Now()
	return c.scrape.rendered
}
