package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sinet-io/sinet/internal/obs"
	"github.com/sinet-io/sinet/internal/service"
	"github.com/sinet-io/sinet/internal/tracing"
)

// Config parameterizes a Coordinator.
type Config struct {
	// Peers are the worker base URLs ("http://host:port") forming the
	// ring. Required, at least one.
	Peers []string
	// VNodes is the virtual-node count per peer (default DefaultVNodes).
	VNodes int
	// LoadFactor bounds per-peer load skew for ring placement (consistent
	// hashing with bounded loads); <= 1 disables the bound. Default 1.25.
	LoadFactor float64
	// ShardThreshold is the checkpointable-unit count above which a
	// campaign splits into shards fanned across workers (default 16;
	// < 0 disables splitting).
	ShardThreshold int
	// MaxShards caps the fan-out of one campaign (default: number of
	// peers, at least 2).
	MaxShards int
	// ProbeInterval is the per-peer readiness probe cadence (default 1s).
	ProbeInterval time.Duration
	// Client issues every request to workers (default: a plain client;
	// per-call deadlines come from contexts, so no global timeout).
	Client *http.Client
	// Metrics receives the cluster telemetry and the coordinator's own
	// serving metrics, and enables the aggregated /metrics endpoint.
	Metrics *obs.Registry
	// Logger receives structured coordination logs. Nil logs nothing.
	Logger *slog.Logger
	// Tracer records the coordinator-side spans of every job timeline —
	// proxy hops, shard fanout, per-shard failover attempts, checkpoint
	// folds — and is installed into the embedded server as well, so one
	// ring buffer holds the whole coordinator-side story. New propagates
	// W3C traceparent on every worker hop either way; nil just records
	// nothing locally.
	Tracer *tracing.Tracer
	// Local configures the coordinator's embedded service.Server, which
	// owns sharded jobs (queue, SSE, journal, retry budget, cache) and
	// serves everything itself when the whole fleet is unreachable. Its
	// Runner and CacheFill are installed by New.
	Local service.Config
}

// Coordinator fronts a fleet of sinetd workers: single campaigns are
// proxied to their key's ring owner (failing over when the owner is
// down), oversized campaigns are split into deterministic shards fanned
// across the fleet and merged byte-identically, caches fill from ring
// owners, and worker telemetry aggregates into one scrape. The
// coordinator embeds a full service.Server for the jobs it owns, so
// clients see one uniform jobs API wherever the work actually ran.
type Coordinator struct {
	cfg     Config
	ring    *Ring
	local   *service.Server
	localH  http.Handler
	client  *http.Client
	metrics *clusterMetrics
	logger  *slog.Logger
	tracer  *tracing.Tracer
	reqSeq  atomic.Uint64

	mu    sync.Mutex
	route map[string]routeEntry // proxied job ID -> owning peer + trace
	load  map[string]int        // peer -> in-flight coordinator-initiated work
	up    map[string]bool       // peer -> last probe verdict

	probeCtx    context.Context
	probeCancel context.CancelFunc
	probeWG     sync.WaitGroup

	scrape scrapeCache
}

// New builds and starts a coordinator: its embedded server's workers and
// its peer probes are running when New returns. Stop it with Shutdown.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Peers) == 0 {
		return nil, errors.New("cluster: at least one peer is required")
	}
	if cfg.LoadFactor == 0 {
		cfg.LoadFactor = 1.25
	}
	if cfg.ShardThreshold == 0 {
		cfg.ShardThreshold = 16
	}
	if cfg.MaxShards <= 0 {
		cfg.MaxShards = len(cfg.Peers)
		if cfg.MaxShards < 2 {
			cfg.MaxShards = 2
		}
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	c := &Coordinator{
		cfg:    cfg,
		ring:   NewRing(cfg.Peers, cfg.VNodes),
		client: cfg.Client,
		logger: cfg.Logger,
		tracer: cfg.Tracer,
		route:  map[string]routeEntry{},
		load:   map[string]int{},
		up:     map[string]bool{},
	}
	c.metrics = newClusterMetrics(cfg.Metrics, cfg.Peers)
	local := cfg.Local
	local.Runner = c.clusterRunner
	local.Metrics = cfg.Metrics
	local.Logger = cfg.Logger
	local.Tracer = cfg.Tracer
	local.CacheFill = c.peerCacheFill
	srv, err := service.New(local)
	if err != nil {
		return nil, err
	}
	c.local = srv
	c.localH = srv.Handler()
	c.probeCtx, c.probeCancel = context.WithCancel(context.Background())
	for _, peer := range cfg.Peers {
		c.probeWG.Add(1)
		go c.probe(peer)
	}
	return c, nil
}

// Shutdown stops the probes and drains the embedded server.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.probeCancel()
	c.probeWG.Wait()
	return c.local.Shutdown(ctx)
}

// probe loops one peer's readiness checks. The cadence is the configured
// interval plus a deterministic per-peer jitter (a named RNG stream, the
// PR 8 backoff pattern) so a large fleet's probes spread out instead of
// firing in lockstep.
func (c *Coordinator) probe(peer string) {
	defer c.probeWG.Done()
	rng := newJitterRNG("cluster/probe/" + peer)
	// The probe deadline floors at one second: a tight probe cadence
	// must not misread a merely slow worker as down.
	probeTimeout := c.cfg.ProbeInterval
	if probeTimeout < time.Second {
		probeTimeout = time.Second
	}
	for {
		start := time.Now()
		ctx, cancel := context.WithTimeout(c.probeCtx, probeTimeout)
		up := false
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/readyz", nil)
		if err == nil {
			if resp, rerr := c.client.Do(req); rerr == nil {
				_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
				resp.Body.Close()
				up = resp.StatusCode == http.StatusOK
			}
		}
		cancel()
		latency := time.Since(start)
		c.setUp(peer, up)
		c.metrics.observePeer(peer, up, latency.Milliseconds())
		delay := c.cfg.ProbeInterval + time.Duration(rng.Float64()*float64(c.cfg.ProbeInterval)/4)
		select {
		case <-c.probeCtx.Done():
			return
		case <-time.After(delay):
		}
	}
}

func (c *Coordinator) setUp(peer string, up bool) {
	c.mu.Lock()
	was, known := c.up[peer]
	c.up[peer] = up
	c.mu.Unlock()
	if c.logger != nil && (!known || was != up) {
		c.logger.Info("peer readiness changed", slog.String("peer", peer), slog.Bool("up", up))
	}
}

// peerUp reports the last probe verdict; an unprobed peer counts as up
// so a freshly started coordinator doesn't refuse traffic for one probe
// interval.
func (c *Coordinator) peerUp(peer string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	up, known := c.up[peer]
	return !known || up
}

func (c *Coordinator) readyPeerCount() int {
	n := 0
	for _, p := range c.cfg.Peers {
		if c.peerUp(p) {
			n++
		}
	}
	return n
}

// loadOf reports a peer's in-flight coordinator-initiated work — the
// bounded-load signal.
func (c *Coordinator) loadOf(peer string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.load[peer]
}

func (c *Coordinator) addLoad(peer string, d int) {
	c.mu.Lock()
	c.load[peer] += d
	c.mu.Unlock()
}

// candidates orders the key's failover sequence for dispatch: the
// bounded-load placement first, then the rest of the ring sequence with
// ready peers ahead of peers whose last probe failed. Down peers stay in
// the list — probes can be stale, and a last-resort attempt against a
// "down" peer beats refusing the job.
func (c *Coordinator) candidates(key service.Key) []string {
	seq := c.ring.Sequence(string(key))
	first := c.ring.OwnerBounded(string(key), c.loadOf, c.cfg.LoadFactor)
	ordered := make([]string, 0, len(seq))
	ordered = append(ordered, first)
	for pass := 0; pass < 2; pass++ {
		for _, p := range seq {
			if p == first {
				continue
			}
			if (pass == 0) == c.peerUp(p) {
				ordered = append(ordered, p)
			}
		}
	}
	return ordered
}

// routeEntry remembers where a proxied job went and which trace its
// timeline lives under, so status/result/cancel hops and stitched trace
// fetches follow the job to its worker.
type routeEntry struct {
	peer  string
	trace tracing.TraceID
}

// requestID returns the request's correlation ID: the client's own
// X-Request-Id when it sent one, else a coordinator-unique "c%06d".
func (c *Coordinator) requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-Id"); id != "" {
		return id
	}
	return fmt.Sprintf("c%06d", c.reqSeq.Add(1))
}

// --- embedded-runner path ----------------------------------------------

// clusterRunner executes the jobs the coordinator owns: campaigns big
// enough to shard fan out across the fleet and merge locally; everything
// else (including every job when the fleet is unreachable) runs through
// the plain library. Either way the bytes equal a direct run's.
func (c *Coordinator) clusterRunner(ctx context.Context, spec *service.JobSpec, rc service.RunContext) (any, error) {
	if spec.Shard == nil {
		if n := service.ShardCount(spec, c.cfg.ShardThreshold, c.cfg.MaxShards); n >= 2 && c.readyPeerCount() > 0 {
			return c.runSharded(ctx, spec, n, rc)
		}
	}
	return service.Run(ctx, spec, rc)
}

// runSharded is the scatter-gather: split the campaign, run every shard
// on its ring owner concurrently, fold the returned unit snapshots into
// one resume point, and re-run the parent locally from it — every unit
// restores, none recompute, and the merged bytes are pinned identical to
// an unsharded run. A shard whose worker dies mid-flight fails over
// through the ring inside runRemote, so killing a worker mid-campaign
// delays the job rather than corrupting or losing it.
func (c *Coordinator) runSharded(ctx context.Context, spec *service.JobSpec, n int, rc service.RunContext) (any, error) {
	shards, err := service.SplitSpec(spec, n)
	if err != nil {
		return nil, err
	}
	// The fanout span nests under the owning job's attempt span (the
	// embedded server injected it into ctx); each shard gets a child span,
	// and failover attempts get their own spans inside runRemote — so a
	// worker death shows up on the timeline as a shard with attempt >= 2.
	ctx, fan := tracing.Start(ctx, "fanout", tracing.Int("shards", n), tracing.String("kind", spec.Kind))
	defer fan.End()
	c.metrics.observeShardJob(n)
	if c.logger != nil {
		c.logger.Info("campaign sharded", slog.String("kind", spec.Kind), slog.Int("shards", n))
	}
	var (
		progressMu sync.Mutex
		done       int
	)
	report := func() {
		if rc.Progress == nil {
			return
		}
		progressMu.Lock()
		done++
		rc.Progress("fanout", done, n)
		progressMu.Unlock()
	}
	blobs := make([][]byte, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sctx, sp := tracing.Start(ctx, "shard", tracing.Int("shard", i), tracing.Int("count", n))
			defer sp.End()
			key, kerr := service.ConfigKey(shards[i])
			if kerr != nil {
				sp.SetError(kerr)
				errs[i] = kerr
				return
			}
			sp.SetAttr(tracing.String("key", key.Short()))
			blobs[i], errs[i] = c.runRemote(sctx, shards[i], key)
			if errs[i] != nil {
				sp.SetError(errs[i])
				return
			}
			sp.SetAttr(tracing.Int("bytes", len(blobs[i])))
			report()
		}(i)
	}
	wg.Wait()
	for i, e := range errs {
		if e != nil {
			err := fmt.Errorf("cluster: shard %d/%d: %w", i, n, e)
			fan.SetError(err)
			return nil, err
		}
	}
	_, fold := tracing.Start(ctx, "checkpoint.fold", tracing.Int("shards", n))
	folded, err := service.FoldShards(blobs)
	if err != nil {
		fold.SetError(err)
		fold.End()
		fan.SetError(err)
		return nil, err
	}
	fold.SetAttr(tracing.Int("units", folded.Len()))
	fold.End()
	mctx, merge := tracing.Start(ctx, "merge", tracing.Int("units", folded.Len()))
	res, err := service.Run(mctx, spec, service.RunContext{
		Progress:   rc.Progress,
		Checkpoint: rc.Checkpoint,
		Resume:     folded,
	})
	if err != nil {
		merge.SetError(err)
		fan.SetError(err)
	}
	merge.End()
	return res, err
}

// peerCacheFill is the embedded server's CacheFill: on a local miss, ask
// the key's ring owner whether it already holds the bytes. Lookup-only
// (the owner's /v1/cache never computes), so fills can't cascade.
func (c *Coordinator) peerCacheFill(ctx context.Context, key service.Key) ([]byte, bool) {
	owner := c.ring.Owner(string(key))
	if owner == "" || !c.peerUp(owner) {
		return nil, false
	}
	data, ok := peerCacheLookup(ctx, c.client, owner, key)
	if ok {
		c.metrics.observePeerFill()
	}
	return data, ok
}

// peerCacheLookup fetches a key's cached bytes from one peer, if present.
func peerCacheLookup(ctx context.Context, client *http.Client, peer string, key service.Key) ([]byte, bool) {
	ctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	u := peer + "/v1/cache?key=" + url.QueryEscape(string(key))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, false
	}
	injectTrace(ctx, req)
	resp, err := client.Do(req)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return nil, false
	}
	return data, true
}

// PeerCacheFill builds a worker-side service.Config.CacheFill: on a
// local miss the worker consults the key's owner on the given ring,
// skipping itself (self is the advertised base URL as listed in peers).
func PeerCacheFill(ring *Ring, self string, client *http.Client) func(context.Context, service.Key) ([]byte, bool) {
	if client == nil {
		client = &http.Client{}
	}
	return func(ctx context.Context, key service.Key) ([]byte, bool) {
		owner := ring.Owner(string(key))
		if owner == "" || owner == self {
			return nil, false
		}
		return peerCacheLookup(ctx, client, owner, key)
	}
}

// --- HTTP layer ---------------------------------------------------------

// Handler returns the coordinator's HTTP API — the same surface as a
// worker's, plus cluster-wide stats and aggregated metrics:
//
//	POST   /v1/jobs              submit: sharded/fallback jobs run on the
//	                             embedded server, the rest proxy to the
//	                             key's ring owner with failover
//	GET    /v1/jobs/{id}[...]    status/result/events proxied to the job's
//	                             worker; coordinator-owned jobs serve local
//	DELETE /v1/jobs/{id}         cancel, routed the same way
//	GET    /v1/jobs/{id}/trace   stitched distributed timeline (see trace.go)
//	GET    /debug/traces         coordinator-side recent root spans
//	GET    /v1/stats             cluster stats (peers, load, local server)
//	GET    /v1/cache             embedded server's cache lookup
//	GET    /healthz, /readyz     coordinator liveness/readiness
//	GET    /metrics              own registry + summed worker counters
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", c.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", c.proxyJob)
	mux.HandleFunc("GET /v1/jobs/{id}/result", c.proxyJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", c.proxyJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", c.proxyJob)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", c.handleJobTrace)
	mux.HandleFunc("GET /debug/traces", c.localH.ServeHTTP)
	mux.HandleFunc("GET /v1/stats", c.handleStats)
	mux.HandleFunc("GET /v1/cache", c.localH.ServeHTTP)
	mux.HandleFunc("GET /healthz", c.localH.ServeHTTP)
	mux.HandleFunc("GET /readyz", c.localH.ServeHTTP)
	if c.cfg.Metrics != nil {
		mux.HandleFunc("GET /metrics", c.handleMetrics)
	}
	return mux
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec service.JobSpec
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode spec: %w", err))
		return
	}
	key, err := service.ConfigKey(&spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	canonical, err := json.Marshal(&spec)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	// Sharded campaigns are coordinator-owned (the embedded server's
	// runner scatters and gathers); so is everything when no worker is
	// ready — the coordinator then simply computes itself. Single
	// campaigns with a live fleet proxy to their ring owner.
	wantsShard := service.ShardCount(&spec, c.cfg.ShardThreshold, c.cfg.MaxShards) >= 2
	if wantsShard || c.readyPeerCount() == 0 {
		c.serveLocal(w, r, canonical)
		return
	}
	c.proxySubmit(w, r, key, canonical)
}

// serveLocal replays the (canonicalized) submission into the embedded
// server's own handler, so admission control, Retry-After hints and
// response shapes stay identical to a worker's.
func (c *Coordinator) serveLocal(w http.ResponseWriter, r *http.Request, canonical []byte) {
	r2 := r.Clone(r.Context())
	r2.Body = io.NopCloser(bytes.NewReader(canonical))
	r2.ContentLength = int64(len(canonical))
	c.localH.ServeHTTP(w, r2)
}

// proxySubmit forwards a submission along the key's failover sequence.
// Backpressure (429/503) from a worker is relayed as-is — including its
// Retry-After hint, which tells the client when that worker will take
// the job — rather than failed over, because a full owner queue is the
// signal to wait, not to stampede the next peer.
func (c *Coordinator) proxySubmit(w http.ResponseWriter, r *http.Request, key service.Key, canonical []byte) {
	parent := tracing.FromRequest(r)
	reqID := c.requestID(r)
	w.Header().Set("X-Request-Id", reqID)
	for i, peer := range c.candidates(key) {
		// Each forwarding attempt is its own span, child of the client's
		// traceparent (or a fresh trace): the worker's "job" root nests
		// under it, so the stitched timeline shows the proxy hop. When the
		// coordinator's tracer is off the client's traceparent still
		// passes through untouched.
		sp := c.tracer.StartChild(parent, "proxy.submit", tracing.String("peer", peer), tracing.String("key", key.Short()))
		hop := sp.Context()
		if !hop.Valid() {
			hop = parent
		}
		ctx, cancel := context.WithTimeout(r.Context(), 15*time.Second)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+"/v1/jobs", bytes.NewReader(canonical))
		if err != nil {
			cancel()
			sp.SetError(err)
			sp.End()
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Request-Id", reqID)
		if hop.Valid() {
			tracing.Inject(req, hop)
		}
		resp, err := c.client.Do(req)
		if err != nil {
			cancel()
			sp.SetError(err)
			sp.End()
			if i > 0 {
				c.metrics.observeFailover()
			}
			if c.logger != nil {
				c.logger.Warn("submit proxy failed, trying next peer",
					slog.String("peer", peer), slog.String("error", err.Error()))
			}
			continue
		}
		body, rerr := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
		resp.Body.Close()
		cancel()
		sp.SetAttr(tracing.Int("status", resp.StatusCode))
		if rerr != nil {
			sp.SetError(rerr)
			sp.End()
			continue
		}
		sp.End()
		if resp.StatusCode == http.StatusAccepted {
			var accepted struct {
				ID string `json:"id"`
			}
			if json.Unmarshal(body, &accepted) == nil && accepted.ID != "" {
				c.mu.Lock()
				c.route[accepted.ID] = routeEntry{peer: peer, trace: hop.TraceID}
				c.mu.Unlock()
			}
		}
		relay(w, resp, body)
		c.metrics.observeProxied(resp.StatusCode)
		return
	}
	c.metrics.observeProxied(http.StatusBadGateway)
	writeError(w, http.StatusBadGateway, errors.New("cluster: no worker reachable for submission"))
}

// proxyJob routes a status/result/events/cancel request: jobs the
// coordinator proxied go to their recorded worker, everything else —
// coordinator-owned jobs and unknown IDs — to the embedded server.
func (c *Coordinator) proxyJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	c.mu.Lock()
	ent, proxied := c.route[id]
	c.mu.Unlock()
	if !proxied {
		c.localH.ServeHTTP(w, r)
		return
	}
	u := ent.peer + r.URL.Path
	if r.URL.RawQuery != "" {
		u += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, u, nil)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	reqID := c.requestID(r)
	w.Header().Set("X-Request-Id", reqID)
	req.Header.Set("X-Request-Id", reqID)
	if sc := tracing.FromRequest(r); sc.Valid() {
		tracing.Inject(req, sc)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		c.metrics.observeProxied(http.StatusBadGateway)
		writeError(w, http.StatusBadGateway, fmt.Errorf("cluster: worker %s unreachable: %w", ent.peer, err))
		return
	}
	defer resp.Body.Close()
	c.metrics.observeProxied(resp.StatusCode)
	copyHeader(w, resp)
	w.WriteHeader(resp.StatusCode)
	streamBody(w, resp.Body)
}

// relay writes an already-read upstream response downstream, preserving
// status, content type and pushback hints.
func relay(w http.ResponseWriter, resp *http.Response, body []byte) {
	copyHeader(w, resp)
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(body)
}

func copyHeader(w http.ResponseWriter, resp *http.Response) {
	for _, h := range []string{"Content-Type", "Retry-After", "Cache-Control", "Connection", "X-Request-Id"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
}

// streamBody copies with per-chunk flushes so proxied SSE event streams
// reach the client as they happen, not when the stream closes.
func streamBody(w http.ResponseWriter, body io.Reader) {
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32*1024)
	for {
		n, err := body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// PeerStatus is one worker's view in cluster stats.
type PeerStatus struct {
	Peer string `json:"peer"`
	Up   bool   `json:"up"`
	Load int    `json:"load"`
}

// Stats is the coordinator's /v1/stats payload.
type Stats struct {
	Peers []PeerStatus  `json:"peers"`
	Local service.Stats `json:"local"`
}

func (c *Coordinator) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := Stats{Local: c.local.Stats()}
	for _, p := range c.cfg.Peers {
		st.Peers = append(st.Peers, PeerStatus{Peer: p, Up: c.peerUp(p), Load: c.loadOf(p)})
	}
	writeJSON(w, http.StatusOK, st)
}

// handleMetrics renders the coordinator's own registry followed by the
// fleet aggregate (summed, renamed worker counters — see scrape.go).
func (c *Coordinator) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = c.cfg.Metrics.WritePrometheus(w)
	_, _ = w.Write(c.aggregateMetrics())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
