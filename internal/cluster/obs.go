package cluster

import (
	"strconv"

	"github.com/sinet-io/sinet/internal/obs"
)

// clusterMetrics is the coordinator's own telemetry (the aggregated
// worker counters are rendered separately, see scrape.go). Nil — no
// registry configured — makes every observe method a no-op.
type clusterMetrics struct {
	peerUp      *obs.GaugeVec   // 1 when the peer's last probe succeeded
	peerLatency *obs.GaugeVec   // last probe round trip, milliseconds
	proxied     *obs.CounterVec // proxied requests by upstream response code
	shardJobs   *obs.Counter    // campaigns split across the fleet
	shardFanout *obs.Counter    // shard sub-jobs dispatched
	failovers   *obs.Counter    // requests moved past a dead owner
	peerFills   *obs.Counter    // cache fills answered by a ring owner
}

// newClusterMetrics registers the cluster metrics and pre-creates every
// known series — peers and response codes — so the very first scrape
// already exposes them at zero.
func newClusterMetrics(r *obs.Registry, peers []string) *clusterMetrics {
	if r == nil {
		return nil
	}
	m := &clusterMetrics{
		peerUp:      r.GaugeVec("sinet_cluster_peer_up", "1 when the worker's last readiness probe succeeded, else 0.", "peer"),
		peerLatency: r.GaugeVec("sinet_cluster_peer_latency_ms", "Round-trip time of the worker's last readiness probe, in milliseconds.", "peer"),
		proxied:     r.CounterVec("sinet_cluster_proxied_total", "Requests proxied to workers, by upstream response code.", "code"),
		shardJobs:   r.Counter("sinet_cluster_shard_jobs_total", "Campaigns split into shards and fanned across the fleet."),
		shardFanout: r.Counter("sinet_cluster_shard_fanout_total", "Shard sub-jobs dispatched to workers."),
		failovers:   r.Counter("sinet_cluster_failovers_total", "Requests failed over past an unresponsive ring owner."),
		peerFills:   r.Counter("sinet_cluster_peer_cache_lookups_total", "Cache lookups answered by a key's ring owner."),
	}
	for _, p := range peers {
		m.peerUp.With(p).Set(0)
		m.peerLatency.With(p).Set(0)
	}
	for _, code := range []int{202, 404, 429, 500, 502, 503} {
		m.proxied.With(strconv.Itoa(code))
	}
	return m
}

func (m *clusterMetrics) observePeer(peer string, up bool, latencyMS int64) {
	if m == nil {
		return
	}
	v := int64(0)
	if up {
		v = 1
	}
	m.peerUp.With(peer).Set(v)
	m.peerLatency.With(peer).Set(latencyMS)
}

func (m *clusterMetrics) observeProxied(code int) {
	if m != nil {
		m.proxied.With(strconv.Itoa(code)).Inc()
	}
}

func (m *clusterMetrics) observeShardJob(shards int) {
	if m != nil {
		m.shardJobs.Inc()
		m.shardFanout.Add(uint64(shards))
	}
}

func (m *clusterMetrics) observeFailover() {
	if m != nil {
		m.failovers.Inc()
	}
}

func (m *clusterMetrics) observePeerFill() {
	if m != nil {
		m.peerFills.Inc()
	}
}
