package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"github.com/sinet-io/sinet/internal/obs"
	"github.com/sinet-io/sinet/internal/service"
	"github.com/sinet-io/sinet/internal/tracing"
)

// tracedCluster is startCluster with a tracer in every process: one per
// worker (named worker:<i>) and one on the coordinator.
func tracedCluster(t *testing.T, n, threshold int) *testCluster {
	t.Helper()
	return startCluster(t, workerOpts{
		n:         n,
		threshold: threshold,
		cfg: func(i int, c *service.Config) {
			c.Tracer = tracing.New(fmt.Sprintf("worker:%d", i), 0)
		},
		coordCfg: func(c *Config) {
			c.Tracer = tracing.New("coordinator", 0)
		},
	})
}

func fetchJobTraceJSON(t *testing.T, baseURL, id string) service.JobTrace {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch: %d %s", resp.StatusCode, raw)
	}
	var jt service.JobTrace
	if err := json.Unmarshal(raw, &jt); err != nil {
		t.Fatalf("decode %s: %v", raw, err)
	}
	return jt
}

// TestClusterStitchedShardTrace runs a sharded campaign and asserts the
// coordinator's trace endpoint assembles one timeline: a single trace
// ID whose spans come from the coordinator (job, fanout, shards, fold,
// merge) AND from at least two distinct workers (their shard jobs).
func TestClusterStitchedShardTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a sharded campaign across an in-process fleet")
	}
	tc := tracedCluster(t, 3, 3)
	spec := clusterGoldenSpecs["coverage"] // 4 latitudes >= threshold 3: shards
	id := submitJob(t, tc.coordTS.URL, spec)
	awaitResult(t, tc.coordTS.URL, id)

	jt := fetchJobTraceJSON(t, tc.coordTS.URL, id)
	if jt.TraceID == "" {
		t.Fatal("stitched trace has no trace ID")
	}
	services := map[string]bool{}
	names := map[string]bool{}
	for _, sp := range jt.Spans {
		if sp.TraceID != jt.TraceID {
			t.Fatalf("span %s/%s on trace %s, want single trace %s", sp.Service, sp.Name, sp.TraceID, jt.TraceID)
		}
		services[sp.Service] = true
		names[sp.Name] = true
	}
	if !services["coordinator"] {
		t.Errorf("no coordinator spans in stitched trace: %v", services)
	}
	nWorkers := 0
	for svc := range services {
		if strings.HasPrefix(svc, "worker:") {
			nWorkers++
		}
	}
	if nWorkers < 2 {
		t.Errorf("stitched trace covers %d workers, want >= 2: %v", nWorkers, services)
	}
	for _, want := range []string{"job", "fanout", "shard", "shard.attempt", "checkpoint.fold", "merge"} {
		if !names[want] {
			t.Errorf("stitched trace missing %q span: %v", want, names)
		}
	}
}

// TestClusterProxiedTrace submits a small (unsharded) campaign, which
// the coordinator proxies to a ring worker, and asserts the stitched
// timeline shows the proxy hop and the worker's own lifecycle under one
// trace.
func TestClusterProxiedTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a small campaign across an in-process fleet")
	}
	tc := tracedCluster(t, 2, 100) // threshold high: nothing shards
	id := submitJob(t, tc.coordTS.URL, clusterGoldenSpecs["passive"])
	awaitResult(t, tc.coordTS.URL, id)

	jt := fetchJobTraceJSON(t, tc.coordTS.URL, id)
	names := map[string]bool{}
	services := map[string]bool{}
	for _, sp := range jt.Spans {
		if sp.TraceID != jt.TraceID {
			t.Fatalf("span %s on trace %s, want %s", sp.Name, sp.TraceID, jt.TraceID)
		}
		names[sp.Name] = true
		services[sp.Service] = true
	}
	if !names["proxy.submit"] || !services["coordinator"] {
		t.Errorf("proxy hop missing from timeline: names %v services %v", names, services)
	}
	if !names["job"] || !names["attempt"] {
		t.Errorf("worker lifecycle missing from timeline: %v", names)
	}
}

// TestClusterScrapeRuntimePerWorker pins the per-worker re-export: a
// worker's runtime health gauges appear on the coordinator scrape under
// a worker label, one series per peer, never summed into one number.
func TestClusterScrapeRuntimePerWorker(t *testing.T) {
	tc := startCluster(t, workerOpts{
		n: 2,
		cfg: func(i int, c *service.Config) {
			c.Metrics = obs.New()
			obs.RegisterRuntimeMetrics(c.Metrics)
		},
	})
	resp, err := http.Get(tc.coordTS.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	out := string(raw)
	for i := range tc.servers {
		want := fmt.Sprintf(`sinet_cluster_go_goroutines{worker="%s"}`, tc.servers[i].URL)
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing per-worker series %s:\n%s", want, out)
		}
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "sinet_cluster_go_goroutines ") {
			t.Errorf("goroutine gauge was summed across workers: %s", line)
		}
	}
}
