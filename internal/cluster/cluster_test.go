package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/sinet-io/sinet/internal/obs"
	"github.com/sinet-io/sinet/internal/service"
)

// clusterGoldenSpecs mirrors the service layer's shard golden set: one
// small campaign per kind. passive (3 units) stays under the test
// threshold and exercises the proxy path; the rest shard.
var clusterGoldenSpecs = map[string]string{
	"passive":  `{"kind":"passive","passive":{"seed":11,"sites":["HK","SYD","LDN"],"constellations":["Tianqi"]}}`,
	"active":   `{"kind":"active","active":{"seed":5,"nodes":2}}`,
	"coverage": `{"kind":"coverage","coverage":{"latitudes_deg":[-30,0,30,60]}}`,
	"backhaul": `{"kind":"backhaul"}`,
	"routing":  `{"kind":"routing","routing":{"seed":3,"packet_interval":"2h"}}`,
}

// testCluster is an in-process fleet: real service.Servers behind real
// (httptest) listeners, fronted by a real Coordinator.
type testCluster struct {
	workers  []*service.Server
	servers  []*httptest.Server
	coord    *Coordinator
	coordTS  *httptest.Server
	registry *obs.Registry
}

type workerOpts struct {
	n         int
	runner    func(i int) service.RunnerFunc
	cfg       func(i int, c *service.Config)
	coordCfg  func(c *Config)
	threshold int
}

func startCluster(t *testing.T, o workerOpts) *testCluster {
	t.Helper()
	tc := &testCluster{registry: obs.New()}
	peers := make([]string, o.n)
	for i := 0; i < o.n; i++ {
		cfg := service.Config{Workers: 2, QueueDepth: 32, CacheBytes: 1 << 20}
		if o.runner != nil {
			cfg.Runner = o.runner(i)
		}
		if o.cfg != nil {
			o.cfg(i, &cfg)
		}
		srv, err := service.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		tc.workers = append(tc.workers, srv)
		tc.servers = append(tc.servers, ts)
		peers[i] = ts.URL
	}
	threshold := o.threshold
	if threshold == 0 {
		threshold = 3
	}
	ccfg := Config{
		Peers:          peers,
		ShardThreshold: threshold,
		MaxShards:      3,
		ProbeInterval:  25 * time.Millisecond,
		Metrics:        tc.registry,
		Local:          service.Config{Workers: 2, QueueDepth: 32},
	}
	if o.coordCfg != nil {
		o.coordCfg(&ccfg)
	}
	coord, err := New(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	tc.coord = coord
	tc.coordTS = httptest.NewServer(coord.Handler())
	t.Cleanup(func() {
		tc.coordTS.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_ = coord.Shutdown(ctx)
		cancel()
		for i, ts := range tc.servers {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
			_ = tc.workers[i].Shutdown(ctx)
			cancel()
		}
	})
	return tc
}

// submitJob posts a spec and returns the accepted job ID.
func submitJob(t *testing.T, baseURL, specJSON string) string {
	t.Helper()
	resp, err := http.Post(baseURL+"/v1/jobs", "application/json", strings.NewReader(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit to %s: %d %s", baseURL, resp.StatusCode, body)
	}
	var accepted struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &accepted); err != nil || accepted.ID == "" {
		t.Fatalf("unreadable accept payload: %s", body)
	}
	return accepted.ID
}

// awaitResult polls a job to StateDone and returns its result bytes.
func awaitResult(t *testing.T, baseURL, id string) []byte {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(baseURL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var view service.JobView
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch view.State {
		case service.StateDone:
			rr, err := http.Get(baseURL + "/v1/jobs/" + id + "/result")
			if err != nil {
				t.Fatal(err)
			}
			defer rr.Body.Close()
			data, err := io.ReadAll(rr.Body)
			if err != nil || rr.StatusCode != http.StatusOK {
				t.Fatalf("result fetch: %d %v", rr.StatusCode, err)
			}
			return data
		case service.StateFailed, service.StateCanceled:
			t.Fatalf("job %s reached %s: %s", id, view.State, view.Error)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return nil
}

// directGolden runs the spec through the plain library.
func directGolden(t *testing.T, specJSON string) []byte {
	t.Helper()
	var spec service.JobSpec
	if err := json.Unmarshal([]byte(specJSON), &spec); err != nil {
		t.Fatal(err)
	}
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	res, err := service.Run(context.Background(), &spec, service.RunContext{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := service.MarshalResult(res)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestClusterByteIdentity is the tentpole pin: for every job kind, the
// bytes served through the coordinator (sharded across the fleet or
// proxied to a ring owner) equal the bytes a single worker serves equal
// the bytes of a direct library run.
func TestClusterByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full campaigns across an in-process fleet")
	}
	tc := startCluster(t, workerOpts{n: 3})
	for kind, specJSON := range clusterGoldenSpecs {
		t.Run(kind, func(t *testing.T) {
			golden := directGolden(t, specJSON)
			viaWorker := awaitResult(t, tc.servers[0].URL, submitJob(t, tc.servers[0].URL, specJSON))
			if !bytes.Equal(viaWorker, golden) {
				t.Fatalf("single-worker bytes (%d) differ from direct run (%d)", len(viaWorker), len(golden))
			}
			viaCoord := awaitResult(t, tc.coordTS.URL, submitJob(t, tc.coordTS.URL, specJSON))
			if !bytes.Equal(viaCoord, golden) {
				t.Fatalf("coordinator bytes (%d) differ from direct run (%d)", len(viaCoord), len(golden))
			}
		})
	}
	// The sharded kinds must actually have fanned out: at least two
	// workers simulated something.
	busy := 0
	for _, w := range tc.workers {
		if w.Stats().Simulations > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("shard fan-out touched %d workers, want >= 2", busy)
	}
}

// TestClusterProxiedSSE pins that event streams of proxied jobs flow
// through the coordinator: a late subscriber to a finished job receives
// its terminal snapshot event.
func TestClusterProxiedSSE(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full campaign")
	}
	tc := startCluster(t, workerOpts{n: 2})
	spec := clusterGoldenSpecs["passive"] // under threshold: proxied
	id := submitJob(t, tc.coordTS.URL, spec)
	awaitResult(t, tc.coordTS.URL, id)
	resp, err := http.Get(tc.coordTS.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `"state":"done"`) {
		t.Fatalf("terminal snapshot event missing from proxied stream: %s", body)
	}
}

// TestClusterWorkerDeathFailover is the availability pin: a worker that
// goes dark while holding a shard costs a failover, not the campaign.
// One worker wedges on the first shard-0 attempt; the test kills that
// worker's listener mid-job and the coordinator re-runs the shard on a
// surviving peer, finishing with bytes identical to a direct run.
func TestClusterWorkerDeathFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full campaigns and waits out failover backoffs")
	}
	var wedged atomic.Bool
	var wedgedIdx atomic.Int32
	gotWedge := make(chan struct{})
	tc := startCluster(t, workerOpts{
		n: 2,
		runner: func(i int) service.RunnerFunc {
			return func(ctx context.Context, spec *service.JobSpec, rc service.RunContext) (any, error) {
				if spec.Shard != nil && spec.Shard.Index == 0 && wedged.CompareAndSwap(false, true) {
					wedgedIdx.Store(int32(i))
					close(gotWedge)
					<-ctx.Done() // hold the shard hostage until the listener dies
					return nil, ctx.Err()
				}
				return service.Run(ctx, spec, rc)
			}
		},
	})
	spec := clusterGoldenSpecs["coverage"] // 4 units, threshold 3: 2 shards
	golden := directGolden(t, spec)
	id := submitJob(t, tc.coordTS.URL, spec)

	select {
	case <-gotWedge:
	case <-time.After(30 * time.Second):
		t.Fatal("no worker ever picked up shard 0")
	}
	// Kill the wedged worker's listener: its status polls start failing
	// and the coordinator must move the shard to the survivor.
	tc.servers[wedgedIdx.Load()].CloseClientConnections()
	tc.servers[wedgedIdx.Load()].Close()

	data := awaitResult(t, tc.coordTS.URL, id)
	if !bytes.Equal(data, golden) {
		t.Fatalf("post-failover bytes (%d) differ from direct run (%d)", len(data), len(golden))
	}
	scrape := scrapeOwn(t, tc)
	if !strings.Contains(scrape, "sinet_cluster_failovers_total") {
		t.Fatal("failover metric missing from scrape")
	}
	for _, line := range strings.Split(scrape, "\n") {
		if strings.HasPrefix(line, "sinet_cluster_failovers_total ") && strings.HasSuffix(line, " 0") {
			t.Fatalf("failover not counted: %s", line)
		}
	}
}

func scrapeOwn(t *testing.T, tc *testCluster) string {
	t.Helper()
	var buf bytes.Buffer
	if err := tc.registry.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestClusterRetryAfterPropagation is the regression pin for pushback
// hints: when the owning worker rejects with 429, the coordinator's
// response carries that worker's Retry-After value — not an invented
// constant.
func TestClusterRetryAfterPropagation(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	tc := startCluster(t, workerOpts{
		n: 1,
		runner: func(int) service.RunnerFunc {
			return func(ctx context.Context, spec *service.JobSpec, rc service.RunContext) (any, error) {
				select {
				case <-release:
				case <-ctx.Done():
				}
				return nil, ctx.Err()
			}
		},
		cfg: func(_ int, c *service.Config) {
			c.Workers = 1
			c.QueueDepth = 1
			c.RetryAfter = 7 * time.Second
		},
	})
	// Fill the worker: one job running (blocked), one occupying the
	// single queue slot.
	submitJob(t, tc.servers[0].URL, `{"kind":"passive","passive":{"seed":1,"sites":["HK"],"constellations":["Tianqi"]}}`)
	deadline := time.Now().Add(10 * time.Second)
	for tc.workers[0].Stats().QueueDepth == 0 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		resp, err := http.Post(tc.servers[0].URL+"/v1/jobs", "application/json",
			strings.NewReader(`{"kind":"passive","passive":{"seed":2,"sites":["HK"],"constellations":["Tianqi"]}}`))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		time.Sleep(10 * time.Millisecond)
	}
	// A third spec proxied through the coordinator must bounce with the
	// worker's own hint.
	resp, err := http.Post(tc.coordTS.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"passive","passive":{"seed":3,"sites":["HK"],"constellations":["Tianqi"]}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("coordinator answered %d (%s), want 429", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Fatalf("coordinator Retry-After = %q, want the worker's \"7\"", got)
	}
}

// TestPeerCacheFill pins the peer-filled cache: a worker missing a key
// locally consults the key's ring owner and finishes the job with the
// owner's bytes instead of recomputing.
func TestPeerCacheFill(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full campaign")
	}
	// Two workers whose CacheFill consults the other via a shared ring.
	// The ring needs both URLs before the servers exist, so the fill
	// function resolves through a late-bound pointer.
	var ring atomic.Pointer[Ring]
	urls := make([]string, 2)
	var workers []*service.Server
	var servers []*httptest.Server
	for i := 0; i < 2; i++ {
		i := i
		srv, err := service.New(service.Config{
			Workers: 2, QueueDepth: 8, CacheBytes: 1 << 20,
			CacheFill: func(ctx context.Context, key service.Key) ([]byte, bool) {
				r := ring.Load()
				if r == nil {
					return nil, false
				}
				return PeerCacheFill(r, urls[i], nil)(ctx, key)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		workers = append(workers, srv)
		servers = append(servers, ts)
		urls[i] = ts.URL
		t.Cleanup(func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
			_ = srv.Shutdown(ctx)
			cancel()
		})
	}
	ring.Store(NewRing(urls, 0))

	// Find a spec whose ring owner is worker 0 (ports are random, so
	// probe seeds until one lands there).
	specFor := func(seed int) string {
		return fmt.Sprintf(`{"kind":"passive","passive":{"seed":%d,"sites":["HK"],"constellations":["Tianqi"]}}`, seed)
	}
	chosen := ""
	for seed := 1; seed < 64; seed++ {
		var spec service.JobSpec
		if err := json.Unmarshal([]byte(specFor(seed)), &spec); err != nil {
			t.Fatal(err)
		}
		key, err := service.ConfigKey(&spec)
		if err != nil {
			t.Fatal(err)
		}
		if ring.Load().Owner(string(key)) == urls[0] {
			chosen = specFor(seed)
			break
		}
	}
	if chosen == "" {
		t.Fatal("no probe seed hashed onto worker 0")
	}

	ownerBytes := awaitResult(t, urls[0], submitJob(t, urls[0], chosen))
	if workers[0].Stats().Simulations != 1 {
		t.Fatalf("owner simulations = %d, want 1", workers[0].Stats().Simulations)
	}
	peerBytes := awaitResult(t, urls[1], submitJob(t, urls[1], chosen))
	if !bytes.Equal(peerBytes, ownerBytes) {
		t.Fatal("peer-filled bytes differ from the owner's")
	}
	if got := workers[1].Stats().Simulations; got != 0 {
		t.Fatalf("peer simulated %d campaigns, want 0 (cache fill)", got)
	}
}

// TestReadyzSplit pins the liveness/readiness split: a draining server
// keeps answering /healthz 200 but fails /readyz with 503 and a
// Retry-After hint, so load balancers stop routing before the process
// exits.
func TestReadyzSplit(t *testing.T) {
	srv, err := service.New(service.Config{Workers: 1, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status := func(path string) (int, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, resp.Header.Get("Retry-After")
	}
	if code, _ := status("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d before drain", code)
	}
	if code, _ := status("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz = %d before drain", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if code, _ := status("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d after drain, liveness must survive draining", code)
	}
	code, after := status("/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz = %d after drain, want 503", code)
	}
	if after == "" {
		t.Fatal("/readyz 503 carries no Retry-After hint")
	}
}

// TestClusterMetricsAggregation pins the cluster scrape contract: the
// coordinator's own series exist at zero before any traffic, and after a
// sharded campaign the scrape carries both the coordinator's shard
// counters and the workers' summed, renamed counters.
func TestClusterMetricsAggregation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full campaign")
	}
	oldTTL := scrapeTTL
	scrapeTTL = 0
	defer func() { scrapeTTL = oldTTL }()

	registries := make([]*obs.Registry, 2)
	tc := startCluster(t, workerOpts{
		n: 2,
		cfg: func(i int, c *service.Config) {
			registries[i] = obs.New()
			c.Metrics = registries[i]
		},
		coordCfg: func(c *Config) { c.MaxShards = 2 },
	})
	scrapeAll := func() string {
		resp, err := http.Get(tc.coordTS.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	first := scrapeAll()
	for _, want := range []string{
		"sinet_cluster_shard_jobs_total 0",
		"sinet_cluster_shard_fanout_total 0",
		"sinet_cluster_failovers_total 0",
		`sinet_cluster_proxied_total{code="502"} 0`,
		"sinet_cluster_peer_up{peer=",
		// aggregated from the (idle) workers' pre-registered series
		`sinet_cluster_admission_total{code="202"} 0`,
	} {
		if !strings.Contains(first, want) {
			t.Errorf("first scrape missing %q", want)
		}
	}

	// One sharded campaign: 22 backhaul units, threshold 3, 2 workers.
	id := submitJob(t, tc.coordTS.URL, clusterGoldenSpecs["backhaul"])
	awaitResult(t, tc.coordTS.URL, id)

	second := scrapeAll()
	for _, want := range []string{
		"sinet_cluster_shard_jobs_total 1",
		"sinet_cluster_shard_fanout_total 2",
		// the two shard executions, summed across the fleet
		"sinet_cluster_simulations_total 2",
	} {
		if !strings.Contains(second, want) {
			t.Errorf("post-campaign scrape missing %q", want)
		}
	}
}

// TestCoordinatorLocalFallback pins the no-fleet degradation: with every
// peer down, the coordinator computes submissions itself and the bytes
// still match a direct run.
func TestCoordinatorLocalFallback(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full campaign")
	}
	tc := startCluster(t, workerOpts{n: 2})
	for _, ts := range tc.servers {
		ts.Close()
	}
	// Wait for the probes to notice the dark fleet.
	deadline := time.Now().Add(5 * time.Second)
	for tc.coord.readyPeerCount() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("probes never marked the dead workers down")
		}
		time.Sleep(10 * time.Millisecond)
	}
	spec := clusterGoldenSpecs["coverage"]
	golden := directGolden(t, spec)
	data := awaitResult(t, tc.coordTS.URL, submitJob(t, tc.coordTS.URL, spec))
	if !bytes.Equal(data, golden) {
		t.Fatal("local-fallback bytes differ from direct run")
	}
}
