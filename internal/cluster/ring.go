// Package cluster scales the campaign-serving daemon horizontally: a
// coordinator consistent-hashes content-addressed jobs onto a ring of
// sinetd workers, splits oversized campaigns into deterministic shards
// fanned across the fleet, fills caches from the key's ring owner, and
// aggregates worker telemetry into one cluster-wide scrape. Everything
// rides the service layer's contracts — equal ConfigKeys mean equal
// result bytes, and shard merge equals an unsharded run byte for byte —
// so adding machines never changes what a campaign returns.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"sort"
)

// DefaultVNodes is the virtual-node count per peer: enough points that
// 3–16 peers split the key space within a few percent of even, cheap
// enough that ring construction stays microseconds.
const DefaultVNodes = 128

// Ring consistent-hashes keys onto peers. Each peer projects VNodes
// points onto a 64-bit circle; a key belongs to the peer owning the
// first point at or clockwise of the key's hash. Peers joining or
// leaving therefore move only the keys in the arcs they gain or lose —
// about 1/n of the space — instead of reshuffling everything, which is
// what keeps worker caches warm across membership changes. A Ring is
// immutable and safe for concurrent use; membership changes build a new
// one with NewRing.
type Ring struct {
	peers  []string
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	peer int // index into peers
}

// NewRing builds a ring over the peers (order-insensitive: points depend
// only on peer identity) with the given virtual-node count per peer
// (<= 0 uses DefaultVNodes).
func NewRing(peers []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{peers: append([]string(nil), peers...)}
	r.points = make([]ringPoint, 0, len(peers)*vnodes)
	var buf [8]byte
	for pi, p := range r.peers {
		for v := 0; v < vnodes; v++ {
			binary.BigEndian.PutUint64(buf[:], uint64(v))
			h := sha256.New()
			h.Write([]byte(p))
			h.Write([]byte{'#'})
			h.Write(buf[:])
			sum := h.Sum(nil)
			r.points = append(r.points, ringPoint{hash: binary.BigEndian.Uint64(sum[:8]), peer: pi})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return r.peers[a.peer] < r.peers[b.peer] // total order even on hash ties
	})
	return r
}

// Peers returns the ring's membership.
func (r *Ring) Peers() []string { return r.peers }

// hashKey maps a key onto the circle.
func hashKey(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// Owner returns the peer owning the key, or "" for an empty ring.
func (r *Ring) Owner(key string) string {
	seq := r.Sequence(key)
	if len(seq) == 0 {
		return ""
	}
	return seq[0]
}

// Sequence returns every peer in ring order starting from the key's
// owner, each peer once: the owner first, then the failover order a
// coordinator walks when the owner is down.
func (r *Ring) Sequence(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seq := make([]string, 0, len(r.peers))
	seen := make([]bool, len(r.peers))
	for i := 0; i < len(r.points) && len(seq) < len(r.peers); i++ {
		pt := r.points[(start+i)%len(r.points)]
		if !seen[pt.peer] {
			seen[pt.peer] = true
			seq = append(seq, r.peers[pt.peer])
		}
	}
	return seq
}

// OwnerBounded is Owner with bounded load (the "consistent hashing with
// bounded loads" policy): the key goes to the first peer in its sequence
// whose current load is under factor times the mean, so one hot key
// range cannot pile arbitrarily onto one worker. loadOf reports a peer's
// in-flight work; factor <= 1 (or a nil loadOf) disables the bound. If
// every peer is over the bound the owner wins — the bound sheds skew,
// never availability.
func (r *Ring) OwnerBounded(key string, loadOf func(peer string) int, factor float64) string {
	seq := r.Sequence(key)
	if len(seq) == 0 {
		return ""
	}
	if factor <= 1 || loadOf == nil {
		return seq[0]
	}
	total := 0
	for _, p := range r.peers {
		total += loadOf(p)
	}
	bound := int(math.Ceil(factor * float64(total+1) / float64(len(r.peers))))
	for _, p := range seq {
		if loadOf(p) < bound {
			return p
		}
	}
	return seq[0]
}
