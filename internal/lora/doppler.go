package lora

import "math"

// speedOfLight in km/s, matching the km/s range rates produced by the orbit
// package.
const speedOfLight = 299792.458

// log10 is a tiny alias to keep formulas readable.
func log10(x float64) float64 { return math.Log10(x) }

// DopplerShiftHz returns the carrier frequency offset seen by the receiver
// for a transmitter receding at rangeRate km/s (positive receding ⇒
// negative shift) on carrierHz.
func DopplerShiftHz(carrierHz, rangeRateKmS float64) float64 {
	return -rangeRateKmS / speedOfLight * carrierHz
}

// MaxDopplerShiftHz returns the worst-case Doppler magnitude for a LEO
// satellite with the given orbital speed seen at the horizon. For a 500 km
// orbit at 7.6 km/s on 435 MHz this is ≈ 10 kHz, matching the published
// satellite-LoRa measurements.
func MaxDopplerShiftHz(carrierHz, orbitalSpeedKmS float64) float64 {
	return orbitalSpeedKmS / speedOfLight * carrierHz
}

// DopplerTolerance describes LoRa's resilience to static carrier offset and
// to offset *rate* during one packet. LoRa demodulation tracks a static
// offset up to roughly 25% of the bandwidth; faster drift than about one
// bin (BW/2^SF) per symbol during the packet breaks the chirp alignment.
type DopplerTolerance struct {
	// MaxStaticOffsetHz is the tolerable constant carrier offset.
	MaxStaticOffsetHz float64
	// MaxRateHzPerSec is the tolerable drift rate during a packet.
	MaxRateHzPerSec float64
}

// Tolerance returns the Doppler tolerance of the configuration. The static
// limit is 25% of the bandwidth (Semtech guidance); the rate limit allows
// half a frequency bin of drift per symbol time.
func (p Params) Tolerance() DopplerTolerance {
	binHz := p.BandwidthHz / float64(int(1)<<uint(p.SF))
	symbolSec := float64(p.SymbolDuration().Seconds())
	return DopplerTolerance{
		MaxStaticOffsetHz: 0.25 * p.BandwidthHz,
		MaxRateHzPerSec:   0.5 * binHz / symbolSec,
	}
}

// DopplerPenaltyDB converts a Doppler offset and rate into an equivalent
// SNR penalty. Within tolerance the penalty grows gently (imperfect
// alignment); beyond tolerance it grows steeply, effectively killing
// demodulation. This is the standard way to fold Doppler into a scalar
// link budget without simulating chirps.
func (p Params) DopplerPenaltyDB(offsetHz, rateHzPerSec float64) float64 {
	tol := p.Tolerance()
	off := math.Abs(offsetHz) / tol.MaxStaticOffsetHz
	rate := math.Abs(rateHzPerSec) / tol.MaxRateHzPerSec

	penalty := 0.0
	// Gentle in-tolerance degradation: up to 1 dB at the static limit,
	// up to 2 dB at the rate limit.
	penalty += math.Min(off, 1) * 1.0
	penalty += math.Min(rate, 1) * 2.0
	// Steep out-of-tolerance wall: 12 dB per unit of excess.
	if off > 1 {
		penalty += (off - 1) * 12.0
	}
	if rate > 1 {
		penalty += (rate - 1) * 12.0
	}
	return penalty
}
