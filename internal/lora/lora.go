// Package lora models the LoRa physical layer used on Direct-to-Satellite
// links: chirp-spread-spectrum parameters, time-on-air, receiver
// sensitivity, demodulation SNR floors, Doppler tolerance and a packet
// error model. The numbers follow the Semtech SX126x data sheet and
// AN1200.13, the radio the paper's TinyGS stations and Tianqi nodes use.
package lora

import (
	"errors"
	"fmt"
	"time"
)

// SpreadingFactor is the LoRa spreading factor (chips per symbol = 2^SF).
type SpreadingFactor int

// Valid spreading factors.
const (
	SF7  SpreadingFactor = 7
	SF8  SpreadingFactor = 8
	SF9  SpreadingFactor = 9
	SF10 SpreadingFactor = 10
	SF11 SpreadingFactor = 11
	SF12 SpreadingFactor = 12
)

// Valid reports whether the spreading factor is in the SX126x range.
func (sf SpreadingFactor) Valid() bool { return sf >= SF7 && sf <= SF12 }

// String implements fmt.Stringer.
func (sf SpreadingFactor) String() string { return fmt.Sprintf("SF%d", int(sf)) }

// demodFloorDB is the minimum SNR (dB) at which each SF can be demodulated,
// from the SX126x data sheet.
var demodFloorDB = map[SpreadingFactor]float64{
	SF7:  -7.5,
	SF8:  -10.0,
	SF9:  -12.5,
	SF10: -15.0,
	SF11: -17.5,
	SF12: -20.0,
}

// DemodFloorDB returns the demodulation SNR threshold for the SF.
func (sf SpreadingFactor) DemodFloorDB() float64 { return demodFloorDB[sf] }

// CodingRate is the LoRa forward-error-correction rate (4/(4+CR)).
type CodingRate int

// Valid coding rates.
const (
	CR45 CodingRate = 1 // 4/5
	CR46 CodingRate = 2 // 4/6
	CR47 CodingRate = 3 // 4/7
	CR48 CodingRate = 4 // 4/8
)

// Valid reports whether the coding rate denominator offset is legal.
func (cr CodingRate) Valid() bool { return cr >= CR45 && cr <= CR48 }

// String implements fmt.Stringer.
func (cr CodingRate) String() string { return fmt.Sprintf("4/%d", 4+int(cr)) }

// Params is a complete LoRa modulation configuration.
type Params struct {
	SF                  SpreadingFactor
	BandwidthHz         float64 // 125e3, 250e3, 500e3 (62.5e3 also legal on SX126x)
	CR                  CodingRate
	PreambleLen         int  // symbols, typically 8
	ExplicitHdr         bool // explicit header mode
	CRCOn               bool
	LowDataRateOptimize bool // mandated for symbol times >= 16 ms
}

// Errors returned by parameter validation.
var (
	ErrBadSF = errors.New("lora: invalid spreading factor")
	ErrBadBW = errors.New("lora: invalid bandwidth")
	ErrBadCR = errors.New("lora: invalid coding rate")
)

// DefaultDtSParams is the configuration the paper's satellite beacons use:
// the robust long-range end of the LoRa space. TinyGS satellite profiles in
// the 400-450 MHz band predominantly use SF10-SF12 at 125-250 kHz; SF10 /
// 125 kHz balances airtime against link margin for a 20-120 B IoT payload.
func DefaultDtSParams() Params {
	return Params{
		SF:                  SF10,
		BandwidthHz:         125e3,
		CR:                  CR45,
		PreambleLen:         8,
		ExplicitHdr:         true,
		CRCOn:               true,
		LowDataRateOptimize: true,
	}
}

// DefaultTerrestrialParams is the short-range configuration the terrestrial
// LoRaWAN baseline uses (dense gateway deployment ⇒ SF7).
func DefaultTerrestrialParams() Params {
	return Params{
		SF:          SF7,
		BandwidthHz: 125e3,
		CR:          CR45,
		PreambleLen: 8,
		ExplicitHdr: true,
		CRCOn:       true,
	}
}

// Validate checks the configuration for SX126x legality.
func (p Params) Validate() error {
	if !p.SF.Valid() {
		return fmt.Errorf("%w: %d", ErrBadSF, p.SF)
	}
	switch p.BandwidthHz {
	case 62.5e3, 125e3, 250e3, 500e3:
	default:
		return fmt.Errorf("%w: %.0f Hz", ErrBadBW, p.BandwidthHz)
	}
	if !p.CR.Valid() {
		return fmt.Errorf("%w: %d", ErrBadCR, p.CR)
	}
	if p.PreambleLen < 6 {
		return fmt.Errorf("lora: preamble %d symbols below SX126x minimum of 6", p.PreambleLen)
	}
	return nil
}

// SymbolDuration returns the duration of one LoRa symbol: 2^SF / BW.
func (p Params) SymbolDuration() time.Duration {
	ts := float64(int(1)<<uint(p.SF)) / p.BandwidthHz // seconds
	return time.Duration(ts * float64(time.Second))
}

// Airtime returns the total time-on-air for a payload of n bytes using the
// Semtech AN1200.13 formula.
func (p Params) Airtime(payloadBytes int) time.Duration {
	if payloadBytes < 0 {
		payloadBytes = 0
	}
	sf := float64(p.SF)
	// Preamble: (Npreamble + 4.25) symbols.
	nPreamble := float64(p.PreambleLen) + 4.25

	ih := 1.0 // implicit header: IH=1 removes the header symbols
	if p.ExplicitHdr {
		ih = 0.0
	}
	crc := 0.0
	if p.CRCOn {
		crc = 1.0
	}
	de := 0.0
	if p.LowDataRateOptimize {
		de = 1.0
	}

	num := 8.0*float64(payloadBytes) - 4.0*sf + 28.0 + 16.0*crc - 20.0*ih
	denom := 4.0 * (sf - 2.0*de)
	nPayload := 8.0
	if num > 0 {
		nPayload += ceil(num/denom) * float64(4+int(p.CR))
	}

	totalSymbols := nPreamble + nPayload
	return time.Duration(totalSymbols * float64(p.SymbolDuration()))
}

func ceil(x float64) float64 {
	i := float64(int64(x))
	if x > i {
		return i + 1
	}
	return i
}

// BitRate returns the effective LoRa bit rate in bits/s:
// SF · (BW/2^SF) · CR.
func (p Params) BitRate() float64 {
	rs := p.BandwidthHz / float64(int(1)<<uint(p.SF)) // symbol rate
	return float64(p.SF) * rs * 4.0 / float64(4+int(p.CR))
}

// SensitivityDBm returns the receiver sensitivity: the thermal noise floor
// over the signal bandwidth plus the receiver noise figure plus the SF's
// demodulation floor. With NF = 6 dB this reproduces the familiar SX126x
// table (e.g. SF10/125 kHz ≈ −132.5 dBm... −21 dB demod SNR variants differ
// by data-sheet edition; ours is within 1 dB of published values).
func (p Params) SensitivityDBm(noiseFigureDB float64) float64 {
	return NoiseFloorDBm(p.BandwidthHz, noiseFigureDB) + p.SF.DemodFloorDB()
}

// NoiseFloorDBm returns thermal noise power (dBm) in the given bandwidth
// with the given receiver noise figure: -174 + 10·log10(BW) + NF.
func NoiseFloorDBm(bandwidthHz, noiseFigureDB float64) float64 {
	return -174.0 + 10.0*log10(bandwidthHz) + noiseFigureDB
}
