package lora

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestSpreadingFactorValidity(t *testing.T) {
	for sf := SF7; sf <= SF12; sf++ {
		if !sf.Valid() {
			t.Errorf("%v reported invalid", sf)
		}
	}
	for _, sf := range []SpreadingFactor{0, 6, 13, -1} {
		if sf.Valid() {
			t.Errorf("SF%d reported valid", int(sf))
		}
	}
}

func TestDemodFloorsMonotone(t *testing.T) {
	// Each SF step buys ~2.5 dB of demodulation margin.
	prev := math.Inf(1)
	for sf := SF7; sf <= SF12; sf++ {
		floor := sf.DemodFloorDB()
		if floor >= prev {
			t.Errorf("%v floor %v not below previous %v", sf, floor, prev)
		}
		prev = floor
	}
	if SF7.DemodFloorDB() != -7.5 || SF12.DemodFloorDB() != -20.0 {
		t.Error("endpoint demod floors do not match the SX126x data sheet")
	}
}

func TestParamsValidate(t *testing.T) {
	good := DefaultDtSParams()
	if err := good.Validate(); err != nil {
		t.Errorf("default DtS params invalid: %v", err)
	}
	if err := DefaultTerrestrialParams().Validate(); err != nil {
		t.Errorf("default terrestrial params invalid: %v", err)
	}

	bad := good
	bad.SF = 6
	if err := bad.Validate(); !errors.Is(err, ErrBadSF) {
		t.Errorf("want ErrBadSF, got %v", err)
	}
	bad = good
	bad.BandwidthHz = 100e3
	if err := bad.Validate(); !errors.Is(err, ErrBadBW) {
		t.Errorf("want ErrBadBW, got %v", err)
	}
	bad = good
	bad.CR = 9
	if err := bad.Validate(); !errors.Is(err, ErrBadCR) {
		t.Errorf("want ErrBadCR, got %v", err)
	}
	bad = good
	bad.PreambleLen = 2
	if err := bad.Validate(); err == nil {
		t.Error("short preamble accepted")
	}
}

func TestSymbolDuration(t *testing.T) {
	p := Params{SF: SF7, BandwidthHz: 125e3}
	// 2^7 / 125 kHz = 1.024 ms.
	if got := p.SymbolDuration(); got != 1024*time.Microsecond {
		t.Errorf("SF7/125k symbol = %v, want 1.024ms", got)
	}
	p = Params{SF: SF12, BandwidthHz: 125e3}
	if got := p.SymbolDuration(); got != 32768*time.Microsecond {
		t.Errorf("SF12/125k symbol = %v, want 32.768ms", got)
	}
}

func TestAirtimeKnownValue(t *testing.T) {
	// Hand-computed from the AN1200.13 formula: SF7, 125 kHz, CR 4/5,
	// preamble 8, explicit header, CRC on, 20-byte payload:
	// preamble (8+4.25) symbols + payload 8+ceil(176/28)·5 = 43 symbols,
	// 55.25 symbols × 1.024 ms = 56.576 ms.
	p := Params{SF: SF7, BandwidthHz: 125e3, CR: CR45, PreambleLen: 8, ExplicitHdr: true, CRCOn: true}
	got := p.Airtime(20).Seconds() * 1000
	if math.Abs(got-56.576) > 0.01 {
		t.Errorf("SF7 20B airtime = %.3f ms, want 56.576", got)
	}

	// SF12/125k with LDRO, 20 bytes: the calculator gives ≈ 1318.9 ms —
	// the paper's "a single transmission can last for hundreds to
	// thousands of ms" regime.
	p = Params{SF: SF12, BandwidthHz: 125e3, CR: CR45, PreambleLen: 8, ExplicitHdr: true, CRCOn: true, LowDataRateOptimize: true}
	got = p.Airtime(20).Seconds() * 1000
	if math.Abs(got-1318.9) > 15 {
		t.Errorf("SF12 20B airtime = %.1f ms, want ≈1318.9", got)
	}
}

func TestAirtimeMonotoneInPayload(t *testing.T) {
	p := DefaultDtSParams()
	prop := func(a, b uint8) bool {
		if a > b {
			a, b = b, a
		}
		return p.Airtime(int(a)) <= p.Airtime(int(b))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestAirtimeMonotoneInSF(t *testing.T) {
	for sf := SF7; sf < SF12; sf++ {
		a := Params{SF: sf, BandwidthHz: 125e3, CR: CR45, PreambleLen: 8, ExplicitHdr: true, CRCOn: true}
		b := a
		b.SF = sf + 1
		if a.Airtime(40) >= b.Airtime(40) {
			t.Errorf("airtime not increasing from %v to %v", sf, sf+1)
		}
	}
}

func TestAirtimeNegativePayloadClamped(t *testing.T) {
	p := DefaultDtSParams()
	if p.Airtime(-5) != p.Airtime(0) {
		t.Error("negative payload not clamped to zero")
	}
}

func TestBitRate(t *testing.T) {
	// SF7/125k CR4/5: 7 * 976.5625 * 0.8 = 5468.75 bps.
	p := Params{SF: SF7, BandwidthHz: 125e3, CR: CR45}
	if got := p.BitRate(); math.Abs(got-5468.75) > 0.01 {
		t.Errorf("bit rate = %v, want 5468.75", got)
	}
	// Higher SF decreases bit rate.
	p12 := Params{SF: SF12, BandwidthHz: 125e3, CR: CR45}
	if p12.BitRate() >= p.BitRate() {
		t.Error("SF12 bit rate not below SF7")
	}
}

func TestSensitivityMatchesDataSheet(t *testing.T) {
	// SX126x data sheet, 125 kHz, NF≈6 dB: SF7 ≈ -124.5 dBm, SF12 ≈ -137 dBm.
	p7 := Params{SF: SF7, BandwidthHz: 125e3}
	if got := p7.SensitivityDBm(6); math.Abs(got-(-124.5)) > 1.5 {
		t.Errorf("SF7 sensitivity = %.1f dBm, want ≈-124.5", got)
	}
	p12 := Params{SF: SF12, BandwidthHz: 125e3}
	if got := p12.SensitivityDBm(6); math.Abs(got-(-137.0)) > 1.5 {
		t.Errorf("SF12 sensitivity = %.1f dBm, want ≈-137", got)
	}
}

func TestNoiseFloor(t *testing.T) {
	// -174 + 10log10(125000) + 6 = -117.03 dBm.
	if got := NoiseFloorDBm(125e3, 6); math.Abs(got-(-117.03)) > 0.01 {
		t.Errorf("noise floor = %.2f, want -117.03", got)
	}
}

func TestDopplerShift(t *testing.T) {
	// 7.6 km/s at 435 MHz -> ~11 kHz shift magnitude.
	shift := DopplerShiftHz(435e6, 7.6)
	if shift >= 0 {
		t.Error("receding satellite must shift frequency down")
	}
	if math.Abs(math.Abs(shift)-11026) > 50 {
		t.Errorf("|shift| = %.0f Hz, want ≈11026", math.Abs(shift))
	}
	// Approaching shifts up.
	if DopplerShiftHz(435e6, -7.6) <= 0 {
		t.Error("approaching satellite must shift frequency up")
	}
	if MaxDopplerShiftHz(435e6, 7.6) <= 0 {
		t.Error("max Doppler must be positive")
	}
}

func TestDopplerToleranceScales(t *testing.T) {
	narrow := Params{SF: SF12, BandwidthHz: 125e3}
	wide := Params{SF: SF12, BandwidthHz: 500e3}
	tn, tw := narrow.Tolerance(), wide.Tolerance()
	if tw.MaxStaticOffsetHz <= tn.MaxStaticOffsetHz {
		t.Error("wider BW must tolerate larger static offset")
	}
	if tn.MaxStaticOffsetHz != 0.25*125e3 {
		t.Errorf("static tolerance = %v, want 31.25 kHz", tn.MaxStaticOffsetHz)
	}
	// Higher SF has longer symbols -> lower tolerable drift rate.
	lowSF := Params{SF: SF7, BandwidthHz: 125e3}
	if lowSF.Tolerance().MaxRateHzPerSec <= narrow.Tolerance().MaxRateHzPerSec {
		t.Error("SF7 must tolerate faster drift than SF12")
	}
}

func TestDopplerPenalty(t *testing.T) {
	p := DefaultDtSParams()
	if pen := p.DopplerPenaltyDB(0, 0); pen != 0 {
		t.Errorf("zero Doppler penalty = %v", pen)
	}
	tol := p.Tolerance()
	in := p.DopplerPenaltyDB(tol.MaxStaticOffsetHz*0.5, 0)
	out := p.DopplerPenaltyDB(tol.MaxStaticOffsetHz*2.0, 0)
	if in >= out {
		t.Error("penalty must grow with offset")
	}
	if in > 3 {
		t.Errorf("in-tolerance penalty %v dB too harsh", in)
	}
	if out < 10 {
		t.Errorf("out-of-tolerance penalty %v dB too lenient", out)
	}
	// Penalty is symmetric in sign.
	if p.DopplerPenaltyDB(-5000, 0) != p.DopplerPenaltyDB(5000, 0) {
		t.Error("penalty not symmetric")
	}
}

func TestPacketErrorModelWaterfall(t *testing.T) {
	m := DefaultPacketErrorModel()
	p := DefaultDtSParams()
	floor := p.SF.DemodFloorDB()

	// Far above the floor: near-certain success.
	if got := m.SuccessProbability(floor+10, p, 20); got < 0.99 {
		t.Errorf("success at +10 dB margin = %v", got)
	}
	// Far below: near-certain failure.
	if got := m.SuccessProbability(floor-6, p, 20); got > 0.01 {
		t.Errorf("success at -6 dB margin = %v", got)
	}
	// Monotone in SNR.
	prev := 0.0
	for snr := floor - 8; snr < floor+8; snr += 0.5 {
		got := m.SuccessProbability(snr, p, 20)
		if got < prev-1e-12 {
			t.Fatalf("waterfall not monotone at %v dB", snr)
		}
		prev = got
	}
}

func TestPacketErrorModelPayloadOrdering(t *testing.T) {
	// At fixed SNR, larger payloads decode less often (paper Fig. 12a).
	m := DefaultPacketErrorModel()
	p := DefaultDtSParams()
	snr := p.SF.DemodFloorDB() + 2
	p10 := m.SuccessProbability(snr, p, 10)
	p60 := m.SuccessProbability(snr, p, 60)
	p120 := m.SuccessProbability(snr, p, 120)
	if !(p10 > p60 && p60 > p120) {
		t.Errorf("payload ordering violated: %v, %v, %v", p10, p60, p120)
	}
}

func TestPreambleDetectMoreRobustThanDecode(t *testing.T) {
	m := DefaultPacketErrorModel()
	p := DefaultDtSParams()
	for snr := -25.0; snr < -5; snr += 1.0 {
		det := m.PreambleDetectProbability(snr, p)
		dec := m.SuccessProbability(snr, p, 20)
		if det < dec-1e-9 {
			t.Errorf("snr=%v: detect %v < decode %v", snr, det, dec)
		}
	}
}

func TestProbabilitiesBounded(t *testing.T) {
	m := DefaultPacketErrorModel()
	p := DefaultDtSParams()
	prop := func(snrQ int16, payload uint8) bool {
		snr := float64(snrQ) / 100
		s := m.SuccessProbability(snr, p, int(payload))
		d := m.PreambleDetectProbability(snr, p)
		return s >= 0 && s <= 1 && d >= 0 && d <= 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
