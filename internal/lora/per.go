package lora

import "math"

// PacketErrorModel converts the SNR margin above the demodulation floor
// into a packet success probability. Real LoRa receivers show a sharp but
// not perfectly vertical "waterfall": success rises from ~0 to ~1 over a
// few dB around the floor, and longer packets shift the curve right
// because more symbols must all survive.
type PacketErrorModel struct {
	// WaterfallWidthDB controls the steepness of the success curve.
	// Measured LoRa waterfalls span roughly 3 dB from 10% to 90% PDR.
	WaterfallWidthDB float64
	// ReferencePayload is the payload (bytes) at which the curve is
	// centred exactly on the demod floor.
	ReferencePayload int
}

// DefaultPacketErrorModel matches bench measurements of SX126x receivers.
func DefaultPacketErrorModel() PacketErrorModel {
	return PacketErrorModel{WaterfallWidthDB: 1.5, ReferencePayload: 20}
}

// SuccessProbability returns P(packet decodes) given the mean packet SNR,
// the modulation parameters, and the payload length.
func (m PacketErrorModel) SuccessProbability(snrDB float64, p Params, payloadBytes int) float64 {
	margin := snrDB - p.SF.DemodFloorDB()

	// Longer payloads need every additional symbol to survive, shifting
	// the effective threshold right by ~10·log10(N/Nref)·0.3 dB — a fit to
	// symbol-level union-bound behaviour that reproduces the paper's
	// payload-size reliability ordering (Fig. 12a).
	if payloadBytes > 0 && m.ReferencePayload > 0 {
		shift := 3.0 * math.Log10(float64(payloadBytes)/float64(m.ReferencePayload))
		if shift > 0 {
			margin -= shift
		} else {
			// Shorter-than-reference payloads gain a little margin.
			margin -= shift * 0.5
		}
	}

	w := m.WaterfallWidthDB
	if w <= 0 {
		w = 1.5
	}
	// Logistic waterfall centred 0.5·w above the floor so that the floor
	// itself sits near the 20% success point, as measured.
	x := (margin - 0.5*w) / (w / 4.0)
	return 1.0 / (1.0 + math.Exp(-x))
}

// PreambleDetectProbability returns P(preamble detected), which gates any
// reception. Detection is a few dB more robust than full-packet decode.
func (m PacketErrorModel) PreambleDetectProbability(snrDB float64, p Params) float64 {
	margin := snrDB - p.SF.DemodFloorDB() + 2.0 // detection headroom
	w := m.WaterfallWidthDB
	if w <= 0 {
		w = 1.5
	}
	x := margin / (w / 4.0)
	return 1.0 / (1.0 + math.Exp(-x))
}
