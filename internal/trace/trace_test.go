package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func sample(n int) *Dataset {
	d := &Dataset{}
	base := time.Date(2024, 10, 1, 0, 0, 0, 0, time.UTC)
	sites := []string{"HK", "SYD", "LDN", "PGH"}
	consts := []string{"Tianqi", "FOSSA", "PICO", "CSTP"}
	for i := 0; i < n; i++ {
		d.Add(Record{
			At:            base.Add(time.Duration(n-i) * time.Minute), // reverse order
			Kind:          KindBeacon,
			Station:       "gs-01",
			Site:          sites[i%len(sites)],
			Constellation: consts[i%len(consts)],
			SatName:       "SAT-1",
			NoradID:       91000 + i%5,
			FreqMHz:       400.45,
			RSSIDBm:       -120 - float64(i%20),
			SNRDB:         -5 - float64(i%10),
			ElevationDeg:  float64(i % 90),
			AzimuthDeg:    float64(i % 360),
			RangeKm:       600 + float64(i*13%2900),
			SatAltKm:      860,
			DopplerHz:     float64(i%200) - 100,
			PayloadBytes:  20,
			Weather:       "sunny",
			SeqID:         uint64(i),
		})
	}
	return d
}

func TestKindString(t *testing.T) {
	if KindBeacon.String() != "beacon" || KindUplink.String() != "uplink" ||
		KindAck.String() != "ack" || KindDelivery.String() != "delivery" {
		t.Error("kind labels wrong")
	}
	if Kind(42).String() != "Kind(42)" {
		t.Error("unknown kind label")
	}
}

func TestDatasetQueries(t *testing.T) {
	d := sample(40)
	if d.Len() != 40 {
		t.Fatalf("Len = %d", d.Len())
	}
	hk := d.BySite("HK")
	if hk.Len() != 10 {
		t.Errorf("HK count = %d, want 10", hk.Len())
	}
	tq := d.ByConstellation("Tianqi")
	if tq.Len() != 10 {
		t.Errorf("Tianqi count = %d, want 10", tq.Len())
	}
	if d.ByKind(KindBeacon).Len() != 40 {
		t.Error("ByKind(KindBeacon) incomplete")
	}
	if d.ByKind(KindAck).Len() != 0 {
		t.Error("ByKind(KindAck) nonempty")
	}

	bySite := d.CountBySite()
	total := 0
	for _, c := range bySite {
		total += c
	}
	if total != 40 || len(bySite) != 4 {
		t.Errorf("CountBySite = %v", bySite)
	}
	byConst := d.CountByConstellation()
	if byConst["FOSSA"] != 10 {
		t.Errorf("CountByConstellation = %v", byConst)
	}
}

func TestSortByTime(t *testing.T) {
	d := sample(10)
	d.SortByTime()
	for i := 1; i < d.Len(); i++ {
		if d.Records[i].At.Before(d.Records[i-1].At) {
			t.Fatal("not sorted")
		}
	}
	first, last := d.TimeSpan()
	if !first.Equal(d.Records[0].At) || !last.Equal(d.Records[d.Len()-1].At) {
		t.Error("TimeSpan mismatch after sort")
	}
}

func TestTimeSpanEmpty(t *testing.T) {
	d := &Dataset{}
	first, last := d.TimeSpan()
	if !first.IsZero() || !last.IsZero() {
		t.Error("empty dataset TimeSpan not zero")
	}
}

func TestValuesExtraction(t *testing.T) {
	d := sample(5)
	rssis := d.RSSIs()
	if len(rssis) != 5 {
		t.Fatalf("len = %d", len(rssis))
	}
	for i, v := range rssis {
		if v != d.Records[i].RSSIDBm {
			t.Fatal("RSSI extraction order broken")
		}
	}
	if len(d.Ranges()) != 5 {
		t.Error("Ranges length")
	}
}

func TestMerge(t *testing.T) {
	a, b := sample(3), sample(4)
	a.Merge(b)
	if a.Len() != 7 {
		t.Errorf("merged len = %d", a.Len())
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := sample(25)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() {
		t.Fatalf("round trip len %d != %d", back.Len(), d.Len())
	}
	for i := range d.Records {
		want, got := d.Records[i], back.Records[i]
		if !want.At.Equal(got.At) {
			t.Fatalf("record %d time drift", i)
		}
		want.At = got.At // normalize monotonic clock/locale for equality
		if want != got {
			t.Fatalf("record %d mismatch:\nwant %+v\ngot  %+v", i, want, got)
		}
	}
}

func TestCSVRejectsBadHeader(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("nope,nope\n")); err == nil {
		t.Error("bad header accepted")
	}
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
}

func TestCSVRejectsMalformedRows(t *testing.T) {
	d := sample(1)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()
	lines := strings.SplitN(good, "\n", 2)
	bad := lines[0] + "\n" + strings.Replace(lines[1], "2024", "not-a-time", 1)
	if _, err := ReadCSV(strings.NewReader(bad)); err == nil {
		t.Error("malformed timestamp accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	d := sample(10)
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() {
		t.Fatalf("round trip len %d", back.Len())
	}
	for i := range d.Records {
		if !back.Records[i].At.Equal(d.Records[i].At) ||
			math.Abs(back.Records[i].RSSIDBm-d.Records[i].RSSIDBm) > 1e-12 ||
			back.Records[i].SeqID != d.Records[i].SeqID {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{not json")); err == nil {
		t.Error("garbage accepted")
	}
}
