package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// fuzzCSVSample builds a small valid dataset through the writer itself, so
// the seed corpus always matches the current column order.
func fuzzCSVSample(tb testing.TB) string {
	d := &Dataset{Records: []Record{
		{
			At: time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC), Kind: KindBeacon,
			Station: "HK-01", Site: "HK", Constellation: "Tianqi", SatName: "TQ-1",
			NoradID: 44027, FreqMHz: 468.7, RSSIDBm: -112.5, SNRDB: -8.25,
			ElevationDeg: 12.5, AzimuthDeg: 230.1, RangeKm: 1500.2, SatAltKm: 570.3,
			DopplerHz: -9800.5, PayloadBytes: 24, Weather: "clear", SeqID: 1,
		},
	}}
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		tb.Fatalf("seed WriteCSV: %v", err)
	}
	return buf.String()
}

// FuzzReadCSV feeds arbitrary bytes to the CSV decoder. The contract:
// ReadCSV never panics, and any dataset it accepts survives a
// WriteCSV → ReadCSV round trip with the same record count.
func FuzzReadCSV(f *testing.F) {
	valid := fuzzCSVSample(f)
	f.Add(valid)
	f.Add(strings.Join(csvHeader, ",") + "\n") // header only
	f.Add("")
	f.Add("at,kind\n1,2\n")                          // wrong column count
	f.Add(valid[:len(valid)/2])                      // truncated mid-row
	f.Add(strings.Replace(valid, "44027", "x", 1))   // non-numeric norad
	f.Add(strings.Replace(valid, "468.7", "NaN", 1)) // NaN float column
	f.Add("\"unterminated quote\n")
	f.Add("名前,kind\n")

	f.Fuzz(func(t *testing.T, text string) {
		d, err := ReadCSV(strings.NewReader(text))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := d.WriteCSV(&buf); err != nil {
			t.Fatalf("re-encode of accepted dataset failed: %v", err)
		}
		d2, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round-trip re-parse failed: %v", err)
		}
		if len(d2.Records) != len(d.Records) {
			t.Fatalf("round trip changed record count: %d -> %d", len(d.Records), len(d2.Records))
		}
	})
}
