package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"
)

// csvHeader is the column order of the CSV codec.
var csvHeader = []string{
	"at", "kind", "station", "site", "constellation", "sat", "norad",
	"freq_mhz", "rssi_dbm", "snr_db", "elev_deg", "az_deg", "range_km",
	"sat_alt_km", "doppler_hz", "payload_bytes", "weather", "seq_id",
}

// WriteCSV streams the dataset as CSV with a header row.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	row := make([]string, len(csvHeader))
	for i, r := range d.Records {
		row[0] = r.At.UTC().Format(time.RFC3339Nano)
		row[1] = strconv.Itoa(int(r.Kind))
		row[2] = r.Station
		row[3] = r.Site
		row[4] = r.Constellation
		row[5] = r.SatName
		row[6] = strconv.Itoa(r.NoradID)
		row[7] = formatFloat(r.FreqMHz)
		row[8] = formatFloat(r.RSSIDBm)
		row[9] = formatFloat(r.SNRDB)
		row[10] = formatFloat(r.ElevationDeg)
		row[11] = formatFloat(r.AzimuthDeg)
		row[12] = formatFloat(r.RangeKm)
		row[13] = formatFloat(r.SatAltKm)
		row[14] = formatFloat(r.DopplerHz)
		row[15] = strconv.Itoa(r.PayloadBytes)
		row[16] = r.Weather
		row[17] = strconv.FormatUint(r.SeqID, 10)
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: write record %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ReadCSV parses a dataset previously written by WriteCSV.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	for i, want := range csvHeader {
		if header[i] != want {
			return nil, fmt.Errorf("trace: header column %d = %q, want %q", i, header[i], want)
		}
	}
	d := &Dataset{}
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			return d, nil
		}
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		rec, err := parseRow(row)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		d.Records = append(d.Records, rec)
	}
}

func parseRow(row []string) (Record, error) {
	var r Record
	at, err := time.Parse(time.RFC3339Nano, row[0])
	if err != nil {
		return r, fmt.Errorf("bad timestamp %q: %w", row[0], err)
	}
	r.At = at
	kind, err := strconv.Atoi(row[1])
	if err != nil {
		return r, fmt.Errorf("bad kind: %w", err)
	}
	r.Kind = Kind(kind)
	r.Station = row[2]
	r.Site = row[3]
	r.Constellation = row[4]
	r.SatName = row[5]
	if r.NoradID, err = strconv.Atoi(row[6]); err != nil {
		return r, fmt.Errorf("bad norad: %w", err)
	}
	floats := []*float64{
		&r.FreqMHz, &r.RSSIDBm, &r.SNRDB, &r.ElevationDeg, &r.AzimuthDeg,
		&r.RangeKm, &r.SatAltKm, &r.DopplerHz,
	}
	for i, dst := range floats {
		v, err := strconv.ParseFloat(row[7+i], 64)
		if err != nil {
			return r, fmt.Errorf("bad float column %d: %w", 7+i, err)
		}
		*dst = v
	}
	if r.PayloadBytes, err = strconv.Atoi(row[15]); err != nil {
		return r, fmt.Errorf("bad payload: %w", err)
	}
	r.Weather = row[16]
	if r.SeqID, err = strconv.ParseUint(row[17], 10, 64); err != nil {
		return r, fmt.Errorf("bad seq: %w", err)
	}
	return r, nil
}

// WriteJSON streams the dataset as a JSON array.
func (d *Dataset) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(d.Records)
}

// ReadJSON parses a dataset previously written by WriteJSON.
func ReadJSON(r io.Reader) (*Dataset, error) {
	d := &Dataset{}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&d.Records); err != nil {
		return nil, fmt.Errorf("trace: decode json: %w", err)
	}
	return d, nil
}
