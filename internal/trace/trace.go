// Package trace defines the packet-trace records SINet's measurement
// campaigns produce — the synthetic equivalent of the paper's 121,744
// TinyGS packet traces — together with a dataset container and CSV/JSON
// codecs for persisting and reloading campaigns.
package trace

import (
	"fmt"
	"sort"
	"time"
)

// Kind labels what a trace record captured.
type Kind int

// Trace kinds.
const (
	// KindBeacon is a satellite beacon received by a ground station.
	KindBeacon Kind = iota
	// KindUplink is an IoT node data packet received by a satellite.
	KindUplink
	// KindAck is a satellite ACK received by an IoT node.
	KindAck
	// KindDelivery is a packet delivered to the subscriber server.
	KindDelivery
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindBeacon:
		return "beacon"
	case KindUplink:
		return "uplink"
	case KindAck:
		return "ack"
	case KindDelivery:
		return "delivery"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Record is one received packet with its radio metadata — the fields §2.2
// lists as extractable from TinyGS beacons: timestamps, RSSI, SNR, and
// sender satellite metadata (altitude, elevation angle, Doppler shift).
type Record struct {
	At            time.Time
	Kind          Kind
	Station       string // receiving ground station (or node) ID
	Site          string // site/city code, e.g. "HK"
	Constellation string // e.g. "Tianqi"
	SatName       string // satellite name
	NoradID       int
	FreqMHz       float64
	RSSIDBm       float64
	SNRDB         float64
	ElevationDeg  float64
	AzimuthDeg    float64
	RangeKm       float64 // slant range (DtS communication distance)
	SatAltKm      float64
	DopplerHz     float64
	PayloadBytes  int
	Weather       string
	SeqID         uint64 // application sequence number (active campaign)
}

// Dataset is an append-only collection of trace records with the query
// helpers the analyses need.
type Dataset struct {
	Records []Record
}

// Add appends a record.
func (d *Dataset) Add(r Record) { d.Records = append(d.Records, r) }

// Len returns the record count.
func (d *Dataset) Len() int { return len(d.Records) }

// SortByTime orders records chronologically (stable).
func (d *Dataset) SortByTime() {
	sort.SliceStable(d.Records, func(i, j int) bool {
		return d.Records[i].At.Before(d.Records[j].At)
	})
}

// Filter returns a new Dataset with the records matching keep.
func (d *Dataset) Filter(keep func(Record) bool) *Dataset {
	out := &Dataset{}
	for _, r := range d.Records {
		if keep(r) {
			out.Records = append(out.Records, r)
		}
	}
	return out
}

// ByConstellation returns the records of one constellation.
func (d *Dataset) ByConstellation(name string) *Dataset {
	return d.Filter(func(r Record) bool { return r.Constellation == name })
}

// BySite returns the records of one site code.
func (d *Dataset) BySite(site string) *Dataset {
	return d.Filter(func(r Record) bool { return r.Site == site })
}

// ByKind returns the records of one kind.
func (d *Dataset) ByKind(k Kind) *Dataset {
	return d.Filter(func(r Record) bool { return r.Kind == k })
}

// CountBySite returns record counts grouped by site code — Table 1's
// "# Traces" column.
func (d *Dataset) CountBySite() map[string]int {
	counts := make(map[string]int)
	for _, r := range d.Records {
		counts[r.Site]++
	}
	return counts
}

// CountByConstellation returns record counts grouped by constellation —
// Table 3's "# Traces" column.
func (d *Dataset) CountByConstellation() map[string]int {
	counts := make(map[string]int)
	for _, r := range d.Records {
		counts[r.Constellation]++
	}
	return counts
}

// Values extracts a float column from every record.
func (d *Dataset) Values(f func(Record) float64) []float64 {
	out := make([]float64, 0, len(d.Records))
	for _, r := range d.Records {
		out = append(out, f(r))
	}
	return out
}

// RSSIs returns all RSSI values.
func (d *Dataset) RSSIs() []float64 {
	return d.Values(func(r Record) float64 { return r.RSSIDBm })
}

// Ranges returns all slant ranges.
func (d *Dataset) Ranges() []float64 {
	return d.Values(func(r Record) float64 { return r.RangeKm })
}

// TimeSpan returns the first and last record times (zero times when empty).
func (d *Dataset) TimeSpan() (first, last time.Time) {
	for i, r := range d.Records {
		if i == 0 || r.At.Before(first) {
			first = r.At
		}
		if i == 0 || r.At.After(last) {
			last = r.At
		}
	}
	return first, last
}

// Merge appends all records from other.
func (d *Dataset) Merge(other *Dataset) {
	d.Records = append(d.Records, other.Records...)
}
