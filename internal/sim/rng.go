package sim

import (
	"math"
	"math/rand"
)

// RNG is a named, seeded random stream. Every stochastic component of a
// campaign (per-site weather, per-link fading, per-node jitter, …) draws
// from its own stream derived from the campaign seed and a stable name, so
// adding a new consumer never perturbs existing draws and results remain
// bit-reproducible across runs.
type RNG struct {
	name string
	r    *rand.Rand
}

// NewRNG derives a stream from a master seed and a stable name. The name
// is mixed in with FNV-1a, inlined over the string so deriving a stream
// doesn't round-trip the name through a hasher allocation — campaigns
// derive hundreds of streams per run. The constants and update order match
// hash/fnv exactly, so seeds (and therefore every historical draw) are
// unchanged.
func NewRNG(masterSeed int64, name string) *RNG {
	const (
		offset64 uint64 = 14695981039346656037
		prime64  uint64 = 1099511628211
	)
	h := offset64
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	seed := masterSeed ^ int64(h)
	return &RNG{name: name, r: rand.New(rand.NewSource(seed))}
}

// Name returns the stream name.
func (g *RNG) Name() string { return g.name }

// Float64 returns a uniform draw in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform draw in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Normal returns a Gaussian draw with the given mean and standard deviation.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// LogNormalDB returns a log-normal shadowing term expressed directly in dB,
// i.e. a zero-mean Gaussian in the dB domain with standard deviation
// sigmaDB — the standard radio shadowing model.
func (g *RNG) LogNormalDB(sigmaDB float64) float64 {
	return g.r.NormFloat64() * sigmaDB
}

// Exponential returns an exponential draw with the given mean.
func (g *RNG) Exponential(mean float64) float64 {
	return g.r.ExpFloat64() * mean
}

// Rician returns the power gain (linear, mean ≈ 1) of a Rician fading
// channel with K-factor k (linear). For LEO links with a dominant
// line-of-sight component K is typically 5–15 dB.
func (g *RNG) Rician(k float64) float64 {
	// Direct component amplitude and scattered Rayleigh component chosen so
	// E[gain] = 1: direct power k/(k+1), scattered power 1/(k+1).
	sigma := math.Sqrt(1 / (2 * (k + 1)))
	mu := math.Sqrt(k / (k + 1))
	x := mu + sigma*g.r.NormFloat64()
	y := sigma * g.r.NormFloat64()
	return x*x + y*y
}

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}

// Jitter returns a uniform draw in [-spread/2, +spread/2], used to
// desynchronize periodic behaviours across simulated devices.
func (g *RNG) Jitter(spread float64) float64 {
	return (g.r.Float64() - 0.5) * spread
}

// Perm returns a random permutation of n elements.
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }
