package sim

import (
	"context"
	"sync/atomic"
	"time"

	"github.com/sinet-io/sinet/internal/obs"
	"github.com/sinet-io/sinet/internal/tracing"
)

// simMetrics bundles the fan-out telemetry so one atomic pointer covers
// install/uninstall: either every instrument is live or none is.
type simMetrics struct {
	tasks  *obs.Counter
	panics *obs.Counter
	phase  *obs.HistogramVec
}

// metrics is the process-wide installed telemetry (nil = uninstrumented).
var metrics atomic.Pointer[simMetrics]

// SetMetrics installs worker-pool telemetry into r:
//
//	sinet_sim_tasks_total    ForEach work items executed
//	sinet_sim_panics_total   worker panics recovered into *PanicError
//	sinet_sim_phase_seconds  wall time of named campaign phases (histogram)
//
// The installation is process-wide, matching orbit.SetMetrics. A nil r
// uninstalls. Telemetry never perturbs execution: counters are bumped
// after each work item completes and phase timing wraps the whole
// fan-out, so index assignment, RNG streams and merge order are
// untouched — the uninstrumented and instrumented runs are byte-identical.
func SetMetrics(r *obs.Registry) {
	if r == nil {
		metrics.Store(nil)
		return
	}
	metrics.Store(&simMetrics{
		tasks:  r.Counter("sinet_sim_tasks_total", "Work items executed by the ForEach worker pool."),
		panics: r.Counter("sinet_sim_panics_total", "Worker panics recovered into attributed errors."),
		phase:  r.HistogramVec("sinet_sim_phase_seconds", "Wall time of named campaign phases.", "phase", obs.DurationBuckets),
	})
}

// ForEachPhase is ForEachErrProgress with the fan-out attributed to a
// named campaign phase: when telemetry is installed the whole fan-out's
// wall time is observed into sinet_sim_phase_seconds{phase=...}. With no
// registry installed it degrades to exactly ForEachErrProgress — not even
// the clock is read.
func ForEachPhase(phase string, n int, fn func(i int) error, onDone func(completed, total int)) error {
	return ForEachPhaseCtx(context.Background(), phase, n, fn, onDone)
}

// ForEachPhaseCtx is ForEachPhase with distributed tracing: when ctx
// carries a tracer (tracing.NewContext, injected by the service layer
// once per job attempt), the fan-out is also recorded as a "phase:<name>"
// child span of ctx's current span, so phase timings appear on the job's
// assembled timeline and not just as histogram samples. Tracing, like
// metrics, observes after the fact — the span is recorded once the
// fan-out has fully completed, with the clock read only when either
// instrument is live — so traced and untraced runs stay byte-identical.
func ForEachPhaseCtx(ctx context.Context, phase string, n int, fn func(i int) error, onDone func(completed, total int)) error {
	m := metrics.Load()
	tr, parent := tracing.FromContext(ctx)
	if (m == nil && tr == nil) || phase == "" {
		return ForEachErrProgress(n, fn, onDone)
	}
	start := time.Now()
	err := ForEachErrProgress(n, fn, onDone)
	end := time.Now()
	if m != nil {
		m.phase.With(phase).Observe(end.Sub(start).Seconds())
	}
	if tr != nil {
		attrs := []tracing.Attr{tracing.Int("units", n)}
		if err != nil {
			attrs = append(attrs, tracing.String("error", err.Error()))
		}
		tr.Record(parent, "phase:"+phase, start, end, attrs...)
	}
	return err
}
