package sim

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError attributes a panic recovered in a ForEach worker to the job
// index that raised it, so a crash deep inside a fan-out surfaces as an
// ordinary error naming the failing unit of work instead of killing the
// process.
type PanicError struct {
	Index int
	Value any
	Stack []byte
}

// Error implements the error interface.
func (e *PanicError) Error() string {
	return fmt.Sprintf("sim: worker panicked on index %d: %v", e.Index, e.Value)
}

// ForEach runs fn(i) for every i in [0, n) across up to GOMAXPROCS
// goroutines, returning once all calls complete. Indices are handed out by
// an atomic counter, so work-stealing balances uneven jobs.
//
// A panicking fn does not crash the fan-out: the panic is recovered into a
// *PanicError and every other index still runs; the lowest-index panic is
// returned so the reported failure does not depend on goroutine scheduling.
//
// Determinism is the caller's contract: fn must write its result into an
// index-addressed slot (results[i] = ...) and the caller merges the slots in
// a fixed order afterwards. Execution order across indices is unspecified;
// with GOMAXPROCS=1 (or n ≤ 1) fn runs inline in index order.
func ForEach(n int, fn func(i int)) error {
	return ForEachErr(n, func(i int) error { fn(i); return nil })
}

// ForEachErr is ForEach for fallible jobs. Every index runs regardless of
// other indices' failures; the lowest-index error (a recovered panic counts
// as one) is returned so the reported failure does not depend on goroutine
// scheduling.
func ForEachErr(n int, fn func(i int) error) error {
	return ForEachErrProgress(n, fn, nil)
}

// ForEachErrProgress is ForEachErr with completion reporting: after each
// fn(i) returns, onDone(completed, n) is called with the number of indices
// finished so far. Completion order is unspecified under parallel
// execution, but onDone calls are serialized (never concurrent) and
// completed is strictly increasing from 1 to n, so callers can publish
// progress without their own locking. A nil onDone reports nothing.
func ForEachErrProgress(n int, fn func(i int) error, onDone func(completed, total int)) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	m := metrics.Load()
	var progressMu sync.Mutex
	completed := 0
	call := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				errs[i] = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
				if m != nil {
					m.panics.Inc()
				}
			}
			if m != nil {
				m.tasks.Inc()
			}
			if onDone != nil {
				progressMu.Lock()
				completed++
				onDone(completed, n)
				progressMu.Unlock()
			}
		}()
		errs[i] = fn(i)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			call(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					call(i)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
