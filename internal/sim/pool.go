package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(i) for every i in [0, n) across up to GOMAXPROCS
// goroutines, returning once all calls complete. Indices are handed out by
// an atomic counter, so work-stealing balances uneven jobs.
//
// Determinism is the caller's contract: fn must write its result into an
// index-addressed slot (results[i] = ...) and the caller merges the slots in
// a fixed order afterwards. Execution order across indices is unspecified;
// with GOMAXPROCS=1 (or n ≤ 1) fn runs inline in index order.
func ForEach(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForEachErr is ForEach for fallible jobs. Every index runs regardless of
// other indices' failures; the lowest-index error is returned so the
// reported failure does not depend on goroutine scheduling.
func ForEachErr(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	ForEach(n, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
