package sim

import (
	"errors"
	"testing"

	"github.com/sinet-io/sinet/internal/obs"
)

// TestForEachTelemetry verifies the pool counts executed tasks and
// recovered panics, and the phase histogram records one observation per
// named fan-out.
func TestForEachTelemetry(t *testing.T) {
	r := obs.New()
	SetMetrics(r)
	defer SetMetrics(nil)
	tasks := r.Counter("sinet_sim_tasks_total", "")
	panics := r.Counter("sinet_sim_panics_total", "")
	phase := r.HistogramVec("sinet_sim_phase_seconds", "", "phase", obs.DurationBuckets)

	if err := ForEachPhase("build", 8, func(i int) error { return nil }, nil); err != nil {
		t.Fatal(err)
	}
	if got := tasks.Value(); got != 8 {
		t.Errorf("tasks = %d, want 8", got)
	}
	if got := phase.With("build").Count(); got != 1 {
		t.Errorf("phase observations = %d, want 1", got)
	}

	err := ForEachPhase("crashy", 4, func(i int) error {
		if i == 2 {
			panic("boom")
		}
		return nil
	}, nil)
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != 2 {
		t.Fatalf("want PanicError on index 2, got %v", err)
	}
	if got := panics.Value(); got != 1 {
		t.Errorf("panics = %d, want 1", got)
	}
	if got := tasks.Value(); got != 12 {
		t.Errorf("a panicking task still counts as executed: tasks = %d, want 12", got)
	}
}

// TestForEachPhaseUninstalled verifies ForEachPhase without a registry
// runs the fan-out untouched and records nothing anywhere.
func TestForEachPhaseUninstalled(t *testing.T) {
	SetMetrics(nil)
	hits := make([]bool, 5)
	if err := ForEachPhase("quiet", 5, func(i int) error { hits[i] = true; return nil }, nil); err != nil {
		t.Fatal(err)
	}
	for i, h := range hits {
		if !h {
			t.Errorf("index %d never ran", i)
		}
	}
}
