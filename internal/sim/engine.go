// Package sim provides the deterministic discrete-event simulation engine
// underpinning SINet's measurement campaigns: a virtual clock, a binary-heap
// event scheduler, and named seeded RNG streams so every experiment is
// exactly reproducible from its seed.
package sim

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"time"
)

// Event is a scheduled callback. Fire receives the engine so handlers can
// schedule follow-up events.
type Event struct {
	At   time.Time
	Fire func(*Engine)

	// seq breaks ties so simultaneous events fire in scheduling order,
	// keeping runs deterministic.
	seq   uint64
	index int
}

// eventQueue implements heap.Interface ordered by (At, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].At.Equal(q[j].At) {
		return q[i].seq < q[j].seq
	}
	return q[i].At.Before(q[j].At)
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// ErrPastEvent is returned when scheduling before the current virtual time.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; campaigns that want parallelism run independent engines.
type Engine struct {
	now     time.Time
	queue   eventQueue
	nextSeq uint64
	stopped bool

	// Processed counts fired events, exposed for ablation benchmarks.
	Processed uint64
}

// NewEngine creates an engine whose clock starts at start.
func NewEngine(start time.Time) *Engine {
	return &Engine{now: start}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Time { return e.now }

// Schedule enqueues fn to run at the absolute virtual time at. Scheduling
// in the past is an error; scheduling exactly "now" is allowed and fires
// after the current handler returns.
func (e *Engine) Schedule(at time.Time, fn func(*Engine)) error {
	if at.Before(e.now) {
		return fmt.Errorf("%w: at=%v now=%v", ErrPastEvent, at, e.now)
	}
	ev := &Event{At: at, Fire: fn, seq: e.nextSeq}
	e.nextSeq++
	heap.Push(&e.queue, ev)
	return nil
}

// ScheduleAfter enqueues fn after a virtual delay.
func (e *Engine) ScheduleAfter(d time.Duration, fn func(*Engine)) error {
	return e.Schedule(e.now.Add(d), fn)
}

// Stop halts the run loop after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// Run fires events in time order until the queue drains, Stop is called, or
// the clock passes end. The clock is left at the time of the last fired
// event (or end, whichever is earlier).
func (e *Engine) Run(end time.Time) {
	_ = e.RunCtx(context.Background(), end)
}

// RunCtx is Run with cooperative cancellation: the context is checked
// before every event fires, so a cancelled campaign aborts within one event
// and returns ctx.Err() with the queue intact and the clock at the last
// fired event. A nil error means the run completed (drain, Stop, or
// horizon) without cancellation.
func (e *Engine) RunCtx(ctx context.Context, end time.Time) error {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		if err := ctx.Err(); err != nil {
			return err
		}
		ev := e.queue[0]
		if ev.At.After(end) {
			e.now = end
			return nil
		}
		heap.Pop(&e.queue)
		e.now = ev.At
		e.Processed++
		ev.Fire(e)
	}
	if !e.stopped && e.now.Before(end) {
		e.now = end
	}
	return ctx.Err()
}

// RunAll fires every queued event regardless of horizon. Useful for tests.
func (e *Engine) RunAll() {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		ev := heap.Pop(&e.queue).(*Event)
		e.now = ev.At
		e.Processed++
		ev.Fire(e)
	}
}
