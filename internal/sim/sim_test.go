package sim

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2024, 10, 1, 0, 0, 0, 0, time.UTC)

func TestEngineFiresInOrder(t *testing.T) {
	e := NewEngine(t0)
	var fired []int
	for i, d := range []time.Duration{30 * time.Second, 10 * time.Second, 20 * time.Second} {
		i := i
		if err := e.ScheduleAfter(d, func(*Engine) { fired = append(fired, i) }); err != nil {
			t.Fatal(err)
		}
	}
	e.RunAll()
	if len(fired) != 3 || fired[0] != 1 || fired[1] != 2 || fired[2] != 0 {
		t.Errorf("fired order = %v, want [1 2 0]", fired)
	}
	if e.Now() != t0.Add(30*time.Second) {
		t.Errorf("final clock = %v", e.Now())
	}
	if e.Processed != 3 {
		t.Errorf("Processed = %d", e.Processed)
	}
}

func TestEngineSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine(t0)
	var fired []int
	at := t0.Add(time.Minute)
	for i := 0; i < 10; i++ {
		i := i
		if err := e.Schedule(at, func(*Engine) { fired = append(fired, i) }); err != nil {
			t.Fatal(err)
		}
	}
	e.RunAll()
	for i, got := range fired {
		if got != i {
			t.Fatalf("tie-break not FIFO: %v", fired)
		}
	}
}

func TestEngineRejectsPast(t *testing.T) {
	e := NewEngine(t0)
	if err := e.Schedule(t0.Add(-time.Second), func(*Engine) {}); !errors.Is(err, ErrPastEvent) {
		t.Errorf("want ErrPastEvent, got %v", err)
	}
	// Scheduling exactly "now" is allowed.
	if err := e.Schedule(t0, func(*Engine) {}); err != nil {
		t.Errorf("schedule at now: %v", err)
	}
}

func TestEngineChainedScheduling(t *testing.T) {
	e := NewEngine(t0)
	count := 0
	var tick func(*Engine)
	tick = func(en *Engine) {
		count++
		if count < 5 {
			if err := en.ScheduleAfter(time.Minute, tick); err != nil {
				t.Error(err)
			}
		}
	}
	if err := e.ScheduleAfter(time.Minute, tick); err != nil {
		t.Fatal(err)
	}
	e.RunAll()
	if count != 5 {
		t.Errorf("chained ticks = %d, want 5", count)
	}
	if e.Now() != t0.Add(5*time.Minute) {
		t.Errorf("clock = %v", e.Now())
	}
}

func TestEngineRunHorizon(t *testing.T) {
	e := NewEngine(t0)
	fired := 0
	for i := 1; i <= 10; i++ {
		if err := e.ScheduleAfter(time.Duration(i)*time.Hour, func(*Engine) { fired++ }); err != nil {
			t.Fatal(err)
		}
	}
	end := t0.Add(5*time.Hour + time.Minute)
	e.Run(end)
	if fired != 5 {
		t.Errorf("fired %d events before horizon, want 5", fired)
	}
	if !e.Now().Equal(end) {
		t.Errorf("clock = %v, want horizon %v", e.Now(), end)
	}
	if e.Pending() != 5 {
		t.Errorf("pending = %d, want 5", e.Pending())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine(t0)
	fired := 0
	for i := 1; i <= 10; i++ {
		if err := e.ScheduleAfter(time.Duration(i)*time.Minute, func(en *Engine) {
			fired++
			if fired == 3 {
				en.Stop()
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	e.RunAll()
	if fired != 3 {
		t.Errorf("fired = %d, want 3 (stopped)", fired)
	}
}

func TestRNGDeterministic(t *testing.T) {
	a := NewRNG(42, "weather/HK")
	b := NewRNG(42, "weather/HK")
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed+name diverged")
		}
	}
}

func TestRNGStreamsIndependent(t *testing.T) {
	a := NewRNG(42, "weather/HK")
	c := NewRNG(42, "weather/SYD")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == c.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("streams with different names produced %d/100 identical draws", same)
	}
}

func TestRNGNormalMoments(t *testing.T) {
	g := NewRNG(1, "normal")
	n := 20000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := g.Normal(5, 2)
		sum += x
		sumSq += x * x
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean-5) > 0.1 {
		t.Errorf("mean = %.3f, want 5", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.1 {
		t.Errorf("stddev = %.3f, want 2", math.Sqrt(variance))
	}
}

func TestRNGRicianMeanUnity(t *testing.T) {
	// E[power gain] should be ~1 for any K.
	for _, k := range []float64{1, 5, 10, 50} {
		g := NewRNG(7, "rician")
		var sum float64
		n := 20000
		for i := 0; i < n; i++ {
			sum += g.Rician(k)
		}
		if mean := sum / float64(n); math.Abs(mean-1) > 0.05 {
			t.Errorf("K=%v: mean gain %.3f, want ~1", k, mean)
		}
	}
}

func TestRNGBoolEdges(t *testing.T) {
	g := NewRNG(3, "bool")
	for i := 0; i < 50; i++ {
		if g.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !g.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
	hits := 0
	n := 10000
	for i := 0; i < n; i++ {
		if g.Bool(0.3) {
			hits++
		}
	}
	if frac := float64(hits) / float64(n); math.Abs(frac-0.3) > 0.03 {
		t.Errorf("Bool(0.3) frequency = %.3f", frac)
	}
}

func TestRNGJitterBounds(t *testing.T) {
	g := NewRNG(9, "jitter")
	prop := func(spreadQ uint8) bool {
		spread := float64(spreadQ) + 1
		j := g.Jitter(spread)
		return j >= -spread/2 && j <= spread/2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRNGLogNormalDBZeroMean(t *testing.T) {
	g := NewRNG(11, "shadow")
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		sum += g.LogNormalDB(4)
	}
	if mean := sum / float64(n); math.Abs(mean) > 0.15 {
		t.Errorf("shadowing mean = %.3f dB, want ~0", mean)
	}
}

func TestRNGExponentialMean(t *testing.T) {
	g := NewRNG(13, "exp")
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		sum += g.Exponential(30)
	}
	if mean := sum / float64(n); math.Abs(mean-30) > 1.5 {
		t.Errorf("exponential mean = %.2f, want 30", mean)
	}
}
