package sim

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"
	"time"
)

// --- ForEach panic recovery ---

func TestForEachRecoversPanicIntoError(t *testing.T) {
	var ran int32
	err := ForEach(8, func(i int) {
		if i == 5 {
			panic("boom")
		}
		atomic.AddInt32(&ran, 1)
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want *PanicError", err)
	}
	if pe.Index != 5 {
		t.Fatalf("panic attributed to index %d, want 5", pe.Index)
	}
	if pe.Value != "boom" {
		t.Fatalf("panic value %v, want boom", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("recovered panic carries no stack")
	}
	if ran != 7 {
		t.Fatalf("%d non-panicking indices ran, want 7 (one failure must not cancel the rest)", ran)
	}
}

func TestForEachErrLowestIndexPanicWins(t *testing.T) {
	err := ForEachErr(10, func(i int) error {
		if i == 2 || i == 8 {
			panic(i)
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want *PanicError", err)
	}
	if pe.Index != 2 {
		t.Fatalf("reported index %d, want the lowest (2)", pe.Index)
	}
}

func TestForEachErrPanicBeatsLaterError(t *testing.T) {
	sentinel := errors.New("plain failure")
	err := ForEachErr(6, func(i int) error {
		switch i {
		case 1:
			panic("early")
		case 4:
			return sentinel
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != 1 {
		t.Fatalf("got %v, want the index-1 panic", err)
	}
}

// --- Engine edge cases ---

func TestEngineSchedulePastAfterClockAdvance(t *testing.T) {
	start := time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC)
	e := NewEngine(start)
	var rejected error
	if err := e.Schedule(start.Add(time.Hour), func(e *Engine) {
		// The clock is now start+1h; scheduling before it must fail.
		rejected = e.Schedule(start.Add(30*time.Minute), func(*Engine) {
			t.Error("past event fired")
		})
	}); err != nil {
		t.Fatal(err)
	}
	e.Run(start.Add(2 * time.Hour))
	if !errors.Is(rejected, ErrPastEvent) {
		t.Fatalf("mid-run past schedule returned %v, want ErrPastEvent", rejected)
	}
}

func TestEngineScheduleExactlyNowFires(t *testing.T) {
	start := time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC)
	e := NewEngine(start)
	fired := false
	if err := e.Schedule(start, func(e *Engine) {
		if err := e.Schedule(e.Now(), func(*Engine) { fired = true }); err != nil {
			t.Errorf("schedule at exactly now rejected: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	e.Run(start.Add(time.Hour))
	if !fired {
		t.Fatal("event scheduled at the current instant never fired")
	}
}

func TestEngineTieBreakSurvivesHeapChurn(t *testing.T) {
	start := time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC)
	e := NewEngine(start)
	at := start.Add(time.Hour)
	var order []int
	// Interleave scheduling at two instants so the heap reshuffles, then
	// verify same-instant events still fire in scheduling order.
	for i := 0; i < 10; i++ {
		i := i
		if err := e.Schedule(at, func(*Engine) { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
		if err := e.Schedule(start.Add(30*time.Minute), func(*Engine) {}); err != nil {
			t.Fatal(err)
		}
	}
	e.Run(start.Add(2 * time.Hour))
	for i, got := range order {
		if got != i {
			t.Fatalf("tie-broken order %v, want ascending scheduling order", order)
		}
	}
}

func TestEngineResumeAfterStop(t *testing.T) {
	start := time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC)
	e := NewEngine(start)
	var fired []int
	for i := 0; i < 3; i++ {
		i := i
		if err := e.Schedule(start.Add(time.Duration(i+1)*time.Minute), func(e *Engine) {
			fired = append(fired, i)
			if i == 0 {
				e.Stop()
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	end := start.Add(time.Hour)
	e.Run(end)
	if len(fired) != 1 {
		t.Fatalf("Stop did not halt the loop: fired %v", fired)
	}
	if e.Pending() != 2 {
		t.Fatalf("queue lost events across Stop: %d pending, want 2", e.Pending())
	}
	// A fresh Run resumes from the intact queue.
	e.Run(end)
	if len(fired) != 3 {
		t.Fatalf("resume after Stop fired %v, want all three", fired)
	}
}

func TestEngineRunCtxPreCancelled(t *testing.T) {
	start := time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC)
	e := NewEngine(start)
	fired := false
	if err := e.Schedule(start.Add(time.Minute), func(*Engine) { fired = true }); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := e.RunCtx(ctx, start.Add(time.Hour)); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if fired {
		t.Fatal("event fired under a pre-cancelled context")
	}
	if e.Pending() != 1 {
		t.Fatal("cancellation drained the queue")
	}
}

func TestEngineRunCtxCancelMidRun(t *testing.T) {
	start := time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC)
	e := NewEngine(start)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var fired []int
	for i := 0; i < 5; i++ {
		i := i
		if err := e.Schedule(start.Add(time.Duration(i+1)*time.Minute), func(*Engine) {
			fired = append(fired, i)
			if i == 1 {
				cancel()
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.RunCtx(ctx, start.Add(time.Hour)); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if len(fired) != 2 {
		t.Fatalf("cancel mid-run fired %v, want exactly the first two events", fired)
	}
	if e.Pending() != 3 {
		t.Fatalf("queue after cancellation holds %d events, want 3", e.Pending())
	}
	if got := e.Now(); !got.Equal(start.Add(2 * time.Minute)) {
		t.Fatalf("clock after cancellation = %v, want the last fired event's time", got)
	}
}

// --- RNG stream independence ---

// TestRNGStreamsUncorrelated goes beyond exact-collision counting: distinct
// stream names under the same master seed must produce statistically
// uncorrelated sequences (|Pearson r| small over many draws).
func TestRNGStreamsUncorrelated(t *testing.T) {
	const n = 20000
	pairs := [][2]string{
		{"fault/station/HK-01", "fault/station/HK-02"},
		{"fault/station/HK-01", "fault/sat/44027"},
		{"weather/HK", "fault/drain/0"},
		{"a", "b"},
	}
	for _, p := range pairs {
		x := NewRNG(42, p[0])
		y := NewRNG(42, p[1])
		var sx, sy, sxx, syy, sxy float64
		for i := 0; i < n; i++ {
			a, b := x.Float64(), y.Float64()
			sx += a
			sy += b
			sxx += a * a
			syy += b * b
			sxy += a * b
		}
		cov := sxy/n - (sx/n)*(sy/n)
		vx := sxx/n - (sx/n)*(sx/n)
		vy := syy/n - (sy/n)*(sy/n)
		r := cov / math.Sqrt(vx*vy)
		if math.Abs(r) > 0.05 {
			t.Errorf("streams %q vs %q: |pearson r| = %.4f over %d draws, want ≈0", p[0], p[1], r, n)
		}
	}
}

// TestRNGSameNameDifferentSeed guards the other axis: the same stream name
// under different master seeds must diverge.
func TestRNGSameNameDifferentSeed(t *testing.T) {
	a := NewRNG(1, "fault/station/HK-01")
	b := NewRNG(2, "fault/station/HK-01")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 identical draws", same)
	}
}
