package sim

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1000} {
		visits := make([]int32, n)
		ForEach(n, func(i int) { atomic.AddInt32(&visits[i], 1) })
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, v)
			}
		}
	}
}

func TestForEachMoreWorkersThanJobs(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("single-proc environment")
	}
	var count int32
	ForEach(1, func(i int) { atomic.AddInt32(&count, 1) })
	if count != 1 {
		t.Fatalf("ran %d times, want 1", count)
	}
}

func TestForEachErrReturnsLowestIndexError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	err := ForEachErr(10, func(i int) error {
		switch i {
		case 3:
			return errB
		case 7:
			return errA
		}
		return nil
	})
	if err != errB {
		t.Fatalf("got %v, want the lowest-index error %v", err, errB)
	}
	if err := ForEachErr(5, func(int) error { return nil }); err != nil {
		t.Fatalf("unexpected error %v", err)
	}
}
