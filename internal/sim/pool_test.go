package sim

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1000} {
		visits := make([]int32, n)
		ForEach(n, func(i int) { atomic.AddInt32(&visits[i], 1) })
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, v)
			}
		}
	}
}

func TestForEachMoreWorkersThanJobs(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("single-proc environment")
	}
	var count int32
	ForEach(1, func(i int) { atomic.AddInt32(&count, 1) })
	if count != 1 {
		t.Fatalf("ran %d times, want 1", count)
	}
}

func TestForEachErrProgressReportsEveryCompletion(t *testing.T) {
	for _, n := range []int{1, 2, 7, 100} {
		var got, totals []int
		err := ForEachErrProgress(n, func(int) error { return nil }, func(completed, total int) {
			got = append(got, completed)
			totals = append(totals, total)
		})
		if err != nil {
			t.Fatalf("n=%d: unexpected error %v", n, err)
		}
		for _, total := range totals {
			if total != n {
				t.Fatalf("n=%d: onDone reported total %d", n, total)
			}
		}
		// Serialized and strictly increasing: appending without a lock above
		// is only safe because ForEachErrProgress guarantees onDone calls
		// never run concurrently; the race detector enforces that here.
		if len(got) != n {
			t.Fatalf("n=%d: onDone called %d times", n, len(got))
		}
		for i, c := range got {
			if c != i+1 {
				t.Fatalf("n=%d: completed sequence %v not strictly increasing from 1", n, got)
			}
		}
	}
}

func TestForEachErrProgressCountsFailedIndices(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	err := ForEachErrProgress(8, func(i int) error {
		if i%2 == 0 {
			return boom
		}
		if i == 5 {
			panic("kaput")
		}
		return nil
	}, func(completed, total int) { calls = completed })
	if err != boom {
		t.Fatalf("got %v, want %v", err, boom)
	}
	if calls != 8 {
		t.Fatalf("failed and panicking indices must still count as completed; got %d/8", calls)
	}
}

func TestForEachErrProgressNilCallback(t *testing.T) {
	var count int32
	if err := ForEachErrProgress(50, func(int) error { atomic.AddInt32(&count, 1); return nil }, nil); err != nil {
		t.Fatal(err)
	}
	if count != 50 {
		t.Fatalf("ran %d times, want 50", count)
	}
}

func TestForEachErrReturnsLowestIndexError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	err := ForEachErr(10, func(i int) error {
		switch i {
		case 3:
			return errB
		case 7:
			return errA
		}
		return nil
	})
	if err != errB {
		t.Fatalf("got %v, want the lowest-index error %v", err, errB)
	}
	if err := ForEachErr(5, func(int) error { return nil }); err != nil {
		t.Fatalf("unexpected error %v", err)
	}
}
