package tracing

import (
	"context"
	"encoding/hex"
	"net/http"
)

// Header is the W3C trace-context header carried on every HTTP hop.
const Header = "traceparent"

// Traceparent renders the context as a W3C traceparent value,
// version 00 with the sampled flag set:
//
//	00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
//
// Invalid contexts render as "".
func (sc SpanContext) Traceparent() string {
	if !sc.Valid() {
		return ""
	}
	buf := make([]byte, 0, 55)
	buf = append(buf, '0', '0', '-')
	buf = hex.AppendEncode(buf, sc.TraceID[:])
	buf = append(buf, '-')
	buf = hex.AppendEncode(buf, sc.SpanID[:])
	buf = append(buf, '-', '0', '1')
	return string(buf)
}

// ParseTraceparent parses a W3C traceparent value. It accepts any
// version except the reserved ff, ignores trailing version-specific
// fields, and rejects all-zero trace or span IDs per the spec.
func ParseTraceparent(s string) (SpanContext, bool) {
	// version(2) - trace-id(32) - parent-id(16) - flags(2)
	if len(s) < 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, false
	}
	if len(s) > 55 && s[55] != '-' {
		return SpanContext{}, false
	}
	version := s[0:2]
	if !isHex(version) || version == "ff" {
		return SpanContext{}, false
	}
	if version == "00" && len(s) != 55 {
		return SpanContext{}, false
	}
	var sc SpanContext
	if _, err := hex.Decode(sc.TraceID[:], []byte(s[3:35])); err != nil {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(s[36:52])); err != nil {
		return SpanContext{}, false
	}
	if !isHex(s[53:55]) {
		return SpanContext{}, false
	}
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// FromRequest extracts the caller's span context from an incoming
// request's traceparent header (zero context when absent or malformed).
func FromRequest(r *http.Request) SpanContext {
	sc, _ := ParseTraceparent(r.Header.Get(Header))
	return sc
}

// Inject stamps the span context onto an outgoing request. Invalid
// contexts leave the request untouched, so an unconditional Inject on a
// hop degrades to "no propagation" when tracing is off.
func Inject(r *http.Request, sc SpanContext) {
	if sc.Valid() {
		r.Header.Set(Header, sc.Traceparent())
	}
}

// ctxKey keys the (tracer, current span context) pair in a Context.
type ctxKey struct{}

type ctxState struct {
	tracer *Tracer
	sc     SpanContext
}

// NewContext returns ctx carrying the tracer and current span context.
// This is how instrumentation crosses package boundaries without
// coupling: service injects once per attempt, and sim/core phases pick
// the pair up from the context they already receive.
func NewContext(ctx context.Context, tracer *Tracer, sc SpanContext) context.Context {
	if tracer == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, ctxState{tracer: tracer, sc: sc})
}

// FromContext returns the tracer and current span context carried by
// ctx, or (nil, zero) when the context is untraced.
func FromContext(ctx context.Context) (*Tracer, SpanContext) {
	if ctx == nil {
		return nil, SpanContext{}
	}
	st, _ := ctx.Value(ctxKey{}).(ctxState)
	return st.tracer, st.sc
}

// Start begins a child span of ctx's current span and returns a context
// whose current span is the new one. On an untraced context it returns
// (ctx, nil) — the nil span's methods no-op, so call sites stay
// branch-free.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	tr, parent := FromContext(ctx)
	if tr == nil {
		return ctx, nil
	}
	sp := tr.StartChild(parent, name, attrs...)
	return NewContext(ctx, tr, sp.Context()), sp
}
