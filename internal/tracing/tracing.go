// Package tracing is a zero-dependency distributed-tracing subsystem for
// the serving stack: 128-bit trace IDs, spans with parents, key-value
// attributes and statuses, recorded into a bounded per-process ring
// buffer and propagated across HTTP hops with the W3C traceparent header.
//
// The design contract mirrors internal/obs: tracing observes execution,
// it never parameterizes it. Span IDs come from crypto/rand (no shared
// math/rand state, no named sim.RNG stream is ever touched), timestamps
// are read after work completes on the paths that matter, and every
// recording API is nil-safe — a nil *Tracer produces nil *Spans whose
// methods no-op — so "tracing off" is the zero value, and the campaign
// bytes with tracing on are pinned identical to tracing off by the
// service-layer acceptance test.
//
// (The name internal/trace was already taken by the measurement-dataset
// codec, hence internal/tracing.)
package tracing

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is a 128-bit trace identifier shared by every span of one
// distributed timeline.
type TraceID [16]byte

// SpanID is a 64-bit span identifier, unique within a trace.
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the ID as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// ParseTraceID parses a 32-hex-digit trace ID.
func ParseTraceID(s string) (TraceID, bool) {
	var id TraceID
	if len(s) != 32 {
		return id, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return TraceID{}, false
	}
	return id, !id.IsZero()
}

// SpanContext identifies one span within one trace — the unit of
// propagation. The zero value is "no context".
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
}

// Valid reports whether the context identifies a real span.
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// Attr is one key-value span attribute. Values are strings by design:
// attributes annotate timelines for humans and assertions, they are not a
// metrics system (internal/obs is).
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// String builds a string attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer attribute.
func Int(key string, value int) Attr { return Attr{Key: key, Value: itoa(value)} }

// Bool builds a boolean attribute.
func Bool(key string, value bool) Attr {
	if value {
		return Attr{Key: key, Value: "true"}
	}
	return Attr{Key: key, Value: "false"}
}

// itoa avoids strconv for the tiny non-negative-and-small-negative range
// attributes use; it handles the general case anyway for safety.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [24]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// SpanData is one completed span as stored in the ring buffer.
type SpanData struct {
	Context  SpanContext
	Parent   SpanID // zero for trace roots
	Name     string
	Service  string
	Start    time.Time
	Duration time.Duration
	Attrs    []Attr
	Error    string // non-empty marks the span failed
}

// Span is an in-flight span. End records it into its tracer's ring
// buffer; a span that is never ended (process death) is simply lost,
// which is the crash contract — the journal, not the tracer, is durable.
// All methods are safe on a nil receiver, the "tracing off" case.
type Span struct {
	tracer *Tracer

	mu    sync.Mutex
	data  SpanData
	ended bool
}

// Context returns the span's propagation context (zero for nil spans).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.data.Context
}

// SetAttr appends attributes to the span.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.data.Attrs = append(s.data.Attrs, attrs...)
	s.mu.Unlock()
}

// SetError marks the span failed with the error's message. A nil error
// leaves the span untouched.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.data.Error = err.Error()
	s.mu.Unlock()
}

// End stamps the span's duration and records it. Idempotent: only the
// first End records.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.data.Duration = time.Since(s.data.Start)
	data := s.data
	s.mu.Unlock()
	s.tracer.record(data)
}

// DefaultCapacity is the ring-buffer span bound used when a Tracer is
// built with capacity <= 0. At ~200 bytes a span the default ring costs
// about 1 MB — always-on money.
const DefaultCapacity = 4096

// Tracer records completed spans into a bounded ring buffer: recording
// never allocates beyond the span itself and never blocks beyond a short
// mutex, and once the ring is full every new span evicts the oldest one.
// A nil *Tracer disables tracing: every method no-ops or returns nil.
type Tracer struct {
	service string

	mu     sync.Mutex
	ring   []SpanData
	next   int // next write slot
	filled bool

	recorded atomic.Uint64 // total spans ever recorded (eviction tests)
	idErr    atomic.Uint64 // crypto/rand failures answered by the fallback
	fallback atomic.Uint64 // fallback ID sequence
}

// New builds a tracer identified by service (stamped on every span) with
// a ring buffer of the given span capacity (<= 0 means DefaultCapacity).
func New(service string, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{service: service, ring: make([]SpanData, 0, capacity)}
}

// Service returns the tracer's process identity ("" for nil).
func (t *Tracer) Service() string {
	if t == nil {
		return ""
	}
	return t.service
}

// Capacity returns the ring-buffer bound (0 for nil).
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	return cap(t.ring)
}

// Recorded returns the total number of spans ever recorded, including
// spans since evicted from the ring.
func (t *Tracer) Recorded() uint64 {
	if t == nil {
		return 0
	}
	return t.recorded.Load()
}

// randomBytes fills b from crypto/rand, falling back to a counter-derived
// pattern if the system source fails — IDs must never block recording.
func (t *Tracer) randomBytes(b []byte) {
	if _, err := rand.Read(b); err != nil {
		t.idErr.Add(1)
		seq := t.fallback.Add(1)
		for i := 0; i < len(b); i += 8 {
			end := i + 8
			if end > len(b) {
				end = len(b)
			}
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], seq+uint64(i))
			copy(b[i:end], buf[:])
		}
	}
}

func (t *Tracer) newTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		t.randomBytes(id[:])
	}
	return id
}

func (t *Tracer) newSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		t.randomBytes(id[:])
	}
	return id
}

// StartRoot begins a new trace with a root span.
func (t *Tracer) StartRoot(name string, attrs ...Attr) *Span {
	return t.StartChild(SpanContext{}, name, attrs...)
}

// StartChild begins a span under parent. An invalid parent starts a new
// trace instead, so callers can thread an optional incoming context
// through without branching.
func (t *Tracer) StartChild(parent SpanContext, name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	sp := &Span{tracer: t}
	sp.data = SpanData{
		Name:    name,
		Service: t.service,
		Start:   time.Now().UTC(),
		Attrs:   attrs,
	}
	if parent.Valid() {
		sp.data.Context = SpanContext{TraceID: parent.TraceID, SpanID: t.newSpanID()}
		sp.data.Parent = parent.SpanID
	} else {
		sp.data.Context = SpanContext{TraceID: t.newTraceID(), SpanID: t.newSpanID()}
	}
	return sp
}

// Record stores an already-completed span with explicit start and end
// times — the shape for retrospective spans (queue wait, retry backoff)
// where holding a live *Span across the wait would complicate ownership.
// It returns the recorded span's context.
func (t *Tracer) Record(parent SpanContext, name string, start, end time.Time, attrs ...Attr) SpanContext {
	if t == nil {
		return SpanContext{}
	}
	data := SpanData{
		Name:     name,
		Service:  t.service,
		Start:    start.UTC(),
		Duration: end.Sub(start),
		Attrs:    attrs,
	}
	if parent.Valid() {
		data.Context = SpanContext{TraceID: parent.TraceID, SpanID: t.newSpanID()}
		data.Parent = parent.SpanID
	} else {
		data.Context = SpanContext{TraceID: t.newTraceID(), SpanID: t.newSpanID()}
	}
	t.record(data)
	return data.Context
}

// record appends one completed span, evicting the oldest when full.
func (t *Tracer) record(data SpanData) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, data)
	} else {
		t.ring[t.next] = data
		t.filled = true
	}
	t.next++
	if t.next == cap(t.ring) {
		t.next = 0
		t.filled = true
	}
	t.mu.Unlock()
	t.recorded.Add(1)
}

// snapshot copies the ring's live spans in recording order (oldest
// first). Callers own the returned slice.
func (t *Tracer) snapshot() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanData, 0, len(t.ring))
	if t.filled && len(t.ring) == cap(t.ring) {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
		return out
	}
	return append(out, t.ring...)
}
