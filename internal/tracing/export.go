package tracing

import (
	"sort"
	"time"
)

// SpanJSON is the wire form of one span on the export endpoints. Field
// order is part of the contract — the golden HTTP tests pin it — so new
// fields must be appended, never inserted.
type SpanJSON struct {
	TraceID    string  `json:"trace_id"`
	SpanID     string  `json:"span_id"`
	ParentID   string  `json:"parent_id,omitempty"`
	Name       string  `json:"name"`
	Service    string  `json:"service"`
	Start      string  `json:"start"`
	DurationMS float64 `json:"duration_ms"`
	Attrs      []Attr  `json:"attrs,omitempty"`
	Error      string  `json:"error,omitempty"`
}

// TraceJSON is one assembled timeline: every known span of one trace,
// sorted by start time.
type TraceJSON struct {
	TraceID string     `json:"trace_id"`
	Spans   []SpanJSON `json:"spans"`
}

func toJSON(d SpanData) SpanJSON {
	out := SpanJSON{
		TraceID:    d.Context.TraceID.String(),
		SpanID:     d.Context.SpanID.String(),
		Name:       d.Name,
		Service:    d.Service,
		Start:      d.Start.UTC().Format(time.RFC3339Nano),
		DurationMS: float64(d.Duration) / float64(time.Millisecond),
		Attrs:      d.Attrs,
		Error:      d.Error,
	}
	if !d.Parent.IsZero() {
		out.ParentID = d.Parent.String()
	}
	return out
}

// SortSpans orders spans by start time, breaking ties by span ID so
// repeated exports of the same trace are byte-stable.
func SortSpans(spans []SpanJSON) {
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].SpanID < spans[j].SpanID
	})
}

// Trace returns every buffered span of one trace, sorted by start time.
func (t *Tracer) Trace(id TraceID) []SpanJSON {
	if t == nil || id.IsZero() {
		return nil
	}
	var out []SpanJSON
	for _, d := range t.snapshot() {
		if d.Context.TraceID == id {
			out = append(out, toJSON(d))
		}
	}
	SortSpans(out)
	return out
}

// Roots returns up to limit recent root-ish spans, newest first. A span
// counts as a root when its parent is not in the buffer — that covers
// true trace roots, spans whose remote parent lives in another process,
// and spans whose local parent has been evicted, so a worker's
// /debug/traces stays useful for jobs submitted via the coordinator.
func (t *Tracer) Roots(limit int) []SpanJSON {
	if t == nil {
		return nil
	}
	if limit <= 0 {
		limit = 64
	}
	spans := t.snapshot()
	local := make(map[SpanID]struct{}, len(spans))
	for _, d := range spans {
		local[d.Context.SpanID] = struct{}{}
	}
	var out []SpanJSON
	for i := len(spans) - 1; i >= 0 && len(out) < limit; i-- {
		d := spans[i]
		if d.Parent.IsZero() {
			out = append(out, toJSON(d))
			continue
		}
		if _, ok := local[d.Parent]; !ok {
			out = append(out, toJSON(d))
		}
	}
	return out
}
