package tracing

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tr := New("test", 16)
	sp := tr.StartRoot("job")
	sc := sp.Context()
	if !sc.Valid() {
		t.Fatal("root span has invalid context")
	}
	tp := sc.Traceparent()
	if len(tp) != 55 {
		t.Fatalf("traceparent %q has length %d, want 55", tp, len(tp))
	}
	got, ok := ParseTraceparent(tp)
	if !ok {
		t.Fatalf("ParseTraceparent rejected own output %q", tp)
	}
	if got != sc {
		t.Fatalf("round trip changed context: %+v != %+v", got, sc)
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",          // no flags
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra", // v00 with trailer
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",       // reserved version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",       // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",       // zero span id
		"00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01",       // non-hex
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",       // bad separator
		"0A-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",       // uppercase version
	}
	for _, s := range bad {
		if _, ok := ParseTraceparent(s); ok {
			t.Errorf("ParseTraceparent accepted %q", s)
		}
	}
	// Future versions may append fields after a dash.
	future := "cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-what-ever"
	if _, ok := ParseTraceparent(future); !ok {
		t.Errorf("ParseTraceparent rejected future-versioned %q", future)
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	sp := tr.StartRoot("job", String("k", "v"))
	if sp != nil {
		t.Fatal("nil tracer returned non-nil span")
	}
	sp.SetAttr(Int("n", 1))
	sp.SetError(errors.New("boom"))
	sp.End()
	if sc := sp.Context(); sc.Valid() {
		t.Fatal("nil span has valid context")
	}
	if sc := tr.Record(SpanContext{}, "x", time.Now(), time.Now()); sc.Valid() {
		t.Fatal("nil tracer recorded a span")
	}
	if got := tr.Trace(TraceID{1}); got != nil {
		t.Fatal("nil tracer returned spans")
	}
	if got := tr.Roots(10); got != nil {
		t.Fatal("nil tracer returned roots")
	}
	ctx, sp2 := Start(context.Background(), "child")
	if sp2 != nil {
		t.Fatal("Start on untraced context returned a span")
	}
	if tr2, _ := FromContext(ctx); tr2 != nil {
		t.Fatal("untraced context carries a tracer")
	}
}

func TestChildSpansShareTrace(t *testing.T) {
	tr := New("svc", 16)
	root := tr.StartRoot("job")
	ctx := NewContext(context.Background(), tr, root.Context())
	ctx2, child := Start(ctx, "attempt", Int("attempt", 1))
	_, grand := Start(ctx2, "phase:contacts")
	grand.End()
	child.End()
	root.End()

	spans := tr.Trace(root.Context().TraceID)
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]SpanJSON{}
	for _, s := range spans {
		if s.TraceID != root.Context().TraceID.String() {
			t.Fatalf("span %s has trace %s, want %s", s.Name, s.TraceID, root.Context().TraceID)
		}
		byName[s.Name] = s
	}
	if byName["attempt"].ParentID != byName["job"].SpanID {
		t.Fatal("attempt span is not a child of job")
	}
	if byName["phase:contacts"].ParentID != byName["attempt"].SpanID {
		t.Fatal("phase span is not a child of attempt")
	}
}

func TestRingEvictionUnderLoad(t *testing.T) {
	const capacity = 64
	tr := New("svc", capacity)
	root := tr.StartRoot("job")
	root.End()
	for i := 0; i < 10*capacity; i++ {
		tr.Record(root.Context(), "churn", time.Now(), time.Now(), Int("i", i))
	}
	if got := tr.Recorded(); got != 1+10*capacity {
		t.Fatalf("Recorded() = %d, want %d", got, 1+10*capacity)
	}
	spans := tr.snapshot()
	if len(spans) != capacity {
		t.Fatalf("ring holds %d spans, want exactly capacity %d", len(spans), capacity)
	}
	// The survivors must be the newest spans, in recording order.
	for i := 1; i < len(spans); i++ {
		if spans[i].Start.Before(spans[i-1].Start) {
			t.Fatal("snapshot is not in recording order after wraparound")
		}
	}
	last := spans[len(spans)-1]
	if len(last.Attrs) != 1 || last.Attrs[0].Value != itoa(10*capacity-1) {
		t.Fatalf("newest span attr = %+v, want i=%d", last.Attrs, 10*capacity-1)
	}
	// The root was evicted long ago, so its children now count as roots.
	roots := tr.Roots(capacity)
	if len(roots) != capacity {
		t.Fatalf("got %d orphaned roots, want %d", len(roots), capacity)
	}
}

func TestConcurrentRecording(t *testing.T) {
	tr := New("svc", 128)
	root := tr.StartRoot("job")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := NewContext(context.Background(), tr, root.Context())
			for i := 0; i < 200; i++ {
				_, sp := Start(ctx, fmt.Sprintf("worker-%d", g))
				sp.SetAttr(Int("i", i))
				if i%3 == 0 {
					sp.SetError(errors.New("transient"))
				}
				sp.End()
			}
		}(g)
	}
	// Concurrent readers while writers churn.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Trace(root.Context().TraceID)
				tr.Roots(32)
			}
		}()
	}
	wg.Wait()
	root.End()
	if got := tr.Recorded(); got != 8*200+1 {
		t.Fatalf("Recorded() = %d, want %d", got, 8*200+1)
	}
}

func TestSpanEndIsIdempotent(t *testing.T) {
	tr := New("svc", 8)
	sp := tr.StartRoot("job")
	sp.End()
	sp.End()
	sp.End()
	if got := tr.Recorded(); got != 1 {
		t.Fatalf("Recorded() = %d after repeated End, want 1", got)
	}
}

func TestTraceSortedByStart(t *testing.T) {
	tr := New("svc", 16)
	root := tr.StartRoot("job")
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	tr.Record(root.Context(), "late", base.Add(2*time.Second), base.Add(3*time.Second))
	tr.Record(root.Context(), "early", base, base.Add(time.Second))
	root.End()
	spans := tr.Trace(root.Context().TraceID)
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[0].Name != "early" || spans[1].Name != "late" {
		t.Fatalf("spans not sorted by start: %s, %s, %s", spans[0].Name, spans[1].Name, spans[2].Name)
	}
}

func TestRootsNewestFirstAndLimited(t *testing.T) {
	tr := New("svc", 32)
	for i := 0; i < 5; i++ {
		sp := tr.StartRoot("job", Int("i", i))
		sp.End()
	}
	roots := tr.Roots(3)
	if len(roots) != 3 {
		t.Fatalf("got %d roots, want 3", len(roots))
	}
	if roots[0].Attrs[0].Value != "4" || roots[2].Attrs[0].Value != "2" {
		t.Fatalf("roots not newest-first: %+v", roots)
	}
}
