package groundstation

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// linearCovering is the O(plan) scan PlanIndex replaces: first assignment
// in plan order covering (noradID, t) wins.
func linearCovering(plan []Assignment, noradID int, t time.Time) (Assignment, bool) {
	for i := range plan {
		if plan[i].Covers(noradID, t) {
			return plan[i], true
		}
	}
	return Assignment{}, false
}

func TestPlanIndexMatchesLinearScan(t *testing.T) {
	t0 := time.Date(2024, 10, 1, 0, 0, 0, 0, time.UTC)
	rng := rand.New(rand.NewSource(7))

	// A deliberately overlapping plan: several stations tuned to the same
	// satellite at once (the round-robin policy produces exactly this),
	// interleaved out of time order to exercise the plan-order tie-break.
	var plan []Assignment
	for i := 0; i < 200; i++ {
		sat := 91000 + rng.Intn(6)
		start := t0.Add(time.Duration(rng.Intn(24*60)) * time.Minute)
		plan = append(plan, Assignment{
			StationID: fmt.Sprintf("st-%d", i%5),
			NoradID:   sat,
			Start:     start,
			End:       start.Add(time.Duration(1+rng.Intn(30)) * time.Minute),
		})
	}
	ix := NewPlanIndex(plan)

	for q := 0; q < 5000; q++ {
		sat := 91000 + rng.Intn(7) // includes a satellite not in the plan
		at := t0.Add(time.Duration(rng.Intn(25*60*60)) * time.Second)
		want, wantOK := linearCovering(plan, sat, at)
		got, gotOK := ix.Covering(sat, at)
		if wantOK != gotOK || got != want {
			t.Fatalf("query (%d, %v): index returned %+v/%v, linear scan %+v/%v",
				sat, at, got, gotOK, want, wantOK)
		}
	}
}

func TestPlanIndexBoundaries(t *testing.T) {
	t0 := time.Date(2024, 10, 1, 0, 0, 0, 0, time.UTC)
	a := Assignment{StationID: "st-1", NoradID: 1, Start: t0, End: t0.Add(10 * time.Minute)}
	ix := NewPlanIndex([]Assignment{a})

	if _, ok := ix.Covering(1, t0.Add(-time.Nanosecond)); ok {
		t.Error("covered before Start")
	}
	if got, ok := ix.Covering(1, t0); !ok || got != a {
		t.Error("not covered at Start (inclusive)")
	}
	if _, ok := ix.Covering(1, a.End); ok {
		t.Error("covered at End (exclusive)")
	}
	if _, ok := ix.Covering(2, t0); ok {
		t.Error("covered for unknown satellite")
	}
}
