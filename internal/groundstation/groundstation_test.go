package groundstation

import (
	"testing"
	"time"

	"github.com/sinet-io/sinet/internal/orbit"
)

var t0 = time.Date(2024, 10, 1, 0, 0, 0, 0, time.UTC)

func mkPass(norad int, startMin, durMin int) orbit.Pass {
	return orbit.Pass{
		NoradID: norad,
		AOS:     t0.Add(time.Duration(startMin) * time.Minute),
		LOS:     t0.Add(time.Duration(startMin+durMin) * time.Minute),
	}
}

func mkStations(n int) []Station {
	out := make([]Station, n)
	for i := range out {
		out[i] = Station{ID: string(rune('A' + i)), Site: "HK", Location: orbit.NewGeodeticDeg(22.3, 114.2, 0)}
	}
	return out
}

func TestTrackingCoversNonOverlapping(t *testing.T) {
	sched := TrackingScheduler{}
	passes := []orbit.Pass{mkPass(1, 0, 10), mkPass(2, 20, 10), mkPass(3, 40, 10)}
	got := sched.Plan(mkStations(1), passes, t0, t0.Add(2*time.Hour))
	if len(got) != 3 {
		t.Fatalf("assignments = %d, want 3 (one station suffices for serial passes)", len(got))
	}
	for i, a := range got {
		if a.StationID != "A" {
			t.Errorf("assignment %d on station %s", i, a.StationID)
		}
		if a.Pass == nil {
			t.Errorf("assignment %d missing pass back-reference", i)
		}
	}
}

func TestTrackingConcurrentPassesNeedStations(t *testing.T) {
	sched := TrackingScheduler{}
	// Three fully overlapping passes, two stations: one pass dropped.
	passes := []orbit.Pass{mkPass(1, 0, 10), mkPass(2, 1, 10), mkPass(3, 2, 10)}
	got := sched.Plan(mkStations(2), passes, t0, t0.Add(time.Hour))
	if len(got) != 2 {
		t.Fatalf("assignments = %d, want 2", len(got))
	}
	covered := map[int]bool{}
	for _, a := range got {
		covered[a.NoradID] = true
	}
	if !covered[1] || !covered[2] {
		t.Errorf("earliest passes not preferred: %v", covered)
	}
	// With three stations all are covered.
	got = sched.Plan(mkStations(3), passes, t0, t0.Add(time.Hour))
	if len(got) != 3 {
		t.Errorf("3 stations cover %d/3 passes", len(got))
	}
}

func TestTrackingFullCoverage(t *testing.T) {
	sched := TrackingScheduler{}
	p := mkPass(7, 5, 12)
	got := sched.Plan(mkStations(1), []orbit.Pass{p}, t0, t0.Add(time.Hour))
	if len(got) != 1 {
		t.Fatal("no assignment")
	}
	if cov := CoverageOf(p, got); cov != p.Duration() {
		t.Errorf("tracking coverage = %v, want full %v", cov, p.Duration())
	}
}

func TestTrackingEmptyInputs(t *testing.T) {
	sched := TrackingScheduler{}
	if got := sched.Plan(nil, []orbit.Pass{mkPass(1, 0, 5)}, t0, t0.Add(time.Hour)); got != nil {
		t.Error("no stations must yield no plan")
	}
	if got := sched.Plan(mkStations(2), nil, t0, t0.Add(time.Hour)); got != nil {
		t.Error("no passes must yield no plan")
	}
}

func TestTrackingWindowClamping(t *testing.T) {
	sched := TrackingScheduler{}
	p := mkPass(1, -5, 10) // pass starts before the campaign window
	got := sched.Plan(mkStations(1), []orbit.Pass{p}, t0, t0.Add(time.Hour))
	if len(got) != 1 {
		t.Fatal("pass straddling start not planned")
	}
	if got[0].Start.Before(t0) {
		t.Error("assignment start not clamped to campaign start")
	}
	// Entirely outside the window: skipped.
	outside := mkPass(2, -30, 10)
	if got := sched.Plan(mkStations(1), []orbit.Pass{outside}, t0, t0.Add(time.Hour)); len(got) != 0 {
		t.Error("out-of-window pass planned")
	}
}

func TestRoundRobinRotation(t *testing.T) {
	sched := RoundRobinScheduler{Catalog: []int{10, 20, 30}, Slot: 10 * time.Minute}
	got := sched.Plan(mkStations(1), nil, t0, t0.Add(30*time.Minute))
	if len(got) != 3 {
		t.Fatalf("assignments = %d, want 3 slots", len(got))
	}
	want := []int{10, 20, 30}
	for i, a := range got {
		if a.NoradID != want[i] {
			t.Errorf("slot %d tuned to %d, want %d", i, a.NoradID, want[i])
		}
	}
}

func TestRoundRobinStationsDephased(t *testing.T) {
	sched := RoundRobinScheduler{Catalog: []int{10, 20, 30}, Slot: 10 * time.Minute}
	got := sched.Plan(mkStations(2), nil, t0, t0.Add(10*time.Minute))
	if len(got) != 2 {
		t.Fatalf("assignments = %d", len(got))
	}
	if got[0].NoradID == got[1].NoradID {
		t.Error("co-located stations tuned to the same satellite in the same slot")
	}
}

func TestRoundRobinDefaults(t *testing.T) {
	sched := RoundRobinScheduler{Catalog: []int{1}}
	got := sched.Plan(mkStations(1), nil, t0, t0.Add(25*time.Minute))
	// Default slot 10 min -> 3 slots (last clamped).
	if len(got) != 3 {
		t.Fatalf("assignments = %d, want 3", len(got))
	}
	if got[2].End != t0.Add(25*time.Minute) {
		t.Error("final slot not clamped to end")
	}
	if got := sched.Plan(mkStations(1), nil, t0, t0); got != nil {
		t.Error("empty window planned")
	}
	empty := RoundRobinScheduler{}
	if got := empty.Plan(mkStations(1), nil, t0, t0.Add(time.Hour)); got != nil {
		t.Error("empty catalog planned")
	}
}

func TestRoundRobinCoverageWorseThanTracking(t *testing.T) {
	// The motivating property for the paper's customized scheduler: over a
	// catalog of many satellites, round-robin catches only a fraction of a
	// pass, tracking catches all of it.
	catalog := []int{1, 2, 3, 4, 5, 6, 7, 8}
	pass := mkPass(5, 0, 12)
	stations := mkStations(1)

	rr := RoundRobinScheduler{Catalog: catalog, Slot: 5 * time.Minute}
	rrPlan := rr.Plan(stations, []orbit.Pass{pass}, t0, t0.Add(2*time.Hour))
	tr := TrackingScheduler{}
	trPlan := tr.Plan(stations, []orbit.Pass{pass}, t0, t0.Add(2*time.Hour))

	rrCov := CoverageOf(pass, rrPlan)
	trCov := CoverageOf(pass, trPlan)
	if trCov != pass.Duration() {
		t.Errorf("tracking coverage %v != pass duration %v", trCov, pass.Duration())
	}
	if rrCov >= trCov {
		t.Errorf("round-robin coverage %v not below tracking %v", rrCov, trCov)
	}
}

func TestAssignmentCovers(t *testing.T) {
	a := Assignment{NoradID: 9, Start: t0, End: t0.Add(time.Hour)}
	if !a.Covers(9, t0) {
		t.Error("start instant must be covered")
	}
	if a.Covers(9, t0.Add(time.Hour)) {
		t.Error("end instant must be exclusive")
	}
	if a.Covers(8, t0.Add(time.Minute)) {
		t.Error("wrong satellite covered")
	}
	if a.Duration() != time.Hour {
		t.Error("duration")
	}
}

func TestCoverageOfMergesOverlaps(t *testing.T) {
	p := mkPass(1, 0, 10)
	asg := []Assignment{
		{NoradID: 1, Start: t0, End: t0.Add(6 * time.Minute)},
		{NoradID: 1, Start: t0.Add(4 * time.Minute), End: t0.Add(9 * time.Minute)},
		{NoradID: 2, Start: t0, End: t0.Add(10 * time.Minute)}, // other sat
	}
	if cov := CoverageOf(p, asg); cov != 9*time.Minute {
		t.Errorf("coverage = %v, want 9m", cov)
	}
	if cov := CoverageOf(p, nil); cov != 0 {
		t.Errorf("empty coverage = %v", cov)
	}
}
