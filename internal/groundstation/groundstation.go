// Package groundstation models the paper's TinyGS-style receive-only
// ground stations (§2.2): a LILYGO/SX1262 station at a geodetic site, and
// the two scheduling policies that decide which satellite a station listens
// to — the vanilla TinyGS internal scheduler (time-slotted rotation over
// the compatible catalog, blind to visibility) and the paper's customized
// scheduler, which tracks satellite positions and tunes stations to a
// target satellite for the full duration of its pass.
package groundstation

import (
	"fmt"
	"sort"
	"time"

	"github.com/sinet-io/sinet/internal/orbit"
)

// Station is one deployed ground station.
type Station struct {
	ID       string
	Site     string // site code, e.g. "HK"
	Location orbit.Geodetic
	// MinElevationRad is the station's effective horizon mask (terrain,
	// rooftop clutter).
	MinElevationRad float64
}

// String implements fmt.Stringer.
func (s Station) String() string {
	return fmt.Sprintf("%s@%s", s.ID, s.Site)
}

// Assignment tunes one station to one satellite for a time window.
type Assignment struct {
	StationID string
	NoradID   int
	Start     time.Time
	End       time.Time
	// Pass is the underlying predicted pass (customized scheduler only).
	Pass *orbit.Pass
}

// Duration returns the assignment window length.
func (a Assignment) Duration() time.Duration { return a.End.Sub(a.Start) }

// Covers reports whether the assignment has the station tuned to the given
// satellite at time t.
func (a Assignment) Covers(noradID int, t time.Time) bool {
	return a.NoradID == noradID && !t.Before(a.Start) && t.Before(a.End)
}

// Scheduler plans which station listens to which satellite.
type Scheduler interface {
	// Name identifies the policy in reports and ablations.
	Name() string
	// Plan produces assignments for the stations given the predicted
	// passes of all candidate satellites between start and end.
	Plan(stations []Station, passes []orbit.Pass, start, end time.Time) []Assignment
}

// TrackingScheduler is the paper's customized scheduler: it knows every
// upcoming pass and greedily assigns each pass to a free station so the
// station is tuned to that satellite's frequency and beacon parameters for
// the entire window. Passes that exceed station capacity are dropped
// (reported by Plan simply not covering them).
type TrackingScheduler struct{}

// Name implements Scheduler.
func (TrackingScheduler) Name() string { return "customized-tracking" }

// Plan implements Scheduler with greedy interval scheduling: passes sorted
// by AOS, each assigned to the first station free for the whole window.
func (TrackingScheduler) Plan(stations []Station, passes []orbit.Pass, start, end time.Time) []Assignment {
	if len(stations) == 0 || len(passes) == 0 {
		return nil
	}
	sorted := make([]orbit.Pass, len(passes))
	copy(sorted, passes)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].AOS.Before(sorted[j].AOS) })

	busyUntil := make([]time.Time, len(stations))
	out := make([]Assignment, 0, len(sorted))
	for i := range sorted {
		p := &sorted[i]
		if p.LOS.Before(start) || p.AOS.After(end) {
			continue
		}
		for si := range stations {
			if !busyUntil[si].After(p.AOS) {
				busyUntil[si] = p.LOS
				out = append(out, Assignment{
					StationID: stations[si].ID,
					NoradID:   p.NoradID,
					Start:     maxTime(p.AOS, start),
					End:       minTime(p.LOS, end),
					Pass:      p,
				})
				break
			}
		}
	}
	return out
}

// RoundRobinScheduler approximates vanilla TinyGS behaviour: each station
// rotates through the compatible satellite catalog on a fixed time slot,
// regardless of whether the chosen satellite is visible. Stations are
// de-phased from each other so a site's fleet spreads across the catalog.
type RoundRobinScheduler struct {
	// Catalog is the NORAD IDs the station firmware knows about.
	Catalog []int
	// Slot is the dwell time per satellite (TinyGS reassigns on the order
	// of several minutes).
	Slot time.Duration
}

// Name implements Scheduler.
func (RoundRobinScheduler) Name() string { return "vanilla-roundrobin" }

// Plan implements Scheduler.
func (s RoundRobinScheduler) Plan(stations []Station, passes []orbit.Pass, start, end time.Time) []Assignment {
	if len(stations) == 0 || len(s.Catalog) == 0 || !end.After(start) {
		return nil
	}
	slot := s.Slot
	if slot <= 0 {
		slot = 10 * time.Minute
	}
	var out []Assignment
	for si, st := range stations {
		for t, idx := start, si; t.Before(end); t, idx = t.Add(slot), idx+1 {
			slotEnd := minTime(t.Add(slot), end)
			out = append(out, Assignment{
				StationID: st.ID,
				NoradID:   s.Catalog[idx%len(s.Catalog)],
				Start:     t,
				End:       slotEnd,
			})
		}
	}
	return out
}

// CoverageOf computes, for one satellite pass, the total time any
// assignment had some station tuned to that satellite — the scheduler
// quality metric the ablation bench reports.
func CoverageOf(p orbit.Pass, assignments []Assignment) time.Duration {
	type iv struct{ s, e time.Time }
	var ivs []iv
	for _, a := range assignments {
		if a.NoradID != p.NoradID {
			continue
		}
		s := maxTime(a.Start, p.AOS)
		e := minTime(a.End, p.LOS)
		if e.After(s) {
			ivs = append(ivs, iv{s, e})
		}
	}
	if len(ivs) == 0 {
		return 0
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].s.Before(ivs[j].s) })
	var total time.Duration
	cur := ivs[0]
	for _, v := range ivs[1:] {
		if !v.s.After(cur.e) {
			if v.e.After(cur.e) {
				cur.e = v.e
			}
			continue
		}
		total += cur.e.Sub(cur.s)
		cur = v
	}
	total += cur.e.Sub(cur.s)
	return total
}

func maxTime(a, b time.Time) time.Time {
	if a.After(b) {
		return a
	}
	return b
}

func minTime(a, b time.Time) time.Time {
	if a.Before(b) {
		return a
	}
	return b
}
