package groundstation

import (
	"github.com/sinet-io/sinet/internal/orbit"
)

// ClipAssignments subtracts per-station outage windows from a tuning plan:
// an assignment overlapping an outage of its station is truncated or split
// so the returned plan only covers instants the station was actually up.
// Assignments keep their original relative order (fragments of one
// assignment stay adjacent), so PlanIndex tie-breaking — earliest-planned
// assignment wins — is preserved. Stations absent from outages pass
// through untouched, and a nil/empty outage map returns the plan as-is.
// Each station's windows must be sorted and non-overlapping (as
// fault.Schedule.Windows guarantees).
func ClipAssignments(plan []Assignment, outages map[string][]orbit.Window) []Assignment {
	if len(outages) == 0 {
		return plan
	}
	out := make([]Assignment, 0, len(plan))
	for _, a := range plan {
		downs := outages[a.StationID]
		if len(downs) == 0 {
			out = append(out, a)
			continue
		}
		cur := a.Start
		for _, w := range downs {
			if !w.End.After(cur) {
				continue
			}
			if !w.Start.Before(a.End) {
				break
			}
			if w.Start.After(cur) {
				frag := a
				frag.Start = cur
				frag.End = w.Start
				out = append(out, frag)
			}
			cur = maxTime(cur, w.End)
			if !cur.Before(a.End) {
				break
			}
		}
		if cur.Before(a.End) {
			frag := a
			frag.Start = cur
			out = append(out, frag)
		}
	}
	return out
}
