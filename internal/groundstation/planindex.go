package groundstation

import (
	"sort"
	"time"
)

// PlanIndex answers "which assignment covers satellite s at time t" in
// O(log n + overlap) instead of the O(plan) linear scan the beacon loop used
// to run per beacon. When several assignments of one satellite overlap at t
// (the round-robin policy schedules a satellite on multiple stations),
// Covering returns the one that appears earliest in the original plan —
// exactly the winner the linear scan picked.
type PlanIndex struct {
	bySat map[int][]planEntry
}

// planEntry is one assignment with its original plan position and the
// running maximum End over all entries up to and including it (in Start
// order), which lets the stabbing query stop early.
type planEntry struct {
	a      Assignment
	order  int
	maxEnd time.Time
}

// planEntries sorts by (satellite, start, plan order) with a concrete
// sort.Interface: sort.Slice's reflection-based swapper allocates per call
// and plan indexing runs once per (site × constellation) worker.
type planEntries []planEntry

func (s planEntries) Len() int      { return len(s) }
func (s planEntries) Swap(i, j int) { s[i], s[j] = s[j], s[i] }
func (s planEntries) Less(i, j int) bool {
	if s[i].a.NoradID != s[j].a.NoradID {
		return s[i].a.NoradID < s[j].a.NoradID
	}
	if !s[i].a.Start.Equal(s[j].a.Start) {
		return s[i].a.Start.Before(s[j].a.Start)
	}
	return s[i].order < s[j].order
}

// NewPlanIndex indexes a schedule plan by satellite and start time. All
// entries live in one flat arena sorted by (satellite, start, plan order);
// the per-satellite views are capacity-capped subslices of it, so indexing
// a plan costs a constant number of allocations rather than one append
// chain per satellite.
func NewPlanIndex(plan []Assignment) *PlanIndex {
	entries := make(planEntries, len(plan))
	for i, a := range plan {
		entries[i] = planEntry{a: a, order: i}
	}
	sort.Sort(entries)
	ix := &PlanIndex{bySat: make(map[int][]planEntry)}
	for i := 0; i < len(entries); {
		id := entries[i].a.NoradID
		j := i
		var maxEnd time.Time
		for ; j < len(entries) && entries[j].a.NoradID == id; j++ {
			if entries[j].a.End.After(maxEnd) {
				maxEnd = entries[j].a.End
			}
			entries[j].maxEnd = maxEnd
		}
		ix.bySat[id] = entries[i:j:j]
		i = j
	}
	return ix
}

// Covering returns the assignment covering (noradID, t) — Start ≤ t < End —
// preferring the earliest-planned assignment when several overlap.
func (ix *PlanIndex) Covering(noradID int, t time.Time) (Assignment, bool) {
	entries := ix.bySat[noradID]
	// First entry starting after t; candidates lie strictly before it.
	idx := sort.Search(len(entries), func(i int) bool { return entries[i].a.Start.After(t) })
	best := -1
	bestOrder := 0
	for j := idx - 1; j >= 0; j-- {
		// No entry at or before j ends after t: nothing earlier can cover.
		if !entries[j].maxEnd.After(t) {
			break
		}
		if entries[j].a.Covers(noradID, t) && (best == -1 || entries[j].order < bestOrder) {
			best = j
			bestOrder = entries[j].order
		}
	}
	if best == -1 {
		return Assignment{}, false
	}
	return entries[best].a, true
}
