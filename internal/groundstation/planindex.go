package groundstation

import (
	"sort"
	"time"
)

// PlanIndex answers "which assignment covers satellite s at time t" in
// O(log n + overlap) instead of the O(plan) linear scan the beacon loop used
// to run per beacon. When several assignments of one satellite overlap at t
// (the round-robin policy schedules a satellite on multiple stations),
// Covering returns the one that appears earliest in the original plan —
// exactly the winner the linear scan picked.
type PlanIndex struct {
	bySat map[int][]planEntry
}

// planEntry is one assignment with its original plan position and the
// running maximum End over all entries up to and including it (in Start
// order), which lets the stabbing query stop early.
type planEntry struct {
	a      Assignment
	order  int
	maxEnd time.Time
}

// NewPlanIndex indexes a schedule plan by satellite and start time.
func NewPlanIndex(plan []Assignment) *PlanIndex {
	ix := &PlanIndex{bySat: make(map[int][]planEntry)}
	for i, a := range plan {
		ix.bySat[a.NoradID] = append(ix.bySat[a.NoradID], planEntry{a: a, order: i})
	}
	for _, entries := range ix.bySat {
		sort.SliceStable(entries, func(i, j int) bool {
			if !entries[i].a.Start.Equal(entries[j].a.Start) {
				return entries[i].a.Start.Before(entries[j].a.Start)
			}
			return entries[i].order < entries[j].order
		})
		var maxEnd time.Time
		for i := range entries {
			if entries[i].a.End.After(maxEnd) {
				maxEnd = entries[i].a.End
			}
			entries[i].maxEnd = maxEnd
		}
	}
	return ix
}

// Covering returns the assignment covering (noradID, t) — Start ≤ t < End —
// preferring the earliest-planned assignment when several overlap.
func (ix *PlanIndex) Covering(noradID int, t time.Time) (Assignment, bool) {
	entries := ix.bySat[noradID]
	// First entry starting after t; candidates lie strictly before it.
	idx := sort.Search(len(entries), func(i int) bool { return entries[i].a.Start.After(t) })
	best := -1
	bestOrder := 0
	for j := idx - 1; j >= 0; j-- {
		// No entry at or before j ends after t: nothing earlier can cover.
		if !entries[j].maxEnd.After(t) {
			break
		}
		if entries[j].a.Covers(noradID, t) && (best == -1 || entries[j].order < bestOrder) {
			best = j
			bestOrder = entries[j].order
		}
	}
	if best == -1 {
		return Assignment{}, false
	}
	return entries[best].a, true
}
