package groundstation

import (
	"reflect"
	"testing"
	"time"

	"github.com/sinet-io/sinet/internal/orbit"
)

func clipBase() time.Time { return time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC) }

func mkAssign(station string, norad, startMin, endMin int) Assignment {
	b := clipBase()
	return Assignment{
		StationID: station,
		NoradID:   norad,
		Start:     b.Add(time.Duration(startMin) * time.Minute),
		End:       b.Add(time.Duration(endMin) * time.Minute),
	}
}

func mkWin(startMin, endMin int) orbit.Window {
	b := clipBase()
	return orbit.Window{
		Start: b.Add(time.Duration(startMin) * time.Minute),
		End:   b.Add(time.Duration(endMin) * time.Minute),
	}
}

func TestClipAssignmentsNoOutages(t *testing.T) {
	plan := []Assignment{mkAssign("A", 1, 0, 10)}
	if got := ClipAssignments(plan, nil); !reflect.DeepEqual(got, plan) {
		t.Fatal("nil outage map should return the plan unchanged")
	}
	if got := ClipAssignments(plan, map[string][]orbit.Window{}); !reflect.DeepEqual(got, plan) {
		t.Fatal("empty outage map should return the plan unchanged")
	}
}

func TestClipAssignmentsTruncatesEdges(t *testing.T) {
	plan := []Assignment{mkAssign("A", 1, 10, 30)}
	out := map[string][]orbit.Window{"A": {mkWin(0, 15), mkWin(25, 40)}}
	want := []Assignment{mkAssign("A", 1, 15, 25)}
	if got := ClipAssignments(plan, out); !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestClipAssignmentsSplitsAroundOutage(t *testing.T) {
	plan := []Assignment{mkAssign("A", 1, 0, 60)}
	out := map[string][]orbit.Window{"A": {mkWin(20, 30)}}
	want := []Assignment{mkAssign("A", 1, 0, 20), mkAssign("A", 1, 30, 60)}
	if got := ClipAssignments(plan, out); !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestClipAssignmentsDropsFullyCovered(t *testing.T) {
	plan := []Assignment{mkAssign("A", 1, 10, 20)}
	out := map[string][]orbit.Window{"A": {mkWin(5, 25)}}
	if got := ClipAssignments(plan, out); len(got) != 0 {
		t.Fatalf("fully covered assignment survived: %v", got)
	}
}

func TestClipAssignmentsPerStationAndOrder(t *testing.T) {
	plan := []Assignment{
		mkAssign("A", 1, 0, 30),
		mkAssign("B", 2, 0, 30),
		mkAssign("A", 3, 40, 70),
	}
	out := map[string][]orbit.Window{"A": {mkWin(10, 20), mkWin(50, 55)}}
	got := ClipAssignments(plan, out)
	want := []Assignment{
		mkAssign("A", 1, 0, 10),
		mkAssign("A", 1, 20, 30),
		mkAssign("B", 2, 0, 30), // station B untouched
		mkAssign("A", 3, 40, 50),
		mkAssign("A", 3, 55, 70),
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}
