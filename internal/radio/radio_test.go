package radio

import (
	"math"
	"testing"

	"github.com/sinet-io/sinet/internal/channel"
	"github.com/sinet-io/sinet/internal/lora"
	"github.com/sinet-io/sinet/internal/sim"
)

func testLink(seed int64) *Link {
	budget := channel.Budget{
		TxPowerDBm:   22,
		TxAntenna:    channel.SatelliteDipole,
		RxAntenna:    channel.TinyGSGroundAntenna,
		RxNoiseFigDB: 6,
	}
	model := channel.NewModel(sim.NewRNG(seed, "chan"))
	return NewLink(lora.DefaultDtSParams(), budget, model, 400.45, sim.NewRNG(seed, "rx"))
}

func TestTransmitCloseLinkDecodes(t *testing.T) {
	l := testLink(1)
	ok := 0
	for i := 0; i < 200; i++ {
		r := l.Transmit(Geometry{DistanceKm: 600, ElevationRad: 1.2}, channel.Sunny, 20)
		if r.Decoded {
			ok++
		}
		if r.Decoded && !r.Detected {
			t.Fatal("decoded without detection")
		}
	}
	if ok < 190 {
		t.Errorf("high-elevation 600 km link decoded %d/200, want nearly all", ok)
	}
}

func TestTransmitFarLinkFails(t *testing.T) {
	l := testLink(2)
	ok := 0
	for i := 0; i < 200; i++ {
		r := l.Transmit(Geometry{DistanceKm: 3400, ElevationRad: 0.02, RangeRateKmS: 7.0}, channel.Rainy, 20)
		if r.Decoded {
			ok++
		}
	}
	if ok > 20 {
		t.Errorf("horizon-grazing 3400 km link decoded %d/200, want almost none", ok)
	}
}

func TestTransmitElevationGradient(t *testing.T) {
	// Mid-elevation links must decode more often than edge-of-window links
	// — the mechanism behind the paper's Fig. 9.
	decodeRate := func(d, elev float64) float64 {
		l := testLink(3)
		ok := 0
		const n = 400
		for i := 0; i < n; i++ {
			if l.Transmit(Geometry{DistanceKm: d, ElevationRad: elev}, channel.Sunny, 20).Decoded {
				ok++
			}
		}
		return float64(ok) / n
	}
	mid := decodeRate(1000, 0.9)
	edge := decodeRate(3000, 0.06)
	if mid <= edge {
		t.Errorf("mid-window rate %.2f not above edge rate %.2f", mid, edge)
	}
}

func TestWeatherDegradesLink(t *testing.T) {
	rate := func(w channel.Weather) float64 {
		l := testLink(4)
		ok := 0
		const n = 600
		for i := 0; i < n; i++ {
			if l.Transmit(Geometry{DistanceKm: 2000, ElevationRad: 0.25}, w, 20).Decoded {
				ok++
			}
		}
		return float64(ok) / n
	}
	sunny, rainy := rate(channel.Sunny), rate(channel.Rainy)
	if rainy >= sunny {
		t.Errorf("rainy rate %.2f not below sunny %.2f", rainy, sunny)
	}
}

func TestDopplerPenaltyApplied(t *testing.T) {
	l := testLink(5)
	r := l.Transmit(Geometry{DistanceKm: 1500, ElevationRad: 0.3, RangeRateKmS: 7.5}, channel.Sunny, 20)
	if r.DopplerHz >= 0 {
		t.Error("receding geometry must produce negative Doppler")
	}
	if r.SNRDB > r.RawSNRDB {
		t.Error("Doppler penalty must not raise SNR")
	}
	// ~10 kHz at 400 MHz: within SF10/125k static tolerance, so penalty is
	// bounded.
	if r.RawSNRDB-r.SNRDB > 3 {
		t.Errorf("in-tolerance Doppler penalty = %.1f dB", r.RawSNRDB-r.SNRDB)
	}
}

func TestMeanSNRDeterministic(t *testing.T) {
	l := testLink(6)
	g := Geometry{DistanceKm: 1200, ElevationRad: 0.4}
	a := l.MeanSNR(g, channel.Sunny)
	b := l.MeanSNR(g, channel.Sunny)
	if a != b {
		t.Error("MeanSNR not deterministic")
	}
	if l.MeanSNR(g, channel.Stormy) >= a {
		t.Error("storm must reduce mean SNR")
	}
}

func TestElevationFromRange(t *testing.T) {
	// Straight overhead: range = altitude.
	if el := ElevationFromRange(550, 550); math.Abs(el-math.Pi/2) > 0.01 {
		t.Errorf("overhead elevation = %v", el)
	}
	// Horizon range for 550 km: sqrt((re+h)²-re²) ≈ 2715 km -> elevation ≈ 0.
	if el := ElevationFromRange(550, 2715); math.Abs(el) > 0.02 {
		t.Errorf("horizon elevation = %v rad", el)
	}
	// Monotone: longer range, lower elevation.
	prev := math.Pi / 2
	for d := 750.0; d < 2700; d += 200 {
		el := ElevationFromRange(550, d)
		if el >= prev {
			t.Fatalf("elevation not decreasing at %v km", d)
		}
		prev = el
	}
	// Degenerate input.
	if ElevationFromRange(550, 0) != math.Pi/2 {
		t.Error("zero range must return zenith")
	}
}
