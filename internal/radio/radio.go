// Package radio composes the lora and channel packages into a single
// "transmit one frame over a DtS link" primitive shared by every receiver
// in the system — ground stations hearing satellite beacons, satellites
// hearing node uplinks, and nodes hearing ACKs. One Link call realizes the
// channel, applies the Doppler penalty and the packet error model, and
// reports whether the frame was detected and decoded along with the radio
// metadata a trace record needs.
package radio

import (
	"math"
	"time"

	"github.com/sinet-io/sinet/internal/channel"
	"github.com/sinet-io/sinet/internal/lora"
	"github.com/sinet-io/sinet/internal/sim"
)

// Link is a directional radio link with fixed modulation and budget. The
// Params and Budget fields must not be mutated after NewLink: the hot
// transmit path uses budget terms precomputed at construction.
type Link struct {
	Params   lora.Params
	Budget   channel.Budget
	Model    *channel.Model
	ErrModel lora.PacketErrorModel
	FreqMHz  float64

	rng *sim.RNG

	// Precomputed budget terms: the noise floor depends only on the fixed
	// bandwidth and noise figure, and the gain/loss sum is constant, so
	// neither needs recomputing per frame.
	noiseDBm    float64
	fixedGainDB float64
}

// NewLink builds a link. The RNG drives reception dice rolls; the channel
// model carries its own stream.
func NewLink(params lora.Params, budget channel.Budget, model *channel.Model, freqMHz float64, rng *sim.RNG) *Link {
	return &Link{
		Params:      params,
		Budget:      budget,
		Model:       model,
		ErrModel:    lora.DefaultPacketErrorModel(),
		FreqMHz:     freqMHz,
		rng:         rng,
		noiseDBm:    lora.NoiseFloorDBm(params.BandwidthHz, budget.RxNoiseFigDB),
		fixedGainDB: budget.TxPowerDBm + budget.TxAntenna.GainDB + budget.RxAntenna.GainDB - budget.ImplLossDB,
	}
}

// Geometry is the instantaneous transmitter-receiver geometry.
type Geometry struct {
	// At timestamps the frame so shadowing correlates across packets sent
	// close together (zero = independent draw).
	At           time.Time
	DistanceKm   float64
	ElevationRad float64
	// RangeRateKmS drives the Doppler offset (positive receding).
	RangeRateKmS float64
	// RangeAccelKmS2 drives the Doppler rate; for LEO links the rate is
	// well approximated from the pass geometry. Zero is acceptable for
	// short frames.
	RangeAccelKmS2 float64
}

// Reception is the outcome of one frame over the link.
type Reception struct {
	Detected  bool // preamble detected
	Decoded   bool // full frame decoded
	RSSIDBm   float64
	SNRDB     float64 // post-Doppler effective SNR
	RawSNRDB  float64 // channel SNR before the Doppler penalty
	DopplerHz float64
}

// Transmit realizes one frame of payloadBytes over the link under the given
// geometry and weather.
func (l *Link) Transmit(g Geometry, w channel.Weather, payloadBytes int) Reception {
	// Inlined Budget.ApplyAt with the constant terms hoisted to NewLink;
	// the arithmetic order matches ApplyAt exactly, so results are
	// bit-identical.
	loss := l.Model.SampleAt(g.At, g.DistanceKm, l.FreqMHz, g.ElevationRad, w)
	rssi := l.fixedGainDB - loss.TotalDB
	rawSNR := rssi - l.noiseDBm

	doppler := lora.DopplerShiftHz(l.FreqMHz*1e6, g.RangeRateKmS)
	dopplerRate := -g.RangeAccelKmS2 / 299792.458 * l.FreqMHz * 1e6
	penalty := l.Params.DopplerPenaltyDB(doppler, dopplerRate)

	snr := rawSNR - penalty
	out := Reception{
		RSSIDBm:   rssi,
		SNRDB:     snr,
		RawSNRDB:  rawSNR,
		DopplerHz: doppler,
	}
	pDetect := l.ErrModel.PreambleDetectProbability(snr, l.Params)
	if !l.rng.Bool(pDetect) {
		return out
	}
	out.Detected = true
	pDecode := l.ErrModel.SuccessProbability(snr, l.Params, payloadBytes)
	out.Decoded = l.rng.Bool(pDecode)
	return out
}

// MeanSNR returns the deterministic expected SNR (no fading draws, no
// Doppler penalty) for planning and theoretical tables.
func (l *Link) MeanSNR(g Geometry, w channel.Weather) float64 {
	rssi := l.Budget.MeanRSSI(g.DistanceKm, l.FreqMHz, g.ElevationRad, w)
	noise := lora.NoiseFloorDBm(l.Params.BandwidthHz, l.Budget.RxNoiseFigDB)
	return rssi - noise
}

// ElevationFromRange estimates the elevation angle for a satellite at
// altitude altKm observed at slant range dKm (law of cosines on the
// Earth-centred triangle). Useful when only the range is known.
func ElevationFromRange(altKm, dKm float64) float64 {
	const re = 6371.0
	rs := re + altKm
	if dKm <= 0 {
		return math.Pi / 2
	}
	// cos(zenith at observer) from triangle: rs² = re² + d² + 2·re·d·sin(el)
	sinEl := (rs*rs - re*re - dKm*dKm) / (2 * re * dKm)
	if sinEl > 1 {
		sinEl = 1
	}
	if sinEl < -1 {
		sinEl = -1
	}
	return math.Asin(sinEl)
}
