package obs

import (
	"runtime"
	"strings"
	"testing"
)

func TestRegisterRuntimeMetrics(t *testing.T) {
	r := New()
	RegisterRuntimeMetrics(r)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, fam := range []string{
		"sinet_go_goroutines",
		"sinet_go_heap_inuse_bytes",
		"sinet_go_gc_pause_seconds_total",
	} {
		if !strings.Contains(out, "# TYPE "+fam+" gauge") {
			t.Errorf("scrape missing %s:\n%s", fam, out)
		}
		if strings.Contains(out, fam+" 0\n") && fam != "sinet_go_gc_pause_seconds_total" {
			t.Errorf("%s sampled as zero — GaugeFunc not live:\n%s", fam, out)
		}
	}
	if runtime.GOOS == "linux" {
		if !strings.Contains(out, "sinet_process_open_fds") {
			t.Errorf("scrape missing sinet_process_open_fds on linux:\n%s", out)
		}
	}
	// Nil registry registers nothing and must not panic.
	RegisterRuntimeMetrics(nil)
}
