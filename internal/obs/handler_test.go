package obs

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestHandlerGoldenScrape serves a registry with one metric of each kind
// over real HTTP and compares the scrape byte-for-byte against the
// expected exposition text. Deterministic inputs make the whole body a
// golden value, pinning HELP/TYPE lines, ordering, histogram expansion
// and float formatting at once.
func TestHandlerGoldenScrape(t *testing.T) {
	r := New()
	jobs := r.Gauge("sinet_jobs_queued", "Jobs waiting for a worker.")
	jobs.Set(3)
	hits := r.Counter("sinet_cache_hits_total", "Result-cache lookups answered from memory.")
	hits.Add(41)
	r.GaugeFunc("sinet_queue_capacity", "Configured queue bound.", func() float64 { return 64 })
	adm := r.CounterVec("sinet_admission_total", "Submissions by HTTP status.", "code")
	adm.With("202").Add(5)
	adm.With("429").Inc()
	dur := r.HistogramVec("sinet_campaign_seconds", "Campaign wall time by kind.", "kind", []float64{0.5, 1})
	dur.With("passive").Observe(0.25)
	dur.With("passive").Observe(0.75)
	dur.With("passive").Observe(4)

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	want := strings.Join([]string{
		"# HELP sinet_admission_total Submissions by HTTP status.",
		"# TYPE sinet_admission_total counter",
		`sinet_admission_total{code="202"} 5`,
		`sinet_admission_total{code="429"} 1`,
		"# HELP sinet_cache_hits_total Result-cache lookups answered from memory.",
		"# TYPE sinet_cache_hits_total counter",
		"sinet_cache_hits_total 41",
		"# HELP sinet_campaign_seconds Campaign wall time by kind.",
		"# TYPE sinet_campaign_seconds histogram",
		`sinet_campaign_seconds_bucket{kind="passive",le="0.5"} 1`,
		`sinet_campaign_seconds_bucket{kind="passive",le="1"} 2`,
		`sinet_campaign_seconds_bucket{kind="passive",le="+Inf"} 3`,
		`sinet_campaign_seconds_sum{kind="passive"} 5`,
		`sinet_campaign_seconds_count{kind="passive"} 3`,
		"# HELP sinet_jobs_queued Jobs waiting for a worker.",
		"# TYPE sinet_jobs_queued gauge",
		"sinet_jobs_queued 3",
		"# HELP sinet_queue_capacity Configured queue bound.",
		"# TYPE sinet_queue_capacity gauge",
		"sinet_queue_capacity 64",
		"",
	}, "\n")
	if string(body) != want {
		t.Errorf("scrape mismatch:\n--- got ---\n%s\n--- want ---\n%s", body, want)
	}
}
