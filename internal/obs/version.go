package obs

import "runtime/debug"

// Version reports the main module's build version for startup log lines:
// the VCS tag or pseudo-version for released binaries, "(devel)" for
// source builds, "unknown" when build info is unavailable (e.g. test
// binaries built without module info).
func Version() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "unknown"
}
