package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
)

// Registry is a named collection of metric families rendered together as
// one Prometheus text scrape. Registration is idempotent: asking twice
// for the same (name, kind) returns the same metric, so independent
// subsystems can share one family without coordination. Registering a
// name twice with a different kind, label name, or bucket layout is a
// programming error and panics.
//
// All methods are nil-safe: every constructor on a nil *Registry returns
// a nil metric (whose methods no-op), and rendering a nil registry writes
// nothing. That is the "no registry installed" contract — instrumented
// code never checks whether telemetry is on.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// family is one metric name: its metadata plus the series living under
// it, keyed by label value ("" for the unlabeled singleton).
type family struct {
	name    string
	help    string
	kind    kind
	label   string // label name; "" = unlabeled
	buckets []float64
	fn      func() float64 // kindGaugeFunc only

	mu     sync.Mutex
	series map[string]any // label value -> *Counter | *Gauge | *Histogram
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{families: map[string]*family{}}
}

func (r *Registry) family(name, help string, k kind, label string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: k, label: label, buckets: buckets, series: map[string]any{}}
		r.families[name] = f
		return f
	}
	if f.kind != k || f.label != label || len(f.buckets) != len(buckets) {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s/label=%q (was %s/label=%q)", name, k, label, f.kind, f.label))
	}
	return f
}

func (f *family) counter(value string) *Counter {
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[value]; ok {
		return m.(*Counter)
	}
	c := &Counter{}
	f.series[value] = c
	return c
}

func (f *family) gauge(value string) *Gauge {
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[value]; ok {
		return m.(*Gauge)
	}
	g := &Gauge{}
	f.series[value] = g
	return g
}

func (f *family) histogram(value string) *Histogram {
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[value]; ok {
		return m.(*Histogram)
	}
	h := newHistogram(f.buckets)
	f.series[value] = h
	return h
}

// Counter returns the unlabeled counter registered under name.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.family(name, help, kindCounter, "", nil).counter("")
}

// Gauge returns the unlabeled gauge registered under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.family(name, help, kindGauge, "", nil).gauge("")
}

// GaugeFunc registers a gauge whose value is sampled by fn at render
// time, for values that already live somewhere authoritative (queue
// depth, cache size) and would drift if mirrored into a stored gauge.
// fn runs during WritePrometheus and must not call back into the
// registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	f := r.family(name, help, kindGaugeFunc, "", nil)
	f.fn = fn
}

// Histogram returns the unlabeled histogram registered under name with
// the given ascending upper bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.family(name, help, kindHistogram, "", buckets).histogram("")
}

// CounterVec is a counter family partitioned by one label.
type CounterVec struct{ f *family }

// CounterVec registers a counter family whose series are distinguished by
// the given label name.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.family(name, help, kindCounter, label, nil)}
}

// With returns the series for one label value, creating it on first use.
// Fetch series once at wiring time when the value set is known: With
// takes the family lock.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.counter(value)
}

// GaugeVec is a gauge family partitioned by one label.
type GaugeVec struct{ f *family }

// GaugeVec registers a gauge family whose series are distinguished by the
// given label name.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.family(name, help, kindGauge, label, nil)}
}

// With returns the series for one label value, creating it on first use.
func (v *GaugeVec) With(value string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.gauge(value)
}

// HistogramVec is a histogram family partitioned by one label.
type HistogramVec struct{ f *family }

// HistogramVec registers a histogram family whose series are
// distinguished by the given label name and share one bucket layout.
func (r *Registry) HistogramVec(name, help, label string, buckets []float64) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{f: r.family(name, help, kindHistogram, label, buckets)}
}

// With returns the series for one label value, creating it on first use.
func (v *HistogramVec) With(value string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.histogram(value)
}

// --- rendering ----------------------------------------------------------

// escapeHelp escapes a HELP string per the text exposition format.
func escapeHelp(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}

// escapeLabel escapes a label value per the text exposition format.
func escapeLabel(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelPair renders {name="value"} (or "" when the family is unlabeled).
func labelPair(name, value string) string {
	if name == "" {
		return ""
	}
	return "{" + name + "=\"" + escapeLabel(value) + "\"}"
}

// WritePrometheus renders every registered family in text exposition
// format (version 0.0.4): families sorted by name, series sorted by label
// value, histograms expanded into cumulative _bucket/_sum/_count lines.
// The snapshot is per-metric atomic, not cross-metric consistent —
// counters keep moving while a scrape renders, which Prometheus expects.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		if f.kind == kindGaugeFunc {
			fmt.Fprintf(bw, "%s %s\n", f.name, formatFloat(f.fn()))
			continue
		}
		f.mu.Lock()
		values := make([]string, 0, len(f.series))
		for v := range f.series {
			values = append(values, v)
		}
		series := make([]any, len(values))
		sort.Strings(values)
		for i, v := range values {
			series[i] = f.series[v]
		}
		f.mu.Unlock()
		for i, value := range values {
			switch m := series[i].(type) {
			case *Counter:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, labelPair(f.label, value), m.Value())
			case *Gauge:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, labelPair(f.label, value), m.Value())
			case *Histogram:
				writeHistogram(bw, f, value, m)
			}
		}
	}
	return bw.Flush()
}

// writeHistogram renders one histogram series: cumulative buckets in
// bound order, the implicit +Inf bucket, then _sum and _count.
func writeHistogram(w io.Writer, f *family, value string, h *Histogram) {
	var labels string
	if f.label != "" {
		labels = f.label + "=\"" + escapeLabel(value) + "\","
	}
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%sle=\"%s\"} %d\n", f.name, labels, formatFloat(bound), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", f.name, labels, cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelPair(f.label, value), formatFloat(h.Sum()))
	// _count mirrors the +Inf cumulative bucket so one scrape is always
	// internally consistent, even while observations race the render.
	fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelPair(f.label, value), cum)
}

// Handler serves the registry as a Prometheus scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
