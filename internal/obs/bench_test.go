package obs

import (
	"io"
	"testing"
)

// The counter/gauge/histogram update paths sit inside the engine's hot
// loops (one Inc per SGP4 call), so these benchmarks track both latency
// and the zero-allocation contract via -benchmem.

func BenchmarkCounterInc(b *testing.B) {
	c := New().Counter("bench_counter_total", "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncNil(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	c := New().Counter("bench_counter_total", "bench")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := New().Histogram("bench_seconds", "bench", DurationBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.042)
	}
}

func BenchmarkWritePrometheus(b *testing.B) {
	r := New()
	for _, code := range []string{"200", "202", "400", "429", "500"} {
		r.CounterVec("bench_requests_total", "bench", "code").With(code).Add(7)
	}
	r.Histogram("bench_seconds", "bench", DurationBuckets).Observe(0.3)
	r.Gauge("bench_depth", "bench").Set(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := r.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
