package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestNilMetricsAreNoOps pins the nil-registry contract: every
// constructor on a nil registry returns a nil metric, and every method on
// a nil metric is a safe no-op.
func TestNilMetricsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", DurationBuckets)
	cv := r.CounterVec("cv", "", "k")
	gv := r.GaugeVec("gv", "", "k")
	hv := r.HistogramVec("hv", "", "k", DurationBuckets)
	r.GaugeFunc("gf", "", func() float64 { return 1 })

	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Inc()
	g.Dec()
	h.Observe(0.5)
	cv.With("x").Inc()
	gv.With("x").Set(1)
	hv.With("x").Observe(1)

	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil metrics must read as zero: c=%d g=%d hc=%d hs=%v", c.Value(), g.Value(), h.Count(), h.Sum())
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry must render nothing, got %q (err=%v)", sb.String(), err)
	}
}

// TestConcurrentUpdates hammers one counter, gauge and histogram from
// many goroutines; run under -race this is the data-race proof, and the
// final totals prove no update was lost.
func TestConcurrentUpdates(t *testing.T) {
	r := New()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", []float64{0.5, 1, 2})
	hv := r.HistogramVec("hv_seconds", "", "phase", []float64{1})

	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i%4) * 0.75) // 0, 0.75, 1.5, 2.25
				hv.With("phase-" + string(rune('a'+w%2))).Observe(0.5)
				// Interleave scrapes with updates: rendering must never
				// race the writers.
				if i%500 == 0 {
					var sb strings.Builder
					if err := r.WritePrometheus(&sb); err != nil {
						t.Errorf("render: %v", err)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	const n = workers * perWorker
	if got := c.Value(); got != n {
		t.Errorf("counter lost updates: got %d want %d", got, n)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge should balance to 0, got %d", got)
	}
	if got := h.Count(); got != n {
		t.Errorf("histogram count: got %d want %d", got, n)
	}
	wantSum := float64(n/4) * (0 + 0.75 + 1.5 + 2.25)
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-6 {
		t.Errorf("histogram sum: got %v want %v", got, wantSum)
	}
}

// TestHistogramBucketing pins the "first bound >= value" bucketing rule,
// including values exactly on a bound and past the last bound.
func TestHistogramBucketing(t *testing.T) {
	h := newHistogram([]float64{1, 2.5, 5})
	for _, v := range []float64{0.5, 1, 1.1, 2.5, 4, 100} {
		h.Observe(v)
	}
	want := []uint64{2, 2, 1, 1} // (-inf,1], (1,2.5], (2.5,5], (5,+inf)
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d: got %d want %d", i, got, w)
		}
	}
	if h.Count() != 6 {
		t.Errorf("count: got %d want 6", h.Count())
	}
}

// TestRegistrationIsIdempotent verifies two registrations of the same
// name return the same underlying metric, and that kind mismatches panic.
func TestRegistrationIsIdempotent(t *testing.T) {
	r := New()
	a := r.Counter("dup_total", "help")
	b := r.Counter("dup_total", "ignored on re-registration")
	a.Inc()
	if got := b.Value(); got != 1 {
		t.Fatalf("re-registration must return the same counter, got %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("kind mismatch must panic")
		}
	}()
	r.Gauge("dup_total", "")
}

// TestEscaping verifies HELP and label-value escaping per the text
// exposition format: backslashes, quotes (labels only) and newlines.
func TestEscaping(t *testing.T) {
	r := New()
	r.Counter("esc_total", "line one\nback\\slash")
	r.CounterVec("escv_total", "labeled", "site").With("He said \"hi\"\\\n").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `# HELP esc_total line one\nback\\slash`) {
		t.Errorf("HELP not escaped:\n%s", out)
	}
	if !strings.Contains(out, `escv_total{site="He said \"hi\"\\\n"} 1`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
}

// TestRenderOrdering verifies families render sorted by name and series
// sorted by label value, independent of registration/observation order.
func TestRenderOrdering(t *testing.T) {
	r := New()
	r.Counter("zzz_total", "").Inc()
	v := r.CounterVec("mmm_total", "", "k")
	v.With("b").Inc()
	v.With("a").Add(2)
	r.Gauge("aaa", "").Set(7)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	idxA := strings.Index(out, "aaa 7")
	idxMA := strings.Index(out, `mmm_total{k="a"} 2`)
	idxMB := strings.Index(out, `mmm_total{k="b"} 1`)
	idxZ := strings.Index(out, "zzz_total 1")
	if idxA < 0 || idxMA < 0 || idxMB < 0 || idxZ < 0 {
		t.Fatalf("missing series:\n%s", out)
	}
	if !(idxA < idxMA && idxMA < idxMB && idxMB < idxZ) {
		t.Errorf("render out of order (aaa=%d m{a}=%d m{b}=%d zzz=%d):\n%s", idxA, idxMA, idxMB, idxZ, out)
	}
}
