package obs

import (
	"os"
	"runtime"
)

// RegisterRuntimeMetrics registers the process's own health as sampled
// gauges, scraped live at render time (GaugeFunc) so the values are
// authoritative at the instant of each /metrics request:
//
//	sinet_go_goroutines               live goroutine count
//	sinet_go_heap_inuse_bytes         heap bytes in in-use spans
//	sinet_go_gc_pause_seconds_total   cumulative stop-the-world pause time
//	sinet_process_open_fds            open file descriptors (Linux; absent
//	                                  where /proc/self/fd is unreadable)
//
// These are the signals the cluster coordinator re-exports per worker:
// a worker with a goroutine leak or runaway heap shows up on the
// coordinator's /metrics labeled with the peer that is sick, not summed
// into an unattributable fleet total. A nil receiver registers nothing.
func RegisterRuntimeMetrics(r *Registry) {
	if r == nil {
		return
	}
	r.GaugeFunc("sinet_go_goroutines", "Live goroutines in this process.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("sinet_go_heap_inuse_bytes", "Heap bytes in in-use spans.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapInuse)
		})
	r.GaugeFunc("sinet_go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.PauseTotalNs) / 1e9
		})
	if n, ok := countOpenFDs(); ok {
		_ = n
		r.GaugeFunc("sinet_process_open_fds", "Open file descriptors.",
			func() float64 {
				n, ok := countOpenFDs()
				if !ok {
					return 0
				}
				return float64(n)
			})
	}
}

// countOpenFDs counts entries in /proc/self/fd. ok is false on platforms
// (or sandboxes) where the directory cannot be read; registration skips
// the gauge there rather than exporting a constant zero.
func countOpenFDs() (int, bool) {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return 0, false
	}
	return len(ents), true
}
