// Package obs is SINet's zero-dependency telemetry layer: atomic
// counters, gauges and fixed-bucket histograms collected in a named
// Registry and rendered in the Prometheus text exposition format.
//
// The package is built around one contract: instrumentation must be safe
// to leave in hot paths even when nobody is observing. Every metric
// method is nil-safe — calling Inc on a nil *Counter or Observe on a nil
// *Histogram is a no-op that performs zero allocations — so instrumented
// packages hold plain metric pointers that stay nil until a registry is
// installed, and the uninstrumented fast path costs one predictable
// branch. Telemetry observes execution; it never participates in it: no
// metric feeds back into RNG streams, iteration order, or results, which
// is what keeps golden byte-identity tests valid with and without a
// registry (see DESIGN.md "Observability").
package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; all methods are nil-safe and safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. The zero value is ready to
// use; all methods are nil-safe and safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds d (which may be negative).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution: observations are counted into
// the first bucket whose upper bound is >= the value, plus an implicit
// +Inf bucket, alongside a running sum and count. Bucket bounds are fixed
// at construction, so Observe is lock-free. All methods are nil-safe and
// safe for concurrent use.
type Histogram struct {
	bounds []float64       // ascending upper bounds, excluding +Inf
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(buckets []float64) *Histogram {
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 for a nil histogram).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 for a nil histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// DurationBuckets is the default upper-bound set (seconds) for wall-time
// histograms: campaign phases run from tens of milliseconds on a small
// spec to minutes for multi-week multi-site sweeps.
var DurationBuckets = []float64{0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300}
