package experiments

import (
	"fmt"
	"math"
	"time"

	"github.com/sinet-io/sinet/internal/channel"
	"github.com/sinet-io/sinet/internal/constellation"
	"github.com/sinet-io/sinet/internal/core"
	"github.com/sinet-io/sinet/internal/cost"
	"github.com/sinet-io/sinet/internal/energy"
	"github.com/sinet-io/sinet/internal/mac"
	"github.com/sinet-io/sinet/internal/report"
)

// Fig5aResult is the end-to-end reliability experiment.
type Fig5aResult struct {
	TerrestrialReliability float64
	SatNoRetx              float64
	SatWithRetx            float64
}

// Fig5a reproduces the reliability comparison.
func (r *Runner) Fig5a() (Fig5aResult, error) {
	var out Fig5aResult
	terr, err := r.Terrestrial()
	if err != nil {
		return out, err
	}
	sat0, err := r.Active(false)
	if err != nil {
		return out, err
	}
	sat5, err := r.Active(true)
	if err != nil {
		return out, err
	}
	out.TerrestrialReliability = terr.Reliability()
	out.SatNoRetx = sat0.Reliability()
	out.SatWithRetx = sat5.Reliability()

	_ = report.Section(r.Out, "F5a", "End-to-end reliability (Fig. 5a)")
	_ = report.Bars(r.Out, "delivery fraction",
		[]string{"terrestrial", "satellite (no retx)", "satellite (5 retx)"},
		[]float64{out.TerrestrialReliability, out.SatNoRetx, out.SatWithRetx}, 40)
	_ = report.KV(r.Out, "paper", "terrestrial ≈100%, Tianqi 91% → 96% with 5 retx")
	return out, nil
}

// Fig5bResult is the retransmission experiment.
type Fig5bResult struct {
	// MeanRetx keys are "antenna/weather" cells.
	MeanRetx         map[string]float64
	ZeroRetxFraction float64
}

// Fig5b reproduces the weather × antenna retransmission sweep.
func (r *Runner) Fig5b() (Fig5bResult, error) {
	out := Fig5bResult{MeanRetx: map[string]float64{}}
	_ = report.Section(r.Out, "F5b", "DtS retransmissions by weather and antenna (Fig. 5b)")
	tab := report.NewTable("", "Antenna", "Weather", "mean retx", "zero-retx frac", "rel")
	cells := []struct {
		label string
		ant   channel.Antenna
		w     channel.Weather
	}{
		{"5/8λ sunny", channel.FiveEighthsWave, channel.Sunny},
		{"5/8λ rainy", channel.FiveEighthsWave, channel.Rainy},
		{"1/4λ sunny", channel.QuarterWave, channel.Sunny},
		{"1/4λ rainy", channel.QuarterWave, channel.Rainy},
	}
	for _, c := range cells {
		res, err := core.RunActiveCtx(r.context(), core.ActiveConfig{
			Seed: r.Scale.Seed, Start: r.Scale.Start, Days: r.Scale.ActiveDays,
			Policy: mac.DefaultRetxPolicy(), NodeAntenna: c.ant,
			Weather: core.ConstantWeather{State: c.w},
		})
		if err != nil {
			return out, err
		}
		out.MeanRetx[c.label] = res.MeanRetx()
		if c.label == "5/8λ sunny" {
			out.ZeroRetxFraction = res.ZeroRetxFraction()
		}
		tab.AddRow(c.ant.Name, c.w.String(), res.MeanRetx(), res.ZeroRetxFraction(), res.Reliability())
	}
	if err := tab.Render(r.Out); err != nil {
		return out, err
	}
	_ = report.KV(r.Out, "paper", "5/8λ sunny best; more retx with 1/4λ and rain; ~50% need no retx")
	return out, nil
}

// Fig5cdResult covers latency and its decomposition.
type Fig5cdResult struct {
	SatTotal            time.Duration
	TerrTotal           time.Duration
	Ratio               float64
	Wait, DtS, Delivery time.Duration
}

// Fig5cd reproduces the latency comparison and decomposition.
func (r *Runner) Fig5cd() (Fig5cdResult, error) {
	var out Fig5cdResult
	sat, err := r.Active(true)
	if err != nil {
		return out, err
	}
	terr, err := r.Terrestrial()
	if err != nil {
		return out, err
	}
	lb := sat.Latency()
	terrMean, n := terr.MeanLatency()
	out.SatTotal = lb.Total
	out.TerrTotal = terrMean
	out.Wait, out.DtS, out.Delivery = lb.Wait, lb.DtS, lb.Delivery
	if terrMean > 0 {
		out.Ratio = float64(lb.Total) / float64(terrMean)
	}
	_ = report.Section(r.Out, "F5c/F5d", "End-to-end latency and decomposition (Fig. 5c, 5d)")
	_ = report.KV(r.Out, "satellite mean latency", lb.Total.Round(time.Second))
	_ = report.KV(r.Out, "terrestrial mean latency", fmt.Sprintf("%v (n=%d)", terrMean.Round(time.Millisecond), n))
	_ = report.KV(r.Out, "ratio", fmt.Sprintf("%.0fx", out.Ratio))
	_ = report.Bars(r.Out, "satellite latency segments (minutes)",
		[]string{"wait for pass", "DtS (re)tx", "delivery"},
		[]float64{lb.Wait.Minutes(), lb.DtS.Minutes(), lb.Delivery.Minutes()}, 40)
	_ = report.KV(r.Out, "paper", "135.2 min vs 0.2 min (643.6x); segments 55.2/10.4/56.9 min")
	return out, nil
}

// Fig6Result is the energy experiment.
type Fig6Result struct {
	Energy core.EnergyComparison
}

// Fig6 reproduces the Tianqi-node energy comparison.
func (r *Runner) Fig6() (Fig6Result, error) {
	var out Fig6Result
	sat, err := r.Active(true)
	if err != nil {
		return out, err
	}
	terr, err := r.Terrestrial()
	if err != nil {
		return out, err
	}
	out.Energy = core.CompareEnergy(sat, terr, energy.DefaultBattery())
	ec := out.Energy
	_ = report.Section(r.Out, "F6", "Tianqi node energy performance (Fig. 6a-d)")
	tab := report.NewTable("satellite node (per mode)", "Mode", "power mW", "time %", "energy %")
	for _, b := range ec.SatBreakdown {
		tab.AddRow(b.Mode.String(), b.AvgPowerMW, b.TimeFrac*100, b.EnergyFrac*100)
	}
	if err := tab.Render(r.Out); err != nil {
		return out, err
	}
	_ = report.KV(r.Out, "satellite avg power (mW)", ec.SatAvgPowerMW)
	_ = report.KV(r.Out, "terrestrial avg power (mW)", ec.TerrAvgPowerMW)
	_ = report.KV(r.Out, "drain ratio", fmt.Sprintf("%.1fx", ec.PowerRatio))
	_ = report.KV(r.Out, "satellite lifetime (days)", ec.SatLifetimeDays)
	_ = report.KV(r.Out, "terrestrial lifetime (days)", ec.TerrLifetimeDays)
	_ = report.KV(r.Out, "paper", "2.2x Tx power, 14.9x drain; 48 vs 718 days (battery-size dependent)")
	return out, nil
}

// Fig10Result is the terrestrial power-profile experiment.
type Fig10Result struct {
	Profile energy.Profile
}

// Fig10 reports the terrestrial node's measured-mode power profile.
func (r *Runner) Fig10() (Fig10Result, error) {
	out := Fig10Result{Profile: energy.TerrestrialProfile()}
	_ = report.Section(r.Out, "F10", "Terrestrial node power per mode (Fig. 10)")
	_ = report.Bars(r.Out, "power (mW)",
		[]string{"sleep", "standby", "rx", "tx"},
		[]float64{
			out.Profile.Power(energy.Sleep), out.Profile.Power(energy.Standby),
			out.Profile.Power(energy.Rx), out.Profile.Power(energy.Tx),
		}, 40)
	_ = report.KV(r.Out, "paper", "Tx 1630, Rx 265, Standby 146, Sleep 19.1 mW")
	return out, nil
}

// Fig11Result is the terrestrial time/energy breakdown.
type Fig11Result struct {
	SleepStandbyTimeFrac float64
	TxRxEnergyFrac       float64
}

// Fig11 reproduces the terrestrial duty-cycle breakdown.
func (r *Runner) Fig11() (Fig11Result, error) {
	var out Fig11Result
	terr, err := r.Terrestrial()
	if err != nil {
		return out, err
	}
	_, breakdown := core.AverageMeters(terr.Meters)
	_ = report.Section(r.Out, "F11", "Terrestrial node time/energy breakdown (Fig. 11)")
	tab := report.NewTable("", "Mode", "time %", "energy %")
	for _, b := range breakdown {
		tab.AddRow(b.Mode.String(), b.TimeFrac*100, b.EnergyFrac*100)
		switch b.Mode {
		case energy.Sleep, energy.Standby:
			out.SleepStandbyTimeFrac += b.TimeFrac
		case energy.Tx, energy.Rx:
			out.TxRxEnergyFrac += b.EnergyFrac
		}
	}
	if err := tab.Render(r.Out); err != nil {
		return out, err
	}
	_ = report.KV(r.Out, "paper", "95% of time in sleep/standby; >70% of energy in Tx+Rx")
	return out, nil
}

// Fig12aResult is the payload-size reliability experiment.
type Fig12aResult struct {
	// Reliability and the fraction of node-days reaching 90% per payload.
	Reliability map[int]float64
	Reach90     map[int]float64
}

// Fig12a reproduces the payload-size sweep.
func (r *Runner) Fig12a() (Fig12aResult, error) {
	out := Fig12aResult{Reliability: map[int]float64{}, Reach90: map[int]float64{}}
	_ = report.Section(r.Out, "F12a", "Reliability vs payload size (Fig. 12a)")
	tab := report.NewTable("", "Payload B", "reliability", "frac groups >=90%")
	for _, payload := range []int{10, 60, 120} {
		res, err := core.RunActiveCtx(r.context(), core.ActiveConfig{
			Seed: r.Scale.Seed, Start: r.Scale.Start, Days: r.Scale.ActiveDays,
			Policy: mac.NoRetxPolicy(), PayloadBytes: payload,
		})
		if err != nil {
			return out, err
		}
		rel := res.Reliability()
		reach := core.FractionReaching(res.PerGroupReliability(), 0.9)
		out.Reliability[payload] = rel
		out.Reach90[payload] = reach
		tab.AddRow(payload, rel, reach)
	}
	if err := tab.Render(r.Out); err != nil {
		return out, err
	}
	_ = report.KV(r.Out, "paper", ">75% of 10B and >70% of 60B reach 90%; only 40% of 120B")
	return out, nil
}

// Fig12bResult is the concurrency experiment.
type Fig12bResult struct {
	// ReliabilityByConcurrency[k] is delivery fraction for packets whose
	// peak simultaneous-transmitter count was k.
	ReliabilityByConcurrency map[int]float64
}

// Fig12b reproduces the simultaneous-transmissions experiment.
func (r *Runner) Fig12b() (Fig12bResult, error) {
	res, err := core.RunActiveCtx(r.context(), core.ActiveConfig{
		Seed: r.Scale.Seed, Start: r.Scale.Start,
		Days:   r.Scale.ActiveDays + 4, // concurrency groups need samples
		Nodes:  3,
		Policy: mac.NoRetxPolicy(), AlignedPhases: true,
	})
	if err != nil {
		return Fig12bResult{}, err
	}
	out := Fig12bResult{ReliabilityByConcurrency: res.ReliabilityByConcurrency()}
	_ = report.Section(r.Out, "F12b", "Reliability under simultaneous transmissions (Fig. 12b)")
	tab := report.NewTable("", "simultaneous tx", "reliability")
	for k := 1; k <= 3; k++ {
		if rel, ok := out.ReliabilityByConcurrency[k]; ok {
			tab.AddRow(k, rel)
		}
	}
	if err := tab.Render(r.Out); err != nil {
		return out, err
	}
	_ = report.KV(r.Out, "paper", "94% single, 92% two, 89% three nodes")
	return out, nil
}

// Table2Result is the cost comparison.
type Table2Result struct {
	SatCapital, TerrCapital     cost.USD
	SatMonthlyPerNode, TerrPlan cost.USD
	BreakEvenMonths             int
}

// Table2 reproduces the expenditure comparison.
func (r *Runner) Table2() (Table2Result, error) {
	sat := cost.PaperAgricultureSatellite()
	terr := cost.PaperAgricultureTerrestrial()
	out := Table2Result{
		SatCapital:        sat.CapitalCost(),
		TerrCapital:       terr.CapitalCost(),
		SatMonthlyPerNode: sat.MonthlyPerNode(),
		TerrPlan:          cost.LTEMonthlyUSD,
	}
	if m, ok := cost.BreakEvenMonths(sat, terr); ok {
		out.BreakEvenMonths = m
	}
	_ = report.Section(r.Out, "T2", "System expenditure (Table 2)")
	tab := report.NewTable("", "Network", "Device", "Infrastructure", "Operational/month")
	tab.AddRow("Terrestrial IoT", cost.TerrestrialNodeUSD.String()+" per unit",
		cost.TerrestrialGatewayUSD.String()+" per gateway", cost.LTEMonthlyUSD.String())
	tab.AddRow("Satellite IoT", cost.TianqiNodeUSD.String()+" per unit", "-",
		out.SatMonthlyPerNode.String()+" per node")
	if err := tab.Render(r.Out); err != nil {
		return out, err
	}
	_ = report.KV(r.Out, "deployment break-even (months)", out.BreakEvenMonths)
	_ = report.KV(r.Out, "paper", "$35+$219 vs $220; $4.9 vs $23.76 per month")
	return out, nil
}

// Table3Result is the constellation overview.
type Table3Result struct {
	Rows int
}

// Table3 reproduces the measured-constellations table.
func (r *Runner) Table3() (Table3Result, error) {
	_ = report.Section(r.Out, "T3", "Measured constellations (Table 3)")
	tab := report.NewTable("", "SNO", "Region", "#SATs", "Alt km", "Incl", "Freq MHz", "Footprint 0° km2", "Footprint 5° km2")
	out := Table3Result{}
	const deg5 = 5 * math.Pi / 180
	for _, c := range constellation.Specs() {
		for _, g := range c.Groups {
			maxAlt := g.AltHiKm
			tab.AddRow(c.Name, c.Region, g.Count,
				fmt.Sprintf("%.1f-%.1f", g.AltLoKm, g.AltHiKm),
				fmt.Sprintf("%.2f°", g.InclDeg), c.FreqMHz,
				fmt.Sprintf("%.2e", constellation.FootprintKm2(maxAlt, 0)),
				fmt.Sprintf("%.2e", constellation.FootprintKm2(maxAlt, deg5)))
			out.Rows++
		}
	}
	if err := tab.Render(r.Out); err != nil {
		return out, err
	}
	_ = report.KV(r.Out, "paper", "Tianqi 16+4+2, FOSSA 3, PICO 9, CSTP 5 in 400-450 MHz")
	return out, nil
}

// RunAll executes every experiment in paper order.
func (r *Runner) RunAll() error {
	steps := []func() error{
		func() error { _, err := r.Table1(); return err },
		func() error { _, err := r.Table2(); return err },
		func() error { _, err := r.Table3(); return err },
		func() error { _, err := r.Fig3a(); return err },
		func() error { _, err := r.Fig3b(); return err },
		func() error { _, err := r.Fig3c(); return err },
		func() error { _, err := r.Fig3d(); return err },
		func() error { _, err := r.Fig4(); return err },
		func() error { _, err := r.Fig5a(); return err },
		func() error { _, err := r.Fig5b(); return err },
		func() error { _, err := r.Fig5cd(); return err },
		func() error { _, err := r.Fig6(); return err },
		func() error { _, err := r.Fig8(); return err },
		func() error { _, err := r.Fig9(); return err },
		func() error { _, err := r.Fig10(); return err },
		func() error { _, err := r.Fig11(); return err },
		func() error { _, err := r.Fig12a(); return err },
		func() error { _, err := r.Fig12b(); return err },
	}
	for _, step := range steps {
		if err := r.context().Err(); err != nil {
			return err
		}
		if err := step(); err != nil {
			return err
		}
	}
	return nil
}
