package experiments

import (
	"fmt"
	"time"

	"github.com/sinet-io/sinet/internal/core"
	"github.com/sinet-io/sinet/internal/energy"
	"github.com/sinet-io/sinet/internal/mac"
	"github.com/sinet-io/sinet/internal/report"
)

// OptimizationsResult evaluates the DtS improvements the paper's
// conclusion calls for ("our study calls for a specific focus on
// optimizing communication for DtS"), implemented as configuration knobs:
//
//   - sleep-when-idle: let the node sleep between bursts instead of the
//     stock Rx hang-on (attacks Fig. 6's drain).
//   - SNR-gated transmission: only transmit when the gating beacon shows
//     margin above the data demodulation floor (attacks wasted attempts).
//   - retransmission budget: the Fig. 5a knob, swept more finely.
type OptimizationsResult struct {
	StockPowerMW     float64
	SleepIdlePowerMW float64
	EnergySaving     float64 // fraction
	StockReliability float64
	SleepIdleRel     float64

	// Schedule-aware sleeping: the node propagates TLEs itself and wakes
	// only for passes peaking above 20°.
	ScheduleAwarePowerMW float64
	ScheduleAwareRel     float64

	GatedAttempts   int
	UngatedAttempts int
	GatedRel        float64
	UngatedRel      float64

	// RetxReliability maps budget → end-to-end reliability.
	RetxReliability map[int]float64
}

// Optimizations runs the three improvement studies and reports their
// trade-offs.
func (r *Runner) Optimizations() (OptimizationsResult, error) {
	out := OptimizationsResult{RetxReliability: map[int]float64{}}
	base := core.ActiveConfig{
		Seed: r.Scale.Seed, Start: r.Scale.Start, Days: r.Scale.ActiveDays,
		Policy: mac.DefaultRetxPolicy(),
	}

	stock, err := core.RunActiveCtx(r.context(), base)
	if err != nil {
		return out, err
	}
	idleCfg := base
	idleCfg.SleepWhenIdle = true
	idle, err := core.RunActiveCtx(r.context(), idleCfg)
	if err != nil {
		return out, err
	}
	out.StockPowerMW, _ = core.AverageMeters(stock.Meters)
	out.SleepIdlePowerMW, _ = core.AverageMeters(idle.Meters)
	if out.StockPowerMW > 0 {
		out.EnergySaving = 1 - out.SleepIdlePowerMW/out.StockPowerMW
	}
	out.StockReliability = stock.Reliability()
	out.SleepIdleRel = idle.Reliability()

	awareCfg := base
	awareCfg.ScheduleAwareMinElevationRad = 0.35
	aware, err := core.RunActiveCtx(r.context(), awareCfg)
	if err != nil {
		return out, err
	}
	out.ScheduleAwarePowerMW, _ = core.AverageMeters(aware.Meters)
	out.ScheduleAwareRel = aware.Reliability()

	gateCfg := base
	gateCfg.TxGateMarginDB = 5
	gated, err := core.RunActiveCtx(r.context(), gateCfg)
	if err != nil {
		return out, err
	}
	out.UngatedAttempts = stock.MacStats.Attempts
	out.GatedAttempts = gated.MacStats.Attempts
	out.UngatedRel = stock.Reliability()
	out.GatedRel = gated.Reliability()

	for _, budget := range []int{0, 1, 2, 3, 5} {
		cfg := base
		cfg.Policy = mac.RetxPolicy{MaxRetx: budget, AckTimeout: 3 * time.Second}
		res, err := core.RunActiveCtx(r.context(), cfg)
		if err != nil {
			return out, err
		}
		out.RetxReliability[budget] = res.Reliability()
	}

	_ = report.Section(r.Out, "OPT", "DtS optimizations the paper calls for (§5)")
	_ = report.KV(r.Out, "stock node power (mW)", out.StockPowerMW)
	_ = report.KV(r.Out, "sleep-when-idle power (mW)", out.SleepIdlePowerMW)
	_ = report.KV(r.Out, "energy saving", out.EnergySaving)
	_ = report.KV(r.Out, "reliability stock → sleep-idle", joinRel(out.StockReliability, out.SleepIdleRel))
	battery := energy.DefaultBattery()
	_ = report.KV(r.Out, "lifetime stock → sleep-idle (days)",
		joinDays(battery.LifetimeDays(out.StockPowerMW), battery.LifetimeDays(out.SleepIdlePowerMW)))
	_ = report.KV(r.Out, "schedule-aware power (mW)", out.ScheduleAwarePowerMW)
	_ = report.KV(r.Out, "schedule-aware reliability", out.ScheduleAwareRel)
	_ = report.KV(r.Out, "schedule-aware lifetime (days)", battery.LifetimeDays(out.ScheduleAwarePowerMW))
	_ = report.KV(r.Out, "attempts ungated → 5dB-gated", joinInt(out.UngatedAttempts, out.GatedAttempts))
	_ = report.KV(r.Out, "reliability ungated → gated", joinRel(out.UngatedRel, out.GatedRel))
	tab := report.NewTable("retransmission budget sweep", "max retx", "reliability")
	for _, budget := range []int{0, 1, 2, 3, 5} {
		tab.AddRow(budget, out.RetxReliability[budget])
	}
	if err := tab.Render(r.Out); err != nil {
		return out, err
	}
	return out, nil
}

func joinRel(a, b float64) string {
	return fmt.Sprintf("%.1f%% → %.1f%%", a*100, b*100)
}

func joinDays(a, b float64) string {
	return fmt.Sprintf("%.1fd → %.1fd", a, b)
}

func joinInt(a, b int) string {
	return fmt.Sprintf("%d → %d", a, b)
}
