package experiments

import (
	"strings"
	"testing"
)

func quickRunner() (*Runner, *strings.Builder) {
	var buf strings.Builder
	sc := QuickScale()
	return New(sc, &buf), &buf
}

func TestScales(t *testing.T) {
	q, s, p := QuickScale(), StandardScale(), PaperScale()
	if q.PassiveDays >= s.PassiveDays || s.PassiveDays > p.PassiveDays {
		t.Error("scales not ordered")
	}
	if q.Start.IsZero() || s.Start.IsZero() || p.Start.IsZero() {
		t.Error("scales missing start time")
	}
}

func TestRunnerCachesCampaigns(t *testing.T) {
	r, _ := quickRunner()
	a, err := r.Passive()
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Passive()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("passive campaign not cached")
	}
	c, err := r.Active(true)
	if err != nil {
		t.Fatal(err)
	}
	d, err := r.Active(true)
	if err != nil {
		t.Fatal(err)
	}
	if c != d {
		t.Error("active campaign not cached")
	}
	e, err := r.Active(false)
	if err != nil {
		t.Fatal(err)
	}
	if e == c {
		t.Error("retx and no-retx campaigns must differ")
	}
}

func TestTable2StaticNumbers(t *testing.T) {
	r, buf := quickRunner()
	res, err := r.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if res.SatCapital != 660 || res.TerrCapital != 762 {
		t.Errorf("capitals = %v / %v", res.SatCapital, res.TerrCapital)
	}
	if res.SatMonthlyPerNode <= res.TerrPlan {
		t.Error("satellite opex must exceed terrestrial plan")
	}
	if !strings.Contains(buf.String(), "Table 2") {
		t.Error("table header missing")
	}
}

func TestTable3Static(t *testing.T) {
	r, buf := quickRunner()
	res, err := r.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 6 { // 3 Tianqi shells + 3 single-shell fleets
		t.Errorf("rows = %d, want 6", res.Rows)
	}
	out := buf.String()
	for _, want := range []string{"Tianqi", "FOSSA", "PICO", "CSTP", "400.45"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestFig10Static(t *testing.T) {
	r, buf := quickRunner()
	res, err := r.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile.Power(3) != 1630 { // Tx
		t.Error("terrestrial Tx power wrong")
	}
	if !strings.Contains(buf.String(), "Fig. 10") {
		t.Error("figure header missing")
	}
}

func TestPassiveExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign experiments skipped in -short")
	}
	r, buf := quickRunner()

	f3a, err := r.Fig3a()
	if err != nil {
		t.Fatal(err)
	}
	if f3a.TianqiGrowth[1] <= f3a.TianqiGrowth[0] {
		t.Errorf("fleet growth: 22 sats %v h not above 12 sats %v h", f3a.TianqiGrowth[1], f3a.TianqiGrowth[0])
	}
	if f3a.DailyHours["Tianqi"]["HK"] <= f3a.DailyHours["FOSSA"]["HK"] {
		t.Error("Tianqi presence not above FOSSA")
	}

	f4, err := r.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	for cons, shrink := range f4.Shrink {
		if shrink < 0.5 || shrink > 0.99 {
			t.Errorf("%s shrink %.2f outside plausible band", cons, shrink)
		}
	}
	if f4.TianqiDailyEffective >= f4.TianqiDailyTheoretical {
		t.Error("effective daily not below theoretical")
	}

	f8, err := r.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if f8.TianqiP90 <= f8.LowOrbitP90 {
		t.Error("Tianqi long-distance tail not above 500 km class")
	}

	f9, err := r.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if f9.MiddleFraction < 0.5 {
		t.Errorf("middle fraction %.2f", f9.MiddleFraction)
	}

	f3d, err := r.Fig3d()
	if err != nil {
		t.Fatal(err)
	}
	if f3d.OverallLoss < 0.5 {
		t.Errorf("overall beacon loss %.2f below the paper's >50%%", f3d.OverallLoss)
	}

	out := buf.String()
	for _, id := range []string{"F3a", "F3d", "F4", "F8", "F9"} {
		if !strings.Contains(out, "== "+id) {
			t.Errorf("missing section %s", id)
		}
	}
}

func TestActiveExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign experiments skipped in -short")
	}
	r, buf := quickRunner()

	f5a, err := r.Fig5a()
	if err != nil {
		t.Fatal(err)
	}
	if f5a.TerrestrialReliability < 0.99 {
		t.Errorf("terrestrial reliability %.3f", f5a.TerrestrialReliability)
	}
	if f5a.SatWithRetx <= f5a.SatNoRetx {
		t.Error("retx did not improve reliability")
	}

	f5cd, err := r.Fig5cd()
	if err != nil {
		t.Fatal(err)
	}
	if f5cd.Ratio < 50 {
		t.Errorf("latency ratio %.0f too small", f5cd.Ratio)
	}

	f6, err := r.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if f6.Energy.PowerRatio < 5 {
		t.Errorf("power ratio %.1f too small", f6.Energy.PowerRatio)
	}

	f11, err := r.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if f11.SleepStandbyTimeFrac < 0.9 {
		t.Errorf("terrestrial sleep+standby time %.2f", f11.SleepStandbyTimeFrac)
	}

	out := buf.String()
	for _, id := range []string{"F5a", "F5c/F5d", "F6", "F11"} {
		if !strings.Contains(out, "== "+id) {
			t.Errorf("missing section %s", id)
		}
	}
}

func TestOptimizations(t *testing.T) {
	if testing.Short() {
		t.Skip("optimization sweep skipped in -short")
	}
	r, buf := quickRunner()
	res, err := r.Optimizations()
	if err != nil {
		t.Fatal(err)
	}
	if res.SleepIdlePowerMW >= res.StockPowerMW {
		t.Errorf("sleep-when-idle power %.1f not below stock %.1f", res.SleepIdlePowerMW, res.StockPowerMW)
	}
	if res.EnergySaving <= 0 || res.EnergySaving >= 1 {
		t.Errorf("energy saving %.2f out of range", res.EnergySaving)
	}
	if res.ScheduleAwarePowerMW >= res.SleepIdlePowerMW {
		t.Errorf("schedule-aware power %.1f not below sleep-idle %.1f",
			res.ScheduleAwarePowerMW, res.SleepIdlePowerMW)
	}
	if res.GatedAttempts >= res.UngatedAttempts {
		t.Errorf("SNR gate did not reduce attempts: %d vs %d", res.GatedAttempts, res.UngatedAttempts)
	}
	// Reliability is monotone (within noise) in the retx budget.
	if res.RetxReliability[5] < res.RetxReliability[0] {
		t.Errorf("retx=5 reliability %.3f below retx=0 %.3f",
			res.RetxReliability[5], res.RetxReliability[0])
	}
	if !strings.Contains(buf.String(), "OPT") {
		t.Error("optimizations section missing")
	}
}

func TestFig12aOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep skipped in -short")
	}
	r, _ := quickRunner()
	res, err := r.Fig12a()
	if err != nil {
		t.Fatal(err)
	}
	if res.Reliability[120] > res.Reliability[10] {
		t.Errorf("120B reliability %.3f above 10B %.3f", res.Reliability[120], res.Reliability[10])
	}
}
