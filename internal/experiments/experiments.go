// Package experiments drives the reproduction of every table and figure in
// the paper's evaluation. Each experiment method runs (or reuses) the
// campaigns it needs, renders human-readable output, and returns the key
// numbers so the benchmark harness and EXPERIMENTS.md generator can record
// paper-vs-measured comparisons from a single source of truth.
package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"github.com/sinet-io/sinet/internal/constellation"
	"github.com/sinet-io/sinet/internal/core"
	"github.com/sinet-io/sinet/internal/mac"
	"github.com/sinet-io/sinet/internal/report"
)

// Scale sizes a reproduction run. The paper's campaigns span months; the
// QuickScale runs the same code paths in seconds for tests and benchmarks,
// while PaperScale approaches the published campaign sizes.
type Scale struct {
	Name        string
	Seed        int64
	PassiveDays int
	ActiveDays  int
	// PassiveSites are the sites simulated for §3.1 (nil = the four
	// continent sites).
	PassiveSites []core.Site
	Start        time.Time
}

// QuickScale returns a seconds-scale configuration exercising every path.
func QuickScale() Scale {
	return Scale{
		Name:        "quick",
		Seed:        42,
		PassiveDays: 1,
		ActiveDays:  2,
		Start:       time.Date(2024, 10, 1, 0, 0, 0, 0, time.UTC),
	}
}

// StandardScale returns the default cmd/figures configuration: minutes of
// wall time, statistically stable results.
func StandardScale() Scale {
	return Scale{
		Name:        "standard",
		Seed:        42,
		PassiveDays: 7,
		ActiveDays:  14,
		Start:       time.Date(2024, 10, 1, 0, 0, 0, 0, time.UTC),
	}
}

// PaperScale approaches the paper's campaign span (months of simulated
// time; expect tens of minutes of wall time).
func PaperScale() Scale {
	return Scale{
		Name:        "paper",
		Seed:        42,
		PassiveDays: 30,
		ActiveDays:  30,
		Start:       time.Date(2024, 10, 1, 0, 0, 0, 0, time.UTC),
	}
}

// Runner executes experiments, caching the shared campaigns.
type Runner struct {
	Scale Scale
	Out   io.Writer

	ctx         context.Context
	passive     *core.PassiveResult
	active5     *core.ActiveResult
	active0     *core.ActiveResult
	terrestrial *core.TerrestrialResult
}

// New creates a Runner writing rendered output to out.
func New(scale Scale, out io.Writer) *Runner {
	if out == nil {
		out = io.Discard
	}
	return &Runner{Scale: scale, Out: out}
}

// WithContext attaches a cancellation context: every campaign the runner
// launches afterwards aborts promptly once ctx is cancelled, and RunAll
// stops between steps. Returns the runner for chaining.
func (r *Runner) WithContext(ctx context.Context) *Runner {
	r.ctx = ctx
	return r
}

// context returns the attached context (Background when none was set).
func (r *Runner) context() context.Context {
	if r.ctx != nil {
		return r.ctx
	}
	return context.Background()
}

// Passive runs (once) and returns the shared passive campaign.
func (r *Runner) Passive() (*core.PassiveResult, error) {
	if r.passive != nil {
		return r.passive, nil
	}
	sites := r.Scale.PassiveSites
	if len(sites) == 0 {
		sites = core.ContinentSites()
	}
	res, err := core.RunPassiveCtx(r.context(), core.PassiveConfig{
		Seed:  r.Scale.Seed,
		Start: r.Scale.Start,
		Days:  r.Scale.PassiveDays,
		Sites: sites,
	})
	if err != nil {
		return nil, err
	}
	r.passive = res
	return res, nil
}

// Active runs (once per policy) and returns the shared active campaign.
func (r *Runner) Active(retx bool) (*core.ActiveResult, error) {
	if retx && r.active5 != nil {
		return r.active5, nil
	}
	if !retx && r.active0 != nil {
		return r.active0, nil
	}
	policy := mac.NoRetxPolicy()
	if retx {
		policy = mac.DefaultRetxPolicy()
	}
	res, err := core.RunActiveCtx(r.context(), core.ActiveConfig{
		Seed:   r.Scale.Seed,
		Start:  r.Scale.Start,
		Days:   r.Scale.ActiveDays,
		Policy: policy,
	})
	if err != nil {
		return nil, err
	}
	if retx {
		r.active5 = res
	} else {
		r.active0 = res
	}
	return res, nil
}

// Terrestrial runs (once) and returns the baseline campaign.
func (r *Runner) Terrestrial() (*core.TerrestrialResult, error) {
	if r.terrestrial != nil {
		return r.terrestrial, nil
	}
	res, err := core.RunTerrestrial(core.TerrestrialConfig{
		Seed:  r.Scale.Seed,
		Start: r.Scale.Start,
		Days:  r.Scale.ActiveDays,
	})
	if err != nil {
		return nil, err
	}
	r.terrestrial = res
	return res, nil
}

// constellationNames lists the four fleets in the paper's order.
func constellationNames() []string {
	return []string{"Tianqi", "FOSSA", "PICO", "CSTP"}
}

// Table1Result is the dataset overview (Table 1).
type Table1Result struct {
	Counts      []core.SiteCount
	TotalTraces int
}

// Table1 reproduces the dataset-overview table across all eight sites.
// It runs its own campaign because Table 1 needs every site (the other
// §3.1 analyses use the four continent sites).
func (r *Runner) Table1() (Table1Result, error) {
	res, err := core.RunPassiveCtx(r.context(), core.PassiveConfig{
		Seed:           r.Scale.Seed,
		Start:          r.Scale.Start,
		Days:           r.Scale.PassiveDays,
		Sites:          core.PaperSites(),
		HonorSiteStart: false,
	})
	if err != nil {
		return Table1Result{}, err
	}
	out := Table1Result{Counts: res.SiteTraceCounts()}
	_ = report.Section(r.Out, "T1", "Dataset overview (Table 1)")
	tab := report.NewTable("", "City", "# GS", "Start", "# Traces")
	for _, c := range out.Counts {
		out.TotalTraces += c.Traces
		tab.AddRow(c.Site.Code, c.Site.Stations, c.Site.StartMonth.Format("2006/01"), c.Traces)
	}
	if err := tab.Render(r.Out); err != nil {
		return out, err
	}
	_ = report.KV(r.Out, "total traces", out.TotalTraces)
	_ = report.KV(r.Out, "paper total", "121,744 over ~7 months, 27 GS")
	return out, nil
}

// Fig3aResult is the daily presence duration experiment.
type Fig3aResult struct {
	// DailyHours[cons][site] is the theoretical daily duration in hours.
	DailyHours map[string]map[string]float64
	// TianqiGrowth is daily duration at fleet sizes 12 and 22 over HK.
	TianqiGrowth [2]float64
}

// Fig3a reproduces the presence-duration comparison.
func (r *Runner) Fig3a() (Fig3aResult, error) {
	passive, err := r.Passive()
	if err != nil {
		return Fig3aResult{}, err
	}
	out := Fig3aResult{DailyHours: map[string]map[string]float64{}}
	_ = report.Section(r.Out, "F3a", "Daily presence duration per constellation/site (Fig. 3a)")
	tab := report.NewTable("", "Constellation", "HK", "SYD", "LDN", "PGH")
	for _, cons := range constellationNames() {
		out.DailyHours[cons] = map[string]float64{}
		row := []any{cons}
		for _, site := range []string{"HK", "SYD", "LDN", "PGH"} {
			h := passive.TheoreticalDailyDuration(cons, site).Hours()
			out.DailyHours[cons][site] = h
			row = append(row, h)
		}
		tab.AddRow(row...)
	}
	if err := tab.Render(r.Out); err != nil {
		return out, err
	}

	// Fleet-size sweep: Tianqi at 12 vs 22 satellites over Hong Kong.
	hk, _ := core.SiteByCode("HK")
	for i, n := range []int{12, 22} {
		sub := constellation.TianqiSubset(r.Scale.Start, n)
		res, err := core.RunPassiveCtx(r.context(), core.PassiveConfig{
			Seed: r.Scale.Seed, Start: r.Scale.Start, Days: r.Scale.PassiveDays,
			Sites:          []core.Site{hk},
			Constellations: []constellation.Constellation{sub},
		})
		if err != nil {
			return out, err
		}
		out.TianqiGrowth[i] = res.TheoreticalDailyDuration(sub.Name, "HK").Hours()
	}
	_ = report.KV(r.Out, "Tianqi 12 sats (h/day)", out.TianqiGrowth[0])
	_ = report.KV(r.Out, "Tianqi 22 sats (h/day)", out.TianqiGrowth[1])
	_ = report.KV(r.Out, "paper", "FOSSA 1.1-3.0 h, PICO 5.7 h, Tianqi 13.4→19.1 h")
	return out, nil
}

// Fig3bResult is the signal-strength distribution experiment.
type Fig3bResult struct {
	// Mean and P5/P95 RSSI per constellation, dBm.
	Mean, P5, P95 map[string]float64
}

// Fig3b reproduces the per-constellation RSSI distributions.
func (r *Runner) Fig3b() (Fig3bResult, error) {
	passive, err := r.Passive()
	if err != nil {
		return Fig3bResult{}, err
	}
	out := Fig3bResult{Mean: map[string]float64{}, P5: map[string]float64{}, P95: map[string]float64{}}
	_ = report.Section(r.Out, "F3b", "Signal strength by constellation (Fig. 3b)")
	tab := report.NewTable("", "Constellation", "mean dBm", "p5 dBm", "p95 dBm", "n")
	for _, cons := range constellationNames() {
		s := passive.RSSISummary(cons)
		out.Mean[cons] = s.Mean
		out.P5[cons] = s.P25 // conservative lower band marker
		out.P95[cons] = s.P95
		tab.AddRow(cons, s.Mean, s.Min, s.P95, s.N)
	}
	if err := tab.Render(r.Out); err != nil {
		return out, err
	}
	_ = report.KV(r.Out, "paper", "LEO IoT signals typically -140..-110 dBm")
	return out, nil
}

// Fig3cResult is the RSSI-vs-distance experiment for Tianqi.
type Fig3cResult struct {
	// NearRSSI/FarRSSI are mean RSSI in the nearest and farthest distance
	// bins with data.
	NearRSSI, FarRSSI float64
	Bins              int
}

// Fig3c reproduces Tianqi's RSSI-vs-distance curve.
func (r *Runner) Fig3c() (Fig3cResult, error) {
	passive, err := r.Passive()
	if err != nil {
		return Fig3cResult{}, err
	}
	pts := passive.RSSIVsDistance("Tianqi", 250, 3500)
	out := Fig3cResult{Bins: len(pts)}
	_ = report.Section(r.Out, "F3c", "Tianqi RSSI vs distance (Fig. 3c)")
	if len(pts) > 0 {
		out.NearRSSI = pts[0].Y
		out.FarRSSI = pts[len(pts)-1].Y
		labels := make([]string, len(pts))
		vals := make([]float64, len(pts))
		for i, p := range pts {
			labels[i] = fmt.Sprintf("%4.0f km", p.X)
			vals[i] = p.Y + 150 // shift positive for the bar renderer
		}
		_ = report.Bars(r.Out, "mean RSSI + 150 dB (per slant-range bin)", labels, vals, 40)
	}
	_ = report.KV(r.Out, "near-bin mean RSSI (dBm)", out.NearRSSI)
	_ = report.KV(r.Out, "far-bin mean RSSI (dBm)", out.FarRSSI)
	_ = report.KV(r.Out, "paper", "RSSI falls with distance; Tianqi reaches 3500 km")
	return out, nil
}

// Fig3dResult is the weather-reception experiment.
type Fig3dResult struct {
	SunnyReception float64 // mean per-contact reception ratio, sunny
	RainyReception float64
	OverallLoss    float64
}

// Fig3d reproduces the beacon-reception-vs-weather comparison for Tianqi.
func (r *Runner) Fig3d() (Fig3dResult, error) {
	passive, err := r.Passive()
	if err != nil {
		return Fig3dResult{}, err
	}
	byWeather := passive.ReceptionByWeather("Tianqi")
	out := Fig3dResult{OverallLoss: passive.OverallBeaconLoss("Tianqi")}
	_ = report.Section(r.Out, "F3d", "Beacon reception per contact by weather (Fig. 3d)")
	tab := report.NewTable("", "Weather", "mean reception", "median", "contacts")
	for w, s := range byWeather {
		tab.AddRow(w.String(), s.Mean, s.Median, s.N)
		switch w.String() {
		case "sunny":
			out.SunnyReception = s.Mean
		case "rainy":
			out.RainyReception = s.Mean
		}
	}
	if err := tab.Render(r.Out); err != nil {
		return out, err
	}
	_ = report.KV(r.Out, "overall beacon loss", out.OverallLoss)
	_ = report.KV(r.Out, "paper", ">50% of Tianqi beacons dropped even on sunny days")
	return out, nil
}

// Fig4Result covers both panels of Figure 4.
type Fig4Result struct {
	// Shrink maps constellation → per-contact duration shrink fraction.
	Shrink map[string]float64
	// Stretch maps constellation → contact-interval stretch factor.
	Stretch map[string]float64
	// TianqiDaily is theoretical vs effective daily hours.
	TianqiDailyTheoretical float64
	TianqiDailyEffective   float64
}

// Fig4 reproduces the contact-window analysis.
func (r *Runner) Fig4() (Fig4Result, error) {
	passive, err := r.Passive()
	if err != nil {
		return Fig4Result{}, err
	}
	out := Fig4Result{Shrink: map[string]float64{}, Stretch: map[string]float64{}}
	_ = report.Section(r.Out, "F4", "Contact windows: theoretical vs effective (Fig. 4a/4b)")
	tab := report.NewTable("", "Constellation", "mean theo", "mean eff", "shrink %", "interval stretch")
	for _, cons := range constellationNames() {
		sh := passive.Shrinkage(cons, "")
		iv := passive.Intervals(cons, "HK")
		out.Shrink[cons] = sh.ShrinkFraction
		out.Stretch[cons] = iv.Stretch
		tab.AddRow(cons,
			sh.MeanTheoretical.Round(time.Second).String(),
			sh.MeanEffective.Round(time.Second).String(),
			sh.ShrinkFraction*100, iv.Stretch)
	}
	if err := tab.Render(r.Out); err != nil {
		return out, err
	}
	out.TianqiDailyTheoretical = passive.TheoreticalDailyDuration("Tianqi", "HK").Hours()
	out.TianqiDailyEffective = passive.EffectiveDailyDuration("Tianqi", "HK").Hours()
	_ = report.KV(r.Out, "Tianqi daily theoretical (h)", out.TianqiDailyTheoretical)
	_ = report.KV(r.Out, "Tianqi daily effective (h)", out.TianqiDailyEffective)
	_ = report.KV(r.Out, "paper", "shrink 73.7-89.2%; intervals 6.1-44.9x; Tianqi 18.5h→1.8h")
	return out, nil
}

// Fig8Result is the DtS distance experiment.
type Fig8Result struct {
	TianqiP10, TianqiP90     float64
	LowOrbitP10, LowOrbitP90 float64
}

// Fig8 reproduces the communication-distance CDFs.
func (r *Runner) Fig8() (Fig8Result, error) {
	passive, err := r.Passive()
	if err != nil {
		return Fig8Result{}, err
	}
	var out Fig8Result
	_ = report.Section(r.Out, "F8", "DtS communication distances (Fig. 8)")
	if cdf, err := passive.DistanceCDF("Tianqi"); err == nil {
		out.TianqiP10 = cdf.Quantile(0.1)
		out.TianqiP90 = cdf.Quantile(0.9)
		_ = report.CDFCurve(r.Out, "Tianqi slant range (km)", cdf, 8)
	}
	if cdf, err := passive.DistanceCDF("PICO"); err == nil {
		out.LowOrbitP10 = cdf.Quantile(0.1)
		out.LowOrbitP90 = cdf.Quantile(0.9)
		_ = report.CDFCurve(r.Out, "PICO slant range (km)", cdf, 8)
	}
	_ = report.KV(r.Out, "Tianqi 80% band (km)", fmt.Sprintf("%.0f-%.0f", out.TianqiP10, out.TianqiP90))
	_ = report.KV(r.Out, "500km-class 80% band (km)", fmt.Sprintf("%.0f-%.0f", out.LowOrbitP10, out.LowOrbitP90))
	_ = report.KV(r.Out, "paper", "80% within 600-2000 km; Tianqi 1100-3500 km")
	return out, nil
}

// Fig9Result is the window-position experiment.
type Fig9Result struct {
	MiddleFraction float64
	Total          int
}

// Fig9 reproduces the reception-position-within-window histogram.
func (r *Runner) Fig9() (Fig9Result, error) {
	passive, err := r.Passive()
	if err != nil {
		return Fig9Result{}, err
	}
	wp := passive.WindowPositions("")
	out := Fig9Result{MiddleFraction: wp.MiddleFraction, Total: wp.Total}
	_ = report.Section(r.Out, "F9", "Beacon receptions within a contact window (Fig. 9)")
	labels := make([]string, len(wp.Histogram.Counts))
	vals := make([]float64, len(wp.Histogram.Counts))
	for i := range wp.Histogram.Counts {
		labels[i] = fmt.Sprintf("%.0f-%.0f%%", float64(i)*10, float64(i+1)*10)
		vals[i] = wp.Histogram.Fraction(i)
	}
	_ = report.Bars(r.Out, "fraction of receptions per window decile", labels, vals, 40)
	_ = report.KV(r.Out, "middle 30-70% fraction", out.MiddleFraction)
	_ = report.KV(r.Out, "paper", "70.4% of receptions in the middle 30-70%")
	return out, nil
}
