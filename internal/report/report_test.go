package report

import (
	"strings"
	"testing"

	"github.com/sinet-io/sinet/internal/stats"
)

func TestTableRender(t *testing.T) {
	tab := NewTable("Table X: demo", "City", "# GS", "Traces")
	tab.AddRow("HK", 6, 31330)
	tab.AddRow("LDN", 5, 799)
	tab.AddRow("mean", 5.5, 16064.5)
	out := tab.String()
	if !strings.Contains(out, "Table X: demo") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "City") || !strings.Contains(out, "Traces") {
		t.Error("headers missing")
	}
	if !strings.Contains(out, "31330") {
		t.Error("row data missing")
	}
	if !strings.Contains(out, "5.50") {
		t.Errorf("float formatting: %s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title + header + rule + 3 rows
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
	// Columns align: each data line at least as long as the header line.
	hdr := lines[1]
	for _, ln := range lines[3:] {
		if len(ln) > len(hdr)+20 {
			t.Errorf("row much longer than header: %q", ln)
		}
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{3, "3"},
		{3.14159, "3.14"},
		{12345.6, "12346"},
		{0.0421, "0.0421"},
	}
	for _, c := range cases {
		if got := formatFloat(c.in); got != c.want {
			t.Errorf("formatFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestBars(t *testing.T) {
	var b strings.Builder
	err := Bars(&b, "Fig: demo", []string{"sunny", "rainy"}, []float64{0.8, 0.4}, 20)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "sunny") || !strings.Contains(out, "rainy") {
		t.Error("labels missing")
	}
	// Sunny's bar must be longer than rainy's.
	sunnyHashes := strings.Count(strings.Split(out, "\n")[1], "#")
	rainyHashes := strings.Count(strings.Split(out, "\n")[2], "#")
	if sunnyHashes <= rainyHashes {
		t.Errorf("bar lengths wrong: %d vs %d", sunnyHashes, rainyHashes)
	}
}

func TestBarsZeroValues(t *testing.T) {
	var b strings.Builder
	if err := Bars(&b, "", []string{"a"}, []float64{0}, 0); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "#") {
		t.Error("zero value produced bars")
	}
}

func TestCDFCurve(t *testing.T) {
	c, err := stats.NewCDF([]float64{600, 1000, 1500, 2000, 3400})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := CDFCurve(&b, "Fig 8: distances", c, 5); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "n=5") {
		t.Error("sample count missing")
	}
	if lines := strings.Count(out, "\n"); lines != 6 {
		t.Errorf("line count = %d", lines)
	}
}

func TestSectionAndKV(t *testing.T) {
	var b strings.Builder
	if err := Section(&b, "F4a", "Contact windows"); err != nil {
		t.Fatal(err)
	}
	if err := KV(&b, "shrink", 0.851); err != nil {
		t.Fatal(err)
	}
	if err := KV(&b, "constellation", "Tianqi"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "== F4a: Contact windows") {
		t.Error("section header missing")
	}
	if !strings.Contains(out, "shrink:") || !strings.Contains(out, "Tianqi") {
		t.Error("kv lines missing")
	}
}

func TestLatencyCDF(t *testing.T) {
	var b strings.Builder
	lats := []float64{5, 30, 90, 600, 3600}
	if err := LatencyCDF(&b, "relay latency", lats, 8); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "relay latency") {
		t.Error("title missing")
	}
	for _, row := range []string{"p10 latency", "p50 latency", "p90 latency", "p99 latency", "mean latency"} {
		if !strings.Contains(out, row) {
			t.Errorf("%q row missing:\n%s", row, out)
		}
	}
	// Quantile rows must agree with the shared helper.
	p50 := stats.Quantiles(lats, 0.5)[0]
	if !strings.Contains(out, formatLatency(p50)) {
		t.Errorf("p50 value %s missing:\n%s", formatLatency(p50), out)
	}
}

func TestLatencyCDFEmpty(t *testing.T) {
	var b strings.Builder
	if err := LatencyCDF(&b, "store latency", nil, 8); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != "store latency: no delivered packets\n" {
		t.Errorf("placeholder = %q", got)
	}
}

func TestFormatLatency(t *testing.T) {
	if got := formatLatency(12.345); got != "12.35s" {
		t.Errorf("sub-minute = %q", got)
	}
	if got := formatLatency(90); got != "1.5min" {
		t.Errorf("minutes = %q", got)
	}
}
