package report

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestChurnSummaryEmptyRowsRendersNotice(t *testing.T) {
	var out strings.Builder
	if err := ChurnSummary(&out, nil); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "no station churn configured") {
		t.Fatalf("empty rows did not render the off notice:\n%s", text)
	}
	// len(rows)==0 must short-circuit before the mean: sum/0 would be NaN.
	if strings.Contains(text, "NaN") {
		t.Fatalf("empty summary produced NaN:\n%s", text)
	}
	if strings.Contains(text, "fleet mean") {
		t.Fatalf("empty summary rendered a fleet mean:\n%s", text)
	}
}

func TestChurnSummarySingleStationMeanIsItsUptime(t *testing.T) {
	var out strings.Builder
	rows := []ChurnRow{{Station: "gs-HK", Site: "HK", Uptime: 0.875, Outages: 3, Downtime: 9 * time.Hour}}
	if err := ChurnSummary(&out, rows); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "gs-HK") || !strings.Contains(text, "87.5") {
		t.Fatalf("single-station row missing:\n%s", text)
	}
	if !strings.Contains(text, "fleet mean availability") || !strings.Contains(text, "0.875") {
		t.Fatalf("single-station mean must equal its uptime:\n%s", text)
	}
}

func TestChurnRowJSONRoundTrip(t *testing.T) {
	rows := []ChurnRow{
		{Station: "gs-HK", Site: "HK", Uptime: 0.875, Outages: 3, Downtime: 9 * time.Hour},
		{Station: "gs-SYD", Site: "SYD", Uptime: 0, Outages: 1, Downtime: 24 * time.Hour},
	}
	data, err := json.Marshal(rows)
	if err != nil {
		t.Fatal(err)
	}
	var back []ChurnRow
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, back) {
		t.Fatalf("churn rows changed across marshal/unmarshal:\n%+v\nvs\n%+v", rows, back)
	}
}

func TestChurnSummaryTotalOutageStation(t *testing.T) {
	// A station down for the whole window reports uptime exactly 0 — the
	// row and the mean must render as finite zeros, not NaN or -0.
	var out strings.Builder
	rows := []ChurnRow{{Station: "gs-SYD", Site: "SYD", Uptime: 0, Outages: 1, Downtime: 24 * time.Hour}}
	if err := ChurnSummary(&out, rows); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if strings.Contains(text, "NaN") || strings.Contains(text, "-0") {
		t.Fatalf("total outage rendered badly:\n%s", text)
	}
	if !strings.Contains(text, "gs-SYD") {
		t.Fatalf("row missing:\n%s", text)
	}
}
