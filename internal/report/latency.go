package report

import (
	"fmt"
	"io"
	"time"

	"github.com/sinet-io/sinet/internal/stats"
)

// latencyQuantiles is the quantile grid every latency block prints. The
// values come from stats.Quantiles — the shared quantile implementation —
// so the CDF curve and the quantile rows can never disagree.
var latencyQuantiles = []float64{0.10, 0.50, 0.90, 0.99}

// LatencyCDF renders a delivery-latency distribution: an empirical CDF
// curve over the samples (latencies in seconds) followed by the standard
// quantile rows and the mean. An empty sample set renders a placeholder
// line instead of a curve.
func LatencyCDF(w io.Writer, title string, latenciesSec []float64, points int) error {
	if len(latenciesSec) == 0 {
		_, err := fmt.Fprintf(w, "%s: no delivered packets\n", title)
		return err
	}
	c, err := stats.NewCDF(latenciesSec)
	if err != nil {
		return err
	}
	if err := CDFCurve(w, title, c, points); err != nil {
		return err
	}
	qs := stats.Quantiles(latenciesSec, latencyQuantiles...)
	for i, q := range latencyQuantiles {
		if err := KV(w, fmt.Sprintf("p%02.0f latency", q*100), formatLatency(qs[i])); err != nil {
			return err
		}
	}
	return KV(w, "mean latency", formatLatency(stats.Mean(latenciesSec)))
}

// formatLatency renders seconds at a human scale: sub-minute values in
// seconds, the rest in minutes.
func formatLatency(sec float64) string {
	d := time.Duration(sec * float64(time.Second))
	if d < time.Minute {
		return fmt.Sprintf("%.2fs", sec)
	}
	return fmt.Sprintf("%.1fmin", sec/60)
}
