// Package report renders the tables and figure series of the reproduction
// as aligned ASCII suitable for terminals and EXPERIMENTS.md: simple
// tables, labelled key-value blocks, CDF curves and bar charts.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"github.com/sinet-io/sinet/internal/stats"
)

// Table is a simple column-aligned table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case v == math.Trunc(v) && math.Abs(v) < 1e9:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// Bars renders a labelled horizontal bar chart scaled to width chars.
func Bars(w io.Writer, title string, labels []string, values []float64, width int) error {
	if width <= 0 {
		width = 50
	}
	maxV := 0.0
	maxLabel := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if i < len(labels) && len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for i, v := range values {
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		n := 0
		if maxV > 0 {
			n = int(v / maxV * float64(width))
		}
		fmt.Fprintf(&b, "%-*s | %s %s\n", maxLabel, label, strings.Repeat("#", n), formatFloat(v))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CDFCurve renders a CDF as an x/F(x) listing at the given quantile grid.
func CDFCurve(w io.Writer, title string, c *stats.CDF, points int) error {
	if points < 2 {
		points = 10
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s (n=%d)\n", title, c.N())
	}
	for _, p := range c.Points(points) {
		bars := int(p.Y * 40)
		fmt.Fprintf(&b, "%10s | %-40s %.2f\n", formatFloat(p.X), strings.Repeat("#", bars), p.Y)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Section writes a prominent section header.
func Section(w io.Writer, id, title string) error {
	line := fmt.Sprintf("== %s: %s ", id, title)
	if pad := 72 - len(line); pad > 0 {
		line += strings.Repeat("=", pad)
	}
	_, err := fmt.Fprintf(w, "\n%s\n\n", line)
	return err
}

// KV writes an aligned key-value line.
func KV(w io.Writer, key string, value any) error {
	var v string
	switch x := value.(type) {
	case float64:
		v = formatFloat(x)
	default:
		v = fmt.Sprintf("%v", x)
	}
	_, err := fmt.Fprintf(w, "  %-38s %s\n", key+":", v)
	return err
}
