package report

import (
	"io"
	"time"
)

// ChurnRow is one station's availability under injected churn.
type ChurnRow struct {
	Station  string
	Site     string
	Uptime   float64
	Outages  int
	Downtime time.Duration
}

// ChurnSummary renders the availability-under-churn report: a per-station
// table of uptime, outage count and cumulative downtime, followed by the
// fleet-wide mean availability. A nil/empty row set renders a notice
// instead, so callers can pass the rows through unconditionally.
func ChurnSummary(w io.Writer, rows []ChurnRow) error {
	if err := Section(w, "churn", "Station availability under churn"); err != nil {
		return err
	}
	if len(rows) == 0 {
		return KV(w, "fault injection", "off (no station churn configured)")
	}
	tab := NewTable("", "Station", "Site", "Uptime %", "Outages", "Downtime")
	var sum float64
	for _, r := range rows {
		sum += r.Uptime
		tab.AddRow(r.Station, r.Site, r.Uptime*100, r.Outages, r.Downtime.Round(time.Second).String())
	}
	if err := tab.Render(w); err != nil {
		return err
	}
	return KV(w, "fleet mean availability", sum/float64(len(rows)))
}
