// Package fault injects deterministic infrastructure disruption into the
// measurement campaigns. The paper's numbers were collected on hardware
// that fails constantly — crowd-sourced TinyGS-style stations churn on and
// off, the operator's drain stations have maintenance downtime, and
// satellites go silent between duty cycles — so the simulator models each
// component's outages as a two-state Gilbert (up/down) alternating-renewal
// process driven by a named sim.RNG stream. The same campaign seed and
// fault config therefore always reproduce the same outage schedule, and
// adding a new faulty component never perturbs existing schedules.
//
// Schedules are exposed as queryable, merged outage windows (reusing the
// orbit window machinery), which the campaigns consult: the passive
// campaign clips station tuning plans against them, the active campaign
// mutes blacked-out satellite beacons, and the backhaul skips downed drain
// stations.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"time"

	"github.com/sinet-io/sinet/internal/orbit"
	"github.com/sinet-io/sinet/internal/sim"
)

// ErrBadConfig is the sentinel wrapped by every Config validation error.
var ErrBadConfig = errors.New("fault: invalid fault config")

// Config parameterizes the campaign-wide fault model. The zero value
// injects nothing; each MTBF/MTTR pair must be set (or left zero) together.
type Config struct {
	// StationMTBF/StationMTTR drive the Gilbert churn process of every
	// receive ground station: mean time between failures (up spans) and
	// mean time to repair (down spans). Models TinyGS crowd churn, where
	// volunteer stations disappear for hours at a time.
	StationMTBF time.Duration
	StationMTTR time.Duration

	// Maintenance windows are scheduled downtime applied to every receive
	// station on top of the stochastic churn.
	Maintenance []orbit.Window

	// DrainMTBF/DrainMTTR churn the operator's downlink drain stations
	// (the Tianqi ground segment), stretching store-and-forward delivery
	// tails when a satellite overflies a downed teleport.
	DrainMTBF time.Duration
	DrainMTTR time.Duration

	// SatMTBF/SatMTTR black out individual satellites' beacons — duty
	// cycling, eclipse power saving, payload resets. While blacked out a
	// satellite transmits nothing, so nodes can neither hear its gating
	// beacons nor uplink through it.
	SatMTBF time.Duration
	SatMTTR time.Duration

	// LinkMTBF/LinkMTTR churn individual inter-satellite links — pointing
	// loss, terminal resets, thermal safing. A churned-out link drops out
	// of the time-varying network graph; relay routing then detours or
	// degrades to store-and-forward.
	LinkMTBF time.Duration
	LinkMTTR time.Duration
}

// Enabled reports whether the config injects any fault at all.
func (c Config) Enabled() bool {
	return (c.StationMTBF > 0 && c.StationMTTR > 0) ||
		(c.DrainMTBF > 0 && c.DrainMTTR > 0) ||
		(c.SatMTBF > 0 && c.SatMTTR > 0) ||
		(c.LinkMTBF > 0 && c.LinkMTTR > 0) ||
		len(c.Maintenance) > 0
}

// Validate checks the config, wrapping ErrBadConfig so callers can
// errors.Is against the sentinel.
func (c Config) Validate() error {
	pairs := []struct {
		name       string
		mtbf, mttr time.Duration
	}{
		{"station", c.StationMTBF, c.StationMTTR},
		{"drain", c.DrainMTBF, c.DrainMTTR},
		{"sat", c.SatMTBF, c.SatMTTR},
		{"link", c.LinkMTBF, c.LinkMTTR},
	}
	for _, p := range pairs {
		if p.mtbf < 0 || p.mttr < 0 {
			return fmt.Errorf("%w: %s MTBF/MTTR must be non-negative (%v/%v)", ErrBadConfig, p.name, p.mtbf, p.mttr)
		}
		if (p.mtbf > 0) != (p.mttr > 0) {
			return fmt.Errorf("%w: %s MTBF and MTTR must be set together (%v/%v)", ErrBadConfig, p.name, p.mtbf, p.mttr)
		}
	}
	for i, w := range c.Maintenance {
		if !w.End.After(w.Start) {
			return fmt.Errorf("%w: maintenance window %d is empty or inverted (%v..%v)", ErrBadConfig, i, w.Start, w.End)
		}
	}
	return nil
}

// Schedule is one component's outage timeline over a campaign span:
// merged, sorted, non-overlapping down windows, queryable by instant.
// The zero value is an always-up schedule. A Schedule is immutable after
// construction and safe for concurrent reads.
type Schedule struct {
	downs []orbit.Window
}

// StationSchedule derives the outage schedule of one receive ground
// station for [start, end): Gilbert churn from the stream
// "fault/station/<id>" merged with the shared maintenance windows.
func (c Config) StationSchedule(seed int64, stationID string, start, end time.Time) Schedule {
	churn := gilbert(sim.NewRNG(seed, "fault/station/"+stationID), start, end, c.StationMTBF, c.StationMTTR)
	return newSchedule(churn, c.Maintenance)
}

// DrainSchedule derives the outage schedule of one operator drain station
// (by its index in the ground segment) from the stream "fault/drain/<i>".
func (c Config) DrainSchedule(seed int64, station int, start, end time.Time) Schedule {
	churn := gilbert(sim.NewRNG(seed, "fault/drain/"+strconv.Itoa(station)), start, end, c.DrainMTBF, c.DrainMTTR)
	return newSchedule(churn, nil)
}

// SatSchedule derives the beacon-blackout schedule of one satellite from
// the stream "fault/sat/<norad>".
func (c Config) SatSchedule(seed int64, noradID int, start, end time.Time) Schedule {
	churn := gilbert(sim.NewRNG(seed, "fault/sat/"+strconv.Itoa(noradID)), start, end, c.SatMTBF, c.SatMTTR)
	return newSchedule(churn, nil)
}

// LinkSchedule derives the churn schedule of one inter-satellite link from
// the stream "fault/link/<id>". The id should name the link's endpoints
// canonically (e.g. "91001-91002" with the lower NORAD ID first) so the two
// directions of an undirected link share one schedule.
func (c Config) LinkSchedule(seed int64, linkID string, start, end time.Time) Schedule {
	churn := gilbert(sim.NewRNG(seed, "fault/link/"+linkID), start, end, c.LinkMTBF, c.LinkMTTR)
	return newSchedule(churn, nil)
}

// LinkID renders the canonical undirected link identifier for a satellite
// pair: lower NORAD ID first.
func LinkID(noradA, noradB int) string {
	if noradB < noradA {
		noradA, noradB = noradB, noradA
	}
	return strconv.Itoa(noradA) + "-" + strconv.Itoa(noradB)
}

// gilbert realizes the two-state up/down process on [start, end):
// exponential up spans with mean mtbf alternating with exponential down
// spans with mean mttr, starting up. Returns the down windows.
func gilbert(rng *sim.RNG, start, end time.Time, mtbf, mttr time.Duration) []orbit.Window {
	if mtbf <= 0 || mttr <= 0 || !end.After(start) {
		return nil
	}
	var downs []orbit.Window
	t := start
	for t.Before(end) {
		up := time.Duration(rng.Exponential(float64(mtbf)))
		if up <= 0 {
			up = time.Nanosecond
		}
		t = t.Add(up)
		if !t.Before(end) {
			break
		}
		down := time.Duration(rng.Exponential(float64(mttr)))
		if down <= 0 {
			down = time.Nanosecond
		}
		downEnd := t.Add(down)
		if downEnd.After(end) {
			downEnd = end
		}
		downs = append(downs, orbit.Window{Start: t, End: downEnd})
		t = downEnd
	}
	return downs
}

// newSchedule merges the window sets into one sorted, non-overlapping
// outage timeline via the shared MergeWindows machinery.
func newSchedule(sets ...[]orbit.Window) Schedule {
	var passes []orbit.Pass
	for _, ws := range sets {
		for _, w := range ws {
			passes = append(passes, orbit.Pass{AOS: w.Start, LOS: w.End})
		}
	}
	return Schedule{downs: orbit.MergeWindows(passes)}
}

// Down reports whether the component is down at t.
func (s Schedule) Down(t time.Time) bool {
	lo, hi := 0, len(s.downs)
	for lo < hi {
		mid := (lo + hi) / 2
		w := s.downs[mid]
		switch {
		case t.Before(w.Start):
			hi = mid
		case !t.Before(w.End):
			lo = mid + 1
		default:
			return true
		}
	}
	return false
}

// NextUp returns the earliest instant at or after t when the component is
// up (t itself when already up).
func (s Schedule) NextUp(t time.Time) time.Time {
	idx := sort.Search(len(s.downs), func(i int) bool { return s.downs[i].End.After(t) })
	if idx < len(s.downs) && !t.Before(s.downs[idx].Start) {
		return s.downs[idx].End
	}
	return t
}

// Windows returns the merged outage windows.
func (s Schedule) Windows() []orbit.Window { return s.downs }

// DownTime returns the total outage duration overlapping [start, end).
func (s Schedule) DownTime(start, end time.Time) time.Duration {
	var total time.Duration
	for _, w := range s.downs {
		ws, we := w.Start, w.End
		if ws.Before(start) {
			ws = start
		}
		if we.After(end) {
			we = end
		}
		if we.After(ws) {
			total += we.Sub(ws)
		}
	}
	return total
}

// OutageCount returns the number of outage windows overlapping [start, end).
func (s Schedule) OutageCount(start, end time.Time) int {
	n := 0
	for _, w := range s.downs {
		if w.End.After(start) && w.Start.Before(end) {
			n++
		}
	}
	return n
}

// Availability returns the up fraction of [start, end).
func (s Schedule) Availability(start, end time.Time) float64 {
	span := end.Sub(start)
	if span <= 0 {
		return 1
	}
	return 1 - float64(s.DownTime(start, end))/float64(span)
}
